// A latency-sensitive key-value service (the paper's Cassandra scenario):
// runs the LSM-style store under a chosen collector and prints the report an
// SLA owner would look at.
//
//   ./kvstore_service [g1|cms|zgc|ng2c|rolp] [seconds] [open|closed]
//
// `open` (the default) drives the store open-loop: arrivals follow a schedule
// fixed in advance at ROLP_SERVICE_RATE requests/s (0 = calibrate capacity
// closed-loop, then offer ROLP_SERVICE_OVERLOAD_FACTOR x that — deliberate
// overload), lateness is charged from the scheduled arrival so GC pauses
// cannot hide behind coordinated omission, and the run ends with an
// SLO_VERDICT line a CI gate can parse. `closed` keeps the original
// as-fast-as-possible bench loop.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/service/open_loop.h"
#include "src/service/sharded.h"
#include "src/util/env.h"
#include "src/workloads/driver.h"
#include "src/workloads/kvstore.h"

using namespace rolp;

namespace {

int RunClosed(const VmConfig& config, KvStoreWorkload& workload, double seconds,
              const std::string& gc_name) {
  DriverOptions run;
  run.duration_s = seconds;
  run.warmup_s = seconds * 0.4;

  std::printf("running %s for %.0fs under %s (closed loop, warmup %.0fs excluded)...\n",
              workload.name().c_str(), seconds, gc_name.c_str(), run.warmup_s);
  RunResult r = RunWorkload(config, workload, run);

  std::printf("\nthroughput: %.0f ops/s over %.1fs (%llu ops)\n", r.throughput, r.measured_s,
              static_cast<unsigned long long>(r.ops));
  std::printf("memtable flushes: %llu, compactions: %llu\n",
              static_cast<unsigned long long>(workload.flushes()),
              static_cast<unsigned long long>(workload.compactions()));
  std::printf("\nGC pause profile (%llu pauses%s):\n",
              static_cast<unsigned long long>(r.pause_count_alltime),
              r.pause_log_truncated ? ", ring truncated; all-time aggregates" : "");
  for (double p : {50.0, 90.0, 99.0, 99.9, 100.0}) {
    std::printf("  p%-6.1f %8.2f ms\n", p, r.PausePercentileMs(p));
  }
  std::printf("  total   %8.2f ms stopped (%.2f%% of run)\n", r.TotalPauseMs(),
              r.TotalPauseMs() / (r.measured_s * 10.0));
  std::printf("max heap used: %.1f MB\n", static_cast<double>(r.max_used_bytes) / 1048576.0);
  if (r.first_decision_cycle > 0) {
    std::printf("ROLP learned its first lifetime decisions at GC cycle %llu\n",
                static_cast<unsigned long long>(r.first_decision_cycle));
  }
  return 0;
}

int RunOpen(const VmConfig& config, KvStoreWorkload& workload, double seconds,
            const std::string& gc_name) {
  ServiceOptions svc = ServiceOptions::FromEnv();
  svc.duration_s = seconds;

  std::printf("running %s for %.0fs under %s (open loop, %s)...\n",
              workload.name().c_str(), seconds, gc_name.c_str(),
              svc.rate_rps > 0 ? "fixed rate"
                               : "calibrating capacity, then deliberate overload");
  ServiceResult r = RunService(config, workload, svc);

  std::printf("\n");
  PrintServiceReport(stdout, r);
  std::printf("memtable flushes: %llu, compactions: %llu\n",
              static_cast<unsigned long long>(workload.flushes()),
              static_cast<unsigned long long>(workload.compactions()));
  // Machine-readable gate line (scripts/check_slo.py parses this).
  std::printf("SLO_VERDICT %s\n", r.verdict_json.c_str());
  return r.survived ? 0 : 1;
}

int RunSharded(const VmConfig& config, const KvStoreOptions& options, double seconds,
               const std::string& gc_name) {
  ShardedServiceOptions sharded = ShardedServiceOptions::FromEnv();
  sharded.service.duration_s = seconds;

  std::printf("running kvstore for %.0fs under %s across %d VM shards (open loop, %s)...\n",
              seconds, gc_name.c_str(), sharded.shards,
              sharded.service.rate_rps > 0
                  ? "fixed rate"
                  : "calibrating capacity, then deliberate overload");
  ShardedServiceResult r = RunShardedService(
      config, [&options](int) { return std::make_unique<KvStoreWorkload>(options); },
      sharded);

  std::printf("\n");
  PrintShardedReport(stdout, r);
  // Machine-readable gate line (scripts/check_slo.py parses this). The merged
  // verdict carries "shards":N plus the RSS settle watch results.
  std::printf("SLO_VERDICT %s\n", r.verdict_json.c_str());
  return r.survived ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string gc_name = argc > 1 ? argv[1] : "rolp";
  double seconds = argc > 2 ? std::atof(argv[2]) : 10.0;
  std::string mode = argc > 3 ? argv[3] : "open";

  VmConfig config;
  std::string error;
  if (!VmConfig::ParseFlags({"-Xmx96m", "-XX:GC=" + gc_name}, &config, &error)) {
    std::fprintf(stderr, "%s\nusage: %s [g1|cms|zgc|ng2c|rolp] [seconds] [open|closed]\n",
                 error.c_str(), argv[0]);
    return 1;
  }
  config.young_fraction = 0.10;
  config.jit.hot_threshold = 100;

  KvStoreOptions options;
  options.write_fraction = 0.75;  // the paper's write-intensive YCSB mix
  options.memtable_flush_rows = 24000;

  if (mode == "closed") {
    KvStoreWorkload workload(options);
    return RunClosed(config, workload, seconds, gc_name);
  }
  if (mode != "open") {
    std::fprintf(stderr, "unknown mode '%s'\nusage: %s [gc] [seconds] [open|closed]\n",
                 mode.c_str(), argv[0]);
    return 1;
  }
  if (EnvInt64("ROLP_SHARDS", 1) > 1) {
    return RunSharded(config, options, seconds, gc_name);
  }
  KvStoreWorkload workload(options);
  return RunOpen(config, workload, seconds, gc_name);
}
