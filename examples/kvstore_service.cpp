// A latency-sensitive key-value service (the paper's Cassandra scenario):
// runs the LSM-style store under a chosen collector and prints the GC pause
// profile an SLA owner would look at.
//
//   ./kvstore_service [g1|cms|zgc|ng2c|rolp] [seconds]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/workloads/driver.h"
#include "src/workloads/kvstore.h"

using namespace rolp;

int main(int argc, char** argv) {
  std::string gc_name = argc > 1 ? argv[1] : "rolp";
  double seconds = argc > 2 ? std::atof(argv[2]) : 10.0;

  VmConfig config;
  std::string error;
  if (!VmConfig::ParseFlags({"-Xmx96m", "-XX:GC=" + gc_name}, &config, &error)) {
    std::fprintf(stderr, "%s\nusage: %s [g1|cms|zgc|ng2c|rolp] [seconds]\n", error.c_str(),
                 argv[0]);
    return 1;
  }
  config.young_fraction = 0.10;
  config.jit.hot_threshold = 100;

  KvStoreOptions options;
  options.write_fraction = 0.75;  // the paper's write-intensive YCSB mix
  options.memtable_flush_rows = 24000;
  KvStoreWorkload workload(options);

  DriverOptions run;
  run.duration_s = seconds;
  run.warmup_s = seconds * 0.4;

  std::printf("running %s for %.0fs under %s (warmup %.0fs excluded)...\n",
              workload.name().c_str(), seconds, gc_name.c_str(), run.warmup_s);
  RunResult r = RunWorkload(config, workload, run);

  std::printf("\nthroughput: %.0f ops/s over %.1fs (%llu ops)\n", r.throughput, r.measured_s,
              static_cast<unsigned long long>(r.ops));
  std::printf("memtable flushes: %llu, compactions: %llu\n",
              static_cast<unsigned long long>(workload.flushes()),
              static_cast<unsigned long long>(workload.compactions()));
  std::printf("\nGC pause profile (%zu pauses):\n", r.pauses.size());
  for (double p : {50.0, 90.0, 99.0, 99.9, 100.0}) {
    std::printf("  p%-6.1f %8.2f ms\n", p, r.PausePercentileMs(p));
  }
  std::printf("  total   %8.2f ms stopped (%.2f%% of run)\n", r.TotalPauseMs(),
              r.TotalPauseMs() / (r.measured_s * 10.0));
  std::printf("max heap used: %.1f MB\n", static_cast<double>(r.max_used_bytes) / 1048576.0);
  if (r.first_decision_cycle > 0) {
    std::printf("ROLP learned its first lifetime decisions at GC cycle %llu\n",
                static_cast<unsigned long long>(r.first_decision_cycle));
  }
  return 0;
}
