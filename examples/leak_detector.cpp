// Memory-leak detection — the additional ROLP use-case the paper mentions in
// section 2.2: "detecting memory leaks in applications by reporting object
// lifetime statistics per allocation context."
//
// The app below has a deliberate leak (an ever-growing list fed by one
// allocation site). The detector reads the profiler's per-context lifetime
// estimates plus the live age-15 census and flags contexts whose objects
// reach the maximum age in ever-growing numbers.
//
//   ./leak_detector
#include <cstdio>
#include <vector>

#include "src/runtime/thread.h"
#include "src/runtime/vm.h"

using namespace rolp;

int main() {
  VmConfig config;
  VmConfig::ParseFlags({"-Xmx64m", "-XX:+UseROLP"}, &config, nullptr);
  config.jit.hot_threshold = 50;
  config.rolp.inference_period = 8;
  // Keep survivor tracking on: the leak census depends on it.
  config.rolp.auto_survivor_tracking = false;
  config.young_fraction = 0.10;

  VM vm(config);
  RuntimeThread* thread = vm.AttachThread();

  ClassId node_cls = vm.heap().classes().RegisterInstance("app.EventLog$Node", 24, {0});
  MethodId leaky = vm.jit().RegisterMethod("app.EventLog::append", 100);
  MethodId healthy = vm.jit().RegisterMethod("app.RequestParser::parse", 100);
  uint32_t leak_site = vm.jit().RegisterAllocSite(leaky);
  uint32_t ok_site = vm.jit().RegisterAllocSite(healthy);
  vm.jit().CompileAll();

  // The leak: every operation appends to a list nobody ever trims.
  HandleScope scope(*thread);
  Local leak_head = thread->NewLocal(nullptr);
  std::printf("running an application with a hidden leak...\n");
  for (int op = 0; op < 200000; op++) {
    Object* node = thread->AllocateInstance(leak_site, node_cls);
    thread->StoreField(node, 0, leak_head.get());
    leak_head.set(node);  // grows forever
    // Healthy allocations: parsed requests that die immediately.
    thread->AllocateInstance(ok_site, node_cls);
    thread->AllocateDataArray(RuntimeThread::kNoSite, 2048);
  }

  // The report the paper hints at: per-allocation-context lifetime census.
  std::printf("\n--- per-context lifetime report ---\n");
  uint16_t leak_id = vm.jit().alloc_site(leak_site).site_id.load();
  uint16_t ok_id = vm.jit().alloc_site(ok_site).site_id.load();
  vm.profiler()->old_table().ForEachRow(
      [&](uint32_t ctx, const std::array<uint64_t, 16>& counts) {
        uint64_t total = 0;
        for (uint64_t c : counts) {
          total += c;
        }
        if (total < 64) {
          return;
        }
        uint16_t site = static_cast<uint16_t>(markword::ContextSite(ctx));
        const char* name = site == leak_id   ? "app.EventLog::append"
                           : site == ok_id   ? "app.RequestParser::parse"
                                             : "(other)";
        double max_age_share =
            static_cast<double>(counts[15]) / static_cast<double>(total);
        int gen = vm.profiler()->TargetGen(ctx);
        // Healthy sites estimate young/low gens; a deep and still-climbing
        // estimate means objects that never die.
        bool suspect = gen >= 5 || max_age_share > 0.3;
        std::printf("site %-28s estimated-gen=%-2d objects=%-8llu at-max-age=%.0f%%%s\n",
                    name, gen, static_cast<unsigned long long>(total),
                    100.0 * max_age_share, suspect ? "   <-- LEAK SUSPECT" : "");
      });
  std::printf(
      "\nA context whose objects pile up at the maximum age and whose estimate\n"
      "keeps climbing is allocating objects that never die: a leak.\n");

  vm.DetachThread(thread);
  return 0;
}
