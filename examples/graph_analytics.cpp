// Graph analytics (the paper's GraphChi scenario): run Connected Components
// over a power-law graph with the shard-based engine and report algorithm
// progress next to the GC behaviour.
//
//   ./graph_analytics [g1|cms|zgc|ng2c|rolp] [iterations]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/workloads/driver.h"
#include "src/workloads/graph.h"

using namespace rolp;

int main(int argc, char** argv) {
  std::string gc_name = argc > 1 ? argv[1] : "rolp";
  uint64_t iterations = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 12;

  VmConfig config;
  std::string error;
  if (!VmConfig::ParseFlags({"-Xmx96m", "-XX:GC=" + gc_name}, &config, &error)) {
    std::fprintf(stderr, "%s\nusage: %s [g1|cms|zgc|ng2c|rolp] [iterations]\n", error.c_str(),
                 argv[0]);
    return 1;
  }
  config.young_fraction = 0.10;
  config.jit.hot_threshold = 50;

  GraphOptions options;
  options.algo = GraphAlgo::kConnectedComponents;
  options.vertices = 60000;
  GraphWorkload workload(options);

  DriverOptions run;
  run.duration_s = 3600;  // iteration-bound
  run.max_ops = iterations * options.intervals;

  std::printf("connected components on %llu vertices, %llu full iterations, gc=%s...\n",
              static_cast<unsigned long long>(options.vertices),
              static_cast<unsigned long long>(iterations), gc_name.c_str());
  RunResult r = RunWorkload(config, workload, run);

  std::printf("\ncompleted %llu iterations (%llu interval ops) in %.1fs\n",
              static_cast<unsigned long long>(workload.iterations()),
              static_cast<unsigned long long>(r.ops), r.measured_s);
  std::printf("GC: %zu pauses, p50 %.2f ms, p99.9 %.2f ms, max %.2f ms\n", r.pauses.size(),
              r.PausePercentileMs(50), r.PausePercentileMs(99.9), r.MaxPauseMs());
  std::printf("bytes copied by GC: %.1f MB\n",
              static_cast<double>(r.bytes_copied) / 1048576.0);
  std::printf("max heap used: %.1f MB\n", static_cast<double>(r.max_used_bytes) / 1048576.0);
  return 0;
}
