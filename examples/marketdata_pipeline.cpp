// Market-data ingest comparison (DESIGN.md §16): the identical three-stage
// pipeline (feed parse -> order-book update -> derived analytics) under four
// memory arms — pooled-manual slab pools (no GC), G1-style regional,
// ROLP+NG2C pretenuring, and ZGC — in one invocation, ending with a single
// machine-readable INGEST_VERDICT line that scripts/check_ingest.py gates.
//
//   marketdata_pipeline [arm ...]
//
// Arms: pooled | g1 | rolp | zgc | all (default: all). Environment knobs:
//   ROLP_INGEST_RATE        events/s schedule           (default 100000)
//   ROLP_INGEST_EVENTS      scheduled events per arm    (default 300000)
//   ROLP_INGEST_ARM         arm list when no argv arms, e.g. "rolp,g1"
//   ROLP_INGEST_HEAP_MB     VM-arm heap size            (default 96)
//   ROLP_INGEST_WARMUP      warmup fraction excluded    (default 0.3)
//   ROLP_PACING             absolute | relative (pacing-bug A/B)
//   ROLP_FAULTS / ROLP_CHAOS  fault injection over the ingest.* points
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/env.h"
#include "src/util/fault_injection.h"
#include "src/workloads/marketdata/pipeline.h"

using rolp::marketdata::ArmKind;
using rolp::marketdata::IngestOptions;
using rolp::marketdata::IngestResult;

namespace {

void SplitArms(const std::string& spec, std::vector<ArmKind>* arms) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    std::string tok = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (tok == "all") {
      arms->assign({ArmKind::kPooled, ArmKind::kG1, ArmKind::kRolp, ArmKind::kZgc});
    } else if (!tok.empty()) {
      ArmKind arm;
      if (!rolp::marketdata::ParseArm(tok, &arm)) {
        std::fprintf(stderr, "unknown arm '%s' (pooled|g1|rolp|zgc|all)\n", tok.c_str());
        std::exit(2);
      }
      arms->push_back(arm);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // The pooled arm never constructs a VM (which is where fault specs are
  // normally loaded), so arm the ingest.* fault points here for every arm.
  rolp::FaultInjection::Instance().LoadFromEnv();
  rolp::FaultInjection::Instance().LoadChaosFromEnv();

  std::vector<ArmKind> arms;
  for (int i = 1; i < argc; i++) {
    SplitArms(argv[i], &arms);
  }
  if (arms.empty()) {
    SplitArms(rolp::EnvString("ROLP_INGEST_ARM", "all"), &arms);
  }

  IngestOptions options = IngestOptions::FromEnv();
  std::printf("marketdata ingest: %llu events @ %.0f eps, heap %zu MB, warmup %.0f%%\n",
              static_cast<unsigned long long>(options.events), options.rate_eps,
              options.heap_mb, options.warmup_fraction * 100.0);

  std::vector<IngestResult> results;
  bool all_survived = true;
  for (ArmKind arm : arms) {
    IngestResult r = rolp::marketdata::RunIngest(arm, options);
    std::printf(
        "  %-6s survived=%d analyzed=%llu offered=%.0f eps  jitter p50=%.1fus "
        "p99=%.1fus p99.9=%.1fus max=%.1fus  alloc=%.0fns/ev  gc_pauses=%llu "
        "max_pause=%.2fms\n",
        rolp::marketdata::ArmName(arm), r.survived ? 1 : 0,
        static_cast<unsigned long long>(r.analyzed), r.offered_eps,
        static_cast<double>(r.p50_ns) / 1e3, static_cast<double>(r.p99_ns) / 1e3,
        static_cast<double>(r.p999_ns) / 1e3, static_cast<double>(r.max_ns) / 1e3,
        r.alloc_ns_per_event, static_cast<unsigned long long>(r.gc_pauses),
        r.max_pause_ms);
    std::fflush(stdout);
    all_survived = all_survived && r.survived;
    results.push_back(r);
  }

  std::string verdict = rolp::marketdata::IngestVerdictJson(results, options);
  std::printf("INGEST_VERDICT %s\n", verdict.c_str());
  return all_survived ? 0 : 1;
}
