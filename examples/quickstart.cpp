// Quickstart: boot the VM with ROLP enabled via JVM-style flags, register a
// tiny "application" (one hot method with one allocation site), let the
// profiler learn that the site's objects are long-lived, and watch new
// allocations land in a dynamic generation — no annotations anywhere.
//
//   ./quickstart
#include <cstdio>
#include <vector>

#include "src/runtime/frame.h"
#include "src/runtime/thread.h"
#include "src/runtime/vm.h"

using namespace rolp;

int main() {
  // ROLP ships as a launch-time flag, exactly like the paper.
  VmConfig config;
  std::string error;
  if (!VmConfig::ParseFlags({"-Xmx64m", "-XX:+UseROLP"}, &config, &error)) {
    std::fprintf(stderr, "flag error: %s\n", error.c_str());
    return 1;
  }
  config.jit.hot_threshold = 100;
  config.rolp.inference_period = 8;
  config.young_fraction = 0.10;

  VM vm(config);
  RuntimeThread* thread = vm.AttachThread();

  // "Application code": a cache-insert method with one allocation site.
  ClassId entry_cls = vm.heap().classes().RegisterInstance("app.CacheEntry", 24, {0});
  MethodId put = vm.jit().RegisterMethod("app.Cache::put", 120);
  uint32_t site = vm.jit().RegisterAllocSite(put);
  vm.jit().Compile(put);  // pretend it is already hot

  // A rolling cache: entries live for thousands of operations (many GC
  // cycles), i.e. they are middle-lived — G1 would copy them over and over.
  HandleScope scope(*thread);
  constexpr int kWindow = 10000;
  std::vector<Local> cache;
  for (int i = 0; i < kWindow; i++) {
    cache.push_back(thread->NewLocal(nullptr));
  }

  std::printf("running: allocating cache entries + transient garbage...\n");
  for (int op = 0; op < 300000; op++) {
    Object* e = thread->AllocateInstance(site, entry_cls);
    if (e == nullptr) {
      // Allocation failure is recoverable (AllocStatus::kOutOfMemory after
      // bounded GC retries); a real app could shed load here. We just leave.
      std::fprintf(stderr, "OOM\n");
      vm.DetachThread(thread);
      return 1;
    }
    cache[op % kWindow].set(e);
    // Transient request churn drives young collections.
    thread->AllocateDataArray(RuntimeThread::kNoSite, 2048);
  }

  // Where do new cache entries land now?
  Object* probe = thread->AllocateInstance(site, entry_cls);
  Region* region = vm.heap().regions().RegionFor(probe);
  uint32_t ctx = markword::Context(probe->LoadMark());

  std::printf("\n--- after %llu GC cycles ---\n",
              static_cast<unsigned long long>(vm.collector().metrics().GcCycles()));
  std::printf("allocation context of probe: site=%u tss=%u\n", markword::ContextSite(ctx),
              markword::ContextTss(ctx));
  std::printf("profiler estimate for this context: generation %d\n",
              vm.profiler()->TargetGen(ctx));
  std::printf("probe object landed in a '%s' region (gen %d)\n",
              RegionKindName(region->kind()), region->gen());
  std::printf("lifetime decisions learned: %llu, inferences run: %llu\n",
              static_cast<unsigned long long>(vm.profiler()->decisions_count()),
              static_cast<unsigned long long>(vm.profiler()->inferences_run()));
  std::printf("bytes copied by GC: %.1f MB (pretenuring keeps this low)\n",
              static_cast<double>(vm.collector().metrics().BytesCopied()) / 1048576.0);

  vm.DetachThread(thread);
  return 0;
}
