#!/usr/bin/env bash
# Runs the microbenchmark suites and records google-benchmark JSON into
# BENCH_micro.json and BENCH_pause.json at the repo root (committed, so perf
# changes show up in review diffs). Uses the default preset's build tree;
# builds it if missing.
#
# Usage: scripts/bench.sh [extra google-benchmark args...]
#   e.g. scripts/bench.sh --benchmark_filter='BM_Alloc.*'
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${ROLP_BENCH_BUILD_DIR:-build}
OUT=${ROLP_BENCH_OUT:-BENCH_micro.json}
PAUSE_OUT=${ROLP_BENCH_PAUSE_OUT:-BENCH_pause.json}
REPS=${ROLP_BENCH_REPS:-3}

if [ ! -x "$BUILD_DIR/bench/bench_micro" ] || [ ! -x "$BUILD_DIR/bench/bench_pause" ]; then
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" --target bench_micro bench_pause
fi

"$BUILD_DIR/bench/bench_micro" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out_format=json \
  --benchmark_out="$OUT" \
  "$@"

echo "wrote $OUT"

# Pause-engine suite: BM_PauseYoungSkewedRemset pins its iteration count (the
# heap refill dominates), so repetitions are what produce the aggregates.
"$BUILD_DIR/bench/bench_pause" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out_format=json \
  --benchmark_out="$PAUSE_OUT" \
  "$@"

echo "wrote $PAUSE_OUT"
