#!/usr/bin/env bash
# Runs the microbenchmark suite and records google-benchmark JSON into
# BENCH_micro.json at the repo root (committed, so perf changes show up in
# review diffs). Uses the default preset's build tree; builds it if missing.
#
# Usage: scripts/bench.sh [extra google-benchmark args...]
#   e.g. scripts/bench.sh --benchmark_filter='BM_Alloc.*'
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${ROLP_BENCH_BUILD_DIR:-build}
OUT=${ROLP_BENCH_OUT:-BENCH_micro.json}
REPS=${ROLP_BENCH_REPS:-3}

if [ ! -x "$BUILD_DIR/bench/bench_micro" ]; then
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" --target bench_micro
fi

"$BUILD_DIR/bench/bench_micro" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out_format=json \
  --benchmark_out="$OUT" \
  "$@"

echo "wrote $OUT"
