#!/usr/bin/env python3
"""Gate CI on the market-data ingest verdict (DESIGN.md §16).

Usage: check_ingest.py RUN_OUTPUT.txt [--arms a,b,..] [--require-rolp-tail]

Reads the last `INGEST_VERDICT {...}` line from a captured
marketdata_pipeline run and fails unless:
  * the verdict's own pass bit is set (every arm survived),
  * every required arm is present, survived, and analyzed exactly the
    scheduled event count (nothing silently dropped or wedged),
  * every arm's offered rate is within --rate-tolerance of the target —
    the open-loop pacing guarantee the absolute-deadline Pacer exists for;
    a drifting generator makes the latency numbers meaningless,
  * with --require-rolp-tail: the ROLP arm's p99.9 beat (or tied) the G1
    arm's, the paper's headline claim on this workload.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("output", help="captured run output containing INGEST_VERDICT")
    parser.add_argument("--arms", default="pooled,g1,rolp,zgc",
                        help="comma-separated arms that must be present")
    parser.add_argument("--rate-tolerance", type=float, default=0.02,
                        help="max fractional offered-rate error per arm")
    parser.add_argument("--require-rolp-tail", action="store_true",
                        help="fail unless rolp p99.9 <= g1 p99.9")
    args = parser.parse_args()

    verdict = None
    with open(args.output) as f:
        for line in f:
            if line.startswith("INGEST_VERDICT "):
                verdict = line[len("INGEST_VERDICT "):].strip()
    if verdict is None:
        fail(f"{args.output}: no INGEST_VERDICT line found")
    try:
        v = json.loads(verdict)
    except json.JSONDecodeError as e:
        fail(f"{args.output}: INGEST_VERDICT is not valid JSON: {e}")

    for key in ("workload", "events", "rate_eps", "arms", "rolp_tail_ok", "pass"):
        if key not in v:
            fail(f"INGEST_VERDICT missing '{key}': {verdict}")
    if not v["pass"]:
        fail("verdict pass bit is false (an arm did not survive)")

    events = v["events"]
    rate = v["rate_eps"]
    required = [a for a in args.arms.split(",") if a]
    for arm in required:
        if arm not in v["arms"]:
            fail(f"required arm '{arm}' missing from verdict")
        a = v["arms"][arm]
        if not a["survived"]:
            fail(f"arm '{arm}' did not survive")
        if a["analyzed"] != events:
            fail(f"arm '{arm}' analyzed {a['analyzed']} of {events} events "
                 f"(drops={a.get('drops')})")
        err = abs(a["offered_eps"] - rate) / rate
        if err > args.rate_tolerance:
            fail(f"arm '{arm}' offered {a['offered_eps']:.0f} eps vs target "
                 f"{rate:.0f} ({err:.1%} drift > {args.rate_tolerance:.1%}): "
                 f"open-loop pacing is broken")

    if args.require_rolp_tail and not v["rolp_tail_ok"]:
        g1 = v["arms"].get("g1", {}).get("p999_us")
        rolp = v["arms"].get("rolp", {}).get("p999_us")
        fail(f"rolp p99.9 ({rolp}us) did not beat g1 p99.9 ({g1}us)")

    arms_summary = " ".join(
        f"{name}:p99.9={a['p999_us']:.0f}us" for name, a in v["arms"].items())
    print(f"OK: ingest verdict passed ({events} events @ {rate:.0f} eps) {arms_summary}")


if __name__ == "__main__":
    main()
