#!/usr/bin/env python3
"""Validate the observability artifacts a traced workload run emits.

Usage: validate_observability.py TRACE.json METRICS.json OLD_TABLE.txt

Checks, failing loudly instead of letting CI pass on an empty file:
  * TRACE.json is well-formed chrome://tracing JSON ({"traceEvents": [...]}),
    non-empty, every event carries the required fields for its phase, and the
    required event-name families (GC pauses/phases, watchdog coverage,
    profiler inference) are all present.
  * METRICS.json is well-formed ({"counters"/"gauges"/"histograms"}) and the
    required gauge names are present.
  * OLD_TABLE.txt is a non-empty introspection dump with the expected section
    headers.
"""

import json
import sys

REQUIRED_TRACE_NAMES = [
    # exact name, or prefix when ending in '.'
    "gc.pause",
    "gc.phase.",
    "watchdog.",
    "rolp.inference.",
    "workload.run",
]

REQUIRED_GAUGES = [
    "gc.cycles",
    "gc.pauses",
    "gc.pause.p99_ns",
    "vm.allocations",
    "rolp.inferences",
    "rolp.old_table.occupied",
    "watchdog.overruns",
]


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        data = json.load(f)
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    names = set()
    for e in events:
        for field in ("name", "cat", "ph", "pid", "tid", "ts"):
            if field not in e:
                fail(f"{path}: event missing '{field}': {e}")
        if e["ph"] == "X" and "dur" not in e:
            fail(f"{path}: complete event missing 'dur': {e}")
        if e["ph"] == "i" and e.get("s") != "t":
            fail(f"{path}: instant event missing thread scope: {e}")
        names.add(e["name"])
    for req in REQUIRED_TRACE_NAMES:
        if req.endswith("."):
            if not any(n.startswith(req) for n in names):
                fail(f"{path}: no event name with prefix '{req}' "
                     f"(have: {sorted(names)})")
        elif req not in names:
            fail(f"{path}: required event '{req}' absent (have: {sorted(names)})")
    print(f"  trace ok: {len(events)} events, {len(names)} distinct names")


def check_metrics(path):
    with open(path) as f:
        data = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(data.get(section), dict):
            fail(f"{path}: missing '{section}' section")
    gauges = data["gauges"]
    for name in REQUIRED_GAUGES:
        if name not in gauges:
            fail(f"{path}: required gauge '{name}' absent "
                 f"(have: {sorted(gauges)})")
    if gauges["gc.cycles"] <= 0:
        fail(f"{path}: gc.cycles is {gauges['gc.cycles']}; the workload run "
             "recorded no GC activity")
    print(f"  metrics ok: {len(data['counters'])} counters, "
          f"{len(gauges)} gauges, {len(data['histograms'])} histograms")


def check_old_table(path):
    with open(path) as f:
        text = f.read()
    if not text.strip():
        fail(f"{path}: empty dump")
    for header in ("== ROLP profiler introspection ==", "old_table:",
                   "degraded:", "decisions:", "rows:"):
        if header not in text:
            fail(f"{path}: expected section '{header}' absent")
    print(f"  old-table dump ok: {len(text.splitlines())} lines")


def main():
    if len(sys.argv) != 4:
        print(__doc__)
        return 2
    check_trace(sys.argv[1])
    check_metrics(sys.argv[2])
    check_old_table(sys.argv[3])
    print("observability validation passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
