#!/usr/bin/env python3
"""Validate the observability artifacts a traced workload run emits.

Usage: validate_observability.py TRACE.json METRICS.json OLD_TABLE.txt [METRICS.prom]

Checks, failing loudly instead of letting CI pass on an empty file:
  * TRACE.json is well-formed chrome://tracing JSON ({"traceEvents": [...]}),
    non-empty, every event carries the required fields for its phase, and the
    required event-name families (GC pauses/phases, watchdog coverage,
    profiler inference) are all present.
  * METRICS.json is well-formed ({"counters"/"gauges"/"histograms"}) and the
    required gauge names are present.
  * OLD_TABLE.txt is a non-empty introspection dump with the expected section
    headers.
  * METRICS.prom (optional, written when ROLP_METRICS_FORMAT=prom) parses as
    Prometheus text exposition 0.0.4: every sample line references a declared
    TYPE, names carry the rolp_ prefix, values parse as numbers, and summaries
    come with a _count series.
"""

import json
import re
import sys

REQUIRED_TRACE_NAMES = [
    # exact name, or prefix when ending in '.'
    "gc.pause",
    "gc.phase.",
    "watchdog.",
    "rolp.inference.",
    "workload.run",
]

REQUIRED_GAUGES = [
    "gc.cycles",
    "gc.pauses",
    "gc.pause.p99_ns",
    "gc.phase_cpu_ns.mark",
    "gc.phase_cpu_ns.evacuate",
    "heap.arenas",
    "heap.region_lock.acquisitions",
    "vm.allocations",
    "vm.rss_bytes",
    "rolp.inferences",
    "rolp.old_table.occupied",
    "watchdog.overruns",
]


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        data = json.load(f)
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    names = set()
    for e in events:
        for field in ("name", "cat", "ph", "pid", "tid", "ts"):
            if field not in e:
                fail(f"{path}: event missing '{field}': {e}")
        if e["ph"] == "X" and "dur" not in e:
            fail(f"{path}: complete event missing 'dur': {e}")
        if e["ph"] == "i" and e.get("s") != "t":
            fail(f"{path}: instant event missing thread scope: {e}")
        names.add(e["name"])
    for req in REQUIRED_TRACE_NAMES:
        if req.endswith("."):
            if not any(n.startswith(req) for n in names):
                fail(f"{path}: no event name with prefix '{req}' "
                     f"(have: {sorted(names)})")
        elif req not in names:
            fail(f"{path}: required event '{req}' absent (have: {sorted(names)})")
    print(f"  trace ok: {len(events)} events, {len(names)} distinct names")


def check_metrics(path):
    with open(path) as f:
        data = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(data.get(section), dict):
            fail(f"{path}: missing '{section}' section")
    gauges = data["gauges"]
    for name in REQUIRED_GAUGES:
        if name not in gauges:
            fail(f"{path}: required gauge '{name}' absent "
                 f"(have: {sorted(gauges)})")
    if gauges["gc.cycles"] <= 0:
        fail(f"{path}: gc.cycles is {gauges['gc.cycles']}; the workload run "
             "recorded no GC activity")
    if gauges["vm.rss_bytes"] <= 0:
        fail(f"{path}: vm.rss_bytes is {gauges['vm.rss_bytes']}; the "
             "/proc/self/statm reader returned nothing")
    print(f"  metrics ok: {len(data['counters'])} counters, "
          f"{len(gauges)} gauges, {len(data['histograms'])} histograms")


def check_old_table(path):
    with open(path) as f:
        text = f.read()
    if not text.strip():
        fail(f"{path}: empty dump")
    for header in ("== ROLP profiler introspection ==", "old_table:",
                   "degraded:", "decisions:", "rows:"):
        if header not in text:
            fail(f"{path}: expected section '{header}' absent")
    print(f"  old-table dump ok: {len(text.splitlines())} lines")


PROM_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
PROM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+(?P<value>\S+)$")


def check_prometheus(path):
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines:
        fail(f"{path}: empty exposition")
    types = {}       # metric name -> declared type
    samples = set()  # bare sample names seen
    n_samples = 0
    for i, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                       "summary", "histogram"):
                    fail(f"{path}:{i}: malformed TYPE line: {line!r}")
                if not PROM_NAME_RE.match(parts[2]):
                    fail(f"{path}:{i}: invalid metric name {parts[2]!r}")
                types[parts[2]] = parts[3]
            continue
        m = PROM_SAMPLE_RE.match(line)
        if not m:
            fail(f"{path}:{i}: unparseable sample line: {line!r}")
        name = m.group("name")
        if not name.startswith("rolp_"):
            fail(f"{path}:{i}: sample {name!r} lacks the rolp_ prefix")
        base = name
        for suffix in ("_count", "_sum"):
            if base.endswith(suffix) and base[: -len(suffix)] in types:
                base = base[: -len(suffix)]
        if base not in types:
            fail(f"{path}:{i}: sample {name!r} has no preceding TYPE line")
        try:
            float(m.group("value"))
        except ValueError:
            fail(f"{path}:{i}: non-numeric value {m.group('value')!r}")
        samples.add(base)
        n_samples += 1
    for name, kind in types.items():
        if name not in samples:
            fail(f"{path}: TYPE declared for {name!r} but no samples follow")
        if kind == "summary" and not any(
                l.startswith(name + "_count ") for l in lines):
            fail(f"{path}: summary {name!r} missing its _count series")
    print(f"  prometheus ok: {len(types)} metrics, {n_samples} samples")


def main():
    if len(sys.argv) not in (4, 5):
        print(__doc__)
        return 2
    check_trace(sys.argv[1])
    check_metrics(sys.argv[2])
    check_old_table(sys.argv[3])
    if len(sys.argv) == 5:
        check_prometheus(sys.argv[4])
    print("observability validation passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
