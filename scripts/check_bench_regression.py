#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on large regressions.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.25]
       [--filter REGEX ...]

For every benchmark present in both files (matched by name, preferring the
"_median" aggregate when repetitions were used), fail if the current time is
more than `threshold` slower than the baseline. Only benchmarks matching one
of the --filter regexes are gated (all, if no filter given); everything else
is reported informationally. Benchmarks missing from either side are skipped —
this is a smoke gate against accidental large regressions on the latency-
critical paths, not a statistics suite.
"""

import argparse
import json
import re
import sys


def load_times(path):
    """name -> (time, unit), preferring median aggregates over raw entries."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for b in data.get("benchmarks", []):
        name = b["name"]
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") != "median":
                continue
            name = b.get("run_name", name.rsplit("_median", 1)[0])
        elif name.endswith(("_mean", "_median", "_stddev", "_cv")):
            continue
        # Prefer manual/real time; fall back to cpu time.
        t = b.get("real_time", b.get("cpu_time"))
        if t is None:
            continue
        # Median aggregates overwrite raw entries of the same run_name.
        if b.get("run_type") == "aggregate" or name not in times:
            times[name] = (float(t), b.get("time_unit", "ns"))
    return times


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="fail when current > baseline * (1 + threshold)")
    ap.add_argument("--filter", action="append", default=[],
                    help="regex; only matching benchmark names are gated")
    args = ap.parse_args()

    base = load_times(args.baseline)
    cur = load_times(args.current)
    gates = [re.compile(p) for p in args.filter]

    failures = []
    for name in sorted(base.keys() & cur.keys()):
        b, unit = base[name]
        c, _ = cur[name]
        if b <= 0:
            continue
        ratio = c / b
        gated = not gates or any(g.search(name) for g in gates)
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSED" if gated else "regressed (ungated)"
            if gated:
                failures.append(name)
        print(f"  {name}: {b:.1f} -> {c:.1f} {unit} "
              f"({(ratio - 1.0) * 100.0:+.1f}%) {status}")

    if failures:
        print(f"FAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.threshold * 100:.0f}%: {', '.join(failures)}")
        return 1
    print("bench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
