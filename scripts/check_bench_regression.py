#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on large regressions.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.25]
       [--filter REGEX ...] [--require REGEX ...]

For every benchmark present in both files (matched by name, preferring the
"_median" aggregate when repetitions were used), fail if the current time is
more than `threshold` slower than the baseline. Times are normalized to
nanoseconds via each entry's `time_unit` before the ratio is computed, so an
ns-vs-us mismatch between files compares correctly instead of silently
passing (or failing) on raw numbers. Only benchmarks matching one of the
--filter regexes are gated (all, if no filter given); everything else is
reported informationally. A --require regex asserts coverage: it must match
at least one baseline benchmark, and every baseline benchmark it matches must
also be present in the current run — a gated benchmark that silently vanished
from the current run is a failure, not a skip.
"""

import argparse
import json
import re
import sys

# google-benchmark time_unit values, normalized to nanoseconds.
UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """name -> time in ns, preferring median aggregates over raw entries."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for b in data.get("benchmarks", []):
        name = b["name"]
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") != "median":
                continue
            name = b.get("run_name", name.rsplit("_median", 1)[0])
        elif name.endswith(("_mean", "_median", "_stddev", "_cv")):
            continue
        # Prefer manual/real time; fall back to cpu time.
        t = b.get("real_time", b.get("cpu_time"))
        if t is None:
            continue
        unit = b.get("time_unit", "ns")
        if unit not in UNIT_TO_NS:
            print(f"  warning: {name}: unknown time_unit '{unit}', assuming ns")
        ns = float(t) * UNIT_TO_NS.get(unit, 1.0)
        # Median aggregates overwrite raw entries of the same run_name.
        if b.get("run_type") == "aggregate" or name not in times:
            times[name] = ns
    return times


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="fail when current > baseline * (1 + threshold)")
    ap.add_argument("--filter", action="append", default=[],
                    help="regex; only matching benchmark names are gated")
    ap.add_argument("--require", action="append", default=[],
                    help="regex; must match a baseline benchmark, and every "
                         "baseline match must be present in the current run")
    args = ap.parse_args()

    base = load_times(args.baseline)
    cur = load_times(args.current)
    # Required benchmarks are always gated too.
    gates = [re.compile(p) for p in args.filter + args.require]

    failures = []
    for pattern in args.require:
        rx = re.compile(pattern)
        base_matches = sorted(n for n in base if rx.search(n))
        if not base_matches:
            print(f"  REQUIRED pattern '{pattern}' matches no baseline benchmark")
            failures.append(f"require:{pattern}")
            continue
        missing = [n for n in base_matches if n not in cur]
        for n in missing:
            print(f"  {n}: REQUIRED but missing from current run")
            failures.append(n)

    for name in sorted(base.keys() & cur.keys()):
        b = base[name]
        c = cur[name]
        if b <= 0:
            continue
        ratio = c / b
        gated = not gates or any(g.search(name) for g in gates)
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSED" if gated else "regressed (ungated)"
            if gated:
                failures.append(name)
        print(f"  {name}: {b:.1f} -> {c:.1f} ns "
              f"({(ratio - 1.0) * 100.0:+.1f}%) {status}")

    if failures:
        print(f"FAIL: {len(failures)} benchmark check(s) failed at threshold "
              f"{args.threshold * 100:.0f}%: {', '.join(failures)}")
        return 1
    print("bench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
