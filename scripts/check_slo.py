#!/usr/bin/env python3
"""Gate CI on the machine-readable SLO verdict an open-loop run prints.

Usage: check_slo.py RUN_OUTPUT.txt [--max-p999-ms MS] [--require-shed]

Reads the last `SLO_VERDICT {...}` line from a captured kvstore_service (or
chaos_campaign --service) run and fails unless:
  * the verdict's own pass bit is set (thresholds were met),
  * the run survived (zero VM aborts — the zero-OOM guarantee),
  * all-time p99.9 lateness is within --max-p999-ms (defaults to the
    threshold the binary itself applied),
  * with --require-shed: the overload actually exercised backpressure
    (rejected + shed > 0), so a passing verdict can't come from an
    accidentally under-loaded run.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("output", help="captured run output containing SLO_VERDICT")
    parser.add_argument("--max-p999-ms", type=float, default=None,
                        help="explicit all-time p99.9 lateness gate (ms)")
    parser.add_argument("--require-shed", action="store_true",
                        help="fail unless the run rejected or shed load")
    parser.add_argument("--require-shards", type=int, default=None,
                        help="fail unless the verdict is a merged sharded one "
                             "with exactly this many shards")
    parser.add_argument("--min-rss-drop", type=float, default=None,
                        help="fail unless the post-load RSS settle watch saw "
                             "at least this fractional drop (e.g. 0.25)")
    args = parser.parse_args()

    verdict = None
    with open(args.output) as f:
        for line in f:
            if line.startswith("SLO_VERDICT "):
                verdict = line[len("SLO_VERDICT "):].strip()
    if verdict is None:
        fail(f"{args.output}: no SLO_VERDICT line found")
    try:
        v = json.loads(verdict)
    except json.JSONDecodeError as e:
        fail(f"{args.output}: SLO_VERDICT is not valid JSON: {e}")

    for key in ("collector", "pass", "survived", "alltime", "counts", "thresholds"):
        if key not in v:
            fail(f"SLO_VERDICT missing '{key}': {verdict}")

    if not v["survived"]:
        fail("run did not survive (VM abort during overload)")
    if not v["pass"]:
        fail(f"SLO verdict failed: checks={v.get('checks')}")

    p999 = v["alltime"].get("p999_ms")
    limit = args.max_p999_ms
    if limit is None:
        limit = v["thresholds"].get("p999_ms")
    if p999 is None or limit is None:
        fail("verdict lacks p999 data")
    if p999 > limit:
        fail(f"all-time p99.9 lateness {p999:.1f}ms exceeds limit {limit:.1f}ms")

    counts = v["counts"]
    if args.require_shed and counts.get("rejected", 0) + counts.get("shed", 0) == 0:
        fail("overload run neither rejected nor shed anything; "
             "the system was not actually saturated")

    if args.require_shards is not None:
        shards = v.get("shards")
        if shards != args.require_shards:
            fail(f"expected a merged verdict over {args.require_shards} shards, "
                 f"got shards={shards}")

    rss_note = ""
    if args.min_rss_drop is not None:
        drop = v.get("rss_drop")
        if drop is None:
            fail("verdict has no rss_drop (RSS settle watch did not run; "
                 "is ROLP_HEAP_UNCOMMIT_MS set?)")
        if drop < args.min_rss_drop:
            fail(f"RSS dropped only {drop:.1%} after load stopped "
                 f"(need >= {args.min_rss_drop:.1%}); uncommit is not "
                 f"returning idle regions to the OS "
                 f"(load={v.get('rss_load_bytes')} settled={v.get('rss_settled_bytes')})")
        rss_note = f" rss_drop={drop:.1%}"

    print(f"SLO ok [{v['collector']}]: p99.9={p999:.1f}ms (limit {limit:.1f}ms) "
          f"ok={counts.get('ok')} rejected={counts.get('rejected')} "
          f"shed={counts.get('shed')} survived=true{rss_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
