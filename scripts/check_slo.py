#!/usr/bin/env python3
"""Gate CI on the machine-readable SLO verdict an open-loop run prints.

Usage: check_slo.py RUN_OUTPUT.txt [--max-p999-ms MS] [--require-shed]

Reads the last `SLO_VERDICT {...}` line from a captured kvstore_service (or
chaos_campaign --service) run and fails unless:
  * the verdict's own pass bit is set (thresholds were met),
  * the run survived (zero VM aborts — the zero-OOM guarantee),
  * all-time p99.9 lateness is within --max-p999-ms (defaults to the
    threshold the binary itself applied),
  * with --require-shed: the overload actually exercised backpressure
    (rejected + shed > 0), so a passing verdict can't come from an
    accidentally under-loaded run.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("output", help="captured run output containing SLO_VERDICT")
    parser.add_argument("--max-p999-ms", type=float, default=None,
                        help="explicit all-time p99.9 lateness gate (ms)")
    parser.add_argument("--require-shed", action="store_true",
                        help="fail unless the run rejected or shed load")
    args = parser.parse_args()

    verdict = None
    with open(args.output) as f:
        for line in f:
            if line.startswith("SLO_VERDICT "):
                verdict = line[len("SLO_VERDICT "):].strip()
    if verdict is None:
        fail(f"{args.output}: no SLO_VERDICT line found")
    try:
        v = json.loads(verdict)
    except json.JSONDecodeError as e:
        fail(f"{args.output}: SLO_VERDICT is not valid JSON: {e}")

    for key in ("collector", "pass", "survived", "alltime", "counts", "thresholds"):
        if key not in v:
            fail(f"SLO_VERDICT missing '{key}': {verdict}")

    if not v["survived"]:
        fail("run did not survive (VM abort during overload)")
    if not v["pass"]:
        fail(f"SLO verdict failed: checks={v.get('checks')}")

    p999 = v["alltime"].get("p999_ms")
    limit = args.max_p999_ms
    if limit is None:
        limit = v["thresholds"].get("p999_ms")
    if p999 is None or limit is None:
        fail("verdict lacks p999 data")
    if p999 > limit:
        fail(f"all-time p99.9 lateness {p999:.1f}ms exceeds limit {limit:.1f}ms")

    counts = v["counts"]
    if args.require_shed and counts.get("rejected", 0) + counts.get("shed", 0) == 0:
        fail("overload run neither rejected nor shed anything; "
             "the system was not actually saturated")

    print(f"SLO ok [{v['collector']}]: p99.9={p999:.1f}ms (limit {limit:.1f}ms) "
          f"ok={counts.get('ok')} rejected={counts.get('rejected')} "
          f"shed={counts.get('shed')} survived=true")
    return 0


if __name__ == "__main__":
    sys.exit(main())
