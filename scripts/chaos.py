#!/usr/bin/env python3
"""Seeded chaos campaign driver.

Runs the chaos_campaign binary across a range of seeds, parses each run's
CHAOS_RESULT line, classifies abnormal exits as crashes, shrinks every
failing (crash-classified) seed's replay spec to a minimal ROLP_FAULTS spec
that still reproduces the failure, and writes a JSON triage report.

Usage:
  scripts/chaos.py --seeds 100
  scripts/chaos.py --seeds 20 --workload graph --rate 0.002 --points 'heap.*'
  scripts/chaos.py --seeds 10 --binary build/tests/chaos_campaign --out report.json

Exit status: 0 when no run crashed, 1 otherwise (any non-crash outcome —
quarantined, degraded, watchdog-fallback, recovered, clean — is a success:
the whole point is that injected faults are survived).
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import time

RESULT_PREFIX = "CHAOS_RESULT "


def run_binary(binary, args, timeout_s):
    """Runs one campaign; returns (outcome_dict_or_None, exit_code, detail)."""
    try:
        proc = subprocess.run(
            [binary] + args,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            timeout=timeout_s,
            text=True,
        )
    except subprocess.TimeoutExpired:
        return None, None, "timeout after %gs" % timeout_s
    result = None
    for line in proc.stdout.splitlines():
        if line.startswith(RESULT_PREFIX):
            try:
                result = json.loads(line[len(RESULT_PREFIX):])
            except json.JSONDecodeError:
                return None, proc.returncode, "unparseable CHAOS_RESULT line"
    if proc.returncode != 0:
        detail = "exit code %d" % proc.returncode
        if proc.returncode < 0:
            try:
                detail = "killed by %s" % signal.Signals(-proc.returncode).name
            except ValueError:
                detail = "killed by signal %d" % -proc.returncode
        tail = "\n".join(proc.stderr.splitlines()[-6:])
        return None, proc.returncode, detail + (("\n" + tail) if tail else "")
    if result is None:
        return None, proc.returncode, "exited 0 without a CHAOS_RESULT line"
    return result, proc.returncode, ""


def crashes(binary, base_args, faults_spec, timeout_s):
    """True when replaying `faults_spec` still crashes (or hangs) the run."""
    result, _, _ = run_binary(
        binary, base_args + ["--faults=" + faults_spec], timeout_s)
    return result is None


def shrink_spec(binary, base_args, spec, timeout_s, budget_s=120.0):
    """Greedy one-at-a-time removal: drops every spec entry whose removal
    keeps the run crashing. Each entry arms one fail point, so the survivor
    set is the minimal (for this reduction order) set of points needed."""
    entries = [e for e in spec.split(",") if e]
    deadline = time.monotonic() + budget_s
    i = 0
    while i < len(entries) and len(entries) > 1:
        if time.monotonic() > deadline:
            break
        candidate = entries[:i] + entries[i + 1:]
        if crashes(binary, base_args, ",".join(candidate), timeout_s):
            entries = candidate  # entry i was irrelevant; stay at index i
        else:
            i += 1  # entry i is load-bearing; keep it
    return ",".join(entries)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", default="build/tests/chaos_campaign")
    ap.add_argument("--seeds", type=int, default=20,
                    help="number of seeds to run (1..N)")
    ap.add_argument("--seed-base", type=int, default=1)
    ap.add_argument("--workload", default="kvstore", choices=["kvstore", "graph"])
    ap.add_argument("--seconds", type=float, default=2.0,
                    help="workload duration per seed")
    ap.add_argument("--threads", type=int, default=2)
    ap.add_argument("--rate", type=float, default=0.0005,
                    help="per-hit fault probability")
    ap.add_argument("--points", default="",
                    help="catalog glob, e.g. 'heap.*' (default: all points)")
    ap.add_argument("--verify", default="pause", choices=["off", "pause", "full"])
    ap.add_argument("--sample", type=int, default=1,
                    help="ROLP_VERIFY_SAMPLE (1 = exhaustive)")
    ap.add_argument("--gc", default="rolp")
    ap.add_argument("--heap-mb", type=int, default=64)
    ap.add_argument("--timeout", type=float, default=0.0,
                    help="per-run timeout seconds (default: 30x --seconds + 30)")
    ap.add_argument("--out", default="", help="write the JSON report here too")
    args = ap.parse_args()

    if not os.path.exists(args.binary):
        sys.stderr.write("chaos binary not found: %s (build the repo first)\n"
                         % args.binary)
        return 2

    timeout_s = args.timeout or (30.0 * args.seconds + 30.0)
    base_args = [
        "--workload=%s" % args.workload,
        "--seconds=%g" % args.seconds,
        "--threads=%d" % args.threads,
        "--verify=%s" % args.verify,
        "--sample=%d" % args.sample,
        "--gc=%s" % args.gc,
        "--heap-mb=%d" % args.heap_mb,
    ]

    runs = []
    tally = {}
    for i in range(args.seeds):
        seed = args.seed_base + i
        seed_args = base_args + ["--seed=%d" % seed, "--rate=%g" % args.rate]
        if args.points:
            seed_args.append("--points=%s" % args.points)
        result, code, detail = run_binary(args.binary, seed_args, timeout_s)
        if result is None:
            # Crash (or hang): recover the replay spec out-of-band, then
            # shrink it to the minimal spec that still reproduces.
            spec_proc = subprocess.run(
                [args.binary] + seed_args + ["--print-spec"],
                stdout=subprocess.PIPE, text=True, timeout=60)
            full_spec = spec_proc.stdout.strip()
            minimized = shrink_spec(args.binary, base_args, full_spec, timeout_s)
            run = {
                "seed": seed,
                "outcome": "crash",
                "detail": detail,
                "replay_spec": full_spec,
                "minimized_spec": minimized,
                "repro": "%s %s --faults='%s'"
                         % (args.binary, " ".join(base_args), minimized),
            }
        else:
            run = result
        runs.append(run)
        tally[run["outcome"]] = tally.get(run["outcome"], 0) + 1
        print("seed %4d: %-18s %s" % (seed, run["outcome"],
                                      run.get("detail", "")), flush=True)

    report = {
        "binary": args.binary,
        "workload": args.workload,
        "seeds": args.seeds,
        "rate": args.rate,
        "points": args.points or "*",
        "verify": args.verify,
        "sample": args.sample,
        "outcomes": tally,
        "crashes": [r for r in runs if r["outcome"] == "crash"],
        "runs": runs,
    }
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
    print(json.dumps({k: v for k, v in report.items() if k != "runs"}, indent=2))

    if tally.get("crash", 0) > 0:
        sys.stderr.write("FAIL: %d crash outcome(s); replay with the minimized "
                         "--faults specs above\n" % tally["crash"])
        return 1
    print("OK: %d seeds, no crashes (%s)" % (args.seeds, ", ".join(
        "%s=%d" % kv for kv in sorted(tally.items()))))
    return 0


if __name__ == "__main__":
    sys.exit(main())
