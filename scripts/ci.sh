#!/usr/bin/env bash
# CI entry point: tier-1 tests under the default build, then the same suites
# under ASan+UBSan and TSan. The fault suite (rolp_fault_tests) is part of
# every preset's ctest run, so the fail-point catalog — including the GC
# watchdog stall/death scenarios — is exercised under all three.
#
# Usage: scripts/ci.sh [preset ...]
#   With no arguments runs: default asan-ubsan tsan
set -euo pipefail

cd "$(dirname "$0")/.."

PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(default asan-ubsan tsan)
fi

for preset in "${PRESETS[@]}"; do
  echo "=== [$preset] configure"
  cmake --preset "$preset"
  echo "=== [$preset] build"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "=== [$preset] test"
  ctest --preset "$preset"
done

# Bench smoke: the microbenchmarks must still run to completion (one
# iteration each — this checks the harness, not the numbers).
echo "=== bench smoke"
if [ -x build/bench/bench_micro ]; then
  build/bench/bench_micro --benchmark_min_time=0.001 >/dev/null
fi
if [ -x build/bench/bench_pause ]; then
  build/bench/bench_pause --benchmark_filter='BM_ProfilerGcEndInference' \
    --benchmark_min_time=0.001 >/dev/null
fi

# Bench regression smoke (ROLP_BENCH_CHECK=0 skips): re-measure the gated
# latency-critical benchmarks and compare medians against the committed
# baselines; >25% regression fails. Gated set: the allocation fast path and
# the in-pause profiler cost — the two numbers this repo exists to keep small.
if [ "${ROLP_BENCH_CHECK:-1}" != "0" ] && command -v python3 >/dev/null; then
  echo "=== bench regression check"
  if [ -f BENCH_micro.json ] && [ -x build/bench/bench_micro ]; then
    build/bench/bench_micro \
      --benchmark_filter='BM_AllocProfiled|BM_AllocUnprofiled' \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
      --benchmark_out_format=json --benchmark_out=/tmp/ci_bench_micro.json >/dev/null
    python3 scripts/check_bench_regression.py BENCH_micro.json /tmp/ci_bench_micro.json \
      --threshold 0.25 --require 'BM_AllocProfiled'
  fi
  if [ -f BENCH_pause.json ] && [ -x build/bench/bench_pause ]; then
    build/bench/bench_pause \
      --benchmark_filter='BM_ProfilerGcEndInference' \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
      --benchmark_out_format=json --benchmark_out=/tmp/ci_bench_pause.json >/dev/null
    python3 scripts/check_bench_regression.py BENCH_pause.json /tmp/ci_bench_pause.json \
      --threshold 0.25 --require 'BM_ProfilerGcEndInference'
  fi
fi

# Observability smoke (DESIGN.md §11): run the kvstore service with tracing,
# metrics dump, and the OLD-table dump enabled, then validate every artifact —
# well-formed JSON, the required GC/watchdog/profiler event names, the
# required gauges, and a non-empty introspection dump.
if command -v python3 >/dev/null && [ -x build/examples/kvstore_service ]; then
  echo "=== observability smoke"
  ROLP_TRACE=/tmp/ci_rolp_trace.json \
  ROLP_METRICS_DUMP=/tmp/ci_rolp_metrics.json \
  ROLP_DUMP_OLD_TABLE=/tmp/ci_rolp_old_table.txt \
    build/examples/kvstore_service rolp 2 >/dev/null
  python3 scripts/validate_observability.py \
    /tmp/ci_rolp_trace.json /tmp/ci_rolp_metrics.json /tmp/ci_rolp_old_table.txt
fi

echo "=== all presets passed: ${PRESETS[*]}"
