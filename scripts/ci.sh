#!/usr/bin/env bash
# CI entry point: tier-1 tests under the default build, then the same suites
# under ASan+UBSan and TSan. The fault suite (rolp_fault_tests) is part of
# every preset's ctest run, so the fail-point catalog — including the GC
# watchdog stall/death scenarios — is exercised under all three.
#
# Usage: scripts/ci.sh [preset ...]
#   With no arguments runs: default asan-ubsan tsan
set -euo pipefail

cd "$(dirname "$0")/.."

PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(default asan-ubsan tsan)
fi

for preset in "${PRESETS[@]}"; do
  echo "=== [$preset] configure"
  cmake --preset "$preset"
  echo "=== [$preset] build"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "=== [$preset] test"
  ctest --preset "$preset"
done

# Bench smoke: the microbenchmarks must still run to completion (one
# iteration each — this checks the harness, not the numbers).
echo "=== bench smoke"
if [ -x build/bench/bench_micro ]; then
  build/bench/bench_micro --benchmark_min_time=0.001 >/dev/null
fi

echo "=== all presets passed: ${PRESETS[*]}"
