#!/usr/bin/env bash
# CI entry point: tier-1 tests under the default build, then the same suites
# under ASan+UBSan and TSan. The fault suite (rolp_fault_tests) is part of
# every preset's ctest run, so the fail-point catalog — including the GC
# watchdog stall/death scenarios — is exercised under all three.
#
# Usage: scripts/ci.sh [preset ...]
#   With no arguments runs: default asan-ubsan tsan
set -euo pipefail

cd "$(dirname "$0")/.."

PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(default asan-ubsan tsan)
fi

for preset in "${PRESETS[@]}"; do
  echo "=== [$preset] configure"
  cmake --preset "$preset"
  echo "=== [$preset] build"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "=== [$preset] test"
  ctest --preset "$preset"
done

# Bench smoke: the microbenchmarks must still run to completion (one
# iteration each — this checks the harness, not the numbers).
echo "=== bench smoke"
if [ -x build/bench/bench_micro ]; then
  build/bench/bench_micro --benchmark_min_time=0.001 >/dev/null
fi
if [ -x build/bench/bench_pause ]; then
  build/bench/bench_pause --benchmark_filter='BM_ProfilerGcEndInference' \
    --benchmark_min_time=0.001 >/dev/null
fi

# Bench regression smoke (ROLP_BENCH_CHECK=0 skips): re-measure the gated
# latency-critical benchmarks and compare medians against the committed
# baselines; >25% regression fails. Gated set: the allocation fast path and
# the in-pause profiler cost — the two numbers this repo exists to keep small.
if [ "${ROLP_BENCH_CHECK:-1}" != "0" ] && command -v python3 >/dev/null; then
  echo "=== bench regression check"
  if [ -f BENCH_micro.json ] && [ -x build/bench/bench_micro ]; then
    build/bench/bench_micro \
      --benchmark_filter='BM_AllocProfiled|BM_AllocUnprofiled|BM_RegionAllocContention|BM_IngestAllocPath' \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
      --benchmark_out_format=json --benchmark_out=/tmp/ci_bench_micro.json >/dev/null
    python3 scripts/check_bench_regression.py BENCH_micro.json /tmp/ci_bench_micro.json \
      --threshold 0.25 --require 'BM_AllocProfiled' \
      --require 'BM_RegionAllocContention' \
      --require 'BM_IngestAllocPath'
  fi
  if [ -f BENCH_pause.json ] && [ -x build/bench/bench_pause ]; then
    build/bench/bench_pause \
      --benchmark_filter='BM_ProfilerGcEndInference|BM_VerifyPauseOverhead|BM_PauseConcurrentEvac' \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
      --benchmark_out_format=json --benchmark_out=/tmp/ci_bench_pause.json >/dev/null
    python3 scripts/check_bench_regression.py BENCH_pause.json /tmp/ci_bench_pause.json \
      --threshold 0.25 --require 'BM_ProfilerGcEndInference' \
      --require 'BM_VerifyPauseOverhead' \
      --require 'BM_PauseConcurrentEvac'
  fi
fi

# Observability smoke (DESIGN.md §11): run the kvstore service with tracing,
# metrics dump (JSON + Prometheus exposition), and the OLD-table dump enabled,
# then validate every artifact — well-formed JSON, the required GC/watchdog/
# profiler event names, the required gauges, a parseable Prometheus payload,
# and a non-empty introspection dump.
if command -v python3 >/dev/null && [ -x build/examples/kvstore_service ]; then
  echo "=== observability smoke"
  ROLP_TRACE=/tmp/ci_rolp_trace.json \
  ROLP_METRICS_DUMP=/tmp/ci_rolp_metrics.json \
  ROLP_METRICS_FORMAT=prom \
  ROLP_DUMP_OLD_TABLE=/tmp/ci_rolp_old_table.txt \
    build/examples/kvstore_service rolp 2 closed >/dev/null
  python3 scripts/validate_observability.py \
    /tmp/ci_rolp_trace.json /tmp/ci_rolp_metrics.json /tmp/ci_rolp_old_table.txt \
    /tmp/ci_rolp_metrics.json.prom
fi

# Overload smoke (DESIGN.md §13): open-loop kvstore at 2x the calibrated
# closed-loop capacity on a small heap. The run must survive without a VM
# abort, actually shed/reject load (--require-shed), and meet the SLO verdict
# it prints; check_slo.py gates on the all-time p99.9 lateness. The unit-test
# version of this lives in tests/service/service_test.cc; this one exercises
# the full calibrate -> overload -> verdict path end to end.
# ROLP_OVERLOAD_EXTENDED=1 stretches it to the 60s acceptance soak;
# ROLP_OVERLOAD_CHECK=0 skips.
if [ "${ROLP_OVERLOAD_CHECK:-1}" != "0" ] && command -v python3 >/dev/null \
   && [ -x build/examples/kvstore_service ]; then
  echo "=== overload smoke"
  OVERLOAD_SECONDS=8
  if [ "${ROLP_OVERLOAD_EXTENDED:-0}" = "1" ]; then
    OVERLOAD_SECONDS=60
  fi
  build/examples/kvstore_service rolp "$OVERLOAD_SECONDS" open \
    | tee /tmp/ci_overload.txt | tail -3
  python3 scripts/check_slo.py /tmp/ci_overload.txt --require-shed
fi

# Sharded-service smoke (DESIGN.md §15): four VM shards behind one open-loop
# generator with per-shard heap arenas and the uncommit sweeper armed. Gates:
# the *merged* SLO verdict passes with zero aborts across all shard VMs, the
# verdict really covers 4 shards, and process RSS drops >= 25% within
# 2 x ROLP_HEAP_UNCOMMIT_MS once load stops (idle regions actually returned
# to the OS, not just to the free lists). ROLP_SHARDED_CHECK=0 skips.
if [ "${ROLP_SHARDED_CHECK:-1}" != "0" ] && command -v python3 >/dev/null \
   && [ -x build/examples/kvstore_service ]; then
  echo "=== sharded service smoke"
  ROLP_SHARDS=4 ROLP_HEAP_UNCOMMIT_MS=1000 ROLP_SERVICE_RATE=14000 \
    build/examples/kvstore_service rolp 8 open \
    | tee /tmp/ci_sharded.txt | tail -3
  python3 scripts/check_slo.py /tmp/ci_sharded.txt \
    --require-shards 4 --min-rss-drop 0.25
fi

# Ingest smoke (DESIGN.md §16): the market-data pipeline at the default
# open-loop schedule (300k events @ 100k eps), all four memory arms in one
# invocation. check_ingest.py gates the single INGEST_VERDICT: every arm
# survived and analyzed every event, offered rate within 2% of target (the
# absolute-deadline pacing guarantee), and — because this repo's reason to
# exist is the tail — the ROLP arm's p99.9 at or under the G1 arm's. The
# gate runs at the full default event count on purpose: shorter runs see too
# few post-warmup collections for the arm comparison to be stable.
# ROLP_INGEST_CHECK=0 skips.
if [ "${ROLP_INGEST_CHECK:-1}" != "0" ] && command -v python3 >/dev/null \
   && [ -x build/examples/marketdata_pipeline ]; then
  echo "=== ingest smoke"
  build/examples/marketdata_pipeline all \
    | tee /tmp/ci_ingest.txt | tail -2
  python3 scripts/check_ingest.py /tmp/ci_ingest.txt --require-rolp-tail
  # Chaos leg: 6 fixed seeds over the ingest.* fault points (wire corruption,
  # queue stalls, allocation spikes, pool exhaustion, analytics spikes) on a
  # short pooled+VM run. Faults may cost drops — that is their job — so the
  # gate here is only "no crash": the pipeline must degrade, not die.
  for s in 1 2 3 4 5 6; do
    ROLP_CHAOS="seed:$s,rate:0.001,points:ingest.*" \
    ROLP_INGEST_EVENTS=30000 ROLP_INGEST_RATE=1000000 \
      build/examples/marketdata_pipeline pooled,g1 >/dev/null \
      || { status=$?; [ "$status" -le 1 ] || { echo "ingest chaos seed $s crashed (exit $status)"; exit 1; }; }
  done
  echo "ingest chaos: 6 seeds survived"
fi

# Chaos smoke (DESIGN.md §12): fixed-seed campaigns over the kvstore workload
# with in-pause verification on. Every injected-fault outcome must be
# survivable (quarantined / degraded / watchdog-fallback / recovered / clean);
# a crash-classified outcome fails, and chaos.py prints the minimized
# ROLP_FAULTS spec that reproduces it. ROLP_CHAOS_EXTENDED=1 widens the sweep
# for nightly runs; ROLP_CHAOS_CHECK=0 skips entirely.
if [ "${ROLP_CHAOS_CHECK:-1}" != "0" ] && command -v python3 >/dev/null \
   && [ -x build/tests/chaos_campaign ]; then
  echo "=== chaos smoke"
  CHAOS_SEEDS=6
  CHAOS_SECONDS=1
  if [ "${ROLP_CHAOS_EXTENDED:-0}" = "1" ]; then
    CHAOS_SEEDS=100
    CHAOS_SECONDS=2
  fi
  python3 scripts/chaos.py --seeds "$CHAOS_SEEDS" --seconds "$CHAOS_SECONDS" \
    --rate 0.001 --verify pause --sample 1 --out /tmp/ci_chaos_report.json
  # One deterministic lost-barrier replay: the exact acceptance scenario
  # (remset drop caught in-pause, survived via quarantine), pinned by spec
  # rather than by seed so it cannot rotate out of coverage.
  build/tests/chaos_campaign --seconds=1 --sample=1 \
    --faults='heap.remset.drop=every:64' \
    | tail -1 | grep -q '^CHAOS_RESULT '
  # Concurrent-evacuation chaos leg: same campaign with ROLP_CONCURRENT_EVAC
  # on so the gc.concurrent_evac.* points arm and fire while the load barrier
  # is hot (copy stalls, mutator copy failures, mid-flight cancellation). The
  # rare-hit points need a higher rate than the broad sweep to fire within
  # the smoke window.
  ROLP_CONCURRENT_EVAC=on python3 scripts/chaos.py \
    --seeds "$CHAOS_SEEDS" --seconds "$CHAOS_SECONDS" \
    --rate 0.05 --points 'gc.concurrent_evac.*' --verify pause --sample 1 \
    --out /tmp/ci_chaos_concurrent_report.json
  # Pinned replay of the cancellation ladder: cancel the second concurrent
  # window mid-flight; the cycle must finish STW via the full-collection
  # fallback with no lost objects.
  ROLP_CONCURRENT_EVAC=on build/tests/chaos_campaign --seconds=1 --sample=1 \
    --faults='gc.concurrent_evac.cancel=once:2' \
    | tail -1 | grep -q '^CHAOS_RESULT '
  # Region commit-lifecycle chaos: arenas + a fast uncommit sweeper armed
  # while heap.region.* faults fire — commit failure (simulated ENOMEM on
  # recommit) must roll back to a recoverable OOM, uncommit failure must
  # leave the region committed, and recommitted regions must read back as
  # zero (in-pause verification would flag stale bytes as corruption).
  ROLP_HEAP_ARENAS=2 ROLP_HEAP_UNCOMMIT_MS=25 python3 scripts/chaos.py \
    --seeds "$CHAOS_SEEDS" --seconds "$CHAOS_SECONDS" \
    --rate 0.05 --points 'heap.region.*' --verify pause --sample 1 \
    --out /tmp/ci_chaos_region_report.json
fi

# Verifier-enabled kvstore smoke under the sanitizer build: the quarantine
# and healing paths must be clean under ASan, not just crash-free.
if [ -x build-asan/examples/kvstore_service ]; then
  echo "=== asan verifier smoke"
  ROLP_VERIFY=pause ROLP_VERIFY_SAMPLE=1 \
    build-asan/examples/kvstore_service rolp 1 >/dev/null
fi

echo "=== all presets passed: ${PRESETS[*]}"
