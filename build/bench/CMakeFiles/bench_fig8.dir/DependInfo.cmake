
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8.cc" "bench/CMakeFiles/bench_fig8.dir/bench_fig8.cc.o" "gcc" "bench/CMakeFiles/bench_fig8.dir/bench_fig8.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/rolp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rolp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/rolp/CMakeFiles/rolp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/rolp_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/rolp_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rolp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
