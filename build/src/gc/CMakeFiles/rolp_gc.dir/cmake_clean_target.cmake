file(REMOVE_RECURSE
  "librolp_gc.a"
)
