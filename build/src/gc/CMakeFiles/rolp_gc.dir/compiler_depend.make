# Empty compiler generated dependencies file for rolp_gc.
# This may be replaced when dependencies are built.
