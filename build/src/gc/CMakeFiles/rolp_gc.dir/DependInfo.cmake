
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gc/cms_collector.cc" "src/gc/CMakeFiles/rolp_gc.dir/cms_collector.cc.o" "gcc" "src/gc/CMakeFiles/rolp_gc.dir/cms_collector.cc.o.d"
  "/root/repo/src/gc/collector.cc" "src/gc/CMakeFiles/rolp_gc.dir/collector.cc.o" "gcc" "src/gc/CMakeFiles/rolp_gc.dir/collector.cc.o.d"
  "/root/repo/src/gc/evacuation.cc" "src/gc/CMakeFiles/rolp_gc.dir/evacuation.cc.o" "gcc" "src/gc/CMakeFiles/rolp_gc.dir/evacuation.cc.o.d"
  "/root/repo/src/gc/free_list_space.cc" "src/gc/CMakeFiles/rolp_gc.dir/free_list_space.cc.o" "gcc" "src/gc/CMakeFiles/rolp_gc.dir/free_list_space.cc.o.d"
  "/root/repo/src/gc/gc_metrics.cc" "src/gc/CMakeFiles/rolp_gc.dir/gc_metrics.cc.o" "gcc" "src/gc/CMakeFiles/rolp_gc.dir/gc_metrics.cc.o.d"
  "/root/repo/src/gc/heap_verifier.cc" "src/gc/CMakeFiles/rolp_gc.dir/heap_verifier.cc.o" "gcc" "src/gc/CMakeFiles/rolp_gc.dir/heap_verifier.cc.o.d"
  "/root/repo/src/gc/mark_compact.cc" "src/gc/CMakeFiles/rolp_gc.dir/mark_compact.cc.o" "gcc" "src/gc/CMakeFiles/rolp_gc.dir/mark_compact.cc.o.d"
  "/root/repo/src/gc/marking.cc" "src/gc/CMakeFiles/rolp_gc.dir/marking.cc.o" "gcc" "src/gc/CMakeFiles/rolp_gc.dir/marking.cc.o.d"
  "/root/repo/src/gc/regional_collector.cc" "src/gc/CMakeFiles/rolp_gc.dir/regional_collector.cc.o" "gcc" "src/gc/CMakeFiles/rolp_gc.dir/regional_collector.cc.o.d"
  "/root/repo/src/gc/thread_context.cc" "src/gc/CMakeFiles/rolp_gc.dir/thread_context.cc.o" "gcc" "src/gc/CMakeFiles/rolp_gc.dir/thread_context.cc.o.d"
  "/root/repo/src/gc/worker_pool.cc" "src/gc/CMakeFiles/rolp_gc.dir/worker_pool.cc.o" "gcc" "src/gc/CMakeFiles/rolp_gc.dir/worker_pool.cc.o.d"
  "/root/repo/src/gc/zgc_collector.cc" "src/gc/CMakeFiles/rolp_gc.dir/zgc_collector.cc.o" "gcc" "src/gc/CMakeFiles/rolp_gc.dir/zgc_collector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/heap/CMakeFiles/rolp_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rolp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
