file(REMOVE_RECURSE
  "CMakeFiles/rolp_gc.dir/cms_collector.cc.o"
  "CMakeFiles/rolp_gc.dir/cms_collector.cc.o.d"
  "CMakeFiles/rolp_gc.dir/collector.cc.o"
  "CMakeFiles/rolp_gc.dir/collector.cc.o.d"
  "CMakeFiles/rolp_gc.dir/evacuation.cc.o"
  "CMakeFiles/rolp_gc.dir/evacuation.cc.o.d"
  "CMakeFiles/rolp_gc.dir/free_list_space.cc.o"
  "CMakeFiles/rolp_gc.dir/free_list_space.cc.o.d"
  "CMakeFiles/rolp_gc.dir/gc_metrics.cc.o"
  "CMakeFiles/rolp_gc.dir/gc_metrics.cc.o.d"
  "CMakeFiles/rolp_gc.dir/heap_verifier.cc.o"
  "CMakeFiles/rolp_gc.dir/heap_verifier.cc.o.d"
  "CMakeFiles/rolp_gc.dir/mark_compact.cc.o"
  "CMakeFiles/rolp_gc.dir/mark_compact.cc.o.d"
  "CMakeFiles/rolp_gc.dir/marking.cc.o"
  "CMakeFiles/rolp_gc.dir/marking.cc.o.d"
  "CMakeFiles/rolp_gc.dir/regional_collector.cc.o"
  "CMakeFiles/rolp_gc.dir/regional_collector.cc.o.d"
  "CMakeFiles/rolp_gc.dir/thread_context.cc.o"
  "CMakeFiles/rolp_gc.dir/thread_context.cc.o.d"
  "CMakeFiles/rolp_gc.dir/worker_pool.cc.o"
  "CMakeFiles/rolp_gc.dir/worker_pool.cc.o.d"
  "CMakeFiles/rolp_gc.dir/zgc_collector.cc.o"
  "CMakeFiles/rolp_gc.dir/zgc_collector.cc.o.d"
  "librolp_gc.a"
  "librolp_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rolp_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
