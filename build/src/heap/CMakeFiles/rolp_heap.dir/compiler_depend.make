# Empty compiler generated dependencies file for rolp_heap.
# This may be replaced when dependencies are built.
