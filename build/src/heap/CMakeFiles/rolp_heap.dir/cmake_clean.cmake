file(REMOVE_RECURSE
  "CMakeFiles/rolp_heap.dir/class_registry.cc.o"
  "CMakeFiles/rolp_heap.dir/class_registry.cc.o.d"
  "CMakeFiles/rolp_heap.dir/heap.cc.o"
  "CMakeFiles/rolp_heap.dir/heap.cc.o.d"
  "CMakeFiles/rolp_heap.dir/region_manager.cc.o"
  "CMakeFiles/rolp_heap.dir/region_manager.cc.o.d"
  "librolp_heap.a"
  "librolp_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rolp_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
