
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heap/class_registry.cc" "src/heap/CMakeFiles/rolp_heap.dir/class_registry.cc.o" "gcc" "src/heap/CMakeFiles/rolp_heap.dir/class_registry.cc.o.d"
  "/root/repo/src/heap/heap.cc" "src/heap/CMakeFiles/rolp_heap.dir/heap.cc.o" "gcc" "src/heap/CMakeFiles/rolp_heap.dir/heap.cc.o.d"
  "/root/repo/src/heap/region_manager.cc" "src/heap/CMakeFiles/rolp_heap.dir/region_manager.cc.o" "gcc" "src/heap/CMakeFiles/rolp_heap.dir/region_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rolp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
