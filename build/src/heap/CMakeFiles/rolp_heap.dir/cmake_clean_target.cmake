file(REMOVE_RECURSE
  "librolp_heap.a"
)
