file(REMOVE_RECURSE
  "CMakeFiles/rolp_workloads.dir/dacapo.cc.o"
  "CMakeFiles/rolp_workloads.dir/dacapo.cc.o.d"
  "CMakeFiles/rolp_workloads.dir/driver.cc.o"
  "CMakeFiles/rolp_workloads.dir/driver.cc.o.d"
  "CMakeFiles/rolp_workloads.dir/graph.cc.o"
  "CMakeFiles/rolp_workloads.dir/graph.cc.o.d"
  "CMakeFiles/rolp_workloads.dir/kvstore.cc.o"
  "CMakeFiles/rolp_workloads.dir/kvstore.cc.o.d"
  "CMakeFiles/rolp_workloads.dir/textindex.cc.o"
  "CMakeFiles/rolp_workloads.dir/textindex.cc.o.d"
  "librolp_workloads.a"
  "librolp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rolp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
