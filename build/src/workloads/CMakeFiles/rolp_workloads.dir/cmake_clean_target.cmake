file(REMOVE_RECURSE
  "librolp_workloads.a"
)
