# Empty dependencies file for rolp_workloads.
# This may be replaced when dependencies are built.
