file(REMOVE_RECURSE
  "CMakeFiles/rolp_core.dir/conflict_resolver.cc.o"
  "CMakeFiles/rolp_core.dir/conflict_resolver.cc.o.d"
  "CMakeFiles/rolp_core.dir/curve_analysis.cc.o"
  "CMakeFiles/rolp_core.dir/curve_analysis.cc.o.d"
  "CMakeFiles/rolp_core.dir/old_table.cc.o"
  "CMakeFiles/rolp_core.dir/old_table.cc.o.d"
  "CMakeFiles/rolp_core.dir/package_filter.cc.o"
  "CMakeFiles/rolp_core.dir/package_filter.cc.o.d"
  "CMakeFiles/rolp_core.dir/profiler.cc.o"
  "CMakeFiles/rolp_core.dir/profiler.cc.o.d"
  "librolp_core.a"
  "librolp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rolp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
