file(REMOVE_RECURSE
  "librolp_core.a"
)
