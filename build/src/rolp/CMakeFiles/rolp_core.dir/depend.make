# Empty dependencies file for rolp_core.
# This may be replaced when dependencies are built.
