
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rolp/conflict_resolver.cc" "src/rolp/CMakeFiles/rolp_core.dir/conflict_resolver.cc.o" "gcc" "src/rolp/CMakeFiles/rolp_core.dir/conflict_resolver.cc.o.d"
  "/root/repo/src/rolp/curve_analysis.cc" "src/rolp/CMakeFiles/rolp_core.dir/curve_analysis.cc.o" "gcc" "src/rolp/CMakeFiles/rolp_core.dir/curve_analysis.cc.o.d"
  "/root/repo/src/rolp/old_table.cc" "src/rolp/CMakeFiles/rolp_core.dir/old_table.cc.o" "gcc" "src/rolp/CMakeFiles/rolp_core.dir/old_table.cc.o.d"
  "/root/repo/src/rolp/package_filter.cc" "src/rolp/CMakeFiles/rolp_core.dir/package_filter.cc.o" "gcc" "src/rolp/CMakeFiles/rolp_core.dir/package_filter.cc.o.d"
  "/root/repo/src/rolp/profiler.cc" "src/rolp/CMakeFiles/rolp_core.dir/profiler.cc.o" "gcc" "src/rolp/CMakeFiles/rolp_core.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gc/CMakeFiles/rolp_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/rolp_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rolp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
