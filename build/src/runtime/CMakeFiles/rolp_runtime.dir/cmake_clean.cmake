file(REMOVE_RECURSE
  "CMakeFiles/rolp_runtime.dir/jit.cc.o"
  "CMakeFiles/rolp_runtime.dir/jit.cc.o.d"
  "CMakeFiles/rolp_runtime.dir/thread.cc.o"
  "CMakeFiles/rolp_runtime.dir/thread.cc.o.d"
  "CMakeFiles/rolp_runtime.dir/vm.cc.o"
  "CMakeFiles/rolp_runtime.dir/vm.cc.o.d"
  "librolp_runtime.a"
  "librolp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rolp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
