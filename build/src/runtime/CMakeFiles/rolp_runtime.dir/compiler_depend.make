# Empty compiler generated dependencies file for rolp_runtime.
# This may be replaced when dependencies are built.
