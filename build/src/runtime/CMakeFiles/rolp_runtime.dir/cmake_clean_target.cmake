file(REMOVE_RECURSE
  "librolp_runtime.a"
)
