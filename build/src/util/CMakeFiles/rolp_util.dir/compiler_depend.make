# Empty compiler generated dependencies file for rolp_util.
# This may be replaced when dependencies are built.
