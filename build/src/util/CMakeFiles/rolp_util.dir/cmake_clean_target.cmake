file(REMOVE_RECURSE
  "librolp_util.a"
)
