file(REMOVE_RECURSE
  "CMakeFiles/rolp_util.dir/env.cc.o"
  "CMakeFiles/rolp_util.dir/env.cc.o.d"
  "CMakeFiles/rolp_util.dir/histogram.cc.o"
  "CMakeFiles/rolp_util.dir/histogram.cc.o.d"
  "CMakeFiles/rolp_util.dir/log.cc.o"
  "CMakeFiles/rolp_util.dir/log.cc.o.d"
  "CMakeFiles/rolp_util.dir/random.cc.o"
  "CMakeFiles/rolp_util.dir/random.cc.o.d"
  "CMakeFiles/rolp_util.dir/table_printer.cc.o"
  "CMakeFiles/rolp_util.dir/table_printer.cc.o.d"
  "librolp_util.a"
  "librolp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rolp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
