# Empty compiler generated dependencies file for leak_detector.
# This may be replaced when dependencies are built.
