file(REMOVE_RECURSE
  "CMakeFiles/leak_detector.dir/leak_detector.cpp.o"
  "CMakeFiles/leak_detector.dir/leak_detector.cpp.o.d"
  "leak_detector"
  "leak_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leak_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
