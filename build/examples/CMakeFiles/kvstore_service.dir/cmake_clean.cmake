file(REMOVE_RECURSE
  "CMakeFiles/kvstore_service.dir/kvstore_service.cpp.o"
  "CMakeFiles/kvstore_service.dir/kvstore_service.cpp.o.d"
  "kvstore_service"
  "kvstore_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
