# Empty compiler generated dependencies file for kvstore_service.
# This may be replaced when dependencies are built.
