# Empty dependencies file for rolp_tests.
# This may be replaced when dependencies are built.
