
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gc/cms_collector_test.cc" "tests/CMakeFiles/rolp_tests.dir/gc/cms_collector_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/gc/cms_collector_test.cc.o.d"
  "/root/repo/tests/gc/heap_verifier_test.cc" "tests/CMakeFiles/rolp_tests.dir/gc/heap_verifier_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/gc/heap_verifier_test.cc.o.d"
  "/root/repo/tests/gc/mark_compact_test.cc" "tests/CMakeFiles/rolp_tests.dir/gc/mark_compact_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/gc/mark_compact_test.cc.o.d"
  "/root/repo/tests/gc/marking_test.cc" "tests/CMakeFiles/rolp_tests.dir/gc/marking_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/gc/marking_test.cc.o.d"
  "/root/repo/tests/gc/regional_collector_test.cc" "tests/CMakeFiles/rolp_tests.dir/gc/regional_collector_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/gc/regional_collector_test.cc.o.d"
  "/root/repo/tests/gc/safepoint_test.cc" "tests/CMakeFiles/rolp_tests.dir/gc/safepoint_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/gc/safepoint_test.cc.o.d"
  "/root/repo/tests/gc/worker_pool_test.cc" "tests/CMakeFiles/rolp_tests.dir/gc/worker_pool_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/gc/worker_pool_test.cc.o.d"
  "/root/repo/tests/gc/zgc_collector_test.cc" "tests/CMakeFiles/rolp_tests.dir/gc/zgc_collector_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/gc/zgc_collector_test.cc.o.d"
  "/root/repo/tests/heap/class_registry_test.cc" "tests/CMakeFiles/rolp_tests.dir/heap/class_registry_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/heap/class_registry_test.cc.o.d"
  "/root/repo/tests/heap/heap_test.cc" "tests/CMakeFiles/rolp_tests.dir/heap/heap_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/heap/heap_test.cc.o.d"
  "/root/repo/tests/heap/markword_test.cc" "tests/CMakeFiles/rolp_tests.dir/heap/markword_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/heap/markword_test.cc.o.d"
  "/root/repo/tests/heap/region_test.cc" "tests/CMakeFiles/rolp_tests.dir/heap/region_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/heap/region_test.cc.o.d"
  "/root/repo/tests/rolp/conflict_resolver_test.cc" "tests/CMakeFiles/rolp_tests.dir/rolp/conflict_resolver_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/rolp/conflict_resolver_test.cc.o.d"
  "/root/repo/tests/rolp/curve_analysis_test.cc" "tests/CMakeFiles/rolp_tests.dir/rolp/curve_analysis_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/rolp/curve_analysis_test.cc.o.d"
  "/root/repo/tests/rolp/old_table_test.cc" "tests/CMakeFiles/rolp_tests.dir/rolp/old_table_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/rolp/old_table_test.cc.o.d"
  "/root/repo/tests/rolp/package_filter_test.cc" "tests/CMakeFiles/rolp_tests.dir/rolp/package_filter_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/rolp/package_filter_test.cc.o.d"
  "/root/repo/tests/rolp/profiler_stability_test.cc" "tests/CMakeFiles/rolp_tests.dir/rolp/profiler_stability_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/rolp/profiler_stability_test.cc.o.d"
  "/root/repo/tests/rolp/profiler_test.cc" "tests/CMakeFiles/rolp_tests.dir/rolp/profiler_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/rolp/profiler_test.cc.o.d"
  "/root/repo/tests/runtime/jit_test.cc" "tests/CMakeFiles/rolp_tests.dir/runtime/jit_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/runtime/jit_test.cc.o.d"
  "/root/repo/tests/runtime/vm_test.cc" "tests/CMakeFiles/rolp_tests.dir/runtime/vm_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/runtime/vm_test.cc.o.d"
  "/root/repo/tests/util/env_test.cc" "tests/CMakeFiles/rolp_tests.dir/util/env_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/util/env_test.cc.o.d"
  "/root/repo/tests/util/histogram_test.cc" "tests/CMakeFiles/rolp_tests.dir/util/histogram_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/util/histogram_test.cc.o.d"
  "/root/repo/tests/util/random_test.cc" "tests/CMakeFiles/rolp_tests.dir/util/random_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/util/random_test.cc.o.d"
  "/root/repo/tests/util/table_printer_test.cc" "tests/CMakeFiles/rolp_tests.dir/util/table_printer_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/util/table_printer_test.cc.o.d"
  "/root/repo/tests/workloads/workloads_test.cc" "tests/CMakeFiles/rolp_tests.dir/workloads/workloads_test.cc.o" "gcc" "tests/CMakeFiles/rolp_tests.dir/workloads/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/rolp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rolp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/rolp/CMakeFiles/rolp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/rolp_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/rolp_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rolp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
