#include "src/util/pacer.h"

#include <chrono>
#include <thread>

#include "src/util/clock.h"
#include "src/util/env.h"
#include "src/util/spinlock.h"

namespace rolp {

namespace {

// NowNs() is steady_clock::time_since_epoch in nanoseconds, so an absolute
// ns deadline converts straight back to a steady_clock time_point.
inline std::chrono::steady_clock::time_point ToTimePoint(uint64_t ns) {
  return std::chrono::steady_clock::time_point(
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::nanoseconds(ns)));
}

}  // namespace

PacerOptions PacerOptions::FromEnv() {
  PacerOptions o;
  if (EnvString("ROLP_PACING", "absolute") == "relative") {
    o.mode = PacingMode::kRelativeSleep;
  }
  o.spin_slack_ns = static_cast<uint64_t>(
      EnvInt64("ROLP_PACER_SPIN_US", static_cast<int64_t>(o.spin_slack_ns / 1000)) * 1000);
  return o;
}

uint64_t Pacer::WaitUntil(uint64_t deadline_ns, bool precise) {
  uint64_t now = NowNs();
  if (now >= deadline_ns) {
    return now;
  }

  if (options_.mode == PacingMode::kRelativeSleep) {
    // Legacy path, bug and all: the relative wait pays the kernel timer
    // slack on top of the remaining time. Kept for the pacing regression
    // test and ROLP_PACING=relative A/B runs.
    std::this_thread::sleep_for(std::chrono::nanoseconds(deadline_ns - now));
    return NowNs();
  }

  // Absolute sleep to (deadline - slack): oversleep cannot compound because
  // the target never moves, and the slack margin keeps the kernel's
  // wake-late bias in front of the deadline instead of past it.
  if (deadline_ns - now > options_.spin_slack_ns) {
    std::this_thread::sleep_until(ToTimePoint(deadline_ns - options_.spin_slack_ns));
    now = NowNs();
  }
  if (!precise) {
    // Coarse wake: good enough to re-check state; do not burn the spin.
    if (now < deadline_ns) {
      std::this_thread::sleep_until(ToTimePoint(deadline_ns));
      now = NowNs();
    }
    return now;
  }
  // Bounded spin: at most spin_slack plus whatever the sleep overshot by,
  // i.e. tens of microseconds. CpuRelax keeps the hyperthread sibling
  // usable; no yield — the whole point is staying on-core for the finish.
  while (now < deadline_ns) {
    CpuRelax();
    now = NowNs();
  }
  return now;
}

}  // namespace rolp
