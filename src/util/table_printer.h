// Aligned ASCII table printer used by the benchmark harnesses to emit the
// paper's tables and figure series in a grep-friendly format.
#ifndef SRC_UTIL_TABLE_PRINTER_H_
#define SRC_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace rolp {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Renders the table with a header separator; every column padded to its
  // widest cell.
  std::string Render() const;

  // Convenience: format helpers for cells.
  static std::string Fmt(double v, int precision = 2);
  static std::string Fmt(uint64_t v);
  static std::string Fmt(int64_t v);
  static std::string FmtPct(double fraction, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rolp

#endif  // SRC_UTIL_TABLE_PRINTER_H_
