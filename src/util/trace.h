// Structured trace event layer: lock-free per-thread ring buffers recording
// scoped (duration), instant, and counter events, exported as
// chrome://tracing-compatible JSON ("trace event format", JSON-array flavor).
//
// Cost model, in line with the watchdog heartbeat discipline (DESIGN.md §8):
// every trace point is gated on one relaxed atomic load and a predictable
// branch, so a *disabled* trace point costs well under a nanosecond and may
// sit anywhere except the allocation fast lane itself (bench_micro's
// BM_TraceScopeDisabled pins the number). When enabled, an event is a NowNs()
// read plus a handful of plain stores into a thread-local ring — no locks, no
// shared cache lines between recording threads.
//
// Each recording thread owns one TraceBuffer (created on first emit,
// registered under a mutex that is only taken on thread-first-emit and at
// export). The ring overwrites its oldest events when full: tracing is a
// flight recorder, not an unbounded log.
//
// Event names and categories must be string literals (stored by pointer,
// never copied). Naming convention matches the fail-point catalog:
// "<layer>.<component>.<event>", e.g. "gc.phase.mark", "rolp.inference.analyze".
//
// Activation: ROLP_TRACE=<path> (read by Trace::InitFromEnv, called from the
// VM constructor) enables recording and arranges a JSON dump to <path> at
// process exit. Tests drive Enable/Disable/ToJson directly.
#ifndef SRC_UTIL_TRACE_H_
#define SRC_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/util/clock.h"

namespace rolp {

struct TraceEvent {
  const char* name = nullptr;  // string literal
  const char* cat = nullptr;   // string literal
  uint64_t ts_ns = 0;          // NowNs() at event start
  uint64_t dur_ns = 0;         // complete events only
  uint64_t arg = 0;            // optional numeric payload ("args":{"v":N})
  char phase = 'i';            // 'X' complete, 'i' instant, 'C' counter
};

class Trace {
 public:
  static constexpr size_t kDefaultEventsPerThread = 1u << 13;  // 8192

  // The gate every trace point checks first. Relaxed: a trace point racing an
  // Enable/Disable merely records or skips one event.
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  // Starts recording. events_per_thread is rounded up to a power of two;
  // buffers created before an Enable keep their original capacity.
  static void Enable(size_t events_per_thread = kDefaultEventsPerThread);
  static void Disable();

  // Reads ROLP_TRACE; if set, enables tracing and registers an atexit hook
  // that writes the JSON to that path. Idempotent. Returns whether tracing is
  // enabled afterwards.
  static bool InitFromEnv();

  // Appends one event to the calling thread's ring (creating and registering
  // the ring on first use). Call only when enabled() — the macros below do.
  static void Emit(const TraceEvent& event);

  // Convenience emitters (no-ops when disabled).
  static void EmitComplete(const char* cat, const char* name, uint64_t ts_ns,
                           uint64_t dur_ns, uint64_t arg = 0);
  static void EmitInstant(const char* cat, const char* name, uint64_t arg = 0);
  static void EmitCounter(const char* cat, const char* name, uint64_t value);

  // Serializes every buffered event as a chrome://tracing JSON object
  // ({"traceEvents":[...]}). Safe to call while recording continues (each
  // ring is read through its release-published cursor), but events written
  // during the export may be missed or, if a ring wraps mid-read, partially
  // torn — exports are best-effort flight-recorder dumps, exact only once
  // recording threads have quiesced.
  static std::string ToJson();
  // ToJson to a file; returns false (and logs) on I/O failure.
  static bool WriteJson(const std::string& path);

  // Drops every registered buffer and all recorded events. Tests only: no
  // thread may be emitting concurrently, and thread-local buffers of live
  // threads are re-created on their next emit.
  static void Reset();

  // Events recorded since Enable (monotonic, includes overwritten ones) and
  // the number of registered thread buffers. Introspection/tests.
  static uint64_t events_recorded();
  static size_t thread_buffers();

 private:
  static std::atomic<bool> enabled_;
};

// RAII scoped event: records one complete ('X') event covering its lifetime.
// Construction and destruction are both gated on Trace::enabled(); a scope
// that straddles a Disable records nothing.
class ScopedTrace {
 public:
  // Inline so the disabled path (gate load, branch, one store) is visible to
  // the compiler at every trace point; see the overhead budget in DESIGN.md §11.
  ScopedTrace(const char* cat, const char* name, uint64_t arg = 0) {
    if (!Trace::enabled()) {
      start_ns_ = 0;
      return;
    }
    cat_ = cat;
    name_ = name;
    arg_ = arg;
    start_ns_ = NowNs();
  }
  ~ScopedTrace() {
    if (start_ns_ != 0 && Trace::enabled()) {
      Trace::Emit(TraceEvent{name_, cat_, start_ns_, NowNs() - start_ns_, arg_, 'X'});
    }
  }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  // cat_/name_/arg_ are deliberately left uninitialized when tracing is
  // disabled (the ~1 ns budget for a disabled scope pays for one gate load,
  // one branch, and the start_ns_ store — not four member writes); the
  // destructor reads them only when start_ns_ != 0.
  const char* cat_;
  const char* name_;
  uint64_t start_ns_;  // 0 = tracing was disabled at construction
  uint64_t arg_;
};

}  // namespace rolp

// Scoped trace point: one complete event covering the enclosing scope.
#define ROLP_TRACE_CONCAT2(a, b) a##b
#define ROLP_TRACE_CONCAT(a, b) ROLP_TRACE_CONCAT2(a, b)
#define ROLP_TRACE_SCOPE(cat, name) \
  ::rolp::ScopedTrace ROLP_TRACE_CONCAT(rolp_trace_scope_, __LINE__)(cat, name)
#define ROLP_TRACE_SCOPE_ARG(cat, name, arg) \
  ::rolp::ScopedTrace ROLP_TRACE_CONCAT(rolp_trace_scope_, __LINE__)(cat, name, arg)
#define ROLP_TRACE_INSTANT(cat, name, arg) \
  do {                                     \
    if (::rolp::Trace::enabled()) {        \
      ::rolp::Trace::EmitInstant(cat, name, arg); \
    }                                      \
  } while (0)
#define ROLP_TRACE_COUNTER(cat, name, value) \
  do {                                       \
    if (::rolp::Trace::enabled()) {          \
      ::rolp::Trace::EmitCounter(cat, name, value); \
    }                                        \
  } while (0)

#endif  // SRC_UTIL_TRACE_H_
