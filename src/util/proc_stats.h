// Process self-statistics read from /proc. Header-only: the one consumer-hot
// call (RSS for the vm.rss_bytes gauge) is a single read of a tiny procfs
// file, no caching.
#ifndef SRC_UTIL_PROC_STATS_H_
#define SRC_UTIL_PROC_STATS_H_

#include <unistd.h>

#include <cstdint>
#include <cstdio>

namespace rolp {

// Resident-set size of the current process in bytes (field 2 of
// /proc/self/statm, in pages). Returns 0 when /proc is unavailable.
inline uint64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "re");
  if (f == nullptr) {
    return 0;
  }
  unsigned long long vm_pages = 0;
  unsigned long long rss_pages = 0;
  int n = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
  std::fclose(f);
  if (n != 2) {
    return 0;
  }
  return static_cast<uint64_t>(rss_pages) * static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
}

}  // namespace rolp

#endif  // SRC_UTIL_PROC_STATS_H_
