// Crash-context reporting: when a ROLP_CHECK invariant fails, the process is
// going down anyway — the one thing we can still do is dump enough state for
// the failure to be diagnosed post-mortem. Subsystems register named provider
// callbacks (last GC-end info, region occupancy, OLD-table stats); the check
// failure handler runs them all, plus the fault-injection catalog, before
// aborting.
//
// Providers run on the failing thread with no allocation guarantees and
// possibly corrupted state: they must only read plain fields and fprintf. A
// recursion guard skips nested dumps if a provider itself CHECK-fails.
#ifndef SRC_UTIL_CRASH_CONTEXT_H_
#define SRC_UTIL_CRASH_CONTEXT_H_

#include <cstdio>
#include <functional>
#include <string>

namespace rolp {

class CrashContext {
 public:
  using Provider = std::function<void(std::FILE*)>;

  // Registers a provider; returns an id for Unregister. Thread-safe.
  static int Register(const std::string& section, Provider provider);
  static void Unregister(int id);

  // Writes every registered section plus the fail-point catalog to `out`.
  // Reentrancy-safe: a nested call (provider crashed) returns immediately.
  static void Dump(std::FILE* out);
};

// RAII registration for objects with scoped lifetimes (VM, Heap, tests).
class ScopedCrashContextProvider {
 public:
  ScopedCrashContextProvider(const std::string& section, CrashContext::Provider provider)
      : id_(CrashContext::Register(section, std::move(provider))) {}
  ~ScopedCrashContextProvider() { CrashContext::Unregister(id_); }

  ScopedCrashContextProvider(const ScopedCrashContextProvider&) = delete;
  ScopedCrashContextProvider& operator=(const ScopedCrashContextProvider&) = delete;

 private:
  int id_;
};

}  // namespace rolp

#endif  // SRC_UTIL_CRASH_CONTEXT_H_
