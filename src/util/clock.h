// Monotonic clock helpers. All pause and throughput measurements in the
// repository use NowNs() so they share one time base.
#ifndef SRC_UTIL_CLOCK_H_
#define SRC_UTIL_CLOCK_H_

#include <ctime>

#include <chrono>
#include <cstdint>

namespace rolp {

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// CPU time consumed by the calling thread only. Distinguishes work a thread
// did itself from wall-clock time lost to preemption — the metric that
// matters when background threads share a core with a measured one.
inline uint64_t ThreadCpuNs() {
  struct timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

inline double NsToMs(uint64_t ns) { return static_cast<double>(ns) / 1e6; }
inline uint64_t MsToNs(double ms) { return static_cast<uint64_t>(ms * 1e6); }

// Scoped stopwatch: adds elapsed nanoseconds to *sink on destruction.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(uint64_t* sink) : sink_(sink), start_(NowNs()) {}
  ~ScopedTimerNs() { *sink_ += NowNs() - start_; }

  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  uint64_t* sink_;
  uint64_t start_;
};

}  // namespace rolp

#endif  // SRC_UTIL_CLOCK_H_
