// Monotonic clock helpers. All pause and throughput measurements in the
// repository use NowNs() so they share one time base.
#ifndef SRC_UTIL_CLOCK_H_
#define SRC_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace rolp {

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline double NsToMs(uint64_t ns) { return static_cast<double>(ns) / 1e6; }
inline uint64_t MsToNs(double ms) { return static_cast<uint64_t>(ms * 1e6); }

// Scoped stopwatch: adds elapsed nanoseconds to *sink on destruction.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(uint64_t* sink) : sink_(sink), start_(NowNs()) {}
  ~ScopedTimerNs() { *sink_ += NowNs() - start_; }

  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  uint64_t* sink_;
  uint64_t start_;
};

}  // namespace rolp

#endif  // SRC_UTIL_CLOCK_H_
