#include "src/util/env.h"

#include <cstdlib>
#include <cstring>

namespace rolp {

int64_t EnvInt64(const char* name, int64_t default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return default_value;
  }
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) {
    return default_value;
  }
  return static_cast<int64_t>(parsed);
}

double EnvDouble(const char* name, double default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return default_value;
  }
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) {
    return default_value;
  }
  return parsed;
}

bool EnvBool(const char* name, bool default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return default_value;
  }
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 || std::strcmp(v, "yes") == 0 ||
         std::strcmp(v, "on") == 0;
}

std::string EnvString(const char* name, const std::string& default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return default_value;
  }
  return v;
}

}  // namespace rolp
