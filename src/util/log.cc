#include "src/util/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rolp {

namespace {

LogLevel ParseLevel(const char* s) {
  if (s == nullptr) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(s, "error") == 0) {
    return LogLevel::kError;
  }
  if (std::strcmp(s, "warn") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(s, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(s, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(s, "trace") == 0) {
    return LogLevel::kTrace;
  }
  return LogLevel::kWarn;
}

std::atomic<int> g_level{-1};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kTrace:
      return "T";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(ParseLevel(std::getenv("ROLP_LOG")));
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

void LogImpl(LogLevel level, const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[rolp:%s] %s\n", LevelTag(level), buf);
}

}  // namespace rolp
