// Bounded single-producer / single-consumer ring queue for the ingest
// pipeline stages (DESIGN.md §16). Wait-free on both sides: one producer
// thread calls TryPush, one consumer thread calls TryPop, and the only
// synchronization is an acquire/release pair per side — no CAS, no locks,
// no fences beyond what the indices carry.
//
// Layout discipline: the producer-owned index (tail_) and the consumer-owned
// index (head_) live on their own cache lines so the two threads never
// false-share, and each side keeps a *cached* copy of the other side's index
// so the common case (queue neither full nor empty) touches only its own
// line. The foreign index is re-read (acquire) only when the cached value
// says the ring might be full/empty — the classic Lamport queue with
// index caching.
//
// Capacity is rounded up to a power of two so wraparound is a mask, and the
// indices are free-running 64-bit counters (they never wrap in practice;
// at 10^9 ops/s that is ~584 years), so full/empty are exact:
//   size = tail - head;  full  <=> size == capacity;  empty <=> size == 0.
#ifndef SRC_UTIL_SPSC_RING_H_
#define SRC_UTIL_SPSC_RING_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "src/util/check.h"

namespace rolp {

template <typename T>
class SpscRing {
 public:
  // `capacity` is rounded up to the next power of two (minimum 2).
  explicit SpscRing(size_t capacity)
      : capacity_(std::bit_ceil(capacity < 2 ? size_t{2} : capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return capacity_; }

  // Producer side only. Returns false if the ring is full.
  bool TryPush(const T& value) {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) {
        return false;
      }
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side only. Returns false if the ring is empty.
  bool TryPop(T* out) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        return false;
      }
    }
    *out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Approximate: exact only when called from the producer or consumer thread
  // (the other side may be mid-publish). Used for metrics, never for control.
  size_t SizeApprox() const {
    uint64_t tail = tail_.load(std::memory_order_acquire);
    uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

 private:
  const size_t capacity_;
  const uint64_t mask_;
  std::vector<T> slots_;

  // Consumer line: head_ is written by the consumer; tail_cache_ is the
  // consumer's private copy of the producer index.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t tail_cache_ = 0;

  // Producer line: tail_ is written by the producer; head_cache_ is the
  // producer's private copy of the consumer index.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t head_cache_ = 0;
};

}  // namespace rolp

#endif  // SRC_UTIL_SPSC_RING_H_
