// Slab-backed object pool: the "pooled-manual" memory arm of the market-data
// ingest comparison (DESIGN.md §16). This is what a hand-tuned low-latency
// shop does instead of a GC: carve fixed-size slabs, thread freed objects on
// an intrusive free list, and never give memory back mid-run. Acquire/Release
// are O(1) pointer pops/pushes with no system calls after warmup, so the
// allocation path costs tens of nanoseconds — the bar the profiled VM
// allocation path is benchmarked against (BM_IngestAllocPath*).
//
// Accounting is exact, not sampled: acquired(), released(), and
// outstanding() satisfy outstanding == acquired - released at every quiescent
// point, and the tests assert that conservation law across reuse and
// exhaustion. Exhaustion (max_slabs reached and free list empty) returns
// nullptr — the pool never aborts; the caller decides whether exhaustion is
// an error (tests) or a shed (pipeline under chaos).
//
// Thread safety: a SpinLock guards the free list and slab vector. The ingest
// pipeline acquires from one thread, but tests and future multi-book setups
// hammer it from several, and an uncontended spinlock costs ~1 ns on the
// fast path — noise next to the ~20 ns pop itself.
#ifndef SRC_UTIL_SLAB_POOL_H_
#define SRC_UTIL_SLAB_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include "src/util/spinlock.h"

namespace rolp {

template <typename T>
class SlabPool {
 public:
  struct Options {
    size_t objects_per_slab = 1024;
    // 0 = unbounded. Otherwise Acquire() returns nullptr once max_slabs are
    // carved and the free list is empty.
    size_t max_slabs = 0;
  };

  explicit SlabPool(Options options = {}) : options_(options) {
    if (options_.objects_per_slab == 0) {
      options_.objects_per_slab = 1;
    }
  }

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  // Returns a default-constructed T, or nullptr on exhaustion.
  T* Acquire() {
    Node* node = nullptr;
    {
      std::lock_guard<SpinLock> guard(mu_);
      if (free_ == nullptr && !Grow()) {
        exhausted_++;
        return nullptr;
      }
      node = free_;
      free_ = node->next;
      acquired_++;
    }
    return new (node->storage) T();
  }

  // `obj` must have come from this pool's Acquire(). Runs the destructor and
  // returns the storage to the free list.
  void Release(T* obj) {
    obj->~T();
    Node* node = reinterpret_cast<Node*>(obj);
    std::lock_guard<SpinLock> guard(mu_);
    node->next = free_;
    free_ = node;
    released_++;
  }

  uint64_t acquired() const {
    std::lock_guard<SpinLock> guard(mu_);
    return acquired_;
  }
  uint64_t released() const {
    std::lock_guard<SpinLock> guard(mu_);
    return released_;
  }
  // Objects currently held by callers. Exact: outstanding == acquired - released.
  uint64_t outstanding() const {
    std::lock_guard<SpinLock> guard(mu_);
    return acquired_ - released_;
  }
  uint64_t exhausted() const {
    std::lock_guard<SpinLock> guard(mu_);
    return exhausted_;
  }
  size_t slabs() const {
    std::lock_guard<SpinLock> guard(mu_);
    return slabs_.size();
  }
  size_t capacity() const {
    std::lock_guard<SpinLock> guard(mu_);
    return slabs_.size() * options_.objects_per_slab;
  }

 private:
  // Storage cell: free-list link while free, object storage while acquired.
  union Node {
    Node* next;
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
  };

  // Caller holds mu_. Carves one slab and threads it onto the free list.
  bool Grow() {
    if (options_.max_slabs != 0 && slabs_.size() >= options_.max_slabs) {
      return false;
    }
    auto slab = std::make_unique<Node[]>(options_.objects_per_slab);
    // Thread in reverse so the first Acquire returns the slab's first cell.
    for (size_t i = options_.objects_per_slab; i > 0; i--) {
      slab[i - 1].next = free_;
      free_ = &slab[i - 1];
    }
    slabs_.push_back(std::move(slab));
    return true;
  }

  Options options_;
  mutable SpinLock mu_;
  std::vector<std::unique_ptr<Node[]>> slabs_;
  Node* free_ = nullptr;
  uint64_t acquired_ = 0;
  uint64_t released_ = 0;
  uint64_t exhausted_ = 0;
};

}  // namespace rolp

#endif  // SRC_UTIL_SLAB_POOL_H_
