#include "src/util/table_printer.h"

#include <cstdio>

#include "src/util/check.h"

namespace rolp {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ROLP_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  ROLP_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); c++) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); c++) {
      if (row[c].size() > widths[c]) {
        widths[c] = row[c].size();
      }
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); c++) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out;
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Fmt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string TablePrinter::Fmt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string TablePrinter::FmtPct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f %%", precision, fraction * 100.0);
  return buf;
}

}  // namespace rolp
