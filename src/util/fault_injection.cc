#include "src/util/fault_injection.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/util/random.h"
#include "src/util/spinlock.h"

namespace rolp {

std::atomic<uint32_t> FaultInjection::armed_count_{0};

struct FaultInjection::Point {
  Mode mode = Mode::kAlways;
  bool armed = false;
  uint64_t n = 1;       // kEveryNth period / kOnceAtHit target
  double p = 0.0;       // kProbability
  Random rng{0};
  uint64_t hits = 0;
  uint64_t fires = 0;
  bool once_fired = false;
  uint32_t delay_ms = 0;  // nonzero: stall action (sleep, report false)
};

struct FaultInjection::Impl {
  mutable SpinLock lock;
  std::unordered_map<std::string, Point> points;
  uint64_t total_fires = 0;
  std::string chaos_spec;  // ROLP_FAULTS-equivalent of the last chaos arming
};

const std::vector<FaultInjection::CatalogEntry>& FaultInjection::Catalog() {
  // Leaked for the same reason as the singleton.
  static const auto* catalog = new std::vector<CatalogEntry>{
      {"heap.region.oom", "region allocation reports heap exhaustion"},
      {"heap.humongous.oom", "no contiguous run for a humongous allocation"},
      {"heap.tlab.alloc", "TLAB refill fails, forcing the slow path"},
      {"heap.region.commit", "recommitting an uncommitted region fails (mmap ENOMEM)"},
      {"heap.region.uncommit", "uncommit sweep's madvise(MADV_DONTNEED) fails"},
      {"heap.remset.drop", "write barrier skips a remembered-set insert"},
      {"gc.collect.skip", "a requested collection is skipped"},
      {"gc.pause.inflate", "pause bookkeeping inflates the recorded time"},
      {"gc.phase.mark.stall", "marking worker stalls mid-trace"},
      {"gc.phase.evacuate.stall", "evacuation worker stalls mid-copy"},
      {"gc.concurrent_evac.stall", "concurrent-evacuation copy worker stalls off-pause"},
      {"gc.concurrent_evac.cancel", "concurrent evacuation cancels itself mid-flight"},
      {"gc.concurrent_evac.copy_fail", "concurrent-evacuation to-space allocation fails"},
      {"gc.phase.compact.stall", "full-compaction phase stalls"},
      {"gc.verify.stall", "in-pause heap verification stalls"},
      {"gc.worker.stall", "GC pool worker stalls inside a task"},
      {"gc.worker.die", "GC pool worker dies; task is requeued"},
      {"rolp.old_table.drop", "OLD-table sample is shed"},
      {"rolp.survivor.drop", "survivor-tracking update is dropped"},
      {"rolp.merge.stall", "profiler worker-table merge stalls"},
      {"rolp.inference.implausible", "inference sees an implausible histogram"},
      {"rolp.inference.conflict", "inference flags a context conflict"},
      {"rolp.resolver.spurious_conflict", "conflict resolver reports a spurious conflict"},
      {"service.queue.full", "service request queue reports itself full"},
      {"service.admit.reject", "admission control rejects an admissible request"},
      {"service.alloc.throttle", "allocation slow path pays a governor-style stall"},
      {"service.arrival.burst", "open-loop generator schedules an arrival burst"},
      {"ingest.parse.corrupt", "feed parser sees a corrupt wire message (dropped)"},
      {"ingest.queue.stall", "pipeline stage stalls before a ring hand-off"},
      {"ingest.book.alloc", "order-book update allocation fails (event dropped)"},
      {"ingest.pool.exhausted", "slab pool reports exhaustion to the pooled arm"},
      {"ingest.analytics.spike", "analytics stage pays a work spike on one event"},
  };
  return *catalog;
}

bool FaultInjection::IsCatalogPoint(const std::string& point) {
  for (const CatalogEntry& e : Catalog()) {
    if (point == e.name) {
      return true;
    }
  }
  return false;
}

FaultInjection& FaultInjection::Instance() {
  // Leaked singleton: fail points are hit from GC worker threads that may
  // still run during static destruction.
  static FaultInjection* instance = new FaultInjection();
  return *instance;
}

FaultInjection::Impl* FaultInjection::impl() {
  Impl* existing = impl_.load(std::memory_order_acquire);
  if (existing != nullptr) {
    return existing;
  }
  Impl* fresh = new Impl();
  if (impl_.compare_exchange_strong(existing, fresh, std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;
  return existing;
}

void FaultInjection::Arm(const std::string& point, Mode mode, uint64_t n, double p,
                         uint64_t seed, uint32_t delay_ms) {
  Impl* im = impl();
  std::lock_guard<SpinLock> guard(im->lock);
  Point& pt = im->points[point];
  if (!pt.armed) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  pt.armed = true;
  pt.mode = mode;
  pt.n = n < 1 ? 1 : n;
  pt.p = p;
  pt.rng = Random(seed);
  pt.hits = 0;
  pt.fires = 0;
  pt.once_fired = false;
  pt.delay_ms = delay_ms;
}

void FaultInjection::ArmAlways(const std::string& point) {
  Arm(point, Mode::kAlways, 1, 0.0, 0);
}

void FaultInjection::ArmEveryNth(const std::string& point, uint64_t n) {
  Arm(point, Mode::kEveryNth, n, 0.0, 0);
}

void FaultInjection::ArmOnceAtHit(const std::string& point, uint64_t k) {
  Arm(point, Mode::kOnceAtHit, k, 0.0, 0);
}

void FaultInjection::ArmProbability(const std::string& point, double p, uint64_t seed) {
  Arm(point, Mode::kProbability, 1, p, seed);
}

void FaultInjection::ArmDelay(const std::string& point, uint32_t ms) {
  Arm(point, Mode::kAlways, 1, 0.0, 0, ms);
}

void FaultInjection::ArmDelayEveryNth(const std::string& point, uint32_t ms, uint64_t n) {
  Arm(point, Mode::kEveryNth, n, 0.0, 0, ms);
}

void FaultInjection::ArmDelayOnceAtHit(const std::string& point, uint32_t ms, uint64_t k) {
  Arm(point, Mode::kOnceAtHit, k, 0.0, 0, ms);
}

void FaultInjection::Disarm(const std::string& point) {
  Impl* im = impl();
  std::lock_guard<SpinLock> guard(im->lock);
  auto it = im->points.find(point);
  if (it != im->points.end() && it->second.armed) {
    it->second.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjection::Reset() {
  Impl* im = impl();
  std::lock_guard<SpinLock> guard(im->lock);
  uint32_t armed = 0;
  for (const auto& [name, pt] : im->points) {
    if (pt.armed) {
      armed++;
    }
  }
  armed_count_.fetch_sub(armed, std::memory_order_relaxed);
  im->points.clear();
  im->total_fires = 0;
}

bool FaultInjection::IsArmed(const std::string& point) const {
  Impl* im = const_cast<FaultInjection*>(this)->impl();
  std::lock_guard<SpinLock> guard(im->lock);
  auto it = im->points.find(point);
  return it != im->points.end() && it->second.armed;
}

uint64_t FaultInjection::Hits(const std::string& point) const {
  Impl* im = const_cast<FaultInjection*>(this)->impl();
  std::lock_guard<SpinLock> guard(im->lock);
  auto it = im->points.find(point);
  return it == im->points.end() ? 0 : it->second.hits;
}

uint64_t FaultInjection::Fires(const std::string& point) const {
  Impl* im = const_cast<FaultInjection*>(this)->impl();
  std::lock_guard<SpinLock> guard(im->lock);
  auto it = im->points.find(point);
  return it == im->points.end() ? 0 : it->second.fires;
}

uint64_t FaultInjection::TotalFires() const {
  Impl* im = const_cast<FaultInjection*>(this)->impl();
  std::lock_guard<SpinLock> guard(im->lock);
  return im->total_fires;
}

std::vector<std::string> FaultInjection::ArmedPoints() const {
  Impl* im = const_cast<FaultInjection*>(this)->impl();
  std::lock_guard<SpinLock> guard(im->lock);
  std::vector<std::string> out;
  for (const auto& [name, pt] : im->points) {
    if (pt.armed) {
      out.push_back(name);
    }
  }
  return out;
}

namespace {

const char* ModeName(FaultInjection::Mode mode) {
  switch (mode) {
    case FaultInjection::Mode::kAlways:
      return "always";
    case FaultInjection::Mode::kEveryNth:
      return "every-nth";
    case FaultInjection::Mode::kOnceAtHit:
      return "once-at-hit";
    case FaultInjection::Mode::kProbability:
      return "probability";
  }
  return "?";
}

}  // namespace

void FaultInjection::DumpTo(std::FILE* out) const {
  Impl* im = const_cast<FaultInjection*>(this)->impl();
  std::lock_guard<SpinLock> guard(im->lock);
  if (im->points.empty()) {
    std::fprintf(out, "  (no fail points ever armed)\n");
    return;
  }
  for (const auto& [name, pt] : im->points) {
    std::fprintf(out, "  %s: %s mode=%s n=%llu p=%g delay_ms=%u hits=%llu fires=%llu\n",
                 name.c_str(), pt.armed ? "ARMED" : "disarmed", ModeName(pt.mode),
                 (unsigned long long)pt.n, pt.p, pt.delay_ms, (unsigned long long)pt.hits,
                 (unsigned long long)pt.fires);
  }
}

bool FaultInjection::ShouldFailSlow(const char* point) {
  Impl* im = impl();
  uint32_t delay_ms = 0;
  bool fire = false;
  {
    std::lock_guard<SpinLock> guard(im->lock);
    auto it = im->points.find(point);
    if (it == im->points.end() || !it->second.armed) {
      return false;
    }
    Point& pt = it->second;
    pt.hits++;
    switch (pt.mode) {
      case Mode::kAlways:
        fire = true;
        break;
      case Mode::kEveryNth:
        fire = pt.hits % pt.n == 0;
        break;
      case Mode::kOnceAtHit:
        fire = !pt.once_fired && pt.hits == pt.n;
        pt.once_fired = pt.once_fired || fire;
        break;
      case Mode::kProbability:
        fire = pt.rng.NextBool(pt.p);
        break;
    }
    if (fire) {
      pt.fires++;
      im->total_fires++;
      delay_ms = pt.delay_ms;
    }
  }
  // Delay points stall the hitting thread outside the registry lock, then
  // report false: the stall is the whole injected fault.
  if (delay_ms != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    return false;
  }
  return fire;
}

bool FaultInjection::ParseSpec(const std::string& spec, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      continue;
    }
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return fail("bad fault entry (want <point>=<mode>): " + entry);
    }
    std::string point = entry.substr(0, eq);
    std::string mode = entry.substr(eq + 1);
    // A misspelled point would otherwise arm silently and never fire; names
    // must come from the registered catalog unless escaped with '!'.
    if (point[0] == '!') {
      point = point.substr(1);
      if (point.empty()) {
        return fail("bad fault entry (empty point name): " + entry);
      }
      if (!IsCatalogPoint(point)) {
        std::fprintf(stderr, "ROLP_FAULTS: warning: arming uncatalogued fail point '%s'\n",
                     point.c_str());
      }
    } else if (!IsCatalogPoint(point)) {
      return fail("unknown fail point '" + point +
                  "' (not in the registered catalog; prefix with '!' to arm anyway)");
    }
    if (mode == "always") {
      ArmAlways(point);
      continue;
    }
    if (mode == "off") {
      Disarm(point);
      continue;
    }
    size_t colon = mode.find(':');
    std::string kind = mode.substr(0, colon);
    std::string args = colon == std::string::npos ? "" : mode.substr(colon + 1);
    if (kind == "every" || kind == "once") {
      char* end = nullptr;
      unsigned long long n = std::strtoull(args.c_str(), &end, 10);
      if (end == args.c_str() || n == 0) {
        return fail("bad fault count in: " + entry);
      }
      if (kind == "every") {
        ArmEveryNth(point, n);
      } else {
        ArmOnceAtHit(point, n);
      }
      continue;
    }
    if (kind == "delay") {
      // delay:<ms> | delay:<ms>:every:<N> | delay:<ms>:once:<K>
      size_t colon2 = args.find(':');
      std::string msstr = args.substr(0, colon2);
      char* end = nullptr;
      unsigned long long ms = std::strtoull(msstr.c_str(), &end, 10);
      if (end == msstr.c_str() || ms == 0 || ms > 0xffffffffULL) {
        return fail("bad delay milliseconds in: " + entry);
      }
      if (colon2 == std::string::npos) {
        ArmDelay(point, (uint32_t)ms);
        continue;
      }
      std::string rest = args.substr(colon2 + 1);
      size_t colon3 = rest.find(':');
      std::string trig = rest.substr(0, colon3);
      std::string nstr = colon3 == std::string::npos ? "" : rest.substr(colon3 + 1);
      end = nullptr;
      unsigned long long n = std::strtoull(nstr.c_str(), &end, 10);
      if ((trig != "every" && trig != "once") || end == nstr.c_str() || n == 0) {
        return fail("bad delay trigger in: " + entry);
      }
      if (trig == "every") {
        ArmDelayEveryNth(point, (uint32_t)ms, n);
      } else {
        ArmDelayOnceAtHit(point, (uint32_t)ms, n);
      }
      continue;
    }
    if (kind == "prob") {
      size_t colon2 = args.find(':');
      std::string pstr = args.substr(0, colon2);
      char* end = nullptr;
      double p = std::strtod(pstr.c_str(), &end);
      if (end == pstr.c_str() || p <= 0.0 || p > 1.0) {
        return fail("bad fault probability in: " + entry);
      }
      uint64_t seed = 0x5eed;
      if (colon2 != std::string::npos) {
        seed = std::strtoull(args.c_str() + colon2 + 1, nullptr, 10);
      }
      ArmProbability(point, p, seed);
      continue;
    }
    return fail("unknown fault mode in: " + entry);
  }
  return true;
}

bool FaultInjection::LoadFromEnv() {
  const char* spec = std::getenv("ROLP_FAULTS");
  if (spec == nullptr || *spec == '\0') {
    return true;
  }
  std::string error;
  if (!ParseSpec(spec, &error)) {
    std::fprintf(stderr, "ROLP_FAULTS: %s\n", error.c_str());
    return false;
  }
  return true;
}

namespace {

// Simple shell-style glob over point names: '*' matches any run (including
// across '.'), '?' matches one character.
bool GlobMatch(const char* pat, const char* str) {
  if (*pat == '\0') {
    return *str == '\0';
  }
  if (*pat == '*') {
    while (*pat == '*') {
      pat++;
    }
    for (const char* s = str;; s++) {
      if (GlobMatch(pat, s)) {
        return true;
      }
      if (*s == '\0') {
        return false;
      }
    }
  }
  if (*str == '\0') {
    return false;
  }
  if (*pat != '?' && *pat != *str) {
    return false;
  }
  return GlobMatch(pat + 1, str + 1);
}

uint64_t Fnv1a64(const char* s) {
  uint64_t h = 14695981039346656037ULL;
  for (; *s != '\0'; s++) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*s));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

bool FaultInjection::ParseChaosSpec(const std::string& spec, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  bool have_seed = false;
  bool have_rate = false;
  uint64_t seed = 0;
  double rate = 0.0;
  std::string glob = "*";
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      continue;
    }
    size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      return fail("bad chaos entry (want key:value): " + entry);
    }
    std::string key = entry.substr(0, colon);
    std::string value = entry.substr(colon + 1);
    if (key == "seed") {
      char* end = nullptr;
      seed = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return fail("bad chaos seed: " + entry);
      }
      have_seed = true;
    } else if (key == "rate") {
      char* end = nullptr;
      rate = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || rate <= 0.0 || rate > 1.0) {
        return fail("bad chaos rate (want (0,1]): " + entry);
      }
      have_rate = true;
    } else if (key == "points") {
      if (value.empty()) {
        return fail("empty chaos points glob");
      }
      glob = value;
    } else {
      return fail("unknown chaos key '" + key + "' (want seed/rate/points)");
    }
  }
  if (!have_seed || !have_rate) {
    return fail("chaos spec needs both seed:<s> and rate:<p>");
  }
  // Arm every matching catalog point with a per-point derived seed: the
  // campaign seed fans out deterministically, and the equivalent ROLP_FAULTS
  // spec replays the exact same firing sequences without the chaos engine.
  std::string replay;
  char buf[160];
  for (const CatalogEntry& e : Catalog()) {
    if (!GlobMatch(glob.c_str(), e.name)) {
      continue;
    }
    uint64_t point_seed = seed ^ Fnv1a64(e.name);
    ArmProbability(e.name, rate, point_seed);
    std::snprintf(buf, sizeof(buf), "%s%s=prob:%.17g:%llu", replay.empty() ? "" : ",",
                  e.name, rate, (unsigned long long)point_seed);
    replay += buf;
  }
  if (replay.empty()) {
    return fail("chaos points glob '" + glob + "' matches no catalog point");
  }
  Impl* im = impl();
  std::lock_guard<SpinLock> guard(im->lock);
  im->chaos_spec = replay;
  return true;
}

bool FaultInjection::LoadChaosFromEnv() {
  const char* spec = std::getenv("ROLP_CHAOS");
  if (spec == nullptr || *spec == '\0') {
    return true;
  }
  std::string error;
  if (!ParseChaosSpec(spec, &error)) {
    std::fprintf(stderr, "ROLP_CHAOS: %s\n", error.c_str());
    return false;
  }
  return true;
}

std::string FaultInjection::ChaosReplaySpec() const {
  Impl* im = const_cast<FaultInjection*>(this)->impl();
  std::lock_guard<SpinLock> guard(im->lock);
  return im->chaos_spec;
}

}  // namespace rolp
