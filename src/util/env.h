// Environment-variable configuration helpers. Bench binaries use these to
// expose scale knobs (ROLP_BENCH_SECONDS, ROLP_BENCH_HEAP_MB, ...) without
// argument parsing.
#ifndef SRC_UTIL_ENV_H_
#define SRC_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace rolp {

int64_t EnvInt64(const char* name, int64_t default_value);
double EnvDouble(const char* name, double default_value);
bool EnvBool(const char* name, bool default_value);
std::string EnvString(const char* name, const std::string& default_value);

}  // namespace rolp

#endif  // SRC_UTIL_ENV_H_
