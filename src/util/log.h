// Minimal leveled logger. Level is read once from the ROLP_LOG environment
// variable ("error", "warn", "info", "debug", "trace"); default is "warn" so
// benchmarks stay quiet.
#ifndef SRC_UTIL_LOG_H_
#define SRC_UTIL_LOG_H_

#include <cstdarg>

namespace rolp {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

// Current level; initialized lazily from ROLP_LOG.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// printf-style logging to stderr, prefixed with the level tag.
void LogImpl(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

inline bool LogEnabled(LogLevel level) { return static_cast<int>(level) <= static_cast<int>(GetLogLevel()); }

}  // namespace rolp

#define ROLP_LOG(level, ...)                        \
  do {                                              \
    if (::rolp::LogEnabled(level)) {                \
      ::rolp::LogImpl(level, __VA_ARGS__);          \
    }                                               \
  } while (0)

#define ROLP_LOG_ERROR(...) ROLP_LOG(::rolp::LogLevel::kError, __VA_ARGS__)
#define ROLP_LOG_WARN(...) ROLP_LOG(::rolp::LogLevel::kWarn, __VA_ARGS__)
#define ROLP_LOG_INFO(...) ROLP_LOG(::rolp::LogLevel::kInfo, __VA_ARGS__)
#define ROLP_LOG_DEBUG(...) ROLP_LOG(::rolp::LogLevel::kDebug, __VA_ARGS__)
#define ROLP_LOG_TRACE(...) ROLP_LOG(::rolp::LogLevel::kTrace, __VA_ARGS__)

#endif  // SRC_UTIL_LOG_H_
