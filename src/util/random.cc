#include "src/util/random.h"

#include <cmath>

#include "src/util/check.h"

namespace rolp {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Random::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::NextBounded(uint64_t bound) {
  ROLP_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Random::NextRange(int64_t lo, int64_t hi) {
  ROLP_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

double Random::NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

bool Random::NextBool(double p) { return NextDouble() < p; }

double Random::NextGaussian() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-12) {
    u1 = NextDouble();
  }
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  has_gauss_ = true;
  return r * std::cos(theta);
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  ROLP_CHECK(n > 0);
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  uint64_t v = static_cast<uint64_t>(static_cast<double>(n_) *
                                     std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= n_) {
    v = n_ - 1;
  }
  return v;
}

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights) {
  ROLP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    ROLP_CHECK(w >= 0.0);
    total += w;
  }
  ROLP_CHECK(total > 0.0);
  cumulative_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    acc += w / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;
}

size_t DiscreteDistribution::Sample(Random& rng) const {
  double u = rng.NextDouble();
  // Binary search for the first cumulative weight > u.
  size_t lo = 0;
  size_t hi = cumulative_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cumulative_[mid] > u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace rolp
