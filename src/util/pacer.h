// Absolute-deadline pacing for open-loop load generation.
//
// The bug this replaces: pacing with a *relative* sleep —
//   sleep_for(deadline - now)
// — re-anchors every wait to the moment sleep_for is called, so the OS
// timer slack (50 µs by default on Linux, see prctl(PR_SET_TIMERSLACK)) is
// paid on top of the remaining wait, every time. At 100k events/s the
// inter-arrival gap is 10 µs, i.e. *smaller than the slack*: the generator
// oversleeps, wakes to find several arrivals overdue, issues them in a
// zero-gap burst, and the measured scheduled-arrival lateness p50 becomes a
// property of the kernel timer, not of the system under test. That is a
// coordinated-omission-adjacent bug in the very harness built to avoid
// coordinated omission.
//
// The fix (kAbsoluteHybrid): sleep_until(deadline - spin_slack), then spin
// on the monotonic clock for the remainder. The absolute sleep target means
// oversleep never compounds across events, and the bounded spin (at most
// spin_slack plus the kernel's actual oversleep) absorbs the timer slack
// entirely, so issuance lands within the clock-read granularity of the
// schedule. Callers that only need a coarse wake (e.g. the generator's
// periodic retry-queue re-check) pass precise=false and skip the spin.
//
// kRelativeSleep preserves the legacy behaviour verbatim so the regression
// test can demonstrate the drift on demand (tests/service/pacer_test.cc) —
// the pre-fix failure stays encoded in the suite instead of vanishing with
// the fix. ROLP_PACING=relative re-enables it end to end for A/B runs.
#ifndef SRC_UTIL_PACER_H_
#define SRC_UTIL_PACER_H_

#include <cstdint>

namespace rolp {

enum class PacingMode : uint8_t {
  kAbsoluteHybrid = 0,  // sleep_until(deadline - slack) + bounded spin
  kRelativeSleep = 1,   // legacy: sleep_for(deadline - now); drifts by timer slack
};

struct PacerOptions {
  PacingMode mode = PacingMode::kAbsoluteHybrid;
  // How early the absolute sleep aims, i.e. the spin budget. Matches the
  // default Linux timer slack: sleeping closer than this to the deadline is
  // what the kernel cannot do accurately.
  uint64_t spin_slack_ns = 50 * 1000;
  // Reads ROLP_PACING=absolute|relative and ROLP_PACER_SPIN_US.
  static PacerOptions FromEnv();
};

class Pacer {
 public:
  explicit Pacer(PacerOptions options = {}) : options_(options) {}

  // Blocks until NowNs() >= deadline_ns (same monotonic base as NowNs()).
  // `precise` selects the hybrid spin finish; pass false for coarse wakes
  // where a sleep-only wait (subject to timer slack) is acceptable.
  // Returns NowNs() at wake. Deadlines already in the past return
  // immediately.
  uint64_t WaitUntil(uint64_t deadline_ns, bool precise = true);

  const PacerOptions& options() const { return options_; }

 private:
  PacerOptions options_;
};

}  // namespace rolp

#endif  // SRC_UTIL_PACER_H_
