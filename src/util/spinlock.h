// Tiny test-and-test-and-set spinlock for short critical sections
// (remembered-set inserts, free-list carving). Satisfies Lockable so it can
// be used with std::lock_guard.
//
// Contention behaviour: a fixed CpuRelax spin budget, then std::this_thread
// ::yield(), then exponentially growing sleeps (capped). A spinlock guards
// sections of at most a few hundred instructions, so a waiter that spins for
// long is almost certainly observing a stuck owner — the backoff keeps such
// livelocks from burning whole cores, and in debug builds a waiter that has
// waited past a (settable) threshold fails a ROLP_CHECK, which dumps the
// registered crash context before aborting. That assertion is the floor
// below the GC watchdog: it catches lock-level livelocks the phase-deadline
// machinery cannot see.
#ifndef SRC_UTIL_SPINLOCK_H_
#define SRC_UTIL_SPINLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "src/util/check.h"
#include "src/util/clock.h"

namespace rolp {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    if (!locked_.exchange(true, std::memory_order_acquire)) {
      return;
    }
    LockSlow();
  }

  bool try_lock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void unlock() { locked_.store(false, std::memory_order_release); }

#ifndef NDEBUG
  // Debug-only: how long a waiter may wait before concluding the owner is
  // stuck and aborting with crash context. Process-global so tests can
  // shrink it; 0 disables the check.
  static void SetDebugHeldTooLongNsForTest(uint64_t ns) {
    debug_held_too_long_ns().store(ns, std::memory_order_relaxed);
  }
#endif

 private:
  void LockSlow() {
    // ~128 pause iterations cover any healthy critical section; after that
    // assume the owner was preempted and get off the core.
    static constexpr int kSpinBudget = 128;
    static constexpr uint32_t kMaxSleepUs = 128;
#ifndef NDEBUG
    uint64_t wait_start_ns = 0;
#endif
    while (true) {
      for (int i = 0; i < kSpinBudget; i++) {
        if (!locked_.load(std::memory_order_relaxed) &&
            !locked_.exchange(true, std::memory_order_acquire)) {
          return;
        }
        CpuRelax();
      }
      uint32_t sleep_us = 0;
      while (locked_.load(std::memory_order_relaxed)) {
        if (sleep_us == 0) {
          std::this_thread::yield();
          sleep_us = 1;
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
          if (sleep_us < kMaxSleepUs) {
            sleep_us *= 2;
          }
        }
#ifndef NDEBUG
        uint64_t limit = debug_held_too_long_ns().load(std::memory_order_relaxed);
        if (limit != 0) {
          uint64_t now = NowNs();
          if (wait_start_ns == 0) {
            wait_start_ns = now;
          } else if (now - wait_start_ns > limit) {
            ROLP_CHECK_MSG(now - wait_start_ns <= limit,
                           "SpinLock held too long (owner stuck or deadlocked)");
          }
        }
#endif
      }
    }
  }

#ifndef NDEBUG
  static std::atomic<uint64_t>& debug_held_too_long_ns() {
    // Default 10 s: far beyond any legitimate hold, short enough to convert
    // a silent livelock into an actionable crash report.
    static std::atomic<uint64_t> ns{10ULL * 1000 * 1000 * 1000};
    return ns;
  }
#endif

  std::atomic<bool> locked_{false};
};

}  // namespace rolp

#endif  // SRC_UTIL_SPINLOCK_H_
