// Tiny test-and-test-and-set spinlock for short critical sections
// (remembered-set inserts, free-list carving). Satisfies Lockable so it can
// be used with std::lock_guard.
#ifndef SRC_UTIL_SPINLOCK_H_
#define SRC_UTIL_SPINLOCK_H_

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace rolp {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      while (locked_.load(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
  }

  bool try_lock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace rolp

#endif  // SRC_UTIL_SPINLOCK_H_
