#include "src/util/crash_context.h"

#include <atomic>
#include <mutex>
#include <utility>
#include <vector>

#include "src/util/check.h"
#include "src/util/fault_injection.h"
#include "src/util/spinlock.h"

namespace rolp {

namespace {

struct Registry {
  SpinLock lock;
  int next_id = 1;
  std::vector<std::pair<int, std::pair<std::string, CrashContext::Provider>>> providers;
};

Registry& GetRegistry() {
  // Leaked: checks can fail during static destruction.
  static Registry* registry = new Registry();
  return *registry;
}

std::atomic<bool> g_dumping{false};

}  // namespace

int CrashContext::Register(const std::string& section, Provider provider) {
  Registry& reg = GetRegistry();
  std::lock_guard<SpinLock> guard(reg.lock);
  int id = reg.next_id++;
  reg.providers.emplace_back(id, std::make_pair(section, std::move(provider)));
  return id;
}

void CrashContext::Unregister(int id) {
  Registry& reg = GetRegistry();
  std::lock_guard<SpinLock> guard(reg.lock);
  for (size_t i = 0; i < reg.providers.size(); i++) {
    if (reg.providers[i].first == id) {
      reg.providers.erase(reg.providers.begin() + static_cast<long>(i));
      return;
    }
  }
}

void CrashContext::Dump(std::FILE* out) {
  bool expected = false;
  if (!g_dumping.compare_exchange_strong(expected, true)) {
    return;  // a provider itself crashed; don't recurse
  }
  std::fprintf(out, "=== ROLP crash context ===\n");
  // Copy under the lock, run outside it: a provider may touch code that also
  // registers providers, and holding a spinlock across arbitrary callbacks
  // invites deadlock on the dying process's last breath.
  std::vector<std::pair<std::string, Provider>> snapshot;
  {
    Registry& reg = GetRegistry();
    std::lock_guard<SpinLock> guard(reg.lock);
    snapshot.reserve(reg.providers.size());
    for (const auto& [id, entry] : reg.providers) {
      snapshot.push_back(entry);
    }
  }
  for (const auto& [section, provider] : snapshot) {
    std::fprintf(out, "--- %s ---\n", section.c_str());
    provider(out);
  }
  std::fprintf(out, "--- fail points ---\n");
  FaultInjection::Instance().DumpTo(out);
  std::fprintf(out, "=== end crash context ===\n");
  std::fflush(out);
  g_dumping.store(false);
}

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  CrashContext::Dump(stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace rolp
