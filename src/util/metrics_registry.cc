#include "src/util/metrics_registry.h"

#include <algorithm>
#include <cinttypes>

#include "src/util/env.h"
#include "src/util/histogram.h"
#include "src/util/log.h"

namespace rolp {

HistogramSnapshot SnapshotLogHistogram(const LogHistogram& hist) {
  HistogramSnapshot s;
  s.count = hist.Count();
  s.min = hist.Min();
  s.max = hist.Max();
  s.mean = hist.Mean();
  s.p50 = hist.Percentile(50.0);
  s.p90 = hist.Percentile(90.0);
  s.p99 = hist.Percentile(99.0);
  s.p999 = hist.Percentile(99.9);
  return s;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

MetricCounter* MetricsRegistry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> guard(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<MetricCounter>();
  }
  return slot.get();
}

int MetricsRegistry::RegisterGauge(const std::string& name, GaugeFn fn) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    it = it->second.name == name ? entries_.erase(it) : std::next(it);
  }
  int id = next_id_++;
  entries_[id] = Entry{name, std::move(fn), nullptr};
  return id;
}

int MetricsRegistry::RegisterHistogram(const std::string& name, HistogramFn fn) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    it = it->second.name == name ? entries_.erase(it) : std::next(it);
  }
  int id = next_id_++;
  entries_[id] = Entry{name, nullptr, std::move(fn)};
  return id;
}

void MetricsRegistry::Unregister(int id) {
  std::lock_guard<std::mutex> guard(mu_);
  entries_.erase(id);
}

MetricsRegistry::Snapshot MetricsRegistry::Collect() const {
  // Copy the callbacks under the lock, sample them outside it: a gauge that
  // itself touches a registry counter (or a slow histogram provider) must not
  // deadlock or stall registration.
  std::vector<std::pair<std::string, GaugeFn>> gauges;
  std::vector<std::pair<std::string, HistogramFn>> hists;
  Snapshot snap;
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (const auto& [name, counter] : counters_) {
      snap.counters.emplace_back(name, counter->Value());
    }
    for (const auto& [id, entry] : entries_) {
      (void)id;
      if (entry.gauge) {
        gauges.emplace_back(entry.name, entry.gauge);
      } else if (entry.histogram) {
        hists.emplace_back(entry.name, entry.histogram);
      }
    }
  }
  for (auto& [name, fn] : gauges) {
    snap.gauges.emplace_back(name, fn());
  }
  for (auto& [name, fn] : hists) {
    snap.histograms.emplace_back(name, fn());
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

namespace {

// Gauges sample arbitrary doubles; %.6g keeps integers exact up to 2^33 and
// round-trips typical ratios without trailing-zero noise.
void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names use
// dotted namespaces; map every other character to '_' and prefix "rolp_".
std::string PromName(const std::string& name) {
  std::string out = "rolp_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void AppendHistJson(std::string* out, const HistogramSnapshot& h) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%" PRIu64 ",\"min\":%" PRIu64 ",\"max\":%" PRIu64
                ",\"mean\":%.6g,\"p50\":%" PRIu64 ",\"p90\":%" PRIu64
                ",\"p99\":%" PRIu64 ",\"p999\":%" PRIu64 "}",
                h.count, h.min, h.max, h.mean, h.p50, h.p90, h.p99, h.p999);
  *out += buf;
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  Snapshot snap = Collect();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":";
    AppendDouble(&out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":";
    AppendHistJson(&out, h);
  }
  out += "}}\n";
  return out;
}

std::string MetricsRegistry::ToPrometheus() const {
  Snapshot snap = Collect();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    std::string n = PromName(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    std::string n = PromName(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " ";
    AppendDouble(&out, value);
    out += "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    std::string n = PromName(name);
    out += "# TYPE " + n + " summary\n";
    const std::pair<const char*, uint64_t> quantiles[] = {
        {"0.5", h.p50}, {"0.9", h.p90}, {"0.99", h.p99}, {"0.999", h.p999}};
    for (const auto& [q, v] : quantiles) {
      out += n + "{quantile=\"" + q + "\"} " + std::to_string(v) + "\n";
    }
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

void MetricsRegistry::WriteText(std::FILE* out) const {
  Snapshot snap = Collect();
  std::fprintf(out, "== metrics snapshot ==\n");
  std::fprintf(out, "[counters]\n");
  for (const auto& [name, value] : snap.counters) {
    std::fprintf(out, "  %-40s %" PRIu64 "\n", name.c_str(), value);
  }
  std::fprintf(out, "[gauges]\n");
  for (const auto& [name, value] : snap.gauges) {
    std::fprintf(out, "  %-40s %.6g\n", name.c_str(), value);
  }
  std::fprintf(out, "[histograms]\n");
  for (const auto& [name, h] : snap.histograms) {
    std::fprintf(out,
                 "  %-40s count=%" PRIu64 " min=%" PRIu64 " max=%" PRIu64
                 " mean=%.6g p50=%" PRIu64 " p90=%" PRIu64 " p99=%" PRIu64
                 " p999=%" PRIu64 "\n",
                 name.c_str(), h.count, h.min, h.max, h.mean, h.p50, h.p90,
                 h.p99, h.p999);
  }
}

bool MetricsRegistry::WriteSnapshotFiles(const std::string& path) const {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    ROLP_LOG_ERROR("metrics: cannot open %s for writing", path.c_str());
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    ROLP_LOG_ERROR("metrics: short write to %s", path.c_str());
    return false;
  }
  std::string text_path = path + ".txt";
  f = std::fopen(text_path.c_str(), "w");
  if (f == nullptr) {
    ROLP_LOG_ERROR("metrics: cannot open %s for writing", text_path.c_str());
    return false;
  }
  WriteText(f);
  std::fclose(f);
  if (EnvString("ROLP_METRICS_FORMAT", "") == "prom") {
    std::string prom = ToPrometheus();
    std::string prom_path = path + ".prom";
    f = std::fopen(prom_path.c_str(), "w");
    if (f == nullptr) {
      ROLP_LOG_ERROR("metrics: cannot open %s for writing", prom_path.c_str());
      return false;
    }
    written = std::fwrite(prom.data(), 1, prom.size(), f);
    std::fclose(f);
    if (written != prom.size()) {
      ROLP_LOG_ERROR("metrics: short write to %s", prom_path.c_str());
      return false;
    }
  }
  return true;
}

size_t MetricsRegistry::num_counters() const {
  std::lock_guard<std::mutex> guard(mu_);
  return counters_.size();
}

size_t MetricsRegistry::num_gauges() const {
  std::lock_guard<std::mutex> guard(mu_);
  size_t n = 0;
  for (const auto& [id, e] : entries_) {
    (void)id;
    n += e.gauge ? 1 : 0;
  }
  return n;
}

size_t MetricsRegistry::num_histograms() const {
  std::lock_guard<std::mutex> guard(mu_);
  size_t n = 0;
  for (const auto& [id, e] : entries_) {
    (void)id;
    n += e.histogram ? 1 : 0;
  }
  return n;
}

}  // namespace rolp
