// Deterministic fail-point fault injection (paper section 7 discipline: every
// unhappy path must be exercisable on demand).
//
// Code under test declares named fail points:
//
//   if (ROLP_FAULT_POINT("heap.region.oom")) {
//     return nullptr;  // behave exactly as the real failure would
//   }
//
// Tests (or the ROLP_FAULTS environment variable) arm points with one of four
// trigger modes: fire on every hit, fire every Nth hit, fire once at exactly
// hit K, or fire with seeded probability p. Nothing fires unless explicitly
// armed; the unarmed fast path is a single relaxed atomic load and a
// predictable branch, so fail points may sit on allocation fast paths.
//
// Besides the fire/no-fire actions, a point can be armed with a *delay*
// action: when the trigger matches, the hitting thread sleeps for the
// configured milliseconds and ShouldFail returns false (the code does not
// take its failure branch — it was merely stalled). This is how watchdog
// tests inject deterministic hangs into GC worker tasks and phases.
//
// Naming convention: "<layer>.<component>.<event>", all lowercase, e.g.
// "heap.region.oom", "gc.collect.skip", "rolp.old_table.drop". The full
// catalog lives in DESIGN.md ("Failure model and degraded modes").
//
// Env activation: ROLP_FAULTS is a comma-separated list of
//   <point>=always | <point>=every:<N> | <point>=once:<K> |
//   <point>=prob:<P>[:<seed>] |
//   <point>=delay:<ms> | <point>=delay:<ms>:every:<N> | <point>=delay:<ms>:once:<K>
// parsed once by the VM at startup (FaultInjection::LoadFromEnv). Point names
// are validated against the registered catalog so a typo fails loudly instead
// of arming a point that never fires; prefix a name with '!' to arm an
// uncatalogued point anyway (tests of the framework itself).
//
// Chaos campaigns: ROLP_CHAOS=seed:<s>,rate:<p>[,points:<glob>] arms every
// catalog point matching the glob in probability mode with a per-point seed
// derived deterministically from <s> and the point name. ChaosReplaySpec()
// returns the equivalent ROLP_FAULTS spec, so any seeded campaign run can be
// replayed — and shrunk — without the chaos engine.
//
// Configuring the ROLP_FAULT_INJECTION=OFF CMake option defines
// ROLP_NO_FAULT_INJECTION and compiles every fail point to a constant false.
#ifndef SRC_UTIL_FAULT_INJECTION_H_
#define SRC_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace rolp {

class FaultInjection {
 public:
  enum class Mode : uint8_t { kAlways, kEveryNth, kOnceAtHit, kProbability };

  static FaultInjection& Instance();

  // --- Arming (tests / env; not thread-hot) --------------------------------
  void ArmAlways(const std::string& point);
  // Fires on the Nth, 2Nth, 3Nth... hit (n >= 1; n == 1 means every hit).
  void ArmEveryNth(const std::string& point, uint64_t n);
  // Fires exactly once, on hit number k (1-based).
  void ArmOnceAtHit(const std::string& point, uint64_t k);
  // Fires each hit independently with probability p, from a seeded generator
  // so a given (p, seed) pair replays the same firing sequence.
  void ArmProbability(const std::string& point, double p, uint64_t seed);

  // Delay action: when the trigger matches, the hitting thread sleeps ms
  // milliseconds and the point reports false (a stall, not a failure).
  void ArmDelay(const std::string& point, uint32_t ms);            // every hit
  void ArmDelayEveryNth(const std::string& point, uint32_t ms, uint64_t n);
  void ArmDelayOnceAtHit(const std::string& point, uint32_t ms, uint64_t k);

  void Disarm(const std::string& point);
  // Disarms everything and forgets all hit/fire statistics.
  void Reset();

  // --- Registered catalog ---------------------------------------------------
  // Every fail point compiled into the tree, with a one-line description.
  // ROLP_FAULTS and ROLP_CHAOS only accept these names (modulo the '!'
  // escape); keep in sync with DESIGN.md "Failure model and degraded modes".
  struct CatalogEntry {
    const char* name;
    const char* description;
  };
  static const std::vector<CatalogEntry>& Catalog();
  static bool IsCatalogPoint(const std::string& point);

  // --- Introspection -------------------------------------------------------
  bool IsArmed(const std::string& point) const;
  // Hits/fires observed since the point was first armed (survive Disarm,
  // cleared by Reset).
  uint64_t Hits(const std::string& point) const;
  uint64_t Fires(const std::string& point) const;
  uint64_t TotalFires() const;
  std::vector<std::string> ArmedPoints() const;
  // Crash-context section: one line per known point with mode and counters.
  void DumpTo(std::FILE* out) const;

  // Parses a ROLP_FAULTS-style spec and arms accordingly. Returns false and
  // fills *error on a malformed entry or an uncatalogued point name (earlier
  // entries stay armed). A '!' prefix on the point name skips the catalog
  // check with a warning.
  bool ParseSpec(const std::string& spec, std::string* error);
  // Reads and parses the ROLP_FAULTS environment variable (no-op if unset).
  bool LoadFromEnv();

  // Parses a ROLP_CHAOS spec "seed:<s>,rate:<p>[,points:<glob>]" and arms
  // every matching catalog point with probability `rate` and a seed derived
  // from <s> and the point name (so the same <s> replays the same campaign).
  // Returns false and fills *error on a malformed spec or a glob matching no
  // catalog point.
  bool ParseChaosSpec(const std::string& spec, std::string* error);
  // Reads and parses the ROLP_CHAOS environment variable (no-op if unset).
  bool LoadChaosFromEnv();
  // The ROLP_FAULTS-equivalent spec of the last ParseChaosSpec arming
  // ("a=prob:r:seed1,b=prob:r:seed2,..."), empty if chaos was never armed.
  std::string ChaosReplaySpec() const;

  // --- Hot path (via ROLP_FAULT_POINT) -------------------------------------
  static bool ShouldFail(const char* point) {
    if (armed_count_.load(std::memory_order_relaxed) == 0) {
      return false;
    }
    return Instance().ShouldFailSlow(point);
  }

 private:
  FaultInjection() = default;
  bool ShouldFailSlow(const char* point);
  struct Point;
  void Arm(const std::string& point, Mode mode, uint64_t n, double p, uint64_t seed,
           uint32_t delay_ms = 0);

  static std::atomic<uint32_t> armed_count_;

  struct Impl;
  Impl* impl();  // lazily constructed, never destroyed (safe at exit)
  std::atomic<Impl*> impl_{nullptr};
};

}  // namespace rolp

#ifdef ROLP_NO_FAULT_INJECTION
#define ROLP_FAULT_POINT(name) false
#else
#define ROLP_FAULT_POINT(name) (::rolp::FaultInjection::ShouldFail(name))
#endif

#endif  // SRC_UTIL_FAULT_INJECTION_H_
