// Deterministic pseudo-random generators used by workloads and the conflict
// resolver. All generators are seedable so experiments are reproducible.
#ifndef SRC_UTIL_RANDOM_H_
#define SRC_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rolp {

// SplitMix64: used for seeding and for cheap stateless mixing.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless mix of a 64-bit value (finalizer of SplitMix64).
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Xoshiro256**: fast, high-quality general-purpose generator.
class Random {
 public:
  explicit Random(uint64_t seed = 0x5eed);

  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p.
  bool NextBool(double p);

  // Gaussian via Box-Muller, mean 0 stddev 1.
  double NextGaussian();

 private:
  uint64_t s_[4];
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

// YCSB-style Zipfian generator over [0, n). theta defaults to the YCSB
// constant 0.99. Uses the Gray et al. rejection-free algorithm with a
// precomputed zeta(n, theta).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 0x5eed);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  Random rng_;
};

// Scrambled zipfian: spreads the hot keys across the keyspace (as YCSB does),
// so hot keys are not clustered at low ids.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 0x5eed)
      : n_(n), zipf_(n, theta, seed) {}

  uint64_t Next() { return Mix64(zipf_.Next()) % n_; }

 private:
  uint64_t n_;
  ZipfianGenerator zipf_;
};

// Samples an index from a discrete distribution given by non-negative weights.
class DiscreteDistribution {
 public:
  DiscreteDistribution(std::vector<double> weights);

  size_t Sample(Random& rng) const;

  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // normalized cumulative weights
};

}  // namespace rolp

#endif  // SRC_UTIL_RANDOM_H_
