#include "src/util/histogram.h"

#include <bit>
#include <cmath>
#include <cstdio>

#include "src/util/check.h"

namespace rolp {

LogHistogram::LogHistogram() : buckets_(static_cast<size_t>(kMagnitudes) * kSubBuckets, 0) {}

size_t LogHistogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<size_t>(value);  // magnitude 0: exact
  }
  int msb = 63 - std::countl_zero(value);
  int magnitude = msb - kSubBucketBits + 1;
  if (magnitude >= kMagnitudes - 1) {
    magnitude = kMagnitudes - 1;
  }
  uint64_t sub = (value >> magnitude) & (kSubBuckets - 1);
  return static_cast<size_t>(magnitude) * kSubBuckets + static_cast<size_t>(sub);
}

uint64_t LogHistogram::BucketUpperBound(size_t index) {
  size_t magnitude = index / kSubBuckets;
  uint64_t sub = index % kSubBuckets;
  if (magnitude == 0) {
    return sub;
  }
  // sub already contains the magnitude's leading bit (it is the top of the 5
  // bits kept), so the bucket covers [sub << magnitude, (sub+1) << magnitude).
  return ((sub + 1) << magnitude) - 1;
}

void LogHistogram::Record(uint64_t value) { RecordN(value, 1); }

void LogHistogram::RecordN(uint64_t value, uint64_t count) {
  if (count == 0) {
    // A zero-count record must not touch min_/max_: they clamp Percentile(),
    // and a phantom extremum from a value that was never recorded corrupts
    // every percentile read after it.
    return;
  }
  buckets_[BucketIndex(value)] += count;
  total_count_ += count;
  total_sum_ += value * count;
  if (value > max_) {
    max_ = value;
  }
  if (value < min_) {
    min_ = value;
  }
}

uint64_t LogHistogram::Percentile(double p) const {
  if (total_count_ == 0) {
    return 0;
  }
  ROLP_CHECK(p >= 0.0 && p <= 100.0);
  // Nearest-rank with ceil, not round: the percentile value is the smallest
  // recorded value v such that at least p% of samples are <= v, which is
  // rank ceil(p/100 * count). Rounding the rank down (the old `+ 0.5`
  // truncation) sat one rank low whenever p/100*count had a fraction below
  // one half — e.g. count=667, p=99.9 gives 666.33: round picked rank 666
  // and silently dropped the max-tail bucket that rank 667 lands in. In the
  // sub-millisecond ingest regime that under-reported exactly the tail the
  // verdict gates on.
  // The relative epsilon strips floating-point dust before the ceil:
  // 99.9/100 * 1000 evaluates to 999.0000000000001, and ceiling *that* would
  // skip to rank 1000 — overshooting on exactly the boundary ranks this
  // function exists to hit. A few-ulp error is relative, so the guard is
  // relative too; a true fractional rank is >= 1/count above its floor,
  // orders of magnitude larger than 1e-13 of any representable rank.
  double rank = p / 100.0 * static_cast<double>(total_count_);
  uint64_t target = static_cast<uint64_t>(std::ceil(rank * (1.0 - 1e-13)));
  if (target == 0) {
    target = 1;
  }
  if (target > total_count_) {
    target = total_count_;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); i++) {
    seen += buckets_[i];
    if (seen >= target) {
      uint64_t ub = BucketUpperBound(i);
      return ub > max_ ? max_ : ub;
    }
  }
  return max_;
}

double LogHistogram::Mean() const {
  if (total_count_ == 0) {
    return 0.0;
  }
  return static_cast<double>(total_sum_) / static_cast<double>(total_count_);
}

void LogHistogram::Merge(const LogHistogram& other) {
  ROLP_CHECK(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); i++) {
    buckets_[i] += other.buckets_[i];
  }
  total_count_ += other.total_count_;
  total_sum_ += other.total_sum_;
  if (other.max_ > max_) {
    max_ = other.max_;
  }
  if (other.min_ < min_) {
    min_ = other.min_;
  }
}

void LogHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_count_ = 0;
  total_sum_ = 0;
  max_ = 0;
  min_ = UINT64_MAX;
}

LinearHistogram::LinearHistogram(std::vector<uint64_t> bounds) : bounds_(std::move(bounds)) {
  ROLP_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); i++) {
    ROLP_CHECK(bounds_[i] > bounds_[i - 1]);
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void LinearHistogram::Record(uint64_t value) {
  size_t i = 0;
  while (i < bounds_.size() && value >= bounds_[i]) {
    i++;
  }
  counts_[i]++;
  total_++;
}

std::string LinearHistogram::BucketLabel(size_t i) const {
  char buf[64];
  if (i == 0) {
    std::snprintf(buf, sizeof(buf), "[0,%llu)", static_cast<unsigned long long>(bounds_[0]));
  } else if (i == bounds_.size()) {
    std::snprintf(buf, sizeof(buf), "[%llu,inf)",
                  static_cast<unsigned long long>(bounds_[bounds_.size() - 1]));
  } else {
    std::snprintf(buf, sizeof(buf), "[%llu,%llu)", static_cast<unsigned long long>(bounds_[i - 1]),
                  static_cast<unsigned long long>(bounds_[i]));
  }
  return buf;
}

void LinearHistogram::Merge(const LinearHistogram& other) {
  ROLP_CHECK(bounds_ == other.bounds_);
  for (size_t i = 0; i < counts_.size(); i++) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

}  // namespace rolp
