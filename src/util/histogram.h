// Histograms for pause-time and latency recording.
//
// LogHistogram is an HDR-style log-bucketed histogram: values are bucketed by
// power-of-two magnitude with kSubBuckets linear sub-buckets per magnitude,
// giving a bounded relative error (~1/kSubBuckets) at any scale. Recording is
// lock-free-ish (plain increments); callers that record from multiple threads
// should use one histogram per thread and Merge().
//
// LinearHistogram buckets values into fixed caller-supplied intervals; used
// for the Fig. 9 pause-count-per-interval plots.
#ifndef SRC_UTIL_HISTOGRAM_H_
#define SRC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rolp {

class LogHistogram {
 public:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets => ~3% relative error
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kMagnitudes = 50;    // covers values up to ~2^49

  LogHistogram();

  void Record(uint64_t value);
  void RecordN(uint64_t value, uint64_t count);

  // Value at the given percentile p in [0, 100]. Returns an upper bound of the
  // bucket containing the percentile. Returns 0 for an empty histogram.
  uint64_t Percentile(double p) const;

  uint64_t Count() const { return total_count_; }
  uint64_t Max() const { return max_; }
  uint64_t Min() const { return total_count_ == 0 ? 0 : min_; }
  double Mean() const;

  void Merge(const LogHistogram& other);
  void Reset();

 private:
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketUpperBound(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t total_count_ = 0;
  uint64_t total_sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = UINT64_MAX;
};

class LinearHistogram {
 public:
  // Buckets: [0,b0), [b0,b1), ..., [bn-1, inf). bounds must be increasing.
  explicit LinearHistogram(std::vector<uint64_t> bounds);

  void Record(uint64_t value);

  size_t NumBuckets() const { return counts_.size(); }
  uint64_t BucketCount(size_t i) const { return counts_[i]; }
  // Human-readable label for bucket i, e.g. "[10,20)".
  std::string BucketLabel(size_t i) const;
  uint64_t Count() const { return total_; }

  void Merge(const LinearHistogram& other);

 private:
  std::vector<uint64_t> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace rolp

#endif  // SRC_UTIL_HISTOGRAM_H_
