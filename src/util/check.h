// Assertion macros used throughout the runtime.
//
// ROLP_CHECK is always on (release included): invariants whose violation means
// heap corruption. ROLP_DCHECK compiles out in NDEBUG builds and is used for
// hot-path checks (object alignment, header sanity, table indices).
//
// A failed check dumps the registered crash context (last GC-end info, region
// occupancy, OLD-table stats, armed fail points — see util/crash_context.h)
// before aborting.
#ifndef SRC_UTIL_CHECK_H_
#define SRC_UTIL_CHECK_H_

namespace rolp {

// Defined in crash_context.cc: prints the failure, dumps crash context,
// aborts.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);

}  // namespace rolp

#define ROLP_CHECK(expr)                                \
  do {                                                  \
    if (__builtin_expect(!(expr), 0)) {                 \
      ::rolp::CheckFailed(__FILE__, __LINE__, #expr);   \
    }                                                   \
  } while (0)

#define ROLP_CHECK_MSG(expr, msg)                              \
  do {                                                         \
    if (__builtin_expect(!(expr), 0)) {                        \
      ::rolp::CheckFailed(__FILE__, __LINE__, #expr ": " msg); \
    }                                                          \
  } while (0)

#ifdef NDEBUG
#define ROLP_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define ROLP_DCHECK(expr) ROLP_CHECK(expr)
#endif

#define ROLP_UNREACHABLE() ::rolp::CheckFailed(__FILE__, __LINE__, "unreachable")

#endif  // SRC_UTIL_CHECK_H_
