#include "src/util/trace.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "src/util/clock.h"
#include "src/util/env.h"
#include "src/util/log.h"

namespace rolp {

std::atomic<bool> Trace::enabled_{false};

namespace {

// Single-writer ring. The owner thread writes the slot, then release-stores
// the cursor; the exporter acquire-loads the cursor and reads only slots below
// it. Slot re-writes after a wrap race with a concurrent exporter by design
// (flight-recorder semantics, see Trace::ToJson contract); within one thread
// the ring is exact.
class TraceBuffer {
 public:
  TraceBuffer(uint32_t tid, size_t capacity)
      : tid_(tid), mask_(capacity - 1), events_(new TraceEvent[capacity]) {}

  void Emit(const TraceEvent& e) {
    uint64_t i = head_.load(std::memory_order_relaxed);
    events_[i & mask_] = e;
    head_.store(i + 1, std::memory_order_release);
  }

  uint32_t tid() const { return tid_; }

  // Copies retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const {
    uint64_t head = head_.load(std::memory_order_acquire);
    uint64_t count = head <= mask_ + 1 ? head : mask_ + 1;
    std::vector<TraceEvent> out;
    out.reserve(count);
    for (uint64_t i = head - count; i < head; i++) {
      out.push_back(events_[i & mask_]);
    }
    return out;
  }

  uint64_t recorded() const { return head_.load(std::memory_order_relaxed); }

 private:
  const uint32_t tid_;
  const uint64_t mask_;
  std::unique_ptr<TraceEvent[]> events_;
  std::atomic<uint64_t> head_{0};
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;  // includes exited threads'
  size_t events_per_thread = Trace::kDefaultEventsPerThread;
  // Bumped by Reset so thread-local pointers re-acquire; atomic because the
  // emit path checks it without the mutex.
  std::atomic<uint64_t> epoch{1};
  uint32_t next_tid = 1;
  std::string atexit_path;
  bool atexit_registered = false;
};

Registry& registry() {
  static Registry* r = new Registry();  // never destroyed: threads may outlive main
  return *r;
}

struct ThreadSlot {
  TraceBuffer* buffer = nullptr;
  uint64_t epoch = 0;
};
thread_local ThreadSlot t_slot;

TraceBuffer* AcquireBuffer() {
  Registry& r = registry();
  std::lock_guard<std::mutex> guard(r.mu);
  r.buffers.push_back(
      std::make_unique<TraceBuffer>(r.next_tid++, std::bit_ceil(r.events_per_thread)));
  t_slot.buffer = r.buffers.back().get();
  t_slot.epoch = r.epoch.load(std::memory_order_relaxed);
  return t_slot.buffer;
}

void AppendJsonEvent(std::string* out, const TraceEvent& e, uint32_t tid) {
  char buf[256];
  double ts_us = static_cast<double>(e.ts_ns) / 1e3;
  // Names/categories are trusted string literals from this codebase (the
  // naming convention has no characters needing JSON escaping).
  if (e.phase == 'X') {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"v\":%llu}}",
                  e.name, e.cat, tid, ts_us, static_cast<double>(e.dur_ns) / 1e3,
                  static_cast<unsigned long long>(e.arg));
  } else if (e.phase == 'C') {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"args\":{\"value\":%llu}}",
                  e.name, e.cat, tid, ts_us, static_cast<unsigned long long>(e.arg));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
                  "\"tid\":%u,\"ts\":%.3f,\"args\":{\"v\":%llu}}",
                  e.name, e.cat, tid, ts_us, static_cast<unsigned long long>(e.arg));
  }
  *out += buf;
}

void AtExitDump() {
  std::string path;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> guard(r.mu);
    path = r.atexit_path;
  }
  if (!path.empty()) {
    Trace::WriteJson(path);
  }
}

}  // namespace

void Trace::Enable(size_t events_per_thread) {
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> guard(r.mu);
    r.events_per_thread = events_per_thread < 2 ? 2 : events_per_thread;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Trace::Disable() { enabled_.store(false, std::memory_order_relaxed); }

bool Trace::InitFromEnv() {
  std::string path = EnvString("ROLP_TRACE", "");
  if (path.empty()) {
    return enabled();
  }
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> guard(r.mu);
    r.atexit_path = path;
    if (!r.atexit_registered) {
      r.atexit_registered = true;
      std::atexit(AtExitDump);
    }
  }
  Enable();
  return true;
}

void Trace::Emit(const TraceEvent& event) {
  TraceBuffer* buf = t_slot.buffer;
  if (buf == nullptr ||
      t_slot.epoch != registry().epoch.load(std::memory_order_relaxed)) {
    buf = AcquireBuffer();
  }
  buf->Emit(event);
}

void Trace::EmitComplete(const char* cat, const char* name, uint64_t ts_ns,
                         uint64_t dur_ns, uint64_t arg) {
  if (!enabled()) {
    return;
  }
  Emit(TraceEvent{name, cat, ts_ns, dur_ns, arg, 'X'});
}

void Trace::EmitInstant(const char* cat, const char* name, uint64_t arg) {
  if (!enabled()) {
    return;
  }
  Emit(TraceEvent{name, cat, NowNs(), 0, arg, 'i'});
}

void Trace::EmitCounter(const char* cat, const char* name, uint64_t value) {
  if (!enabled()) {
    return;
  }
  Emit(TraceEvent{name, cat, NowNs(), 0, value, 'C'});
}

std::string Trace::ToJson() {
  Registry& r = registry();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> guard(r.mu);
  for (const auto& buf : r.buffers) {
    for (const TraceEvent& e : buf->Snapshot()) {
      if (e.name == nullptr) {
        continue;  // torn slot from a concurrent wrap; drop it
      }
      if (!first) {
        out += ",\n";
      }
      first = false;
      AppendJsonEvent(&out, e, buf->tid());
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool Trace::WriteJson(const std::string& path) {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    ROLP_LOG_ERROR("trace: cannot open %s for writing", path.c_str());
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    ROLP_LOG_ERROR("trace: short write to %s", path.c_str());
    return false;
  }
  return true;
}

void Trace::Reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> guard(r.mu);
  r.buffers.clear();
  r.epoch.fetch_add(1, std::memory_order_relaxed);
  r.next_tid = 1;
}

uint64_t Trace::events_recorded() {
  Registry& r = registry();
  std::lock_guard<std::mutex> guard(r.mu);
  uint64_t n = 0;
  for (const auto& buf : r.buffers) {
    n += buf->recorded();
  }
  return n;
}

size_t Trace::thread_buffers() {
  Registry& r = registry();
  std::lock_guard<std::mutex> guard(r.mu);
  return r.buffers.size();
}

}  // namespace rolp
