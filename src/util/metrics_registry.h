// Metrics registry: one named namespace over the runtime's scattered
// statistics (GcMetrics, Profiler stats, VM OSR/exception-fixup totals,
// watchdog stats, fault-injection fires) with a uniform snapshot/dump path.
//
// Three instrument kinds:
//   * Counter   — a monotonically increasing atomic owned by the registry;
//                 get-or-create by name, stable address, relaxed increments
//                 (safe on warm paths, not on the allocation fast lane).
//   * Gauge     — a callback sampled at snapshot time. This is how existing
//                 subsystems join the registry without restructuring: the VM
//                 registers closures over GcMetrics/Profiler/JIT accessors.
//   * Histogram — a callback returning a HistogramSnapshot (count/min/max/
//                 mean/percentiles), typically bridged from a LogHistogram.
//
// Snapshots render as a human-readable text table and as JSON
// ({"counters":{...},"gauges":{...},"histograms":{...}}). The VM wires
// ROLP_METRICS_DUMP=<path>: a JSON snapshot (plus <path>.txt) written at VM
// teardown and, when ROLP_METRICS_INTERVAL_MS > 0, periodically while the VM
// runs. Registration handles are RAII (ScopedMetrics) so gauges never outlive
// the objects their callbacks read.
#ifndef SRC_UTIL_METRICS_REGISTRY_H_
#define SRC_UTIL_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rolp {

class LogHistogram;

class MetricCounter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0.0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
};

// Samples a LogHistogram into the snapshot form (caller provides locking if
// the histogram is concurrently written).
HistogramSnapshot SnapshotLogHistogram(const LogHistogram& hist);

class MetricsRegistry {
 public:
  using GaugeFn = std::function<double()>;
  using HistogramFn = std::function<HistogramSnapshot()>;

  MetricsRegistry() = default;
  static MetricsRegistry& Instance();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create; the returned pointer stays valid for the registry's
  // lifetime (counters are never unregistered).
  MetricCounter* Counter(const std::string& name);

  // Returns an id for Unregister; re-registering a live name replaces it.
  int RegisterGauge(const std::string& name, GaugeFn fn);
  int RegisterHistogram(const std::string& name, HistogramFn fn);
  void Unregister(int id);

  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;    // name-sorted
    std::vector<std::pair<std::string, double>> gauges;        // name-sorted
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  Snapshot Collect() const;

  std::string ToJson() const;
  void WriteText(std::FILE* out) const;
  // Prometheus text exposition format (version 0.0.4): counters as `counter`,
  // gauges as `gauge`, histogram snapshots as `summary` (quantile series plus
  // _count). Metric names are sanitized (dots/dashes -> underscores, `rolp_`
  // prefix) so any Prometheus scraper/promtool accepts the payload.
  std::string ToPrometheus() const;
  // JSON to `path` and the text table to `path`.txt; additionally, when
  // ROLP_METRICS_FORMAT=prom, the Prometheus exposition to `path`.prom.
  // Returns false (logged) on I/O failure.
  bool WriteSnapshotFiles(const std::string& path) const;

  size_t num_counters() const;
  size_t num_gauges() const;
  size_t num_histograms() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
  struct Entry {
    std::string name;
    GaugeFn gauge;          // exactly one of gauge/histogram is set
    HistogramFn histogram;
  };
  std::map<int, Entry> entries_;
  int next_id_ = 1;
};

// RAII bundle of gauge/histogram registrations: everything registered through
// it is unregistered when it dies (before the objects the callbacks capture).
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry* registry = &MetricsRegistry::Instance())
      : registry_(registry) {}
  ~ScopedMetrics() {
    for (int id : ids_) {
      registry_->Unregister(id);
    }
  }

  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

  // All names registered after this call get `prefix` prepended. Sharded
  // services label each shard's VM metrics this way ("shard0." etc.) so N
  // shards in one process do not clobber each other's registrations.
  void set_prefix(std::string prefix) { prefix_ = std::move(prefix); }

  void Gauge(const std::string& name, MetricsRegistry::GaugeFn fn) {
    ids_.push_back(registry_->RegisterGauge(prefix_ + name, std::move(fn)));
  }
  void Histogram(const std::string& name, MetricsRegistry::HistogramFn fn) {
    ids_.push_back(registry_->RegisterHistogram(prefix_ + name, std::move(fn)));
  }

 private:
  MetricsRegistry* registry_;
  std::string prefix_;
  std::vector<int> ids_;
};

}  // namespace rolp

#endif  // SRC_UTIL_METRICS_REGISTRY_H_
