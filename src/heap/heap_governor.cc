#include "src/heap/heap_governor.h"

#include "src/util/env.h"
#include "src/util/trace.h"

namespace rolp {

const char* PressureLevelName(PressureLevel level) {
  switch (level) {
    case PressureLevel::kNormal:
      return "normal";
    case PressureLevel::kGcUrgent:
      return "gc-urgent";
    case PressureLevel::kThrottle:
      return "throttle";
    case PressureLevel::kDegrade:
      return "degrade";
    case PressureLevel::kShed:
      return "shed";
  }
  return "?";
}

GovernorConfig GovernorConfig::FromEnv() {
  GovernorConfig c;
  c.gc_watermark = EnvDouble("ROLP_GOV_GC_WATERMARK", c.gc_watermark);
  c.throttle_watermark = EnvDouble("ROLP_GOV_THROTTLE_WATERMARK", c.throttle_watermark);
  c.degrade_watermark = EnvDouble("ROLP_GOV_DEGRADE_WATERMARK", c.degrade_watermark);
  c.shed_watermark = EnvDouble("ROLP_GOV_SHED_WATERMARK", c.shed_watermark);
  c.hysteresis = EnvDouble("ROLP_GOV_HYSTERESIS", c.hysteresis);
  c.min_gc_interval_ms =
      static_cast<uint64_t>(EnvInt64("ROLP_GOV_GC_INTERVAL_MS", c.min_gc_interval_ms));
  c.throttle_stall_us =
      static_cast<uint64_t>(EnvInt64("ROLP_GOV_THROTTLE_US", c.throttle_stall_us));
  return c;
}

HeapGovernor::HeapGovernor(const GovernorConfig& config, std::function<double()> occupancy_fn)
    : config_(config),
      occupancy_fn_(std::move(occupancy_fn)),
      base_stall_ns_(config.throttle_stall_us * 1000) {}

double HeapGovernor::WatermarkFor(PressureLevel level) const {
  switch (level) {
    case PressureLevel::kNormal:
      return 0.0;
    case PressureLevel::kGcUrgent:
      return config_.gc_watermark;
    case PressureLevel::kThrottle:
      return config_.throttle_watermark;
    case PressureLevel::kDegrade:
      return config_.degrade_watermark;
    case PressureLevel::kShed:
      return config_.shed_watermark;
  }
  return 1.0;
}

PressureLevel HeapGovernor::Update() {
  double occ = occupancy_fn_();
  last_occupancy_.store(occ, std::memory_order_relaxed);
  uint8_t cur = level_.load(std::memory_order_relaxed);
  // Escalate to the highest watermark occupancy has crossed; de-escalate one
  // rung at a time, and only once occupancy clears the hysteresis band below
  // the rung's own watermark.
  uint8_t target = cur;
  for (uint8_t l = static_cast<uint8_t>(PressureLevel::kShed); l > 0; l--) {
    if (occ >= WatermarkFor(static_cast<PressureLevel>(l))) {
      target = l > cur ? l : cur;
      break;
    }
  }
  if (target == cur && cur > 0 &&
      occ < WatermarkFor(static_cast<PressureLevel>(cur)) - config_.hysteresis) {
    target = cur - 1;
  }
  if (target != cur) {
    level_.store(target, std::memory_order_relaxed);
    transitions_.fetch_add(1, std::memory_order_relaxed);
    uint8_t max = max_level_.load(std::memory_order_relaxed);
    while (target > max &&
           !max_level_.compare_exchange_weak(max, target, std::memory_order_relaxed)) {
    }
    ROLP_TRACE_INSTANT("service", "governor.level", target);
  }
  return static_cast<PressureLevel>(level_.load(std::memory_order_relaxed));
}

bool HeapGovernor::TakeGcRequest(uint64_t now_ns) {
  if (level_.load(std::memory_order_relaxed) <
      static_cast<uint8_t>(PressureLevel::kGcUrgent)) {
    return false;
  }
  uint64_t interval_ns = config_.min_gc_interval_ms * 1000000ull;
  uint64_t last = last_gc_request_ns_.load(std::memory_order_relaxed);
  if (now_ns - last < interval_ns) {
    return false;
  }
  if (!last_gc_request_ns_.compare_exchange_strong(last, now_ns,
                                                   std::memory_order_relaxed)) {
    return false;  // another thread took this slot
  }
  gc_requests_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace rolp
