#include "src/heap/class_registry.h"

#include <mutex>

#include "src/util/check.h"

namespace rolp {

ClassRegistry::ClassRegistry() {
  ref_array_class_ = RegisterRefArray("Object[]");
  data_array_class_ = RegisterDataArray("byte[]");
}

ClassId ClassRegistry::RegisterInstance(const std::string& name, uint32_t payload_size,
                                        std::vector<uint32_t> ref_offsets) {
  ROLP_CHECK(payload_size % kObjectAlignment == 0);
  for (uint32_t off : ref_offsets) {
    ROLP_CHECK(off % sizeof(Object*) == 0);
    ROLP_CHECK(off + sizeof(Object*) <= payload_size);
  }
  ClassInfo info;
  info.name = name;
  info.kind = ClassKind::kInstance;
  info.payload_size = payload_size;
  info.ref_offsets = std::move(ref_offsets);
  return RegisterLocked(std::move(info));
}

ClassId ClassRegistry::RegisterRefArray(const std::string& name) {
  ClassInfo info;
  info.name = name;
  info.kind = ClassKind::kRefArray;
  return RegisterLocked(std::move(info));
}

ClassId ClassRegistry::RegisterDataArray(const std::string& name) {
  ClassInfo info;
  info.name = name;
  info.kind = ClassKind::kDataArray;
  return RegisterLocked(std::move(info));
}

ClassId ClassRegistry::RegisterLocked(ClassInfo info) {
  std::lock_guard<SpinLock> guard(lock_);
  info.id = static_cast<ClassId>(classes_.size());
  classes_.push_back(std::move(info));
  return classes_.back().id;
}

const ClassInfo& ClassRegistry::Get(ClassId id) const {
  std::lock_guard<SpinLock> guard(lock_);
  ROLP_CHECK(id < classes_.size());
  return classes_[id];
}

size_t ClassRegistry::NumClasses() const {
  std::lock_guard<SpinLock> guard(lock_);
  return classes_.size();
}

}  // namespace rolp
