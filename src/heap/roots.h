// GC roots. Global roots are registered slots (GlobalRef below); per-thread
// local roots live in the runtime's thread state and are exposed to the GC at
// safepoints.
#ifndef SRC_HEAP_ROOTS_H_
#define SRC_HEAP_ROOTS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/heap/object.h"
#include "src/util/spinlock.h"

namespace rolp {

class GlobalRoots {
 public:
  void Add(std::atomic<Object*>* slot) {
    std::lock_guard<SpinLock> guard(lock_);
    slots_.push_back(slot);
  }

  void Remove(std::atomic<Object*>* slot) {
    std::lock_guard<SpinLock> guard(lock_);
    for (size_t i = 0; i < slots_.size(); i++) {
      if (slots_[i] == slot) {
        slots_[i] = slots_.back();
        slots_.pop_back();
        return;
      }
    }
  }

  // Called at safepoints only (no locking needed against mutators, but cheap
  // enough to lock anyway).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    std::lock_guard<SpinLock> guard(lock_);
    for (auto* slot : slots_) {
      fn(slot);
    }
  }

  size_t Count() const {
    std::lock_guard<SpinLock> guard(lock_);
    return slots_.size();
  }

 private:
  mutable SpinLock lock_;
  std::vector<std::atomic<Object*>*> slots_;
};

// RAII global root: a stable slot registered with the heap's root set for the
// lifetime of this object. Movable, not copyable.
class GlobalRef {
 public:
  GlobalRef() = default;
  GlobalRef(GlobalRoots* roots, Object* initial) : roots_(roots) {
    cell_ = std::make_unique<std::atomic<Object*>>(initial);
    roots_->Add(cell_.get());
  }
  ~GlobalRef() { ReleaseSlot(); }

  GlobalRef(GlobalRef&& other) noexcept { *this = std::move(other); }
  GlobalRef& operator=(GlobalRef&& other) noexcept {
    if (this != &other) {
      ReleaseSlot();
      roots_ = other.roots_;
      cell_ = std::move(other.cell_);
      other.roots_ = nullptr;
    }
    return *this;
  }
  GlobalRef(const GlobalRef&) = delete;
  GlobalRef& operator=(const GlobalRef&) = delete;

  Object* get() const { return cell_ == nullptr ? nullptr : cell_->load(std::memory_order_relaxed); }
  void set(Object* obj) { cell_->store(obj, std::memory_order_relaxed); }
  bool valid() const { return cell_ != nullptr; }
  // The underlying root slot; reads that must stay valid under a concurrent
  // collector go through Heap::LoadRef on this slot.
  std::atomic<Object*>* slot() const { return cell_.get(); }

 private:
  void ReleaseSlot() {
    if (cell_ != nullptr && roots_ != nullptr) {
      roots_->Remove(cell_.get());
    }
    cell_.reset();
    roots_ = nullptr;
  }

  GlobalRoots* roots_ = nullptr;
  std::unique_ptr<std::atomic<Object*>> cell_;
};

}  // namespace rolp

#endif  // SRC_HEAP_ROOTS_H_
