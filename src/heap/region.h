// Heap regions (G1-style). The heap is a single reservation carved into
// equal-sized regions; each region is in exactly one state (free, eden,
// survivor, old, dynamic generation g, humongous head/continuation).
//
// Remembered sets are region-coarse: the write barrier records, in the
// *target* region, the index of the *source* region of a cross-region
// reference store (an atomic bitmap, one bit per heap region). At collection
// time, the union of the collection-set regions' remembered sets names the
// regions whose objects must be scanned for incoming references. This is
// coarser than card tables but is immune to dangling-slot problems when
// source regions are freed and reused, and inserts are a single fetch_or.
#ifndef SRC_HEAP_REGION_H_
#define SRC_HEAP_REGION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/heap/object.h"
#include "src/util/check.h"

namespace rolp {

enum class RegionKind : uint8_t {
  kFree,
  kEden,
  kSurvivor,
  kOld,
  kGen,            // NG2C dynamic generation (gen index 1..14)
  kHumongous,      // first region of a humongous object
  kHumongousCont,  // continuation of a humongous object
};

const char* RegionKindName(RegionKind kind);

class Region {
 public:
  Region() = default;
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

  void Init(uint32_t index, char* begin, char* end, uint32_t num_heap_regions) {
    index_ = index;
    begin_ = begin;
    end_ = end;
    remset_words_ = (num_heap_regions + 63) / 64;
    remset_ = std::make_unique<std::atomic<uint64_t>[]>(remset_words_);
    Reset();
  }

  // Returns this region to the free state. Does not touch the backing memory.
  void Reset() {
    kind_.store(RegionKind::kFree, std::memory_order_relaxed);
    gen_.store(0, std::memory_order_relaxed);
    in_cset_ = false;
    evacuating_.store(false, std::memory_order_relaxed);
    evac_failed_ = false;
    quarantined_.store(false, std::memory_order_relaxed);
    quarantine_walkable_ = false;
    humongous_span_ = 0;
    top_.store(begin_, std::memory_order_relaxed);
    live_bytes_.store(0, std::memory_order_relaxed);
    ClearRemset();
  }

  uint32_t index() const { return index_; }
  char* begin() const { return begin_; }
  char* end() const { return end_; }
  char* top() const { return top_.load(std::memory_order_relaxed); }
  void set_top(char* t) { top_.store(t, std::memory_order_relaxed); }

  size_t capacity() const { return static_cast<size_t>(end_ - begin_); }
  size_t used() const { return static_cast<size_t>(top() - begin_); }
  size_t free_space() const { return static_cast<size_t>(end_ - top()); }

  // kind/gen are written under the region-manager lock (or inside a pause)
  // but read lock-free from mutator barriers and usage accounting, so the
  // fields are relaxed atomics: readers may see a momentarily stale kind,
  // which every reader already tolerates, but never a torn or invalid one.
  RegionKind kind() const { return kind_.load(std::memory_order_relaxed); }
  void set_kind(RegionKind kind) { kind_.store(kind, std::memory_order_relaxed); }
  uint8_t gen() const { return gen_.load(std::memory_order_relaxed); }
  void set_gen(uint8_t gen) { gen_.store(gen, std::memory_order_relaxed); }

  bool IsYoung() const {
    RegionKind k = kind();
    return k == RegionKind::kEden || k == RegionKind::kSurvivor;
  }
  bool IsFree() const { return kind() == RegionKind::kFree; }
  bool IsHumongous() const {
    RegionKind k = kind();
    return k == RegionKind::kHumongous || k == RegionKind::kHumongousCont;
  }
  // "Tenured" space for barrier purposes: old, dynamic gens, humongous.
  bool IsTenured() const {
    RegionKind k = kind();
    return k == RegionKind::kOld || k == RegionKind::kGen || IsHumongous();
  }

  bool in_cset() const { return in_cset_; }
  void set_in_cset(bool v) { in_cset_ = v; }

  // Concurrent-evacuation source state ("kEvacuating"): set on collection-set
  // regions inside the arming pause and cleared in the final remap pause.
  // Unlike in_cset_ (GC-private, only touched while the world is stopped or
  // by GC workers synchronized through the pause), this flag is read by every
  // mutator load barrier while the cycle runs, so it is atomic. A set flag
  // tells the barrier the object must be healed (copied on first touch)
  // before the mutator may use it.
  bool evacuating() const { return evacuating_.load(std::memory_order_relaxed); }
  void set_evacuating(bool v) { evacuating_.store(v, std::memory_order_relaxed); }

  // Set by RestoreSelfForwarded (serial, after evacuation workers join) on
  // regions holding self-forwarded survivors; read and cleared by the
  // collector's cset sweep in the same pause.
  bool evac_failed() const { return evac_failed_; }
  void set_evac_failed(bool v) { evac_failed_ = v; }

  // Quarantine (set via RegionManager::Quarantine after a verifier finding):
  // the region is pinned — never a collection-set candidate, never freed —
  // so its surviving objects and any healed references into them stay valid.
  // `walkable` records whether the object tiling was still intact when the
  // region was quarantined; only walkable quarantined regions may be scanned
  // (as remset sources or for slot fix-up). Atomic because collectors read it
  // from parallel scan/evacuation workers.
  bool quarantined() const { return quarantined_.load(std::memory_order_relaxed); }
  void set_quarantined(bool v) { quarantined_.store(v, std::memory_order_relaxed); }
  bool quarantine_walkable() const { return quarantine_walkable_; }
  void set_quarantine_walkable(bool v) { quarantine_walkable_ = v; }
  // A quarantined region whose contents cannot be walked: skip in every scan.
  bool IsUnscannable() const { return quarantined() && !quarantine_walkable_; }

  uint32_t humongous_span() const { return humongous_span_; }
  void set_humongous_span(uint32_t n) { humongous_span_ = n; }

  bool Contains(const void* p) const { return p >= begin_ && p < end_; }

  // Single-owner bump allocation (TLAB-owned or GC-worker private buffer).
  char* BumpAlloc(size_t bytes) {
    char* t = top_.load(std::memory_order_relaxed);
    if (static_cast<size_t>(end_ - t) < bytes) {
      return nullptr;
    }
    top_.store(t + bytes, std::memory_order_relaxed);
    return t;
  }

  // Retreats the bump pointer after a lost evacuation race. Only valid for a
  // single-owner buffer whose last allocation was `bytes` at `p`.
  void UndoBumpAlloc(char* p, size_t bytes) {
    ROLP_DCHECK(top() == p + bytes);
    top_.store(p, std::memory_order_relaxed);
  }

  // Thread-safe bump allocation for shared regions (dynamic generations).
  char* AtomicBumpAlloc(size_t bytes) {
    char* t = top_.load(std::memory_order_relaxed);
    while (true) {
      if (static_cast<size_t>(end_ - t) < bytes) {
        return nullptr;
      }
      if (top_.compare_exchange_weak(t, t + bytes, std::memory_order_relaxed)) {
        return t;
      }
    }
  }

  // --- Live accounting (filled during marking) ---
  size_t live_bytes() const { return live_bytes_.load(std::memory_order_relaxed); }
  void set_live_bytes(size_t v) { live_bytes_.store(v, std::memory_order_relaxed); }
  void AddLiveBytes(size_t v) { live_bytes_.fetch_add(v, std::memory_order_relaxed); }
  double LiveRatio() const {
    size_t u = used();
    return u == 0 ? 0.0 : static_cast<double>(live_bytes()) / static_cast<double>(u);
  }

  // --- Remembered set (bitmap of source-region indices) ---
  void RemsetAddRegion(uint32_t src_region_index) {
    ROLP_DCHECK(src_region_index / 64 < remset_words_);
    std::atomic<uint64_t>& word = remset_[src_region_index / 64];
    uint64_t bit = 1ULL << (src_region_index % 64);
    // Cheap read-before-rmw: most stores hit already-set bits.
    if ((word.load(std::memory_order_relaxed) & bit) == 0) {
      word.fetch_or(bit, std::memory_order_relaxed);
    }
  }

  bool RemsetContainsRegion(uint32_t src_region_index) const {
    return (remset_[src_region_index / 64].load(std::memory_order_relaxed) &
            (1ULL << (src_region_index % 64))) != 0;
  }

  template <typename Fn>
  void ForEachRemsetRegion(Fn&& fn) const {
    for (uint32_t w = 0; w < remset_words_; w++) {
      uint64_t bits = remset_[w].load(std::memory_order_relaxed);
      while (bits != 0) {
        uint32_t b = static_cast<uint32_t>(__builtin_ctzll(bits));
        fn(w * 64 + b);
        bits &= bits - 1;
      }
    }
  }

  size_t RemsetRegionCount() const {
    size_t n = 0;
    for (uint32_t w = 0; w < remset_words_; w++) {
      n += static_cast<size_t>(__builtin_popcountll(remset_[w].load(std::memory_order_relaxed)));
    }
    return n;
  }

  void ClearRemset() {
    for (uint32_t w = 0; w < remset_words_; w++) {
      remset_[w].store(0, std::memory_order_relaxed);
    }
  }

  // Walks objects laid out contiguously in [begin, top). The callback gets
  // each object; must not change object sizes.
  template <typename Fn>
  void ForEachObject(Fn&& fn) {
    char* p = begin_;
    char* t = top();
    while (p < t) {
      Object* obj = reinterpret_cast<Object*>(p);
      ROLP_DCHECK(obj->size_bytes >= kObjectHeaderSize);
      fn(obj);
      p += obj->size_bytes;
    }
  }

 private:
  uint32_t index_ = 0;
  char* begin_ = nullptr;
  char* end_ = nullptr;
  std::atomic<char*> top_{nullptr};
  std::atomic<RegionKind> kind_{RegionKind::kFree};
  std::atomic<uint8_t> gen_{0};
  bool in_cset_ = false;
  std::atomic<bool> evacuating_{false};
  bool evac_failed_ = false;
  std::atomic<bool> quarantined_{false};
  bool quarantine_walkable_ = false;
  uint32_t humongous_span_ = 0;
  std::atomic<size_t> live_bytes_{0};
  uint32_t remset_words_ = 0;
  std::unique_ptr<std::atomic<uint64_t>[]> remset_;
};

}  // namespace rolp

#endif  // SRC_HEAP_REGION_H_
