// Thread-local allocation buffer. Each mutator owns at most one eden region
// at a time and bump-allocates from it without synchronization.
#ifndef SRC_HEAP_TLAB_H_
#define SRC_HEAP_TLAB_H_

#include "src/heap/region.h"
#include "src/util/fault_injection.h"

namespace rolp {

class Tlab {
 public:
  Tlab() = default;

  bool HasRegion() const { return region_ != nullptr; }
  Region* region() const { return region_; }

  // Installs a fresh eden region as the current buffer.
  void Install(Region* region) { region_ = region; }

  // Detaches the current region (it stays an eden region, owned by the heap).
  void Release() { region_ = nullptr; }

  char* Allocate(size_t bytes) {
    if (region_ == nullptr) {
      return nullptr;
    }
    if (ROLP_FAULT_POINT("heap.tlab.alloc")) {
      return nullptr;  // forces the collector slow path
    }
    return region_->BumpAlloc(bytes);
  }

 private:
  Region* region_ = nullptr;
};

}  // namespace rolp

#endif  // SRC_HEAP_TLAB_H_
