#include "src/heap/region_manager.h"

#include <sys/mman.h>

#include <bit>
#include <cstring>
#include <mutex>

#include "src/util/check.h"
#include "src/util/fault_injection.h"
#include "src/util/log.h"

namespace rolp {

const char* RegionKindName(RegionKind kind) {
  switch (kind) {
    case RegionKind::kFree:
      return "free";
    case RegionKind::kEden:
      return "eden";
    case RegionKind::kSurvivor:
      return "survivor";
    case RegionKind::kOld:
      return "old";
    case RegionKind::kGen:
      return "gen";
    case RegionKind::kHumongous:
      return "humongous";
    case RegionKind::kHumongousCont:
      return "humongous-cont";
  }
  return "?";
}

RegionManager::RegionManager(size_t heap_bytes, size_t region_bytes)
    : region_bytes_(region_bytes) {
  ROLP_CHECK(std::has_single_bit(region_bytes));
  ROLP_CHECK(region_bytes >= 64 * 1024);
  num_regions_ = (heap_bytes + region_bytes - 1) / region_bytes;
  ROLP_CHECK(num_regions_ >= 4);

  void* mem = mmap(nullptr, num_regions_ * region_bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  ROLP_CHECK_MSG(mem != MAP_FAILED, "heap reservation failed");
  base_ = static_cast<char*>(mem);

  regions_ = std::make_unique<Region[]>(num_regions_);
  free_list_.reserve(num_regions_);
  // Push in reverse so regions are handed out in ascending address order.
  for (size_t i = num_regions_; i > 0; i--) {
    size_t idx = i - 1;
    regions_[idx].Init(static_cast<uint32_t>(idx), base_ + idx * region_bytes_,
                       base_ + (idx + 1) * region_bytes_, static_cast<uint32_t>(num_regions_));
    free_list_.push_back(static_cast<uint32_t>(idx));
  }
}

RegionManager::~RegionManager() {
  if (base_ != nullptr) {
    munmap(base_, num_regions_ * region_bytes_);
  }
}

Region* RegionManager::AllocateRegion(RegionKind kind, uint8_t gen, bool gc_internal) {
  ROLP_CHECK(kind != RegionKind::kFree && kind != RegionKind::kHumongousCont);
  if (ROLP_FAULT_POINT("heap.region.oom")) {
    return nullptr;  // simulated heap exhaustion
  }
  std::lock_guard<SpinLock> guard(lock_);
  if (free_list_.size() <= (gc_internal ? 0 : evac_reserve_)) {
    return nullptr;
  }
  Region* r = &regions_[free_list_.back()];
  free_list_.pop_back();
  ROLP_DCHECK(r->IsFree());
  r->set_kind(kind);
  r->set_gen(gen);
  if (IsTenuredKind(kind)) {
    tenured_regions_.fetch_add(1, std::memory_order_relaxed);
  }
  return r;
}

Region* RegionManager::AllocateHumongous(size_t object_bytes) {
  if (ROLP_FAULT_POINT("heap.humongous.oom")) {
    return nullptr;  // simulated: no contiguous run available
  }
  size_t needed = (object_bytes + region_bytes_ - 1) / region_bytes_;
  std::lock_guard<SpinLock> guard(lock_);
  if (free_list_.size() < needed + evac_reserve_) {
    return nullptr;  // would eat into the evacuation reserve
  }
  // Find a run of `needed` contiguous free regions (first fit).
  size_t run = 0;
  size_t start = 0;
  for (size_t i = 0; i < num_regions_; i++) {
    if (regions_[i].IsFree()) {
      if (run == 0) {
        start = i;
      }
      run++;
      if (run == needed) {
        for (size_t j = start; j < start + needed; j++) {
          regions_[j].set_kind(j == start ? RegionKind::kHumongous : RegionKind::kHumongousCont);
          // Remove from the free list.
          for (size_t k = 0; k < free_list_.size(); k++) {
            if (free_list_[k] == j) {
              free_list_[k] = free_list_.back();
              free_list_.pop_back();
              break;
            }
          }
        }
        Region* head = &regions_[start];
        head->set_humongous_span(static_cast<uint32_t>(needed));
        head->set_top(head->begin() + object_bytes);
        tenured_regions_.fetch_add(needed, std::memory_order_relaxed);
        return head;
      }
    } else {
      run = 0;
    }
  }
  return nullptr;
}

void RegionManager::FreeRegion(Region* region) {
  // Quarantined regions are pinned: freeing one would invalidate the healed
  // references that made quarantine survivable.
  ROLP_CHECK_MSG(!region->quarantined(), "attempt to free a quarantined region");
  std::lock_guard<SpinLock> guard(lock_);
  size_t span = 1;
  if (region->kind() == RegionKind::kHumongous) {
    span = region->humongous_span();
  }
  ROLP_CHECK(region->kind() != RegionKind::kHumongousCont);
  uint32_t first = region->index();
  for (size_t j = 0; j < span; j++) {
    Region* r = &regions_[first + j];
    ROLP_DCHECK(!r->IsFree());
    if (IsTenuredKind(r->kind())) {
      tenured_regions_.fetch_sub(1, std::memory_order_relaxed);
    }
    r->Reset();
    free_list_.push_back(r->index());
  }
}

void RegionManager::RetireToOld(Region* region) {
  if (!IsTenuredKind(region->kind())) {
    tenured_regions_.fetch_add(1, std::memory_order_relaxed);
  }
  region->set_kind(RegionKind::kOld);
  region->set_gen(0);
}

void RegionManager::Quarantine(Region* region, bool walkable) {
  if (region->quarantined()) {
    if (!walkable && region->quarantine_walkable()) {
      // Escalation: a later finding showed the tiling is broken after all.
      region->set_quarantine_walkable(false);
      std::lock_guard<SpinLock> guard(lock_);
      unscannable_quarantined_.push_back(region->index());
    }
    return;
  }
  ROLP_LOG_ERROR("quarantining region %u (%s, %zu bytes used, walkable=%d)",
                 region->index(), RegionKindName(region->kind()), region->used(), walkable);
  if (!region->IsHumongous()) {
    RetireToOld(region);
  }
  region->set_in_cset(false);
  region->set_evac_failed(false);
  region->set_quarantine_walkable(walkable);
  region->set_quarantined(true);
  quarantined_regions_.fetch_add(1, std::memory_order_relaxed);
  if (!walkable) {
    std::lock_guard<SpinLock> guard(lock_);
    unscannable_quarantined_.push_back(region->index());
  }
}

void RegionManager::Unquarantine(Region* region) {
  if (!region->quarantined() || !region->quarantine_walkable()) {
    return;
  }
  ROLP_LOG_INFO("rehabilitating quarantined region %u (full-liveness collection)",
                region->index());
  region->set_quarantined(false);
  region->set_quarantine_walkable(false);
  quarantined_regions_.fetch_sub(1, std::memory_order_relaxed);
}

std::vector<uint32_t> RegionManager::UnscannableQuarantined() const {
  std::lock_guard<SpinLock> guard(lock_);
  return unscannable_quarantined_;
}

bool RegionManager::PinnedByQuarantine(const Region* region) const {
  std::lock_guard<SpinLock> guard(lock_);
  for (uint32_t idx : unscannable_quarantined_) {
    if (region->RemsetContainsRegion(idx)) {
      return true;
    }
  }
  return false;
}

Region* RegionManager::RegionFor(const void* p) {
  ROLP_DCHECK(Contains(p));
  size_t idx = static_cast<size_t>(static_cast<const char*>(p) - base_) / region_bytes_;
  return &regions_[idx];
}

const Region* RegionManager::RegionFor(const void* p) const {
  return const_cast<RegionManager*>(this)->RegionFor(p);
}

size_t RegionManager::free_regions() const {
  std::lock_guard<SpinLock> guard(lock_);
  return free_list_.size();
}

RegionManager::Usage RegionManager::ComputeUsage() const {
  Usage u;
  for (size_t i = 0; i < num_regions_; i++) {
    const Region& r = regions_[i];
    switch (r.kind()) {
      case RegionKind::kFree:
        break;
      case RegionKind::kEden:
        u.eden_regions++;
        u.used_bytes += r.used();
        break;
      case RegionKind::kSurvivor:
        u.survivor_regions++;
        u.used_bytes += r.used();
        break;
      case RegionKind::kOld:
        u.old_regions++;
        u.used_bytes += r.used();
        break;
      case RegionKind::kGen:
        u.gen_regions++;
        u.used_bytes += r.used();
        break;
      case RegionKind::kHumongous:
      case RegionKind::kHumongousCont:
        u.humongous_regions++;
        u.used_bytes += r.used();
        break;
    }
  }
  return u;
}

}  // namespace rolp
