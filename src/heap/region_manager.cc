#include "src/heap/region_manager.h"

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "src/util/check.h"
#include "src/util/clock.h"
#include "src/util/env.h"
#include "src/util/fault_injection.h"
#include "src/util/log.h"

// mbind() policy constant; defined locally because the container has no
// libnuma headers (numaif.h). MPOL_PREFERRED falls back to first-touch when
// the preferred node is full, which is exactly the graceful behavior we want.
#ifndef MPOL_PREFERRED
#define MPOL_PREFERRED 1
#endif

namespace rolp {

namespace {

// Every arena extent starts on a 2MB boundary (when the region geometry
// permits) so MADV_HUGEPAGE can back whole extents with huge pages.
constexpr size_t kArenaAlign = 2 * 1024 * 1024;

// Round-robin home-arena assignment: each thread sticks to one arena so the
// common case is an uncontended pop from "its" free list. The token is
// process-global (threads outlive any one RegionManager); each manager maps
// it into its own arena count.
std::atomic<uint32_t> g_next_home_token{0};
thread_local uint32_t g_home_token = 0xffffffffu;
thread_local int g_home_arena_override = -1;

// Parses /sys/devices/system/node/online ("0", "0-1", "0,2-3") into a node
// count. Returns 1 on any parse/read failure — the caller treats one node as
// "nothing to bind".
int NumaNodeCount() {
  FILE* f = std::fopen("/sys/devices/system/node/online", "re");
  if (f == nullptr) {
    return 1;
  }
  char buf[256];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  int count = 0;
  const char* p = buf;
  while (*p != '\0' && *p != '\n') {
    char* end = nullptr;
    long lo = std::strtol(p, &end, 10);
    if (end == p) {
      break;
    }
    long hi = lo;
    p = end;
    if (*p == '-') {
      hi = std::strtol(p + 1, &end, 10);
      if (end == p + 1) {
        break;
      }
      p = end;
    }
    count += static_cast<int>(hi - lo + 1);
    if (*p == ',') {
      p++;
    }
  }
  return count > 0 ? count : 1;
}

bool BindExtentToNode(void* addr, size_t len, int node) {
#ifdef SYS_mbind
  if (node < 0 || node >= static_cast<int>(8 * sizeof(unsigned long))) {
    return false;
  }
  unsigned long mask = 1ul << node;
  return syscall(SYS_mbind, addr, len, MPOL_PREFERRED, &mask,
                 8 * sizeof(unsigned long), 0ul) == 0;
#else
  (void)addr;
  (void)len;
  (void)node;
  return false;
#endif
}

}  // namespace

const char* RegionKindName(RegionKind kind) {
  switch (kind) {
    case RegionKind::kFree:
      return "free";
    case RegionKind::kEden:
      return "eden";
    case RegionKind::kSurvivor:
      return "survivor";
    case RegionKind::kOld:
      return "old";
    case RegionKind::kGen:
      return "gen";
    case RegionKind::kHumongous:
      return "humongous";
    case RegionKind::kHumongousCont:
      return "humongous-cont";
  }
  return "?";
}

HeapArenaOptions HeapArenaOptions::FromEnv() {
  HeapArenaOptions o;
  int64_t shards = EnvInt64("ROLP_SHARDS", 1);
  int64_t arenas = EnvInt64("ROLP_HEAP_ARENAS", shards > 0 ? shards : 1);
  o.arenas = arenas > 0 ? static_cast<size_t>(arenas) : 1;
  o.thp = EnvBool("ROLP_HEAP_THP", false);
  o.numa = EnvBool("ROLP_NUMA", false);
  o.uncommit_ms = EnvInt64("ROLP_HEAP_UNCOMMIT_MS", 0);
  int64_t soft_min = EnvInt64("ROLP_HEAP_SOFT_MIN_REGIONS", 2);
  o.soft_min_regions = soft_min > 0 ? static_cast<size_t>(soft_min) : 0;
  return o;
}

RegionManager::RegionManager(size_t heap_bytes, size_t region_bytes,
                             const HeapArenaOptions& arena_opts)
    : region_bytes_(region_bytes), opts_(arena_opts) {
  ROLP_CHECK(std::has_single_bit(region_bytes));
  ROLP_CHECK(region_bytes >= 64 * 1024);
  num_regions_ = (heap_bytes + region_bytes - 1) / region_bytes;
  ROLP_CHECK(num_regions_ >= 4);

  // Over-reserve by one alignment unit, then trim the slack so the heap base
  // itself is 2MB-aligned — a prerequisite for whole-extent huge pages.
  size_t size = num_regions_ * region_bytes_;
  size_t raw_len = size + kArenaAlign;
  void* mem = mmap(nullptr, raw_len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  ROLP_CHECK_MSG(mem != MAP_FAILED, "heap reservation failed");
  char* raw = static_cast<char*>(mem);
  char* aligned = reinterpret_cast<char*>(
      (reinterpret_cast<uintptr_t>(raw) + kArenaAlign - 1) & ~(kArenaAlign - 1));
  if (aligned != raw) {
    munmap(raw, static_cast<size_t>(aligned - raw));
  }
  size_t tail = raw_len - static_cast<size_t>(aligned - raw) - size;
  if (tail > 0) {
    munmap(aligned + size, tail);
  }
  base_ = aligned;
  map_size_ = size;

  if (opts_.thp) {
    if (madvise(base_, map_size_, MADV_HUGEPAGE) != 0) {
      ROLP_LOG_WARN("MADV_HUGEPAGE unavailable; continuing with 4K pages");
      opts_.thp = false;
    }
  }

  // Arena count: at least 4 regions per arena so each holds useful capacity,
  // and at most 255 (arena_of_ entries are one byte).
  size_t max_arenas = std::min<size_t>(255, std::max<size_t>(1, num_regions_ / 4));
  size_t n_arenas = std::clamp<size_t>(opts_.arenas, 1, max_arenas);

  // Extent boundaries: an even split, rounded down to 2MB multiples when the
  // geometry allows (consecutive raw boundaries then differ by >= align, so
  // rounding keeps them strictly increasing).
  size_t align_regions = std::max<size_t>(1, kArenaAlign / region_bytes_);
  bool align_extents = num_regions_ >= n_arenas * align_regions;
  std::vector<uint32_t> bounds(n_arenas + 1);
  for (size_t i = 0; i <= n_arenas; i++) {
    size_t b = num_regions_ * i / n_arenas;
    if (align_extents && i != n_arenas) {
      b = b / align_regions * align_regions;
    }
    bounds[i] = static_cast<uint32_t>(b);
  }

  int numa_nodes = 1;
  if (opts_.numa) {
    numa_nodes = NumaNodeCount();
    if (numa_nodes <= 1) {
      ROLP_LOG_INFO("ROLP_NUMA=on but only one NUMA node online; skipping mbind");
    }
  }

  regions_ = std::make_unique<Region[]>(num_regions_);
  arena_of_.resize(num_regions_);
  committed_.assign(num_regions_, 1);
  free_since_ns_.assign(num_regions_, NowNs());
  arenas_.reserve(n_arenas);
  for (size_t a = 0; a < n_arenas; a++) {
    auto arena = std::make_unique<Arena>();
    arena->first_region = bounds[a];
    arena->end_region = bounds[a + 1];
    arena->free_list.reserve(arena->end_region - arena->first_region);
    // Push in reverse so regions are handed out in ascending address order.
    for (uint32_t i = arena->end_region; i > arena->first_region; i--) {
      uint32_t idx = i - 1;
      regions_[idx].Init(idx, base_ + static_cast<size_t>(idx) * region_bytes_,
                         base_ + static_cast<size_t>(idx + 1) * region_bytes_,
                         static_cast<uint32_t>(num_regions_));
      arena_of_[idx] = static_cast<uint8_t>(a);
      arena->free_list.push_back(idx);
    }
    if (opts_.numa && numa_nodes > 1) {
      int node = static_cast<int>(a) % numa_nodes;
      char* lo = base_ + static_cast<size_t>(arena->first_region) * region_bytes_;
      size_t len = static_cast<size_t>(arena->end_region - arena->first_region) * region_bytes_;
      if (len > 0 && BindExtentToNode(lo, len, node)) {
        arena->numa_node = node;
      } else if (len > 0) {
        ROLP_LOG_WARN("mbind(arena %zu -> node %d) failed; first-touch placement", a, node);
      }
    }
    arenas_.push_back(std::move(arena));
  }
  total_free_.store(num_regions_, std::memory_order_relaxed);

  if (opts_.uncommit_ms > 0) {
    uncommit_thread_ = std::thread([this] { UncommitThreadBody(); });
  }
}

RegionManager::~RegionManager() {
  if (uncommit_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> g(uncommit_mu_);
      uncommit_stop_ = true;
    }
    uncommit_cv_.notify_all();
    uncommit_thread_.join();
  }
  if (base_ != nullptr) {
    munmap(base_, map_size_);
  }
}

size_t RegionManager::HomeArena() const {
  if (g_home_arena_override >= 0) {
    return static_cast<size_t>(g_home_arena_override) % arenas_.size();
  }
  if (g_home_token == 0xffffffffu) {
    g_home_token = g_next_home_token.fetch_add(1, std::memory_order_relaxed);
  }
  return g_home_token % arenas_.size();
}

void RegionManager::SetHomeArenaForTest(int arena) { g_home_arena_override = arena; }

void RegionManager::LockArena(Arena& a) const {
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  if (a.lock.try_lock()) {
    return;
  }
  uint64_t cpu0 = ThreadCpuNs();
  a.lock.lock();
  lock_stall_ns_.fetch_add(ThreadCpuNs() - cpu0, std::memory_order_relaxed);
}

Region* RegionManager::PopFromArena(Arena& a) {
  LockArena(a);
  if (a.free_list.empty()) {
    a.lock.unlock();
    return nullptr;
  }
  Region* r = &regions_[a.free_list.back()];
  a.free_list.pop_back();
  a.lock.unlock();
  ROLP_DCHECK(r->IsFree());
  return r;
}

Region* RegionManager::AllocateRegion(RegionKind kind, uint8_t gen, bool gc_internal) {
  ROLP_CHECK(kind != RegionKind::kFree && kind != RegionKind::kHumongousCont);
  if (ROLP_FAULT_POINT("heap.region.oom")) {
    return nullptr;  // simulated heap exhaustion
  }
  // Claim one unit of free-pool entitlement. The evacuation reserve is
  // enforced here, on the global counter, so it stays one heap-wide guarantee
  // regardless of how free regions are spread across arenas.
  size_t floor_regions = gc_internal ? 0 : evac_reserve_;
  size_t cur = total_free_.load(std::memory_order_relaxed);
  do {
    if (cur <= floor_regions) {
      return nullptr;
    }
  } while (!total_free_.compare_exchange_weak(cur, cur - 1, std::memory_order_relaxed));

  size_t n = arenas_.size();
  size_t home = HomeArena();
  Region* r = nullptr;
  for (;;) {
    for (size_t i = 0; i < n && r == nullptr; i++) {
      r = PopFromArena(*arenas_[(home + i) % n]);
    }
    if (r != nullptr) {
      break;
    }
    // Entitled but every list was momentarily empty: frees push before they
    // increment the counter, and the uncommit sweeper holds regions out of
    // the lists only for the duration of a madvise call. Yield until one of
    // the in-flight entries lands.
    std::this_thread::yield();
  }

  // All slow work — commit bookkeeping, fault evaluation, kind transition —
  // happens after the pop, outside any arena lock.
  uint32_t idx = r->index();
  if (committed_[idx] == 0) {
    if (ROLP_FAULT_POINT("heap.region.commit")) {
      // Simulated commit failure (mmap-level ENOMEM): undo the pop and report
      // recoverable exhaustion to the caller's GC-and-retry path.
      Arena& a = *arenas_[arena_of_[idx]];
      LockArena(a);
      a.free_list.push_back(idx);
      a.lock.unlock();
      total_free_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    committed_[idx] = 1;
    uncommitted_now_.fetch_sub(1, std::memory_order_relaxed);
    commits_.fetch_add(1, std::memory_order_relaxed);
  }
  r->set_kind(kind);
  r->set_gen(gen);
  if (IsTenuredKind(kind)) {
    tenured_regions_.fetch_add(1, std::memory_order_relaxed);
  }
  return r;
}

Region* RegionManager::AllocateHumongous(size_t object_bytes) {
  if (ROLP_FAULT_POINT("heap.humongous.oom")) {
    return nullptr;  // simulated: no contiguous run available
  }
  size_t needed = (object_bytes + region_bytes_ - 1) / region_bytes_;
  // Entitlement for the whole run; leaves the evacuation reserve intact.
  size_t cur = total_free_.load(std::memory_order_relaxed);
  do {
    if (cur < needed + evac_reserve_) {
      return nullptr;  // would eat into the evacuation reserve
    }
  } while (!total_free_.compare_exchange_weak(cur, cur - needed, std::memory_order_relaxed));

  size_t n = arenas_.size();
  size_t home = HomeArena();
  uint32_t start = 0;
  bool found = false;
  for (size_t i = 0; i < n && !found; i++) {
    Arena& a = *arenas_[(home + i) % n];
    LockArena(a);
    // First fit over this arena's free list (sorted copy): runs never
    // straddle arena boundaries. Scanning the list rather than the region
    // table means a region mid-free (kind already reset, not yet pushed)
    // can never be claimed twice.
    std::vector<uint32_t> sorted(a.free_list);
    std::sort(sorted.begin(), sorted.end());
    size_t run = 0;
    for (size_t k = 0; k < sorted.size(); k++) {
      if (run == 0 || sorted[k] != sorted[k - 1] + 1) {
        run = 1;
        start = sorted[k];
      } else {
        run++;
      }
      if (run == needed) {
        start = sorted[k] - static_cast<uint32_t>(needed) + 1;
        found = true;
        break;
      }
    }
    if (found) {
      for (uint32_t j = start; j < start + needed; j++) {
        regions_[j].set_kind(j == start ? RegionKind::kHumongous : RegionKind::kHumongousCont);
        for (size_t k = 0; k < a.free_list.size(); k++) {
          if (a.free_list[k] == j) {
            a.free_list[k] = a.free_list.back();
            a.free_list.pop_back();
            break;
          }
        }
      }
    }
    a.lock.unlock();
  }
  if (!found) {
    total_free_.fetch_add(needed, std::memory_order_relaxed);
    return nullptr;
  }

  // Commit bookkeeping outside the lock; the run is exclusively ours now.
  for (uint32_t j = start; j < start + needed; j++) {
    if (committed_[j] != 0) {
      continue;
    }
    if (ROLP_FAULT_POINT("heap.region.commit")) {
      // Roll the whole run back: reset kinds, return every region.
      Arena& a = *arenas_[arena_of_[start]];
      for (uint32_t u = start; u < start + needed; u++) {
        regions_[u].Reset();
      }
      LockArena(a);
      for (uint32_t u = start; u < start + needed; u++) {
        a.free_list.push_back(u);
      }
      a.lock.unlock();
      total_free_.fetch_add(needed, std::memory_order_relaxed);
      return nullptr;
    }
    committed_[j] = 1;
    uncommitted_now_.fetch_sub(1, std::memory_order_relaxed);
    commits_.fetch_add(1, std::memory_order_relaxed);
  }

  Region* head = &regions_[start];
  head->set_humongous_span(static_cast<uint32_t>(needed));
  head->set_top(head->begin() + object_bytes);
  tenured_regions_.fetch_add(needed, std::memory_order_relaxed);
  return head;
}

void RegionManager::FreeRegion(Region* region) {
  // Quarantined regions are pinned: freeing one would invalidate the healed
  // references that made quarantine survivable.
  ROLP_CHECK_MSG(!region->quarantined(), "attempt to free a quarantined region");
  size_t span = 1;
  if (region->kind() == RegionKind::kHumongous) {
    span = region->humongous_span();
  }
  ROLP_CHECK(region->kind() != RegionKind::kHumongousCont);
  uint32_t first = region->index();
  ROLP_DCHECK(arena_of_[first] == arena_of_[first + span - 1]);
  uint64_t now = NowNs();
  // Reset + accounting outside the arena lock: the caller owns the regions
  // until they are pushed, and nothing scans the region table for free kinds.
  for (size_t j = 0; j < span; j++) {
    Region* r = &regions_[first + j];
    ROLP_DCHECK(!r->IsFree());
    if (IsTenuredKind(r->kind())) {
      tenured_regions_.fetch_sub(1, std::memory_order_relaxed);
    }
    r->Reset();
    free_since_ns_[first + j] = now;
  }
  Arena& a = *arenas_[arena_of_[first]];
  LockArena(a);
  for (size_t j = 0; j < span; j++) {
    a.free_list.push_back(static_cast<uint32_t>(first + j));
  }
  a.lock.unlock();
  total_free_.fetch_add(span, std::memory_order_relaxed);
}

void RegionManager::RetireToOld(Region* region) {
  if (!IsTenuredKind(region->kind())) {
    tenured_regions_.fetch_add(1, std::memory_order_relaxed);
  }
  region->set_kind(RegionKind::kOld);
  region->set_gen(0);
}

void RegionManager::Quarantine(Region* region, bool walkable) {
  if (region->quarantined()) {
    if (!walkable && region->quarantine_walkable()) {
      // Escalation: a later finding showed the tiling is broken after all.
      region->set_quarantine_walkable(false);
      std::lock_guard<SpinLock> guard(quarantine_lock_);
      unscannable_quarantined_.push_back(region->index());
    }
    return;
  }
  ROLP_LOG_ERROR("quarantining region %u (%s, %zu bytes used, walkable=%d)",
                 region->index(), RegionKindName(region->kind()), region->used(), walkable);
  if (!region->IsHumongous()) {
    RetireToOld(region);
  }
  region->set_in_cset(false);
  region->set_evac_failed(false);
  region->set_quarantine_walkable(walkable);
  region->set_quarantined(true);
  quarantined_regions_.fetch_add(1, std::memory_order_relaxed);
  if (!walkable) {
    std::lock_guard<SpinLock> guard(quarantine_lock_);
    unscannable_quarantined_.push_back(region->index());
  }
}

void RegionManager::Unquarantine(Region* region) {
  if (!region->quarantined() || !region->quarantine_walkable()) {
    return;
  }
  ROLP_LOG_INFO("rehabilitating quarantined region %u (full-liveness collection)",
                region->index());
  region->set_quarantined(false);
  region->set_quarantine_walkable(false);
  quarantined_regions_.fetch_sub(1, std::memory_order_relaxed);
}

std::vector<uint32_t> RegionManager::UnscannableQuarantined() const {
  std::lock_guard<SpinLock> guard(quarantine_lock_);
  return unscannable_quarantined_;
}

bool RegionManager::PinnedByQuarantine(const Region* region) const {
  std::lock_guard<SpinLock> guard(quarantine_lock_);
  for (uint32_t idx : unscannable_quarantined_) {
    if (region->RemsetContainsRegion(idx)) {
      return true;
    }
  }
  return false;
}

Region* RegionManager::RegionFor(const void* p) {
  ROLP_DCHECK(Contains(p));
  size_t idx = static_cast<size_t>(static_cast<const char*>(p) - base_) / region_bytes_;
  return &regions_[idx];
}

const Region* RegionManager::RegionFor(const void* p) const {
  return const_cast<RegionManager*>(this)->RegionFor(p);
}

size_t RegionManager::ArenaFreeRegions(size_t a) const {
  Arena& arena = *arenas_[a];
  LockArena(arena);
  size_t n = arena.free_list.size();
  arena.lock.unlock();
  return n;
}

size_t RegionManager::UncommitIdleRegions(uint64_t now_ns) {
  // With uncommit_ms == 0 there is no background sweeper, but direct calls
  // (tests, explicit trims) still work: every free region counts as idle.
  uint64_t idle_ns =
      opts_.uncommit_ms > 0 ? static_cast<uint64_t>(opts_.uncommit_ms) * 1000000ull : 0;
  size_t keep = std::max(evac_reserve_, opts_.soft_min_regions);
  size_t committed_free = total_free_.load(std::memory_order_relaxed);
  size_t unc = uncommitted_now_.load(std::memory_order_relaxed);
  committed_free = committed_free > unc ? committed_free - unc : 0;
  size_t allowance = committed_free > keep ? committed_free - keep : 0;
  size_t done = 0;
  std::vector<uint32_t> victims;
  for (auto& arena_ptr : arenas_) {
    if (allowance == 0) {
      break;
    }
    Arena& a = *arena_ptr;
    victims.clear();
    LockArena(a);
    for (uint32_t idx : a.free_list) {
      if (victims.size() >= allowance) {
        break;
      }
      if (committed_[idx] != 0 && now_ns >= free_since_ns_[idx] + idle_ns) {
        victims.push_back(idx);
      }
    }
    // Pull the victims out of the list so no allocation can hand out a region
    // whose backing is mid-MADV_DONTNEED; entitled allocators briefly yield.
    for (uint32_t idx : victims) {
      for (size_t k = 0; k < a.free_list.size(); k++) {
        if (a.free_list[k] == idx) {
          a.free_list[k] = a.free_list.back();
          a.free_list.pop_back();
          break;
        }
      }
    }
    a.lock.unlock();

    for (uint32_t idx : victims) {
      if (ROLP_FAULT_POINT("heap.region.uncommit")) {
        continue;  // simulated madvise failure: region simply stays committed
      }
      char* lo = base_ + static_cast<size_t>(idx) * region_bytes_;
      if (madvise(lo, region_bytes_, MADV_DONTNEED) != 0) {
        continue;
      }
      committed_[idx] = 0;
      uncommitted_now_.fetch_add(1, std::memory_order_relaxed);
      uncommits_.fetch_add(1, std::memory_order_relaxed);
      ROLP_DCHECK(allowance > 0);
      allowance--;
      done++;
    }

    LockArena(a);
    for (uint32_t idx : victims) {
      a.free_list.push_back(idx);
    }
    a.lock.unlock();
  }
  return done;
}

void RegionManager::UncommitThreadBody() {
  int64_t period_ms = std::max<int64_t>(opts_.uncommit_ms / 4, 10);
  std::unique_lock<std::mutex> lk(uncommit_mu_);
  while (!uncommit_stop_) {
    if (uncommit_cv_.wait_for(lk, std::chrono::milliseconds(period_ms),
                              [this] { return uncommit_stop_; })) {
      break;
    }
    lk.unlock();
    UncommitIdleRegions(NowNs());
    lk.lock();
  }
}

RegionManager::Usage RegionManager::ComputeUsage() const {
  Usage u;
  for (size_t i = 0; i < num_regions_; i++) {
    const Region& r = regions_[i];
    switch (r.kind()) {
      case RegionKind::kFree:
        break;
      case RegionKind::kEden:
        u.eden_regions++;
        u.used_bytes += r.used();
        break;
      case RegionKind::kSurvivor:
        u.survivor_regions++;
        u.used_bytes += r.used();
        break;
      case RegionKind::kOld:
        u.old_regions++;
        u.used_bytes += r.used();
        break;
      case RegionKind::kGen:
        u.gen_regions++;
        u.used_bytes += r.used();
        break;
      case RegionKind::kHumongous:
      case RegionKind::kHumongousCont:
        u.humongous_regions++;
        u.used_bytes += r.used();
        break;
    }
  }
  return u;
}

}  // namespace rolp
