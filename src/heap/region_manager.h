// Reserves the heap with one 2MB-aligned mmap call and manages the region
// table, carved into N per-shard arenas (DESIGN.md section 15). Each arena
// owns an extent of the reservation, its own free list + lock, and (when
// enabled) a NUMA-node binding, THP advice, and an uncommit lifecycle that
// returns idle regions' RSS to the OS.
#ifndef SRC_HEAP_REGION_MANAGER_H_
#define SRC_HEAP_REGION_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/heap/region.h"
#include "src/util/spinlock.h"

namespace rolp {

// Arena-layer policy knobs. Defaults reproduce the pre-arena behavior exactly:
// one arena, no THP advice, no NUMA binding, never uncommit.
struct HeapArenaOptions {
  // Number of independent arenas the reservation is carved into. Clamped to
  // [1, num_regions / 4] at construction so every arena holds useful regions.
  size_t arenas = 1;
  // madvise(MADV_HUGEPAGE) the reservation (ROLP_HEAP_THP=on).
  bool thp = false;
  // Bind each arena's extent to a NUMA node round-robin via mbind
  // (ROLP_NUMA=on). Silently falls back to first-touch when the box has one
  // node or the syscall is unavailable.
  bool numa = false;
  // Regions continuously free for longer than this are uncommitted with
  // MADV_DONTNEED by a background sweeper (0 disables). Recommit on next
  // allocation is implicit: anonymous memory reads back as zero.
  int64_t uncommit_ms = 0;
  // Soft minimum of committed free regions retained heap-wide; the sweeper
  // never uncommits below max(soft_min_regions, evac_reserve).
  size_t soft_min_regions = 2;

  // Reads ROLP_HEAP_ARENAS (default ROLP_SHARDS, default 1), ROLP_HEAP_THP,
  // ROLP_NUMA, ROLP_HEAP_UNCOMMIT_MS, ROLP_HEAP_SOFT_MIN_REGIONS.
  static HeapArenaOptions FromEnv();
};

class RegionManager {
 public:
  // heap_bytes rounded up to a multiple of region_bytes; region_bytes must be
  // a power of two. The default-constructed HeapArenaOptions keeps the
  // historical single-arena behavior for direct users (tests).
  RegionManager(size_t heap_bytes, size_t region_bytes,
                const HeapArenaOptions& arena_opts = HeapArenaOptions());
  ~RegionManager();

  RegionManager(const RegionManager&) = delete;
  RegionManager& operator=(const RegionManager&) = delete;

  // Takes a free region and transitions it to the given kind. Returns nullptr
  // if the heap is exhausted. Mutator-sourced requests (the default) also fail
  // once the free pool would dip into the evacuation reserve; GC-internal
  // requests (evacuation/promotion destinations) pass gc_internal=true and may
  // consume the reserve — that is what it is for: an evacuation that cannot
  // get a destination region self-forwards and the failed region is retired or
  // quarantined, which under sustained pressure cascades toward full-heap
  // quarantine. The reserve keeps copying alive while mutators are shed.
  // The reserve is a single heap-wide guarantee (enforced on the global free
  // counter), never multiplied per-arena. Allocation prefers the calling
  // thread's home arena and steals from the others when it drains.
  Region* AllocateRegion(RegionKind kind, uint8_t gen = 0, bool gc_internal = false);

  // Allocates ceil(bytes / region_size) contiguous regions for one humongous
  // object. The run never straddles an arena boundary. Returns the head region
  // or nullptr. Mutator-sourced (never dips into the evacuation reserve).
  Region* AllocateHumongous(size_t object_bytes);

  // Regions held back from mutator allocation so GC evacuation always has
  // destinations (0 disables). Set once at heap construction.
  void set_evac_reserve(size_t regions) { evac_reserve_ = regions; }
  size_t evac_reserve() const { return evac_reserve_; }

  // Returns a region (and its humongous continuations) to the free pool.
  void FreeRegion(Region* region);

  // Pause-time promotion: transitions a region to kOld (gen 0), keeping the
  // incremental tenured count coherent. Used by evacuation-failure recovery
  // and mark-compact instead of raw set_kind.
  void RetireToOld(Region* region);

  // Verifier recovery: pins the region out of all future collection sets and
  // out of the free pool. Young regions are retired to old first so the
  // barrier and cset selection treat them as tenured. `walkable` states
  // whether the region's object tiling was intact at quarantine time (only
  // walkable quarantined regions may ever be scanned again). Idempotent;
  // must run inside a pause.
  void Quarantine(Region* region, bool walkable);
  // Lifts a *walkable* quarantine. Only the full mark-compact cycle may call
  // this: it recomputes liveness from roots without remsets, which removes
  // the reason the region was pinned. Unscannable regions stay quarantined
  // forever. No-op for regions that are not quarantined.
  void Unquarantine(Region* region);
  size_t quarantined_regions() const {
    return quarantined_regions_.load(std::memory_order_relaxed);
  }
  // Indices of quarantined regions that cannot be walked. Small (each entry
  // is a distinct corruption event); callers use it to keep unscannable
  // regions out of remset-source scans and collection sets.
  std::vector<uint32_t> UnscannableQuarantined() const;
  // True when `region` has a remset entry naming an unscannable quarantined
  // region: collecting it would require scanning a region we cannot walk.
  bool PinnedByQuarantine(const Region* region) const;

  Region* RegionFor(const void* p);
  const Region* RegionFor(const void* p) const;
  bool Contains(const void* p) const {
    return p >= base_ && p < base_ + num_regions_ * region_bytes_;
  }

  const char* heap_base() const { return base_; }
  size_t region_bytes() const { return region_bytes_; }
  size_t num_regions() const { return num_regions_; }
  size_t free_regions() const {
    return total_free_.load(std::memory_order_relaxed);
  }
  size_t committed_bytes() const { return num_regions_ * region_bytes_; }

  // Regions currently in a tenured kind (old, dynamic gen, humongous head or
  // continuation), maintained incrementally at every kind transition — the
  // O(1) replacement for walking the region table with ComputeUsage just to
  // answer the mixed-collection occupancy trigger.
  size_t tenured_regions() const {
    return tenured_regions_.load(std::memory_order_relaxed);
  }

  static bool IsTenuredKind(RegionKind k) {
    return k == RegionKind::kOld || k == RegionKind::kGen ||
           k == RegionKind::kHumongous || k == RegionKind::kHumongousCont;
  }

  Region& region(size_t i) { return regions_[i]; }
  const Region& region(size_t i) const { return regions_[i]; }

  template <typename Fn>
  void ForEachRegion(Fn&& fn) {
    for (size_t i = 0; i < num_regions_; i++) {
      fn(&regions_[i]);
    }
  }

  // Count of non-free regions of each kind, and bytes used in them.
  struct Usage {
    size_t eden_regions = 0;
    size_t survivor_regions = 0;
    size_t old_regions = 0;
    size_t gen_regions = 0;
    size_t humongous_regions = 0;
    size_t used_bytes = 0;
  };
  Usage ComputeUsage() const;

  // --- Arena layer ----------------------------------------------------------
  size_t num_arenas() const { return arenas_.size(); }
  // Arena that owns region index `idx`.
  size_t ArenaOf(size_t idx) const { return arena_of_[idx]; }
  // Free regions currently in arena `a`'s list (approximate under load).
  size_t ArenaFreeRegions(size_t a) const;

  // One MADV_DONTNEED pass: uncommits regions continuously free since before
  // `now_ns - uncommit_ms`, respecting the soft-min retained pool. Returns the
  // number of regions uncommitted. Called by the background sweeper when
  // ROLP_HEAP_UNCOMMIT_MS > 0; public so tests can drive it deterministically.
  size_t UncommitIdleRegions(uint64_t now_ns);
  size_t uncommitted_regions() const {
    return uncommitted_now_.load(std::memory_order_relaxed);
  }
  uint64_t region_commits() const { return commits_.load(std::memory_order_relaxed); }
  uint64_t region_uncommits() const { return uncommits_.load(std::memory_order_relaxed); }

  // Region-lock contention counters, summed across arenas: total lock
  // acquisitions on the allocation/free paths, and CPU-visible wait time spent
  // in contended acquisitions (the 1-CPU-container-proof scaling signal).
  uint64_t lock_acquisitions() const {
    return lock_acquisitions_.load(std::memory_order_relaxed);
  }
  uint64_t lock_stall_ns() const { return lock_stall_ns_.load(std::memory_order_relaxed); }

  // Pins the calling thread's home arena (-1 restores round-robin assignment).
  // Test hook: lets single-threaded tests target a specific arena.
  static void SetHomeArenaForTest(int arena);

 private:
  struct Arena {
    uint32_t first_region = 0;  // inclusive
    uint32_t end_region = 0;    // exclusive
    mutable SpinLock lock;
    std::vector<uint32_t> free_list;  // guarded by lock
    int numa_node = -1;               // -1: unbound
  };

  size_t HomeArena() const;
  // Pops one free region from arena `a` (committing it if needed) or returns
  // nullptr. The caller must already hold a unit of total_free_ entitlement.
  Region* PopFromArena(Arena& a);
  // Timed lock acquisition feeding the contention counters.
  void LockArena(Arena& a) const;
  void UncommitThreadBody();

  char* base_ = nullptr;
  size_t map_size_ = 0;  // full aligned reservation released in the dtor
  size_t region_bytes_ = 0;
  size_t num_regions_ = 0;
  std::unique_ptr<Region[]> regions_;
  HeapArenaOptions opts_;

  std::vector<std::unique_ptr<Arena>> arenas_;
  std::vector<uint8_t> arena_of_;  // region index -> arena index
  // Global free-region count. Allocation first claims an entitlement here
  // (CAS-decrement that respects the evacuation reserve), then scans arenas
  // for an actual entry; frees push first, then increment. The invariant
  // "list entries >= outstanding entitlements" makes the scan's retry loop
  // terminate, and keeps the reserve a heap-wide guarantee independent of how
  // free regions are distributed across arenas.
  std::atomic<size_t> total_free_{0};
  size_t evac_reserve_ = 0;

  // Commit lifecycle state. committed_[i] / free_since_ns_[i] are only
  // touched by a region's exclusive owner (the allocator that popped it, or
  // the sweeper while it holds the region out of the free list), so plain
  // bytes suffice.
  std::vector<uint8_t> committed_;
  std::vector<uint64_t> free_since_ns_;
  std::atomic<size_t> uncommitted_now_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> uncommits_{0};

  mutable std::atomic<uint64_t> lock_acquisitions_{0};
  mutable std::atomic<uint64_t> lock_stall_ns_{0};

  std::atomic<size_t> tenured_regions_{0};
  std::atomic<size_t> quarantined_regions_{0};
  mutable SpinLock quarantine_lock_;
  std::vector<uint32_t> unscannable_quarantined_;  // guarded by quarantine_lock_

  // Background uncommit sweeper (runs when opts_.uncommit_ms > 0).
  std::thread uncommit_thread_;
  std::mutex uncommit_mu_;
  std::condition_variable uncommit_cv_;
  bool uncommit_stop_ = false;
};

}  // namespace rolp

#endif  // SRC_HEAP_REGION_MANAGER_H_
