// Reserves the heap with one mmap call and manages the region table.
#ifndef SRC_HEAP_REGION_MANAGER_H_
#define SRC_HEAP_REGION_MANAGER_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "src/heap/region.h"
#include "src/util/spinlock.h"

namespace rolp {

class RegionManager {
 public:
  // heap_bytes rounded up to a multiple of region_bytes; region_bytes must be
  // a power of two.
  RegionManager(size_t heap_bytes, size_t region_bytes);
  ~RegionManager();

  RegionManager(const RegionManager&) = delete;
  RegionManager& operator=(const RegionManager&) = delete;

  // Takes a free region and transitions it to the given kind. Returns nullptr
  // if the heap is exhausted. Mutator-sourced requests (the default) also fail
  // once the free pool would dip into the evacuation reserve; GC-internal
  // requests (evacuation/promotion destinations) pass gc_internal=true and may
  // consume the reserve — that is what it is for: an evacuation that cannot
  // get a destination region self-forwards and the failed region is retired or
  // quarantined, which under sustained pressure cascades toward full-heap
  // quarantine. The reserve keeps copying alive while mutators are shed.
  Region* AllocateRegion(RegionKind kind, uint8_t gen = 0, bool gc_internal = false);

  // Allocates ceil(bytes / region_size) contiguous regions for one humongous
  // object. Returns the head region or nullptr. Mutator-sourced (never dips
  // into the evacuation reserve).
  Region* AllocateHumongous(size_t object_bytes);

  // Regions held back from mutator allocation so GC evacuation always has
  // destinations (0 disables). Set once at heap construction.
  void set_evac_reserve(size_t regions) { evac_reserve_ = regions; }
  size_t evac_reserve() const { return evac_reserve_; }

  // Returns a region (and its humongous continuations) to the free pool.
  void FreeRegion(Region* region);

  // Pause-time promotion: transitions a region to kOld (gen 0), keeping the
  // incremental tenured count coherent. Used by evacuation-failure recovery
  // and mark-compact instead of raw set_kind.
  void RetireToOld(Region* region);

  // Verifier recovery: pins the region out of all future collection sets and
  // out of the free pool. Young regions are retired to old first so the
  // barrier and cset selection treat them as tenured. `walkable` states
  // whether the region's object tiling was intact at quarantine time (only
  // walkable quarantined regions may ever be scanned again). Idempotent;
  // must run inside a pause.
  void Quarantine(Region* region, bool walkable);
  // Lifts a *walkable* quarantine. Only the full mark-compact cycle may call
  // this: it recomputes liveness from roots without remsets, which removes
  // the reason the region was pinned. Unscannable regions stay quarantined
  // forever. No-op for regions that are not quarantined.
  void Unquarantine(Region* region);
  size_t quarantined_regions() const {
    return quarantined_regions_.load(std::memory_order_relaxed);
  }
  // Indices of quarantined regions that cannot be walked. Small (each entry
  // is a distinct corruption event); callers use it to keep unscannable
  // regions out of remset-source scans and collection sets.
  std::vector<uint32_t> UnscannableQuarantined() const;
  // True when `region` has a remset entry naming an unscannable quarantined
  // region: collecting it would require scanning a region we cannot walk.
  bool PinnedByQuarantine(const Region* region) const;

  Region* RegionFor(const void* p);
  const Region* RegionFor(const void* p) const;
  bool Contains(const void* p) const {
    return p >= base_ && p < base_ + num_regions_ * region_bytes_;
  }

  const char* heap_base() const { return base_; }
  size_t region_bytes() const { return region_bytes_; }
  size_t num_regions() const { return num_regions_; }
  size_t free_regions() const;
  size_t committed_bytes() const { return num_regions_ * region_bytes_; }

  // Regions currently in a tenured kind (old, dynamic gen, humongous head or
  // continuation), maintained incrementally at every kind transition — the
  // O(1) replacement for walking the region table with ComputeUsage just to
  // answer the mixed-collection occupancy trigger.
  size_t tenured_regions() const {
    return tenured_regions_.load(std::memory_order_relaxed);
  }

  static bool IsTenuredKind(RegionKind k) {
    return k == RegionKind::kOld || k == RegionKind::kGen ||
           k == RegionKind::kHumongous || k == RegionKind::kHumongousCont;
  }

  Region& region(size_t i) { return regions_[i]; }
  const Region& region(size_t i) const { return regions_[i]; }

  template <typename Fn>
  void ForEachRegion(Fn&& fn) {
    for (size_t i = 0; i < num_regions_; i++) {
      fn(&regions_[i]);
    }
  }

  // Count of non-free regions of each kind, and bytes used in them.
  struct Usage {
    size_t eden_regions = 0;
    size_t survivor_regions = 0;
    size_t old_regions = 0;
    size_t gen_regions = 0;
    size_t humongous_regions = 0;
    size_t used_bytes = 0;
  };
  Usage ComputeUsage() const;

 private:
  char* base_ = nullptr;
  size_t region_bytes_ = 0;
  size_t num_regions_ = 0;
  std::unique_ptr<Region[]> regions_;
  mutable SpinLock lock_;
  std::vector<uint32_t> free_list_;
  size_t evac_reserve_ = 0;
  std::atomic<size_t> tenured_regions_{0};
  std::atomic<size_t> quarantined_regions_{0};
  std::vector<uint32_t> unscannable_quarantined_;  // guarded by lock_
};

}  // namespace rolp

#endif  // SRC_HEAP_REGION_MANAGER_H_
