// Object model and header (mark word) layout.
//
// Every heap object starts with a 16-byte header:
//   [0..7]   mark word (layout below, mirrors Fig. 2 of the paper)
//   [8..11]  class id
//   [12..15] total object size in bytes (header included, 8-byte aligned)
//
// Mark word, least significant bit first (paper Fig. 2, HotSpot-compatible):
//   bits 0-1   lock bits (00 = neutral, 11 = forwarded during evacuation)
//   bit  2     biased-lock bit
//   bits 3-6   age (number of GC cycles survived, saturates at 15)
//   bit  7     unused
//   bits 8-31  identity hash (24 bits)
//   bits 32-47 thread stack state   \  together: the 32-bit
//   bits 48-63 allocation site id   /  ROLP allocation context
//
// When an object is biased-locked, the thread id is written over bits 32-63,
// destroying the allocation context — exactly the sharing the paper describes.
// When an object is forwarded, the whole word holds the new address | 0b11, so
// the original mark must be copied to the new location first.
#ifndef SRC_HEAP_OBJECT_H_
#define SRC_HEAP_OBJECT_H_

#include <atomic>
#include <cstdint>

#include "src/util/check.h"

namespace rolp {

struct Object;

// Mark word bit manipulation. Free functions over a plain uint64_t so they
// can be applied to values loaded once from the atomic header.
namespace markword {

inline constexpr uint64_t kLockMask = 0x3;
inline constexpr uint64_t kLockNeutral = 0x0;
inline constexpr uint64_t kLockForwarded = 0x3;
inline constexpr uint64_t kBiasedBit = 1ULL << 2;
inline constexpr int kAgeShift = 3;
inline constexpr uint64_t kAgeMask = 0xF;
inline constexpr uint32_t kMaxAge = 15;
inline constexpr int kHashShift = 8;
inline constexpr uint64_t kHashMask = 0xFFFFFF;
inline constexpr int kContextShift = 32;
inline constexpr uint64_t kContextMask = 0xFFFFFFFF;

inline bool IsForwarded(uint64_t m) { return (m & kLockMask) == kLockForwarded; }

inline Object* ForwardedPtr(uint64_t m) {
  ROLP_DCHECK(IsForwarded(m));
  return reinterpret_cast<Object*>(m & ~kLockMask);
}

inline uint64_t EncodeForwarded(Object* to) {
  ROLP_DCHECK((reinterpret_cast<uint64_t>(to) & kLockMask) == 0);
  return reinterpret_cast<uint64_t>(to) | kLockForwarded;
}

inline bool IsBiased(uint64_t m) { return (m & kBiasedBit) != 0; }
inline uint64_t SetBiased(uint64_t m, uint32_t owner_thread_id) {
  // Biased locking stores the owning thread id in the upper 32 bits,
  // overwriting any allocation context (paper section 3.2.2).
  uint64_t cleared = m & ~(kContextMask << kContextShift);
  return (cleared | kBiasedBit) | (static_cast<uint64_t>(owner_thread_id) << kContextShift);
}
inline uint64_t ClearBiased(uint64_t m) {
  // Revoking the bias does not restore the context; it stays lost.
  return (m & ~kBiasedBit) & ~(kContextMask << kContextShift);
}
inline uint32_t BiasOwner(uint64_t m) { return static_cast<uint32_t>(m >> kContextShift); }

inline uint32_t Age(uint64_t m) { return static_cast<uint32_t>((m >> kAgeShift) & kAgeMask); }
inline uint64_t SetAge(uint64_t m, uint32_t age) {
  ROLP_DCHECK(age <= kMaxAge);
  return (m & ~(kAgeMask << kAgeShift)) | (static_cast<uint64_t>(age) << kAgeShift);
}
inline uint64_t IncrementAge(uint64_t m) {
  uint32_t age = Age(m);
  return age < kMaxAge ? SetAge(m, age + 1) : m;
}

inline uint32_t IdentityHash(uint64_t m) {
  return static_cast<uint32_t>((m >> kHashShift) & kHashMask);
}
inline uint64_t SetIdentityHash(uint64_t m, uint32_t hash) {
  return (m & ~(kHashMask << kHashShift)) |
         ((static_cast<uint64_t>(hash) & kHashMask) << kHashShift);
}

inline uint32_t Context(uint64_t m) { return static_cast<uint32_t>(m >> kContextShift); }
inline uint64_t SetContext(uint64_t m, uint32_t context) {
  return (m & ~(kContextMask << kContextShift)) |
         (static_cast<uint64_t>(context) << kContextShift);
}
inline uint32_t ContextSite(uint32_t context) { return context >> 16; }
inline uint32_t ContextTss(uint32_t context) { return context & 0xFFFF; }
inline uint32_t MakeContext(uint32_t site, uint32_t tss) {
  ROLP_DCHECK(site <= 0xFFFF && tss <= 0xFFFF);
  return (site << 16) | tss;
}

}  // namespace markword

using ClassId = uint32_t;

// Pseudo-class marking a free-list gap in CMS old regions. Free blocks carry
// a normal header (so region walks work) but have no fields and are never
// reachable; walkers that dereference class info must skip them.
inline constexpr ClassId kFreeBlockClassId = 0xFFFFFFFFu;

inline constexpr size_t kObjectAlignment = 8;
inline constexpr size_t kObjectHeaderSize = 16;

inline constexpr size_t AlignObjectSize(size_t bytes) {
  return (bytes + kObjectAlignment - 1) & ~(kObjectAlignment - 1);
}

// An object in the managed heap. Never constructed directly; laid out over
// region memory by the allocator.
struct Object {
  std::atomic<uint64_t> mark;
  ClassId class_id;
  uint32_t size_bytes;  // total, including header

  char* payload() { return reinterpret_cast<char*>(this) + kObjectHeaderSize; }
  const char* payload() const { return reinterpret_cast<const char*>(this) + kObjectHeaderSize; }

  uint32_t payload_size() const { return size_bytes - kObjectHeaderSize; }

  // Reference slot at the given payload byte offset.
  std::atomic<Object*>* RefSlotAt(uint32_t payload_offset) {
    ROLP_DCHECK(payload_offset + sizeof(Object*) <= payload_size());
    ROLP_DCHECK(payload_offset % sizeof(Object*) == 0);
    return reinterpret_cast<std::atomic<Object*>*>(payload() + payload_offset);
  }

  // Arrays store their element count in the first payload word.
  uint64_t ArrayLength() const {
    return *reinterpret_cast<const uint64_t*>(payload());
  }
  void SetArrayLength(uint64_t n) { *reinterpret_cast<uint64_t*>(payload()) = n; }

  // Reference-array element slot.
  std::atomic<Object*>* RefArraySlot(uint64_t index) {
    ROLP_DCHECK(index < ArrayLength());
    return reinterpret_cast<std::atomic<Object*>*>(payload() + sizeof(uint64_t) +
                                                   index * sizeof(Object*));
  }

  // Raw data pointer for data arrays (bytes start after the length word).
  char* DataArrayBytes() { return payload() + sizeof(uint64_t); }

  uint64_t LoadMark() const { return mark.load(std::memory_order_relaxed); }
  void StoreMark(uint64_t m) { mark.store(m, std::memory_order_relaxed); }
};

static_assert(sizeof(Object) == kObjectHeaderSize, "header must be exactly 16 bytes");

// Payload size needed for a reference array / data array of n elements.
inline constexpr size_t RefArrayPayloadBytes(uint64_t n) {
  return sizeof(uint64_t) + n * sizeof(Object*);
}
inline constexpr size_t DataArrayPayloadBytes(uint64_t n) { return sizeof(uint64_t) + n; }

}  // namespace rolp

#endif  // SRC_HEAP_OBJECT_H_
