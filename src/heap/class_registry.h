// Class descriptors: the GC needs to know, for every object, which payload
// offsets hold references. Workloads register their classes at startup.
#ifndef SRC_HEAP_CLASS_REGISTRY_H_
#define SRC_HEAP_CLASS_REGISTRY_H_

#include <deque>
#include <string>
#include <vector>

#include "src/heap/object.h"
#include "src/util/spinlock.h"

namespace rolp {

enum class ClassKind : uint8_t {
  kInstance,   // fixed payload size, explicit reference offsets
  kRefArray,   // variable length array of references
  kDataArray,  // variable length array of raw bytes (no references)
};

struct ClassInfo {
  ClassId id = 0;
  std::string name;
  ClassKind kind = ClassKind::kInstance;
  uint32_t payload_size = 0;             // kInstance only
  std::vector<uint32_t> ref_offsets;     // kInstance only, payload byte offsets
};

class ClassRegistry {
 public:
  ClassRegistry();

  // Registers a fixed-size instance class. ref_offsets are payload byte
  // offsets of reference fields; each must be 8-aligned and within
  // payload_size.
  ClassId RegisterInstance(const std::string& name, uint32_t payload_size,
                           std::vector<uint32_t> ref_offsets);

  ClassId RegisterRefArray(const std::string& name);
  ClassId RegisterDataArray(const std::string& name);

  const ClassInfo& Get(ClassId id) const;
  size_t NumClasses() const;

  // Pre-registered array classes available on every heap.
  ClassId ref_array_class() const { return ref_array_class_; }
  ClassId data_array_class() const { return data_array_class_; }

 private:
  ClassId RegisterLocked(ClassInfo info);

  mutable SpinLock lock_;
  // Deque: Get() hands out references that must stay valid across later
  // registrations.
  std::deque<ClassInfo> classes_;
  ClassId ref_array_class_;
  ClassId data_array_class_;
};

}  // namespace rolp

#endif  // SRC_HEAP_CLASS_REGISTRY_H_
