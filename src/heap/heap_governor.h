// Heap-pressure governor: occupancy watermarks drive a graduated backpressure
// ladder so sustained over-capacity load degrades service quality instead of
// aborting the VM (DESIGN.md section 13).
//
//   kNormal   -> business as usual
//   kGcUrgent -> collectors should start a (concurrent/early) cycle now,
//                before allocation actually fails
//   kThrottle -> mutator allocations take a bounded stall on the slow path,
//                buying the collector headroom
//   kDegrade  -> the profiler suspends itself (survivor tracking and decision
//                publication are pure overhead when the heap is drowning)
//   kShed     -> the service front end rejects new work at admission
//
// Levels escalate as occupancy crosses each watermark and de-escalate with
// hysteresis (occupancy must fall `hysteresis` below a watermark before the
// ladder steps back down), so the governor does not flap across a boundary.
// All reads on hot paths are single relaxed loads; Update() is only called
// from allocation slow paths and pause ends.
#ifndef SRC_HEAP_HEAP_GOVERNOR_H_
#define SRC_HEAP_HEAP_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <functional>

namespace rolp {

enum class PressureLevel : uint8_t {
  kNormal = 0,
  kGcUrgent = 1,
  kThrottle = 2,
  kDegrade = 3,
  kShed = 4,
};

const char* PressureLevelName(PressureLevel level);

struct GovernorConfig {
  double gc_watermark = 0.70;        // ROLP_GOV_GC_WATERMARK
  double throttle_watermark = 0.85;  // ROLP_GOV_THROTTLE_WATERMARK
  double degrade_watermark = 0.92;   // ROLP_GOV_DEGRADE_WATERMARK
  double shed_watermark = 0.96;      // ROLP_GOV_SHED_WATERMARK
  // Occupancy must drop this far below a watermark before de-escalating.
  double hysteresis = 0.05;  // ROLP_GOV_HYSTERESIS
  // Minimum spacing between governor-initiated early-GC requests.
  uint64_t min_gc_interval_ms = 50;  // ROLP_GOV_GC_INTERVAL_MS
  // Base mutator stall at kThrottle; doubles at kDegrade, quadruples at
  // kShed. Bounded by construction: the stall is a fixed sleep, not a wait
  // for a condition, so a mutator always makes progress.
  uint64_t throttle_stall_us = 200;  // ROLP_GOV_THROTTLE_US
  // Loads every ROLP_GOV_* override from the environment.
  static GovernorConfig FromEnv();
};

class HeapGovernor {
 public:
  // `occupancy_fn` returns current heap occupancy in [0,1]. Injectable so
  // ladder transitions are unit-testable without building a heap.
  HeapGovernor(const GovernorConfig& config, std::function<double()> occupancy_fn);

  // Recomputes occupancy and moves the ladder (with hysteresis). Called from
  // allocation slow paths and pause ends; safe from any thread (a lost race
  // just means the next Update() lands the same level).
  PressureLevel Update();

  PressureLevel level() const {
    return static_cast<PressureLevel>(level_.load(std::memory_order_relaxed));
  }
  double last_occupancy() const { return last_occupancy_.load(std::memory_order_relaxed); }

  // True once per min_gc_interval while the ladder is at kGcUrgent or above:
  // the caller should trigger a collection now instead of waiting for
  // allocation failure. now_ns is the caller's clock (injectable for tests).
  bool TakeGcRequest(uint64_t now_ns);

  // Stall (ns) a mutator allocation slow path should take right now; 0 below
  // kThrottle. One relaxed load.
  uint64_t ThrottleStallNs() const {
    uint8_t l = level_.load(std::memory_order_relaxed);
    if (l < static_cast<uint8_t>(PressureLevel::kThrottle)) {
      return 0;
    }
    return base_stall_ns_ << (l - static_cast<uint8_t>(PressureLevel::kThrottle));
  }
  void CountThrottleStall() { throttle_stalls_.fetch_add(1, std::memory_order_relaxed); }

  const GovernorConfig& config() const { return config_; }

  // Counters (metrics registry gauges read these).
  uint64_t transitions() const { return transitions_.load(std::memory_order_relaxed); }
  uint64_t gc_requests() const { return gc_requests_.load(std::memory_order_relaxed); }
  uint64_t throttle_stalls() const { return throttle_stalls_.load(std::memory_order_relaxed); }
  // Highest level the ladder ever reached (soak assertions).
  PressureLevel max_level() const {
    return static_cast<PressureLevel>(max_level_.load(std::memory_order_relaxed));
  }

 private:
  double WatermarkFor(PressureLevel level) const;

  GovernorConfig config_;
  std::function<double()> occupancy_fn_;
  uint64_t base_stall_ns_;
  std::atomic<uint8_t> level_{0};
  std::atomic<uint8_t> max_level_{0};
  std::atomic<double> last_occupancy_{0.0};
  std::atomic<uint64_t> last_gc_request_ns_{0};
  std::atomic<uint64_t> transitions_{0};
  std::atomic<uint64_t> gc_requests_{0};
  std::atomic<uint64_t> throttle_stalls_{0};
};

}  // namespace rolp

#endif  // SRC_HEAP_HEAP_GOVERNOR_H_
