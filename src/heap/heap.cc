#include "src/heap/heap.h"

#include <cstring>

#include "src/util/fault_injection.h"
#include "src/util/random.h"

namespace rolp {

Heap::Heap(const HeapConfig& config) : config_(config) {
  regions_ = std::make_unique<RegionManager>(config.heap_bytes, config.region_bytes,
                                             config.arenas);
  if (config.evac_reserve_regions > 0 &&
      config.evac_reserve_regions < regions_->num_regions() / 2) {
    regions_->set_evac_reserve(config.evac_reserve_regions);
  }
  RegionManager* rm = regions_.get();
  governor_ = std::make_unique<HeapGovernor>(GovernorConfig::FromEnv(), [rm] {
    return 1.0 - static_cast<double>(rm->free_regions()) /
                     static_cast<double>(rm->num_regions());
  });
  classes_ = std::make_unique<ClassRegistry>();
  barriers_ = std::make_unique<RemsetBarrierSet>(regions_.get());
}

Heap::~Heap() = default;

void Heap::SetBarrierSet(std::unique_ptr<BarrierSet> barriers) {
  barriers_ = std::move(barriers);
  RefreshBarrierMode();
}

void Heap::RefreshBarrierMode() {
  load_barrier_enabled_.store(barriers_->needs_load_barrier(), std::memory_order_release);
}

size_t Heap::InstanceAllocSize(ClassId cls) const {
  const ClassInfo& info = classes_->Get(cls);
  ROLP_CHECK(info.kind == ClassKind::kInstance);
  return AlignObjectSize(kObjectHeaderSize + info.payload_size);
}

size_t Heap::RefArrayAllocSize(uint64_t length) const {
  return AlignObjectSize(kObjectHeaderSize + RefArrayPayloadBytes(length));
}

size_t Heap::DataArrayAllocSize(uint64_t length) const {
  return AlignObjectSize(kObjectHeaderSize + DataArrayPayloadBytes(length));
}

namespace {

// Identity-hash stream: one SplitMix64 state per thread so the allocation
// fast lane never pays a shared read-modify-write per object. Streams are
// decorrelated by drawing each thread's start state from a process-wide
// counter — one RMW per thread lifetime instead of one per allocation.
std::atomic<uint64_t> identity_hash_stream{0x517cc1b727220a95ULL};

uint32_t NextIdentityHash() {
  thread_local uint64_t state =
      identity_hash_stream.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
  return static_cast<uint32_t>(SplitMix64(&state)) & markword::kHashMask;
}

}  // namespace

Object* Heap::InitializeObject(char* mem, ClassId cls, size_t total_bytes, uint64_t array_length,
                               uint32_t context) {
  ROLP_DCHECK(reinterpret_cast<uintptr_t>(mem) % kObjectAlignment == 0);
  ROLP_DCHECK(total_bytes >= kObjectHeaderSize);
  Object* obj = reinterpret_cast<Object*>(mem);
  // Zero the payload: mirrors the JVM's guaranteed zero-initialization and is
  // part of the real allocation cost.
  std::memset(mem + kObjectHeaderSize, 0, total_bytes - kObjectHeaderSize);
  obj->class_id = cls;
  obj->size_bytes = static_cast<uint32_t>(total_bytes);
  uint64_t mark = markword::SetIdentityHash(0, NextIdentityHash());
  mark = markword::SetContext(mark, context);
  obj->StoreMark(mark);
  const ClassInfo& info = classes_->Get(cls);
  if (info.kind != ClassKind::kInstance) {
    obj->SetArrayLength(array_length);
  }
  // Allocated-bytes accounting is the caller's job (RuntimeThread batches it
  // per thread and drains at safepoints/detach — see AddAllocatedBytes):
  // keeping this function accounting-free keeps the allocation fast lane free
  // of shared-line traffic.
  return obj;
}

void Heap::UpdateMaxUsedBytes() {
  uint64_t used = regions_->ComputeUsage().used_bytes;
  uint64_t cur = max_used_bytes_.load(std::memory_order_relaxed);
  while (used > cur &&
         !max_used_bytes_.compare_exchange_weak(cur, used, std::memory_order_relaxed)) {
  }
}

void RemsetBarrierSet::StoreBarrier(Object* src, std::atomic<Object*>* slot, Object* value) {
  if (value == nullptr || src == nullptr) {
    return;
  }
  Region* src_region = regions_->RegionFor(src);
  Region* dst_region = regions_->RegionFor(value);
  if (src_region == dst_region) {
    return;
  }
  // Young-to-young pointers need no remembered set: the young generation is
  // always collected as a whole.
  if (src_region->IsYoung() && dst_region->IsYoung()) {
    return;
  }
  if (ROLP_FAULT_POINT("heap.remset.drop")) {
    return;  // simulated lost barrier: the edge is never recorded
  }
  dst_region->RemsetAddRegion(src_region->index());
}

}  // namespace rolp
