// Heap facade: owns the region manager, class registry, global roots, and the
// barrier set through which all mutator reference loads/stores go. Collector
// policy (when to GC, where survivors go) lives in src/gc.
#ifndef SRC_HEAP_HEAP_H_
#define SRC_HEAP_HEAP_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/heap/class_registry.h"
#include "src/heap/heap_governor.h"
#include "src/heap/object.h"
#include "src/heap/region_manager.h"
#include "src/heap/roots.h"

namespace rolp {

struct HeapConfig {
  size_t heap_bytes = 256 * 1024 * 1024;
  size_t region_bytes = 1 * 1024 * 1024;
  // Young generation target as a fraction of total regions.
  double young_fraction = 0.25;
  // HotSpot-style tenuring threshold: survivors older than this are promoted.
  uint32_t tenuring_threshold = 15;
  // Regions reserved for GC evacuation destinations; mutator allocation fails
  // (recoverable, GC-and-retry) before the free pool dips below this, so
  // copying never starves under mutator pressure. 0 disables. The VM sizes
  // this from ROLP_GOV_EVAC_RESERVE.
  size_t evac_reserve_regions = 0;
  // Arena-layer policy (sharded free lists, THP, NUMA, uncommit). The VM
  // fills this from the environment (HeapArenaOptions::FromEnv); the default
  // keeps the historical single-arena behavior.
  HeapArenaOptions arenas;
};

// Reference access barriers. The default implementation records cross-region
// stores into remembered sets (G1/NG2C/CMS style). The Z collector substitutes
// a barrier that also heals loads through forwarding tables.
class BarrierSet {
 public:
  virtual ~BarrierSet() = default;

  // Called after *slot = value, with src the object containing the slot
  // (nullptr for global root stores).
  virtual void StoreBarrier(Object* src, std::atomic<Object*>* slot, Object* value) = 0;

  // Returns the (possibly healed) value of *slot.
  virtual Object* LoadBarrier(std::atomic<Object*>* slot) = 0;

  virtual bool needs_load_barrier() const = 0;
};

class Heap {
 public:
  explicit Heap(const HeapConfig& config);
  ~Heap();

  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  const HeapConfig& config() const { return config_; }
  RegionManager& regions() { return *regions_; }
  const RegionManager& regions() const { return *regions_; }
  ClassRegistry& classes() { return *classes_; }
  GlobalRoots& roots() { return roots_; }
  // Heap-pressure governor (DESIGN.md section 13); always present.
  HeapGovernor& governor() { return *governor_; }
  const HeapGovernor& governor() const { return *governor_; }

  BarrierSet& barriers() { return *barriers_; }
  // Takes ownership. Installed by the collector before mutators start.
  void SetBarrierSet(std::unique_ptr<BarrierSet> barriers);

  // --- Object construction -------------------------------------------------
  // Total allocation size (header + payload) for a class / array request.
  size_t InstanceAllocSize(ClassId cls) const;
  size_t RefArrayAllocSize(uint64_t length) const;
  size_t DataArrayAllocSize(uint64_t length) const;

  bool IsHumongousSize(size_t total_bytes) const {
    return total_bytes >= regions_->region_bytes() / 2;
  }

  // Lays an object out over `mem` (must be total_bytes of region memory):
  // zeroes the payload, writes the header with a fresh identity hash and the
  // given allocation context.
  Object* InitializeObject(char* mem, ClassId cls, size_t total_bytes, uint64_t array_length,
                           uint32_t context);

  // --- Reference access (all mutator field traffic goes through these) -----
  // Stores are release and loads acquire so that publishing a freshly
  // allocated object (payload zeroing + header write in InitializeObject)
  // happens-before any access by a thread that reaches it through the slot.
  // Both orders are plain moves on x86, so this safe-publication guarantee is
  // free on the hot path.
  Object* LoadRef(std::atomic<Object*>* slot) {
    if (load_barrier_enabled_.load(std::memory_order_relaxed)) {
      return barriers_->LoadBarrier(slot);
    }
    return slot->load(std::memory_order_acquire);
  }

  void StoreRef(Object* src, std::atomic<Object*>* slot, Object* value) {
    slot->store(value, std::memory_order_release);
    barriers_->StoreBarrier(src, slot, value);
  }

  // Re-reads the barrier set's needs_load_barrier(); called by collectors
  // after phase changes.
  void RefreshBarrierMode();

  // Iterates the reference slots of an object according to its class.
  template <typename Fn>
  void ForEachRefSlot(Object* obj, Fn&& fn) {
    if (obj->class_id == kFreeBlockClassId) {
      return;  // CMS free-list gap, not a real object
    }
    const ClassInfo& info = classes_->Get(obj->class_id);
    switch (info.kind) {
      case ClassKind::kInstance:
        for (uint32_t off : info.ref_offsets) {
          fn(obj->RefSlotAt(off));
        }
        break;
      case ClassKind::kRefArray: {
        uint64_t n = obj->ArrayLength();
        for (uint64_t i = 0; i < n; i++) {
          fn(obj->RefArraySlot(i));
        }
        break;
      }
      case ClassKind::kDataArray:
        break;
    }
  }

  // --- Statistics -----------------------------------------------------------
  // Cumulative bytes credited via AddAllocatedBytes. Mutator threads batch
  // their credits and drain them at safepoints and on detach, so this is
  // exact whenever the world is stopped (and after all threads detached) but
  // may lag live allocation by up to one batch per running thread.
  uint64_t total_allocated_bytes() const {
    return allocated_bytes_.load(std::memory_order_relaxed);
  }
  void AddAllocatedBytes(uint64_t n) { allocated_bytes_.fetch_add(n, std::memory_order_relaxed); }

  // High-water mark of used bytes, refreshed by collectors at pause ends.
  uint64_t max_used_bytes() const { return max_used_bytes_.load(std::memory_order_relaxed); }
  void UpdateMaxUsedBytes();

 private:
  HeapConfig config_;
  std::unique_ptr<RegionManager> regions_;
  std::unique_ptr<HeapGovernor> governor_;
  std::unique_ptr<ClassRegistry> classes_;
  GlobalRoots roots_;
  std::unique_ptr<BarrierSet> barriers_;
  std::atomic<bool> load_barrier_enabled_{false};
  std::atomic<uint64_t> allocated_bytes_{0};
  std::atomic<uint64_t> max_used_bytes_{0};
};

// Default barrier set: region-coarse remembered-set recording for
// cross-region stores where the target may later be collected independently
// of the source.
class RemsetBarrierSet : public BarrierSet {
 public:
  explicit RemsetBarrierSet(RegionManager* regions) : regions_(regions) {}

  void StoreBarrier(Object* src, std::atomic<Object*>* slot, Object* value) override;
  Object* LoadBarrier(std::atomic<Object*>* slot) override {
    return slot->load(std::memory_order_acquire);
  }
  bool needs_load_barrier() const override { return false; }

 private:
  RegionManager* regions_;
};

}  // namespace rolp

#endif  // SRC_HEAP_HEAP_H_
