// Interface through which collectors report events to the ROLP profiler.
// The gc library only knows this abstract interface; the profiler in
// src/rolp implements it, and the runtime wires the two together.
#ifndef SRC_GC_PROFILER_HOOKS_H_
#define SRC_GC_PROFILER_HOOKS_H_

#include <cstdint>

#include "src/gc/gc_metrics.h"

namespace rolp {

class WorkerPool;

struct GcEndInfo {
  uint64_t gc_cycle = 0;      // completed GC cycles so far
  uint64_t pause_ns = 0;
  PauseKind kind = PauseKind::kYoung;
  // GC worker pool the profiler may use to parallelize its safepoint-side
  // work (worker-table merge). Null: run serially (tests, poolless paths).
  WorkerPool* workers = nullptr;
};

class ProfilerHooks {
 public:
  virtual ~ProfilerHooks() = default;

  // True when survivor processing should feed the Object Lifetime
  // Distribution table (paper section 7.4: this can be shut off dynamically).
  virtual bool SurvivorTrackingEnabled() const = 0;

  // Called (world stopped) for every object copied by GC worker `worker_id`.
  // `old_mark` is the object's mark word before aging.
  virtual void OnSurvivor(uint32_t worker_id, uint64_t old_mark) = 0;

  // Called (world stopped) at the end of every pause, after private survivor
  // tables have been merged. Drives the every-16-cycles inference.
  //
  // Flush contract (allocation fast lane, DESIGN.md §9): the implementation
  // must drain every mutator's allocation sample buffer into the OLD table
  // before the profiler's merge/inference runs, and must do so while the
  // world is still stopped — buffered counts are only required to be exact
  // here, and cached pretenuring decisions are invalidated by the same flush
  // so they never survive a decision republication.
  virtual void OnGcEnd(const GcEndInfo& info) = 0;

  // Fragmentation feedback (paper section 6): live ratio of a dynamic
  // generation observed during marking. Low ratios demote contexts.
  virtual void OnGenFragmentation(uint8_t gen, double live_ratio) = 0;

  // Called after a pause in which the GC watchdog detected a phase-deadline
  // overrun. `survivor_tracking_active` says whether the profiler was feeding
  // survivor tracking during that pause — repeated overruns while tracking is
  // on are the signal to degrade the profiler (escalation ladder rung 4).
  // Default no-op: collectors may run without a profiler.
  virtual void OnGcOverrun(bool survivor_tracking_active) { (void)survivor_tracking_active; }

  // Called (world stopped) when in-pause heap verification found recoverable
  // corruption (`finding_count` findings this pass). Profiling data derived
  // from a corrupt heap is suspect, so implementations should degrade:
  // disable survivor tracking and stop publishing new pretenuring decisions.
  // Default no-op: collectors may run without a profiler.
  virtual void OnHeapCorruption(size_t finding_count) { (void)finding_count; }
};

}  // namespace rolp

#endif  // SRC_GC_PROFILER_HOOKS_H_
