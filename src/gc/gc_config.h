// Collector tuning knobs. Defaults approximate HotSpot's G1/CMS behaviour at
// the scaled-down heap sizes this repository runs with.
#ifndef SRC_GC_GC_CONFIG_H_
#define SRC_GC_GC_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace rolp {

inline constexpr uint8_t kYoungGen = 0;    // target_gen value: normal young allocation
inline constexpr uint8_t kOldGenId = 15;   // target_gen value: pretenure straight to old
inline constexpr uint8_t kNumDynamicGens = 14;  // gens 1..14 (paper section 7.1)

struct GcConfig {
  // Number of parallel GC worker threads.
  uint32_t num_workers = 2;

  // Young generation size as a number of regions (0 = derive from the heap's
  // young_fraction).
  size_t young_regions = 0;

  // Survivors older than this are promoted to old (HotSpot
  // MaxTenuringThreshold).
  uint32_t tenuring_threshold = 15;

  // Start mixed collections when tenured occupancy exceeds this fraction of
  // the heap (G1 InitiatingHeapOccupancyPercent analogue).
  double mixed_trigger_occupancy = 0.55;

  // Tenured regions are mixed-collection candidates when their live ratio is
  // below this (G1 LiveThresholdPercent analogue).
  double cset_live_ratio_max = 0.85;

  // At most this many tenured regions are evacuated per mixed pause.
  size_t max_old_cset_regions = 64;

  // NG2C: enable the 14 dynamic generations (paper section 7.1).
  bool use_dynamic_gens = false;

  // Regional collector: copy the collection set concurrently with the
  // mutators (ZGC-style load barrier with reference healing), leaving only
  // root scan + cset selection and a short final remap/retire pause STW
  // (ROLP_CONCURRENT_EVAC; off = the classic fully-STW evacuation pause).
  bool concurrent_evac = false;

  // CMS: start a concurrent mark-sweep cycle at this tenured occupancy.
  double cms_trigger_occupancy = 0.55;
  // CMS: concurrent work performed per byte allocated (pacing).
  double cms_work_per_alloc_byte = 3.0;

  // Z: start a concurrent cycle at this heap occupancy.
  double z_trigger_occupancy = 0.35;
  // Z: regions with live ratio below this are relocated.
  double z_relocate_live_ratio_max = 0.75;
  // Z: concurrent work performed per byte allocated (pacing).
  double z_work_per_alloc_byte = 4.0;
};

}  // namespace rolp

#endif  // SRC_GC_GC_CONFIG_H_
