// Stop-the-world sliding mark-compact (Lisp-2). Fallback for evacuation
// failure, humongous allocation failure, and CMS promotion failure. Compacts
// all non-humongous regions in address order; dead humongous objects are
// freed, live ones stay in place. Everything surviving a full collection is
// tenured into the old generation (dynamic generations collapse).
#ifndef SRC_GC_MARK_COMPACT_H_
#define SRC_GC_MARK_COMPACT_H_

#include <cstdint>
#include <vector>

#include "src/gc/mark_bitmap.h"
#include "src/gc/marking.h"
#include "src/gc/thread_context.h"
#include "src/gc/worker_pool.h"
#include "src/heap/heap.h"

namespace rolp {

class MarkCompact {
 public:
  MarkCompact(Heap* heap, MarkBitmap* bitmap) : heap_(heap), bitmap_(bitmap) {}

  // Runs the full collection. World must be stopped; TLABs must be released.
  // Returns bytes moved.
  uint64_t Collect(SafepointManager* safepoints, WorkerPool* workers);

 private:
  // Rebuilds every region's remembered set from the post-compaction object
  // graph (coarse entries only exist for live cross-region references).
  // Source regions shard across `workers` when provided (inserts are atomic).
  void RebuildRemsets(const std::vector<Region*>& occupied, WorkerPool* workers);

  Heap* heap_;
  MarkBitmap* bitmap_;
};

}  // namespace rolp

#endif  // SRC_GC_MARK_COMPACT_H_
