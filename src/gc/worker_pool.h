// Persistent pool of GC worker threads. Work is dispatched as "run fn(w) on
// every worker"; phases partition their inputs by worker id.
#ifndef SRC_GC_WORKER_POOL_H_
#define SRC_GC_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rolp {

class WorkerPool {
 public:
  explicit WorkerPool(uint32_t num_workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Runs task(worker_id) on all workers and blocks until every invocation
  // returns. Must not be called re-entrantly.
  void RunTask(const std::function<void(uint32_t)>& task);

  uint32_t size() const { return static_cast<uint32_t>(threads_.size()); }

 private:
  void WorkerLoop(uint32_t worker_id);

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(uint32_t)>* task_ = nullptr;
  uint64_t generation_ = 0;
  uint32_t remaining_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace rolp

#endif  // SRC_GC_WORKER_POOL_H_
