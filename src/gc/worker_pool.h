// Persistent pool of GC worker threads. Work is dispatched as "run fn(w) for
// every item id w in [0, size())"; phases partition their inputs by item id.
// Each item runs exactly once per RunTask call on whichever worker claims it,
// so the historical "one invocation per worker id" contract is preserved —
// ids stay distinct and dense — while letting surviving workers pick up the
// items of a worker that died mid-pause.
//
// Robustness contract (GC watchdog support):
//  - Tasks may publish liveness via Heartbeat(item_id): one relaxed atomic
//    store, and nothing at all unless heartbeats were enabled.
//  - A worker thread that dies (simulated by the "gc.worker.die" fail point)
//    abandons its claimed item; RunTask (or the watchdog, via
//    ReclaimAbandonedItems) requeues it onto survivors. Item bodies must
//    therefore tolerate partial re-execution — all GC phases here do, because
//    marking is idempotent on the atomic mark bitmap and evacuation installs
//    forwarding pointers with CAS.
//  - Destruction joins with a timeout: a worker wedged inside a task is
//    detached and reported instead of deadlocking the VM. All shared state
//    lives in a shared_ptr owned jointly by the pool and every worker thread,
//    so a detached straggler can never touch freed memory.
#ifndef SRC_GC_WORKER_POOL_H_
#define SRC_GC_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rolp {

// Watchdog-facing view of one worker thread, taken under the pool mutex.
struct WorkerActivity {
  bool alive = false;
  int64_t current_item = -1;  // item id being run, -1 when idle
  uint64_t heartbeat = 0;     // last published heartbeat for current_item
};

class WorkerPool {
 public:
  explicit WorkerPool(uint32_t num_workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Runs task(w) exactly once for each w in [0, size()) and blocks until all
  // invocations complete. Items abandoned by dead workers are requeued onto
  // survivors; if every worker is dead the caller runs the leftovers inline.
  // Must not be called re-entrantly.
  void RunTask(const std::function<void(uint32_t)>& task);

  // Runs fn(item_id, begin, end) over [0, count) in chunks claimed from a
  // shared cursor — self-balancing where a static stride is not. Runs inline
  // on the calling thread when the range fits one chunk or the pool has a
  // single worker. Blocks until the whole range is processed; the usual
  // RunTask dead-worker requeue applies (chunks are claimed inside the item
  // body, so a worker dying at the fail points never strands a chunk).
  void ParallelFor(size_t count, size_t chunk,
                   const std::function<void(uint32_t, size_t, size_t)>& fn);

  uint32_t size() const { return num_workers_; }

  // --- Heartbeats (watchdog) ----------------------------------------------
  // When disabled (default), Heartbeat is a single relaxed load + branch.
  void EnableHeartbeats(bool on);
  void Heartbeat(uint32_t item_id) {
    if (!state_->heartbeats_enabled.load(std::memory_order_relaxed)) {
      return;
    }
    HeartbeatSlot& slot = state_->heartbeats[item_id];
    slot.published.store(slot.published.load(std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  }
  uint64_t HeartbeatValue(uint32_t item_id) const {
    return state_->heartbeats[item_id].published.load(std::memory_order_relaxed);
  }

  // --- Watchdog escalation hooks ------------------------------------------
  // Worker threads still alive (have not exited or died mid-task).
  uint32_t alive_workers() const;
  // Requeues items claimed by dead workers back onto the pending queue.
  // Returns how many items were requeued. Safe from any thread.
  uint32_t ReclaimAbandonedItems();
  std::vector<WorkerActivity> SnapshotWorkerActivity() const;

  // Cumulative count of items requeued after worker death (this pool).
  uint64_t items_requeued() const;

  // --- Shutdown policy -----------------------------------------------------
  // How long the destructor waits for workers before detach-and-report.
  void set_shutdown_timeout_ms(uint32_t ms) { shutdown_timeout_ms_ = ms; }
  // Process-wide count of workers ever detached at shutdown (post-mortem
  // visibility for tests and crash context).
  static uint64_t detached_workers_total();

 private:
  struct HeartbeatSlot {
    alignas(64) std::atomic<uint64_t> published{0};
  };

  // Everything worker threads touch. Jointly owned so detached threads
  // outliving the pool stay memory-safe.
  struct PoolState {
    explicit PoolState(uint32_t n);

    mutable std::mutex mu;
    std::condition_variable cv_work;   // workers: new items or shutdown
    std::condition_variable cv_done;   // RunTask: progress made
    std::condition_variable cv_exit;   // destructor: a worker exited

    // Guarded by mu.
    const std::function<void(uint32_t)>* task = nullptr;
    std::vector<uint32_t> pending;     // unclaimed item ids
    uint32_t completed = 0;
    uint32_t total_items = 0;
    bool shutdown = false;
    std::vector<bool> alive;           // per worker thread
    std::vector<bool> exited;          // per worker thread (left WorkerLoop)
    std::vector<int64_t> current_item; // per worker thread, -1 = none
    uint64_t requeued_total = 0;

    // Lock-free.
    std::atomic<bool> heartbeats_enabled{false};
    std::vector<HeartbeatSlot> heartbeats;  // indexed by item id
  };

  static void WorkerLoop(std::shared_ptr<PoolState> s, uint32_t thread_index);
  // Requeues items held by dead workers; caller holds s->mu.
  static uint32_t ReclaimAbandonedLocked(PoolState& s);

  const uint32_t num_workers_;
  uint32_t shutdown_timeout_ms_ = 2000;
  std::shared_ptr<PoolState> state_;
  std::vector<std::thread> threads_;
};

}  // namespace rolp

#endif  // SRC_GC_WORKER_POOL_H_
