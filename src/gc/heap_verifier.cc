#include "src/gc/heap_verifier.h"

#include <cstdio>

namespace rolp {

namespace {

std::string Fmt(const char* fmt, const void* a, const void* b) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

}  // namespace

std::string HeapVerifier::Report::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "verified %llu objects / %llu refs in %llu regions: %s (%zu errors)",
                static_cast<unsigned long long>(objects_walked),
                static_cast<unsigned long long>(refs_checked),
                static_cast<unsigned long long>(regions_walked), ok() ? "OK" : "CORRUPT",
                errors.size());
  return buf;
}

bool HeapVerifier::PlausibleObject(Object* obj, Report* report, const char* what) {
  if (reinterpret_cast<uintptr_t>(obj) % kObjectAlignment != 0) {
    report->errors.push_back(Fmt("misaligned %p (%s)", obj, what));
    return false;
  }
  if (!heap_->regions().Contains(obj)) {
    report->errors.push_back(Fmt("outside heap: %p (%s)", obj, what));
    return false;
  }
  Region* r = heap_->regions().RegionFor(obj);
  if (r->IsFree()) {
    report->errors.push_back(Fmt("in free region: %p (%s)", obj, what));
    return false;
  }
  if (obj->size_bytes < kObjectHeaderSize && obj->class_id != kFreeBlockClassId) {
    report->errors.push_back(Fmt("tiny size at %p (%s)", obj, what));
    return false;
  }
  if (obj->class_id != kFreeBlockClassId &&
      obj->class_id >= heap_->classes().NumClasses()) {
    report->errors.push_back(Fmt("unknown class at %p (%s)", obj, what));
    return false;
  }
  return true;
}

void HeapVerifier::VerifyObjectRefs(Object* obj, Region* region, Report* report) {
  heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
    Object* v = slot->load(std::memory_order_relaxed);
    if (v == nullptr) {
      return;
    }
    report->refs_checked++;
    if (!PlausibleObject(v, report, "field target")) {
      return;
    }
    if (markword::IsForwarded(v->LoadMark())) {
      report->errors.push_back(Fmt("field %p -> forwarded object %p", slot, v));
      return;
    }
    if (check_remsets_) {
      Region* vr = heap_->regions().RegionFor(v);
      if (vr != region && !(region->IsYoung() && vr->IsYoung())) {
        // The barrier records the head region for humongous sources; accept
        // either the exact region or any region of the same humongous span.
        if (!vr->RemsetContainsRegion(region->index())) {
          report->errors.push_back(
              Fmt("missing remset entry for edge %p -> %p", obj, v));
        }
      }
    }
  });
}

void HeapVerifier::VerifyRegion(Region* region, Report* report) {
  report->regions_walked++;
  char* p = region->begin();
  char* top = region->top();
  char* limit = region->kind() == RegionKind::kHumongous
                    ? region->begin() + static_cast<size_t>(region->humongous_span()) *
                                            region->capacity()
                    : region->end();
  if (top < region->begin() || (region->kind() != RegionKind::kHumongous && top > limit)) {
    report->errors.push_back(Fmt("region %p has top out of bounds %p", region->begin(), top));
    return;
  }
  while (p < top) {
    Object* obj = reinterpret_cast<Object*>(p);
    if (!PlausibleObject(obj, report, "walk")) {
      return;  // cannot continue walking this region
    }
    size_t size = obj->size_bytes;
    if (size % kObjectAlignment != 0 || p + size > top) {
      report->errors.push_back(Fmt("object %p overruns region top %p", obj, top));
      return;
    }
    if (obj->class_id != kFreeBlockClassId) {
      report->objects_walked++;
      if (markword::IsForwarded(obj->LoadMark())) {
        report->errors.push_back(Fmt("stale forwarded object %p (region %p)", obj,
                                     region->begin()));
      } else {
        VerifyObjectRefs(obj, region, report);
      }
    }
    p += size;
  }
}

HeapVerifier::Report HeapVerifier::Verify() {
  Report report;
  RegionManager& regions = heap_->regions();
  regions.ForEachRegion([&](Region* r) {
    if (r->IsFree() || r->kind() == RegionKind::kHumongousCont) {
      return;
    }
    VerifyRegion(r, &report);
  });
  // Roots point at plausible, unforwarded objects.
  heap_->roots().ForEach([&](std::atomic<Object*>* slot) {
    Object* v = slot->load(std::memory_order_relaxed);
    if (v == nullptr) {
      return;
    }
    report.refs_checked++;
    if (PlausibleObject(v, &report, "global root") &&
        markword::IsForwarded(v->LoadMark())) {
      report.errors.push_back(Fmt("global root %p -> forwarded %p", slot, v));
    }
  });
  if (safepoints_ != nullptr) {
    safepoints_->ForEachThread([&](MutatorContext* ctx) {
      for (auto& slot : ctx->local_roots) {
        Object* v = slot.load(std::memory_order_relaxed);
        if (v == nullptr) {
          continue;
        }
        report.refs_checked++;
        if (PlausibleObject(v, &report, "local root") &&
            markword::IsForwarded(v->LoadMark())) {
          report.errors.push_back(Fmt("local root %p -> forwarded %p", &slot, v));
        }
      }
    });
  }
  return report;
}

}  // namespace rolp
