#include "src/gc/heap_verifier.h"

#include <cstdio>

#include "src/util/env.h"
#include "src/util/fault_injection.h"
#include "src/util/log.h"
#include "src/util/spinlock.h"

namespace rolp {

namespace {

std::string Fmt(const char* fmt, const void* a, const void* b) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

// Rotating sampled coverage: pass k at period N walks regions k mod N,
// k mod N + N, ... so N consecutive pauses cover every region.
bool SampledIn(uint32_t region_index, const VerifyOptions& opts, uint64_t pass) {
  uint32_t period = opts.EffectivePeriod();
  return period <= 1 || region_index % period == pass % period;
}

constexpr size_t kRegionsPerChunk = 8;

}  // namespace

const char* VerifyLevelName(VerifyLevel level) {
  switch (level) {
    case VerifyLevel::kOff:
      return "off";
    case VerifyLevel::kPause:
      return "pause";
    case VerifyLevel::kFull:
      return "full";
  }
  return "?";
}

VerifyOptions VerifyOptions::FromEnv() {
  VerifyOptions opts;
  std::string level = EnvString("ROLP_VERIFY", "off");
  if (level == "pause") {
    opts.level = VerifyLevel::kPause;
  } else if (level == "full") {
    opts.level = VerifyLevel::kFull;
  } else if (level != "off") {
    ROLP_LOG_WARN("ROLP_VERIFY=%s not recognized (want off|pause|full); verification off",
                  level.c_str());
  }
  int64_t sample = EnvInt64("ROLP_VERIFY_SAMPLE", 8);
  opts.sample_period = sample < 1 ? 1 : static_cast<uint32_t>(sample);
  return opts;
}

bool HeapVerifier::Report::has_fatal() const {
  for (const Finding& f : findings) {
    if (f.fatal()) {
      return true;
    }
  }
  return false;
}

void HeapVerifier::Report::Add(Finding finding) {
  errors.push_back(finding.detail);
  findings.push_back(std::move(finding));
}

void HeapVerifier::Report::Merge(const Report& other) {
  errors.insert(errors.end(), other.errors.begin(), other.errors.end());
  findings.insert(findings.end(), other.findings.begin(), other.findings.end());
  objects_walked += other.objects_walked;
  refs_checked += other.refs_checked;
  regions_walked += other.regions_walked;
  refs_healed += other.refs_healed;
  refs_nulled += other.refs_nulled;
  cancelled = cancelled || other.cancelled;
}

std::string HeapVerifier::Report::Summary() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "verified %llu objects / %llu refs in %llu regions: %s (%zu errors, "
                "%llu healed, %llu nulled%s)",
                static_cast<unsigned long long>(objects_walked),
                static_cast<unsigned long long>(refs_checked),
                static_cast<unsigned long long>(regions_walked), ok() ? "OK" : "CORRUPT",
                errors.size(), static_cast<unsigned long long>(refs_healed),
                static_cast<unsigned long long>(refs_nulled),
                cancelled ? ", cancelled" : "");
  return buf;
}

bool HeapVerifier::PlausibleObject(Object* obj, Report* report, const char* what,
                                   uint32_t region_index) {
  auto add = [&](std::string detail) {
    Finding f;
    f.kind = Finding::Kind::kDanglingRef;
    f.region = region_index;
    f.detail = std::move(detail);
    report->Add(std::move(f));
  };
  if (reinterpret_cast<uintptr_t>(obj) % kObjectAlignment != 0) {
    add(Fmt("misaligned %p (%s)", obj, what));
    return false;
  }
  if (!heap_->regions().Contains(obj)) {
    add(Fmt("outside heap: %p (%s)", obj, what));
    return false;
  }
  Region* r = heap_->regions().RegionFor(obj);
  if (r->IsFree()) {
    add(Fmt("in free region: %p (%s)", obj, what));
    return false;
  }
  if (obj->size_bytes < kObjectHeaderSize && obj->class_id != kFreeBlockClassId) {
    add(Fmt("tiny size at %p (%s)", obj, what));
    return false;
  }
  if (obj->class_id != kFreeBlockClassId &&
      obj->class_id >= heap_->classes().NumClasses()) {
    add(Fmt("unknown class at %p (%s)", obj, what));
    return false;
  }
  return true;
}

void HeapVerifier::VerifyObjectRefs(Object* obj, Region* region, Report* report) {
  heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
    Object* v = slot->load(std::memory_order_relaxed);
    if (v == nullptr) {
      return;
    }
    report->refs_checked++;
    if (!PlausibleObject(v, report, "field target")) {
      return;
    }
    if (markword::IsForwarded(v->LoadMark())) {
      Finding f;
      f.kind = Finding::Kind::kStaleForward;
      f.region = heap_->regions().RegionFor(v)->index();
      f.detail = Fmt("field %p -> forwarded object %p", slot, v);
      report->Add(std::move(f));
      return;
    }
    if (check_remsets_) {
      Region* vr = heap_->regions().RegionFor(v);
      if (vr != region && !(region->IsYoung() && vr->IsYoung())) {
        // The barrier records the head region for humongous sources; accept
        // either the exact region or any region of the same humongous span.
        if (!vr->RemsetContainsRegion(region->index())) {
          Finding f;
          f.kind = Finding::Kind::kMissingRemset;
          f.region = vr->index();
          f.detail = Fmt("missing remset entry for edge %p -> %p", obj, v);
          report->Add(std::move(f));
        }
      }
    }
  });
}

void HeapVerifier::VerifyRegion(Region* region, Report* report) {
  report->regions_walked++;
  char* p = region->begin();
  char* top = region->top();
  char* limit = region->kind() == RegionKind::kHumongous
                    ? region->begin() + static_cast<size_t>(region->humongous_span()) *
                                            region->capacity()
                    : region->end();
  if (top < region->begin() || (region->kind() != RegionKind::kHumongous && top > limit)) {
    Finding f;
    f.kind = Finding::Kind::kRegionCorrupt;
    f.region = region->index();
    f.detail = Fmt("region %p has top out of bounds %p", region->begin(), top);
    report->Add(std::move(f));
    return;
  }
  while (p < top) {
    Object* obj = reinterpret_cast<Object*>(p);
    if (!PlausibleObject(obj, report, "walk", region->index())) {
      // Reclassify: an implausible object mid-walk means the region tiling
      // itself is broken and the region can never be scanned again.
      report->findings.back().kind = Finding::Kind::kRegionCorrupt;
      return;
    }
    size_t size = obj->size_bytes;
    if (size % kObjectAlignment != 0 || p + size > top) {
      Finding f;
      f.kind = Finding::Kind::kRegionCorrupt;
      f.region = region->index();
      f.detail = Fmt("object %p overruns region top %p", obj, top);
      report->Add(std::move(f));
      return;
    }
    if (obj->class_id != kFreeBlockClassId) {
      report->objects_walked++;
      if (markword::IsForwarded(obj->LoadMark())) {
        Finding f;
        f.kind = Finding::Kind::kStaleForward;
        f.region = region->index();
        f.detail = Fmt("stale forwarded object %p (region %p)", obj, region->begin());
        report->Add(std::move(f));
      } else {
        VerifyObjectRefs(obj, region, report);
      }
    }
    p += size;
  }
}

HeapVerifier::Report HeapVerifier::Verify() {
  Report report;
  RegionManager& regions = heap_->regions();
  regions.ForEachRegion([&](Region* r) {
    if (r->IsFree() || r->kind() == RegionKind::kHumongousCont) {
      return;
    }
    if (r->IsUnscannable()) {
      return;  // quarantined with broken tiling: pinned, never walked again
    }
    VerifyRegion(r, &report);
  });
  // Roots point at plausible, unforwarded objects.
  auto check_root = [&](std::atomic<Object*>* slot, const char* what) {
    Object* v = slot->load(std::memory_order_relaxed);
    if (v == nullptr) {
      return;
    }
    report.refs_checked++;
    if (!PlausibleObject(v, &report, what)) {
      report.findings.back().kind = Finding::Kind::kRootCorrupt;
      return;
    }
    if (markword::IsForwarded(v->LoadMark())) {
      Finding f;
      f.kind = Finding::Kind::kRootCorrupt;
      f.detail = Fmt("root %p -> forwarded %p", slot, v);
      report.Add(std::move(f));
    }
  };
  heap_->roots().ForEach([&](std::atomic<Object*>* slot) { check_root(slot, "global root"); });
  if (safepoints_ != nullptr) {
    safepoints_->ForEachThread([&](MutatorContext* ctx) {
      for (auto& slot : ctx->local_roots) {
        check_root(&slot, "local root");
      }
    });
  }
  return report;
}

// --- In-pause passes --------------------------------------------------------

namespace {

// Runs fn(region) over every sampled region, parallel when a pool is given.
// Merges per-chunk partial reports into *out under a lock.
void ForEachSampledRegion(RegionManager& regions, WorkerPool* workers,
                          const VerifyOptions& opts, uint64_t pass,
                          CancellationToken* cancel, HeapVerifier::Report* out,
                          const std::function<void(Region*, HeapVerifier::Report*)>& fn) {
  SpinLock merge_lock;
  auto run_chunk = [&](size_t begin, size_t end) {
    if (ROLP_FAULT_POINT("gc.verify.stall")) {
      // Delay-armed in practice; a fire without delay is a no-op.
    }
    HeapVerifier::Report local;
    for (size_t i = begin; i < end; i++) {
      if (cancel != nullptr && cancel->IsCancelled()) {
        local.cancelled = true;
        break;
      }
      Region* r = &regions.region(i);
      if (!SampledIn(r->index(), opts, pass)) {
        continue;
      }
      fn(r, &local);
    }
    std::lock_guard<SpinLock> guard(merge_lock);
    out->Merge(local);
  };
  if (workers != nullptr) {
    workers->ParallelFor(regions.num_regions(), kRegionsPerChunk,
                         [&](uint32_t, size_t begin, size_t end) { run_chunk(begin, end); });
  } else {
    run_chunk(0, regions.num_regions());
  }
}

}  // namespace

HeapVerifier::Report HeapVerifier::VerifyPostMark(const MarkBitmap* bitmap,
                                                  WorkerPool* workers,
                                                  const VerifyOptions& opts, uint64_t pass,
                                                  CancellationToken* cancel) {
  Report report;
  RegionManager& regions = heap_->regions();
  ForEachSampledRegion(
      regions, workers, opts, pass, cancel, &report, [&](Region* r, Report* local) {
        if (r->IsFree() || r->kind() == RegionKind::kHumongousCont || r->quarantined()) {
          return;
        }
        local->regions_walked++;
        // Recount marked bytes; the marker's region live accounting must
        // agree. The recount is authoritative — a mismatch is repaired so
        // collection-set selection never acts on a corrupt live ratio.
        size_t marked_bytes = 0;
        r->ForEachObject([&](Object* obj) {
          if (obj->class_id == kFreeBlockClassId) {
            return;
          }
          local->objects_walked++;
          if (bitmap->IsMarked(obj)) {
            marked_bytes += obj->size_bytes;
          }
        });
        if (marked_bytes != r->live_bytes()) {
          Finding f;
          f.kind = Finding::Kind::kBadMark;
          f.region = r->index();
          f.detail = Fmt("region %p live accounting disagrees with mark bitmap (%p)",
                         r->begin(), reinterpret_cast<void*>(marked_bytes));
          local->Add(std::move(f));
          r->set_live_bytes(marked_bytes);
        }
      });
  // Reachability spot check: everything a root names was just marked.
  auto check_root = [&](std::atomic<Object*>* slot, const char* what) {
    Object* v = slot->load(std::memory_order_relaxed);
    if (v == nullptr) {
      return;
    }
    report.refs_checked++;
    if (!PlausibleObject(v, &report, what)) {
      report.findings.back().kind = Finding::Kind::kRootCorrupt;
      return;
    }
    // Humongous objects are marked on their head region; v is the head.
    if (!bitmap->IsMarked(v)) {
      Finding f;
      f.kind = Finding::Kind::kBadMark;
      f.region = heap_->regions().RegionFor(v)->index();
      f.detail = Fmt("root %p -> unmarked object %p after marking", slot, v);
      report.Add(std::move(f));
    }
  };
  heap_->roots().ForEach([&](std::atomic<Object*>* slot) { check_root(slot, "global root"); });
  if (safepoints_ != nullptr) {
    safepoints_->ForEachThread([&](MutatorContext* ctx) {
      for (auto& slot : ctx->local_roots) {
        check_root(&slot, "local root");
      }
    });
  }
  return report;
}

uint32_t HeapVerifier::CheckSlotAgainstDoomed(std::atomic<Object*>* slot,
                                              Region* slot_region,
                                              const std::vector<uint8_t>& doomed_map,
                                              Report* report, const char* what) {
  Object* v = slot->load(std::memory_order_relaxed);
  if (v == nullptr) {
    return Finding::kNoRegion;
  }
  report->refs_checked++;
  if (reinterpret_cast<uintptr_t>(v) % kObjectAlignment != 0 ||
      !heap_->regions().Contains(v)) {
    Finding f;
    f.kind = Finding::Kind::kDanglingRef;
    f.detail = Fmt("implausible %p in slot %p", v, slot);
    report->Add(std::move(f));
    return Finding::kNoRegion;
  }
  Region* vr = heap_->regions().RegionFor(v);
  if (doomed_map[vr->index()] == 0) {
    return Finding::kNoRegion;
  }
  uint64_t m = v->LoadMark();
  if (markword::IsForwarded(m)) {
    // The evacuation copied this object but never healed this slot — a
    // missed scan. Heal it now; corrupt forwarding is unrecoverable.
    Object* to = markword::ForwardedPtr(m);
    if (reinterpret_cast<uintptr_t>(to) % kObjectAlignment != 0 ||
        !heap_->regions().Contains(to) || heap_->regions().RegionFor(to)->IsFree()) {
      Finding f;
      f.kind = Finding::Kind::kForwardCycle;
      f.region = vr->index();
      f.detail = Fmt("object %p forwarded outside live heap (%p)", v, to);
      report->Add(std::move(f));
      return Finding::kNoRegion;
    }
    if (markword::IsForwarded(to->LoadMark())) {
      Finding f;
      f.kind = Finding::Kind::kForwardCycle;
      f.region = vr->index();
      f.detail = Fmt("forwarding chain %p -> %p does not terminate", v, to);
      report->Add(std::move(f));
      return Finding::kNoRegion;
    }
    slot->store(to, std::memory_order_relaxed);
    report->refs_healed++;
    if (check_remsets_ && slot_region != nullptr) {
      Region* tr = heap_->regions().RegionFor(to);
      if (tr != slot_region) {
        tr->RemsetAddRegion(slot_region->index());
      }
    }
    Finding f;
    f.kind = Finding::Kind::kStaleRef;
    f.detail = Fmt("healed missed slot %p -> %p", slot, v);
    report->Add(std::move(f));
    return Finding::kNoRegion;
  }
  // Unforwarded object in a region about to be freed: the evacuation never
  // discovered it (e.g. a dropped remembered-set edge). The region must be
  // kept; repair the remset so the edge is scanned from now on.
  if (check_remsets_ && slot_region != nullptr && vr != slot_region) {
    vr->RemsetAddRegion(slot_region->index());
  }
  Finding f;
  f.kind = Finding::Kind::kStaleRef;
  f.region = vr->index();
  f.detail = Fmt("undiscovered survivor %p (slot %p)", v, slot);
  (void)what;
  report->Add(std::move(f));
  return vr->index();
}

void HeapVerifier::CheckRootsAgainstDoomed(const std::vector<uint8_t>& doomed_map,
                                           Report* report) {
  auto check_root = [&](std::atomic<Object*>* slot, const char* what) {
    (void)CheckSlotAgainstDoomed(slot, nullptr, doomed_map, report, what);
  };
  heap_->roots().ForEach([&](std::atomic<Object*>* slot) { check_root(slot, "global root"); });
  if (safepoints_ != nullptr) {
    safepoints_->ForEachThread([&](MutatorContext* ctx) {
      for (auto& slot : ctx->local_roots) {
        check_root(&slot, "local root");
      }
    });
  }
}

HeapVerifier::Report HeapVerifier::VerifyCollectionSet(const std::vector<Region*>& doomed,
                                                       WorkerPool* workers,
                                                       const VerifyOptions& opts,
                                                       uint64_t pass,
                                                       CancellationToken* cancel,
                                                       const MarkBitmap* live_filter) {
  Report report;
  if (doomed.empty()) {
    return report;
  }
  RegionManager& regions = heap_->regions();
  std::vector<uint8_t> doomed_map(regions.num_regions(), 0);
  for (const Region* r : doomed) {
    doomed_map[r->index()] = 1;
  }
  // Roots first (cheap, never sampled away).
  CheckRootsAgainstDoomed(doomed_map, &report);
  // Then every surviving region's outgoing slots, sampled.
  ForEachSampledRegion(
      regions, workers, opts, pass, cancel, &report, [&](Region* r, Report* local) {
        if (r->IsFree() || r->kind() == RegionKind::kHumongousCont ||
            doomed_map[r->index()] != 0 || r->IsUnscannable()) {
          return;
        }
        local->regions_walked++;
        r->ForEachObject([&](Object* obj) {
          if (obj->class_id == kFreeBlockClassId ||
              markword::IsForwarded(obj->LoadMark())) {
            return;  // free gap or stale copy in an evacuation-failure region
          }
          if (live_filter != nullptr && !live_filter->IsMarked(obj)) {
            return;  // dead object: its slots may legitimately be stale
          }
          local->objects_walked++;
          heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
            (void)CheckSlotAgainstDoomed(slot, r, doomed_map, local, "survivor scan");
          });
        });
      });
  return report;
}

std::vector<uint32_t> HeapVerifier::CascadeQuarantine(const std::vector<Region*>& doomed,
                                                      Report* report) {
  RegionManager& regions = heap_->regions();
  std::vector<uint8_t> doomed_map(regions.num_regions(), 0);
  for (const Region* r : doomed) {
    doomed_map[r->index()] = 1;
  }
  std::vector<uint8_t> kept(regions.num_regions(), 0);
  std::vector<uint32_t> worklist;
  for (const Finding& f : report->findings) {
    if (f.kind == Finding::Kind::kStaleRef && f.region != Finding::kNoRegion &&
        kept[f.region] == 0) {
      kept[f.region] = 1;
      worklist.push_back(f.region);
    }
  }
  std::vector<uint32_t> result = worklist;
  // Keeping a region keeps its unforwarded objects alive in place, which
  // keeps everything they reference alive too — including survivors in other
  // doomed regions. Close over that: heal refs to moved objects, scrub stale
  // copies into free blocks (the region must stay cleanly walkable forever),
  // and pull any still-referenced doomed region into the kept set.
  while (!worklist.empty()) {
    uint32_t idx = worklist.back();
    worklist.pop_back();
    Region* r = &regions.region(idx);
    r->ForEachObject([&](Object* obj) {
      if (obj->class_id == kFreeBlockClassId) {
        return;
      }
      uint64_t m = obj->LoadMark();
      if (markword::IsForwarded(m)) {
        // The live copy moved out; turn the stale original into a free block
        // so future walks and scans of this pinned region skip it.
        obj->StoreMark(0);
        obj->class_id = kFreeBlockClassId;
        return;
      }
      heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
        Object* v = slot->load(std::memory_order_relaxed);
        if (v == nullptr) {
          return;
        }
        report->refs_checked++;
        if (reinterpret_cast<uintptr_t>(v) % kObjectAlignment != 0 ||
            !heap_->regions().Contains(v)) {
          slot->store(nullptr, std::memory_order_relaxed);
          report->refs_nulled++;
          return;
        }
        Region* vr = heap_->regions().RegionFor(v);
        uint64_t vm = v->LoadMark();
        if (markword::IsForwarded(vm)) {
          Object* to = markword::ForwardedPtr(vm);
          if (!heap_->regions().Contains(to) || markword::IsForwarded(to->LoadMark())) {
            Finding f;
            f.kind = Finding::Kind::kForwardCycle;
            f.region = vr->index();
            f.detail = Fmt("forwarding chain %p -> %p corrupt in cascade", v, to);
            report->Add(std::move(f));
            return;
          }
          slot->store(to, std::memory_order_relaxed);
          report->refs_healed++;
          vr = heap_->regions().RegionFor(to);
          v = to;
        } else if (doomed_map[vr->index()] != 0 && kept[vr->index()] == 0) {
          // Another doomed region is still referenced from a kept survivor.
          kept[vr->index()] = 1;
          worklist.push_back(vr->index());
          result.push_back(vr->index());
          Finding f;
          f.kind = Finding::Kind::kStaleRef;
          f.region = vr->index();
          f.detail = Fmt("cascade: survivor %p keeps region of %p alive", obj, v);
          report->Add(std::move(f));
        }
        // This region is being pinned as tenured; make sure the edge is in
        // the target's remset so future collections scan it as a source.
        if (check_remsets_ && vr != r) {
          vr->RemsetAddRegion(r->index());
        }
      });
    });
  }
  return result;
}

void HeapVerifier::WalkRegionChecked(Region* region, const VerifyOptions& opts, bool repair,
                                     Report* report) {
  report->regions_walked++;
  char* p = region->begin();
  char* top = region->top();
  if (top < region->begin() ||
      (region->kind() != RegionKind::kHumongous && top > region->end())) {
    Finding f;
    f.kind = Finding::Kind::kRegionCorrupt;
    f.region = region->index();
    f.detail = Fmt("region %p has top out of bounds %p", region->begin(), top);
    report->Add(std::move(f));
    return;
  }
  while (p < top) {
    Object* obj = reinterpret_cast<Object*>(p);
    size_t before = report->findings.size();
    if (!PlausibleObject(obj, report, "walk", region->index())) {
      report->findings[before].kind = Finding::Kind::kRegionCorrupt;
      return;
    }
    size_t size = obj->size_bytes;
    if (size % kObjectAlignment != 0 || p + size > top) {
      Finding f;
      f.kind = Finding::Kind::kRegionCorrupt;
      f.region = region->index();
      f.detail = Fmt("object %p overruns region top %p", obj, top);
      report->Add(std::move(f));
      return;
    }
    if (obj->class_id != kFreeBlockClassId) {
      report->objects_walked++;
      uint64_t m = obj->LoadMark();
      if (markword::IsForwarded(m)) {
        Finding f;
        f.kind = Finding::Kind::kStaleForward;
        f.region = region->index();
        f.detail = Fmt("stale forwarded object %p (region %p)", obj, region->begin());
        report->Add(std::move(f));
        if (repair) {
          // The live copy is elsewhere; scrub so the region stays walkable.
          obj->StoreMark(0);
          obj->class_id = kFreeBlockClassId;
        }
      } else {
        // OLD-table cross-check: a live profiled object's context must
        // resolve in the table. Biased locking destroys the context bits, so
        // only unbiased objects are checkable.
        if (opts.context_known != nullptr && !markword::IsBiased(m)) {
          uint32_t context = markword::Context(m);
          if (context != 0 && !opts.context_known(context)) {
            Finding f;
            f.kind = Finding::Kind::kOldTableMiss;
            f.detail = Fmt("object %p context unknown to OLD table (%p)", obj,
                           reinterpret_cast<void*>(static_cast<uintptr_t>(context)));
            report->Add(std::move(f));
          }
        }
        heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
          Object* v = slot->load(std::memory_order_relaxed);
          if (v == nullptr) {
            return;
          }
          report->refs_checked++;
          size_t before_refs = report->findings.size();
          if (!PlausibleObject(v, report, "field target")) {
            if (repair) {
              // The target is gone; a null is the only safe value left.
              slot->store(nullptr, std::memory_order_relaxed);
              report->refs_nulled++;
            }
            (void)before_refs;
            return;
          }
          if (markword::IsForwarded(v->LoadMark())) {
            Object* to = markword::ForwardedPtr(v->LoadMark());
            bool to_ok = heap_->regions().Contains(to) &&
                         !markword::IsForwarded(to->LoadMark());
            Finding f;
            f.kind = Finding::Kind::kStaleForward;
            f.region = heap_->regions().RegionFor(v)->index();
            f.detail = Fmt("field %p -> forwarded object %p", slot, v);
            report->Add(std::move(f));
            if (repair && to_ok) {
              slot->store(to, std::memory_order_relaxed);
              report->refs_healed++;
            }
            return;
          }
          if (check_remsets_ && opts.check_remsets) {
            Region* vr = heap_->regions().RegionFor(v);
            if (vr != region && !(region->IsYoung() && vr->IsYoung()) &&
                !vr->RemsetContainsRegion(region->index())) {
              Finding f;
              f.kind = Finding::Kind::kMissingRemset;
              f.region = vr->index();
              f.detail = Fmt("missing remset entry for edge %p -> %p", obj, v);
              report->Add(std::move(f));
              if (repair) {
                vr->RemsetAddRegion(region->index());
              }
            }
          }
        });
      }
    }
    p += size;
  }
}

HeapVerifier::Report HeapVerifier::VerifySampledWalk(WorkerPool* workers,
                                                     const VerifyOptions& opts,
                                                     uint64_t pass, bool repair,
                                                     CancellationToken* cancel) {
  Report report;
  if (opts.on_pass_begin != nullptr) {
    opts.on_pass_begin();
  }
  RegionManager& regions = heap_->regions();
  ForEachSampledRegion(
      regions, workers, opts, pass, cancel, &report, [&](Region* r, Report* local) {
        if (r->IsFree() || r->kind() == RegionKind::kHumongousCont || r->IsUnscannable()) {
          return;
        }
        WalkRegionChecked(r, opts, repair, local);
      });
  // Roots point at plausible, unforwarded objects (always checked).
  auto check_root = [&](std::atomic<Object*>* slot, const char* what) {
    Object* v = slot->load(std::memory_order_relaxed);
    if (v == nullptr) {
      return;
    }
    report.refs_checked++;
    if (!PlausibleObject(v, &report, what)) {
      report.findings.back().kind = Finding::Kind::kRootCorrupt;
      return;
    }
    if (markword::IsForwarded(v->LoadMark())) {
      Finding f;
      f.kind = Finding::Kind::kRootCorrupt;
      f.detail = Fmt("root %p -> forwarded %p", slot, v);
      report.Add(std::move(f));
    }
  };
  heap_->roots().ForEach([&](std::atomic<Object*>* slot) { check_root(slot, "global root"); });
  if (safepoints_ != nullptr) {
    safepoints_->ForEachThread([&](MutatorContext* ctx) {
      for (auto& slot : ctx->local_roots) {
        check_root(&slot, "local root");
      }
    });
  }
  return report;
}

}  // namespace rolp
