// GC watchdog: a monitor thread that enforces per-phase pause deadlines and
// watches per-worker heartbeats, so a stuck worker or a runaway phase
// degrades the collector instead of hanging the VM.
//
// Escalation ladder on detection (DESIGN.md section 8):
//   1. log + crash-context snapshot of the stuck phase (always);
//   2. cancel the phase via its CancellationToken — the collector falls back
//      to a bounded STW mark-compact cycle;
//   3. requeue a dead worker's abandoned items onto survivors
//      (WorkerPool::ReclaimAbandonedItems);
//   4. the collector correlates overruns with survivor tracking and pushes
//      the ROLP profiler into degraded mode (TakeOverrunFlag);
//   5. if even the non-cancellable STW fallback overruns its deadline
//      `max_compact_overruns` times in a row, ROLP_CHECK-abort — the crash
//      handler dumps all registered context plus the fail-point catalog.
//
// Cost: disabled (ROLP_WATCHDOG=0) nothing is created — no thread, no
// atomics, no stores anywhere on GC paths. Enabled, task bodies publish
// liveness with at most one relaxed atomic store per step
// (WorkerPool::Heartbeat) and the monitor polls at a coarse interval.
#ifndef SRC_GC_WATCHDOG_GC_WATCHDOG_H_
#define SRC_GC_WATCHDOG_GC_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/gc/gc_metrics.h"
#include "src/gc/watchdog/cancellation.h"
#include "src/gc/worker_pool.h"
#include "src/util/clock.h"
#include "src/util/crash_context.h"

namespace rolp {

enum class GcPhase : uint8_t {
  kIdle,
  kMark,
  kScan,
  kEvacuate,
  kCompact,
  kVerify,
  kProfilerMerge,
  // Concurrent evacuation window (mutators running): copy workers drain the
  // collection set off-pause. Timed against the (longer) concurrent deadline;
  // cancellation self-forwards the rest and the final pause falls back to the
  // STW compaction ladder.
  kConcurrentEvac,
};

const char* GcPhaseName(GcPhase phase);

struct WatchdogConfig {
  bool enabled = true;            // ROLP_WATCHDOG (default on)
  uint64_t phase_deadline_ms = 5000;  // ROLP_GC_DEADLINE_MS
  // Per-worker heartbeat stall threshold; 0 means phase_deadline_ms / 2.
  uint64_t worker_stall_ms = 0;   // ROLP_GC_WORKER_STALL_MS
  // Deadline for the off-pause GcPhase::kConcurrentEvac window, which shares
  // the CPU with mutators and legitimately runs much longer than any pause
  // phase; 0 derives 4 * phase_deadline_ms. ROLP_GC_CONCURRENT_DEADLINE_MS.
  uint64_t concurrent_deadline_ms = 0;
  // Monitor poll period; 0 derives min(deadline, stall)/4, clamped [1, 100].
  uint64_t poll_interval_ms = 0;
  // Consecutive STW-fallback (kCompact) overruns tolerated before aborting.
  uint32_t max_compact_overruns = 3;

  static WatchdogConfig FromEnv();
  uint64_t EffectiveWorkerStallMs() const;
  uint64_t EffectivePollIntervalMs() const;
  uint64_t EffectiveConcurrentDeadlineMs() const;
  // The deadline the monitor holds `phase` against.
  uint64_t DeadlineMsFor(GcPhase phase) const;
};

struct WatchdogStats {
  uint64_t overruns_detected = 0;
  uint64_t phases_cancelled = 0;
  uint64_t worker_stalls_detected = 0;
  uint64_t items_requeued = 0;
  uint64_t last_overrun_elapsed_ns = 0;
};

class GcWatchdog {
 public:
  GcWatchdog(const WatchdogConfig& config, WorkerPool* pool);
  ~GcWatchdog();

  GcWatchdog(const GcWatchdog&) = delete;
  GcWatchdog& operator=(const GcWatchdog&) = delete;

  // Returns nullptr when ROLP_WATCHDOG=0: the disabled watchdog has no
  // representation at all, so it cannot cost anything.
  static std::unique_ptr<GcWatchdog> CreateFromEnv(WorkerPool* pool);

  // Phase bracketing, called from the GC pause thread. `token` may be null
  // for phases with no cooperative bail-out (the STW fallback).
  void BeginPhase(GcPhase phase, CancellationToken* token);
  void EndPhase();

  // True if any phase overran since the last call; used by the collector to
  // correlate overruns with survivor tracking (ladder rung 4).
  bool TakeOverrunFlag() { return overrun_since_take_.exchange(false, std::memory_order_relaxed); }

  WatchdogStats stats() const;
  const WatchdogConfig& config() const { return config_; }

 private:
  void MonitorLoop();
  // Runs the ladder for the current phase; caller holds mu_.
  void EscalateLocked(uint64_t now_ns);

  const WatchdogConfig config_;
  WorkerPool* const pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  // Current phase record (guarded by mu_).
  GcPhase phase_ = GcPhase::kIdle;
  uint64_t phase_start_ns_ = 0;
  CancellationToken* token_ = nullptr;
  bool escalated_ = false;
  uint32_t consecutive_compact_overruns_ = 0;
  // Per-item heartbeat tracking: last seen value + when it last advanced.
  struct HeartbeatTrack {
    uint64_t value = 0;
    uint64_t last_change_ns = 0;
    bool stall_reported = false;
  };
  std::vector<HeartbeatTrack> tracks_;
  WatchdogStats stats_;

  std::atomic<bool> overrun_since_take_{false};

  ScopedCrashContextProvider crash_provider_;
  std::thread monitor_;  // last member: joined in dtor before state dies
};

// Null-safe RAII phase bracket: the watchdog half is a no-op when `watchdog`
// is null (disabled). When `metrics` is given, the scope also charges the
// bracketing thread's CPU time (CLOCK_THREAD_CPUTIME_ID delta) to the phase's
// GcMetrics::PhaseCpuNs slot — independent of whether the watchdog exists, so
// per-phase CPU attribution works with ROLP_WATCHDOG=0 too.
class WatchdogPhaseScope {
 public:
  WatchdogPhaseScope(GcWatchdog* watchdog, GcPhase phase, CancellationToken* token,
                     GcMetrics* metrics = nullptr)
      : watchdog_(watchdog), metrics_(metrics), phase_(phase) {
    if (watchdog_ != nullptr) {
      watchdog_->BeginPhase(phase, token);
    }
    if (metrics_ != nullptr) {
      cpu_start_ns_ = ThreadCpuNs();
    }
  }
  ~WatchdogPhaseScope() {
    if (metrics_ != nullptr) {
      metrics_->AddPhaseCpuNs(static_cast<size_t>(phase_), ThreadCpuNs() - cpu_start_ns_);
    }
    if (watchdog_ != nullptr) {
      watchdog_->EndPhase();
    }
  }

  WatchdogPhaseScope(const WatchdogPhaseScope&) = delete;
  WatchdogPhaseScope& operator=(const WatchdogPhaseScope&) = delete;

 private:
  GcWatchdog* watchdog_;
  GcMetrics* metrics_;
  GcPhase phase_;
  uint64_t cpu_start_ns_ = 0;
};

}  // namespace rolp

#endif  // SRC_GC_WATCHDOG_GC_WATCHDOG_H_
