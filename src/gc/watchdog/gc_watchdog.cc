#include "src/gc/watchdog/gc_watchdog.h"

#include <algorithm>
#include <chrono>

#include "src/util/check.h"
#include "src/util/clock.h"
#include "src/util/env.h"
#include "src/util/log.h"
#include "src/util/trace.h"

namespace rolp {

const char* GcPhaseName(GcPhase phase) {
  switch (phase) {
    case GcPhase::kIdle:
      return "idle";
    case GcPhase::kMark:
      return "mark";
    case GcPhase::kScan:
      return "scan";
    case GcPhase::kEvacuate:
      return "evacuate";
    case GcPhase::kCompact:
      return "compact";
    case GcPhase::kVerify:
      return "verify";
    case GcPhase::kProfilerMerge:
      return "profiler-merge";
    case GcPhase::kConcurrentEvac:
      return "concurrent-evac";
  }
  return "?";
}

WatchdogConfig WatchdogConfig::FromEnv() {
  WatchdogConfig config;
  config.enabled = EnvBool("ROLP_WATCHDOG", true);
  int64_t deadline = EnvInt64("ROLP_GC_DEADLINE_MS", 5000);
  config.phase_deadline_ms = deadline > 0 ? static_cast<uint64_t>(deadline) : 5000;
  int64_t stall = EnvInt64("ROLP_GC_WORKER_STALL_MS", 0);
  config.worker_stall_ms = stall > 0 ? static_cast<uint64_t>(stall) : 0;
  int64_t conc = EnvInt64("ROLP_GC_CONCURRENT_DEADLINE_MS", 0);
  config.concurrent_deadline_ms = conc > 0 ? static_cast<uint64_t>(conc) : 0;
  return config;
}

uint64_t WatchdogConfig::EffectiveConcurrentDeadlineMs() const {
  if (concurrent_deadline_ms != 0) {
    return concurrent_deadline_ms;
  }
  return phase_deadline_ms * 4;
}

uint64_t WatchdogConfig::DeadlineMsFor(GcPhase phase) const {
  return phase == GcPhase::kConcurrentEvac ? EffectiveConcurrentDeadlineMs()
                                           : phase_deadline_ms;
}

uint64_t WatchdogConfig::EffectiveWorkerStallMs() const {
  if (worker_stall_ms != 0) {
    return worker_stall_ms;
  }
  return std::max<uint64_t>(1, phase_deadline_ms / 2);
}

uint64_t WatchdogConfig::EffectivePollIntervalMs() const {
  if (poll_interval_ms != 0) {
    return poll_interval_ms;
  }
  uint64_t derived = std::min(phase_deadline_ms, EffectiveWorkerStallMs()) / 4;
  return std::clamp<uint64_t>(derived, 1, 100);
}

std::unique_ptr<GcWatchdog> GcWatchdog::CreateFromEnv(WorkerPool* pool) {
  WatchdogConfig config = WatchdogConfig::FromEnv();
  if (!config.enabled) {
    return nullptr;
  }
  return std::make_unique<GcWatchdog>(config, pool);
}

GcWatchdog::GcWatchdog(const WatchdogConfig& config, WorkerPool* pool)
    : config_(config),
      pool_(pool),
      crash_provider_("gc-watchdog",
                      [this](std::FILE* out) {
                        // Crash-time: read fields without mu_ (the failing
                        // thread may be the monitor itself, holding it).
                        std::fprintf(out,
                                     "  phase=%s elapsed_ms=%.1f deadline_ms=%llu\n"
                                     "  overruns=%llu cancelled=%llu worker_stalls=%llu "
                                     "requeued=%llu compact_overruns_in_a_row=%u\n",
                                     GcPhaseName(phase_),
                                     phase_ == GcPhase::kIdle
                                         ? 0.0
                                         : NsToMs(NowNs() - phase_start_ns_),
                                     (unsigned long long)config_.DeadlineMsFor(phase_),
                                     (unsigned long long)stats_.overruns_detected,
                                     (unsigned long long)stats_.phases_cancelled,
                                     (unsigned long long)stats_.worker_stalls_detected,
                                     (unsigned long long)stats_.items_requeued,
                                     consecutive_compact_overruns_);
                      }) {
  ROLP_CHECK(pool_ != nullptr);
  tracks_.resize(pool_->size());
  pool_->EnableHeartbeats(true);
  monitor_ = std::thread([this] { MonitorLoop(); });
}

GcWatchdog::~GcWatchdog() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  monitor_.join();
}

void GcWatchdog::BeginPhase(GcPhase phase, CancellationToken* token) {
  uint64_t now = NowNs();
  // Fires on every watched phase, so even healthy runs carry watchdog
  // coverage markers in the trace (arg = GcPhase ordinal).
  ROLP_TRACE_INSTANT("watchdog", "watchdog.phase.begin", static_cast<uint64_t>(phase));
  std::lock_guard<std::mutex> guard(mu_);
  phase_ = phase;
  phase_start_ns_ = now;
  token_ = token;
  escalated_ = false;
  for (uint32_t i = 0; i < tracks_.size(); i++) {
    tracks_[i].value = pool_->HeartbeatValue(i);
    tracks_[i].last_change_ns = now;
    tracks_[i].stall_reported = false;
  }
}

void GcWatchdog::EndPhase() {
  std::lock_guard<std::mutex> guard(mu_);
  if (phase_ == GcPhase::kCompact && !escalated_) {
    consecutive_compact_overruns_ = 0;
  }
  phase_ = GcPhase::kIdle;
  token_ = nullptr;
  escalated_ = false;
}

WatchdogStats GcWatchdog::stats() const {
  std::lock_guard<std::mutex> guard(mu_);
  return stats_;
}

void GcWatchdog::EscalateLocked(uint64_t now_ns) {
  escalated_ = true;
  uint64_t elapsed = now_ns - phase_start_ns_;
  stats_.overruns_detected++;
  stats_.last_overrun_elapsed_ns = elapsed;
  overrun_since_take_.store(true, std::memory_order_relaxed);
  ROLP_TRACE_INSTANT("watchdog", "watchdog.overrun", static_cast<uint64_t>(phase_));

  // Rung 1: log with enough state to diagnose post-mortem (the same data is
  // exported via the "gc-watchdog" crash-context section if we later abort).
  ROLP_LOG_ERROR("GcWatchdog: GC phase '%s' overran deadline (%.1f ms > %llu ms)",
                 GcPhaseName(phase_), NsToMs(elapsed),
                 (unsigned long long)config_.DeadlineMsFor(phase_));
  for (const WorkerActivity& a : pool_->SnapshotWorkerActivity()) {
    ROLP_LOG_ERROR("GcWatchdog:   worker alive=%d item=%lld heartbeat=%llu", a.alive ? 1 : 0,
                   (long long)a.current_item, (unsigned long long)a.heartbeat);
  }

  // Rung 2: cancel the phase cooperatively; the collector falls back to a
  // bounded STW mark-compact cycle.
  if (token_ != nullptr) {
    token_->Cancel();
    stats_.phases_cancelled++;
    ROLP_TRACE_INSTANT("watchdog", "watchdog.phase.cancelled",
                       static_cast<uint64_t>(phase_));
  }

  // Rung 3: hand a dead worker's abandoned items to survivors so the phase
  // (or its bail-out path) can still finish.
  stats_.items_requeued += pool_->ReclaimAbandonedItems();

  // Rung 5: the STW fallback has no cancellation token; if even it keeps
  // blowing its deadline, the heap is not collectable in bounded time —
  // abort with full context rather than hang a latency-sensitive service.
  if (phase_ == GcPhase::kCompact) {
    consecutive_compact_overruns_++;
    if (consecutive_compact_overruns_ >= config_.max_compact_overruns) {
      ROLP_CHECK_MSG(false,
                     "GcWatchdog: STW fallback overran its deadline repeatedly; "
                     "GC cannot complete in bounded time");
    }
  }
}

void GcWatchdog::MonitorLoop() {
  const auto poll = std::chrono::milliseconds(config_.EffectivePollIntervalMs());
  const uint64_t stall_ns = MsToNs(static_cast<double>(config_.EffectiveWorkerStallMs()));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, poll, [&] { return stop_; });
    if (stop_) {
      return;
    }
    if (phase_ == GcPhase::kIdle) {
      continue;
    }
    uint64_t now = NowNs();

    // Per-worker checks: heartbeat stalls (early warning before the phase
    // deadline) and dead workers (requeue immediately, rung 3).
    bool any_dead_with_item = false;
    std::vector<WorkerActivity> activity = pool_->SnapshotWorkerActivity();
    for (const WorkerActivity& a : activity) {
      if (!a.alive) {
        any_dead_with_item = any_dead_with_item || a.current_item >= 0;
        continue;
      }
      if (a.current_item < 0) {
        continue;  // idle worker, nothing to watch
      }
      HeartbeatTrack& track = tracks_[a.current_item];
      if (a.heartbeat != track.value) {
        track.value = a.heartbeat;
        track.last_change_ns = now;
        track.stall_reported = false;
      } else if (!track.stall_reported && now - track.last_change_ns > stall_ns) {
        track.stall_reported = true;
        stats_.worker_stalls_detected++;
        ROLP_LOG_WARN(
            "GcWatchdog: worker on item %lld has not heartbeat for %.1f ms "
            "(phase '%s')",
            (long long)a.current_item, NsToMs(now - track.last_change_ns),
            GcPhaseName(phase_));
      }
    }
    if (any_dead_with_item) {
      uint32_t requeued = pool_->ReclaimAbandonedItems();
      if (requeued > 0) {
        stats_.items_requeued += requeued;
        ROLP_LOG_WARN("GcWatchdog: requeued %u item(s) abandoned by dead worker(s)",
                      requeued);
      }
    }

    if (!escalated_ &&
        now - phase_start_ns_ > MsToNs(static_cast<double>(config_.DeadlineMsFor(phase_)))) {
      EscalateLocked(now);
    }
  }
}

}  // namespace rolp
