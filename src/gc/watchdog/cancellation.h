// Cooperative cancellation token threaded through cancellable GC phases
// (parallel marking, evacuation copy). The watchdog sets it when a phase
// overruns its deadline; phase loops poll it at coarse granularity and bail
// out along a path that leaves the heap parsable (marking simply stops —
// the bitmap is discarded by the STW fallback; evacuation switches to
// self-forwarding in place, the same path used for to-space exhaustion).
#ifndef SRC_GC_WATCHDOG_CANCELLATION_H_
#define SRC_GC_WATCHDOG_CANCELLATION_H_

#include <atomic>

namespace rolp {

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool IsCancelled() const { return cancelled_.load(std::memory_order_relaxed); }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace rolp

#endif  // SRC_GC_WATCHDOG_CANCELLATION_H_
