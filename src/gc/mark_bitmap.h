// Side mark bitmap: one bit per 8 heap bytes, covering the whole reservation.
// Marking is an atomic test-and-set so parallel markers claim objects safely.
#ifndef SRC_GC_MARK_BITMAP_H_
#define SRC_GC_MARK_BITMAP_H_

#include <atomic>
#include <cstring>
#include <memory>

#include "src/heap/object.h"
#include "src/util/check.h"

namespace rolp {

class MarkBitmap {
 public:
  MarkBitmap(const char* heap_base, size_t heap_bytes) : base_(heap_base) {
    num_words_ = (heap_bytes / kObjectAlignment + 63) / 64;
    bits_ = std::make_unique<std::atomic<uint64_t>[]>(num_words_);
    ClearAll();
  }

  // Returns true if this call marked the object (false if already marked).
  bool Mark(const Object* obj) {
    size_t bit = BitIndexFor(obj);
    std::atomic<uint64_t>& word = bits_[bit / 64];
    uint64_t mask = 1ULL << (bit % 64);
    if ((word.load(std::memory_order_relaxed) & mask) != 0) {
      return false;
    }
    return (word.fetch_or(mask, std::memory_order_relaxed) & mask) == 0;
  }

  bool IsMarked(const Object* obj) const {
    size_t bit = BitIndexFor(obj);
    return (bits_[bit / 64].load(std::memory_order_relaxed) & (1ULL << (bit % 64))) != 0;
  }

  void Clear(const Object* obj) {
    size_t bit = BitIndexFor(obj);
    bits_[bit / 64].fetch_and(~(1ULL << (bit % 64)), std::memory_order_relaxed);
  }

  void ClearAll() {
    std::memset(reinterpret_cast<void*>(bits_.get()), 0,
                num_words_ * sizeof(std::atomic<uint64_t>));
  }

  // Clears all bits covering [begin, end). Both bounds must be 512-byte
  // aligned relative to the heap base in practice (region boundaries), so the
  // word-granular memset below is exact.
  void ClearRange(const char* begin, const char* end) {
    size_t first_bit = static_cast<size_t>(begin - base_) / kObjectAlignment;
    size_t last_bit = static_cast<size_t>(end - base_) / kObjectAlignment;
    ROLP_DCHECK(first_bit % 64 == 0 && last_bit % 64 == 0);
    std::memset(reinterpret_cast<void*>(bits_.get() + first_bit / 64), 0,
                (last_bit - first_bit) / 64 * sizeof(std::atomic<uint64_t>));
  }

 private:
  size_t BitIndexFor(const Object* obj) const {
    const char* p = reinterpret_cast<const char*>(obj);
    ROLP_DCHECK(p >= base_);
    return static_cast<size_t>(p - base_) / kObjectAlignment;
  }

  const char* base_;
  size_t num_words_;
  std::unique_ptr<std::atomic<uint64_t>[]> bits_;
};

}  // namespace rolp

#endif  // SRC_GC_MARK_BITMAP_H_
