#include "src/gc/cms_collector.h"

#include <algorithm>
#include <mutex>

#include "src/gc/mark_compact.h"
#include "src/util/clock.h"
#include "src/util/fault_injection.h"
#include "src/util/log.h"
#include "src/util/trace.h"

namespace rolp {

namespace {
constexpr int kMaxAllocationAttempts = 16;
constexpr size_t kConcurrentWorkPerRefill = 256 * 1024;  // bytes of marking per TLAB refill
}  // namespace

CmsCollector::CmsCollector(Heap* heap, const GcConfig& config, SafepointManager* safepoints)
    : Collector(heap, config, safepoints),
      bitmap_(heap->regions().heap_base(), heap->regions().committed_bytes()) {
  size_t total = heap->regions().num_regions();
  eden_target_ = config_.young_regions != 0
                     ? config_.young_regions
                     : static_cast<size_t>(static_cast<double>(total) *
                                           heap->config().young_fraction);
  if (eden_target_ < 1) {
    eden_target_ = 1;
  }
  heap->SetBarrierSet(std::make_unique<CmsBarrierSet>(&heap->regions(), this));
}

double CmsCollector::TenuredOccupancy() const {
  const RegionManager& regions = heap_->regions();
  return static_cast<double>(regions.tenured_regions()) /
         static_cast<double>(regions.num_regions());
}

char* CmsCollector::AllocateOld(size_t bytes, size_t* actual) {
  char* p = old_space_.Allocate(bytes, actual);
  if (p != nullptr) {
    return p;
  }
  // Pause-time promotion destination: may dip into the evacuation reserve.
  Region* fresh =
      heap_->regions().AllocateRegion(RegionKind::kOld, 0, /*gc_internal=*/true);
  if (fresh == nullptr) {
    return nullptr;
  }
  old_space_.AddRegion(fresh);
  return old_space_.Allocate(bytes, actual);
}

Region* CmsCollector::RefillTlab(MutatorContext* ctx) {
  for (int attempt = 0; attempt < kMaxAllocationAttempts; attempt++) {
    if (phase_.load(std::memory_order_relaxed) != Phase::kIdle) {
      ConcurrentWork(kConcurrentWorkPerRefill);
    }
    if (eden_in_use_.load(std::memory_order_relaxed) < eden_target_) {
      Region* r = heap_->regions().AllocateRegion(RegionKind::kEden);
      if (r != nullptr) {
        eden_in_use_.fetch_add(1, std::memory_order_relaxed);
        ctx->tlab.Release();
        ctx->tlab.Install(r);
        return r;
      }
      TryCollect(ctx, /*force_full=*/attempt >= 2);
      continue;
    }
    TryCollect(ctx, /*force_full=*/false);
  }
  return nullptr;
}

AllocResult CmsCollector::AllocateSlow(MutatorContext* ctx, const AllocRequest& req) {
  if (heap_->IsHumongousSize(req.total_bytes)) {
    int attempt = 0;
    for (; attempt < kMaxAllocationAttempts; attempt++) {
      Region* head = heap_->regions().AllocateHumongous(req.total_bytes);
      if (head != nullptr) {
        Object* obj = heap_->InitializeObject(head->begin(), req.cls, req.total_bytes,
                                              req.array_length, req.context);
        if (phase_.load(std::memory_order_relaxed) != Phase::kIdle) {
          bitmap_.Mark(obj);  // allocate black during a cycle
        }
        return AllocResult::Ok(obj, static_cast<uint8_t>(attempt));
      }
      if (!TryCollect(ctx, /*force_full=*/attempt >= 1)) {
        AllocationBackoff(attempt);
      }
    }
    return AllocResult::OutOfMemory(static_cast<uint8_t>(attempt));
  }
  // CMS has no dynamic generations; every non-humongous allocation is young.
  int attempt = 0;
  for (; attempt < kMaxAllocationAttempts; attempt++) {
    char* mem = ctx->tlab.Allocate(req.total_bytes);
    if (mem != nullptr) {
      return AllocResult::Ok(heap_->InitializeObject(mem, req.cls, req.total_bytes,
                                                     req.array_length, req.context),
                             static_cast<uint8_t>(attempt));
    }
    if (RefillTlab(ctx) == nullptr) {
      return AllocResult::OutOfMemory(static_cast<uint8_t>(attempt));
    }
  }
  return AllocResult::OutOfMemory(static_cast<uint8_t>(attempt));
}

bool CmsCollector::TryCollect(MutatorContext* ctx, bool force_full) {
  if (!safepoints_->BeginOperation(ctx)) {
    return false;
  }
  if (force_full) {
    DoFull(NowNs());
  } else {
    DoYoung(ctx);
  }
  safepoints_->EndOperation(ctx);
  return true;
}

void CmsCollector::PreparePause() {
  safepoints_->ForEachThread([](MutatorContext* t) { t->tlab.Release(); });
  eden_in_use_.store(0, std::memory_order_relaxed);
}

void CmsCollector::DoYoung(MutatorContext* ctx) {
  uint64_t t0 = NowNs();
  PreparePause();
  RegionManager& regions = heap_->regions();
  bool cycle_active = phase_.load(std::memory_order_relaxed) != Phase::kIdle;

  std::vector<Region*> cset;
  const bool check_pinned = !regions.UnscannableQuarantined().empty();
  regions.ForEachRegion([&](Region* r) {
    if (r->IsYoung()) {
      if (check_pinned && regions.PinnedByQuarantine(r)) {
        // An unscannable quarantined region holds edges into this region that
        // the scavenge cannot discover; keep the region in place, and record
        // its outgoing edges (never recorded while young) so references into
        // this pause's collection set are discovered.
        regions.RetireToOld(r);
        r->set_live_bytes(r->used());
        RecordCrossRegionEdges(r);
        return;
      }
      r->set_in_cset(true);
      cset.push_back(r);
    }
  });

  // Single-threaded scavenge with the usual CAS-free forwarding (one worker).
  Region* survivor_buf = nullptr;
  std::vector<Object*> scan_stack;
  std::vector<std::pair<Object*, uint64_t>> preserved;  // self-forwarded marks
  bool failed = false;
  uint64_t copied = 0;
  uint64_t promoted = 0;
  bool survivor_tracking = profiler_ != nullptr && profiler_->SurvivorTrackingEnabled();

  auto evacuate = [&](Object* obj) -> Object* {
    uint64_t m = obj->LoadMark();
    if (markword::IsForwarded(m)) {
      return markword::ForwardedPtr(m);
    }
    uint32_t new_age = markword::Age(m) + 1;
    if (new_age > markword::kMaxAge) {
      new_age = markword::kMaxAge;
    }
    size_t size = obj->size_bytes;
    char* to = nullptr;
    size_t actual = size;
    bool promote = new_age >= config_.tenuring_threshold;
    if (!promote) {
      if (survivor_buf != nullptr) {
        to = survivor_buf->BumpAlloc(size);
      }
      if (to == nullptr) {
        survivor_buf =
            regions.AllocateRegion(RegionKind::kSurvivor, 0, /*gc_internal=*/true);
        to = survivor_buf != nullptr ? survivor_buf->BumpAlloc(size) : nullptr;
      }
      if (to == nullptr) {
        promote = true;  // no survivor space: tenure early
      }
    }
    if (promote && to == nullptr) {
      to = AllocateOld(size, &actual);
    }
    if (to == nullptr) {
      // Promotion failure (fragmentation or exhaustion): self-forward.
      preserved.emplace_back(obj, m);
      obj->StoreMark(markword::EncodeForwarded(obj));
      failed = true;
      scan_stack.push_back(obj);
      return obj;
    }
    std::memcpy(to, obj, size);
    Object* copy = reinterpret_cast<Object*>(to);
    copy->size_bytes = static_cast<uint32_t>(actual);  // may absorb a free sliver
    copy->StoreMark(markword::SetAge(m, new_age));
    obj->StoreMark(markword::EncodeForwarded(copy));
    copied += size;
    if (promote) {
      promoted += size;
    }
    if (cycle_active) {
      if (promote) {
        // Promoted objects enter the old space mid-cycle: allocate black and
        // re-queue so their fields get traced.
        bitmap_.Mark(copy);
        gray_queue_.push_back(copy);
      } else if (bitmap_.IsMarked(obj)) {
        bitmap_.Mark(copy);
      }
    }
    if (survivor_tracking && profiler_ != nullptr) {
      profiler_->OnSurvivor(0, m);
    }
    scan_stack.push_back(copy);
    return copy;
  };

  auto process_slot = [&](std::atomic<Object*>* slot, Region* src_region) {
    Object* v = slot->load(std::memory_order_relaxed);
    if (v == nullptr) {
      return;
    }
    Region* vr = regions.RegionFor(v);
    if (vr->in_cset()) {
      v = evacuate(v);
      slot->store(v, std::memory_order_relaxed);
      vr = regions.RegionFor(v);
    }
    if (src_region != nullptr && vr != src_region &&
        !(src_region->IsYoung() && vr->IsYoung())) {
      vr->RemsetAddRegion(src_region->index());
    }
  };

  // Roots.
  heap_->roots().ForEach([&](std::atomic<Object*>* slot) { process_slot(slot, nullptr); });
  safepoints_->ForEachThread([&](MutatorContext* t) {
    for (auto& slot : t->local_roots) {
      process_slot(&slot, nullptr);
    }
  });
  // Remembered-set sources.
  std::vector<bool> seen(regions.num_regions(), false);
  for (Region* r : cset) {
    r->ForEachRemsetRegion([&](uint32_t idx) {
      if (seen[idx]) {
        return;
      }
      seen[idx] = true;
      Region* s = &regions.region(idx);
      if (s->IsFree() || s->in_cset() || s->kind() == RegionKind::kHumongousCont ||
          s->IsUnscannable()) {
        return;
      }
      s->ForEachObject([&](Object* obj) {
        heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) { process_slot(slot, s); });
      });
    });
  }
  // Transitive closure.
  while (!scan_stack.empty()) {
    Object* obj = scan_stack.back();
    scan_stack.pop_back();
    Region* obj_region = regions.RegionFor(obj);
    heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) { process_slot(slot, obj_region); });
  }

  // The concurrent cycle's worklists may reference moved objects.
  if (cycle_active) {
    RemapMarkStructures();
  }
  for (auto& [obj, mark] : preserved) {
    obj->StoreMark(mark);
  }
  std::vector<Region*> doomed;
  for (Region* r : cset) {
    bool has_failures = false;
    for (auto& [obj, mark] : preserved) {
      if (regions.RegionFor(obj) == r) {
        has_failures = true;
        break;
      }
    }
    if (has_failures) {
      r->set_in_cset(false);
      regions.RetireToOld(r);
      ScrubRetiredEvacFailure(r);
    } else {
      doomed.push_back(r);
    }
  }
  if (verify_options_.enabled() && !doomed.empty()) {
    // Post-evacuation check before the doomed regions' memory is recycled.
    // The scavenge is conservative (it evacuates everything reachable from
    // roots and remset sources, live or not), so no liveness filter applies:
    // any surviving reference into the collection set is a genuine miss.
    uint64_t v0 = NowNs();
    CancellationToken verify_cancel;
    WatchdogPhaseScope vscope(watchdog_.get(), GcPhase::kVerify, &verify_cancel, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.verify");
    HeapVerifier verifier(heap_, safepoints_);
    HeapVerifier::Report report = verifier.VerifyCollectionSet(
        doomed, workers_.get(), verify_options_, NextVerifyPass(), &verify_cancel,
        /*live_filter=*/nullptr);
    if (ApplyVerification("cms-post-evacuation", report)) {
      QuarantineFlagged(&verifier, doomed, &report);
    }
    metrics_.AddPauseVerifyNs(NowNs() - v0);
  }
  for (Region* r : doomed) {
    if (r->quarantined()) {
      continue;
    }
    bitmap_.ClearRange(r->begin(), r->end());
    regions.FreeRegion(r);
  }

  metrics_.AddBytesCopied(copied);
  metrics_.AddBytesPromoted(promoted);
  metrics_.IncrementGcCycles();
  heap_->UpdateMaxUsedBytes();
  uint64_t t1 = NowNs();
  metrics_.RecordPause({t0, t1 - t0, PauseKind::kYoung, copied});
  Trace::EmitComplete("gc", "gc.pause", t0, t1 - t0,
                      static_cast<uint64_t>(PauseKind::kYoung));
  if (profiler_ != nullptr) {
    profiler_->OnGcEnd({metrics_.GcCycles(), t1 - t0, PauseKind::kYoung});
  }

  if (failed) {
    ROLP_LOG_INFO("cms promotion failure; full compaction");
    DoFull(NowNs());
    return;
  }

  // Concurrent-cycle transitions (still inside the pause).
  Phase phase = phase_.load(std::memory_order_relaxed);
  if (phase == Phase::kIdle && TenuredOccupancy() >= config_.cms_trigger_occupancy) {
    MaybeStartCycleLocked();
  } else if (phase == Phase::kSweepPending) {
    RemarkAndSweep(NowNs());
  }
}

void CmsCollector::MaybeStartCycleLocked() {
  // Initial mark (piggybacked on the young pause): clear marks, reset old
  // live accounting, gray all roots.
  bitmap_.ClearAll();
  heap_->regions().ForEachRegion([](Region* r) {
    if (!r->IsFree()) {
      r->set_live_bytes(0);
    }
  });
  std::lock_guard<SpinLock> guard(gray_lock_);
  heap_->roots().ForEach([&](std::atomic<Object*>* slot) {
    Object* v = slot->load(std::memory_order_relaxed);
    if (v != nullptr) {
      gray_queue_.push_back(v);
    }
  });
  safepoints_->ForEachThread([&](MutatorContext* t) {
    for (auto& slot : t->local_roots) {
      Object* v = slot.load(std::memory_order_relaxed);
      if (v != nullptr) {
        gray_queue_.push_back(v);
      }
    }
  });
  phase_.store(Phase::kMarking, std::memory_order_release);
}

void CmsCollector::ConcurrentWork(size_t budget_bytes) {
  if (!work_lock_.try_lock()) {
    return;
  }
  uint64_t t0 = NowNs();
  size_t traced = 0;
  while (traced < budget_bytes && phase_.load(std::memory_order_relaxed) == Phase::kMarking) {
    if (mark_stack_.empty()) {
      std::lock_guard<SpinLock> guard(gray_lock_);
      if (gray_queue_.empty()) {
        // Tentatively done; the remark pause will confirm.
        phase_.store(Phase::kSweepPending, std::memory_order_release);
        break;
      }
      for (Object* obj : gray_queue_) {
        if (bitmap_.Mark(obj)) {
          heap_->regions().RegionFor(obj)->AddLiveBytes(obj->size_bytes);
          mark_stack_.push_back(obj);
        }
      }
      gray_queue_.clear();
      continue;
    }
    Object* obj = mark_stack_.back();
    mark_stack_.pop_back();
    traced += obj->size_bytes;
    heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
      Object* v = slot->load(std::memory_order_relaxed);
      if (v != nullptr && bitmap_.Mark(v)) {
        heap_->regions().RegionFor(v)->AddLiveBytes(v->size_bytes);
        mark_stack_.push_back(v);
      }
    });
  }
  metrics_.AddConcurrentWorkNs(NowNs() - t0);
  work_lock_.unlock();
}

void CmsCollector::RemapMarkStructures() {
  // Runs inside the young pause, before collection-set regions are freed:
  // forwarded entries follow their objects; unforwarded entries still inside
  // the collection set are dead young objects and are dropped (incremental-
  // update marking does not need to trace from dead sources).
  RegionManager& regions = heap_->regions();
  auto remap = [&](std::vector<Object*>& vec) {
    size_t out = 0;
    for (Object* obj : vec) {
      uint64_t m = obj->LoadMark();
      if (markword::IsForwarded(m)) {
        Object* to = markword::ForwardedPtr(m);
        if (to != obj) {
          vec[out++] = to;
          continue;
        }
        // Self-forwarded (evacuation failure): stays in place, keep it.
        vec[out++] = obj;
        continue;
      }
      if (regions.RegionFor(obj)->in_cset()) {
        continue;  // dead young object; drop
      }
      vec[out++] = obj;
    }
    vec.resize(out);
  };
  std::lock_guard<SpinLock> guard(gray_lock_);
  remap(gray_queue_);
  remap(mark_stack_);
}

void CmsCollector::RemarkAndSweep(uint64_t t0) {
  // Final remark: rescan roots, drain everything (world is stopped).
  {
    std::lock_guard<SpinLock> guard(gray_lock_);
    heap_->roots().ForEach([&](std::atomic<Object*>* slot) {
      Object* v = slot->load(std::memory_order_relaxed);
      if (v != nullptr) {
        gray_queue_.push_back(v);
      }
    });
    safepoints_->ForEachThread([&](MutatorContext* t) {
      for (auto& slot : t->local_roots) {
        Object* v = slot.load(std::memory_order_relaxed);
        if (v != nullptr) {
          gray_queue_.push_back(v);
        }
      }
    });
  }
  phase_.store(Phase::kMarking, std::memory_order_relaxed);
  while (phase_.load(std::memory_order_relaxed) == Phase::kMarking) {
    ConcurrentWork(SIZE_MAX / 2);
  }

  // Sweep: rebuild the free lists from the marks; fully dead regions are
  // returned whole.
  RegionManager& regions = heap_->regions();
  old_space_.Clear();
  std::vector<Region*> to_free;
  regions.ForEachRegion([&](Region* r) {
    if (r->quarantined()) {
      return;  // pinned: never swept, freed, or free-listed
    }
    if (r->kind() == RegionKind::kHumongous) {
      Object* head = reinterpret_cast<Object*>(r->begin());
      if (!bitmap_.IsMarked(head)) {
        to_free.push_back(r);
      }
      return;
    }
    if (r->kind() != RegionKind::kOld) {
      return;
    }
    bool any_live = false;
    char* run_start = nullptr;
    std::vector<std::pair<char*, size_t>> runs;
    char* p = r->begin();
    char* top = r->top();
    while (p < top) {
      Object* obj = reinterpret_cast<Object*>(p);
      size_t size = obj->size_bytes;
      bool live = obj->class_id != kFreeBlockClassId && bitmap_.IsMarked(obj);
      if (live) {
        any_live = true;
        if (run_start != nullptr) {
          runs.emplace_back(run_start, static_cast<size_t>(p - run_start));
          run_start = nullptr;
        }
      } else if (run_start == nullptr) {
        run_start = p;
      }
      p += size;
    }
    if (run_start != nullptr) {
      runs.emplace_back(run_start, static_cast<size_t>(p - run_start));
    }
    // The tail beyond top (only possible for former bump regions converted to
    // old after an evacuation failure) stays unusable until a full GC.
    if (!any_live) {
      to_free.push_back(r);
      return;
    }
    for (auto& [start, bytes] : runs) {
      if (bytes >= FreeListSpace::kMinBlock) {
        old_space_.AddFreeBlock(start, bytes);
      } else if (bytes > 0) {
        // Sliver: format it so walks stay valid, but do not link it.
        FreeListSpace::FormatFreeBlock(start, bytes);
      }
    }
  });
  for (Region* r : to_free) {
    bitmap_.ClearRange(r->begin(),
                       r->kind() == RegionKind::kHumongous
                           ? r->begin() + static_cast<size_t>(r->humongous_span()) *
                                              regions.region_bytes()
                           : r->end());
    regions.FreeRegion(r);
  }
  phase_.store(Phase::kIdle, std::memory_order_release);
  heap_->UpdateMaxUsedBytes();
  uint64_t t1 = NowNs();
  metrics_.RecordPause({t0, t1 - t0, PauseKind::kCmsRemark, 0});
  Trace::EmitComplete("gc", "gc.pause", t0, t1 - t0,
                      static_cast<uint64_t>(PauseKind::kCmsRemark));
  metrics_.IncrementGcCycles();
  if (profiler_ != nullptr) {
    profiler_->OnGcEnd({metrics_.GcCycles(), t1 - t0, PauseKind::kCmsRemark});
  }
}

void CmsCollector::DoFull(uint64_t t0) {
  PreparePause();
  // Abandon any in-flight concurrent cycle; compaction recomputes liveness.
  {
    std::lock_guard<SpinLock> guard(gray_lock_);
    gray_queue_.clear();
  }
  mark_stack_.clear();
  phase_.store(Phase::kIdle, std::memory_order_relaxed);
  old_space_.Clear();

  MarkCompact compactor(heap_, &bitmap_);
  uint64_t moved;
  {
    // Non-cancellable STW fallback; the watchdog times it and aborts on
    // repeated overruns (escalation ladder rung 5).
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kCompact, nullptr, &metrics_);
    (void)ROLP_FAULT_POINT("gc.phase.compact.stall");
    moved = compactor.Collect(safepoints_, workers_.get());
  }
  full_gcs_.fetch_add(1, std::memory_order_relaxed);
  metrics_.AddBytesCopied(moved);
  metrics_.IncrementGcCycles();
  heap_->UpdateMaxUsedBytes();
  uint64_t t1 = NowNs();
  metrics_.RecordPause({t0, t1 - t0, PauseKind::kFull, moved});
  Trace::EmitComplete("gc", "gc.pause", t0, t1 - t0,
                      static_cast<uint64_t>(PauseKind::kFull));
  if (profiler_ != nullptr) {
    profiler_->OnGcEnd({metrics_.GcCycles(), t1 - t0, PauseKind::kFull});
  }
}

void CmsCollector::CollectFull(MutatorContext* ctx) {
  while (!safepoints_->BeginOperation(ctx)) {
  }
  DoFull(NowNs());
  safepoints_->EndOperation(ctx);
}

}  // namespace rolp
