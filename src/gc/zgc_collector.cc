#include "src/gc/zgc_collector.h"

#include <cstring>
#include <mutex>

#include "src/gc/mark_compact.h"
#include "src/util/clock.h"
#include "src/util/fault_injection.h"
#include "src/util/log.h"
#include "src/util/trace.h"

namespace rolp {

namespace {
constexpr int kMaxAllocationAttempts = 32;
}  // namespace

ZgcCollector::ZgcCollector(Heap* heap, const GcConfig& config, SafepointManager* safepoints)
    : Collector(heap, config, safepoints),
      bitmap_(heap->regions().heap_base(), heap->regions().committed_bytes()) {
  heap->SetBarrierSet(std::make_unique<ZBarrierSet>(this));
}

double ZgcCollector::Occupancy() const {
  RegionManager& regions = const_cast<Heap*>(heap_)->regions();
  return 1.0 - static_cast<double>(regions.free_regions()) /
                   static_cast<double>(regions.num_regions());
}

char* ZgcCollector::AllocToSpace(size_t bytes) {
  std::lock_guard<SpinLock> guard(to_space_lock_);
  if (to_space_region_ != nullptr) {
    char* p = to_space_region_->AtomicBumpAlloc(bytes);
    if (p != nullptr) {
      return p;
    }
  }
  // Relocation destination: may dip into the evacuation reserve.
  Region* fresh =
      heap_->regions().AllocateRegion(RegionKind::kOld, 0, /*gc_internal=*/true);
  if (fresh == nullptr) {
    return nullptr;
  }
  to_space_region_ = fresh;
  return fresh->AtomicBumpAlloc(bytes);
}

Object* ZgcCollector::Relocate(Object* obj, bool* copied_here) {
  while (true) {
    uint64_t m = obj->mark.load(std::memory_order_acquire);
    if (markword::IsForwarded(m)) {
      return markword::ForwardedPtr(m);
    }
    size_t size = obj->size_bytes;
    char* to = AllocToSpace(size);
    if (to == nullptr) {
      // Relocation stall: leave the object in place; FinishCycle will keep
      // its region alive.
      return obj;
    }
    std::memcpy(to, obj, size);
    Object* copy = reinterpret_cast<Object*>(to);
    copy->StoreMark(m);
    if (obj->mark.compare_exchange_strong(m, markword::EncodeForwarded(copy),
                                          std::memory_order_acq_rel)) {
      relocated_bytes_.fetch_add(size, std::memory_order_relaxed);
      metrics_.AddBytesCopied(size);
      if (copied_here != nullptr) {
        *copied_here = true;
      }
      return copy;
    }
    // Lost the race; the duplicate copy in to-space stays as (walkable) dead
    // data and is reclaimed next cycle.
  }
}

Object* ZgcCollector::LoadBarrier(std::atomic<Object*>* slot) {
  Object* v = slot->load(std::memory_order_acquire);
  if (v == nullptr) {
    return nullptr;
  }
  Phase phase = phase_.load(std::memory_order_acquire);
  if (phase == Phase::kRelocating || phase == Phase::kRemapping) {
    Region* r = heap_->regions().RegionFor(v);
    if (r->in_cset()) {
      Object* healed = Relocate(v);
      if (healed != v) {
        if (slot->compare_exchange_strong(v, healed, std::memory_order_acq_rel)) {
          barrier_healed_slots_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return healed;
    }
  }
  return v;
}

Region* ZgcCollector::RefillTlab(MutatorContext* ctx) {
  for (int attempt = 0; attempt < kMaxAllocationAttempts; attempt++) {
    Phase phase = phase_.load(std::memory_order_relaxed);
    if (phase != Phase::kIdle) {
      // Pacing: marking/relocation/remap progress proportional to allocation.
      ConcurrentWork(ctx, static_cast<size_t>(config_.z_work_per_alloc_byte *
                                              static_cast<double>(
                                                  heap_->regions().region_bytes())));
    } else if (Occupancy() >= config_.z_trigger_occupancy) {
      StartCycle(ctx);
    }
    Region* r = heap_->regions().AllocateRegion(RegionKind::kOld);
    if (r != nullptr) {
      ctx->tlab.Release();
      ctx->tlab.Install(r);
      heap_->UpdateMaxUsedBytes();
      return r;
    }
    if (phase_.load(std::memory_order_relaxed) == Phase::kIdle) {
      // Out of memory with no cycle to wait for: allocation-stall fallback.
      DoFull(ctx);
    }
    // Otherwise loop: each iteration pushes the concurrent cycle forward.
  }
  return nullptr;
}

AllocResult ZgcCollector::AllocateSlow(MutatorContext* ctx, const AllocRequest& req) {
  if (heap_->IsHumongousSize(req.total_bytes)) {
    int attempt = 0;
    for (; attempt < kMaxAllocationAttempts; attempt++) {
      Region* head = heap_->regions().AllocateHumongous(req.total_bytes);
      if (head != nullptr) {
        Object* obj = heap_->InitializeObject(head->begin(), req.cls, req.total_bytes,
                                              req.array_length, req.context);
        if (phase_.load(std::memory_order_relaxed) == Phase::kMarking) {
          bitmap_.Mark(obj);
        }
        return AllocResult::Ok(obj, static_cast<uint8_t>(attempt));
      }
      if (phase_.load(std::memory_order_relaxed) != Phase::kIdle) {
        ConcurrentWork(ctx, heap_->regions().region_bytes() * 4);
      } else {
        DoFull(ctx);
      }
      AllocationBackoff(attempt);
    }
    return AllocResult::OutOfMemory(static_cast<uint8_t>(attempt));
  }
  int attempt = 0;
  for (; attempt < kMaxAllocationAttempts; attempt++) {
    char* mem = ctx->tlab.Allocate(req.total_bytes);
    if (mem != nullptr) {
      Object* obj =
          heap_->InitializeObject(mem, req.cls, req.total_bytes, req.array_length, req.context);
      if (phase_.load(std::memory_order_relaxed) == Phase::kMarking) {
        bitmap_.Mark(obj);  // allocate black during marking
      }
      return AllocResult::Ok(obj, static_cast<uint8_t>(attempt));
    }
    if (RefillTlab(ctx) == nullptr) {
      return AllocResult::OutOfMemory(static_cast<uint8_t>(attempt));
    }
  }
  return AllocResult::OutOfMemory(static_cast<uint8_t>(attempt));
}

bool ZgcCollector::StartCycle(MutatorContext* ctx) {
  if (!safepoints_->BeginOperation(ctx)) {
    return false;
  }
  if (phase_.load(std::memory_order_relaxed) != Phase::kIdle) {
    safepoints_->EndOperation(ctx);
    return false;
  }
  uint64_t t0 = NowNs();
  bitmap_.ClearAll();
  heap_->regions().ForEachRegion([](Region* r) {
    if (!r->IsFree()) {
      r->set_live_bytes(0);
    }
  });
  {
    std::lock_guard<SpinLock> guard(gray_lock_);
    heap_->roots().ForEach([&](std::atomic<Object*>* slot) {
      Object* v = slot->load(std::memory_order_relaxed);
      if (v != nullptr) {
        gray_queue_.push_back(v);
      }
    });
    safepoints_->ForEachThread([&](MutatorContext* t) {
      for (auto& slot : t->local_roots) {
        Object* v = slot.load(std::memory_order_relaxed);
        if (v != nullptr) {
          gray_queue_.push_back(v);
        }
      }
    });
  }
  phase_.store(Phase::kMarking, std::memory_order_release);
  uint64_t t1 = NowNs();
  metrics_.RecordPause({t0, t1 - t0, PauseKind::kZMark, 0});
  Trace::EmitComplete("gc", "gc.pause", t0, t1 - t0,
                      static_cast<uint64_t>(PauseKind::kZMark));
  metrics_.IncrementGcCycles();
  safepoints_->EndOperation(ctx);
  return true;
}

void ZgcCollector::MarkSlice(size_t budget_bytes) {
  size_t traced = 0;
  while (traced < budget_bytes) {
    if (mark_stack_.empty()) {
      std::lock_guard<SpinLock> guard(gray_lock_);
      if (gray_queue_.empty()) {
        return;
      }
      for (Object* obj : gray_queue_) {
        if (bitmap_.Mark(obj)) {
          heap_->regions().RegionFor(obj)->AddLiveBytes(obj->size_bytes);
          mark_stack_.push_back(obj);
        }
      }
      gray_queue_.clear();
      continue;
    }
    Object* obj = mark_stack_.back();
    mark_stack_.pop_back();
    traced += obj->size_bytes;
    heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
      Object* v = slot->load(std::memory_order_relaxed);
      if (v != nullptr && bitmap_.Mark(v)) {
        heap_->regions().RegionFor(v)->AddLiveBytes(v->size_bytes);
        mark_stack_.push_back(v);
      }
    });
  }
}

void ZgcCollector::ConcurrentWork(MutatorContext* ctx, size_t budget_bytes) {
  // Relocation shards by per-region claim CAS, so every caller helps in
  // parallel — no work_lock_. Mark and remap slices still serialize behind it
  // (shared mark stack / remap cursor).
  if (phase_.load(std::memory_order_acquire) == Phase::kRelocating) {
    uint64_t r0 = NowNs();
    RelocateSlice(budget_bytes);
    metrics_.AddConcurrentWorkNs(NowNs() - r0);
    return;
  }
  if (!work_lock_.try_lock()) {
    return;
  }
  uint64_t t0 = NowNs();
  Phase phase = phase_.load(std::memory_order_relaxed);
  switch (phase) {
    case Phase::kIdle:
      break;
    case Phase::kMarking: {
      MarkSlice(budget_bytes);
      bool done;
      {
        std::lock_guard<SpinLock> guard(gray_lock_);
        done = mark_stack_.empty() && gray_queue_.empty();
      }
      if (done) {
        work_lock_.unlock();
        metrics_.AddConcurrentWorkNs(NowNs() - t0);
        RemarkAndSelect(ctx);
        return;
      }
      break;
    }
    case Phase::kRelocating:
      // Raced from kMarking/kIdle into relocation; next call takes the
      // lock-free path above.
      break;
    case Phase::kRemapping:
      RemapSlice(budget_bytes);
      if (phase_.load(std::memory_order_relaxed) == Phase::kRemapping &&
          remap_cursor_ >= remap_snapshot_.size()) {
        work_lock_.unlock();
        metrics_.AddConcurrentWorkNs(NowNs() - t0);
        FinishCycle(ctx);
        return;
      }
      break;
  }
  metrics_.AddConcurrentWorkNs(NowNs() - t0);
  work_lock_.unlock();
}

bool ZgcCollector::RemarkAndSelect(MutatorContext* ctx) {
  if (!safepoints_->BeginOperation(ctx)) {
    return false;
  }
  if (phase_.load(std::memory_order_relaxed) != Phase::kMarking) {
    safepoints_->EndOperation(ctx);
    return false;
  }
  uint64_t t0 = NowNs();
  // Remark: rescan roots, drain to completion.
  {
    std::lock_guard<SpinLock> guard(gray_lock_);
    heap_->roots().ForEach([&](std::atomic<Object*>* slot) {
      Object* v = slot->load(std::memory_order_relaxed);
      if (v != nullptr) {
        gray_queue_.push_back(v);
      }
    });
    safepoints_->ForEachThread([&](MutatorContext* t) {
      for (auto& slot : t->local_roots) {
        Object* v = slot.load(std::memory_order_relaxed);
        if (v != nullptr) {
          gray_queue_.push_back(v);
        }
      }
    });
  }
  while (true) {
    MarkSlice(SIZE_MAX / 2);
    std::lock_guard<SpinLock> guard(gray_lock_);
    if (mark_stack_.empty() && gray_queue_.empty()) {
      break;
    }
  }

  RegionManager& regions = heap_->regions();
  // Reclaim dead humongous objects.
  std::vector<Region*> dead_humongous;
  regions.ForEachRegion([&](Region* r) {
    if (r->kind() == RegionKind::kHumongous && !r->quarantined() &&
        !bitmap_.IsMarked(reinterpret_cast<Object*>(r->begin()))) {
      dead_humongous.push_back(r);
    }
  });
  for (Region* r : dead_humongous) {
    bitmap_.ClearRange(r->begin(), r->begin() + static_cast<size_t>(r->humongous_span()) *
                                                    regions.region_bytes());
    regions.FreeRegion(r);
  }

  // Select the relocation set: sparse regions, excluding allocation buffers.
  relocation_set_.clear();
  std::vector<Region*> excluded;
  safepoints_->ForEachThread([&](MutatorContext* t) {
    if (t->tlab.HasRegion()) {
      excluded.push_back(t->tlab.region());
    }
  });
  {
    std::lock_guard<SpinLock> guard(to_space_lock_);
    if (to_space_region_ != nullptr) {
      excluded.push_back(to_space_region_);
    }
  }
  const bool check_pinned = !regions.UnscannableQuarantined().empty();
  regions.ForEachRegion([&](Region* r) {
    if (r->kind() != RegionKind::kOld || r->used() == 0 || r->quarantined()) {
      return;
    }
    if (r->LiveRatio() > config_.z_relocate_live_ratio_max) {
      return;
    }
    if (check_pinned && regions.PinnedByQuarantine(r)) {
      // Referenced from an unscannable quarantined region, which the GC-side
      // remap walk skips: a stale reference held there would never be healed
      // before the forwarding tables are dropped at cycle end. Keep it put.
      return;
    }
    for (Region* ex : excluded) {
      if (ex == r) {
        return;
      }
    }
    relocation_set_.push_back(r);
  });
  // Cap the set so to-space demand stays within free memory.
  size_t free_bytes = regions.free_regions() * regions.region_bytes();
  size_t budget = free_bytes / 2;
  size_t planned = 0;
  size_t keep = 0;
  for (Region* r : relocation_set_) {
    if (planned + r->live_bytes() > budget) {
      break;
    }
    planned += r->live_bytes();
    keep++;
  }
  relocation_set_.resize(keep);

  for (Region* r : relocation_set_) {
    r->set_in_cset(true);
  }
  relocate_claim_.store(0, std::memory_order_relaxed);
  relocate_done_.store(0, std::memory_order_relaxed);
  remap_cursor_ = 0;
  // Freeze allocation buffers: regions created from here on are remapped in
  // the final pause instead of concurrently (see remap_snapshot_).
  safepoints_->ForEachThread([](MutatorContext* t) { t->tlab.Release(); });
  {
    std::lock_guard<SpinLock> guard(to_space_lock_);
    to_space_region_ = nullptr;
  }
  remap_snapshot_.clear();
  regions.ForEachRegion([&](Region* r) {
    if (!r->IsFree() && !r->in_cset() && r->kind() != RegionKind::kHumongousCont &&
        !r->IsUnscannable()) {
      remap_snapshot_.push_back(r->index());
    }
  });

  if (relocation_set_.empty()) {
    phase_.store(Phase::kIdle, std::memory_order_release);
    cycles_completed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    phase_.store(Phase::kRelocating, std::memory_order_release);
    // Eager root healing: after this pause no mutator-visible reference may
    // point at a not-yet-relocated collection-set object.
    auto heal_root = [&](std::atomic<Object*>* slot) {
      Object* v = slot->load(std::memory_order_relaxed);
      if (v == nullptr) {
        return;
      }
      if (regions.RegionFor(v)->in_cset()) {
        slot->store(Relocate(v), std::memory_order_relaxed);
      }
    };
    heap_->roots().ForEach(heal_root);
    safepoints_->ForEachThread([&](MutatorContext* t) {
      for (auto& slot : t->local_roots) {
        heal_root(&slot);
      }
    });
  }

  heap_->UpdateMaxUsedBytes();
  uint64_t t1 = NowNs();
  metrics_.RecordPause({t0, t1 - t0, PauseKind::kZRemark, 0});
  Trace::EmitComplete("gc", "gc.pause", t0, t1 - t0,
                      static_cast<uint64_t>(PauseKind::kZRemark));
  metrics_.IncrementGcCycles();
  safepoints_->EndOperation(ctx);
  return true;
}

void ZgcCollector::RelocateSlice(size_t budget_bytes) {
  // Sharded: claim a region, relocate it end to end, repeat until the byte
  // budget runs out. Claim granularity is a whole region — acceptable because
  // the relocation set only admits sparse regions (live ratio capped), so a
  // single claim stays small. The claimant never abandons a region mid-way,
  // which keeps the done counter's meaning simple: done == size(set) iff
  // every live object had Relocate() attempted on it.
  const size_t n = relocation_set_.size();
  size_t done = 0;
  while (done < budget_bytes) {
    size_t idx = relocate_claim_.fetch_add(1, std::memory_order_acq_rel);
    if (idx >= n) {
      return;  // all regions claimed; stragglers are finishing them
    }
    Region* r = relocation_set_[idx];
    char* scan = r->begin();
    char* top = r->top();
    while (scan < top) {
      Object* obj = reinterpret_cast<Object*>(scan);
      scan += obj->size_bytes;
      done += obj->size_bytes;
      if (bitmap_.IsMarked(obj)) {
        bool copied = false;
        Relocate(obj, &copied);
        if (copied) {
          gc_relocated_objects_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    if (relocate_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      // Last region retired: advance the phase exactly once. CAS guards
      // against a concurrent DoFull having already reset the cycle.
      Phase expected = Phase::kRelocating;
      phase_.compare_exchange_strong(expected, Phase::kRemapping,
                                     std::memory_order_acq_rel);
    }
  }
}

void ZgcCollector::RemapSlice(size_t budget_bytes) {
  RegionManager& regions = heap_->regions();
  size_t done = 0;
  while (done < budget_bytes && remap_cursor_ < remap_snapshot_.size()) {
    Region* r = &regions.region(remap_snapshot_[remap_cursor_]);
    remap_cursor_++;
    if (r->IsFree() || r->in_cset() || r->kind() == RegionKind::kHumongousCont ||
        r->IsUnscannable()) {
      continue;
    }
    r->ForEachObject([&](Object* obj) {
      done += obj->size_bytes;
      if (!bitmap_.IsMarked(obj)) {
        return;  // dead (or freshly allocated, which never holds stale refs)
      }
      heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
        Object* v = slot->load(std::memory_order_relaxed);
        if (v == nullptr) {
          return;
        }
        if (regions.RegionFor(v)->in_cset()) {
          Object* healed = Relocate(v);
          slot->compare_exchange_strong(v, healed, std::memory_order_acq_rel);
        }
      });
    });
  }
}

void ZgcCollector::FinishCycle(MutatorContext* ctx) {
  if (!safepoints_->BeginOperation(ctx)) {
    return;
  }
  if (phase_.load(std::memory_order_relaxed) != Phase::kRemapping) {
    safepoints_->EndOperation(ctx);
    return;
  }
  uint64_t t0 = NowNs();
  RegionManager& regions = heap_->regions();
  // Remap regions created after the relocate-start pause (fresh TLABs and
  // to-space); their tops are stable now that the world is stopped. Objects
  // in them may still hold references copied verbatim from the collection
  // set.
  std::vector<bool> in_snapshot(regions.num_regions(), false);
  for (uint32_t idx : remap_snapshot_) {
    in_snapshot[idx] = true;
  }
  regions.ForEachRegion([&](Region* r) {
    if (r->IsFree() || r->in_cset() || in_snapshot[r->index()] ||
        r->kind() == RegionKind::kHumongousCont || r->IsUnscannable()) {
      return;
    }
    r->ForEachObject([&](Object* obj) {
      heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
        Object* v = slot->load(std::memory_order_relaxed);
        if (v != nullptr && regions.RegionFor(v)->in_cset()) {
          slot->store(Relocate(v), std::memory_order_relaxed);
        }
      });
    });
  });
  // Heal roots one final time (cheap; usually no-ops).
  auto heal_root = [&](std::atomic<Object*>* slot) {
    Object* v = slot->load(std::memory_order_relaxed);
    if (v != nullptr && regions.RegionFor(v)->in_cset()) {
      slot->store(Relocate(v), std::memory_order_relaxed);
    }
  };
  heap_->roots().ForEach(heal_root);
  safepoints_->ForEachThread([&](MutatorContext* t) {
    for (auto& slot : t->local_roots) {
      heal_root(&slot);
    }
  });

  std::vector<Region*> doomed;
  for (Region* r : relocation_set_) {
    bool fully_evacuated = true;
    r->ForEachObject([&](Object* obj) {
      if (bitmap_.IsMarked(obj) && !markword::IsForwarded(obj->LoadMark())) {
        // Relocation stall left it behind; try once more.
        Object* moved = Relocate(obj);
        if (moved == obj) {
          fully_evacuated = false;
        }
      }
    });
    if (fully_evacuated) {
      doomed.push_back(r);
    } else {
      r->set_in_cset(false);  // stays as a normal old region
    }
  }
  if (verify_options_.enabled() && !doomed.empty()) {
    uint64_t v0 = NowNs();
    CancellationToken verify_cancel;
    WatchdogPhaseScope vscope(watchdog_.get(), GcPhase::kVerify, &verify_cancel, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.verify");
    // ZGC keeps no remembered sets, and Relocate copies marks verbatim so
    // to-space copies are unmarked at their new addresses. Restrict the sweep
    // to marked objects: unmarked ones are either dead or already-healed
    // copies (and lost-race duplicates are walkable dead data by design).
    HeapVerifier verifier(heap_, safepoints_, /*check_remsets=*/false);
    HeapVerifier::Report report = verifier.VerifyCollectionSet(
        doomed, workers_.get(), verify_options_, NextVerifyPass(), &verify_cancel,
        /*live_filter=*/&bitmap_);
    if (ApplyVerification("z-relocate-finish", report)) {
      QuarantineFlagged(&verifier, doomed, &report);
    }
    metrics_.AddPauseVerifyNs(NowNs() - v0);
  }
  for (Region* r : doomed) {
    if (r->quarantined()) {
      continue;
    }
    bitmap_.ClearRange(r->begin(), r->end());
    regions.FreeRegion(r);
  }
  relocation_set_.clear();
  phase_.store(Phase::kIdle, std::memory_order_release);
  cycles_completed_.fetch_add(1, std::memory_order_relaxed);
  heap_->UpdateMaxUsedBytes();
  uint64_t t1 = NowNs();
  metrics_.RecordPause({t0, t1 - t0, PauseKind::kZRelocateStart, 0});
  Trace::EmitComplete("gc", "gc.pause", t0, t1 - t0,
                      static_cast<uint64_t>(PauseKind::kZRelocateStart));
  metrics_.IncrementGcCycles();
  safepoints_->EndOperation(ctx);
}

void ZgcCollector::DoFull(MutatorContext* ctx) {
  if (!safepoints_->BeginOperation(ctx)) {
    return;
  }
  uint64_t t0 = NowNs();
  safepoints_->ForEachThread([](MutatorContext* t) { t->tlab.Release(); });
  {
    std::lock_guard<SpinLock> guard(gray_lock_);
    gray_queue_.clear();
  }
  mark_stack_.clear();
  for (Region* r : relocation_set_) {
    r->set_in_cset(false);
  }
  relocation_set_.clear();
  {
    std::lock_guard<SpinLock> guard(to_space_lock_);
    to_space_region_ = nullptr;
  }
  phase_.store(Phase::kIdle, std::memory_order_release);

  MarkCompact compactor(heap_, &bitmap_);
  uint64_t moved;
  {
    // ZGC's concurrent mark/relocate phases are mutator-paced increments and
    // are not watchdog-timed; only the STW compaction fallback is (rung 5).
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kCompact, nullptr, &metrics_);
    (void)ROLP_FAULT_POINT("gc.phase.compact.stall");
    moved = compactor.Collect(safepoints_, workers_.get());
  }
  metrics_.AddBytesCopied(moved);
  metrics_.IncrementGcCycles();
  heap_->UpdateMaxUsedBytes();
  uint64_t t1 = NowNs();
  metrics_.RecordPause({t0, t1 - t0, PauseKind::kFull, moved});
  Trace::EmitComplete("gc", "gc.pause", t0, t1 - t0,
                      static_cast<uint64_t>(PauseKind::kFull));
  safepoints_->EndOperation(ctx);
}

void ZgcCollector::CollectFull(MutatorContext* ctx) {
  // Finish any in-flight cycle deterministically, then compact.
  for (int i = 0; i < 1000 && phase_.load(std::memory_order_relaxed) != Phase::kIdle; i++) {
    ConcurrentWork(ctx, SIZE_MAX / 4);
  }
  DoFull(ctx);
}

}  // namespace rolp
