#include "src/gc/gc_metrics.h"

#include "src/util/env.h"

namespace rolp {

const char* PauseKindName(PauseKind kind) {
  switch (kind) {
    case PauseKind::kYoung:
      return "young";
    case PauseKind::kMixed:
      return "mixed";
    case PauseKind::kFull:
      return "full";
    case PauseKind::kCmsRemark:
      return "cms-remark";
    case PauseKind::kCmsSweep:
      return "cms-sweep";
    case PauseKind::kZMark:
      return "z-mark";
    case PauseKind::kZRemark:
      return "z-remark";
    case PauseKind::kZRelocateStart:
      return "z-relocate-start";
    case PauseKind::kRemap:
      return "remap";
  }
  return "?";
}

GcMetrics::GcMetrics() {
  int64_t cap = EnvInt64("ROLP_PAUSE_LOG_CAP", static_cast<int64_t>(kDefaultPauseLogCap));
  pause_log_cap_ = cap < 1 ? 1 : static_cast<size_t>(cap);
}

void GcMetrics::set_pause_log_cap(size_t cap) {
  std::lock_guard<SpinLock> guard(lock_);
  pause_log_cap_ = cap < 1 ? 1 : cap;
  if (pauses_.size() > pause_log_cap_) {
    // Shrink: keep the newest pause_log_cap_ records, oldest first.
    std::vector<PauseRecord> kept;
    kept.reserve(pause_log_cap_);
    for (size_t i = pauses_.size() - pause_log_cap_; i < pauses_.size(); i++) {
      kept.push_back(pauses_[(ring_head_ + i) % pauses_.size()]);
    }
    pauses_ = std::move(kept);
    ring_head_ = 0;
  }
}

void GcMetrics::RecordPause(const PauseRecord& record) {
  std::lock_guard<SpinLock> guard(lock_);
  if (pauses_.size() < pause_log_cap_) {
    pauses_.push_back(record);
  } else {
    pauses_[ring_head_] = record;
    ring_head_ = (ring_head_ + 1) % pause_log_cap_;
  }
  pauses_total_++;
  total_pause_ns_ += record.duration_ns;
  pause_hist_.Record(record.duration_ns);
}

std::vector<PauseRecord> GcMetrics::Pauses() const {
  std::lock_guard<SpinLock> guard(lock_);
  std::vector<PauseRecord> out;
  out.reserve(pauses_.size());
  for (size_t i = 0; i < pauses_.size(); i++) {
    out.push_back(pauses_[(ring_head_ + i) % pauses_.size()]);
  }
  return out;
}

uint64_t GcMetrics::PauseCount() const {
  std::lock_guard<SpinLock> guard(lock_);
  return pauses_total_;
}

uint64_t GcMetrics::TotalPauseNs() const {
  std::lock_guard<SpinLock> guard(lock_);
  return total_pause_ns_;
}

uint64_t GcMetrics::MaxPauseNs() const {
  std::lock_guard<SpinLock> guard(lock_);
  return pause_hist_.Max();
}

uint64_t GcMetrics::PausePercentileNs(double p) const {
  std::lock_guard<SpinLock> guard(lock_);
  return pause_hist_.Percentile(p);
}

LogHistogram GcMetrics::PauseHistogramSnapshot() const {
  std::lock_guard<SpinLock> guard(lock_);
  return pause_hist_;
}

double GcMetrics::RecentMeanPauseNs(size_t n) const {
  std::lock_guard<SpinLock> guard(lock_);
  if (pauses_.empty() || n == 0) {
    return 0.0;
  }
  size_t count = n < pauses_.size() ? n : pauses_.size();
  uint64_t sum = 0;
  for (size_t i = pauses_.size() - count; i < pauses_.size(); i++) {
    sum += pauses_[(ring_head_ + i) % pauses_.size()].duration_ns;
  }
  return static_cast<double>(sum) / static_cast<double>(count);
}

double GcMetrics::MaxWorkerCopiedShare() const {
  uint64_t total = 0;
  uint64_t max = 0;
  for (uint32_t w = 0; w < kMaxTrackedWorkers; w++) {
    uint64_t v = worker_copied_bytes_[w].load(std::memory_order_relaxed);
    total += v;
    if (v > max) {
      max = v;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(max) / static_cast<double>(total);
}

void GcMetrics::Reset() {
  std::lock_guard<SpinLock> guard(lock_);
  pauses_.clear();
  ring_head_ = 0;
  pauses_total_ = 0;
  total_pause_ns_ = 0;
  pause_hist_.Reset();
  gc_cycles_.store(0, std::memory_order_relaxed);
  bytes_copied_.store(0, std::memory_order_relaxed);
  bytes_promoted_.store(0, std::memory_order_relaxed);
  concurrent_work_ns_.store(0, std::memory_order_relaxed);
  pause_scan_ns_.store(0, std::memory_order_relaxed);
  pause_evac_ns_.store(0, std::memory_order_relaxed);
  pause_profiler_ns_.store(0, std::memory_order_relaxed);
  pause_verify_ns_.store(0, std::memory_order_relaxed);
  pause_remap_ns_.store(0, std::memory_order_relaxed);
  evac_cpu_ns_.store(0, std::memory_order_relaxed);
  remap_cpu_ns_.store(0, std::memory_order_relaxed);
  for (uint32_t w = 0; w < kMaxTrackedWorkers; w++) {
    worker_copied_bytes_[w].store(0, std::memory_order_relaxed);
  }
  for (size_t p = 0; p < kNumGcPhaseSlots; p++) {
    phase_cpu_ns_[p].store(0, std::memory_order_relaxed);
  }
}

}  // namespace rolp
