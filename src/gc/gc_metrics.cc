#include "src/gc/gc_metrics.h"

namespace rolp {

const char* PauseKindName(PauseKind kind) {
  switch (kind) {
    case PauseKind::kYoung:
      return "young";
    case PauseKind::kMixed:
      return "mixed";
    case PauseKind::kFull:
      return "full";
    case PauseKind::kCmsRemark:
      return "cms-remark";
    case PauseKind::kCmsSweep:
      return "cms-sweep";
    case PauseKind::kZMark:
      return "z-mark";
    case PauseKind::kZRemark:
      return "z-remark";
    case PauseKind::kZRelocateStart:
      return "z-relocate-start";
  }
  return "?";
}

void GcMetrics::RecordPause(const PauseRecord& record) {
  std::lock_guard<SpinLock> guard(lock_);
  pauses_.push_back(record);
  pause_hist_.Record(record.duration_ns);
}

std::vector<PauseRecord> GcMetrics::Pauses() const {
  std::lock_guard<SpinLock> guard(lock_);
  return pauses_;
}

uint64_t GcMetrics::PauseCount() const {
  std::lock_guard<SpinLock> guard(lock_);
  return pauses_.size();
}

uint64_t GcMetrics::TotalPauseNs() const {
  std::lock_guard<SpinLock> guard(lock_);
  uint64_t total = 0;
  for (const auto& p : pauses_) {
    total += p.duration_ns;
  }
  return total;
}

uint64_t GcMetrics::MaxPauseNs() const {
  std::lock_guard<SpinLock> guard(lock_);
  return pause_hist_.Max();
}

uint64_t GcMetrics::PausePercentileNs(double p) const {
  std::lock_guard<SpinLock> guard(lock_);
  return pause_hist_.Percentile(p);
}

double GcMetrics::RecentMeanPauseNs(size_t n) const {
  std::lock_guard<SpinLock> guard(lock_);
  if (pauses_.empty() || n == 0) {
    return 0.0;
  }
  size_t count = n < pauses_.size() ? n : pauses_.size();
  uint64_t sum = 0;
  for (size_t i = pauses_.size() - count; i < pauses_.size(); i++) {
    sum += pauses_[i].duration_ns;
  }
  return static_cast<double>(sum) / static_cast<double>(count);
}

double GcMetrics::MaxWorkerCopiedShare() const {
  uint64_t total = 0;
  uint64_t max = 0;
  for (uint32_t w = 0; w < kMaxTrackedWorkers; w++) {
    uint64_t v = worker_copied_bytes_[w].load(std::memory_order_relaxed);
    total += v;
    if (v > max) {
      max = v;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(max) / static_cast<double>(total);
}

void GcMetrics::Reset() {
  std::lock_guard<SpinLock> guard(lock_);
  pauses_.clear();
  pause_hist_.Reset();
  gc_cycles_.store(0, std::memory_order_relaxed);
  bytes_copied_.store(0, std::memory_order_relaxed);
  bytes_promoted_.store(0, std::memory_order_relaxed);
  concurrent_work_ns_.store(0, std::memory_order_relaxed);
  pause_scan_ns_.store(0, std::memory_order_relaxed);
  pause_evac_ns_.store(0, std::memory_order_relaxed);
  pause_profiler_ns_.store(0, std::memory_order_relaxed);
  for (uint32_t w = 0; w < kMaxTrackedWorkers; w++) {
    worker_copied_bytes_[w].store(0, std::memory_order_relaxed);
  }
}

}  // namespace rolp
