#include "src/gc/free_list_space.h"

#include <bit>
#include <mutex>

#include "src/util/check.h"

namespace rolp {

void FreeListSpace::FormatFreeBlock(char* p, size_t bytes) {
  ROLP_DCHECK(bytes >= kMinBlock);
  ROLP_DCHECK(bytes % kObjectAlignment == 0);
  Object* block = reinterpret_cast<Object*>(p);
  block->StoreMark(0);
  block->class_id = kFreeBlockClassId;
  block->size_bytes = static_cast<uint32_t>(bytes);
}

size_t FreeListSpace::LargeBinFor(size_t bytes) {
  // Bin by floor(log2(bytes / kSmallMax)); clamps into the last bin.
  size_t ratio = bytes / kSmallMax;
  size_t bin = static_cast<size_t>(std::bit_width(ratio)) - 1;
  return bin < kLargeBins ? bin : kLargeBins - 1;
}

void FreeListSpace::Link(char* block, size_t bytes) {
  if (bytes <= kSmallMax) {
    size_t bin = SmallBinFor(bytes);
    NextOf(block) = small_bins_[bin];
    small_bins_[bin] = block;
  } else {
    size_t bin = LargeBinFor(bytes);
    NextOf(block) = large_bins_[bin];
    large_bins_[bin] = block;
  }
  free_bytes_ += bytes;
}

void FreeListSpace::AddFreeBlock(char* p, size_t bytes) {
  FormatFreeBlock(p, bytes);
  std::lock_guard<SpinLock> guard(lock_);
  Link(p, bytes);
}

void FreeListSpace::AddRegion(Region* region) {
  region->set_top(region->end());  // the whole region is block-formatted
  AddFreeBlock(region->begin(), region->capacity());
}

char* FreeListSpace::PopFit(size_t bytes) {
  // Exact/ascending small bins first.
  if (bytes <= kSmallMax) {
    for (size_t bin = SmallBinFor(bytes); bin < kSmallBins; bin++) {
      if (small_bins_[bin] != nullptr) {
        char* block = small_bins_[bin];
        small_bins_[bin] = NextOf(block);
        free_bytes_ -= SizeOf(block);
        return block;
      }
    }
  }
  // Large bins: first-fit scan within a bin, ascending bins.
  size_t start = bytes <= kSmallMax ? 0 : LargeBinFor(bytes);
  for (size_t bin = start; bin < kLargeBins; bin++) {
    char* prev = nullptr;
    char* block = large_bins_[bin];
    while (block != nullptr) {
      if (SizeOf(block) >= bytes) {
        if (prev == nullptr) {
          large_bins_[bin] = NextOf(block);
        } else {
          NextOf(prev) = NextOf(block);
        }
        free_bytes_ -= SizeOf(block);
        return block;
      }
      prev = block;
      block = NextOf(block);
    }
  }
  return nullptr;
}

char* FreeListSpace::Allocate(size_t bytes, size_t* actual_bytes) {
  ROLP_DCHECK(bytes % kObjectAlignment == 0);
  if (bytes < kMinBlock) {
    bytes = kMinBlock;
  }
  std::lock_guard<SpinLock> guard(lock_);
  char* block = PopFit(bytes);
  if (block == nullptr) {
    return nullptr;
  }
  size_t block_size = SizeOf(block);
  size_t remainder = block_size - bytes;
  if (remainder >= kMinBlock) {
    FormatFreeBlock(block + bytes, remainder);
    Link(block + bytes, remainder);
    *actual_bytes = bytes;
  } else {
    // Absorb the sliver into the allocation to keep the region walkable.
    *actual_bytes = block_size;
  }
  return block;
}

void FreeListSpace::Clear() {
  std::lock_guard<SpinLock> guard(lock_);
  small_bins_.fill(nullptr);
  large_bins_.fill(nullptr);
  free_bytes_ = 0;
}

size_t FreeListSpace::largest_free_block() const {
  std::lock_guard<SpinLock> guard(lock_);
  size_t best = 0;
  for (char* block : small_bins_) {
    while (block != nullptr) {
      if (SizeOf(block) > best) {
        best = SizeOf(block);
      }
      block = NextOf(block);
    }
  }
  for (char* block : large_bins_) {
    while (block != nullptr) {
      if (SizeOf(block) > best) {
        best = SizeOf(block);
      }
      block = NextOf(block);
    }
  }
  return best;
}

}  // namespace rolp
