#include "src/gc/worker_pool.h"

#include <chrono>
#include <thread>

#include "src/util/check.h"
#include "src/util/fault_injection.h"
#include "src/util/log.h"

namespace rolp {

namespace {

std::atomic<uint64_t> g_detached_workers_total{0};

}  // namespace

WorkerPool::PoolState::PoolState(uint32_t n)
    : alive(n, true), exited(n, false), current_item(n, -1), heartbeats(n) {}

WorkerPool::WorkerPool(uint32_t num_workers)
    : num_workers_(num_workers), state_(std::make_shared<PoolState>(num_workers)) {
  ROLP_CHECK(num_workers >= 1);
  threads_.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; w++) {
    std::shared_ptr<PoolState> s = state_;
    threads_.emplace_back([s, w] { WorkerLoop(s, w); });
  }
}

WorkerPool::~WorkerPool() {
  PoolState& s = *state_;
  {
    std::lock_guard<std::mutex> guard(s.mu);
    s.shutdown = true;
  }
  s.cv_work.notify_all();
  s.cv_done.notify_all();  // wake an in-flight RunTask so it can abandon

  std::vector<bool> exited_snapshot;
  {
    std::unique_lock<std::mutex> lock(s.mu);
    s.cv_exit.wait_for(lock, std::chrono::milliseconds(shutdown_timeout_ms_), [&] {
      for (uint32_t w = 0; w < num_workers_; w++) {
        if (!s.exited[w]) {
          return false;
        }
      }
      return true;
    });
    exited_snapshot = s.exited;
  }
  for (uint32_t w = 0; w < num_workers_; w++) {
    if (exited_snapshot[w]) {
      threads_[w].join();
    } else {
      // Wedged inside a task: detach rather than deadlock the destructor.
      // The thread keeps a shared_ptr to PoolState, so it can never touch
      // freed pool memory; it exits on its own once the task unblocks.
      threads_[w].detach();
      g_detached_workers_total.fetch_add(1, std::memory_order_relaxed);
      ROLP_LOG_ERROR("WorkerPool: worker %u did not exit within %u ms at shutdown; "
                     "detached (task still blocked)",
                     w, shutdown_timeout_ms_);
    }
  }
}

uint64_t WorkerPool::detached_workers_total() {
  return g_detached_workers_total.load(std::memory_order_relaxed);
}

void WorkerPool::EnableHeartbeats(bool on) {
  state_->heartbeats_enabled.store(on, std::memory_order_relaxed);
}

uint32_t WorkerPool::alive_workers() const {
  PoolState& s = *state_;
  std::lock_guard<std::mutex> guard(s.mu);
  uint32_t n = 0;
  for (uint32_t w = 0; w < num_workers_; w++) {
    n += s.alive[w] ? 1 : 0;
  }
  return n;
}

uint32_t WorkerPool::ReclaimAbandonedLocked(PoolState& s) {
  uint32_t reclaimed = 0;
  for (size_t w = 0; w < s.current_item.size(); w++) {
    if (!s.alive[w] && s.current_item[w] >= 0) {
      s.pending.push_back(static_cast<uint32_t>(s.current_item[w]));
      s.current_item[w] = -1;
      reclaimed++;
    }
  }
  s.requeued_total += reclaimed;
  return reclaimed;
}

uint32_t WorkerPool::ReclaimAbandonedItems() {
  PoolState& s = *state_;
  uint32_t reclaimed;
  {
    std::lock_guard<std::mutex> guard(s.mu);
    reclaimed = ReclaimAbandonedLocked(s);
  }
  if (reclaimed > 0) {
    s.cv_work.notify_all();
  }
  return reclaimed;
}

std::vector<WorkerActivity> WorkerPool::SnapshotWorkerActivity() const {
  PoolState& s = *state_;
  std::lock_guard<std::mutex> guard(s.mu);
  std::vector<WorkerActivity> out(num_workers_);
  for (uint32_t w = 0; w < num_workers_; w++) {
    out[w].alive = s.alive[w];
    out[w].current_item = s.current_item[w];
    if (s.current_item[w] >= 0) {
      out[w].heartbeat =
          s.heartbeats[s.current_item[w]].published.load(std::memory_order_relaxed);
    }
  }
  return out;
}

uint64_t WorkerPool::items_requeued() const {
  PoolState& s = *state_;
  std::lock_guard<std::mutex> guard(s.mu);
  return s.requeued_total;
}

void WorkerPool::RunTask(const std::function<void(uint32_t)>& task) {
  // Copy the shared state handle and size up front: if the pool is destroyed
  // while this dispatch is abandoned at shutdown, `this` may dangle but the
  // state must not.
  std::shared_ptr<PoolState> sp = state_;
  PoolState& s = *sp;
  const uint32_t n = num_workers_;
  std::unique_lock<std::mutex> lock(s.mu);
  ROLP_CHECK(s.task == nullptr);
  s.task = &task;
  s.completed = 0;
  s.total_items = n;
  s.pending.clear();
  for (uint32_t w = n; w > 0; w--) {
    s.pending.push_back(w - 1);  // pop_back claims ascending ids
  }
  s.cv_work.notify_all();

  while (s.completed < s.total_items) {
    s.cv_done.wait_for(lock, std::chrono::milliseconds(10),
                       [&] { return s.completed >= s.total_items || s.shutdown; });
    if (s.completed >= s.total_items) {
      break;
    }
    if (s.shutdown) {
      // Pool is being destroyed under us (a worker is wedged and the owner
      // gave up): abandon the dispatch rather than wait forever.
      ROLP_LOG_WARN("WorkerPool: shutdown during dispatch; abandoning %u incomplete item(s)",
                    s.total_items - s.completed);
      break;
    }
    // Dead workers abandon their claimed item; hand it to survivors.
    if (ReclaimAbandonedLocked(s) > 0) {
      s.cv_work.notify_all();
    }
    uint32_t alive = 0;
    for (uint32_t w = 0; w < n; w++) {
      alive += s.alive[w] ? 1 : 0;
    }
    if (alive == 0) {
      // No survivors: the dispatching thread finishes the pause itself.
      while (!s.pending.empty()) {
        uint32_t item = s.pending.back();
        s.pending.pop_back();
        lock.unlock();
        task(item);
        lock.lock();
        s.completed++;
      }
    }
  }
  s.task = nullptr;
}

void WorkerPool::ParallelFor(size_t count, size_t chunk,
                             const std::function<void(uint32_t, size_t, size_t)>& fn) {
  if (count == 0) {
    return;
  }
  if (chunk == 0) {
    chunk = 1;
  }
  if (num_workers_ == 1 || count <= chunk) {
    fn(0, 0, count);
    return;
  }
  std::atomic<size_t> cursor{0};
  RunTask([&](uint32_t item) {
    for (;;) {
      size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) {
        return;
      }
      Heartbeat(item);
      size_t end = begin + chunk < count ? begin + chunk : count;
      fn(item, begin, end);
    }
  });
}

void WorkerPool::WorkerLoop(std::shared_ptr<PoolState> state, uint32_t thread_index) {
  PoolState& s = *state;
  while (true) {
    uint32_t item = 0;
    const std::function<void(uint32_t)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(s.mu);
      s.cv_work.wait(lock, [&] {
        return s.shutdown || (s.task != nullptr && !s.pending.empty());
      });
      if (s.shutdown) {
        s.alive[thread_index] = false;
        s.exited[thread_index] = true;
        lock.unlock();
        s.cv_exit.notify_all();
        return;
      }
      item = s.pending.back();
      s.pending.pop_back();
      s.current_item[thread_index] = item;
      task = s.task;
    }
    if (ROLP_FAULT_POINT("gc.worker.stall")) {
      // Simulated straggler: the pause waits for this worker's stall.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (ROLP_FAULT_POINT("gc.worker.die")) {
      // Simulated worker death mid-item: exit without completing the claimed
      // item. RunTask (or the watchdog) requeues it onto survivors.
      {
        std::lock_guard<std::mutex> guard(s.mu);
        s.alive[thread_index] = false;
        s.exited[thread_index] = true;
      }
      s.cv_done.notify_all();
      s.cv_exit.notify_all();
      return;
    }
    (*task)(item);
    {
      std::lock_guard<std::mutex> guard(s.mu);
      s.current_item[thread_index] = -1;
      s.completed++;
    }
    s.cv_done.notify_all();
  }
}

}  // namespace rolp
