#include "src/gc/worker_pool.h"

#include <chrono>
#include <thread>

#include "src/util/check.h"
#include "src/util/fault_injection.h"

namespace rolp {

WorkerPool::WorkerPool(uint32_t num_workers) {
  ROLP_CHECK(num_workers >= 1);
  threads_.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; w++) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void WorkerPool::RunTask(const std::function<void(uint32_t)>& task) {
  std::unique_lock<std::mutex> lock(mu_);
  ROLP_CHECK(task_ == nullptr);
  task_ = &task;
  remaining_ = static_cast<uint32_t>(threads_.size());
  generation_++;
  cv_work_.notify_all();
  cv_done_.wait(lock, [&] { return remaining_ == 0; });
  task_ = nullptr;
}

void WorkerPool::WorkerLoop(uint32_t worker_id) {
  uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(uint32_t)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      task = task_;
    }
    if (ROLP_FAULT_POINT("gc.worker.stall")) {
      // Simulated straggler: the pause waits for this worker's stall.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    (*task)(worker_id);
    {
      std::lock_guard<std::mutex> guard(mu_);
      remaining_--;
    }
    cv_done_.notify_one();
  }
}

}  // namespace rolp
