#include "src/gc/collector.h"

#include <chrono>
#include <thread>

#include "src/util/crash_context.h"
#include "src/util/log.h"
#include "src/util/metrics_registry.h"

namespace rolp {

Collector::Collector(Heap* heap, const GcConfig& config, SafepointManager* safepoints)
    : heap_(heap), config_(config), safepoints_(safepoints) {
  workers_ = std::make_unique<WorkerPool>(config_.num_workers);
  watchdog_ = GcWatchdog::CreateFromEnv(workers_.get());
  verify_options_ = VerifyOptions::FromEnv();
}

void Collector::AllocationBackoff(int attempt) {
  if (attempt < 4) {
    std::this_thread::yield();
    return;
  }
  int shift = attempt - 4 < 7 ? attempt - 4 : 7;
  std::this_thread::sleep_for(std::chrono::microseconds(1 << shift));
}

bool Collector::ApplyVerification(const char* when, const HeapVerifier::Report& report) {
  verify_stats_.passes++;
  verify_stats_.refs_healed += report.refs_healed;
  verify_stats_.refs_nulled += report.refs_nulled;
  if (report.cancelled) {
    verify_stats_.passes_cancelled++;
    MetricsRegistry::Instance().Counter("verify.passes_cancelled")->Add();
  }
  MetricsRegistry::Instance().Counter("verify.passes")->Add();
  if (report.findings.empty()) {
    return false;
  }
  verify_stats_.findings += report.findings.size();
  MetricsRegistry::Instance().Counter("verify.findings")->Add(report.findings.size());
  ROLP_LOG_ERROR("heap verification (%s): %s", when, report.Summary().c_str());
  size_t shown = 0;
  for (const HeapVerifier::Finding& f : report.findings) {
    if (shown++ >= 8) {
      ROLP_LOG_ERROR("  ... %zu more finding(s) suppressed", report.findings.size() - 8);
      break;
    }
    ROLP_LOG_ERROR("  finding: %s", f.detail.c_str());
  }
  if (report.has_fatal()) {
    // Root-set or forwarding-graph corruption: no quarantine can make
    // continued execution safe. Dump everything and abort.
    CrashContext::Dump(stderr);
    ROLP_CHECK_MSG(false, "heap verification found unrecoverable corruption "
                          "(root set or forwarding graph)");
  }
  if (profiler_ != nullptr) {
    profiler_->OnHeapCorruption(report.findings.size());
  }
  return true;
}

std::vector<uint32_t> Collector::QuarantineFlagged(HeapVerifier* verifier,
                                                   const std::vector<Region*>& doomed,
                                                   HeapVerifier::Report* report) {
  std::vector<uint32_t> kept = verifier->CascadeQuarantine(doomed, report);
  if (kept.empty()) {
    return kept;
  }
  // The cascade may itself uncover fatal forwarding corruption.
  if (report->has_fatal()) {
    CrashContext::Dump(stderr);
    ROLP_CHECK_MSG(false, "heap verification found unrecoverable corruption "
                          "(forwarding graph, during quarantine cascade)");
  }
  RegionManager& regions = heap_->regions();
  for (uint32_t idx : kept) {
    regions.Quarantine(&regions.region(idx), /*walkable=*/true);
  }
  verify_stats_.regions_quarantined += kept.size();
  MetricsRegistry::Instance().Counter("verify.regions_quarantined")->Add(kept.size());
  return kept;
}

void Collector::RecordCrossRegionEdges(Region* region) {
  RegionManager& regions = heap_->regions();
  uint32_t index = region->index();
  region->ForEachObject([&](Object* obj) {
    if (obj->class_id == kFreeBlockClassId) {
      return;
    }
    heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
      Object* v = slot->load(std::memory_order_relaxed);
      if (v == nullptr || !regions.Contains(v)) {
        return;
      }
      Region* vr = regions.RegionFor(v);
      if (vr != region && !vr->IsFree()) {
        vr->RemsetAddRegion(index);
      }
    });
  });
}

void Collector::ScrubRetiredEvacFailure(Region* region) {
  RegionManager& regions = heap_->regions();
  size_t live = 0;
  region->ForEachObject([&](Object* obj) {
    if (obj->class_id == kFreeBlockClassId) {
      return;
    }
    if (markword::IsForwarded(obj->LoadMark())) {
      obj->StoreMark(0);
      obj->class_id = kFreeBlockClassId;
      return;
    }
    live += obj->size_bytes;
    heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
      Object* v = slot->load(std::memory_order_relaxed);
      if (v == nullptr || !regions.Contains(v)) {
        return;
      }
      Region* vr = regions.RegionFor(v);
      if (vr != region && !vr->IsFree()) {
        vr->RemsetAddRegion(region->index());
      }
    });
  });
  region->set_live_bytes(live);
}

size_t Collector::ScrubDeadObjects(Region* region, const MarkBitmap& bitmap) {
  size_t scrubbed = 0;
  region->ForEachObject([&](Object* obj) {
    if (obj->class_id == kFreeBlockClassId || bitmap.IsMarked(obj)) {
      return;
    }
    obj->StoreMark(0);
    obj->class_id = kFreeBlockClassId;
    scrubbed += obj->size_bytes;
  });
  if (scrubbed > 0) {
    MetricsRegistry::Instance().Counter("gc.scrubbed_bytes")->Add(scrubbed);
  }
  return scrubbed;
}

}  // namespace rolp
