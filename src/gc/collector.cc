#include "src/gc/collector.h"

#include <chrono>
#include <thread>

namespace rolp {

Collector::Collector(Heap* heap, const GcConfig& config, SafepointManager* safepoints)
    : heap_(heap), config_(config), safepoints_(safepoints) {
  workers_ = std::make_unique<WorkerPool>(config_.num_workers);
  watchdog_ = GcWatchdog::CreateFromEnv(workers_.get());
}

void Collector::AllocationBackoff(int attempt) {
  if (attempt < 4) {
    std::this_thread::yield();
    return;
  }
  int shift = attempt - 4 < 7 ? attempt - 4 : 7;
  std::this_thread::sleep_for(std::chrono::microseconds(1 << shift));
}

}  // namespace rolp
