#include "src/gc/collector.h"

namespace rolp {

Collector::Collector(Heap* heap, const GcConfig& config, SafepointManager* safepoints)
    : heap_(heap), config_(config), safepoints_(safepoints) {
  workers_ = std::make_unique<WorkerPool>(config_.num_workers);
}

}  // namespace rolp
