// Z-like fully concurrent collector. Single-generation, region-based.
//
// Cycle: tiny STW mark-start pause (root scan) -> concurrent mark (slices
// driven from the allocation path, incremental-update store barrier) -> tiny
// STW remark -> relocation-set selection -> concurrent relocation (the LOAD
// BARRIER heals every reference read: objects in relocating regions are
// copied on first touch) -> concurrent remap (all live slots healed) -> the
// relocated regions are only then freed.
//
// This reproduces the paper's ZGC trade-off (section 2.2, section 8.5):
// pauses shrink to root scans, but every reference load pays a barrier
// (throughput) and relocated regions are held until remap completes (memory
// headroom).
#ifndef SRC_GC_ZGC_COLLECTOR_H_
#define SRC_GC_ZGC_COLLECTOR_H_

#include <atomic>
#include <vector>

#include "src/gc/collector.h"
#include "src/gc/mark_bitmap.h"

namespace rolp {

class ZgcCollector : public Collector {
 public:
  ZgcCollector(Heap* heap, const GcConfig& config, SafepointManager* safepoints);

  const char* name() const override { return "zgc"; }

  AllocResult AllocateSlow(MutatorContext* ctx, const AllocRequest& req) override;
  Region* RefillTlab(MutatorContext* ctx) override;
  void CollectFull(MutatorContext* ctx) override;

  enum class Phase : int { kIdle, kMarking, kRelocating, kRemapping };
  Phase phase() const { return phase_.load(std::memory_order_relaxed); }

  // --- Barrier entry points -------------------------------------------------
  // Load barrier: heals references into relocating regions.
  Object* LoadBarrier(std::atomic<Object*>* slot);
  // Store barrier: grays newly stored values while marking.
  void MarkingBarrier(Object* value) {
    if (phase_.load(std::memory_order_relaxed) == Phase::kMarking && value != nullptr) {
      std::lock_guard<SpinLock> guard(gray_lock_);
      gray_queue_.push_back(value);
    }
  }

  uint64_t relocated_bytes() const { return relocated_bytes_.load(std::memory_order_relaxed); }
  uint64_t cycles_completed() const { return cycles_completed_.load(std::memory_order_relaxed); }
  // Slots healed by the mutator load barrier (reference found pointing into a
  // relocating region during a read) vs. objects proactively copied by the
  // GC's relocation slices. Their ratio shows how much relocation work the
  // barrier absorbs versus the allocation-paced background sweep.
  uint64_t barrier_healed_slots() const {
    return barrier_healed_slots_.load(std::memory_order_relaxed);
  }
  uint64_t gc_relocated_objects() const {
    return gc_relocated_objects_.load(std::memory_order_relaxed);
  }

 private:
  bool StartCycle(MutatorContext* ctx);        // STW mark-start
  void ConcurrentWork(MutatorContext* ctx, size_t budget_bytes);
  void MarkSlice(size_t budget_bytes);
  bool RemarkAndSelect(MutatorContext* ctx);   // STW remark + relocation set
  void RelocateSlice(size_t budget_bytes);
  void RemapSlice(size_t budget_bytes);
  void FinishCycle(MutatorContext* ctx);       // free relocated regions
  void DoFull(MutatorContext* ctx);            // allocation-stall fallback

  // Copies an object out of a relocating region; safe to race with other
  // healers (CAS forwarding). When this call performed the winning copy,
  // *copied_here is set (callers use it to attribute the copy).
  Object* Relocate(Object* obj, bool* copied_here = nullptr);
  char* AllocToSpace(size_t bytes);

  double Occupancy() const;

  MarkBitmap bitmap_;
  std::atomic<Phase> phase_{Phase::kIdle};

  SpinLock gray_lock_;
  std::vector<Object*> gray_queue_;
  SpinLock work_lock_;                 // serializes mark and remap slices
  std::vector<Object*> mark_stack_;

  SpinLock to_space_lock_;
  Region* to_space_region_ = nullptr;

  std::vector<Region*> relocation_set_;
  // Relocation is sharded by whole region: each thread claims the next
  // unclaimed region with a fetch_add and relocates it end to end, so any
  // number of mutators push relocation forward in parallel without taking
  // work_lock_. The done counter advances the phase exactly once when the
  // last claimed region retires (the set itself only mutates under STW).
  std::atomic<size_t> relocate_claim_{0};
  std::atomic<size_t> relocate_done_{0};
  // Concurrent remap only walks regions that existed (with frozen tops) at
  // the relocate-start pause; regions created after it (fresh TLABs,
  // to-space) are remapped inside the final STW pause, where their tops are
  // stable. This avoids racing walks against in-flight bump allocations.
  std::vector<uint32_t> remap_snapshot_;
  size_t remap_cursor_ = 0;            // index into remap_snapshot_

  std::atomic<uint64_t> relocated_bytes_{0};
  std::atomic<uint64_t> cycles_completed_{0};
  std::atomic<uint64_t> barrier_healed_slots_{0};
  std::atomic<uint64_t> gc_relocated_objects_{0};
};

class ZBarrierSet : public BarrierSet {
 public:
  explicit ZBarrierSet(ZgcCollector* z) : z_(z) {}

  void StoreBarrier(Object* src, std::atomic<Object*>* slot, Object* value) override {
    z_->MarkingBarrier(value);
  }
  Object* LoadBarrier(std::atomic<Object*>* slot) override { return z_->LoadBarrier(slot); }
  bool needs_load_barrier() const override { return true; }

 private:
  ZgcCollector* z_;
};

}  // namespace rolp

#endif  // SRC_GC_ZGC_COLLECTOR_H_
