#include "src/gc/mark_compact.h"

#include <cstring>

#include "src/util/log.h"

namespace rolp {

uint64_t MarkCompact::Collect(SafepointManager* safepoints, WorkerPool* workers) {
  RegionManager& regions = heap_->regions();

  // Full collection recomputes liveness from roots without remsets, which
  // removes the reason walkable quarantined regions were pinned: lift their
  // quarantine so this cycle compacts them away like any other region.
  // Unscannable regions (broken tiling) stay pinned and untouched forever.
  regions.ForEachRegion([&](Region* r) { regions.Unquarantine(r); });

  // Phase 1: mark.
  Marker marker(heap_, bitmap_);
  marker.MarkFromRoots(safepoints, workers);

  // Free dead humongous objects; collect the compactable region sequence in
  // address order. Regions whose remset names an unscannable quarantined
  // region are pinned out of compaction: the references held inside the
  // unscannable region can never be fixed up, so the objects they name must
  // not move. (Marking still traced *through* those objects, so everything
  // they reference is marked and gets normal treatment.)
  const bool check_pinned = !regions.UnscannableQuarantined().empty();
  std::vector<Region*> sequence;
  std::vector<Region*> pinned;  // walkable, but immovable this cycle
  regions.ForEachRegion([&](Region* r) {
    if (r->kind() == RegionKind::kHumongous && r->live_bytes() == 0 &&
        !r->quarantined()) {
      regions.FreeRegion(r);
      return;
    }
    if (r->IsFree() || r->IsHumongous() || r->IsUnscannable()) {
      return;
    }
    if (check_pinned && regions.PinnedByQuarantine(r)) {
      pinned.push_back(r);
      return;
    }
    sequence.push_back(r);
  });

  // Phase 2: compute forwarding addresses. Destination cursor walks the same
  // region sequence; objects never move to a higher address.
  struct Cursor {
    size_t region_idx = 0;
    char* p = nullptr;
  };
  Cursor dest;
  std::vector<char*> new_tops(sequence.size(), nullptr);
  for (size_t i = 0; i < sequence.size(); i++) {
    new_tops[i] = sequence[i]->begin();
  }
  if (!sequence.empty()) {
    dest.p = sequence[0]->begin();
  }
  std::vector<std::pair<Object*, uint64_t>> preserved;  // original marks, in move order
  auto advance_dest = [&](size_t bytes) -> char* {
    while (true) {
      Region* dr = sequence[dest.region_idx];
      if (static_cast<size_t>(dr->end() - dest.p) >= bytes) {
        char* at = dest.p;
        dest.p += bytes;
        new_tops[dest.region_idx] = dest.p;
        return at;
      }
      dest.region_idx++;
      ROLP_CHECK(dest.region_idx < sequence.size());
      dest.p = sequence[dest.region_idx]->begin();
    }
  };
  for (Region* r : sequence) {
    r->ForEachObject([&](Object* obj) {
      if (!bitmap_->IsMarked(obj)) {
        return;
      }
      char* to = advance_dest(obj->size_bytes);
      preserved.emplace_back(obj, obj->LoadMark());
      obj->StoreMark(markword::EncodeForwarded(reinterpret_cast<Object*>(to)));
    });
  }
  // Phase 3: update references (roots + all live objects' fields).
  auto fix_slot = [&](std::atomic<Object*>* slot) {
    Object* v = slot->load(std::memory_order_relaxed);
    if (v == nullptr) {
      return;
    }
    uint64_t m = v->LoadMark();
    if (markword::IsForwarded(m)) {
      slot->store(markword::ForwardedPtr(m), std::memory_order_relaxed);
    }
  };
  heap_->roots().ForEach(fix_slot);
  safepoints->ForEachThread([&](MutatorContext* ctx) {
    for (auto& slot : ctx->local_roots) {
      fix_slot(&slot);
    }
  });
  // Live objects: compacted ones are exactly `preserved`; humongous live
  // objects are walked separately. Distinct objects' slots are disjoint and
  // fix_slot only reads forwarding info, so the fix-up shards freely across
  // GC workers.
  auto fix_object_fields = [&](Object* obj) {
    // Iterate fields using the original object location (class info comes
    // from non-mark header words, still intact).
    heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) { fix_slot(slot); });
  };
  if (workers != nullptr) {
    workers->ParallelFor(preserved.size(), 1024,
                         [&](uint32_t, size_t begin, size_t end) {
                           for (size_t i = begin; i < end; i++) {
                             fix_object_fields(preserved[i].first);
                           }
                         });
  } else {
    for (auto& [obj, mark] : preserved) {
      fix_object_fields(obj);
    }
  }
  regions.ForEachRegion([&](Region* r) {
    if (r->kind() == RegionKind::kHumongous && r->live_bytes() > 0 &&
        !r->IsUnscannable()) {
      r->ForEachObject([&](Object* obj) {
        heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) { fix_slot(slot); });
      });
    }
  });
  // Pinned regions don't move, but their fields may point at compacted
  // objects; they are walkable, so fix them in place.
  for (Region* r : pinned) {
    r->ForEachObject([&](Object* obj) {
      heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) { fix_slot(slot); });
    });
  }

  // Phase 4: move objects and restore marks. `preserved` is in source-walk
  // order, which equals destination order, so memmove is always safe.
  uint64_t moved_bytes = 0;
  for (auto& [obj, mark] : preserved) {
    Object* to = markword::ForwardedPtr(obj->LoadMark());
    size_t size = obj->size_bytes;
    if (to != obj) {
      std::memmove(to, obj, size);
      moved_bytes += size;
    }
    to->StoreMark(mark);
  }

  // Phase 5: fix region metadata. Compacted regions become old; empty tails
  // are freed. Every surviving region gets its remembered set rebuilt.
  std::vector<Region*> occupied;
  for (size_t i = 0; i < sequence.size(); i++) {
    Region* r = sequence[i];
    r->set_top(new_tops[i]);
    if (r->used() == 0) {
      regions.FreeRegion(r);
    } else {
      regions.RetireToOld(r);
      r->set_in_cset(false);
      r->set_live_bytes(r->used());
      occupied.push_back(r);
    }
  }
  regions.ForEachRegion([&](Region* r) {
    if (r->kind() == RegionKind::kHumongous && r->live_bytes() > 0 &&
        !r->IsUnscannable()) {
      occupied.push_back(r);
    }
  });
  // Pinned regions survive in place, treated as fully live (the unscannable
  // references keeping them pinned cannot be enumerated). They are walkable
  // rebuild sources like any other surviving region.
  for (Region* r : pinned) {
    if (r->IsYoung()) {
      regions.RetireToOld(r);
    }
    r->set_in_cset(false);
    r->set_live_bytes(r->used());
    occupied.push_back(r);
  }

  RebuildRemsets(occupied, workers);
  bitmap_->ClearAll();
  return moved_bytes;
}

void MarkCompact::RebuildRemsets(const std::vector<Region*>& occupied,
                                 WorkerPool* workers) {
  RegionManager& regions = heap_->regions();
  // A remset entry naming an unscannable quarantined region is the only
  // record that the unscannable region holds references into the target
  // (PinnedByQuarantine depends on it), and it cannot be recomputed — the
  // source can never be walked again. Carry those entries across the rebuild.
  std::vector<uint32_t> unscannable = regions.UnscannableQuarantined();
  std::vector<std::pair<Region*, uint32_t>> quarantine_edges;
  if (!unscannable.empty()) {
    regions.ForEachRegion([&](Region* r) {
      for (uint32_t u : unscannable) {
        if (r->RemsetContainsRegion(u)) {
          quarantine_edges.emplace_back(r, u);
        }
      }
    });
  }
  regions.ForEachRegion([](Region* r) { r->ClearRemset(); });
  for (auto& [r, u] : quarantine_edges) {
    r->RemsetAddRegion(u);
  }
  auto rebuild_one = [&](Region* src) {
    uint32_t src_index = src->index();
    src->ForEachObject([&](Object* obj) {
      heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
        Object* v = slot->load(std::memory_order_relaxed);
        if (v == nullptr) {
          return;
        }
        Region* vr = regions.RegionFor(v);
        if (vr == src) {
          return;
        }
        // Post-compaction there are no young regions; record all cross-region
        // edges. RemsetAddRegion is an atomic fetch_or, so source regions
        // rebuild in parallel.
        vr->RemsetAddRegion(src_index);
      });
    });
  };
  if (workers != nullptr) {
    workers->ParallelFor(occupied.size(), 1,
                         [&](uint32_t, size_t begin, size_t end) {
                           for (size_t i = begin; i < end; i++) {
                             rebuild_one(occupied[i]);
                           }
                         });
  } else {
    for (Region* src : occupied) {
      rebuild_one(src);
    }
  }
}

}  // namespace rolp
