// Stop-the-world parallel marking. Fills the mark bitmap and per-region live
// byte counts. Used by mixed collections (to pick the collection set), by the
// full-compaction fallback, and by the CMS final accounting.
#ifndef SRC_GC_MARKING_H_
#define SRC_GC_MARKING_H_

#include <vector>

#include "src/gc/mark_bitmap.h"
#include "src/gc/thread_context.h"
#include "src/gc/watchdog/cancellation.h"
#include "src/gc/worker_pool.h"
#include "src/heap/heap.h"

namespace rolp {

class Marker {
 public:
  Marker(Heap* heap, MarkBitmap* bitmap) : heap_(heap), bitmap_(bitmap) {}

  // Must run while the world is stopped. Clears the bitmap and all region
  // live counts, then traces from global roots and every registered thread's
  // local roots. Humongous objects are marked on their head region.
  //
  // If `cancel` is set (watchdog), workers poll it every ~64 objects and bail
  // out; cancelled() then reports true and the bitmap/live counts are
  // PARTIAL — callers must discard them and fall back to a full STW cycle.
  void MarkFromRoots(SafepointManager* safepoints, WorkerPool* workers,
                     CancellationToken* cancel = nullptr);

  bool cancelled() const { return cancelled_; }

  // Marks a single object and traces everything reachable from it
  // (single-threaded; used for incremental building blocks and tests).
  void MarkAndTrace(Object* obj);

  uint64_t marked_objects() const { return marked_objects_; }
  uint64_t marked_bytes() const { return marked_bytes_; }

 private:
  void TraceWorklist(std::vector<Object*>* stack);
  // Marks obj if unmarked; pushes to stack. Accounts live bytes.
  void Visit(Object* obj, std::vector<Object*>* stack);

  Heap* heap_;
  MarkBitmap* bitmap_;
  uint64_t marked_objects_ = 0;
  uint64_t marked_bytes_ = 0;
  bool cancelled_ = false;
};

}  // namespace rolp

#endif  // SRC_GC_MARKING_H_
