// Abstract collector interface. The runtime's allocation fast path is a TLAB
// bump; everything else (TLAB refill, pretenured allocation, humongous
// allocation, GC triggering) funnels into AllocateSlow.
#ifndef SRC_GC_COLLECTOR_H_
#define SRC_GC_COLLECTOR_H_

#include <memory>

#include "src/gc/gc_config.h"
#include "src/gc/gc_metrics.h"
#include "src/gc/profiler_hooks.h"
#include "src/gc/thread_context.h"
#include "src/gc/worker_pool.h"
#include "src/heap/heap.h"

namespace rolp {

struct AllocRequest {
  ClassId cls = 0;
  size_t total_bytes = 0;    // header + payload, aligned
  uint64_t array_length = 0; // for array classes
  uint32_t context = 0;      // allocation context to install (0 = unprofiled)
  // 0 = young, 1..14 = NG2C dynamic generation, 15 = old (pretenured).
  uint8_t target_gen = kYoungGen;
};

class Collector {
 public:
  Collector(Heap* heap, const GcConfig& config, SafepointManager* safepoints);
  virtual ~Collector() = default;

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  virtual const char* name() const = 0;

  // Allocates and initializes an object when the TLAB fast path cannot. May
  // stop the world. Returns nullptr only on genuine out-of-memory.
  virtual Object* AllocateSlow(MutatorContext* ctx, const AllocRequest& req) = 0;

  // Hands the mutator a fresh eden region for its TLAB, possibly collecting
  // first. Returns nullptr on out-of-memory.
  virtual Region* RefillTlab(MutatorContext* ctx) = 0;

  // Forces a full collection (tests, examples, leak reports).
  virtual void CollectFull(MutatorContext* ctx) = 0;

  // Called when a mutator thread exits; releases its TLAB region back.
  virtual void OnMutatorExit(MutatorContext* ctx) { ctx->tlab.Release(); }

  GcMetrics& metrics() { return metrics_; }
  const GcConfig& config() const { return config_; }
  Heap& heap() { return *heap_; }
  SafepointManager& safepoints() { return *safepoints_; }

  void set_profiler(ProfilerHooks* profiler) { profiler_ = profiler; }
  ProfilerHooks* profiler() const { return profiler_; }

 protected:
  Heap* heap_;
  GcConfig config_;
  SafepointManager* safepoints_;
  GcMetrics metrics_;
  ProfilerHooks* profiler_ = nullptr;
  std::unique_ptr<WorkerPool> workers_;
};

}  // namespace rolp

#endif  // SRC_GC_COLLECTOR_H_
