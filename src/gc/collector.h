// Abstract collector interface. The runtime's allocation fast path is a TLAB
// bump; everything else (TLAB refill, pretenured allocation, humongous
// allocation, GC triggering) funnels into AllocateSlow.
#ifndef SRC_GC_COLLECTOR_H_
#define SRC_GC_COLLECTOR_H_

#include <memory>

#include "src/gc/gc_config.h"
#include "src/gc/gc_metrics.h"
#include "src/gc/heap_verifier.h"
#include "src/gc/profiler_hooks.h"
#include "src/gc/thread_context.h"
#include "src/gc/watchdog/gc_watchdog.h"
#include "src/gc/worker_pool.h"
#include "src/heap/heap.h"

namespace rolp {

struct AllocRequest {
  ClassId cls = 0;
  size_t total_bytes = 0;    // header + payload, aligned
  uint64_t array_length = 0; // for array classes
  uint32_t context = 0;      // allocation context to install (0 = unprofiled)
  // 0 = young, 1..14 = NG2C dynamic generation, 15 = old (pretenured).
  uint8_t target_gen = kYoungGen;
};

// Outcome of a slow-path allocation. Genuine out-of-memory is recoverable:
// the collector runs bounded GC-and-retry and then reports kOutOfMemory
// instead of aborting, so callers (workloads, services) can shed load, free
// caches, or fail the one request while the process lives on.
enum class AllocStatus : uint8_t {
  kOk,
  kOutOfMemory,  // bounded GC-and-retry exhausted without satisfying the request
};

struct AllocResult {
  Object* object = nullptr;
  AllocStatus status = AllocStatus::kOk;
  // Collections this request triggered before succeeding or giving up.
  uint8_t gc_attempts = 0;

  bool ok() const { return status == AllocStatus::kOk; }

  static AllocResult Ok(Object* obj, uint8_t attempts = 0) {
    return AllocResult{obj, AllocStatus::kOk, attempts};
  }
  static AllocResult OutOfMemory(uint8_t attempts) {
    return AllocResult{nullptr, AllocStatus::kOutOfMemory, attempts};
  }
};

// Cumulative in-pause verification accounting (see DESIGN.md section 12).
struct VerifyStats {
  uint64_t passes = 0;
  uint64_t findings = 0;
  uint64_t refs_healed = 0;
  uint64_t refs_nulled = 0;
  uint64_t passes_cancelled = 0;
  uint64_t regions_quarantined = 0;
};

class Collector {
 public:
  Collector(Heap* heap, const GcConfig& config, SafepointManager* safepoints);
  virtual ~Collector() = default;

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  virtual const char* name() const = 0;

  // Allocates and initializes an object when the TLAB fast path cannot. May
  // stop the world (bounded GC-and-retry). Never aborts: genuine exhaustion
  // comes back as AllocStatus::kOutOfMemory.
  virtual AllocResult AllocateSlow(MutatorContext* ctx, const AllocRequest& req) = 0;

  // Hands the mutator a fresh eden region for its TLAB, possibly collecting
  // first. Returns nullptr on out-of-memory.
  virtual Region* RefillTlab(MutatorContext* ctx) = 0;

  // Forces a full collection (tests, examples, leak reports).
  virtual void CollectFull(MutatorContext* ctx) = 0;

  // Called when a mutator thread exits; releases its TLAB region back.
  virtual void OnMutatorExit(MutatorContext* ctx) { ctx->tlab.Release(); }

  GcMetrics& metrics() { return metrics_; }
  const GcConfig& config() const { return config_; }
  Heap& heap() { return *heap_; }
  SafepointManager& safepoints() { return *safepoints_; }

  void set_profiler(ProfilerHooks* profiler) { profiler_ = profiler; }
  ProfilerHooks* profiler() const { return profiler_; }

  // nullptr when ROLP_WATCHDOG=0 (the disabled watchdog has no cost).
  GcWatchdog* watchdog() const { return watchdog_.get(); }
  // Replaces the env-configured watchdog (tests use short deadlines).
  void InstallWatchdog(const WatchdogConfig& config) {
    watchdog_ = std::make_unique<GcWatchdog>(config, workers_.get());
  }
  WorkerPool* workers() const { return workers_.get(); }

  // In-pause verification knobs (ROLP_VERIFY / ROLP_VERIFY_SAMPLE at
  // construction; tests and the runtime override, e.g. to install the
  // OLD-table cross-check or force exhaustive sampling).
  const VerifyOptions& verify_options() const { return verify_options_; }
  VerifyOptions& mutable_verify_options() { return verify_options_; }
  const VerifyStats& verify_stats() const { return verify_stats_; }

 protected:
  // Recovery policy for a completed verification pass: account the report,
  // log findings, abort (with crash context) on fatal corruption, and push
  // the profiler into degraded mode otherwise. Returns true if the report
  // carried any finding.
  bool ApplyVerification(const char* when, const HeapVerifier::Report& report);

  // Quarantines every region the post-evacuation check flagged (closing the
  // set over `doomed` first). Quarantined regions must not be freed by the
  // caller. Returns the quarantined region indices.
  std::vector<uint32_t> QuarantineFlagged(HeapVerifier* verifier,
                                          const std::vector<Region*>& doomed,
                                          HeapVerifier::Report* report);

  // An evacuation-failure region retired to old still holds the stale
  // originals of successfully-copied objects, and its in-place survivors'
  // cross-region edges were recorded under young-to-young rules. Scrub the
  // stale copies into free blocks, recount live bytes, and re-record the
  // survivors' edges in the targets' remsets so the retired region is
  // indistinguishable from a normal old region.
  void ScrubRetiredEvacFailure(Region* region);

  // Region scrubbing (G1-style, post-remark): overwrite every unmarked object
  // in a tenured region with a free-block header. Precise (marks-trusted)
  // collections skip dead objects when scanning remset sources, so dead
  // objects keep whatever references they held when they died — stale edges
  // into regions the cycle frees. Nothing live ever reads those slots, but
  // the conservative heap walk does, and conservative young scans would
  // resurrect their referents. Scrubbing removes the stale slots from the
  // parsable heap. Safe to run concurrently with mutators: unmarked objects
  // are unreachable, and region iteration reads only size_bytes, which
  // scrubbing never changes. Returns the number of bytes scrubbed.
  size_t ScrubDeadObjects(Region* region, const MarkBitmap& bitmap);

  // Records every cross-region edge held by `region`'s objects in the
  // targets' remsets. Needed when a young region is retired in place (pinned
  // by quarantine): its outgoing edges were recorded under young-source rules
  // — i.e. never — so without this, references into the same pause's
  // collection set would go undiscovered and later pauses could not rescan
  // the region as a remset source.
  void RecordCrossRegionEdges(Region* region);

  // Monotonic pass counter driving the rotating sampling offset.
  uint64_t NextVerifyPass() { return verify_pass_++; }

  // Bounded backoff between failed allocation attempts: lets a competing
  // thread's collection finish instead of hammering the region lock, without
  // ever blocking indefinitely.
  static void AllocationBackoff(int attempt);

  Heap* heap_;
  GcConfig config_;
  SafepointManager* safepoints_;
  GcMetrics metrics_;
  ProfilerHooks* profiler_ = nullptr;
  std::unique_ptr<WorkerPool> workers_;
  std::unique_ptr<GcWatchdog> watchdog_;

  VerifyOptions verify_options_;
  VerifyStats verify_stats_;
  uint64_t verify_pass_ = 0;
};

}  // namespace rolp

#endif  // SRC_GC_COLLECTOR_H_
