// Regional generational collector.
//
// With dynamic generations disabled this is the G1 baseline: TLAB young
// allocation, stop-the-world young evacuation with aging/tenuring, mixed
// collections (mark + evacuate the emptiest tenured regions) once tenured
// occupancy crosses a threshold, and a sliding mark-compact full-GC fallback.
//
// With dynamic generations enabled this is NG2C (paper section 7.1): the old
// space is subdivided into 14 dynamic generations plus the old generation
// proper, and allocation requests may target any of them directly
// (pretenuring). Requests carry the target generation chosen either by
// workload annotations (NG2C mode) or by the ROLP profiler (ROLP mode).
#ifndef SRC_GC_REGIONAL_COLLECTOR_H_
#define SRC_GC_REGIONAL_COLLECTOR_H_

#include <array>
#include <atomic>

#include "src/gc/collector.h"
#include "src/gc/mark_bitmap.h"
#include "src/util/spinlock.h"

namespace rolp {

class RegionalCollector : public Collector {
 public:
  RegionalCollector(Heap* heap, const GcConfig& config, SafepointManager* safepoints);

  const char* name() const override { return config_.use_dynamic_gens ? "ng2c" : "g1"; }

  AllocResult AllocateSlow(MutatorContext* ctx, const AllocRequest& req) override;
  Region* RefillTlab(MutatorContext* ctx) override;
  void CollectFull(MutatorContext* ctx) override;

  // Exposed for tests.
  size_t eden_target_regions() const { return eden_target_; }
  size_t eden_regions_in_use() const { return eden_in_use_.load(std::memory_order_relaxed); }

  // Runs one stop-the-world collection right now (benches/tests): young or
  // mixed by the usual occupancy trigger, or the full fallback when
  // force_full. Returns false if another thread's collection ran instead.
  bool CollectNow(MutatorContext* ctx, bool force_full = false) {
    return TryCollect(ctx, force_full);
  }

 private:
  // Stops the world and collects. Returns false if another thread's collection
  // ran instead (caller should retry its allocation).
  bool TryCollect(MutatorContext* ctx, bool force_full);

  // The following run with the world stopped.
  void DoYoungOrMixed(MutatorContext* ctx);
  void DoFull(uint64_t t0);
  void PreparePause();

  AllocResult AllocatePretenured(MutatorContext* ctx, const AllocRequest& req);
  AllocResult AllocateHumongousObject(MutatorContext* ctx, const AllocRequest& req);

  // Fraction of heap regions holding tenured data (old + gens + humongous).
  double TenuredOccupancy() const;

  // Ladder rung 4: if the watchdog flagged an overrun since the last pause,
  // tell the profiler so it can degrade survivor tracking.
  void ReportOverrunToProfiler();

  bool dynamic_gens_;
  size_t eden_target_;
  std::atomic<size_t> eden_in_use_{0};

  SpinLock gen_lock_;
  std::array<Region*, 16> gen_current_ = {};  // slot g: current region of gen g (15 = old)

  MarkBitmap bitmap_;
};

}  // namespace rolp

#endif  // SRC_GC_REGIONAL_COLLECTOR_H_
