// Regional generational collector.
//
// With dynamic generations disabled this is the G1 baseline: TLAB young
// allocation, stop-the-world young evacuation with aging/tenuring, mixed
// collections (mark + evacuate the emptiest tenured regions) once tenured
// occupancy crosses a threshold, and a sliding mark-compact full-GC fallback.
//
// With dynamic generations enabled this is NG2C (paper section 7.1): the old
// space is subdivided into 14 dynamic generations plus the old generation
// proper, and allocation requests may target any of them directly
// (pretenuring). Requests carry the target generation chosen either by
// workload annotations (NG2C mode) or by the ROLP profiler (ROLP mode).
#ifndef SRC_GC_REGIONAL_COLLECTOR_H_
#define SRC_GC_REGIONAL_COLLECTOR_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/gc/collector.h"
#include "src/gc/mark_bitmap.h"
#include "src/util/spinlock.h"

namespace rolp {

class RegionalCollector : public Collector {
 public:
  RegionalCollector(Heap* heap, const GcConfig& config, SafepointManager* safepoints);
  ~RegionalCollector() override;

  const char* name() const override { return config_.use_dynamic_gens ? "ng2c" : "g1"; }

  AllocResult AllocateSlow(MutatorContext* ctx, const AllocRequest& req) override;
  Region* RefillTlab(MutatorContext* ctx) override;
  void CollectFull(MutatorContext* ctx) override;

  // Exposed for tests.
  size_t eden_target_regions() const { return eden_target_; }
  size_t eden_regions_in_use() const { return eden_in_use_.load(std::memory_order_relaxed); }

  // Runs one stop-the-world collection right now (benches/tests): young or
  // mixed by the usual occupancy trigger, or the full fallback when
  // force_full. Returns false if another thread's collection ran instead.
  bool CollectNow(MutatorContext* ctx, bool force_full = false) {
    return TryCollect(ctx, force_full);
  }

  // --- Concurrent evacuation (config.concurrent_evac; DESIGN.md section 14)
  // True while a concurrent evacuation window is armed: collection-set
  // regions are flagged evacuating and every mutator reference load must pass
  // the healing barrier. Toggled only inside pauses.
  bool evac_armed() const { return evac_armed_.load(std::memory_order_acquire); }

  // Load-barrier slow path: returns the to-space address of `v` if its region
  // is being evacuated (copying it on first touch), else `v`. Also heals the
  // slot and maintains the remembered set. Called by RegionalBarrierSet from
  // any mutator thread while evac_armed().
  Object* HealSlot(std::atomic<Object*>* slot, Object* v);

  // True from the arming pause until the final remap pause retires the cycle.
  bool concurrent_cycle_active() const {
    return concurrent_active_.load(std::memory_order_acquire);
  }

  // Blocks (as a safe region) until the in-flight concurrent cycle retires.
  // No-op when none is active. Tests and benches use this to make pause
  // metrics deterministic; allocation paths use it instead of stacking a
  // second collection on top of a running cycle.
  void WaitForConcurrentCycle(MutatorContext* ctx);

  // NG2C whole-region fast path: tenured (old/gen) cset regions with zero
  // marked live bytes, freed in the arming pause with zero copying.
  uint64_t whole_regions_reclaimed() const {
    return whole_regions_reclaimed_.load(std::memory_order_relaxed);
  }
  // Copy-on-first-touch heals performed by mutators (vs. GC workers).
  uint64_t mutator_healed_objects() const {
    return mutator_healed_objects_.load(std::memory_order_relaxed);
  }
  uint64_t mutator_healed_bytes() const {
    return mutator_healed_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct ConcurrentCycle;
  // Stops the world and collects. Returns false if another thread's collection
  // ran instead (caller should retry its allocation).
  bool TryCollect(MutatorContext* ctx, bool force_full);

  // The following run with the world stopped.
  void DoYoungOrMixed(MutatorContext* ctx);
  void DoFull(uint64_t t0);
  void PreparePause();

  // Concurrent-evacuation cycle stages. Start runs at the tail of the arming
  // pause: flags the cset evacuating, heals all roots (to-space invariant:
  // after this no root can hand a mutator a from-space cset pointer), arms
  // the barrier, records the initial pause, and spawns the driver thread.
  void StartConcurrentEvacuation(std::vector<Region*> cset,
                                 std::vector<Region*> remset_sources,
                                 std::vector<Region*> scrub_list,
                                 std::vector<std::atomic<Object*>*> roots, bool mixed,
                                 bool trust_marks, bool survivor_tracking, uint64_t t0,
                                 uint64_t mark_ns, uint64_t evac_t0);
  // Driver thread body: runs the copy workers off-pause under the watchdog's
  // kConcurrentEvac deadline, then stops the world for the final remap pause.
  void ConcurrentDriver();
  // Final remap pause (world stopped, driver thread): drains leftover
  // injected work, re-heals roots, retires/frees the cset, verifies, disarms
  // the barrier, and publishes cycle metrics.
  void FinishConcurrentCycle();

  AllocResult AllocatePretenured(MutatorContext* ctx, const AllocRequest& req);
  AllocResult AllocateHumongousObject(MutatorContext* ctx, const AllocRequest& req);

  // Fraction of heap regions holding tenured data (old + gens + humongous).
  double TenuredOccupancy() const;

  // Ladder rung 4: if the watchdog flagged an overrun since the last pause,
  // tell the profiler so it can degrade survivor tracking.
  void ReportOverrunToProfiler();

  bool dynamic_gens_;
  size_t eden_target_;
  std::atomic<size_t> eden_in_use_{0};

  SpinLock gen_lock_;
  std::array<Region*, 16> gen_current_ = {};  // slot g: current region of gen g (15 = old)

  MarkBitmap bitmap_;

  // --- Concurrent evacuation state ---
  std::atomic<bool> evac_armed_{false};
  std::atomic<bool> concurrent_active_{false};
  std::unique_ptr<ConcurrentCycle> cycle_;  // valid while concurrent_active_
  std::thread concurrent_thread_;           // joined lazily + in the dtor
  std::mutex cycle_mu_;
  std::condition_variable cycle_cv_;
  std::atomic<uint64_t> whole_regions_reclaimed_{0};
  std::atomic<uint64_t> mutator_healed_objects_{0};
  std::atomic<uint64_t> mutator_healed_bytes_{0};
};

// Barrier set installed when concurrent evacuation is configured. Stores keep
// the classic remembered-set barrier; loads additionally heal references into
// evacuating regions while a cycle is armed. Disarmed, needs_load_barrier()
// is false and Heap::LoadRef never even calls LoadBarrier — the knob costs
// nothing outside an armed window.
class RegionalBarrierSet : public RemsetBarrierSet {
 public:
  RegionalBarrierSet(RegionManager* regions, RegionalCollector* collector)
      : RemsetBarrierSet(regions), collector_(collector) {}

  Object* LoadBarrier(std::atomic<Object*>* slot) override {
    Object* v = slot->load(std::memory_order_acquire);
    if (v == nullptr || !collector_->evac_armed()) {
      return v;
    }
    return collector_->HealSlot(slot, v);
  }

  bool needs_load_barrier() const override { return collector_->evac_armed(); }

 private:
  RegionalCollector* collector_;
};

}  // namespace rolp

#endif  // SRC_GC_REGIONAL_COLLECTOR_H_
