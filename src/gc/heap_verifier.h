// Heap invariant verifier.
//
// Two usage modes:
//
//  * Verify(): the original full-heap, serial debugging pass (tests call it
//    between operations). Checks that every non-free region is walkable, no
//    object is left forwarded outside a pause, every reference field points
//    at a plausible object, remembered sets are complete, and roots are sane.
//
//  * In-pause passes (ROLP_VERIFY=pause|full): cost-bounded checks that run
//    at GC phase boundaries while the world is stopped, parallelized over the
//    collector's WorkerPool and cancellable by the GC watchdog (they run
//    under GcPhase::kVerify). Pause-level passes walk 1 in
//    ROLP_VERIFY_SAMPLE regions with a rotating offset so successive pauses
//    cover the whole heap; full level walks everything.
//
//      - VerifyPostMark: mark bitmap vs region live accounting spot checks
//        (mismatched live counts are repaired in place — the recount is the
//        truth) and root-is-marked reachability probes.
//      - VerifyCollectionSet: after evacuation, no root and no surviving
//        object may still reference an unforwarded object in a region about
//        to be freed. References to forwarded objects are healed. Unforwarded
//        targets name regions the caller must quarantine instead of free;
//        CascadeQuarantine computes the closed set and scrubs the kept
//        regions so they stay walkable.
//      - VerifySampledWalk: structural region walks (tiling, reference
//        plausibility, stale forwarding, remset completeness) plus the
//        OLD-table cross-check: every live profiled object's allocation
//        context must resolve in the table.
//
// The verifier only reports; deciding to quarantine, degrade, or abort is the
// collector's recovery policy (Collector::ApplyVerification).
#ifndef SRC_GC_HEAP_VERIFIER_H_
#define SRC_GC_HEAP_VERIFIER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/gc/mark_bitmap.h"
#include "src/gc/thread_context.h"
#include "src/gc/watchdog/cancellation.h"
#include "src/gc/worker_pool.h"
#include "src/heap/heap.h"

namespace rolp {

// In-pause verification level (ROLP_VERIFY=off|pause|full).
enum class VerifyLevel : uint8_t { kOff, kPause, kFull };

const char* VerifyLevelName(VerifyLevel level);

struct VerifyOptions {
  VerifyLevel level = VerifyLevel::kOff;
  // Pause-level cost bound: each pass walks 1 in `sample_period` regions,
  // offset rotating per pass (ROLP_VERIFY_SAMPLE, default 8; full level
  // ignores it and walks everything).
  uint32_t sample_period = 8;
  bool check_remsets = true;
  // OLD-table cross-check: returns whether the profiler can account for a
  // nonzero allocation context seen on a live object. Null disables the
  // check.
  std::function<bool(uint32_t)> context_known;
  // Invoked once at the start of each sampled-walk pass, before any
  // context_known call, on the pause thread. Lets the installer refresh
  // per-pass state (the VM uses it to suppress the OLD-table check only for
  // passes where the table shed samples since the previous pass, instead of
  // forever after the first drop).
  std::function<void()> on_pass_begin;

  bool enabled() const { return level != VerifyLevel::kOff; }
  uint32_t EffectivePeriod() const {
    return level == VerifyLevel::kFull || sample_period < 1 ? 1 : sample_period;
  }

  // Reads ROLP_VERIFY / ROLP_VERIFY_SAMPLE.
  static VerifyOptions FromEnv();
};

class HeapVerifier {
 public:
  struct Finding {
    enum class Kind : uint8_t {
      kRegionCorrupt,   // unwalkable tiling / implausible object inside a region
      kStaleForward,    // forwarded object found outside an evacuation pause
      kStaleRef,        // live reference into a region about to be freed
      kDanglingRef,     // reference to a free region or implausible object
      kMissingRemset,   // cross-region edge absent from the target's remset
      kBadMark,         // mark bitmap inconsistent with liveness accounting
      kOldTableMiss,    // live profiled context missing from the OLD table
      kRootCorrupt,     // root slot corruption (fatal)
      kForwardCycle,    // forwarding chain does not terminate (fatal)
    };
    static constexpr uint32_t kNoRegion = 0xFFFFFFFFu;

    Kind kind;
    uint32_t region = kNoRegion;  // offending region index, kNoRegion if none
    std::string detail;

    // Fatal findings mean the root set or forwarding graph itself is corrupt;
    // quarantine cannot make continued execution safe.
    bool fatal() const { return kind == Kind::kRootCorrupt || kind == Kind::kForwardCycle; }
  };

  struct Report {
    std::vector<std::string> errors;
    std::vector<Finding> findings;
    uint64_t objects_walked = 0;
    uint64_t refs_checked = 0;
    uint64_t regions_walked = 0;
    uint64_t refs_healed = 0;  // stale refs rewritten to forwarding targets
    uint64_t refs_nulled = 0;  // dangling refs cleared by the repair walk
    bool cancelled = false;    // watchdog cancelled the pass (coverage partial)

    bool ok() const { return errors.empty(); }
    bool has_fatal() const;
    std::string Summary() const;
    void Merge(const Report& other);
    void Add(Finding finding);
  };

  HeapVerifier(Heap* heap, SafepointManager* safepoints, bool check_remsets = true)
      : heap_(heap), safepoints_(safepoints), check_remsets_(check_remsets) {}

  // Full verification. World must be stopped (or single-threaded quiescent).
  Report Verify();

  // --- In-pause passes (world stopped) -------------------------------------
  // `pass` rotates the sampling offset; `workers` may be null (serial).

  Report VerifyPostMark(const MarkBitmap* bitmap, WorkerPool* workers,
                        const VerifyOptions& opts, uint64_t pass,
                        CancellationToken* cancel = nullptr);

  // `doomed` lists exactly the regions the collector is about to free (cset
  // minus evacuation-failure and already-quarantined regions). `live_filter`,
  // when given, restricts the survivor scan to marked objects — required
  // whenever evacuation itself filtered sources by the bitmap (mixed
  // collections, ZGC relocation), since dead objects' slots legitimately
  // still point into the collection set there.
  Report VerifyCollectionSet(const std::vector<Region*>& doomed, WorkerPool* workers,
                             const VerifyOptions& opts, uint64_t pass,
                             CancellationToken* cancel = nullptr,
                             const MarkBitmap* live_filter = nullptr);

  // Closes the quarantine set over `doomed` starting from the regions flagged
  // in `report` (kStaleRef findings): walks each kept region, heals its
  // references, scrubs stale forwarded copies into free blocks, and pulls in
  // any other doomed region a surviving object still points into. Returns the
  // region indices to quarantine; appends healing counts to `report`.
  std::vector<uint32_t> CascadeQuarantine(const std::vector<Region*>& doomed,
                                          Report* report);

  // `repair` nulls dangling references instead of only reporting them (used
  // by in-pause runs; the test-facility Verify() never repairs).
  Report VerifySampledWalk(WorkerPool* workers, const VerifyOptions& opts, uint64_t pass,
                           bool repair, CancellationToken* cancel = nullptr);

 private:
  void VerifyRegion(Region* region, Report* report);
  void VerifyObjectRefs(Object* obj, Region* region, Report* report);
  bool PlausibleObject(Object* obj, Report* report, const char* what,
                       uint32_t region_index = Finding::kNoRegion);
  // Walk helper for the sampled structural pass (adds repair + OLD-table).
  void WalkRegionChecked(Region* region, const VerifyOptions& opts, bool repair,
                         Report* report);
  // Checks one slot against the doomed set; heals forwarded targets. Returns
  // the doomed region index the slot still points into (unforwarded target),
  // or Finding::kNoRegion.
  uint32_t CheckSlotAgainstDoomed(std::atomic<Object*>* slot, Region* slot_region,
                                  const std::vector<uint8_t>& doomed_map, Report* report,
                                  const char* what);
  void CheckRootsAgainstDoomed(const std::vector<uint8_t>& doomed_map, Report* report);

  Heap* heap_;
  SafepointManager* safepoints_;
  bool check_remsets_;
};

}  // namespace rolp

#endif  // SRC_GC_HEAP_VERIFIER_H_
