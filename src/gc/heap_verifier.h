// Heap invariant verifier — a debugging facility for collector development.
// Must run while the world is stopped (tests call it between operations or
// inside an explicit safepoint).
//
// Checks:
//   * every non-free region is walkable: object sizes are sane, aligned, and
//     tile the region exactly up to its top;
//   * no object is left forwarded outside a collection pause;
//   * every reference field points into an allocated (non-free) region, at a
//     plausible object (header readable, class id registered);
//   * remembered-set completeness: every cross-region reference that the
//     barrier should have recorded is present in the target's remset
//     (skipped for collectors that do not use remsets);
//   * reachability: all objects reachable from roots are within walkable
//     storage.
#ifndef SRC_GC_HEAP_VERIFIER_H_
#define SRC_GC_HEAP_VERIFIER_H_

#include <string>
#include <vector>

#include "src/gc/thread_context.h"
#include "src/heap/heap.h"

namespace rolp {

class HeapVerifier {
 public:
  struct Report {
    std::vector<std::string> errors;
    uint64_t objects_walked = 0;
    uint64_t refs_checked = 0;
    uint64_t regions_walked = 0;

    bool ok() const { return errors.empty(); }
    std::string Summary() const;
  };

  HeapVerifier(Heap* heap, SafepointManager* safepoints, bool check_remsets = true)
      : heap_(heap), safepoints_(safepoints), check_remsets_(check_remsets) {}

  // Full verification. World must be stopped (or single-threaded quiescent).
  Report Verify();

 private:
  void VerifyRegion(Region* region, Report* report);
  void VerifyObjectRefs(Object* obj, Region* region, Report* report);
  bool PlausibleObject(Object* obj, Report* report, const char* what);

  Heap* heap_;
  SafepointManager* safepoints_;
  bool check_remsets_;
};

}  // namespace rolp

#endif  // SRC_GC_HEAP_VERIFIER_H_
