#include "src/gc/regional_collector.h"

#include <algorithm>
#include <mutex>
#include <thread>
#include <vector>

#include "src/gc/evacuation.h"
#include "src/gc/mark_compact.h"
#include "src/gc/marking.h"
#include "src/gc/stealable_queue.h"
#include "src/util/clock.h"
#include "src/util/fault_injection.h"
#include "src/util/log.h"
#include "src/util/trace.h"

namespace rolp {

namespace {
constexpr int kMaxAllocationAttempts = 16;
}  // namespace

// Everything one concurrent evacuation cycle owns, alive from the arming
// pause to the end of the final remap pause. Mutators reach it through
// HealSlot; the pointer itself only changes inside pauses, so no lock guards
// it (a mutator cannot be mid-heal across a pause — there is no safepoint
// poll inside the load barrier).
struct RegionalCollector::ConcurrentCycle {
  ConcurrentCycle(Heap* heap, const GcConfig* config, ProfilerHooks* profiler,
                  bool survivor_tracking, uint32_t num_workers)
      : task(heap, config, profiler, survivor_tracking, &cancel), pool(num_workers) {
    task.set_concurrent(true);
    task.set_pool(&pool);
    eworkers.reserve(num_workers);
    for (uint32_t w = 0; w < num_workers; w++) {
      eworkers.push_back(task.MakeWorker(w));
    }
  }

  CancellationToken cancel;  // must precede task (task holds a pointer to it)
  EvacuationTask task;
  WorkStealingPool<Object*> pool;
  std::vector<EvacuationTask::Worker> eworkers;
  std::vector<Region*> cset;
  std::vector<Region*> remset_sources;
  std::vector<Region*> scrub_list;
  bool mixed = false;
  bool trust_marks = false;
  std::atomic<size_t> unit_cursor{0};
};

RegionalCollector::RegionalCollector(Heap* heap, const GcConfig& config,
                                     SafepointManager* safepoints)
    : Collector(heap, config, safepoints),
      dynamic_gens_(config.use_dynamic_gens),
      bitmap_(heap->regions().heap_base(), heap->regions().committed_bytes()) {
  if (config.concurrent_evac) {
    // Installed before mutators start; loads stay on the fast path until a
    // cycle arms (needs_load_barrier() is false while disarmed).
    heap->SetBarrierSet(std::make_unique<RegionalBarrierSet>(&heap->regions(), this));
  }
  size_t total = heap->regions().num_regions();
  eden_target_ = config_.young_regions != 0
                     ? config_.young_regions
                     : static_cast<size_t>(static_cast<double>(total) *
                                           heap->config().young_fraction);
  if (eden_target_ < 1) {
    eden_target_ = 1;
  }
  if (eden_target_ > total / 2) {
    eden_target_ = total / 2;
  }
}

RegionalCollector::~RegionalCollector() {
  // The driver thread of the last cycle may still be running; it only needs
  // the mutators to quiesce (VM teardown unregisters them) to finish its
  // final pause.
  if (concurrent_thread_.joinable()) {
    concurrent_thread_.join();
  }
}

double RegionalCollector::TenuredOccupancy() const {
  const RegionManager& regions = heap_->regions();
  return static_cast<double>(regions.tenured_regions()) /
         static_cast<double>(regions.num_regions());
}

Region* RegionalCollector::RefillTlab(MutatorContext* ctx) {
  // Heap-pressure governor rung 1: trigger collection early (before the eden
  // budget is exhausted) when occupancy crosses the GC watermark, so tenured
  // garbage is reclaimed while there is still evacuation headroom.
  HeapGovernor& governor = heap_->governor();
  governor.Update();
  if (governor.TakeGcRequest(NowNs()) &&
      !concurrent_active_.load(std::memory_order_relaxed)) {
    // With a concurrent cycle already in flight, a collection is effectively
    // in progress — swallow the governor request rather than stalling this
    // allocator behind the cycle (the governor re-requests if pressure
    // persists).
    TryCollect(ctx, /*force_full=*/false);
  }
  for (int attempt = 0; attempt < kMaxAllocationAttempts; attempt++) {
    if (eden_in_use_.load(std::memory_order_relaxed) < eden_target_) {
      Region* r = heap_->regions().AllocateRegion(RegionKind::kEden);
      if (r != nullptr) {
        eden_in_use_.fetch_add(1, std::memory_order_relaxed);
        ctx->tlab.Release();
        ctx->tlab.Install(r);
        return r;
      }
      // Eden budget remains but the heap has no free regions: tenured data
      // has taken over. Try a (likely mixed) collection first; escalate to
      // full compaction if that was not enough.
      TryCollect(ctx, /*force_full=*/attempt >= 2);
      AllocationBackoff(attempt);
      continue;
    }
    TryCollect(ctx, /*force_full=*/false);
    AllocationBackoff(attempt);
  }
  return nullptr;
}

AllocResult RegionalCollector::AllocateSlow(MutatorContext* ctx, const AllocRequest& req) {
  if (heap_->IsHumongousSize(req.total_bytes)) {
    return AllocateHumongousObject(ctx, req);
  }
  if (req.target_gen != kYoungGen && dynamic_gens_) {
    return AllocatePretenured(ctx, req);
  }
  for (int attempt = 0; attempt < kMaxAllocationAttempts; attempt++) {
    char* mem = ctx->tlab.Allocate(req.total_bytes);
    if (mem != nullptr) {
      return AllocResult::Ok(heap_->InitializeObject(mem, req.cls, req.total_bytes,
                                                     req.array_length, req.context),
                             static_cast<uint8_t>(attempt));
    }
    if (RefillTlab(ctx) == nullptr) {
      return AllocResult::OutOfMemory(static_cast<uint8_t>(attempt + 1));
    }
  }
  return AllocResult::OutOfMemory(kMaxAllocationAttempts);
}

AllocResult RegionalCollector::AllocatePretenured(MutatorContext* ctx, const AllocRequest& req) {
  uint8_t g = req.target_gen;
  ROLP_DCHECK(g >= 1 && g <= kOldGenId);
  RegionKind kind = g == kOldGenId ? RegionKind::kOld : RegionKind::kGen;
  uint8_t gen_tag = g == kOldGenId ? 0 : g;
  for (int attempt = 0; attempt < kMaxAllocationAttempts; attempt++) {
    {
      std::lock_guard<SpinLock> guard(gen_lock_);
      Region* r = gen_current_[g];
      char* mem = r != nullptr ? r->BumpAlloc(req.total_bytes) : nullptr;
      if (mem == nullptr) {
        Region* fresh = heap_->regions().AllocateRegion(kind, gen_tag);
        if (fresh != nullptr) {
          gen_current_[g] = fresh;
          mem = fresh->BumpAlloc(req.total_bytes);
        }
      }
      if (mem != nullptr) {
        return AllocResult::Ok(heap_->InitializeObject(mem, req.cls, req.total_bytes,
                                                       req.array_length, req.context),
                               static_cast<uint8_t>(attempt));
      }
    }
    // No region available for this generation: collect and retry.
    TryCollect(ctx, attempt >= 2);
    AllocationBackoff(attempt);
  }
  return AllocResult::OutOfMemory(kMaxAllocationAttempts);
}

AllocResult RegionalCollector::AllocateHumongousObject(MutatorContext* ctx,
                                                       const AllocRequest& req) {
  for (int attempt = 0; attempt < kMaxAllocationAttempts; attempt++) {
    Region* head = heap_->regions().AllocateHumongous(req.total_bytes);
    if (head != nullptr) {
      return AllocResult::Ok(heap_->InitializeObject(head->begin(), req.cls, req.total_bytes,
                                                     req.array_length, req.context),
                             static_cast<uint8_t>(attempt));
    }
    // Humongous allocation needs contiguous free regions; full compaction is
    // the reliable way to produce them.
    TryCollect(ctx, /*force_full=*/attempt >= 1);
    AllocationBackoff(attempt);
  }
  return AllocResult::OutOfMemory(kMaxAllocationAttempts);
}

bool RegionalCollector::TryCollect(MutatorContext* ctx, bool force_full) {
  // A concurrent evacuation cycle is a collection in progress: wait for it to
  // retire (it frees the old eden / cset) instead of stacking a second cycle
  // on a cset that is still being copied.
  if (concurrent_active_.load(std::memory_order_acquire)) {
    WaitForConcurrentCycle(ctx);
    return true;
  }
  if (!safepoints_->BeginOperation(ctx)) {
    return false;  // someone else collected while we waited
  }
  if (concurrent_active_.load(std::memory_order_acquire)) {
    // Lost a race: another thread's pause armed a cycle between our check
    // and our winning the stopped world.
    safepoints_->EndOperation(ctx);
    WaitForConcurrentCycle(ctx);
    return true;
  }
  if (ROLP_FAULT_POINT("gc.collect.skip")) {
    // Simulated collection failure: the pause happens but nothing is freed.
    safepoints_->EndOperation(ctx);
    return true;
  }
  if (force_full) {
    DoFull(NowNs());
  } else {
    DoYoungOrMixed(ctx);
  }
  safepoints_->EndOperation(ctx);
  return true;
}

void RegionalCollector::PreparePause() {
  safepoints_->ForEachThread([](MutatorContext* t) { t->tlab.Release(); });
  eden_in_use_.store(0, std::memory_order_relaxed);
  std::lock_guard<SpinLock> guard(gen_lock_);
  gen_current_.fill(nullptr);
}

void RegionalCollector::DoYoungOrMixed(MutatorContext* ctx) {
  uint64_t t0 = NowNs();
  PreparePause();
  RegionManager& regions = heap_->regions();

  bool mixed = TenuredOccupancy() >= config_.mixed_trigger_occupancy;
  uint64_t mark_ns = 0;
  if (mixed) {
    // Real G1/NG2C mark concurrently and pause only for short remark windows;
    // this reproduction marks inside the pause for simplicity but attributes
    // the marking time to concurrent work rather than to the reported pause,
    // matching what the JVM-side pause log (the paper's metric) would show.
    uint64_t mark_t0 = NowNs();
    Marker marker(heap_, &bitmap_);
    CancellationToken mark_cancel;
    {
      WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kMark, &mark_cancel, &metrics_);
      ROLP_TRACE_SCOPE("gc", "gc.phase.mark");
      marker.MarkFromRoots(safepoints_, workers_.get(), &mark_cancel);
    }
    if (marker.cancelled()) {
      // Marking overran its deadline: the bitmap and live counts are partial
      // and unusable. Fall back to the bounded STW cycle, which re-marks
      // from scratch.
      ROLP_LOG_ERROR("marking cancelled by watchdog; falling back to full collection");
      DoFull(NowNs());
      ReportOverrunToProfiler();
      return;
    }
    mark_ns = NowNs() - mark_t0;
    metrics_.AddConcurrentWorkNs(mark_ns);
  }

  // Post-mark verification: recount sampled regions' live bytes against the
  // bitmap and probe that roots were marked. A disagreement is repaired in
  // place, but it also means some part of the marking pipeline misbehaved —
  // stop trusting marks for cset selection and dead-object filtering this
  // pause (the collection degrades to young-only work).
  bool trust_marks = mixed;
  if (mixed && verify_options_.enabled()) {
    uint64_t verify_t0 = NowNs();
    CancellationToken verify_cancel;
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kVerify, &verify_cancel, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.verify");
    HeapVerifier verifier(heap_, safepoints_);
    HeapVerifier::Report report = verifier.VerifyPostMark(
        &bitmap_, workers_.get(), verify_options_, NextVerifyPass(), &verify_cancel);
    if (ApplyVerification("post-mark", report)) {
      for (const HeapVerifier::Finding& f : report.findings) {
        if (f.kind == HeapVerifier::Finding::Kind::kBadMark) {
          trust_marks = false;
          break;
        }
      }
    }
    metrics_.AddPauseVerifyNs(NowNs() - verify_t0);
  }

  // ---- Pause-side region scans (parallel) ---------------------------------
  // One fused sweep over the region table, sharded across the GC workers,
  // replaces four serial walks: per-generation fragmentation accounting,
  // dead-humongous discovery, young-cset collection, and mixed-cset candidate
  // gathering. Workers fill private partials; the reductions below run after
  // the ParallelFor barrier on the pause thread.
  std::vector<Region*> cset;
  std::vector<Region*> remset_sources;
  std::vector<Region*> scrub_list;
  const uint32_t n = workers_->size();
  {
    WatchdogPhaseScope scan_scope(watchdog_.get(), GcPhase::kScan, nullptr, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.scan");
    struct ScanPartial {
      size_t used[kNumDynamicGens + 1] = {};
      size_t live[kNumDynamicGens + 1] = {};
      std::vector<Region*> young;
      std::vector<Region*> pinned_young;
      std::vector<Region*> candidates;
      std::vector<Region*> dead_humongous;
    };
    std::vector<ScanPartial> partials(n);
    const bool want_frag = mixed && dynamic_gens_ && profiler_ != nullptr;
    // Only unscannable quarantined regions can pin young regions (their
    // outgoing references can never be rescanned or healed).
    const bool check_pinned = !regions.UnscannableQuarantined().empty();
    workers_->ParallelFor(
        regions.num_regions(), StealChunkSize(), [&](uint32_t w, size_t begin, size_t end) {
          ScanPartial& p = partials[w];
          for (size_t i = begin; i < end; i++) {
            Region* r = &regions.region(i);
            if (r->IsYoung()) {
              if (check_pinned && regions.PinnedByQuarantine(r)) {
                p.pinned_young.push_back(r);
              } else {
                p.young.push_back(r);
              }
              continue;
            }
            if (!mixed) {
              continue;
            }
            RegionKind k = r->kind();
            // Fragmentation feedback input (paper section 6). Fully-dead
            // generation regions are the pretenuring success case (reclaimed
            // whole, zero copying), so fragmentation is measured only over
            // regions still pinned by live objects: a low ratio there means
            // objects died earlier than their generation and left sparse,
            // unreclaimable regions.
            if (want_frag && k == RegionKind::kGen && r->gen() >= 1 &&
                r->gen() <= kNumDynamicGens && r->live_bytes() > 0) {
              p.used[r->gen()] += r->used();
              p.live[r->gen()] += r->live_bytes();
            }
            if (r->quarantined()) {
              continue;  // pinned: never a cset candidate, never freed
            }
            if (k == RegionKind::kHumongous && r->live_bytes() == 0 && trust_marks) {
              p.dead_humongous.push_back(r);
              continue;
            }
            if (trust_marks && (k == RegionKind::kOld || k == RegionKind::kGen) &&
                r->used() > 0 && r->LiveRatio() <= config_.cset_live_ratio_max &&
                !(check_pinned && regions.PinnedByQuarantine(r))) {
              // Pinned-by-quarantine regions can never be evacuated: the
              // unscannable source holding edges into them is excluded from
              // the remset-source rescan, so those edges could not be healed.
              p.candidates.push_back(r);
            }
          }
        });
    if (want_frag) {
      size_t used[kNumDynamicGens + 1] = {};
      size_t live[kNumDynamicGens + 1] = {};
      for (ScanPartial& p : partials) {
        for (uint8_t g = 1; g <= kNumDynamicGens; g++) {
          used[g] += p.used[g];
          live[g] += p.live[g];
        }
      }
      for (uint8_t g = 1; g <= kNumDynamicGens; g++) {
        if (used[g] > 0) {
          profiler_->OnGenFragmentation(
              g, static_cast<double>(live[g]) / static_cast<double>(used[g]));
        }
      }
    }
    // Collection set: all young regions, plus (mixed) the emptiest tenured
    // regions. Dead humongous objects are reclaimed on the spot.
    std::vector<Region*> candidates;
    for (ScanPartial& p : partials) {
      for (Region* r : p.dead_humongous) {
        regions.FreeRegion(r);
      }
      for (Region* r : p.pinned_young) {
        // Referenced from an unscannable quarantined region: the reference
        // can never be healed, so the objects must stay put. Pin in place,
        // and record its outgoing edges (never recorded while young) so
        // references into this pause's collection set are discovered.
        regions.RetireToOld(r);
        r->set_live_bytes(r->used());
        RecordCrossRegionEdges(r);
      }
      cset.insert(cset.end(), p.young.begin(), p.young.end());
      candidates.insert(candidates.end(), p.candidates.begin(), p.candidates.end());
    }
    if (mixed) {
      // Tie-break on index: partial concatenation order depends on chunk
      // claiming, and the sort decides which candidates survive truncation.
      std::sort(candidates.begin(), candidates.end(), [](Region* a, Region* b) {
        return a->live_bytes() != b->live_bytes() ? a->live_bytes() < b->live_bytes()
                                                  : a->index() < b->index();
      });
      if (candidates.size() > config_.max_old_cset_regions) {
        candidates.resize(config_.max_old_cset_regions);
      }
      cset.insert(cset.end(), candidates.begin(), candidates.end());
    }
    if (config_.concurrent_evac && mixed && trust_marks) {
      // NG2C whole-region fast path (pretenuring payoff): a tenured cset
      // region with zero marked live bytes has nothing to copy and nothing
      // referencing it (marking is complete and trusted) — reclaim it right
      // here in the arming pause instead of dragging it through the
      // concurrent copy protocol.
      size_t kept = 0;
      for (Region* r : cset) {
        if (!r->IsYoung() && r->live_bytes() == 0) {
          regions.FreeRegion(r);
          whole_regions_reclaimed_.fetch_add(1, std::memory_order_relaxed);
        } else {
          cset[kept++] = r;
        }
      }
      cset.resize(kept);
    }
    for (Region* r : cset) {
      r->set_in_cset(true);
    }

    // Scrub list: tenured regions surviving this precise cycle that hold dead
    // objects. The evacuation scan skips dead objects (marks are trusted), so
    // their stale references into regions this cycle frees would linger in
    // the parsable heap; scrubbing turns them into free blocks instead. Runs
    // off-pause in concurrent mode, in-pause for the STW baseline. Built here
    // — after the cset is final and pinned-young retirements have run — so
    // every listed region existed at mark time and stays put all cycle.
    if (mixed && trust_marks) {
      for (size_t i = 0; i < regions.num_regions(); i++) {
        Region* r = &regions.region(i);
        RegionKind k = r->kind();
        if ((k == RegionKind::kOld || k == RegionKind::kGen) && !r->in_cset() &&
            !r->quarantined() && r->live_bytes() < r->used() &&
            // Unmarked is not dead in a pinned region: the unscannable
            // quarantined region holding edges into it could not be marked
            // through, so its objects' liveness is unknown.
            !(check_pinned && regions.PinnedByQuarantine(r))) {
          scrub_list.push_back(r);
        }
      }
    }

    // Remembered-set source regions: regions recorded as holding references
    // into any collection-set region. Sharded over the cset; a region's first
    // claimant (atomic exchange on its seen byte) publishes it.
    std::unique_ptr<std::atomic<uint8_t>[]> seen(
        new std::atomic<uint8_t>[regions.num_regions()]());
    std::vector<std::vector<Region*>> source_partials(n);
    workers_->ParallelFor(cset.size(), 4, [&](uint32_t w, size_t begin, size_t end) {
      for (size_t i = begin; i < end; i++) {
        cset[i]->ForEachRemsetRegion([&](uint32_t idx) {
          if (seen[idx].load(std::memory_order_relaxed) != 0 ||
              seen[idx].exchange(1, std::memory_order_relaxed) != 0) {
            return;
          }
          Region* s = &regions.region(idx);
          if (!s->IsFree() && !s->in_cset() && s->kind() != RegionKind::kHumongousCont &&
              !s->IsUnscannable()) {
            source_partials[w].push_back(s);
          }
        });
      }
    });
    for (auto& v : source_partials) {
      remset_sources.insert(remset_sources.end(), v.begin(), v.end());
    }
  }

  // Roots.
  std::vector<std::atomic<Object*>*> roots;
  heap_->roots().ForEach([&](std::atomic<Object*>* slot) { roots.push_back(slot); });
  safepoints_->ForEachThread([&](MutatorContext* t) {
    for (auto& slot : t->local_roots) {
      roots.push_back(&slot);
    }
  });

  // Everything since pause start except marking was pause-side scanning
  // (occupancy, fragmentation, dead-humongous, cset selection, roots, remset
  // sources).
  uint64_t evac_t0 = NowNs();
  metrics_.AddPauseScanNs(evac_t0 - t0 - mark_ns);

  bool survivor_tracking_on =
      profiler_ != nullptr && profiler_->SurvivorTrackingEnabled();
  if (config_.concurrent_evac && !cset.empty()) {
    // Hand the copying off-pause: flag the cset, heal the roots, arm the
    // barrier, and return — TryCollect's EndOperation resumes the mutators
    // while the driver thread runs the copy workers.
    StartConcurrentEvacuation(std::move(cset), std::move(remset_sources),
                              std::move(scrub_list), std::move(roots), mixed, trust_marks,
                              survivor_tracking_on, t0, mark_ns, evac_t0);
    return;
  }

  // ---- Work-stealing evacuation -------------------------------------------
  // Scan units (root-slot chunks, then one unit per remset source region) are
  // claimed from a shared cursor; every object needing a referent scan —
  // to-space copies and live source-region objects alike — becomes an item on
  // the claiming worker's Chase-Lev deque, stealable by idle workers. The
  // pool's outstanding counter (scan units pre-added, items counted at Push)
  // provides termination: a worker whose queues all look empty spins until
  // the counter drains, since a straggler may still publish work.
  CancellationToken evac_cancel;
  EvacuationTask task(heap_, &config_, profiler_, survivor_tracking_on, &evac_cancel);
  WorkStealingPool<Object*> pool(n);
  task.set_pool(&pool);
  std::vector<EvacuationTask::Worker> eworkers;
  eworkers.reserve(n);
  for (uint32_t w = 0; w < n; w++) {
    eworkers.push_back(task.MakeWorker(w));
  }
  const size_t chunk = StealChunkSize();
  const size_t root_units = (roots.size() + chunk - 1) / chunk;
  const size_t total_units = root_units + remset_sources.size();
  pool.AddOutstanding(static_cast<int64_t>(total_units));
  std::atomic<size_t> unit_cursor{0};
  {
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kEvacuate, &evac_cancel, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.evacuate");
    workers_->RunTask([&](uint32_t w) {
      // Stall-only fail point: a delay:<ms> arm sleeps here and returns false.
      (void)ROLP_FAULT_POINT("gc.phase.evacuate.stall");
      EvacuationTask::Worker& ew = eworkers[w];
      for (;;) {
        size_t u = unit_cursor.fetch_add(1, std::memory_order_relaxed);
        if (u >= total_units) {
          break;
        }
        workers_->Heartbeat(w);
        if (u < root_units) {
          size_t begin = u * chunk;
          size_t end = begin + chunk < roots.size() ? begin + chunk : roots.size();
          for (size_t i = begin; i < end; i++) {
            ew.ProcessRootSlot(roots[i], nullptr);
          }
        } else {
          // Source regions enqueue their live objects as stealable items
          // rather than scanning inline: one dense region no longer
          // serializes the phase on whichever worker claimed it.
          Region* s = remset_sources[u - root_units];
          s->ForEachObject([&](Object* obj) {
            if (trust_marks && !bitmap_.IsMarked(obj)) {
              return;  // precise: skip dead objects when marks are fresh
            }
            pool.Push(w, obj);
          });
        }
        pool.FinishOne();
      }
      // Drain: keep scanning until the whole phase is done. No cancellation
      // bail-out here — once cancelled, EvacuateOrForward self-forwards
      // everything it meets, so the remaining work is bounded slot healing
      // that must still happen for the heap to stay parsable.
      uint64_t steps = 0;
      Object* obj = nullptr;
      for (;;) {
        if (pool.TryGet(w, &obj)) {
          ew.ScanObject(obj);
          pool.FinishOne();
          if ((++steps & 63) == 0) {
            workers_->Heartbeat(w);
          }
          continue;
        }
        if (pool.Done()) {
          break;
        }
        workers_->Heartbeat(w);
        std::this_thread::yield();
      }
      ew.Finish();
    });
  }

  if (!scrub_list.empty()) {
    WatchdogPhaseScope scrub_scope(watchdog_.get(), GcPhase::kEvacuate, nullptr, &metrics_);
    workers_->ParallelFor(scrub_list.size(), 1, [&](uint32_t w, size_t begin, size_t end) {
      for (size_t i = begin; i < end; i++) {
        workers_->Heartbeat(w);
        ScrubDeadObjects(scrub_list[i], bitmap_);
      }
    });
  }

  task.RestoreSelfForwarded(eworkers);
  std::vector<Region*> doomed;
  doomed.reserve(cset.size());
  for (Region* r : cset) {
    if (r->evac_failed()) {
      // In-place survivors: the region is retired to old; scrubbing turns the
      // stale originals of copied objects into free blocks and re-records the
      // survivors' remset edges under the region's new (old) kind.
      r->set_evac_failed(false);
      r->set_in_cset(false);
      regions.RetireToOld(r);
      ScrubRetiredEvacFailure(r);
    } else {
      doomed.push_back(r);
    }
  }

  metrics_.AddPauseEvacNs(NowNs() - evac_t0);

  // Post-evacuation verification: no root and no surviving object may still
  // reference an unforwarded object in a region about to be freed. Regions
  // that fail the check are quarantined (kept, pinned as old) instead of
  // freed — the process keeps serving with bounded garbage retention.
  if (verify_options_.enabled() && !doomed.empty()) {
    uint64_t verify_t0 = NowNs();
    CancellationToken verify_cancel;
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kVerify, &verify_cancel, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.verify");
    HeapVerifier verifier(heap_, safepoints_);
    HeapVerifier::Report report = verifier.VerifyCollectionSet(
        doomed, workers_.get(), verify_options_, NextVerifyPass(), &verify_cancel,
        trust_marks ? &bitmap_ : nullptr);
    if (ApplyVerification("post-evacuation", report)) {
      QuarantineFlagged(&verifier, doomed, &report);
    }
    metrics_.AddPauseVerifyNs(NowNs() - verify_t0);
  }
  for (Region* r : doomed) {
    if (!r->quarantined()) {
      regions.FreeRegion(r);
    }
  }

  // Sampled structural walk (rotating 1-in-N coverage): region tiling,
  // reference plausibility, stale forwarding, remset completeness, and the
  // OLD-table cross-check. Runs with repair on — dangling references are
  // nulled and missing remset entries re-added rather than only reported.
  if (verify_options_.enabled()) {
    uint64_t verify_t0 = NowNs();
    CancellationToken verify_cancel;
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kVerify, &verify_cancel, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.verify");
    HeapVerifier verifier(heap_, safepoints_);
    HeapVerifier::Report report = verifier.VerifySampledWalk(
        workers_.get(), verify_options_, NextVerifyPass(), /*repair=*/true, &verify_cancel);
    if (ApplyVerification("sampled-walk", report)) {
      for (const HeapVerifier::Finding& f : report.findings) {
        if (f.kind == HeapVerifier::Finding::Kind::kRegionCorrupt &&
            f.region != HeapVerifier::Finding::kNoRegion) {
          // Broken tiling: the region can never be walked again.
          regions.Quarantine(&regions.region(f.region), /*walkable=*/false);
          verify_stats_.regions_quarantined++;
        }
      }
    }
    metrics_.AddPauseVerifyNs(NowNs() - verify_t0);
  }

  uint64_t copied = 0;
  uint64_t promoted = 0;
  for (uint32_t w = 0; w < n; w++) {
    EvacuationTask::Worker& ew = eworkers[w];
    copied += ew.bytes_copied();
    promoted += ew.bytes_promoted();
    metrics_.AddWorkerCopiedBytes(w, ew.bytes_copied());
  }
  metrics_.AddBytesCopied(copied);
  metrics_.AddBytesPromoted(promoted);
  metrics_.IncrementGcCycles();
  heap_->UpdateMaxUsedBytes();

  uint64_t t1 = NowNs();
  uint64_t pause_ns = t1 - t0 - mark_ns;
  if (ROLP_FAULT_POINT("gc.pause.inflate")) {
    pause_ns += 10 * 1000 * 1000;  // report +10ms (drives pause-regression heuristics)
  }
  PauseRecord rec{t0, pause_ns, mixed ? PauseKind::kMixed : PauseKind::kYoung, copied};
  metrics_.RecordPause(rec);
  Trace::EmitComplete("gc", "gc.pause", rec.start_ns, rec.duration_ns,
                      static_cast<uint64_t>(rec.kind));
  if (profiler_ != nullptr) {
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kProfilerMerge, nullptr, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.profiler-merge");
    uint64_t prof_t0 = NowNs();
    profiler_->OnGcEnd({metrics_.GcCycles(), rec.duration_ns, rec.kind, workers_.get()});
    metrics_.AddPauseProfilerNs(NowNs() - prof_t0);
  }

  if (task.failed()) {
    if (evac_cancel.IsCancelled()) {
      ROLP_LOG_ERROR("evacuation cancelled by watchdog; falling back to full collection");
    } else {
      ROLP_LOG_INFO("evacuation failure; escalating to full collection");
    }
    DoFull(NowNs());
  }
  ReportOverrunToProfiler();
}

void RegionalCollector::StartConcurrentEvacuation(std::vector<Region*> cset,
                                                  std::vector<Region*> remset_sources,
                                                  std::vector<Region*> scrub_list,
                                                  std::vector<std::atomic<Object*>*> roots,
                                                  bool mixed, bool trust_marks,
                                                  bool survivor_tracking, uint64_t t0,
                                                  uint64_t mark_ns, uint64_t evac_t0) {
  // The previous cycle's driver has long retired (a new pause cannot start
  // while one is active); reap its thread.
  if (concurrent_thread_.joinable()) {
    concurrent_thread_.join();
  }
  const uint32_t n = workers_->size();
  cycle_ = std::make_unique<ConcurrentCycle>(heap_, &config_, profiler_, survivor_tracking, n);
  ConcurrentCycle& c = *cycle_;
  c.cset = std::move(cset);
  c.remset_sources = std::move(remset_sources);
  c.scrub_list = std::move(scrub_list);
  c.mixed = mixed;
  c.trust_marks = trust_marks;
  for (Region* r : c.cset) {
    r->set_evacuating(true);
  }
  // One claimable unit per remset source region and per scrub region; roots
  // are healed right here instead. Count the units before any worker can
  // observe the pool.
  c.pool.AddOutstanding(
      static_cast<int64_t>(c.remset_sources.size() + c.scrub_list.size()));

  {
    // Eager root healing (to-space invariant): after this loop no root holds
    // a from-space cset pointer, so a mutator can only ever meet one through
    // a heap slot — which its load barrier heals. Copies made here land on
    // eworkers[0]'s deque (the pause thread owns it until worker 0 starts)
    // for the off-pause workers to scan.
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kEvacuate, &c.cancel, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.evacuate");
    for (std::atomic<Object*>* slot : roots) {
      c.eworkers[0].ProcessRootSlot(slot, nullptr);
    }
  }

  evac_armed_.store(true, std::memory_order_release);
  heap_->RefreshBarrierMode();
  concurrent_active_.store(true, std::memory_order_release);

  metrics_.AddPauseEvacNs(NowNs() - evac_t0);
  uint64_t t1 = NowNs();
  uint64_t pause_ns = t1 - t0 - mark_ns;
  if (ROLP_FAULT_POINT("gc.pause.inflate")) {
    pause_ns += 10 * 1000 * 1000;  // report +10ms (drives pause-regression heuristics)
  }
  PauseRecord rec{t0, pause_ns, c.mixed ? PauseKind::kMixed : PauseKind::kYoung,
                  /*bytes_copied=*/0};
  metrics_.RecordPause(rec);
  Trace::EmitComplete("gc", "gc.pause", rec.start_ns, rec.duration_ns,
                      static_cast<uint64_t>(rec.kind));

  concurrent_thread_ = std::thread([this] { ConcurrentDriver(); });
}

void RegionalCollector::ConcurrentDriver() {
  // The driver registers as a mutator so it can run the final pause through
  // the standard safepoint protocol.
  MutatorContext dctx;
  dctx.thread_id = 0xFFFFFFFFu;
  safepoints_->RegisterThread(&dctx);
  ConcurrentCycle& c = *cycle_;
  if (ROLP_FAULT_POINT("gc.concurrent_evac.cancel")) {
    c.cancel.Cancel();  // chaos: the cycle self-forwards everything it meets
  }
  {
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kConcurrentEvac, &c.cancel, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.concurrent-evac");
    workers_->RunTask([&](uint32_t w) {
      // Stall-only fail point: a delay:<ms> arm sleeps here and returns false.
      (void)ROLP_FAULT_POINT("gc.concurrent_evac.stall");
      uint64_t cpu0 = ThreadCpuNs();
      EvacuationTask::Worker& ew = c.eworkers[w];
      const size_t src_units = c.remset_sources.size();
      const size_t total_units = src_units + c.scrub_list.size();
      for (;;) {
        size_t u = c.unit_cursor.fetch_add(1, std::memory_order_relaxed);
        if (u >= total_units) {
          break;
        }
        workers_->Heartbeat(w);
        if (u < src_units) {
          // Safe to walk off-pause: mutators only allocate into regions that
          // were free at the arming pause, which are never remset sources, and
          // object sizes never change in place.
          Region* s = c.remset_sources[u];
          s->ForEachObject([&](Object* obj) {
            if (c.trust_marks && !bitmap_.IsMarked(obj)) {
              return;  // precise: skip dead objects when marks are fresh
            }
            c.pool.Push(w, obj);
          });
        } else {
          // Scrub units: dead objects are unreachable, so the free-block
          // rewrite races with nothing — a source-scan unit walking the same
          // region concurrently reads only size_bytes and marked objects.
          ScrubDeadObjects(c.scrub_list[u - src_units], bitmap_);
        }
        c.pool.FinishOne();
      }
      // Drain: items from the deques plus objects injected by mutator heals
      // (pre-counted in the outstanding counter). No cancellation bail-out —
      // once cancelled, copying degrades to bounded self-forward healing that
      // must still run for the heap to stay parsable.
      uint64_t steps = 0;
      Object* obj = nullptr;
      for (;;) {
        if (c.pool.TryGet(w, &obj) || c.task.TakeInjected(&obj)) {
          ew.ScanObject(obj);
          c.pool.FinishOne();
          if ((++steps & 63) == 0) {
            workers_->Heartbeat(w);
          }
          continue;
        }
        if (c.pool.Done()) {
          break;
        }
        workers_->Heartbeat(w);
        std::this_thread::yield();
      }
      ew.Finish();
      metrics_.AddEvacCpuNs(ThreadCpuNs() - cpu0);
    });
  }
  // Final remap pause. BeginOperation returning false means another
  // mutator's operation ran first — but the TryCollect/CollectFull guards
  // make any such operation a no-op while the cycle is active, so retrying
  // always converges.
  while (!safepoints_->BeginOperation(&dctx)) {
  }
  FinishConcurrentCycle();
  safepoints_->EndOperation(&dctx);
  {
    // Empty critical section orders the notify after any in-flight waiter's
    // predicate check, so no wakeup is lost.
    std::lock_guard<std::mutex> guard(cycle_mu_);
  }
  cycle_cv_.notify_all();
  safepoints_->UnregisterThread(&dctx);
}

void RegionalCollector::FinishConcurrentCycle() {
  ConcurrentCycle& c = *cycle_;
  RegionManager& regions = heap_->regions();
  uint64_t t0 = NowNs();
  uint64_t cpu0 = ThreadCpuNs();
  PreparePause();

  {
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kEvacuate, nullptr, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.remap");
    // Drain objects injected after the workers exited, then re-heal the
    // roots: handles created during the window already hold healed values
    // (every mutator load passed the barrier), so this pass only matters for
    // cancelled cycles and costs one in-cset check per root otherwise.
    c.task.set_pool(nullptr);
    EvacuationTask::Worker& w0 = c.eworkers[0];
    Object* obj = nullptr;
    while (c.task.TakeInjected(&obj)) {
      w0.ScanObject(obj);
    }
    w0.Drain();
    std::vector<std::atomic<Object*>*> roots;
    heap_->roots().ForEach([&](std::atomic<Object*>* slot) { roots.push_back(slot); });
    safepoints_->ForEachThread([&](MutatorContext* t) {
      for (auto& slot : t->local_roots) {
        roots.push_back(&slot);
      }
    });
    for (std::atomic<Object*>* slot : roots) {
      w0.ProcessRootSlot(slot, nullptr);
    }
    w0.Drain();
    w0.Finish();
  }

  c.task.RestoreSelfForwarded(c.eworkers);
  c.task.FinishShared();
  std::vector<Region*> doomed;
  doomed.reserve(c.cset.size());
  for (Region* r : c.cset) {
    r->set_evacuating(false);
    if (r->evac_failed()) {
      r->set_evac_failed(false);
      r->set_in_cset(false);
      regions.RetireToOld(r);
      ScrubRetiredEvacFailure(r);
    } else {
      doomed.push_back(r);
    }
  }

  if (verify_options_.enabled() && !doomed.empty()) {
    uint64_t verify_t0 = NowNs();
    CancellationToken verify_cancel;
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kVerify, &verify_cancel, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.verify");
    HeapVerifier verifier(heap_, safepoints_);
    HeapVerifier::Report report = verifier.VerifyCollectionSet(
        doomed, workers_.get(), verify_options_, NextVerifyPass(), &verify_cancel,
        c.trust_marks ? &bitmap_ : nullptr);
    if (ApplyVerification("post-concurrent-evacuation", report)) {
      QuarantineFlagged(&verifier, doomed, &report);
    }
    metrics_.AddPauseVerifyNs(NowNs() - verify_t0);
  }
  for (Region* r : doomed) {
    if (!r->quarantined()) {
      regions.FreeRegion(r);
    }
  }

  if (verify_options_.enabled()) {
    uint64_t verify_t0 = NowNs();
    CancellationToken verify_cancel;
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kVerify, &verify_cancel, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.verify");
    HeapVerifier verifier(heap_, safepoints_);
    HeapVerifier::Report report = verifier.VerifySampledWalk(
        workers_.get(), verify_options_, NextVerifyPass(), /*repair=*/true, &verify_cancel);
    if (ApplyVerification("sampled-walk", report)) {
      for (const HeapVerifier::Finding& f : report.findings) {
        if (f.kind == HeapVerifier::Finding::Kind::kRegionCorrupt &&
            f.region != HeapVerifier::Finding::kNoRegion) {
          regions.Quarantine(&regions.region(f.region), /*walkable=*/false);
          verify_stats_.regions_quarantined++;
        }
      }
    }
    metrics_.AddPauseVerifyNs(NowNs() - verify_t0);
  }

  uint64_t copied = c.task.mutator_bytes_copied();
  uint64_t promoted = c.task.mutator_bytes_promoted();
  for (uint32_t w = 0; w < c.eworkers.size(); w++) {
    EvacuationTask::Worker& ew = c.eworkers[w];
    copied += ew.bytes_copied();
    promoted += ew.bytes_promoted();
    metrics_.AddWorkerCopiedBytes(w, ew.bytes_copied());
  }
  metrics_.AddBytesCopied(copied);
  metrics_.AddBytesPromoted(promoted);
  metrics_.IncrementGcCycles();
  heap_->UpdateMaxUsedBytes();

  // Disarm before the mutators resume; from their perspective the barrier
  // state only ever changes across a pause.
  evac_armed_.store(false, std::memory_order_release);
  heap_->RefreshBarrierMode();

  uint64_t t1 = NowNs();
  metrics_.AddPauseRemapNs(t1 - t0);
  metrics_.AddRemapCpuNs(ThreadCpuNs() - cpu0);
  PauseRecord rec{t0, t1 - t0, PauseKind::kRemap, copied};
  metrics_.RecordPause(rec);
  Trace::EmitComplete("gc", "gc.pause", rec.start_ns, rec.duration_ns,
                      static_cast<uint64_t>(rec.kind));
  if (profiler_ != nullptr) {
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kProfilerMerge, nullptr, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.profiler-merge");
    uint64_t prof_t0 = NowNs();
    profiler_->OnGcEnd({metrics_.GcCycles(), rec.duration_ns, rec.kind, workers_.get()});
    metrics_.AddPauseProfilerNs(NowNs() - prof_t0);
  }

  bool failed = c.task.failed();
  bool cancelled = c.cancel.IsCancelled();
  concurrent_active_.store(false, std::memory_order_release);
  cycle_.reset();

  if (failed) {
    if (cancelled) {
      ROLP_LOG_ERROR(
          "concurrent evacuation cancelled; finished self-forwarded, "
          "falling back to full collection");
    } else {
      ROLP_LOG_INFO("concurrent evacuation failure; escalating to full collection");
    }
    DoFull(NowNs());
  }
  ReportOverrunToProfiler();
}

void RegionalCollector::DoFull(uint64_t t0) {
  PreparePause();
  MarkCompact compactor(heap_, &bitmap_);
  uint64_t moved;
  {
    // The STW fallback is not cancellable (no token): it must finish. The
    // watchdog still times it — repeated overruns here abort (ladder rung 5).
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kCompact, nullptr, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.compact");
    // Stall-only fail point: a delay:<ms> arm sleeps here and returns false.
    (void)ROLP_FAULT_POINT("gc.phase.compact.stall");
    moved = compactor.Collect(safepoints_, workers_.get());
  }
  // Post-compaction sampled walk: the full collection just rewrote every
  // region and rebuilt every remembered set, so check the result before
  // resuming the mutators. Walkable quarantined regions were rehabilitated by
  // the compactor; anything still broken gets re-quarantined here.
  if (verify_options_.enabled()) {
    uint64_t verify_t0 = NowNs();
    RegionManager& regions = heap_->regions();
    CancellationToken verify_cancel;
    WatchdogPhaseScope vscope(watchdog_.get(), GcPhase::kVerify, &verify_cancel, &metrics_);
    ROLP_TRACE_SCOPE("gc", "gc.phase.verify");
    HeapVerifier verifier(heap_, safepoints_);
    HeapVerifier::Report report = verifier.VerifySampledWalk(
        workers_.get(), verify_options_, NextVerifyPass(), /*repair=*/true, &verify_cancel);
    if (ApplyVerification("post-compaction", report)) {
      for (const HeapVerifier::Finding& f : report.findings) {
        if (f.kind == HeapVerifier::Finding::Kind::kRegionCorrupt &&
            f.region != HeapVerifier::Finding::kNoRegion) {
          regions.Quarantine(&regions.region(f.region), /*walkable=*/false);
          verify_stats_.regions_quarantined++;
        }
      }
    }
    metrics_.AddPauseVerifyNs(NowNs() - verify_t0);
  }
  metrics_.AddBytesCopied(moved);
  metrics_.IncrementGcCycles();
  heap_->UpdateMaxUsedBytes();
  uint64_t t1 = NowNs();
  PauseRecord rec{t0, t1 - t0, PauseKind::kFull, moved};
  metrics_.RecordPause(rec);
  Trace::EmitComplete("gc", "gc.pause", rec.start_ns, rec.duration_ns,
                      static_cast<uint64_t>(rec.kind));
  if (profiler_ != nullptr) {
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kProfilerMerge, nullptr, &metrics_);
    profiler_->OnGcEnd({metrics_.GcCycles(), rec.duration_ns, rec.kind, workers_.get()});
  }
  ReportOverrunToProfiler();
}

void RegionalCollector::ReportOverrunToProfiler() {
  if (watchdog_ == nullptr || profiler_ == nullptr) {
    return;
  }
  if (watchdog_->TakeOverrunFlag()) {
    profiler_->OnGcOverrun(profiler_->SurvivorTrackingEnabled());
  }
}

void RegionalCollector::CollectFull(MutatorContext* ctx) {
  for (;;) {
    WaitForConcurrentCycle(ctx);
    if (!safepoints_->BeginOperation(ctx)) {
      continue;
    }
    if (!concurrent_active_.load(std::memory_order_acquire)) {
      break;  // we own a stopped world with no cycle in flight
    }
    safepoints_->EndOperation(ctx);
  }
  DoFull(NowNs());
  safepoints_->EndOperation(ctx);
}

void RegionalCollector::WaitForConcurrentCycle(MutatorContext* ctx) {
  if (!concurrent_active_.load(std::memory_order_acquire)) {
    return;
  }
  // Park as safe for the whole wait: the driver's final pause needs every
  // mutator stopped, including the ones blocked here.
  SafepointManager::ScopedSafeRegion safe(safepoints_, ctx);
  std::unique_lock<std::mutex> lock(cycle_mu_);
  cycle_cv_.wait(lock,
                 [&] { return !concurrent_active_.load(std::memory_order_acquire); });
}

Object* RegionalCollector::HealSlot(std::atomic<Object*>* slot, Object* v) {
  RegionManager& regions = heap_->regions();
  Region* vr = regions.RegionFor(v);
  if (!vr->evacuating()) {
    return v;
  }
  Object* healed = cycle_->task.MutatorHeal(v);
  if (healed != v) {
    mutator_healed_objects_.fetch_add(1, std::memory_order_relaxed);
    mutator_healed_bytes_.fetch_add(healed->size_bytes, std::memory_order_relaxed);
    // Keep a racing store's newer value: a failed CAS means the slot no
    // longer holds the from-space pointer we loaded.
    slot->compare_exchange_strong(v, healed, std::memory_order_acq_rel,
                                  std::memory_order_relaxed);
    // Remembered set for the healed reference (region-coarse, so the slot's
    // region stands in for the containing object). Roots live outside the
    // heap and need no remset.
    if (regions.Contains(slot)) {
      Region* sr = regions.RegionFor(slot);
      Region* hr = regions.RegionFor(healed);
      if (sr != hr && !(sr->IsYoung() && hr->IsYoung())) {
        hr->RemsetAddRegion(sr->index());
      }
    }
    return healed;
  }
  // Self-forwarded in place (exhaustion/cancel): the slot value stays valid.
  return v;
}

}  // namespace rolp
