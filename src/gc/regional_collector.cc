#include "src/gc/regional_collector.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "src/gc/evacuation.h"
#include "src/gc/mark_compact.h"
#include "src/gc/marking.h"
#include "src/util/clock.h"
#include "src/util/fault_injection.h"
#include "src/util/log.h"

namespace rolp {

namespace {
constexpr int kMaxAllocationAttempts = 16;
}  // namespace

RegionalCollector::RegionalCollector(Heap* heap, const GcConfig& config,
                                     SafepointManager* safepoints)
    : Collector(heap, config, safepoints),
      dynamic_gens_(config.use_dynamic_gens),
      bitmap_(heap->regions().heap_base(), heap->regions().committed_bytes()) {
  size_t total = heap->regions().num_regions();
  eden_target_ = config_.young_regions != 0
                     ? config_.young_regions
                     : static_cast<size_t>(static_cast<double>(total) *
                                           heap->config().young_fraction);
  if (eden_target_ < 1) {
    eden_target_ = 1;
  }
  if (eden_target_ > total / 2) {
    eden_target_ = total / 2;
  }
}

double RegionalCollector::TenuredOccupancy() const {
  auto usage = const_cast<Heap*>(heap_)->regions().ComputeUsage();
  size_t tenured = usage.old_regions + usage.gen_regions + usage.humongous_regions;
  return static_cast<double>(tenured) /
         static_cast<double>(heap_->regions().num_regions());
}

Region* RegionalCollector::RefillTlab(MutatorContext* ctx) {
  for (int attempt = 0; attempt < kMaxAllocationAttempts; attempt++) {
    if (eden_in_use_.load(std::memory_order_relaxed) < eden_target_) {
      Region* r = heap_->regions().AllocateRegion(RegionKind::kEden);
      if (r != nullptr) {
        eden_in_use_.fetch_add(1, std::memory_order_relaxed);
        ctx->tlab.Release();
        ctx->tlab.Install(r);
        return r;
      }
      // Eden budget remains but the heap has no free regions: tenured data
      // has taken over. Try a (likely mixed) collection first; escalate to
      // full compaction if that was not enough.
      TryCollect(ctx, /*force_full=*/attempt >= 2);
      AllocationBackoff(attempt);
      continue;
    }
    TryCollect(ctx, /*force_full=*/false);
    AllocationBackoff(attempt);
  }
  return nullptr;
}

AllocResult RegionalCollector::AllocateSlow(MutatorContext* ctx, const AllocRequest& req) {
  if (heap_->IsHumongousSize(req.total_bytes)) {
    return AllocateHumongousObject(ctx, req);
  }
  if (req.target_gen != kYoungGen && dynamic_gens_) {
    return AllocatePretenured(ctx, req);
  }
  for (int attempt = 0; attempt < kMaxAllocationAttempts; attempt++) {
    char* mem = ctx->tlab.Allocate(req.total_bytes);
    if (mem != nullptr) {
      return AllocResult::Ok(heap_->InitializeObject(mem, req.cls, req.total_bytes,
                                                     req.array_length, req.context),
                             static_cast<uint8_t>(attempt));
    }
    if (RefillTlab(ctx) == nullptr) {
      return AllocResult::OutOfMemory(static_cast<uint8_t>(attempt + 1));
    }
  }
  return AllocResult::OutOfMemory(kMaxAllocationAttempts);
}

AllocResult RegionalCollector::AllocatePretenured(MutatorContext* ctx, const AllocRequest& req) {
  uint8_t g = req.target_gen;
  ROLP_DCHECK(g >= 1 && g <= kOldGenId);
  RegionKind kind = g == kOldGenId ? RegionKind::kOld : RegionKind::kGen;
  uint8_t gen_tag = g == kOldGenId ? 0 : g;
  for (int attempt = 0; attempt < kMaxAllocationAttempts; attempt++) {
    {
      std::lock_guard<SpinLock> guard(gen_lock_);
      Region* r = gen_current_[g];
      char* mem = r != nullptr ? r->BumpAlloc(req.total_bytes) : nullptr;
      if (mem == nullptr) {
        Region* fresh = heap_->regions().AllocateRegion(kind, gen_tag);
        if (fresh != nullptr) {
          gen_current_[g] = fresh;
          mem = fresh->BumpAlloc(req.total_bytes);
        }
      }
      if (mem != nullptr) {
        return AllocResult::Ok(heap_->InitializeObject(mem, req.cls, req.total_bytes,
                                                       req.array_length, req.context),
                               static_cast<uint8_t>(attempt));
      }
    }
    // No region available for this generation: collect and retry.
    TryCollect(ctx, attempt >= 2);
    AllocationBackoff(attempt);
  }
  return AllocResult::OutOfMemory(kMaxAllocationAttempts);
}

AllocResult RegionalCollector::AllocateHumongousObject(MutatorContext* ctx,
                                                       const AllocRequest& req) {
  for (int attempt = 0; attempt < kMaxAllocationAttempts; attempt++) {
    Region* head = heap_->regions().AllocateHumongous(req.total_bytes);
    if (head != nullptr) {
      return AllocResult::Ok(heap_->InitializeObject(head->begin(), req.cls, req.total_bytes,
                                                     req.array_length, req.context),
                             static_cast<uint8_t>(attempt));
    }
    // Humongous allocation needs contiguous free regions; full compaction is
    // the reliable way to produce them.
    TryCollect(ctx, /*force_full=*/attempt >= 1);
    AllocationBackoff(attempt);
  }
  return AllocResult::OutOfMemory(kMaxAllocationAttempts);
}

bool RegionalCollector::TryCollect(MutatorContext* ctx, bool force_full) {
  if (!safepoints_->BeginOperation(ctx)) {
    return false;  // someone else collected while we waited
  }
  if (ROLP_FAULT_POINT("gc.collect.skip")) {
    // Simulated collection failure: the pause happens but nothing is freed.
    safepoints_->EndOperation(ctx);
    return true;
  }
  if (force_full) {
    DoFull(NowNs());
  } else {
    DoYoungOrMixed(ctx);
  }
  safepoints_->EndOperation(ctx);
  return true;
}

void RegionalCollector::PreparePause() {
  safepoints_->ForEachThread([](MutatorContext* t) { t->tlab.Release(); });
  eden_in_use_.store(0, std::memory_order_relaxed);
  std::lock_guard<SpinLock> guard(gen_lock_);
  gen_current_.fill(nullptr);
}

void RegionalCollector::DoYoungOrMixed(MutatorContext* ctx) {
  uint64_t t0 = NowNs();
  PreparePause();
  RegionManager& regions = heap_->regions();

  bool mixed = TenuredOccupancy() >= config_.mixed_trigger_occupancy;
  uint64_t mark_ns = 0;
  if (mixed) {
    // Real G1/NG2C mark concurrently and pause only for short remark windows;
    // this reproduction marks inside the pause for simplicity but attributes
    // the marking time to concurrent work rather than to the reported pause,
    // matching what the JVM-side pause log (the paper's metric) would show.
    uint64_t mark_t0 = NowNs();
    Marker marker(heap_, &bitmap_);
    CancellationToken mark_cancel;
    {
      WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kMark, &mark_cancel);
      marker.MarkFromRoots(safepoints_, workers_.get(), &mark_cancel);
    }
    if (marker.cancelled()) {
      // Marking overran its deadline: the bitmap and live counts are partial
      // and unusable. Fall back to the bounded STW cycle, which re-marks
      // from scratch.
      ROLP_LOG_ERROR("marking cancelled by watchdog; falling back to full collection");
      DoFull(NowNs());
      ReportOverrunToProfiler();
      return;
    }
    mark_ns = NowNs() - mark_t0;
    metrics_.AddConcurrentWorkNs(mark_ns);
    // Fragmentation feedback for the profiler (paper section 6). Fully-dead
    // generation regions are the pretenuring success case (reclaimed whole,
    // zero copying), so fragmentation is measured only over regions that are
    // still pinned by live objects: a low ratio there means objects died
    // earlier than their generation and left sparse, unreclaimable regions.
    if (dynamic_gens_ && profiler_ != nullptr) {
      size_t used[kNumDynamicGens + 1] = {};
      size_t live[kNumDynamicGens + 1] = {};
      regions.ForEachRegion([&](Region* r) {
        if (r->kind() == RegionKind::kGen && r->gen() >= 1 && r->gen() <= kNumDynamicGens &&
            r->live_bytes() > 0) {
          used[r->gen()] += r->used();
          live[r->gen()] += r->live_bytes();
        }
      });
      for (uint8_t g = 1; g <= kNumDynamicGens; g++) {
        if (used[g] > 0) {
          profiler_->OnGenFragmentation(
              g, static_cast<double>(live[g]) / static_cast<double>(used[g]));
        }
      }
    }
    // Reclaim dead humongous objects.
    std::vector<Region*> dead_humongous;
    regions.ForEachRegion([&](Region* r) {
      if (r->kind() == RegionKind::kHumongous && r->live_bytes() == 0) {
        dead_humongous.push_back(r);
      }
    });
    for (Region* r : dead_humongous) {
      regions.FreeRegion(r);
    }
  }

  // Collection set: all young regions, plus (mixed) the emptiest tenured
  // regions.
  std::vector<Region*> cset;
  regions.ForEachRegion([&](Region* r) {
    if (r->IsYoung()) {
      cset.push_back(r);
    }
  });
  if (mixed) {
    std::vector<Region*> candidates;
    regions.ForEachRegion([&](Region* r) {
      if ((r->kind() == RegionKind::kOld || r->kind() == RegionKind::kGen) &&
          r->used() > 0 && r->LiveRatio() <= config_.cset_live_ratio_max) {
        candidates.push_back(r);
      }
    });
    std::sort(candidates.begin(), candidates.end(),
              [](Region* a, Region* b) { return a->live_bytes() < b->live_bytes(); });
    if (candidates.size() > config_.max_old_cset_regions) {
      candidates.resize(config_.max_old_cset_regions);
    }
    cset.insert(cset.end(), candidates.begin(), candidates.end());
  }
  for (Region* r : cset) {
    r->set_in_cset(true);
  }

  // Roots.
  std::vector<std::atomic<Object*>*> roots;
  heap_->roots().ForEach([&](std::atomic<Object*>* slot) { roots.push_back(slot); });
  safepoints_->ForEachThread([&](MutatorContext* t) {
    for (auto& slot : t->local_roots) {
      roots.push_back(&slot);
    }
  });

  // Remembered-set source regions: regions recorded as holding references
  // into any collection-set region.
  std::vector<bool> seen(regions.num_regions(), false);
  std::vector<Region*> remset_sources;
  for (Region* r : cset) {
    r->ForEachRemsetRegion([&](uint32_t idx) {
      if (seen[idx]) {
        return;
      }
      seen[idx] = true;
      Region* s = &regions.region(idx);
      if (!s->IsFree() && !s->in_cset() && s->kind() != RegionKind::kHumongousCont) {
        remset_sources.push_back(s);
      }
    });
  }

  // Parallel evacuation.
  bool survivor_tracking =
      profiler_ != nullptr && profiler_->SurvivorTrackingEnabled();
  CancellationToken evac_cancel;
  EvacuationTask task(heap_, &config_, profiler_, survivor_tracking, &evac_cancel);
  uint32_t n = workers_->size();
  std::vector<EvacuationTask::Worker> eworkers;
  eworkers.reserve(n);
  for (uint32_t w = 0; w < n; w++) {
    eworkers.push_back(task.MakeWorker(w));
  }
  {
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kEvacuate, &evac_cancel);
    workers_->RunTask([&](uint32_t w) {
      // Stall-only fail point: a delay:<ms> arm sleeps here and returns false.
      (void)ROLP_FAULT_POINT("gc.phase.evacuate.stall");
      EvacuationTask::Worker& ew = eworkers[w];
      uint64_t steps = 0;
      for (size_t i = w; i < roots.size(); i += n) {
        if ((++steps & 63) == 0) {
          workers_->Heartbeat(w);
        }
        ew.ProcessRootSlot(roots[i], nullptr);
      }
      for (size_t i = w; i < remset_sources.size(); i += n) {
        workers_->Heartbeat(w);
        Region* s = remset_sources[i];
        s->ForEachObject([&](Object* obj) {
          if (mixed && !bitmap_.IsMarked(obj)) {
            return;  // precise: skip dead objects when marks are fresh
          }
          heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
            ew.ProcessRootSlot(slot, s);
          });
        });
      }
      ew.Drain();
      ew.Finish();
    });
  }

  std::vector<Region*> failed_regions = task.RestoreSelfForwarded(eworkers);
  for (Region* r : cset) {
    bool failed = std::find(failed_regions.begin(), failed_regions.end(), r) !=
                  failed_regions.end();
    if (failed) {
      // In-place survivors: the region is retired to old and cleaned by the
      // upcoming full collection.
      r->set_in_cset(false);
      r->set_kind(RegionKind::kOld);
      r->set_gen(0);
      r->set_live_bytes(r->used());
    } else {
      regions.FreeRegion(r);
    }
  }

  uint64_t copied = 0;
  uint64_t promoted = 0;
  for (auto& ew : eworkers) {
    copied += ew.bytes_copied();
    promoted += ew.bytes_promoted();
  }
  metrics_.AddBytesCopied(copied);
  metrics_.AddBytesPromoted(promoted);
  metrics_.IncrementGcCycles();
  heap_->UpdateMaxUsedBytes();

  uint64_t t1 = NowNs();
  uint64_t pause_ns = t1 - t0 - mark_ns;
  if (ROLP_FAULT_POINT("gc.pause.inflate")) {
    pause_ns += 10 * 1000 * 1000;  // report +10ms (drives pause-regression heuristics)
  }
  PauseRecord rec{t0, pause_ns, mixed ? PauseKind::kMixed : PauseKind::kYoung, copied};
  metrics_.RecordPause(rec);
  if (profiler_ != nullptr) {
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kProfilerMerge, nullptr);
    profiler_->OnGcEnd({metrics_.GcCycles(), rec.duration_ns, rec.kind});
  }

  if (task.failed()) {
    if (evac_cancel.IsCancelled()) {
      ROLP_LOG_ERROR("evacuation cancelled by watchdog; falling back to full collection");
    } else {
      ROLP_LOG_INFO("evacuation failure; escalating to full collection");
    }
    DoFull(NowNs());
  }
  ReportOverrunToProfiler();
}

void RegionalCollector::DoFull(uint64_t t0) {
  PreparePause();
  MarkCompact compactor(heap_, &bitmap_);
  uint64_t moved;
  {
    // The STW fallback is not cancellable (no token): it must finish. The
    // watchdog still times it — repeated overruns here abort (ladder rung 5).
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kCompact, nullptr);
    // Stall-only fail point: a delay:<ms> arm sleeps here and returns false.
    (void)ROLP_FAULT_POINT("gc.phase.compact.stall");
    moved = compactor.Collect(safepoints_, workers_.get());
  }
  metrics_.AddBytesCopied(moved);
  metrics_.IncrementGcCycles();
  heap_->UpdateMaxUsedBytes();
  uint64_t t1 = NowNs();
  PauseRecord rec{t0, t1 - t0, PauseKind::kFull, moved};
  metrics_.RecordPause(rec);
  if (profiler_ != nullptr) {
    WatchdogPhaseScope scope(watchdog_.get(), GcPhase::kProfilerMerge, nullptr);
    profiler_->OnGcEnd({metrics_.GcCycles(), rec.duration_ns, rec.kind});
  }
  ReportOverrunToProfiler();
}

void RegionalCollector::ReportOverrunToProfiler() {
  if (watchdog_ == nullptr || profiler_ == nullptr) {
    return;
  }
  if (watchdog_->TakeOverrunFlag()) {
    profiler_->OnGcOverrun(profiler_->SurvivorTrackingEnabled());
  }
}

void RegionalCollector::CollectFull(MutatorContext* ctx) {
  while (!safepoints_->BeginOperation(ctx)) {
  }
  DoFull(NowNs());
  safepoints_->EndOperation(ctx);
}

}  // namespace rolp
