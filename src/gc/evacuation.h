// Parallel evacuation: copies live objects out of the collection set using
// CAS-installed forwarding pointers (HotSpot-style). Workers own private
// destination buffers (whole regions), so losing a forwarding race can undo
// the copy bump. Evacuation failure (to-space exhaustion) self-forwards the
// object in place and preserves its mark for restoration after the pause.
//
// Concurrent mode (set_concurrent, DESIGN.md section 14): the same task also
// runs with mutators live. Slot healing switches from plain stores to CAS so
// a mutator's newer store is never overwritten, and mutators join the copy
// protocol through MutatorHeal — copy-on-first-touch from a shared, lock-
// guarded to-space, with the winning copy injected into the worker pool so
// its verbatim-copied (still stale) slots get scanned. A mutator copy that
// loses the forwarding race cannot undo a shared bump, so the duplicate is
// scrubbed into a free block (walkable dead data, reclaimed with the region).
#ifndef SRC_GC_EVACUATION_H_
#define SRC_GC_EVACUATION_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/gc/gc_config.h"
#include "src/gc/profiler_hooks.h"
#include "src/gc/stealable_queue.h"
#include "src/gc/watchdog/cancellation.h"
#include "src/heap/heap.h"
#include "src/util/spinlock.h"

namespace rolp {

class EvacuationTask {
 public:
  // `cancel` (optional, watchdog): once set, workers stop copying and
  // self-forward every remaining cset object in place — the same bounded
  // failure path as to-space exhaustion, so the pause still finishes with a
  // parsable heap and failed() triggers the full-collection fallback.
  EvacuationTask(Heap* heap, const GcConfig* config, ProfilerHooks* profiler,
                 bool survivor_tracking, CancellationToken* cancel = nullptr);

  // Per-worker evacuation context. Not thread-safe; one per GC worker.
  class Worker {
   public:
    Worker(EvacuationTask* task, uint32_t worker_id) : task_(task), worker_id_(worker_id) {}

    // Evacuates the target of a root slot if it is in the collection set.
    // src_region: region containing the slot (nullptr for global/thread
    // roots); used to maintain remembered sets on updated references.
    void ProcessRootSlot(std::atomic<Object*>* slot, Region* src_region);

    // Scans one work item: heals obj's ref slots (evacuating cset targets
    // transitively) and maintains remembered sets against obj's own region.
    // Works uniformly for to-space copies and for live objects in remset
    // source regions, so both kinds share the work-stealing item type.
    void ScanObject(Object* obj);

    // Drains this worker's private scan stack, evacuating transitively.
    // Only meaningful when the task has no work-stealing pool attached
    // (set_pool not called): with a pool, items go to the deques and the
    // caller's steal loop drains them instead.
    void Drain();

    // Retires destination buffers; called once after Drain.
    void Finish();

    uint64_t bytes_copied() const { return bytes_copied_; }
    uint64_t objects_copied() const { return objects_copied_; }
    uint64_t bytes_promoted() const { return bytes_promoted_; }

   private:
    friend class EvacuationTask;

    enum DestSpace : int { kDestSurvivor = 0, kDestOld = 1, kNumDestSpaces = 2 };

    Object* EvacuateOrForward(Object* obj);
    char* AllocInDest(int space, size_t bytes);
    // Publishes an object whose referents still need scanning: onto this
    // worker's deque when a pool is attached, else the private scan stack.
    void Emit(Object* obj);

    EvacuationTask* task_;
    uint32_t worker_id_;
    Region* dest_[kNumDestSpaces] = {nullptr, nullptr};
    std::vector<Object*> scan_stack_;
    // Marks of self-forwarded objects, restored after the pause.
    std::vector<std::pair<Object*, uint64_t>> preserved_marks_;
    uint64_t bytes_copied_ = 0;
    uint64_t objects_copied_ = 0;
    uint64_t bytes_promoted_ = 0;
  };

  Worker MakeWorker(uint32_t worker_id) { return Worker(this, worker_id); }

  // Attaches the per-pause work-stealing pool. When set, workers Emit
  // discovered objects onto their own deque (pool->Push(worker_id, obj)) so
  // idle workers can steal them; the caller owns termination via the pool's
  // outstanding counter. When unset, workers fall back to private scan
  // stacks drained by Drain() (single-threaded building block, tests).
  void set_pool(WorkStealingPool<Object*>* pool) { pool_ = pool; }

  // Whether any worker hit to-space exhaustion.
  bool failed() const { return failed_.load(std::memory_order_relaxed); }

  // --- Concurrent mode ------------------------------------------------------
  // Must be set before any worker runs; once on, ScanObject heals slots with
  // CAS (keeping racing mutator stores) and MutatorHeal becomes legal.
  void set_concurrent(bool v) { concurrent_ = v; }
  bool concurrent() const { return concurrent_; }

  // Mutator-side copy-on-first-touch (load-barrier slow path). Returns the
  // to-space address of `obj` (copying it if unforwarded), or `obj` itself
  // after self-forwarding it when to-space is exhausted or the cycle was
  // cancelled. Never scans: the winning copy (or the self-forwarded
  // original) is injected for the GC workers / final pause to scan. Safe to
  // race with GC workers and other mutators; any thread may call it.
  Object* MutatorHeal(Object* obj);

  // Pops one injected object (mutator-made copy or self-forward needing a
  // referent scan). Workers poll this alongside the stealing pool; the final
  // pause drains the leftovers injected after the workers exited. The
  // injection was pre-counted in the pool's outstanding counter (when one is
  // attached), so a worker that processes the item must still FinishOne().
  bool TakeInjected(Object** out);

  // Frees empty shared to-space buffers (final pause, after all healing).
  void FinishShared();

  uint64_t mutator_objects_copied() const {
    return mutator_objects_copied_.load(std::memory_order_relaxed);
  }
  uint64_t mutator_bytes_copied() const {
    return mutator_bytes_copied_.load(std::memory_order_relaxed);
  }
  uint64_t mutator_bytes_promoted() const {
    return mutator_bytes_promoted_.load(std::memory_order_relaxed);
  }
  // Bytes wasted by mutator copies that lost the forwarding race (scrubbed
  // into free blocks in to-space).
  uint64_t mutator_lost_race_bytes() const {
    return mutator_lost_race_bytes_.load(std::memory_order_relaxed);
  }

  // After all workers finished: restores self-forwarded marks (the workers'
  // private lists plus the shared mutator-side list) and flags each region
  // containing in-place survivors via Region::set_evac_failed (the collector
  // reads and clears the flag while walking the cset — O(cset), not
  // O(cset * failed)). Returns how many objects were self-forwarded.
  // Workers must be passed in; their preserved lists live in them.
  size_t RestoreSelfForwarded(std::vector<Worker>& workers);

  Heap* heap() { return heap_; }

 private:
  // Shared to-space bump allocation for mutator heals (lock-guarded: mutator
  // copies are rare transients, the workers do the bulk through their private
  // buffers). GC-internal, so it may dip into the governor's evacuation
  // reserve.
  char* AllocShared(int space, size_t bytes);
  // Queues an object for a referent scan from a non-worker thread,
  // pre-counting it in the pool's outstanding counter so the workers'
  // termination check covers it.
  void Inject(Object* obj);

  Heap* heap_;
  const GcConfig* config_;
  ProfilerHooks* profiler_;
  bool survivor_tracking_;
  CancellationToken* cancel_;
  WorkStealingPool<Object*>* pool_ = nullptr;
  std::atomic<bool> failed_{false};

  bool concurrent_ = false;
  SpinLock shared_lock_;  // guards shared_dest_, injected_, shared_preserved_
  Region* shared_dest_[Worker::kNumDestSpaces] = {nullptr, nullptr};
  std::vector<Object*> injected_;
  std::atomic<size_t> injected_count_{0};  // lock-free emptiness fast path
  std::vector<std::pair<Object*, uint64_t>> shared_preserved_;
  std::atomic<uint64_t> mutator_objects_copied_{0};
  std::atomic<uint64_t> mutator_bytes_copied_{0};
  std::atomic<uint64_t> mutator_bytes_promoted_{0};
  std::atomic<uint64_t> mutator_lost_race_bytes_{0};
};

}  // namespace rolp

#endif  // SRC_GC_EVACUATION_H_
