// Parallel evacuation: copies live objects out of the collection set using
// CAS-installed forwarding pointers (HotSpot-style). Workers own private
// destination buffers (whole regions), so losing a forwarding race can undo
// the copy bump. Evacuation failure (to-space exhaustion) self-forwards the
// object in place and preserves its mark for restoration after the pause.
#ifndef SRC_GC_EVACUATION_H_
#define SRC_GC_EVACUATION_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/gc/gc_config.h"
#include "src/gc/profiler_hooks.h"
#include "src/gc/stealable_queue.h"
#include "src/gc/watchdog/cancellation.h"
#include "src/heap/heap.h"

namespace rolp {

class EvacuationTask {
 public:
  // `cancel` (optional, watchdog): once set, workers stop copying and
  // self-forward every remaining cset object in place — the same bounded
  // failure path as to-space exhaustion, so the pause still finishes with a
  // parsable heap and failed() triggers the full-collection fallback.
  EvacuationTask(Heap* heap, const GcConfig* config, ProfilerHooks* profiler,
                 bool survivor_tracking, CancellationToken* cancel = nullptr);

  // Per-worker evacuation context. Not thread-safe; one per GC worker.
  class Worker {
   public:
    Worker(EvacuationTask* task, uint32_t worker_id) : task_(task), worker_id_(worker_id) {}

    // Evacuates the target of a root slot if it is in the collection set.
    // src_region: region containing the slot (nullptr for global/thread
    // roots); used to maintain remembered sets on updated references.
    void ProcessRootSlot(std::atomic<Object*>* slot, Region* src_region);

    // Scans one work item: heals obj's ref slots (evacuating cset targets
    // transitively) and maintains remembered sets against obj's own region.
    // Works uniformly for to-space copies and for live objects in remset
    // source regions, so both kinds share the work-stealing item type.
    void ScanObject(Object* obj);

    // Drains this worker's private scan stack, evacuating transitively.
    // Only meaningful when the task has no work-stealing pool attached
    // (set_pool not called): with a pool, items go to the deques and the
    // caller's steal loop drains them instead.
    void Drain();

    // Retires destination buffers; called once after Drain.
    void Finish();

    uint64_t bytes_copied() const { return bytes_copied_; }
    uint64_t objects_copied() const { return objects_copied_; }
    uint64_t bytes_promoted() const { return bytes_promoted_; }

   private:
    friend class EvacuationTask;

    enum DestSpace : int { kDestSurvivor = 0, kDestOld = 1, kNumDestSpaces = 2 };

    Object* EvacuateOrForward(Object* obj);
    char* AllocInDest(int space, size_t bytes);
    // Publishes an object whose referents still need scanning: onto this
    // worker's deque when a pool is attached, else the private scan stack.
    void Emit(Object* obj);

    EvacuationTask* task_;
    uint32_t worker_id_;
    Region* dest_[kNumDestSpaces] = {nullptr, nullptr};
    std::vector<Object*> scan_stack_;
    // Marks of self-forwarded objects, restored after the pause.
    std::vector<std::pair<Object*, uint64_t>> preserved_marks_;
    uint64_t bytes_copied_ = 0;
    uint64_t objects_copied_ = 0;
    uint64_t bytes_promoted_ = 0;
  };

  Worker MakeWorker(uint32_t worker_id) { return Worker(this, worker_id); }

  // Attaches the per-pause work-stealing pool. When set, workers Emit
  // discovered objects onto their own deque (pool->Push(worker_id, obj)) so
  // idle workers can steal them; the caller owns termination via the pool's
  // outstanding counter. When unset, workers fall back to private scan
  // stacks drained by Drain() (single-threaded building block, tests).
  void set_pool(WorkStealingPool<Object*>* pool) { pool_ = pool; }

  // Whether any worker hit to-space exhaustion.
  bool failed() const { return failed_.load(std::memory_order_relaxed); }

  // After all workers finished: restores self-forwarded marks and flags each
  // region containing in-place survivors via Region::set_evac_failed (the
  // collector reads and clears the flag while walking the cset — O(cset),
  // not O(cset * failed)). Returns how many objects were self-forwarded.
  // Workers must be passed in; their preserved lists live in them.
  size_t RestoreSelfForwarded(std::vector<Worker>& workers);

  Heap* heap() { return heap_; }

 private:
  Heap* heap_;
  const GcConfig* config_;
  ProfilerHooks* profiler_;
  bool survivor_tracking_;
  CancellationToken* cancel_;
  WorkStealingPool<Object*>* pool_ = nullptr;
  std::atomic<bool> failed_{false};
};

}  // namespace rolp

#endif  // SRC_GC_EVACUATION_H_
