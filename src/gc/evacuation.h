// Parallel evacuation: copies live objects out of the collection set using
// CAS-installed forwarding pointers (HotSpot-style). Workers own private
// destination buffers (whole regions), so losing a forwarding race can undo
// the copy bump. Evacuation failure (to-space exhaustion) self-forwards the
// object in place and preserves its mark for restoration after the pause.
#ifndef SRC_GC_EVACUATION_H_
#define SRC_GC_EVACUATION_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/gc/gc_config.h"
#include "src/gc/profiler_hooks.h"
#include "src/gc/watchdog/cancellation.h"
#include "src/heap/heap.h"

namespace rolp {

class EvacuationTask {
 public:
  // `cancel` (optional, watchdog): once set, workers stop copying and
  // self-forward every remaining cset object in place — the same bounded
  // failure path as to-space exhaustion, so the pause still finishes with a
  // parsable heap and failed() triggers the full-collection fallback.
  EvacuationTask(Heap* heap, const GcConfig* config, ProfilerHooks* profiler,
                 bool survivor_tracking, CancellationToken* cancel = nullptr);

  // Per-worker evacuation context. Not thread-safe; one per GC worker.
  class Worker {
   public:
    Worker(EvacuationTask* task, uint32_t worker_id) : task_(task), worker_id_(worker_id) {}

    // Evacuates the target of a root slot if it is in the collection set.
    // src_region: region containing the slot (nullptr for global/thread
    // roots); used to maintain remembered sets on updated references.
    void ProcessRootSlot(std::atomic<Object*>* slot, Region* src_region);

    // Drains this worker's scan stack, evacuating transitively.
    void Drain();

    // Retires destination buffers; called once after Drain.
    void Finish();

    uint64_t bytes_copied() const { return bytes_copied_; }
    uint64_t objects_copied() const { return objects_copied_; }
    uint64_t bytes_promoted() const { return bytes_promoted_; }

   private:
    friend class EvacuationTask;

    enum DestSpace : int { kDestSurvivor = 0, kDestOld = 1, kNumDestSpaces = 2 };

    Object* EvacuateOrForward(Object* obj);
    char* AllocInDest(int space, size_t bytes);
    void ScanObject(Object* obj);

    EvacuationTask* task_;
    uint32_t worker_id_;
    Region* dest_[kNumDestSpaces] = {nullptr, nullptr};
    std::vector<Object*> scan_stack_;
    // Marks of self-forwarded objects, restored after the pause.
    std::vector<std::pair<Object*, uint64_t>> preserved_marks_;
    uint64_t bytes_copied_ = 0;
    uint64_t objects_copied_ = 0;
    uint64_t bytes_promoted_ = 0;
  };

  Worker MakeWorker(uint32_t worker_id) { return Worker(this, worker_id); }

  // Whether any worker hit to-space exhaustion.
  bool failed() const { return failed_.load(std::memory_order_relaxed); }

  // After all workers finished: restores self-forwarded marks. Returns the
  // set of regions that contain self-forwarded (in-place) survivors.
  // Workers must be passed in; their preserved lists live in them.
  std::vector<Region*> RestoreSelfForwarded(std::vector<Worker>& workers);

  Heap* heap() { return heap_; }

 private:
  Heap* heap_;
  const GcConfig* config_;
  ProfilerHooks* profiler_;
  bool survivor_tracking_;
  CancellationToken* cancel_;
  std::atomic<bool> failed_{false};
};

}  // namespace rolp

#endif  // SRC_GC_EVACUATION_H_
