// Segregated-fit free-list allocator over heap regions — the CMS old
// generation. Blocks inside a region are either real objects or free blocks
// (kFreeBlockClassId headers), keeping every region walkable. Allocation
// splits blocks; coalescing happens during sweep, which rebuilds the lists
// from the mark bitmap.
//
// Fragmentation is this space's defining failure mode: free_bytes() can be
// large while no block fits a promotion, forcing the full-compaction fallback
// that produces CMS's long-tail pauses (paper section 2.2 / Fig. 8).
#ifndef SRC_GC_FREE_LIST_SPACE_H_
#define SRC_GC_FREE_LIST_SPACE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/heap/region.h"
#include "src/util/spinlock.h"

namespace rolp {

class FreeListSpace {
 public:
  // Minimum carveable block: header + one pointer for the list link.
  static constexpr size_t kMinBlock = 24;

  FreeListSpace() = default;

  // Writes a free-block header over [p, p+bytes) and links it.
  void AddFreeBlock(char* p, size_t bytes);

  // Registers a fresh empty region as one whole free block.
  void AddRegion(Region* region);

  // Allocates a block of exactly `bytes` (8-aligned). If the best-fit block
  // leaves a remainder smaller than kMinBlock, the allocation absorbs it and
  // *actual_bytes reports the grown size. Returns nullptr if nothing fits.
  char* Allocate(size_t bytes, size_t* actual_bytes);

  // Drops all free lists (used before a sweep rebuild or after compaction).
  void Clear();

  size_t free_bytes() const { return free_bytes_; }
  size_t largest_free_block() const;

  // Writes a free-block pseudo-header (static so sweeps can format blocks
  // before deciding whether to link them).
  static void FormatFreeBlock(char* p, size_t bytes);

 private:
  static constexpr size_t kSmallMax = 1024;
  static constexpr size_t kSmallBins = (kSmallMax - kMinBlock) / 8 + 1;
  static constexpr size_t kLargeBins = 16;  // by power of two above kSmallMax

  static size_t SmallBinFor(size_t bytes) { return (bytes - kMinBlock) / 8; }
  static size_t LargeBinFor(size_t bytes);

  // Free-block link lives in the first payload word.
  static char*& NextOf(char* block) { return *reinterpret_cast<char**>(block + 16); }
  static size_t SizeOf(char* block) {
    return reinterpret_cast<Object*>(block)->size_bytes;
  }

  void Link(char* block, size_t bytes);
  char* PopFit(size_t bytes);

  mutable SpinLock lock_;
  std::array<char*, kSmallBins> small_bins_ = {};
  std::array<char*, kLargeBins> large_bins_ = {};
  size_t free_bytes_ = 0;
};

}  // namespace rolp

#endif  // SRC_GC_FREE_LIST_SPACE_H_
