#include "src/gc/evacuation.h"

#include <atomic>
#include <cstring>
#include <mutex>

#include "src/util/fault_injection.h"
#include "src/util/log.h"

namespace rolp {

EvacuationTask::EvacuationTask(Heap* heap, const GcConfig* config, ProfilerHooks* profiler,
                               bool survivor_tracking, CancellationToken* cancel)
    : heap_(heap),
      config_(config),
      profiler_(profiler),
      survivor_tracking_(survivor_tracking),
      cancel_(cancel) {}

char* EvacuationTask::Worker::AllocInDest(int space, size_t bytes) {
  Region* r = dest_[space];
  if (r != nullptr) {
    char* p = r->BumpAlloc(bytes);
    if (p != nullptr) {
      return p;
    }
  }
  RegionKind kind = space == kDestSurvivor ? RegionKind::kSurvivor : RegionKind::kOld;
  Region* fresh =
      task_->heap_->regions().AllocateRegion(kind, 0, /*gc_internal=*/true);
  if (fresh == nullptr) {
    return nullptr;
  }
  dest_[space] = fresh;
  return fresh->BumpAlloc(bytes);
}

Object* EvacuationTask::Worker::EvacuateOrForward(Object* obj) {
  Heap* heap = task_->heap_;
  while (true) {
    uint64_t m = obj->mark.load(std::memory_order_acquire);
    if (markword::IsForwarded(m)) {
      return markword::ForwardedPtr(m);
    }
    Region* from = heap->regions().RegionFor(obj);
    bool young_src = from->IsYoung();
    uint64_t new_mark = m;
    int space = kDestOld;
    if (young_src) {
      uint32_t new_age = markword::Age(m) + 1;
      if (new_age > markword::kMaxAge) {
        new_age = markword::kMaxAge;
      }
      new_mark = markword::SetAge(m, new_age);
      space = new_age < task_->config_->tenuring_threshold ? kDestSurvivor : kDestOld;
    }
    size_t size = obj->size_bytes;
    // Phase cancelled (watchdog): stop copying and funnel everything through
    // the bounded self-forward path below, exactly as if to-space ran out.
    bool cancelled = task_->cancel_ != nullptr && task_->cancel_->IsCancelled();
    char* to = cancelled ? nullptr : AllocInDest(space, size);
    if (to == nullptr) {
      // To-space exhaustion: self-forward in place, preserve the mark.
      uint64_t self = markword::EncodeForwarded(obj);
      if (obj->mark.compare_exchange_strong(m, self, std::memory_order_acq_rel)) {
        task_->failed_.store(true, std::memory_order_relaxed);
        preserved_marks_.emplace_back(obj, m);
        Emit(obj);  // its referents still need evacuation
        return obj;
      }
      continue;  // lost the race; retry (winner forwarded it)
    }
    // Speculative copy: a racing worker may win the forwarding CAS and write
    // obj's mark word (and, once forwarded, heal its ref slots) while we are
    // still reading the source. Our copy is discarded when the CAS below
    // fails, so stale words are harmless, but the reads must be atomic to be
    // well-defined: objects are 8-byte aligned and sized, so copy in relaxed
    // 8-byte words instead of memcpy.
    uint64_t* src_words = reinterpret_cast<uint64_t*>(obj);
    uint64_t* dst_words = reinterpret_cast<uint64_t*>(to);
    for (size_t w = 0; w < size / sizeof(uint64_t); w++) {
      dst_words[w] = std::atomic_ref<uint64_t>(src_words[w]).load(std::memory_order_relaxed);
    }
    Object* copy = reinterpret_cast<Object*>(to);
    copy->StoreMark(new_mark);
    if (obj->mark.compare_exchange_strong(m, markword::EncodeForwarded(copy),
                                          std::memory_order_acq_rel)) {
      objects_copied_++;
      bytes_copied_ += size;
      if (space == kDestOld) {
        bytes_promoted_ += size;
      }
      if (young_src && task_->survivor_tracking_ && task_->profiler_ != nullptr) {
        // Report the pre-aging mark: the profiler extracts context and age
        // (paper section 3.3) and discards biased-locked objects itself.
        task_->profiler_->OnSurvivor(worker_id_, m);
      }
      Emit(copy);
      return copy;
    }
    // Lost the forwarding race: undo our private bump and use the winner's.
    dest_[space]->UndoBumpAlloc(to, size);
  }
}

void EvacuationTask::Worker::Emit(Object* obj) {
  if (task_->pool_ != nullptr) {
    task_->pool_->Push(worker_id_, obj);
  } else {
    scan_stack_.push_back(obj);
  }
}

void EvacuationTask::Worker::ScanObject(Object* obj) {
  Heap* heap = task_->heap_;
  RegionManager& regions = heap->regions();
  Region* obj_region = regions.RegionFor(obj);
  const bool concurrent = task_->concurrent_;
  heap->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
    Object* v = slot->load(concurrent ? std::memory_order_acquire
                                      : std::memory_order_relaxed);
    if (v == nullptr) {
      return;
    }
    Region* vr = regions.RegionFor(v);
    if (vr->in_cset()) {
      Object* healed = EvacuateOrForward(v);
      if (concurrent) {
        // Mutators are running: heal with CAS so a racing store of a new
        // value is never clobbered. A failed CAS means the slot already
        // holds someone else's value — either the same to-space pointer
        // (another healer won) or a fresh mutator store, which is already
        // to-space (mutators only ever hold healed references) and whose
        // remset bit the store barrier recorded.
        slot->compare_exchange_strong(v, healed, std::memory_order_acq_rel,
                                      std::memory_order_relaxed);
      } else {
        slot->store(healed, std::memory_order_relaxed);
      }
      v = healed;
      vr = regions.RegionFor(v);
    }
    // Maintain remembered sets for the object's (possibly new) location.
    if (vr != obj_region && !(obj_region->IsYoung() && vr->IsYoung())) {
      vr->RemsetAddRegion(obj_region->index());
    }
  });
}

void EvacuationTask::Worker::ProcessRootSlot(std::atomic<Object*>* slot, Region* src_region) {
  Object* v = slot->load(std::memory_order_relaxed);
  if (v == nullptr) {
    return;
  }
  RegionManager& regions = task_->heap_->regions();
  Region* vr = regions.RegionFor(v);
  if (vr->in_cset()) {
    v = EvacuateOrForward(v);
    // Roots are only healed inside pauses (both modes), so a plain store is
    // race-free even in a concurrent cycle.
    slot->store(v, std::memory_order_relaxed);
    vr = regions.RegionFor(v);
  }
  if (src_region != nullptr && vr != src_region &&
      !(src_region->IsYoung() && vr->IsYoung())) {
    vr->RemsetAddRegion(src_region->index());
  }
}

void EvacuationTask::Worker::Drain() {
  while (!scan_stack_.empty()) {
    Object* obj = scan_stack_.back();
    scan_stack_.pop_back();
    ScanObject(obj);
  }
}

void EvacuationTask::Worker::Finish() {
  for (Region*& r : dest_) {
    if (r != nullptr && r->used() == 0) {
      task_->heap_->regions().FreeRegion(r);
    }
    r = nullptr;
  }
}

size_t EvacuationTask::RestoreSelfForwarded(std::vector<Worker>& workers) {
  size_t restored = 0;
  for (Worker& w : workers) {
    for (auto& [obj, mark] : w.preserved_marks_) {
      obj->StoreMark(mark);
      heap_->regions().RegionFor(obj)->set_evac_failed(true);
      restored++;
    }
  }
  // Mutator-side self-forwards (concurrent mode). Called from a pause, so
  // the lock is uncontended but still taken for the analyzer's benefit.
  std::lock_guard<SpinLock> guard(shared_lock_);
  for (auto& [obj, mark] : shared_preserved_) {
    obj->StoreMark(mark);
    heap_->regions().RegionFor(obj)->set_evac_failed(true);
    restored++;
  }
  shared_preserved_.clear();
  return restored;
}

Object* EvacuationTask::MutatorHeal(Object* obj) {
  ROLP_DCHECK(concurrent_);
  while (true) {
    uint64_t m = obj->mark.load(std::memory_order_acquire);
    if (markword::IsForwarded(m)) {
      return markword::ForwardedPtr(m);
    }
    Region* from = heap_->regions().RegionFor(obj);
    bool young_src = from->IsYoung();
    uint64_t new_mark = m;
    int space = Worker::kDestOld;
    if (young_src) {
      uint32_t new_age = markword::Age(m) + 1;
      if (new_age > markword::kMaxAge) {
        new_age = markword::kMaxAge;
      }
      new_mark = markword::SetAge(m, new_age);
      space = new_age < config_->tenuring_threshold ? Worker::kDestSurvivor : Worker::kDestOld;
    }
    size_t size = obj->size_bytes;
    // A cancelled cycle (or an injected allocation failure) funnels through
    // the same bounded self-forward path as to-space exhaustion.
    bool no_copy = cancel_ != nullptr && cancel_->IsCancelled();
    if (ROLP_FAULT_POINT("gc.concurrent_evac.copy_fail")) {
      no_copy = true;
    }
    char* to = no_copy ? nullptr : AllocShared(space, size);
    if (to == nullptr) {
      uint64_t self = markword::EncodeForwarded(obj);
      if (obj->mark.compare_exchange_strong(m, self, std::memory_order_acq_rel)) {
        failed_.store(true, std::memory_order_relaxed);
        {
          std::lock_guard<SpinLock> guard(shared_lock_);
          shared_preserved_.emplace_back(obj, m);
        }
        Inject(obj);  // its referents still need healing
        return obj;
      }
      continue;  // lost the race; retry (winner forwarded it)
    }
    // Same speculative word-wise copy as the worker path: racing copiers may
    // mutate the source mark while we read, and our copy is discarded if the
    // CAS below fails.
    uint64_t* src_words = reinterpret_cast<uint64_t*>(obj);
    uint64_t* dst_words = reinterpret_cast<uint64_t*>(to);
    for (size_t w = 0; w < size / sizeof(uint64_t); w++) {
      dst_words[w] = std::atomic_ref<uint64_t>(src_words[w]).load(std::memory_order_relaxed);
    }
    Object* copy = reinterpret_cast<Object*>(to);
    copy->StoreMark(new_mark);
    if (obj->mark.compare_exchange_strong(m, markword::EncodeForwarded(copy),
                                          std::memory_order_acq_rel)) {
      mutator_objects_copied_.fetch_add(1, std::memory_order_relaxed);
      mutator_bytes_copied_.fetch_add(size, std::memory_order_relaxed);
      if (space == Worker::kDestOld) {
        mutator_bytes_promoted_.fetch_add(size, std::memory_order_relaxed);
      }
      // Deliberately no ProfilerHooks::OnSurvivor here: its per-worker
      // tables are single-writer per worker id (GC worker threads only);
      // mutator copies show up in the mutator_* counters instead.
      Inject(copy);  // the copy's verbatim slots still hold stale refs
      return copy;
    }
    // Lost the forwarding race. A shared bump cannot be retreated (another
    // heal may already sit past us), so scrub the duplicate into a free
    // block: walkable dead data that slot walks and the verifier skip, and
    // that dies with the region in a later collection.
    copy->StoreMark(0);
    copy->class_id = kFreeBlockClassId;
    mutator_lost_race_bytes_.fetch_add(size, std::memory_order_relaxed);
  }
}

char* EvacuationTask::AllocShared(int space, size_t bytes) {
  std::lock_guard<SpinLock> guard(shared_lock_);
  Region* r = shared_dest_[space];
  if (r != nullptr) {
    char* p = r->BumpAlloc(bytes);
    if (p != nullptr) {
      return p;
    }
  }
  RegionKind kind = space == Worker::kDestSurvivor ? RegionKind::kSurvivor : RegionKind::kOld;
  Region* fresh = heap_->regions().AllocateRegion(kind, 0, /*gc_internal=*/true);
  if (fresh == nullptr) {
    return nullptr;
  }
  // A replaced partial buffer needs no retirement: it is already a live
  // survivor/old region whose used prefix holds published copies.
  shared_dest_[space] = fresh;
  return fresh->BumpAlloc(bytes);
}

void EvacuationTask::Inject(Object* obj) {
  // Count before publishing: a worker that pops the item calls FinishOne(),
  // and the pool's outstanding counter must never dip below the number of
  // published-but-unfinished items or the termination check fires early.
  if (pool_ != nullptr) {
    pool_->AddOutstanding(1);
  }
  std::lock_guard<SpinLock> guard(shared_lock_);
  injected_.push_back(obj);
  injected_count_.store(injected_.size(), std::memory_order_relaxed);
}

bool EvacuationTask::TakeInjected(Object** out) {
  // Lock-free fast path: workers poll this every drain iteration and the
  // queue is almost always empty (mutator heals are rare transients).
  if (injected_count_.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  std::lock_guard<SpinLock> guard(shared_lock_);
  if (injected_.empty()) {
    return false;
  }
  *out = injected_.back();
  injected_.pop_back();
  injected_count_.store(injected_.size(), std::memory_order_relaxed);
  return true;
}

void EvacuationTask::FinishShared() {
  std::lock_guard<SpinLock> guard(shared_lock_);
  for (Region*& r : shared_dest_) {
    if (r != nullptr && r->used() == 0) {
      heap_->regions().FreeRegion(r);
    }
    r = nullptr;
  }
}

}  // namespace rolp
