// Per-mutator GC-visible state and the registry/safepoint protocol.
//
// A MutatorContext is embedded in every runtime thread. It carries the TLAB
// and the thread's local root slots (handles). The SafepointManager
// implements a classic cooperative stop-the-world protocol: mutators poll at
// allocation and method-entry sites; a thread wanting to run a VM operation
// (a GC pause) requests a stop, waits for all other registered mutators to
// park, runs the operation, and releases them.
#ifndef SRC_GC_THREAD_CONTEXT_H_
#define SRC_GC_THREAD_CONTEXT_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "src/heap/object.h"
#include "src/heap/tlab.h"

namespace rolp {

struct MutatorContext {
  uint32_t thread_id = 0;
  Tlab tlab;
  // Local root slots (handle stack). deque: elements never move, so the GC
  // can treat element addresses as stable slots for the duration of a pause.
  std::deque<std::atomic<Object*>> local_roots;
};

class SafepointManager {
 public:
  void RegisterThread(MutatorContext* ctx);
  void UnregisterThread(MutatorContext* ctx);

  // Fast-path check used by mutators; parks the thread if a VM operation is
  // pending.
  void Poll(MutatorContext* ctx) {
    if (__builtin_expect(requested_.load(std::memory_order_acquire), 0)) {
      PollSlow(ctx);
    }
  }

  // Tries to stop the world with `self` as the VM-operation thread. Returns
  // true if the caller now owns the stopped world and must call
  // EndOperation(). Returns false if another operation ran first (the caller
  // parked during it and should re-check its allocation).
  bool BeginOperation(MutatorContext* self);
  void EndOperation(MutatorContext* self);

  // While the world is stopped, iterates all registered mutator contexts
  // (including the VM-operation thread itself).
  template <typename Fn>
  void ForEachThread(Fn&& fn) {
    std::lock_guard<std::mutex> guard(mu_);
    for (MutatorContext* ctx : threads_) {
      fn(ctx);
    }
  }

  size_t NumThreads() const {
    std::lock_guard<std::mutex> guard(mu_);
    return threads_.size();
  }

  // Marks the current thread as safe (as if parked) for the duration of a
  // blocking operation, e.g. a sleep in the bench driver.
  class ScopedSafeRegion {
   public:
    ScopedSafeRegion(SafepointManager* sp, MutatorContext* ctx);
    ~ScopedSafeRegion();
    ScopedSafeRegion(const ScopedSafeRegion&) = delete;
    ScopedSafeRegion& operator=(const ScopedSafeRegion&) = delete;

   private:
    SafepointManager* sp_;
    MutatorContext* ctx_;
  };

  // Total safepoint stops performed (diagnostics).
  uint64_t OperationCount() const { return operations_.load(std::memory_order_relaxed); }

 private:
  void PollSlow(MutatorContext* ctx);

  mutable std::mutex mu_;
  std::condition_variable cv_resume_;  // mutators wait here while stopped
  std::condition_variable cv_stopped_; // VM-op thread waits for mutators to park
  std::vector<MutatorContext*> threads_;
  std::atomic<bool> requested_{false};
  bool operation_active_ = false;
  size_t parked_ = 0;
  std::atomic<uint64_t> operations_{0};
};

}  // namespace rolp

#endif  // SRC_GC_THREAD_CONTEXT_H_
