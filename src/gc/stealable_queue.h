// Work-stealing deques for the parallel pause engine.
//
// StealableTaskQueue<T> is a Chase-Lev deque (Chase & Lev, SPAA '05, with the
// C11 memory orders of Lê et al., PPoPP '13, except that bottom_ stores are
// release stores instead of fence + relaxed — see the comment in Push): the
// owning worker pushes and pops at the bottom with no synchronization in the
// common case; thieves steal from the top with one CAS. This replaces the static `for (i = w;
// i < n; i += n)` striding the GC phases used to use — with striding, one
// worker landing on a dense remembered-set region serializes the pause;
// with stealing, the objects it discovers are picked up by idle workers.
//
// WorkStealingPool<T> bundles one deque per GC worker with the shared
// outstanding-work counter used for termination detection: the counter is
// incremented for every queued unit (scan units up front, items at Push) and
// decremented when a unit finishes, so "outstanding == 0" means globally done
// even while items are in flight between queues. Workers that find all queues
// empty spin on the counter (polling heartbeats / cancellation at the call
// site) rather than exiting early and dropping work a straggler might still
// publish.
//
// Item type T must be trivially copyable and lock-free as std::atomic<T>
// (the GC uses Object*).
#ifndef SRC_GC_STEALABLE_QUEUE_H_
#define SRC_GC_STEALABLE_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/check.h"
#include "src/util/env.h"

namespace rolp {

// Unit size for chunked claiming of root slots / region shards during GC
// pauses (ROLP_STEAL_CHUNK, default 64). Small enough to balance, large
// enough that the claim cost (one fetch_add) amortizes.
inline size_t StealChunkSize() {
  static const size_t chunk = [] {
    int64_t v = EnvInt64("ROLP_STEAL_CHUNK", 64);
    return v < 1 ? size_t{1} : static_cast<size_t>(v);
  }();
  return chunk;
}

template <typename T>
class StealableTaskQueue {
 public:
  explicit StealableTaskQueue(size_t initial_capacity = 1024)
      : buffer_(new Buffer(NextPow2(initial_capacity))) {}

  ~StealableTaskQueue() { delete buffer_.load(std::memory_order_relaxed); }

  StealableTaskQueue(const StealableTaskQueue&) = delete;
  StealableTaskQueue& operator=(const StealableTaskQueue&) = delete;

  // Owner only. Never fails: grows the backing buffer when full.
  void Push(T value) {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<int64_t>(buf->capacity) - 1) {
      buf = Grow(buf, t, b);
    }
    buf->Put(b, value);
    // Every bottom_ store is a release store (not Lê et al.'s fence +
    // relaxed): a thief's acquire load of bottom_ may read *any* later owner
    // store — including Pop's restore path — so each one must carry the
    // happens-before edge that publishes the item contents. Also keeps the
    // synchronization visible to race detectors that don't model fences.
    bottom_.store(b + 1, std::memory_order_release);
  }

  // Owner only. LIFO (depth-first — keeps the trace cache-warm).
  bool Pop(T* out) {
    int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Empty: restore.
      bottom_.store(b + 1, std::memory_order_release);
      return false;
    }
    T value = buf->Get(b);
    if (t == b) {
      // Last element: race the thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_release);
        return false;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_release);
    }
    *out = value;
    return true;
  }

  // Any thread. FIFO from the top.
  bool Steal(T* out) {
    int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) {
      return false;  // observed empty
    }
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    T value = buf->Get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;  // lost the race; caller retries elsewhere
    }
    *out = value;
    return true;
  }

  bool Empty() const {
    return bottom_.load(std::memory_order_relaxed) <=
           top_.load(std::memory_order_relaxed);
  }

  size_t capacity() const {
    return buffer_.load(std::memory_order_relaxed)->capacity;
  }

 private:
  struct Buffer {
    explicit Buffer(size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T>[cap]) {}
    const size_t capacity;
    const size_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;

    T Get(int64_t i) const {
      return slots[static_cast<size_t>(i) & mask].load(std::memory_order_relaxed);
    }
    void Put(int64_t i, T v) {
      slots[static_cast<size_t>(i) & mask].store(v, std::memory_order_relaxed);
    }
  };

  static size_t NextPow2(size_t n) {
    size_t p = 1;
    while (p < n) {
      p <<= 1;
    }
    return p < 8 ? 8 : p;
  }

  Buffer* Grow(Buffer* old, int64_t t, int64_t b) {
    auto fresh = std::make_unique<Buffer>(old->capacity * 2);
    for (int64_t i = t; i < b; i++) {
      fresh->Put(i, old->Get(i));
    }
    Buffer* raw = fresh.get();
    buffer_.store(raw, std::memory_order_release);
    // A thief that loaded the old buffer pointer may still be reading from
    // it; retire rather than free. Retired buffers are reclaimed with the
    // queue (their total size is bounded: a geometric series below 1x the
    // final buffer).
    retired_.push_back(std::unique_ptr<Buffer>(old));
    fresh.release();
    return raw;
  }

  alignas(64) std::atomic<int64_t> top_{0};
  alignas(64) std::atomic<int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  std::vector<std::unique_ptr<Buffer>> retired_;  // owner-only (Grow)
};

// One deque per worker plus the shared termination counter.
template <typename T>
class WorkStealingPool {
 public:
  explicit WorkStealingPool(uint32_t num_workers) : queues_(num_workers) {
    for (auto& q : queues_) {
      q = std::make_unique<StealableTaskQueue<T>>();
    }
  }

  uint32_t size() const { return static_cast<uint32_t>(queues_.size()); }

  // Registers `n` units of work completed outside the queues (e.g. scan
  // units claimed via a shared cursor). Call before workers start.
  void AddOutstanding(int64_t n) {
    outstanding_.fetch_add(n, std::memory_order_relaxed);
  }

  // Queues an item on worker w's deque. Owner thread of w only.
  void Push(uint32_t w, T value) {
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    queues_[w]->Push(value);
  }

  // Marks one unit (queued item or externally-counted scan unit) finished.
  void FinishOne() { outstanding_.fetch_sub(1, std::memory_order_acq_rel); }

  // All queued and externally-counted work done?
  bool Done() const { return outstanding_.load(std::memory_order_acquire) == 0; }

  // Pops from w's own deque, then tries to steal round-robin from the
  // others. Returns false when everything looked empty (caller checks
  // Done() and spins otherwise — a straggler may still publish work).
  bool TryGet(uint32_t w, T* out) {
    if (queues_[w]->Pop(out)) {
      return true;
    }
    uint32_t n = size();
    for (uint32_t i = 1; i < n; i++) {
      if (queues_[(w + i) % n]->Steal(out)) {
        return true;
      }
    }
    return false;
  }

  StealableTaskQueue<T>& queue(uint32_t w) { return *queues_[w]; }

 private:
  std::vector<std::unique_ptr<StealableTaskQueue<T>>> queues_;
  alignas(64) std::atomic<int64_t> outstanding_{0};
};

}  // namespace rolp

#endif  // SRC_GC_STEALABLE_QUEUE_H_
