// Pause-time and GC-work accounting. Every stop-the-world window is recorded
// here; the benchmark harnesses read pauses back to build the paper's
// percentile (Fig. 8), interval (Fig. 9), and warmup (Fig. 10) plots.
#ifndef SRC_GC_GC_METRICS_H_
#define SRC_GC_GC_METRICS_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/util/histogram.h"
#include "src/util/spinlock.h"

namespace rolp {

enum class PauseKind : uint8_t {
  kYoung,
  kMixed,
  kFull,
  kCmsRemark,
  kCmsSweep,
  kZMark,
  kZRemark,
  kZRelocateStart,
  // Regional concurrent evacuation (ROLP_CONCURRENT_EVAC): the short final
  // handshake that drains leftover heals, retires/frees the collection set,
  // and disarms the load barrier.
  kRemap,
};

const char* PauseKindName(PauseKind kind);

struct PauseRecord {
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  PauseKind kind = PauseKind::kYoung;
  uint64_t bytes_copied = 0;
};

class GcMetrics {
 public:
  // Retained per-pause records are capped: a long-running service would
  // otherwise accumulate one PauseRecord per pause forever. The default keeps
  // every pause a bench-scale run produces; ROLP_PAUSE_LOG_CAP overrides it
  // (values < 1 clamp to 1). pause_hist_ stays the authoritative all-time
  // aggregate regardless of the cap.
  static constexpr size_t kDefaultPauseLogCap = 1u << 16;

  GcMetrics();

  void RecordPause(const PauseRecord& record);

  // Snapshot of the retained pause window, oldest first. Once more than
  // pause_log_cap() pauses have been recorded this is the most recent
  // pause_log_cap() of them, not the full history — all-time aggregates come
  // from PauseCount/TotalPauseNs/MaxPauseNs/PausePercentileNs.
  std::vector<PauseRecord> Pauses() const;

  size_t pause_log_cap() const { return pause_log_cap_; }
  // Tests only: shrinking the cap drops the oldest retained records.
  void set_pause_log_cap(size_t cap);

  // All-time counts (not limited to the retained window).
  uint64_t PauseCount() const;
  uint64_t TotalPauseNs() const;
  uint64_t MaxPauseNs() const;
  // Value such that p% of pauses are <= it (log-bucketed approximation).
  uint64_t PausePercentileNs(double p) const;
  // Copy of the all-time pause histogram (metrics-registry snapshot source).
  LogHistogram PauseHistogramSnapshot() const;
  // Mean duration of the most recent n pauses (within the retained window).
  double RecentMeanPauseNs(size_t n) const;

  // Completed GC cycles: the profiler's unit of time (paper section 3).
  uint64_t GcCycles() const { return gc_cycles_.load(std::memory_order_relaxed); }
  void IncrementGcCycles() { gc_cycles_.fetch_add(1, std::memory_order_relaxed); }

  // Work counters.
  void AddBytesCopied(uint64_t n) { bytes_copied_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t BytesCopied() const { return bytes_copied_.load(std::memory_order_relaxed); }
  void AddBytesPromoted(uint64_t n) { bytes_promoted_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t BytesPromoted() const { return bytes_promoted_.load(std::memory_order_relaxed); }
  void AddConcurrentWorkNs(uint64_t n) {
    concurrent_work_ns_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t ConcurrentWorkNs() const { return concurrent_work_ns_.load(std::memory_order_relaxed); }

  // Pause breakdown (young/mixed pauses): region/remset scanning, evacuation,
  // and the profiler hook (merge + any in-pause inference). Cumulative ns;
  // bench_pause divides by pause count.
  void AddPauseScanNs(uint64_t n) { pause_scan_ns_.fetch_add(n, std::memory_order_relaxed); }
  void AddPauseEvacNs(uint64_t n) { pause_evac_ns_.fetch_add(n, std::memory_order_relaxed); }
  void AddPauseProfilerNs(uint64_t n) {
    pause_profiler_ns_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddPauseVerifyNs(uint64_t n) {
    pause_verify_ns_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t PauseScanNs() const { return pause_scan_ns_.load(std::memory_order_relaxed); }
  uint64_t PauseEvacNs() const { return pause_evac_ns_.load(std::memory_order_relaxed); }
  uint64_t PauseProfilerNs() const {
    return pause_profiler_ns_.load(std::memory_order_relaxed);
  }
  uint64_t PauseVerifyNs() const { return pause_verify_ns_.load(std::memory_order_relaxed); }
  // Concurrent-evacuation breakdown: wall time of the final remap/retire
  // pause, plus CPU time (CLOCK_THREAD_CPUTIME_ID deltas summed over the
  // copy workers / pause thread). CPU counters make the cost attributable
  // even on 1-CPU bench boxes where wall-clock parallel scaling is invisible.
  void AddPauseRemapNs(uint64_t n) { pause_remap_ns_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t PauseRemapNs() const { return pause_remap_ns_.load(std::memory_order_relaxed); }
  void AddEvacCpuNs(uint64_t n) { evac_cpu_ns_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t EvacCpuNs() const { return evac_cpu_ns_.load(std::memory_order_relaxed); }
  void AddRemapCpuNs(uint64_t n) { remap_cpu_ns_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t RemapCpuNs() const { return remap_cpu_ns_.load(std::memory_order_relaxed); }

  // Per-phase thread-CPU-time totals, indexed by GcPhase (gc_watchdog.h).
  // WatchdogPhaseScope feeds these with CLOCK_THREAD_CPUTIME_ID deltas from
  // whichever thread brackets the phase, for every collector — the
  // generalization of evac_cpu/remap_cpu above (which stay, as the
  // worker-summed evacuation counters the pause bench gates on). Sized with
  // slack so gc_watchdog.h need not be included here.
  static constexpr size_t kNumGcPhaseSlots = 16;
  void AddPhaseCpuNs(size_t phase, uint64_t n) {
    if (phase < kNumGcPhaseSlots) {
      phase_cpu_ns_[phase].fetch_add(n, std::memory_order_relaxed);
    }
  }
  uint64_t PhaseCpuNs(size_t phase) const {
    return phase < kNumGcPhaseSlots ? phase_cpu_ns_[phase].load(std::memory_order_relaxed) : 0;
  }

  // Per-worker evacuation copy volume: the work-balance signal. With static
  // striding one worker can absorb a dense remset region (max share -> ~1.0);
  // with stealing the shares even out regardless of input skew.
  static constexpr uint32_t kMaxTrackedWorkers = 32;
  void AddWorkerCopiedBytes(uint32_t worker, uint64_t n) {
    if (worker < kMaxTrackedWorkers) {
      worker_copied_bytes_[worker].fetch_add(n, std::memory_order_relaxed);
    }
  }
  uint64_t WorkerCopiedBytes(uint32_t worker) const {
    return worker < kMaxTrackedWorkers
               ? worker_copied_bytes_[worker].load(std::memory_order_relaxed)
               : 0;
  }
  // Largest single-worker fraction of all copied bytes (1/num_workers = even).
  double MaxWorkerCopiedShare() const;

  void Reset();

 private:
  // Index into pauses_ of the oldest retained record once the ring is full
  // (pauses_.size() == pause_log_cap_); 0 while still filling.
  mutable SpinLock lock_;
  size_t pause_log_cap_;
  size_t ring_head_ = 0;
  std::vector<PauseRecord> pauses_;
  uint64_t pauses_total_ = 0;
  uint64_t total_pause_ns_ = 0;
  LogHistogram pause_hist_;
  std::atomic<uint64_t> gc_cycles_{0};
  std::atomic<uint64_t> bytes_copied_{0};
  std::atomic<uint64_t> bytes_promoted_{0};
  std::atomic<uint64_t> concurrent_work_ns_{0};
  std::atomic<uint64_t> pause_scan_ns_{0};
  std::atomic<uint64_t> pause_evac_ns_{0};
  std::atomic<uint64_t> pause_profiler_ns_{0};
  std::atomic<uint64_t> pause_verify_ns_{0};
  std::atomic<uint64_t> pause_remap_ns_{0};
  std::atomic<uint64_t> evac_cpu_ns_{0};
  std::atomic<uint64_t> remap_cpu_ns_{0};
  std::atomic<uint64_t> worker_copied_bytes_[kMaxTrackedWorkers] = {};
  std::atomic<uint64_t> phase_cpu_ns_[kNumGcPhaseSlots] = {};
};

}  // namespace rolp

#endif  // SRC_GC_GC_METRICS_H_
