#include "src/gc/thread_context.h"

#include "src/util/check.h"

namespace rolp {

void SafepointManager::RegisterThread(MutatorContext* ctx) {
  std::lock_guard<std::mutex> guard(mu_);
  // A thread must not register while a stop is in progress in a way that the
  // VM-op thread misses it; holding mu_ makes registration atomic with the
  // stop protocol.
  threads_.push_back(ctx);
}

void SafepointManager::UnregisterThread(MutatorContext* ctx) {
  std::unique_lock<std::mutex> lock(mu_);
  for (size_t i = 0; i < threads_.size(); i++) {
    if (threads_[i] == ctx) {
      threads_[i] = threads_.back();
      threads_.pop_back();
      break;
    }
  }
  // The VM-op thread may be waiting for this thread to park; its target count
  // just dropped.
  cv_stopped_.notify_all();
}

void SafepointManager::PollSlow(MutatorContext* ctx) {
  std::unique_lock<std::mutex> lock(mu_);
  while (operation_active_) {
    parked_++;
    cv_stopped_.notify_all();
    cv_resume_.wait(lock, [&] { return !operation_active_; });
    parked_--;
  }
}

bool SafepointManager::BeginOperation(MutatorContext* self) {
  std::unique_lock<std::mutex> lock(mu_);
  if (operation_active_) {
    // Someone else is stopping the world; behave like a polled mutator.
    parked_++;
    cv_stopped_.notify_all();
    cv_resume_.wait(lock, [&] { return !operation_active_; });
    parked_--;
    return false;
  }
  operation_active_ = true;
  requested_.store(true, std::memory_order_release);
  // Wait until every other registered thread is parked.
  cv_stopped_.wait(lock, [&] { return parked_ + 1 >= threads_.size(); });
  operations_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SafepointManager::EndOperation(MutatorContext* self) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    ROLP_CHECK(operation_active_);
    operation_active_ = false;
    requested_.store(false, std::memory_order_release);
  }
  cv_resume_.notify_all();
}

SafepointManager::ScopedSafeRegion::ScopedSafeRegion(SafepointManager* sp, MutatorContext* ctx)
    : sp_(sp), ctx_(ctx) {
  std::lock_guard<std::mutex> guard(sp_->mu_);
  sp_->parked_++;
  sp_->cv_stopped_.notify_all();
}

SafepointManager::ScopedSafeRegion::~ScopedSafeRegion() {
  std::unique_lock<std::mutex> lock(sp_->mu_);
  // Must not resume while a VM operation is running.
  sp_->cv_resume_.wait(lock, [&] { return !sp_->operation_active_; });
  sp_->parked_--;
}

}  // namespace rolp
