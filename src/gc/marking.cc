#include "src/gc/marking.h"

#include <atomic>

#include "src/util/fault_injection.h"

namespace rolp {

namespace {

// Live bytes are attributed to the head region for humongous objects.
Region* AccountingRegion(RegionManager& regions, Object* obj) {
  Region* r = regions.RegionFor(obj);
  // Objects never start in a continuation region.
  ROLP_DCHECK(r->kind() != RegionKind::kHumongousCont);
  return r;
}

}  // namespace

void Marker::Visit(Object* obj, std::vector<Object*>* stack) {
  if (obj == nullptr) {
    return;
  }
  if (!bitmap_->Mark(obj)) {
    return;
  }
  AccountingRegion(heap_->regions(), obj)->AddLiveBytes(obj->size_bytes);
  marked_objects_++;
  marked_bytes_ += obj->size_bytes;
  stack->push_back(obj);
}

void Marker::TraceWorklist(std::vector<Object*>* stack) {
  while (!stack->empty()) {
    Object* obj = stack->back();
    stack->pop_back();
    heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
      Visit(slot->load(std::memory_order_relaxed), stack);
    });
  }
}

void Marker::MarkAndTrace(Object* obj) {
  std::vector<Object*> stack;
  Visit(obj, &stack);
  TraceWorklist(&stack);
}

void Marker::MarkFromRoots(SafepointManager* safepoints, WorkerPool* workers,
                           CancellationToken* cancel) {
  bitmap_->ClearAll();
  heap_->regions().ForEachRegion([](Region* r) { r->set_live_bytes(0); });
  marked_objects_ = 0;
  marked_bytes_ = 0;
  cancelled_ = false;

  // Gather root slots (world is stopped; plain snapshot is safe).
  std::vector<std::atomic<Object*>*> roots;
  heap_->roots().ForEach([&](std::atomic<Object*>* slot) { roots.push_back(slot); });
  safepoints->ForEachThread([&](MutatorContext* ctx) {
    for (auto& slot : ctx->local_roots) {
      roots.push_back(&slot);
    }
  });

  if (workers == nullptr || workers->size() == 1) {
    // Stall-only fail point: a delay:<ms> arm sleeps here and returns false.
    (void)ROLP_FAULT_POINT("gc.phase.mark.stall");
    std::vector<Object*> stack;
    uint64_t steps = 0;
    for (auto* slot : roots) {
      Visit(slot->load(std::memory_order_relaxed), &stack);
    }
    while (!stack.empty()) {
      if ((++steps & 63) == 0 && cancel != nullptr && cancel->IsCancelled()) {
        cancelled_ = true;
        return;
      }
      Object* obj = stack.back();
      stack.pop_back();
      heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
        Visit(slot->load(std::memory_order_relaxed), &stack);
      });
    }
    return;
  }

  // Parallel: partition roots round-robin; workers claim objects via the
  // atomic bitmap, so double-visits are impossible. Live-byte counters are
  // atomic adds; marked_objects/bytes are reduced afterwards.
  uint32_t n = workers->size();
  std::vector<uint64_t> objs(n, 0);
  std::vector<uint64_t> bytes(n, 0);
  workers->RunTask([&](uint32_t w) {
    // Stall-only fail point: a delay:<ms> arm sleeps here and returns false.
    (void)ROLP_FAULT_POINT("gc.phase.mark.stall");
    std::vector<Object*> stack;
    uint64_t local_objs = 0;
    uint64_t local_bytes = 0;
    uint64_t steps = 0;
    auto visit = [&](Object* obj) {
      if (obj == nullptr || !bitmap_->Mark(obj)) {
        return;
      }
      AccountingRegion(heap_->regions(), obj)->AddLiveBytes(obj->size_bytes);
      local_objs++;
      local_bytes += obj->size_bytes;
      stack.push_back(obj);
    };
    for (size_t i = w; i < roots.size(); i += n) {
      visit(roots[i]->load(std::memory_order_relaxed));
    }
    while (!stack.empty()) {
      if ((++steps & 63) == 0) {
        workers->Heartbeat(w);
        if (cancel != nullptr && cancel->IsCancelled()) {
          return;  // partial marking; caller discards and falls back
        }
      }
      Object* obj = stack.back();
      stack.pop_back();
      heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
        visit(slot->load(std::memory_order_relaxed));
      });
    }
    objs[w] = local_objs;
    bytes[w] = local_bytes;
  });
  if (cancel != nullptr && cancel->IsCancelled()) {
    cancelled_ = true;
    return;
  }
  for (uint32_t w = 0; w < n; w++) {
    marked_objects_ += objs[w];
    marked_bytes_ += bytes[w];
  }
}

}  // namespace rolp
