#include "src/gc/marking.h"

#include <atomic>
#include <thread>

#include "src/gc/stealable_queue.h"
#include "src/util/fault_injection.h"

namespace rolp {

namespace {

// Live bytes are attributed to the head region for humongous objects.
Region* AccountingRegion(RegionManager& regions, Object* obj) {
  Region* r = regions.RegionFor(obj);
  // Objects never start in a continuation region.
  ROLP_DCHECK(r->kind() != RegionKind::kHumongousCont);
  return r;
}

}  // namespace

void Marker::Visit(Object* obj, std::vector<Object*>* stack) {
  if (obj == nullptr) {
    return;
  }
  if (!bitmap_->Mark(obj)) {
    return;
  }
  AccountingRegion(heap_->regions(), obj)->AddLiveBytes(obj->size_bytes);
  marked_objects_++;
  marked_bytes_ += obj->size_bytes;
  stack->push_back(obj);
}

void Marker::TraceWorklist(std::vector<Object*>* stack) {
  while (!stack->empty()) {
    Object* obj = stack->back();
    stack->pop_back();
    heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
      Visit(slot->load(std::memory_order_relaxed), stack);
    });
  }
}

void Marker::MarkAndTrace(Object* obj) {
  std::vector<Object*> stack;
  Visit(obj, &stack);
  TraceWorklist(&stack);
}

void Marker::MarkFromRoots(SafepointManager* safepoints, WorkerPool* workers,
                           CancellationToken* cancel) {
  bitmap_->ClearAll();
  heap_->regions().ForEachRegion([](Region* r) { r->set_live_bytes(0); });
  marked_objects_ = 0;
  marked_bytes_ = 0;
  cancelled_ = false;

  // Gather root slots (world is stopped; plain snapshot is safe).
  std::vector<std::atomic<Object*>*> roots;
  heap_->roots().ForEach([&](std::atomic<Object*>* slot) { roots.push_back(slot); });
  safepoints->ForEachThread([&](MutatorContext* ctx) {
    for (auto& slot : ctx->local_roots) {
      roots.push_back(&slot);
    }
  });

  if (workers == nullptr || workers->size() == 1) {
    // Stall-only fail point: a delay:<ms> arm sleeps here and returns false.
    (void)ROLP_FAULT_POINT("gc.phase.mark.stall");
    std::vector<Object*> stack;
    uint64_t steps = 0;
    for (auto* slot : roots) {
      Visit(slot->load(std::memory_order_relaxed), &stack);
    }
    while (!stack.empty()) {
      if ((++steps & 63) == 0 && cancel != nullptr && cancel->IsCancelled()) {
        cancelled_ = true;
        return;
      }
      Object* obj = stack.back();
      stack.pop_back();
      heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
        Visit(slot->load(std::memory_order_relaxed), &stack);
      });
    }
    return;
  }

  // Parallel: root slots are claimed in chunks from a shared cursor; each
  // marked object goes onto the claiming worker's Chase-Lev deque, and idle
  // workers steal from the others — a worker that lands on a root pointing at
  // a huge structure no longer serializes the phase. Workers claim objects
  // via the atomic bitmap, so double-visits are impossible even when an item
  // is stolen concurrently with a retry. Termination: the pool's outstanding
  // counter covers both the root chunks (pre-added) and every queued object.
  uint32_t n = workers->size();
  WorkStealingPool<Object*> pool(n);
  const size_t chunk = StealChunkSize();
  const size_t num_units = (roots.size() + chunk - 1) / chunk;
  pool.AddOutstanding(static_cast<int64_t>(num_units));
  std::atomic<size_t> cursor{0};
  std::vector<uint64_t> objs(n, 0);
  std::vector<uint64_t> bytes(n, 0);
  workers->RunTask([&](uint32_t w) {
    // Stall-only fail point: a delay:<ms> arm sleeps here and returns false.
    (void)ROLP_FAULT_POINT("gc.phase.mark.stall");
    uint64_t local_objs = 0;
    uint64_t local_bytes = 0;
    uint64_t steps = 0;
    auto visit = [&](Object* obj) {
      if (obj == nullptr || !bitmap_->Mark(obj)) {
        return;
      }
      AccountingRegion(heap_->regions(), obj)->AddLiveBytes(obj->size_bytes);
      local_objs++;
      local_bytes += obj->size_bytes;
      pool.Push(w, obj);
    };
    for (;;) {
      size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= roots.size()) {
        break;
      }
      workers->Heartbeat(w);
      size_t end = begin + chunk < roots.size() ? begin + chunk : roots.size();
      for (size_t i = begin; i < end; i++) {
        visit(roots[i]->load(std::memory_order_relaxed));
      }
      pool.FinishOne();
    }
    Object* obj = nullptr;
    bool bailed = false;
    while (!bailed) {
      if (pool.TryGet(w, &obj)) {
        heap_->ForEachRefSlot(obj, [&](std::atomic<Object*>* slot) {
          visit(slot->load(std::memory_order_relaxed));
        });
        pool.FinishOne();
        if ((++steps & 63) == 0) {
          workers->Heartbeat(w);
          bailed = cancel != nullptr && cancel->IsCancelled();
        }
        continue;
      }
      if (pool.Done()) {
        break;
      }
      // All queues looked empty but a straggler still holds work: spin
      // politely, keep publishing liveness, and watch for cancellation.
      workers->Heartbeat(w);
      if (cancel != nullptr && cancel->IsCancelled()) {
        break;  // partial marking; caller discards and falls back
      }
      std::this_thread::yield();
    }
    objs[w] = local_objs;
    bytes[w] = local_bytes;
  });
  if (cancel != nullptr && cancel->IsCancelled()) {
    cancelled_ = true;
    return;
  }
  for (uint32_t w = 0; w < n; w++) {
    marked_objects_ += objs[w];
    marked_bytes_ += bytes[w];
  }
}

}  // namespace rolp
