// CMS-like collector: copying young scavenges that promote into a free-list
// old space, a mostly-concurrent old-space mark (initial mark piggybacked on
// a young pause, marking slices driven from the allocation path, an
// incremental-update write barrier feeding a gray queue), a stop-the-world
// remark+sweep pause, and a full mark-compact fallback when promotion fails
// due to fragmentation — the paper's CMS long-tail source.
#ifndef SRC_GC_CMS_COLLECTOR_H_
#define SRC_GC_CMS_COLLECTOR_H_

#include <atomic>
#include <vector>

#include "src/gc/collector.h"
#include "src/gc/free_list_space.h"
#include "src/gc/mark_bitmap.h"

namespace rolp {

class CmsCollector : public Collector {
 public:
  CmsCollector(Heap* heap, const GcConfig& config, SafepointManager* safepoints);

  const char* name() const override { return "cms"; }

  AllocResult AllocateSlow(MutatorContext* ctx, const AllocRequest& req) override;
  Region* RefillTlab(MutatorContext* ctx) override;
  void CollectFull(MutatorContext* ctx) override;

  // Exposed for tests.
  enum class Phase { kIdle, kMarking, kSweepPending };
  Phase phase() const { return phase_.load(std::memory_order_relaxed); }
  FreeListSpace& old_space() { return old_space_; }
  uint64_t full_gcs() const { return full_gcs_.load(std::memory_order_relaxed); }

  // Write-barrier hook (installed via CmsBarrierSet).
  void MarkingBarrier(Object* value) {
    if (phase_.load(std::memory_order_relaxed) == Phase::kMarking && value != nullptr) {
      std::lock_guard<SpinLock> guard(gray_lock_);
      gray_queue_.push_back(value);
    }
  }

 private:
  friend class CmsBarrierSet;

  bool TryCollect(MutatorContext* ctx, bool force_full);
  void DoYoung(MutatorContext* ctx);
  void DoFull(uint64_t t0);
  void PreparePause();

  // Promotion target: free-list old space; grows by claiming regions.
  char* AllocateOld(size_t bytes, size_t* actual);

  // Concurrent cycle pieces.
  void MaybeStartCycleLocked();   // world stopped: initial root scan
  void ConcurrentWork(size_t budget_bytes);  // mutator-driven slices
  void RemarkAndSweep(uint64_t t0);          // world stopped
  void RemapMarkStructures();     // after young evacuation moved objects

  double TenuredOccupancy() const;

  size_t eden_target_;
  std::atomic<size_t> eden_in_use_{0};

  FreeListSpace old_space_;
  MarkBitmap bitmap_;

  std::atomic<Phase> phase_{Phase::kIdle};
  SpinLock gray_lock_;
  std::vector<Object*> gray_queue_;   // write-barrier + root grays
  SpinLock work_lock_;                // serializes concurrent marking slices
  std::vector<Object*> mark_stack_;   // owned by the marking worker
  std::atomic<uint64_t> full_gcs_{0};
};

// Barrier set for CMS: region-coarse remembered sets plus the marking
// (incremental update) barrier.
class CmsBarrierSet : public BarrierSet {
 public:
  CmsBarrierSet(RegionManager* regions, CmsCollector* cms)
      : remset_(regions), cms_(cms) {}

  void StoreBarrier(Object* src, std::atomic<Object*>* slot, Object* value) override {
    remset_.StoreBarrier(src, slot, value);
    cms_->MarkingBarrier(value);
  }
  Object* LoadBarrier(std::atomic<Object*>* slot) override {
    return slot->load(std::memory_order_acquire);
  }
  bool needs_load_barrier() const override { return false; }

 private:
  RemsetBarrierSet remset_;
  CmsCollector* cms_;
};

}  // namespace rolp

#endif  // SRC_GC_CMS_COLLECTOR_H_
