// Sharded multi-VM service front end (DESIGN.md section 15): N independent VM
// shards behind one open-loop generator. Keys route to shards by consistent
// hashing, each shard runs its own admission/queue/workers/SLO sub-window,
// and the per-shard reporters merge into one verdict at the end — the
// multi-socket deployment shape ROLP targets, scaled down to one process.
#ifndef SRC_SERVICE_SHARDED_H_
#define SRC_SERVICE_SHARDED_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/service/open_loop.h"

namespace rolp {

// Consistent-hash ring: `vnodes` points per shard on a 64-bit ring, lookups
// by binary search. Stable under shard-count changes in the usual
// consistent-hashing sense (only ~1/N of keys move), which is what a real
// front end needs for shard scale-out; here it also guarantees every key maps
// to exactly one shard — the routing-conservation property the tests check.
class ConsistentHashRouter {
 public:
  explicit ConsistentHashRouter(int shards, int vnodes = 64);

  int ShardFor(uint64_t key) const;
  int shards() const { return shards_; }

 private:
  int shards_;
  std::vector<std::pair<uint64_t, int>> ring_;  // (point, shard), sorted
};

struct ShardedServiceOptions {
  int shards = 1;  // ROLP_SHARDS
  // Per-run knobs; `workers` is per shard, and the calibrated rate scales by
  // the shard count (each shard contributes capacity).
  ServiceOptions service;
  int vnodes = 64;
  // After the last arrival drains, run one full collection per shard and
  // watch process RSS settle for up to 2 x ROLP_HEAP_UNCOMMIT_MS (0 skips the
  // watch). The observed drop lands in the verdict JSON.
  int64_t uncommit_ms = 0;

  // service from ServiceOptions::FromEnv, shards from ROLP_SHARDS, uncommit
  // watch from ROLP_HEAP_UNCOMMIT_MS.
  static ShardedServiceOptions FromEnv();
};

struct ShardedServiceResult {
  struct ShardStats {
    uint64_t routed = 0;  // fresh arrivals routed to this shard
    uint64_t completed_ok = 0;
    uint64_t deadline_miss = 0;
    uint64_t rejected = 0;
    uint64_t shed = 0;
    uint64_t retries = 0;
    // Per-shard sub-window verdict (same shape as the merged one).
    bool slo_pass = false;
    std::string verdict_json;
  };

  std::vector<ShardStats> shards;
  uint64_t offered = 0;  // fresh arrivals generated (== sum of routed)
  double offered_rps = 0.0;
  double calibrated_rps = 0.0;  // per-shard capacity probe (0 = rate given)
  bool survived = true;
  bool slo_pass = false;          // merged verdict
  std::string verdict_json;       // merged SLO_VERDICT payload
  SloReporter::Snapshot slo;      // merged windows/segments/counts

  // RSS settle watch (0 when the watch was skipped).
  uint64_t rss_load_bytes = 0;     // at load stop
  uint64_t rss_settled_bytes = 0;  // minimum observed within the watch window
};

// Runs `factory(shard)`-built workloads across `options.shards` VM shards
// under one open-loop arrival schedule. Prints nothing.
ShardedServiceResult RunShardedService(
    const VmConfig& vm_config,
    const std::function<std::unique_ptr<Workload>(int shard)>& factory,
    const ShardedServiceOptions& options);

void PrintShardedReport(std::FILE* out, const ShardedServiceResult& result);

}  // namespace rolp

#endif  // SRC_SERVICE_SHARDED_H_
