// Admission control and retry policy for the open-loop service harness.
//
// Admission is deadline-aware: a request whose deadline is already unmeetable
// given the current queue depth and the observed per-request service time is
// rejected at enqueue, before it wastes queue space and worker time. Fast
// rejection bounds the lateness of the requests that *are* admitted — the
// alternative (accept everything) turns every overload into a tail-latency
// collapse for all traffic.
//
// Retries are budgeted per request class with a token bucket (at most
// `ratio` retries per admitted request, bounded burst) and backed off with
// jittered exponential delays, so retry traffic can never amplify an
// overload into a storm.
#ifndef SRC_SERVICE_ADMISSION_H_
#define SRC_SERVICE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "src/util/spinlock.h"

namespace rolp {

struct AdmissionConfig {
  size_t queue_capacity = 512;    // ROLP_SVC_QUEUE_CAP
  uint64_t deadline_ms = 200;     // ROLP_SLO_DEADLINE_MS (per attempt)
  double init_service_us = 200.0; // EWMA seed before any observation
  static AdmissionConfig FromEnv();
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  // Enqueue-time decision: with `queue_depth` requests already waiting and
  // the EWMA service time, the newcomer starts executing no earlier than
  // now + depth * ewma; reject when even that start time is past the
  // deadline. Counts the decision.
  bool Admit(size_t queue_depth, uint64_t now_ns, uint64_t deadline_ns);

  // Feeds one completed execution time into the EWMA (alpha = 1/8).
  void ObserveService(uint64_t service_ns);

  uint64_t admitted() const { return admitted_.load(std::memory_order_relaxed); }
  uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }
  uint64_t ewma_service_ns() const {
    return ewma_service_ns_.load(std::memory_order_relaxed);
  }

 private:
  AdmissionConfig config_;
  std::atomic<uint64_t> ewma_service_ns_;
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
};

struct RetryPolicy {
  uint32_t max_attempts = 3;      // ROLP_SVC_RETRY_MAX (1 = no retries)
  uint64_t base_backoff_ms = 10;  // ROLP_SVC_RETRY_BASE_MS
  uint64_t max_backoff_ms = 200;  // ROLP_SVC_RETRY_MAX_MS
  double jitter = 0.5;            // fraction of the backoff that is random
  static RetryPolicy FromEnv();

  // Backoff before attempt (attempt+1), given `attempt` completed tries
  // (1-based): base * 2^(attempt-1), capped, with full-jitter on `jitter` of
  // it. Deterministic per *rng_state (SplitMix64 stream).
  uint64_t BackoffNs(uint32_t attempt, uint64_t* rng_state) const;
};

// Token-bucket retry budget: OnRequest deposits `ratio` tokens (capped at
// `burst`), TryAcquire withdraws one per granted retry. One instance per
// request class keeps one class's failure storm from consuming another's
// budget.
class RetryBudget {
 public:
  RetryBudget(double ratio, double burst) : ratio_(ratio), burst_(burst) {}

  void OnRequest();
  bool TryAcquire();

  uint64_t granted() const { return granted_.load(std::memory_order_relaxed); }
  uint64_t denied() const { return denied_.load(std::memory_order_relaxed); }

 private:
  SpinLock mu_;
  double tokens_ = 0.0;
  double ratio_;
  double burst_;
  std::atomic<uint64_t> granted_{0};
  std::atomic<uint64_t> denied_{0};
};

}  // namespace rolp

#endif  // SRC_SERVICE_ADMISSION_H_
