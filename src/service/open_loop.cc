#include "src/service/open_loop.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <deque>
#include <queue>
#include <thread>
#include <vector>

#include "src/util/clock.h"
#include "src/util/env.h"
#include "src/util/fault_injection.h"
#include "src/util/metrics_registry.h"
#include "src/util/random.h"
#include "src/util/trace.h"

namespace rolp {

namespace {

struct Request {
  uint64_t id = 0;
  uint64_t scheduled_ns = 0;  // planned arrival; never moves across retries
  uint64_t ready_ns = 0;      // when this attempt becomes issueable
  uint64_t enqueue_ns = 0;
  uint64_t deadline_ns = 0;   // per-attempt deadline
  uint64_t op_index = 0;
  uint32_t attempt = 1;
  uint8_t klass = 0;
};

struct RetryLater {
  bool operator()(const Request& a, const Request& b) const {
    return a.ready_ns > b.ready_ns;
  }
};

// Everything the generator, workers, and drain share.
struct ServiceState {
  SpinLock queue_lock;
  std::deque<Request> queue;
  std::atomic<size_t> depth{0};

  SpinLock retry_lock;
  std::priority_queue<Request, std::vector<Request>, RetryLater> retries;

  std::atomic<bool> stop{false};

  std::atomic<uint64_t> offered{0};
  std::atomic<uint64_t> shed_queue_full{0};
  std::atomic<uint64_t> shed_deadline{0};
  std::atomic<uint64_t> shed_governor{0};
  std::atomic<uint64_t> completed_ok{0};
  std::atomic<uint64_t> deadline_miss{0};
  std::atomic<uint64_t> retries_granted{0};
  std::atomic<uint64_t> retry_denied{0};
};

// Closed-loop capacity probe: `workers` threads spin Op back-to-back for
// calibrate_s; the measured rate is what this VM+workload can actually do, so
// overload_factor x capacity is over-capacity by construction.
double CalibrateClosedLoop(VM& vm, Workload& workload, const ServiceOptions& options) {
  std::atomic<uint64_t> ops{0};
  uint64_t start = NowNs();
  uint64_t end = start + static_cast<uint64_t>(options.calibrate_s * 1e9);
  std::vector<std::thread> threads;
  threads.reserve(options.workers);
  for (int i = 0; i < options.workers; i++) {
    threads.emplace_back([&, i] {
      RuntimeThread* t = vm.AttachThread();
      // High op_index base so calibration keys never collide with the ids the
      // open-loop phase hands out.
      uint64_t op = (0x100ULL + static_cast<uint64_t>(i)) << 40;
      while (NowNs() < end) {
        workload.Op(*t, op++);
        ops.fetch_add(1, std::memory_order_relaxed);
        t->Poll();
      }
      vm.DetachThread(t);
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  double elapsed_s = static_cast<double>(NowNs() - start) / 1e9;
  return elapsed_s > 0 ? static_cast<double>(ops.load()) / elapsed_s : 0.0;
}

}  // namespace

ServiceOptions ServiceOptions::FromEnv() {
  ServiceOptions o;
  o.workers = static_cast<int>(EnvInt64("ROLP_SERVICE_WORKERS", o.workers));
  o.rate_rps = EnvDouble("ROLP_SERVICE_RATE", o.rate_rps);
  o.overload_factor = EnvDouble("ROLP_SERVICE_OVERLOAD_FACTOR", o.overload_factor);
  o.calibrate_s = EnvDouble("ROLP_SERVICE_CALIBRATE_S", o.calibrate_s);
  o.poisson_arrivals = EnvBool("ROLP_SERVICE_POISSON", o.poisson_arrivals);
  o.write_fraction = EnvDouble("ROLP_SERVICE_WRITE_FRACTION", o.write_fraction);
  o.drain_grace_s = EnvDouble("ROLP_SERVICE_DRAIN_S", o.drain_grace_s);
  o.seed = static_cast<uint64_t>(EnvInt64("ROLP_SERVICE_SEED", 0x5eed));
  o.retry_ratio = EnvDouble("ROLP_SVC_RETRY_RATIO", o.retry_ratio);
  o.admission = AdmissionConfig::FromEnv();
  o.retry = RetryPolicy::FromEnv();
  o.slo = SloThresholds::FromEnv();
  o.pacing = PacerOptions::FromEnv();
  return o;
}

ServiceResult RunService(const VmConfig& vm_config, Workload& workload,
                         const ServiceOptions& options) {
  VmConfig cfg = vm_config;
  if (options.use_workload_filter && cfg.gc == GcKind::kRolp) {
    workload.ConfigureFilter(&cfg.filter);
  }
  VM vm(cfg);
  {
    ROLP_TRACE_SCOPE("workload", "workload.setup");
    RuntimeThread* setup_thread = vm.AttachThread();
    workload.Setup(vm, *setup_thread);
    vm.DetachThread(setup_thread);
  }

  ServiceResult result;
  result.run.workload = workload.name();
  result.run.collector = GcKindName(cfg.gc);

  double rate = options.rate_rps;
  if (rate <= 0.0) {
    result.calibrated_rps = CalibrateClosedLoop(vm, workload, options);
    rate = std::max(1.0, result.calibrated_rps * options.overload_factor);
  }
  result.offered_rps = rate;

  ServiceState st;
  AdmissionController admission(options.admission);
  // deque: RetryBudget holds a lock and atomics, so it is not movable.
  std::deque<RetryBudget> budgets;
  for (int i = 0; i < kNumRequestClasses; i++) {
    // Burst: let the budget bank up to ~1 s of retry allowance.
    budgets.emplace_back(options.retry_ratio,
                         std::max(8.0, options.retry_ratio * rate));
  }

  ScopedTrace run_scope("workload", "workload.run");
  uint64_t start_ns = NowNs();
  uint64_t warmup_end_ns = start_ns + static_cast<uint64_t>(options.warmup_s * 1e9);
  uint64_t gen_end_ns = start_ns + static_cast<uint64_t>(options.duration_s * 1e9);
  SloReporter reporter(start_ns);

  // Shed/throttle/degrade activity is visible live through the registry, so
  // periodic ROLP_METRICS_DUMP snapshots (and the chaos engine) can watch the
  // overload unfold.
  ScopedMetrics sm;
  sm.Gauge("service.offered",
           [&st] { return static_cast<double>(st.offered.load(std::memory_order_relaxed)); });
  sm.Gauge("service.queue_depth",
           [&st] { return static_cast<double>(st.depth.load(std::memory_order_relaxed)); });
  sm.Gauge("service.shed_queue_full", [&st] {
    return static_cast<double>(st.shed_queue_full.load(std::memory_order_relaxed));
  });
  sm.Gauge("service.shed_deadline", [&st] {
    return static_cast<double>(st.shed_deadline.load(std::memory_order_relaxed));
  });
  sm.Gauge("service.shed_governor", [&st] {
    return static_cast<double>(st.shed_governor.load(std::memory_order_relaxed));
  });
  sm.Gauge("service.completed_ok", [&st] {
    return static_cast<double>(st.completed_ok.load(std::memory_order_relaxed));
  });
  sm.Gauge("service.deadline_miss", [&st] {
    return static_cast<double>(st.deadline_miss.load(std::memory_order_relaxed));
  });
  sm.Gauge("service.retries", [&st] {
    return static_cast<double>(st.retries_granted.load(std::memory_order_relaxed));
  });
  sm.Gauge("service.admitted",
           [&admission] { return static_cast<double>(admission.admitted()); });
  sm.Gauge("service.rejected",
           [&admission] { return static_cast<double>(admission.rejected()); });
  sm.Gauge("service.ewma_service_ns",
           [&admission] { return static_cast<double>(admission.ewma_service_ns()); });

  uint64_t deadline_budget_ns = options.admission.deadline_ms * 1000 * 1000;

  auto worker_body = [&](int worker_index) {
    RuntimeThread* t = vm.AttachThread();
    uint64_t rng_state = options.seed ^ (0xd1b54a32d192ed03ULL * (worker_index + 1));
    while (!st.stop.load(std::memory_order_relaxed)) {
      Request req;
      bool got = false;
      LockAtSafepoint(st.queue_lock, *t);
      if (!st.queue.empty()) {
        req = st.queue.front();
        st.queue.pop_front();
        st.depth.fetch_sub(1, std::memory_order_relaxed);
        got = true;
      }
      st.queue_lock.unlock();
      if (!got) {
        // Idle wait in a safe region: a pause never waits on a sleeping
        // worker, and the worker re-polls on wake.
        SafepointManager::ScopedSafeRegion safe(&vm.safepoints(), &t->gc_context());
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      uint64_t dq = NowNs();
      if (dq > req.deadline_ns) {
        // Expired in the queue: drop without executing. The retry budget
        // decides whether the client's backoff retry is worth scheduling.
        bool retry = req.attempt < options.retry.max_attempts &&
                     budgets[req.klass].TryAcquire();
        if (retry) {
          Request again = req;
          again.attempt++;
          again.ready_ns = dq + options.retry.BackoffNs(req.attempt, &rng_state);
          again.deadline_ns = again.ready_ns + deadline_budget_ns;
          {
            std::lock_guard<SpinLock> guard(st.retry_lock);
            st.retries.push(again);
          }
          st.retries_granted.fetch_add(1, std::memory_order_relaxed);
          reporter.CountRetry();
          ROLP_TRACE_INSTANT("service", "service.retry", req.id);
        } else {
          st.retry_denied.fetch_add(1, std::memory_order_relaxed);
          st.shed_deadline.fetch_add(1, std::memory_order_relaxed);
          RequestTimeline tl;
          tl.id = req.id;
          tl.scheduled_ns = req.scheduled_ns;
          tl.enqueue_ns = req.enqueue_ns;
          tl.dequeue_ns = dq;
          tl.respond_ns = dq;
          tl.attempts = req.attempt;
          reporter.Record(tl, RequestOutcome::kShed);
          ROLP_TRACE_INSTANT("service", "service.shed", req.id);
        }
        continue;
      }
      workload.Op(*t, req.op_index);
      uint64_t ex = NowNs();
      uint64_t resp = NowNs();
      admission.ObserveService(ex - dq);
      RequestTimeline tl;
      tl.id = req.id;
      tl.scheduled_ns = req.scheduled_ns;
      tl.enqueue_ns = req.enqueue_ns;
      tl.dequeue_ns = dq;
      tl.execute_ns = ex;
      tl.respond_ns = resp;
      tl.attempts = req.attempt;
      if (resp > req.deadline_ns) {
        st.deadline_miss.fetch_add(1, std::memory_order_relaxed);
        reporter.Record(tl, RequestOutcome::kDeadlineMiss);
      } else {
        st.completed_ok.fetch_add(1, std::memory_order_relaxed);
        reporter.Record(tl, RequestOutcome::kOk);
      }
      t->Poll();
    }
    vm.DetachThread(t);
  };

  auto generator_body = [&] {
    // Unattached on purpose: the generator must never be parked by a
    // safepoint, or the arrival schedule would coordinate with GC pauses —
    // the exact omission this harness exists to avoid.
    uint64_t rng = options.seed ^ 0x9e3779b97f4a7c15ULL;
    double mean_gap_ns = 1e9 / rate;
    uint64_t next_arrival = start_ns;
    uint64_t next_id = 0;
    Pacer pacer(options.pacing);
    while (true) {
      uint64_t evt = next_arrival;
      bool is_retry = false;
      {
        std::lock_guard<SpinLock> guard(st.retry_lock);
        if (!st.retries.empty() && st.retries.top().ready_ns < evt) {
          evt = st.retries.top().ready_ns;
          is_retry = true;
        }
      }
      if (evt >= gen_end_ns) {
        break;
      }
      uint64_t now = NowNs();
      if (evt > now) {
        // Absolute-deadline pacing (see pacer.h for the drift analysis of
        // the relative sleep this replaces). The wake target stays capped at
        // 1 ms out so a retry landing in the queue cannot be starved behind
        // a long inter-arrival gap; the cap wake is a coarse re-check
        // (precise=false — no spin), only the real arrival edge pays the
        // spin finish.
        uint64_t wake = std::min<uint64_t>(evt, now + 1000 * 1000);
        pacer.WaitUntil(wake, /*precise=*/wake == evt);
        continue;
      }
      Request req;
      if (is_retry) {
        std::lock_guard<SpinLock> guard(st.retry_lock);
        if (st.retries.empty()) {
          continue;  // raced with nothing in practice; be defensive
        }
        req = st.retries.top();
        st.retries.pop();
      } else {
        req.id = next_id++;
        req.scheduled_ns = next_arrival;
        req.ready_ns = next_arrival;
        req.deadline_ns = next_arrival + deadline_budget_ns;
        req.op_index = req.id;
        req.attempt = 1;
        double u = static_cast<double>(SplitMix64(&rng) >> 11) * 0x1.0p-53;
        req.klass = u < options.write_fraction
                        ? static_cast<uint8_t>(RequestClass::kWrite)
                        : static_cast<uint8_t>(RequestClass::kRead);
        st.offered.fetch_add(1, std::memory_order_relaxed);
        budgets[req.klass].OnRequest();
        // Advance the schedule: fixed in advance, never a function of
        // completions. Falling behind real time only means issuing late with
        // the planned scheduled_ns — i.e. the lateness is charged.
        double u2 = static_cast<double>(SplitMix64(&rng) >> 11) * 0x1.0p-53;
        double gap = options.poisson_arrivals
                         ? -std::log(1.0 - u2) * mean_gap_ns
                         : mean_gap_ns;
        if (ROLP_FAULT_POINT("service.arrival.burst")) {
          gap = 0.0;  // injected burst: the next arrival lands immediately
        }
        next_arrival += std::max<uint64_t>(static_cast<uint64_t>(gap), 1);
      }
      now = NowNs();
      size_t depth = st.depth.load(std::memory_order_relaxed);
      bool queue_full = depth >= options.admission.queue_capacity ||
                        ROLP_FAULT_POINT("service.queue.full");
      bool governor_shed = vm.heap().governor().level() >= PressureLevel::kShed;
      if (queue_full || governor_shed) {
        // Terminal shed at the front door; charged from the planned arrival.
        (queue_full ? st.shed_queue_full : st.shed_governor)
            .fetch_add(1, std::memory_order_relaxed);
        RequestTimeline tl;
        tl.id = req.id;
        tl.scheduled_ns = req.scheduled_ns;
        tl.enqueue_ns = now;
        tl.respond_ns = now;
        tl.attempts = req.attempt;
        reporter.Record(tl, RequestOutcome::kShed);
        ROLP_TRACE_INSTANT("service", "service.shed", req.id);
      } else if (ROLP_FAULT_POINT("service.admit.reject") ||
                 !admission.Admit(depth, now, req.deadline_ns)) {
        RequestTimeline tl;
        tl.id = req.id;
        tl.scheduled_ns = req.scheduled_ns;
        tl.enqueue_ns = now;
        tl.respond_ns = now;
        tl.attempts = req.attempt;
        reporter.Record(tl, RequestOutcome::kRejected);
        ROLP_TRACE_INSTANT("service", "service.reject", req.id);
      } else {
        req.enqueue_ns = now;
        std::lock_guard<SpinLock> guard(st.queue_lock);
        st.queue.push_back(req);
        st.depth.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(options.workers);
  for (int i = 0; i < options.workers; i++) {
    workers.emplace_back(worker_body, i);
  }
  std::thread generator(generator_body);
  generator.join();

  // Drain grace: let workers finish what is queued, then stop them and record
  // whatever is left as shed (those requests still get their lateness).
  uint64_t drain_end = NowNs() + static_cast<uint64_t>(options.drain_grace_s * 1e9);
  while (st.depth.load(std::memory_order_relaxed) > 0 && NowNs() < drain_end) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  st.stop.store(true, std::memory_order_relaxed);
  for (auto& th : workers) {
    th.join();
  }
  uint64_t end_ns = NowNs();
  {
    std::lock_guard<SpinLock> guard(st.queue_lock);
    for (const Request& req : st.queue) {
      RequestTimeline tl;
      tl.id = req.id;
      tl.scheduled_ns = req.scheduled_ns;
      tl.enqueue_ns = req.enqueue_ns;
      tl.respond_ns = end_ns;
      tl.attempts = req.attempt;
      reporter.Record(tl, RequestOutcome::kShed);
      result.shed_drain++;
    }
    st.queue.clear();
    st.depth.store(0, std::memory_order_relaxed);
  }
  {
    std::lock_guard<SpinLock> guard(st.retry_lock);
    while (!st.retries.empty()) {
      const Request& req = st.retries.top();
      RequestTimeline tl;
      tl.id = req.id;
      tl.scheduled_ns = req.scheduled_ns;
      tl.respond_ns = end_ns;
      tl.attempts = req.attempt;
      reporter.Record(tl, RequestOutcome::kShed);
      result.shed_drain++;
      st.retries.pop();
    }
  }

  result.offered = st.offered.load();
  result.admitted = admission.admitted();
  result.rejected = admission.rejected();
  result.shed_queue_full = st.shed_queue_full.load() + st.shed_governor.load();
  result.shed_deadline = st.shed_deadline.load();
  result.completed_ok = st.completed_ok.load();
  result.deadline_miss = st.deadline_miss.load();
  result.retries = st.retries_granted.load();
  result.retry_denied = st.retry_denied.load();

  HeapGovernor& governor = vm.heap().governor();
  result.governor_max_level = static_cast<uint64_t>(governor.max_level());
  result.governor_transitions = governor.transitions();
  result.governor_gc_requests = governor.gc_requests();
  result.throttle_stalls = governor.throttle_stalls();

  // Reaching this line is the zero-abort proof: an aborting VM never returns.
  result.survived = true;
  SloReporter::Verdict verdict =
      reporter.Evaluate(result.run.collector, options.slo, result.survived, end_ns);
  result.slo_pass = verdict.pass;
  result.verdict_json = verdict.json;
  result.slo = reporter.Collect(end_ns);

  result.run.run_start_ns = start_ns;
  result.run.ops = result.completed_ok + result.deadline_miss;
  result.run.measured_s = static_cast<double>(end_ns - start_ns) / 1e9;
  if (result.run.measured_s > 0) {
    result.run.throughput =
        static_cast<double>(result.run.ops) / result.run.measured_s;
  }
  CollectVmStats(vm, warmup_end_ns, &result.run);

  workload.Teardown();
  return result;
}

void PrintServiceReport(std::FILE* out, const ServiceResult& r) {
  const SloReporter::Snapshot& s = r.slo;
  std::fprintf(out,
               "service [%s/%s] offered=%" PRIu64 " (%.0f rps%s) admitted=%" PRIu64
               " rejected=%" PRIu64 " shed=%" PRIu64 " drained=%" PRIu64 "\n",
               r.run.workload.c_str(), r.run.collector.c_str(), r.offered, r.offered_rps,
               r.calibrated_rps > 0 ? " calibrated" : "", r.admitted, r.rejected,
               r.shed_queue_full + r.shed_deadline, r.shed_drain);
  std::fprintf(out,
               "  completed_ok=%" PRIu64 " deadline_miss=%" PRIu64 " retries=%" PRIu64
               " retry_denied=%" PRIu64 " throughput=%.0f ops/s\n",
               r.completed_ok, r.deadline_miss, r.retries, r.retry_denied,
               r.run.throughput);
  std::fprintf(out,
               "  governor: max_level=%s transitions=%" PRIu64 " gc_requests=%" PRIu64
               " throttle_stalls=%" PRIu64 "\n",
               PressureLevelName(static_cast<PressureLevel>(r.governor_max_level)),
               r.governor_transitions, r.governor_gc_requests, r.throttle_stalls);
  std::fprintf(out,
               "  gc: cycles=%" PRIu64 " pauses=%" PRIu64 " total_pause=%.1fms "
               "max_pause=%.2fms p99_pause=%.2fms recoverable_ooms=%" PRIu64 "%s\n",
               r.run.gc_cycles, r.run.pause_count_alltime, r.run.TotalPauseMs(),
               r.run.MaxPauseMs(), r.run.PausePercentileMs(99.0), r.run.recoverable_ooms,
               r.run.pause_log_truncated ? " (ring truncated; all-time aggregates)" : "");
  std::fprintf(out,
               "  profiler: degraded_entries=%" PRIu64 " degraded_at_end=%d "
               "decisions=%" PRIu64 "\n",
               r.run.profiler_degraded_entries, r.run.profiler_degraded_at_end ? 1 : 0,
               r.run.decisions_at_end);
  auto print_window = [out](const char* label, const SloReporter::WindowStats& w) {
    std::fprintf(out,
                 "  lateness %-8s p50=%.2fms p95=%.2fms p99=%.2fms p99.9=%.2fms "
                 "max=%.2fms (n=%" PRIu64 ")\n",
                 label, w.p50_ms, w.p95_ms, w.p99_ms, w.p999_ms, w.max_ms, w.count);
  };
  print_window("1min", s.win_1min);
  print_window("15min", s.win_15min);
  print_window("alltime", s.alltime);
  auto print_segment = [out](const char* label, const SloReporter::SegmentStats& g) {
    std::fprintf(out,
                 "  segment %-14s mean=%.3fms p99=%.2fms max=%.2fms (n=%" PRIu64 ")\n",
                 label, g.mean_ms, g.p99_ms, g.max_ms, g.count);
  };
  print_segment("sched->enqueue", s.seg_sched_to_enqueue);
  print_segment("queue-wait", s.seg_queue_wait);
  print_segment("execute", s.seg_execute);
  print_segment("respond", s.seg_respond);
}

}  // namespace rolp
