#include "src/service/admission.h"

#include <algorithm>

#include "src/util/env.h"
#include "src/util/random.h"

namespace rolp {

AdmissionConfig AdmissionConfig::FromEnv() {
  AdmissionConfig c;
  c.queue_capacity =
      static_cast<size_t>(EnvInt64("ROLP_SVC_QUEUE_CAP", static_cast<int64_t>(c.queue_capacity)));
  if (c.queue_capacity == 0) {
    c.queue_capacity = 1;
  }
  c.deadline_ms = static_cast<uint64_t>(
      EnvInt64("ROLP_SLO_DEADLINE_MS", static_cast<int64_t>(c.deadline_ms)));
  c.init_service_us = EnvDouble("ROLP_SVC_INIT_SERVICE_US", c.init_service_us);
  return c;
}

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config),
      ewma_service_ns_(static_cast<uint64_t>(config.init_service_us * 1000.0)) {}

bool AdmissionController::Admit(size_t queue_depth, uint64_t now_ns, uint64_t deadline_ns) {
  uint64_t ewma = ewma_service_ns_.load(std::memory_order_relaxed);
  uint64_t earliest_start = now_ns + static_cast<uint64_t>(queue_depth) * ewma;
  if (earliest_start > deadline_ns) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void AdmissionController::ObserveService(uint64_t service_ns) {
  // EWMA with alpha = 1/8; a lossy race between readers-modify-writers only
  // drops one sample, which the next observation repairs.
  uint64_t cur = ewma_service_ns_.load(std::memory_order_relaxed);
  uint64_t next = cur - cur / 8 + service_ns / 8;
  if (next == 0) {
    next = 1;
  }
  ewma_service_ns_.store(next, std::memory_order_relaxed);
}

RetryPolicy RetryPolicy::FromEnv() {
  RetryPolicy p;
  p.max_attempts = static_cast<uint32_t>(
      EnvInt64("ROLP_SVC_RETRY_MAX", static_cast<int64_t>(p.max_attempts)));
  if (p.max_attempts == 0) {
    p.max_attempts = 1;
  }
  p.base_backoff_ms = static_cast<uint64_t>(
      EnvInt64("ROLP_SVC_RETRY_BASE_MS", static_cast<int64_t>(p.base_backoff_ms)));
  p.max_backoff_ms = static_cast<uint64_t>(
      EnvInt64("ROLP_SVC_RETRY_MAX_MS", static_cast<int64_t>(p.max_backoff_ms)));
  p.jitter = EnvDouble("ROLP_SVC_RETRY_JITTER", p.jitter);
  return p;
}

uint64_t RetryPolicy::BackoffNs(uint32_t attempt, uint64_t* rng_state) const {
  if (attempt == 0) {
    attempt = 1;
  }
  uint32_t shift = std::min(attempt - 1, 20u);
  uint64_t backoff_ms = std::min(base_backoff_ms << shift, max_backoff_ms);
  uint64_t backoff_ns = backoff_ms * 1000 * 1000;
  double j = std::clamp(jitter, 0.0, 1.0);
  // Full jitter over the jittered fraction: fixed part + U[0,1) * rest.
  double u = static_cast<double>(SplitMix64(rng_state) >> 11) * 0x1.0p-53;
  return static_cast<uint64_t>(static_cast<double>(backoff_ns) * (1.0 - j) +
                               static_cast<double>(backoff_ns) * j * u);
}

void RetryBudget::OnRequest() {
  std::lock_guard<SpinLock> guard(mu_);
  tokens_ = std::min(tokens_ + ratio_, burst_);
}

bool RetryBudget::TryAcquire() {
  std::lock_guard<SpinLock> guard(mu_);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    granted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  denied_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

}  // namespace rolp
