#include "src/service/sharded.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <deque>
#include <queue>
#include <thread>

#include "src/util/clock.h"
#include "src/util/env.h"
#include "src/util/fault_injection.h"
#include "src/util/metrics_registry.h"
#include "src/util/proc_stats.h"
#include "src/util/random.h"
#include "src/util/trace.h"

namespace rolp {

ConsistentHashRouter::ConsistentHashRouter(int shards, int vnodes) : shards_(shards) {
  ring_.reserve(static_cast<size_t>(shards) * vnodes);
  for (int s = 0; s < shards; s++) {
    uint64_t seed = 0x9e3779b97f4a7c15ULL ^ (static_cast<uint64_t>(s) << 32);
    for (int v = 0; v < vnodes; v++) {
      ring_.emplace_back(SplitMix64(&seed), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int ConsistentHashRouter::ShardFor(uint64_t key) const {
  uint64_t point = Mix64(key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(point, -1));
  if (it == ring_.end()) {
    it = ring_.begin();  // wrap around the ring
  }
  return it->second;
}

ShardedServiceOptions ShardedServiceOptions::FromEnv() {
  ShardedServiceOptions o;
  int64_t shards = EnvInt64("ROLP_SHARDS", 1);
  o.shards = shards > 0 ? static_cast<int>(shards) : 1;
  o.service = ServiceOptions::FromEnv();
  o.uncommit_ms = EnvInt64("ROLP_HEAP_UNCOMMIT_MS", 0);
  return o;
}

namespace {

struct ShardRequest {
  uint64_t id = 0;
  uint64_t scheduled_ns = 0;
  uint64_t ready_ns = 0;
  uint64_t enqueue_ns = 0;
  uint64_t deadline_ns = 0;
  uint64_t op_index = 0;
  uint32_t attempt = 1;
  uint8_t klass = 0;
  uint8_t shard = 0;  // pinned at routing time; retries stay on their shard
};

struct RetryLater {
  bool operator()(const ShardRequest& a, const ShardRequest& b) const {
    return a.ready_ns > b.ready_ns;
  }
};

// One shard: its VM, workload instance, queue, admission, retry budgets, SLO
// sub-window, and worker threads. Everything per-shard so shards contend on
// nothing but the CPU.
struct Shard {
  std::unique_ptr<Workload> workload;
  std::unique_ptr<VM> vm;
  std::unique_ptr<AdmissionController> admission;
  std::unique_ptr<SloReporter> reporter;
  std::deque<RetryBudget> budgets;

  SpinLock queue_lock;
  std::deque<ShardRequest> queue;
  std::atomic<size_t> depth{0};

  SpinLock retry_lock;
  std::priority_queue<ShardRequest, std::vector<ShardRequest>, RetryLater> retries;

  std::atomic<uint64_t> routed{0};
  std::atomic<uint64_t> shed_queue_full{0};
  std::atomic<uint64_t> shed_governor{0};
  std::atomic<uint64_t> shed_deadline{0};
  std::atomic<uint64_t> completed_ok{0};
  std::atomic<uint64_t> deadline_miss{0};
  std::atomic<uint64_t> retries_granted{0};
  std::atomic<uint64_t> retry_denied{0};

  std::vector<std::thread> workers;
};

}  // namespace

ShardedServiceResult RunShardedService(
    const VmConfig& vm_config,
    const std::function<std::unique_ptr<Workload>(int shard)>& factory,
    const ShardedServiceOptions& options) {
  const int nshards = std::max(1, options.shards);
  const ServiceOptions& sopt = options.service;
  ShardedServiceResult result;
  result.shards.resize(nshards);

  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(nshards);
  for (int s = 0; s < nshards; s++) {
    auto sh = std::make_unique<Shard>();
    sh->workload = factory(s);
    VmConfig cfg = vm_config;
    cfg.metrics_prefix = "shard" + std::to_string(s) + ".";
    cfg.seed = vm_config.seed + static_cast<uint64_t>(s);
    if (sopt.use_workload_filter && cfg.gc == GcKind::kRolp) {
      sh->workload->ConfigureFilter(&cfg.filter);
    }
    sh->vm = std::make_unique<VM>(cfg);
    {
      ROLP_TRACE_SCOPE("workload", "workload.setup");
      RuntimeThread* t = sh->vm->AttachThread();
      sh->workload->Setup(*sh->vm, *t);
      sh->vm->DetachThread(t);
    }
    sh->admission = std::make_unique<AdmissionController>(sopt.admission);
    shards.push_back(std::move(sh));
  }

  // Calibrate against shard 0 and scale by the shard count: N shards offer N
  // times one shard's capacity, and the router spreads keys near-uniformly.
  double rate = sopt.rate_rps;
  if (rate <= 0.0) {
    std::atomic<uint64_t> ops{0};
    uint64_t cal_start = NowNs();
    uint64_t cal_end = cal_start + static_cast<uint64_t>(sopt.calibrate_s * 1e9);
    std::vector<std::thread> threads;
    for (int i = 0; i < sopt.workers; i++) {
      threads.emplace_back([&, i] {
        RuntimeThread* t = shards[0]->vm->AttachThread();
        uint64_t op = (0x100ULL + static_cast<uint64_t>(i)) << 40;
        while (NowNs() < cal_end) {
          shards[0]->workload->Op(*t, op++);
          ops.fetch_add(1, std::memory_order_relaxed);
          t->Poll();
        }
        shards[0]->vm->DetachThread(t);
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    double elapsed_s = static_cast<double>(NowNs() - cal_start) / 1e9;
    result.calibrated_rps = elapsed_s > 0 ? static_cast<double>(ops.load()) / elapsed_s : 0.0;
    rate = std::max(1.0, result.calibrated_rps * sopt.overload_factor * nshards);
  }
  result.offered_rps = rate;

  ConsistentHashRouter router(nshards, options.vnodes);
  ScopedTrace run_scope("workload", "workload.run");
  uint64_t start_ns = NowNs();
  uint64_t gen_end_ns = start_ns + static_cast<uint64_t>(sopt.duration_s * 1e9);
  uint64_t deadline_budget_ns = sopt.admission.deadline_ms * 1000 * 1000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> offered{0};

  for (auto& sh : shards) {
    sh->reporter = std::make_unique<SloReporter>(start_ns);
    for (int i = 0; i < kNumRequestClasses; i++) {
      sh->budgets.emplace_back(sopt.retry_ratio,
                               std::max(8.0, sopt.retry_ratio * rate / nshards));
    }
  }

  ScopedMetrics sm;
  sm.Gauge("service.offered",
           [&offered] { return static_cast<double>(offered.load(std::memory_order_relaxed)); });
  for (int s = 0; s < nshards; s++) {
    Shard* sh = shards[s].get();
    std::string prefix = "shard" + std::to_string(s) + ".";
    sm.Gauge(prefix + "service.routed",
             [sh] { return static_cast<double>(sh->routed.load(std::memory_order_relaxed)); });
    sm.Gauge(prefix + "service.queue_depth",
             [sh] { return static_cast<double>(sh->depth.load(std::memory_order_relaxed)); });
    sm.Gauge(prefix + "service.completed_ok", [sh] {
      return static_cast<double>(sh->completed_ok.load(std::memory_order_relaxed));
    });
  }

  auto worker_body = [&](Shard* sh, int worker_index) {
    RuntimeThread* t = sh->vm->AttachThread();
    uint64_t rng_state = sopt.seed ^ (0xd1b54a32d192ed03ULL * (worker_index + 1));
    while (!stop.load(std::memory_order_relaxed)) {
      ShardRequest req;
      bool got = false;
      LockAtSafepoint(sh->queue_lock, *t);
      if (!sh->queue.empty()) {
        req = sh->queue.front();
        sh->queue.pop_front();
        sh->depth.fetch_sub(1, std::memory_order_relaxed);
        got = true;
      }
      sh->queue_lock.unlock();
      if (!got) {
        SafepointManager::ScopedSafeRegion safe(&sh->vm->safepoints(), &t->gc_context());
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      uint64_t dq = NowNs();
      if (dq > req.deadline_ns) {
        bool retry = req.attempt < sopt.retry.max_attempts &&
                     sh->budgets[req.klass].TryAcquire();
        if (retry) {
          ShardRequest again = req;
          again.attempt++;
          again.ready_ns = dq + sopt.retry.BackoffNs(req.attempt, &rng_state);
          again.deadline_ns = again.ready_ns + deadline_budget_ns;
          {
            std::lock_guard<SpinLock> guard(sh->retry_lock);
            sh->retries.push(again);
          }
          sh->retries_granted.fetch_add(1, std::memory_order_relaxed);
          sh->reporter->CountRetry();
        } else {
          sh->retry_denied.fetch_add(1, std::memory_order_relaxed);
          sh->shed_deadline.fetch_add(1, std::memory_order_relaxed);
          RequestTimeline tl;
          tl.id = req.id;
          tl.scheduled_ns = req.scheduled_ns;
          tl.enqueue_ns = req.enqueue_ns;
          tl.dequeue_ns = dq;
          tl.respond_ns = dq;
          tl.attempts = req.attempt;
          sh->reporter->Record(tl, RequestOutcome::kShed);
        }
        continue;
      }
      sh->workload->Op(*t, req.op_index);
      uint64_t ex = NowNs();
      sh->admission->ObserveService(ex - dq);
      RequestTimeline tl;
      tl.id = req.id;
      tl.scheduled_ns = req.scheduled_ns;
      tl.enqueue_ns = req.enqueue_ns;
      tl.dequeue_ns = dq;
      tl.execute_ns = ex;
      tl.respond_ns = ex;
      tl.attempts = req.attempt;
      if (ex > req.deadline_ns) {
        sh->deadline_miss.fetch_add(1, std::memory_order_relaxed);
        sh->reporter->Record(tl, RequestOutcome::kDeadlineMiss);
      } else {
        sh->completed_ok.fetch_add(1, std::memory_order_relaxed);
        sh->reporter->Record(tl, RequestOutcome::kOk);
      }
      t->Poll();
    }
    sh->vm->DetachThread(t);
  };

  for (auto& sh : shards) {
    sh->workers.reserve(sopt.workers);
    for (int i = 0; i < sopt.workers; i++) {
      sh->workers.emplace_back(worker_body, sh.get(), i);
    }
  }

  // One generator for all shards (unattached: never parked by any shard's
  // safepoint). Fresh arrivals route by consistent hash of the op key; retry
  // attempts stay on the shard that owns the key.
  auto generator_body = [&] {
    uint64_t rng = sopt.seed ^ 0x9e3779b97f4a7c15ULL;
    double mean_gap_ns = 1e9 / rate;
    uint64_t next_arrival = start_ns;
    uint64_t next_id = 0;
    while (true) {
      uint64_t evt = next_arrival;
      int retry_shard = -1;
      for (int s = 0; s < nshards; s++) {
        std::lock_guard<SpinLock> guard(shards[s]->retry_lock);
        if (!shards[s]->retries.empty() && shards[s]->retries.top().ready_ns < evt) {
          evt = shards[s]->retries.top().ready_ns;
          retry_shard = s;
        }
      }
      if (evt >= gen_end_ns) {
        break;
      }
      uint64_t now = NowNs();
      if (evt > now) {
        uint64_t wait = std::min<uint64_t>(evt - now, 1000 * 1000);
        std::this_thread::sleep_for(std::chrono::nanoseconds(wait));
        continue;
      }
      ShardRequest req;
      if (retry_shard >= 0) {
        std::lock_guard<SpinLock> guard(shards[retry_shard]->retry_lock);
        if (shards[retry_shard]->retries.empty()) {
          continue;
        }
        req = shards[retry_shard]->retries.top();
        shards[retry_shard]->retries.pop();
      } else {
        req.id = next_id++;
        req.scheduled_ns = next_arrival;
        req.ready_ns = next_arrival;
        req.deadline_ns = next_arrival + deadline_budget_ns;
        req.op_index = req.id;
        req.attempt = 1;
        req.shard = static_cast<uint8_t>(router.ShardFor(req.op_index));
        double u = static_cast<double>(SplitMix64(&rng) >> 11) * 0x1.0p-53;
        req.klass = u < sopt.write_fraction
                        ? static_cast<uint8_t>(RequestClass::kWrite)
                        : static_cast<uint8_t>(RequestClass::kRead);
        offered.fetch_add(1, std::memory_order_relaxed);
        shards[req.shard]->routed.fetch_add(1, std::memory_order_relaxed);
        shards[req.shard]->budgets[req.klass].OnRequest();
        double u2 = static_cast<double>(SplitMix64(&rng) >> 11) * 0x1.0p-53;
        double gap = sopt.poisson_arrivals ? -std::log(1.0 - u2) * mean_gap_ns
                                           : mean_gap_ns;
        if (ROLP_FAULT_POINT("service.arrival.burst")) {
          gap = 0.0;
        }
        next_arrival += std::max<uint64_t>(static_cast<uint64_t>(gap), 1);
      }
      Shard* sh = shards[req.shard].get();
      now = NowNs();
      size_t depth = sh->depth.load(std::memory_order_relaxed);
      bool queue_full = depth >= sopt.admission.queue_capacity ||
                        ROLP_FAULT_POINT("service.queue.full");
      bool governor_shed = sh->vm->heap().governor().level() >= PressureLevel::kShed;
      if (queue_full || governor_shed) {
        (queue_full ? sh->shed_queue_full : sh->shed_governor)
            .fetch_add(1, std::memory_order_relaxed);
        RequestTimeline tl;
        tl.id = req.id;
        tl.scheduled_ns = req.scheduled_ns;
        tl.enqueue_ns = now;
        tl.respond_ns = now;
        tl.attempts = req.attempt;
        sh->reporter->Record(tl, RequestOutcome::kShed);
      } else if (ROLP_FAULT_POINT("service.admit.reject") ||
                 !sh->admission->Admit(depth, now, req.deadline_ns)) {
        RequestTimeline tl;
        tl.id = req.id;
        tl.scheduled_ns = req.scheduled_ns;
        tl.enqueue_ns = now;
        tl.respond_ns = now;
        tl.attempts = req.attempt;
        sh->reporter->Record(tl, RequestOutcome::kRejected);
      } else {
        req.enqueue_ns = now;
        std::lock_guard<SpinLock> guard(sh->queue_lock);
        sh->queue.push_back(req);
        sh->depth.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::thread generator(generator_body);
  generator.join();

  uint64_t drain_end = NowNs() + static_cast<uint64_t>(sopt.drain_grace_s * 1e9);
  auto total_depth = [&shards] {
    size_t d = 0;
    for (auto& sh : shards) {
      d += sh->depth.load(std::memory_order_relaxed);
    }
    return d;
  };
  while (total_depth() > 0 && NowNs() < drain_end) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& sh : shards) {
    for (auto& th : sh->workers) {
      th.join();
    }
  }
  uint64_t end_ns = NowNs();
  for (auto& sh : shards) {
    std::lock_guard<SpinLock> guard(sh->queue_lock);
    for (const ShardRequest& req : sh->queue) {
      RequestTimeline tl;
      tl.id = req.id;
      tl.scheduled_ns = req.scheduled_ns;
      tl.enqueue_ns = req.enqueue_ns;
      tl.respond_ns = end_ns;
      tl.attempts = req.attempt;
      sh->reporter->Record(tl, RequestOutcome::kShed);
    }
    sh->queue.clear();
    sh->depth.store(0, std::memory_order_relaxed);
    std::lock_guard<SpinLock> retry_guard(sh->retry_lock);
    while (!sh->retries.empty()) {
      const ShardRequest& req = sh->retries.top();
      RequestTimeline tl;
      tl.id = req.id;
      tl.scheduled_ns = req.scheduled_ns;
      tl.respond_ns = end_ns;
      tl.attempts = req.attempt;
      sh->reporter->Record(tl, RequestOutcome::kShed);
      sh->retries.pop();
    }
  }

  // Load has stopped. Collect each shard once so garbage regions hit the free
  // lists, then watch RSS settle while the uncommit sweepers hand idle
  // regions back to the OS.
  result.rss_load_bytes = CurrentRssBytes();
  result.rss_settled_bytes = result.rss_load_bytes;
  if (options.uncommit_ms > 0) {
    for (auto& sh : shards) {
      RuntimeThread* t = sh->vm->AttachThread();
      sh->vm->collector().CollectFull(&t->gc_context());
      sh->vm->DetachThread(t);
    }
    result.rss_load_bytes = CurrentRssBytes();
    result.rss_settled_bytes = result.rss_load_bytes;
    uint64_t watch_end =
        NowNs() + static_cast<uint64_t>(2 * options.uncommit_ms) * 1000000ull;
    int64_t poll_ms = std::max<int64_t>(options.uncommit_ms / 8, 10);
    while (NowNs() < watch_end) {
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
      result.rss_settled_bytes = std::min(result.rss_settled_bytes, CurrentRssBytes());
    }
  }

  // Merge the per-shard sub-windows into one verdict. All reporters share
  // start_ns, so the ring slots line up exactly.
  SloReporter merged(start_ns);
  for (int s = 0; s < nshards; s++) {
    Shard* sh = shards[s].get();
    SloReporter::Verdict sub = sh->reporter->Evaluate(
        std::string(GcKindName(vm_config.gc)) + "/shard" + std::to_string(s),
        sopt.slo, true, end_ns);
    result.shards[s].slo_pass = sub.pass;
    result.shards[s].verdict_json = sub.json;
    result.shards[s].routed = sh->routed.load();
    result.shards[s].completed_ok = sh->completed_ok.load();
    result.shards[s].deadline_miss = sh->deadline_miss.load();
    result.shards[s].rejected = sh->admission->rejected();
    result.shards[s].shed = sh->shed_queue_full.load() + sh->shed_governor.load() +
                            sh->shed_deadline.load();
    result.shards[s].retries = sh->retries_granted.load();
    merged.MergeFrom(*sh->reporter, end_ns);
  }
  result.offered = offered.load();
  // Reaching this line with every shard VM alive is the zero-abort proof.
  result.survived = true;

  char extra[256];
  double rss_drop = result.rss_load_bytes > 0
                        ? 1.0 - static_cast<double>(result.rss_settled_bytes) /
                                    static_cast<double>(result.rss_load_bytes)
                        : 0.0;
  std::snprintf(extra, sizeof(extra),
                "\"shards\":%d,\"offered\":%" PRIu64 ",\"rss_load_bytes\":%" PRIu64
                ",\"rss_settled_bytes\":%" PRIu64 ",\"rss_drop\":%.4f",
                nshards, result.offered, result.rss_load_bytes, result.rss_settled_bytes,
                rss_drop);
  SloReporter::Verdict verdict = merged.Evaluate(GcKindName(vm_config.gc), sopt.slo,
                                                 result.survived, end_ns, extra);
  result.slo_pass = verdict.pass;
  result.verdict_json = verdict.json;
  result.slo = merged.Collect(end_ns);

  for (auto& sh : shards) {
    sh->workload->Teardown();
  }
  return result;
}

void PrintShardedReport(std::FILE* out, const ShardedServiceResult& r) {
  std::fprintf(out,
               "sharded service: shards=%zu offered=%" PRIu64 " (%.0f rps%s)\n",
               r.shards.size(), r.offered, r.offered_rps,
               r.calibrated_rps > 0 ? " calibrated" : "");
  for (size_t s = 0; s < r.shards.size(); s++) {
    const ShardedServiceResult::ShardStats& st = r.shards[s];
    std::fprintf(out,
                 "  shard %zu: routed=%" PRIu64 " ok=%" PRIu64 " miss=%" PRIu64
                 " rejected=%" PRIu64 " shed=%" PRIu64 " retries=%" PRIu64 " slo=%s\n",
                 s, st.routed, st.completed_ok, st.deadline_miss, st.rejected, st.shed,
                 st.retries, st.slo_pass ? "pass" : "FAIL");
  }
  if (r.rss_load_bytes > 0) {
    std::fprintf(out, "  rss: load=%.1fMB settled=%.1fMB (drop %.1f%%)\n",
                 static_cast<double>(r.rss_load_bytes) / (1024.0 * 1024.0),
                 static_cast<double>(r.rss_settled_bytes) / (1024.0 * 1024.0),
                 r.rss_load_bytes > 0
                     ? 100.0 * (1.0 - static_cast<double>(r.rss_settled_bytes) /
                                          static_cast<double>(r.rss_load_bytes))
                     : 0.0);
  }
  const SloReporter::Snapshot& s = r.slo;
  std::fprintf(out,
               "  merged: total=%" PRIu64 " ok=%" PRIu64 " miss=%" PRIu64
               " rejected=%" PRIu64 " shed=%" PRIu64 " error_rate=%.3f\n",
               s.total, s.ok, s.deadline_miss, s.rejected, s.shed, s.error_rate);
  std::fprintf(out,
               "  lateness alltime  p50=%.2fms p95=%.2fms p99=%.2fms p99.9=%.2fms "
               "max=%.2fms (n=%" PRIu64 ")\n",
               s.alltime.p50_ms, s.alltime.p95_ms, s.alltime.p99_ms, s.alltime.p999_ms,
               s.alltime.max_ms, s.alltime.count);
}

}  // namespace rolp
