// Open-loop service harness: drives a workload the way a latency-sensitive
// service is actually loaded, instead of the closed-loop bench driver's
// as-fast-as-possible spin.
//
// The generator thread fixes the arrival schedule in advance (seeded
// exponential or fixed interarrivals at a configured rate) and never waits
// for completions: if the system stalls — a GC pause, allocation throttling,
// a full queue — arrivals keep accruing and every delayed request is charged
// its full lateness from its *scheduled* time. This is the standard defense
// against coordinated omission; a closed-loop driver silently stops offering
// load during exactly the pauses it should be measuring.
//
// Requests flow: generate -> admission (deadline-aware; see admission.h) ->
// bounded queue -> worker (VM-attached mutator thread) -> respond. Sheds at
// any stage are terminal responses recorded with full lateness. Workers that
// find a request already past its deadline drop it without executing and the
// per-class retry budget decides whether a backoff retry is scheduled.
#ifndef SRC_SERVICE_OPEN_LOOP_H_
#define SRC_SERVICE_OPEN_LOOP_H_

#include <cstdint>
#include <string>

#include "src/service/admission.h"
#include "src/service/slo_reporter.h"
#include "src/util/pacer.h"
#include "src/workloads/driver.h"
#include "src/workloads/workload.h"

namespace rolp {

// Harness-level request classes for retry budgeting (the workload's own
// read/write mix is internal to its Op).
enum class RequestClass : uint8_t { kRead = 0, kWrite = 1 };
constexpr int kNumRequestClasses = 2;

struct ServiceOptions {
  int workers = 2;
  double duration_s = 10.0;       // open-loop measurement interval
  double warmup_s = 0.0;          // VM pause records before this are excluded
  double rate_rps = 0.0;          // 0 = calibrate: overload_factor x capacity
  double overload_factor = 2.0;   // used only when rate_rps == 0
  double calibrate_s = 1.5;       // closed-loop probe length for calibration
  bool poisson_arrivals = true;   // false = fixed interarrival
  double write_fraction = 0.25;   // request-class mix (retry budgeting)
  double drain_grace_s = 2.0;     // queue drain window after the last arrival
  uint64_t seed = 0x5eed;
  bool use_workload_filter = true;
  AdmissionConfig admission;      // AdmissionConfig::FromEnv() by default
  RetryPolicy retry;              // RetryPolicy::FromEnv() by default
  double retry_ratio = 0.1;       // ROLP_SVC_RETRY_RATIO: retries per request
  SloThresholds slo;              // SloThresholds::FromEnv() by default
  PacerOptions pacing;            // PacerOptions::FromEnv() via FromEnv()

  // Fills rate/admission/retry/slo knobs from the environment
  // (ROLP_SERVICE_RATE, ROLP_SERVICE_OVERLOAD_FACTOR, ROLP_SVC_*, ROLP_SLO_*).
  static ServiceOptions FromEnv();
};

struct ServiceResult {
  // VM-side statistics (pauses, GC counters, profiler summary) via
  // CollectVmStats — same shape the closed-loop driver reports.
  RunResult run;

  double offered_rps = 0.0;    // configured (or calibrated) arrival rate
  double calibrated_rps = 0.0; // closed-loop capacity probe result (0 = none)
  uint64_t offered = 0;        // fresh arrivals generated
  uint64_t admitted = 0;
  uint64_t rejected = 0;          // admission refusals
  uint64_t shed_queue_full = 0;   // dropped at enqueue: queue at capacity
  uint64_t shed_deadline = 0;     // dropped at dequeue: already past deadline
  uint64_t shed_drain = 0;        // dropped when the run ended mid-queue
  uint64_t completed_ok = 0;
  uint64_t deadline_miss = 0;     // executed, but responded past deadline
  uint64_t retries = 0;           // backoff retries granted
  uint64_t retry_denied = 0;      // budget refusals

  // Governor ladder activity during the run.
  uint64_t governor_max_level = 0;
  uint64_t governor_transitions = 0;
  uint64_t governor_gc_requests = 0;
  uint64_t throttle_stalls = 0;

  bool survived = true;   // process reached the end without aborting
  bool slo_pass = false;
  std::string verdict_json;  // payload of the SLO_VERDICT line
  SloReporter::Snapshot slo;  // end-of-run windows/segments/counts
};

// Human-readable end-of-run report: SLO windows, segment attribution,
// admission/shed counters, governor ladder activity.
void PrintServiceReport(std::FILE* out, const ServiceResult& result);

// Runs `workload` under open-loop load on a fresh VM. Prints nothing; the
// caller decides what to report (see SloReporter::PrintReport and
// ServiceResult::verdict_json).
ServiceResult RunService(const VmConfig& vm_config, Workload& workload,
                         const ServiceOptions& options);

}  // namespace rolp

#endif  // SRC_SERVICE_OPEN_LOOP_H_
