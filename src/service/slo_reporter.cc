#include "src/service/slo_reporter.h"

#include <algorithm>
#include <cinttypes>

#include "src/util/check.h"
#include "src/util/clock.h"
#include "src/util/env.h"

namespace rolp {

namespace {
constexpr size_t kSlots1Min = 30;
constexpr uint64_t kSlotNs1Min = 2ULL * 1000 * 1000 * 1000;  // 30 x 2 s
constexpr size_t kSlots15Min = 45;
constexpr uint64_t kSlotNs15Min = 20ULL * 1000 * 1000 * 1000;  // 45 x 20 s
}  // namespace

const char* RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kDeadlineMiss:
      return "deadline-miss";
    case RequestOutcome::kRejected:
      return "rejected";
    case RequestOutcome::kShed:
      return "shed";
    case RequestOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

SloThresholds SloThresholds::FromEnv() {
  SloThresholds t;
  t.p50_ms = EnvDouble("ROLP_SLO_P50_MS", t.p50_ms);
  t.p95_ms = EnvDouble("ROLP_SLO_P95_MS", t.p95_ms);
  t.p99_ms = EnvDouble("ROLP_SLO_P99_MS", t.p99_ms);
  t.p999_ms = EnvDouble("ROLP_SLO_P999_MS", t.p999_ms);
  t.max_error_rate = EnvDouble("ROLP_SLO_MAX_ERROR_RATE", t.max_error_rate);
  return t;
}

SloReporter::SlotRing::SlotRing(size_t num_slots, uint64_t slot_ns_in, uint64_t epoch)
    : slots(num_slots), slot_ns(slot_ns_in), epoch_ns(epoch) {}

void SloReporter::SlotRing::Advance(uint64_t now_ns) {
  uint64_t abs_slot = now_ns <= epoch_ns ? 0 : (now_ns - epoch_ns) / slot_ns;
  if (abs_slot <= cur_slot) {
    return;
  }
  // Reset every slot the clock skipped over (bounded by the ring size).
  uint64_t first_stale = cur_slot + 1;
  uint64_t last_stale = std::min(abs_slot, cur_slot + slots.size());
  for (uint64_t s = first_stale; s <= last_stale; s++) {
    slots[s % slots.size()].Reset();
  }
  cur_slot = abs_slot;
}

void SloReporter::SlotRing::Record(uint64_t now_ns, uint64_t value) {
  Advance(now_ns);
  slots[cur_slot % slots.size()].Record(value);
}

LogHistogram SloReporter::SlotRing::Merged(uint64_t now_ns) {
  Advance(now_ns);
  LogHistogram out;
  for (const LogHistogram& h : slots) {
    out.Merge(h);
  }
  return out;
}

SloReporter::SloReporter(uint64_t epoch_ns)
    : epoch_ns_(epoch_ns),
      ring_1min_(kSlots1Min, kSlotNs1Min, epoch_ns),
      ring_15min_(kSlots15Min, kSlotNs15Min, epoch_ns) {}

void SloReporter::Record(const RequestTimeline& t, RequestOutcome outcome) {
  uint64_t lateness =
      t.respond_ns > t.scheduled_ns ? t.respond_ns - t.scheduled_ns : 0;
  std::lock_guard<SpinLock> guard(mu_);
  ring_1min_.Record(t.respond_ns, lateness);
  ring_15min_.Record(t.respond_ns, lateness);
  lateness_alltime_.Record(lateness);
  if (t.enqueue_ns >= t.scheduled_ns) {
    seg_sched_to_enqueue_.Record(t.enqueue_ns - t.scheduled_ns);
  }
  if (t.dequeue_ns >= t.enqueue_ns && t.enqueue_ns != 0) {
    seg_queue_wait_.Record(t.dequeue_ns - t.enqueue_ns);
  }
  if (t.execute_ns >= t.dequeue_ns && t.dequeue_ns != 0) {
    seg_execute_.Record(t.execute_ns - t.dequeue_ns);
  }
  if (t.respond_ns >= t.execute_ns && t.execute_ns != 0) {
    seg_respond_.Record(t.respond_ns - t.execute_ns);
  }
  switch (outcome) {
    case RequestOutcome::kOk:
      ok_++;
      break;
    case RequestOutcome::kDeadlineMiss:
      deadline_miss_++;
      break;
    case RequestOutcome::kRejected:
      rejected_++;
      break;
    case RequestOutcome::kShed:
      shed_++;
      break;
    case RequestOutcome::kFailed:
      failed_++;
      break;
  }
}

void SloReporter::CountRetry() {
  std::lock_guard<SpinLock> guard(mu_);
  retries_++;
}

SloReporter::WindowStats SloReporter::StatsOf(const LogHistogram& h) {
  WindowStats w;
  w.count = h.Count();
  w.p50_ms = NsToMs(h.Percentile(50.0));
  w.p95_ms = NsToMs(h.Percentile(95.0));
  w.p99_ms = NsToMs(h.Percentile(99.0));
  w.p999_ms = NsToMs(h.Percentile(99.9));
  w.max_ms = NsToMs(h.Max());
  return w;
}

SloReporter::Snapshot SloReporter::Collect(uint64_t now_ns) {
  std::lock_guard<SpinLock> guard(mu_);
  Snapshot s;
  s.win_1min = StatsOf(ring_1min_.Merged(now_ns));
  s.win_15min = StatsOf(ring_15min_.Merged(now_ns));
  s.alltime = StatsOf(lateness_alltime_);
  auto seg = [](const LogHistogram& h) {
    SegmentStats out;
    out.count = h.Count();
    out.mean_ms = h.Mean() / 1e6;
    out.p99_ms = NsToMs(h.Percentile(99.0));
    out.max_ms = NsToMs(h.Max());
    return out;
  };
  s.seg_sched_to_enqueue = seg(seg_sched_to_enqueue_);
  s.seg_queue_wait = seg(seg_queue_wait_);
  s.seg_execute = seg(seg_execute_);
  s.seg_respond = seg(seg_respond_);
  s.ok = ok_;
  s.deadline_miss = deadline_miss_;
  s.rejected = rejected_;
  s.shed = shed_;
  s.failed = failed_;
  s.retries = retries_;
  s.total = ok_ + deadline_miss_ + rejected_ + shed_ + failed_;
  if (s.total > 0) {
    s.error_rate =
        static_cast<double>(rejected_ + shed_ + failed_) / static_cast<double>(s.total);
  }
  return s;
}

void SloReporter::PrintReport(std::FILE* out, const std::string& collector,
                              uint64_t now_ns) {
  Snapshot s = Collect(now_ns);
  double uptime_s = static_cast<double>(now_ns - epoch_ns_) / 1e9;
  std::fprintf(out, "SLO report [%s] uptime=%.1fs\n", collector.c_str(), uptime_s);
  std::fprintf(out,
               "  requests: total=%" PRIu64 " ok=%" PRIu64 " deadline_miss=%" PRIu64
               " rejected=%" PRIu64 " shed=%" PRIu64 " failed=%" PRIu64
               " retries=%" PRIu64 " error_rate=%.3f\n",
               s.total, s.ok, s.deadline_miss, s.rejected, s.shed, s.failed, s.retries,
               s.error_rate);
  auto print_window = [out](const char* label, const WindowStats& w) {
    std::fprintf(out,
                 "  lateness %-8s p50=%.2fms p95=%.2fms p99=%.2fms p99.9=%.2fms "
                 "max=%.2fms (n=%" PRIu64 ")\n",
                 label, w.p50_ms, w.p95_ms, w.p99_ms, w.p999_ms, w.max_ms, w.count);
  };
  print_window("1min", s.win_1min);
  print_window("15min", s.win_15min);
  print_window("alltime", s.alltime);
  auto print_segment = [out](const char* label, const SegmentStats& g) {
    std::fprintf(out, "  segment %-14s mean=%.3fms p99=%.2fms max=%.2fms (n=%" PRIu64 ")\n",
                 label, g.mean_ms, g.p99_ms, g.max_ms, g.count);
  };
  print_segment("sched->enqueue", s.seg_sched_to_enqueue);
  print_segment("queue-wait", s.seg_queue_wait);
  print_segment("execute", s.seg_execute);
  print_segment("respond", s.seg_respond);
}

void SloReporter::MergeFrom(SloReporter& other, uint64_t now_ns) {
  ROLP_CHECK(epoch_ns_ == other.epoch_ns_);
  std::lock_guard<SpinLock> guard(mu_);
  std::lock_guard<SpinLock> other_guard(other.mu_);
  // Advancing both rings to the same now pins cur_slot to the same absolute
  // index on both sides, so slot i here and slot i there cover the same
  // wall-clock interval.
  auto merge_ring = [now_ns](SlotRing& dst, SlotRing& src) {
    dst.Advance(now_ns);
    src.Advance(now_ns);
    for (size_t i = 0; i < dst.slots.size(); i++) {
      dst.slots[i].Merge(src.slots[i]);
    }
  };
  merge_ring(ring_1min_, other.ring_1min_);
  merge_ring(ring_15min_, other.ring_15min_);
  lateness_alltime_.Merge(other.lateness_alltime_);
  seg_sched_to_enqueue_.Merge(other.seg_sched_to_enqueue_);
  seg_queue_wait_.Merge(other.seg_queue_wait_);
  seg_execute_.Merge(other.seg_execute_);
  seg_respond_.Merge(other.seg_respond_);
  ok_ += other.ok_;
  deadline_miss_ += other.deadline_miss_;
  rejected_ += other.rejected_;
  shed_ += other.shed_;
  failed_ += other.failed_;
  retries_ += other.retries_;
}

SloReporter::Verdict SloReporter::Evaluate(const std::string& collector,
                                           const SloThresholds& th, bool survived,
                                           uint64_t now_ns, const std::string& extra_json) {
  Snapshot s = Collect(now_ns);
  bool p50_ok = s.alltime.p50_ms <= th.p50_ms;
  bool p95_ok = s.alltime.p95_ms <= th.p95_ms;
  bool p99_ok = s.alltime.p99_ms <= th.p99_ms;
  bool p999_ok = s.alltime.p999_ms <= th.p999_ms;
  bool error_ok = s.error_rate <= th.max_error_rate;
  Verdict v;
  v.pass = survived && p50_ok && p95_ok && p99_ok && p999_ok && error_ok;
  char buf[1536];
  auto window_json = [](const WindowStats& w, char* out, size_t cap) {
    std::snprintf(out, cap,
                  "{\"count\":%" PRIu64
                  ",\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,"
                  "\"p999_ms\":%.3f,\"max_ms\":%.3f}",
                  w.count, w.p50_ms, w.p95_ms, w.p99_ms, w.p999_ms, w.max_ms);
  };
  char w1[192], w15[192], wall[192];
  window_json(s.win_1min, w1, sizeof(w1));
  window_json(s.win_15min, w15, sizeof(w15));
  window_json(s.alltime, wall, sizeof(wall));
  std::snprintf(
      buf, sizeof(buf),
      "{\"collector\":\"%s\",\"pass\":%s,\"survived\":%s,"
      "\"window_1min\":%s,\"window_15min\":%s,\"alltime\":%s,"
      "\"counts\":{\"total\":%" PRIu64 ",\"ok\":%" PRIu64 ",\"deadline_miss\":%" PRIu64
      ",\"rejected\":%" PRIu64 ",\"shed\":%" PRIu64 ",\"failed\":%" PRIu64
      ",\"retries\":%" PRIu64 "},\"error_rate\":%.4f,"
      "\"thresholds\":{\"p50_ms\":%.1f,\"p95_ms\":%.1f,\"p99_ms\":%.1f,"
      "\"p999_ms\":%.1f,\"max_error_rate\":%.3f},"
      "\"checks\":{\"p50\":%s,\"p95\":%s,\"p99\":%s,\"p999\":%s,"
      "\"error_rate\":%s,\"survived\":%s}}",
      collector.c_str(), v.pass ? "true" : "false", survived ? "true" : "false", w1, w15,
      wall, s.total, s.ok, s.deadline_miss, s.rejected, s.shed, s.failed, s.retries,
      s.error_rate, th.p50_ms, th.p95_ms, th.p99_ms, th.p999_ms, th.max_error_rate,
      p50_ok ? "true" : "false", p95_ok ? "true" : "false", p99_ok ? "true" : "false",
      p999_ok ? "true" : "false", error_ok ? "true" : "false",
      survived ? "true" : "false");
  v.json = buf;
  if (!extra_json.empty()) {
    v.json.insert(v.json.size() - 1, "," + extra_json);
  }
  return v;
}

}  // namespace rolp
