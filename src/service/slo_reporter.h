// Rolling-window SLO reporter for the open-loop service harness.
//
// Latency discipline (no coordinated omission): every request is charged its
// *lateness* — respond_ns minus the arrival time fixed in advance by the
// open-loop schedule — not just its service time. A request that sat in a
// queue behind a GC pause, was throttled, retried, or was shed still pays for
// every nanosecond the client would have waited. Rejections and sheds are
// terminal responses and are charged at decision time, so a collector cannot
// look good by dropping the slow requests.
//
// Windows: percentiles are reported over the trailing 1-minute and 15-minute
// windows (slot rings of log-bucketed histograms: 30 x 2 s and 45 x 20 s) and
// over the whole run. Per-segment attribution (schedule->enqueue, queue wait,
// execute, respond) is kept all-time.
#ifndef SRC_SERVICE_SLO_REPORTER_H_
#define SRC_SERVICE_SLO_REPORTER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/util/histogram.h"
#include "src/util/spinlock.h"

namespace rolp {

// Per-request lifecycle timestamps (monotonic ns). scheduled_ns is the
// arrival time the generator fixed in advance; it never moves, even across
// retries, so lateness always reflects the full client-observed wait.
struct RequestTimeline {
  uint64_t id = 0;            // correlation id, unique per logical request
  uint64_t scheduled_ns = 0;  // planned arrival (fixed in advance)
  uint64_t enqueue_ns = 0;    // admission decision made / queue push
  uint64_t dequeue_ns = 0;    // worker picked it up
  uint64_t execute_ns = 0;    // workload operation finished
  uint64_t respond_ns = 0;    // terminal decision recorded
  uint32_t attempts = 1;      // 1 = first try
};

// Terminal outcome of a logical request. Exactly one is recorded per request.
enum class RequestOutcome : uint8_t {
  kOk = 0,            // completed within deadline
  kDeadlineMiss = 1,  // completed, but after the deadline
  kRejected = 2,      // admission control refused it
  kShed = 3,          // dropped: queue full, expired in queue, or drained
  kFailed = 4,        // execution failed
};

const char* RequestOutcomeName(RequestOutcome outcome);

// Pass/fail thresholds for the machine-readable verdict. Lateness thresholds
// apply to the all-time distribution so the verdict is independent of where
// the windows happen to sit when the run ends.
struct SloThresholds {
  double p50_ms = 400.0;
  double p95_ms = 600.0;
  double p99_ms = 800.0;
  double p999_ms = 1500.0;
  // Rejected+shed+failed over total. Deliberate overload runs shed most of
  // the offered load by design, so the default only catches total collapse.
  double max_error_rate = 0.95;
  // Reads ROLP_SLO_P50_MS / P95 / P99 / P999 and ROLP_SLO_MAX_ERROR_RATE.
  static SloThresholds FromEnv();
};

class SloReporter {
 public:
  explicit SloReporter(uint64_t epoch_ns);

  // Records the terminal decision for one logical request. Thread-safe.
  void Record(const RequestTimeline& t, RequestOutcome outcome);
  // Counts a retry grant (the logical request stays open).
  void CountRetry();

  struct WindowStats {
    uint64_t count = 0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double p999_ms = 0.0;
    double max_ms = 0.0;
  };

  struct SegmentStats {
    uint64_t count = 0;
    double mean_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
  };

  struct Snapshot {
    WindowStats win_1min;
    WindowStats win_15min;
    WindowStats alltime;
    SegmentStats seg_sched_to_enqueue;  // generator lag + admission
    SegmentStats seg_queue_wait;        // enqueue -> dequeue
    SegmentStats seg_execute;           // dequeue -> execute
    SegmentStats seg_respond;           // execute -> respond
    uint64_t total = 0;
    uint64_t ok = 0;
    uint64_t deadline_miss = 0;
    uint64_t rejected = 0;
    uint64_t shed = 0;
    uint64_t failed = 0;
    uint64_t retries = 0;
    double error_rate = 0.0;  // (rejected + shed + failed) / total
  };
  Snapshot Collect(uint64_t now_ns);

  // Human-readable report (windows, segments, outcome counts).
  void PrintReport(std::FILE* out, const std::string& collector, uint64_t now_ns);

  struct Verdict {
    bool pass = false;
    std::string json;  // one-line "SLO_VERDICT {...}" payload (without prefix)
  };
  // Evaluates the all-time lateness distribution against `thresholds`.
  // `survived` is the zero-abort bit the caller asserts (the process being
  // alive to call this is most of the proof); it is AND-ed into pass.
  // `extra_json` (e.g. "\"shards\":4,\"rss_settled_bytes\":123") is spliced
  // into the verdict object verbatim, for harnesses that carry extra facts.
  Verdict Evaluate(const std::string& collector, const SloThresholds& thresholds,
                   bool survived, uint64_t now_ns, const std::string& extra_json = "");

  // Folds `other`'s state into this reporter: rings slot-by-slot, all-time
  // and segment histograms, and outcome counters. Both reporters must share
  // the same epoch (the sharded harness constructs all of them from one
  // start_ns), so their ring slots line up on the same absolute time grid.
  // Call after `other` stops receiving records.
  void MergeFrom(SloReporter& other, uint64_t now_ns);

 private:
  // Fixed ring of log histograms, one per time slot; Merged() covers the
  // trailing (slots * slot_ns) window. Caller holds mu_.
  struct SlotRing {
    SlotRing(size_t slots, uint64_t slot_ns, uint64_t epoch_ns);
    void Advance(uint64_t now_ns);  // resets slots the clock has passed
    void Record(uint64_t now_ns, uint64_t value);
    LogHistogram Merged(uint64_t now_ns);

    std::vector<LogHistogram> slots;
    uint64_t slot_ns;
    uint64_t epoch_ns;
    uint64_t cur_slot = 0;  // absolute index of the slot last written
  };

  static WindowStats StatsOf(const LogHistogram& h);

  SpinLock mu_;
  uint64_t epoch_ns_;
  SlotRing ring_1min_;
  SlotRing ring_15min_;
  LogHistogram lateness_alltime_;
  LogHistogram seg_sched_to_enqueue_;
  LogHistogram seg_queue_wait_;
  LogHistogram seg_execute_;
  LogHistogram seg_respond_;
  uint64_t ok_ = 0;
  uint64_t deadline_miss_ = 0;
  uint64_t rejected_ = 0;
  uint64_t shed_ = 0;
  uint64_t failed_ = 0;
  uint64_t retries_ = 0;
};

}  // namespace rolp

#endif  // SRC_SERVICE_SLO_REPORTER_H_
