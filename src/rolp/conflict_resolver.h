// Allocation-context conflict resolution — paper section 5.
//
// When lifetime inference finds a multi-peak curve (one allocation site, call
// paths with different lifetimes), the resolver incrementally enables
// thread-stack-state tracking on randomly chosen subsets of P% of the
// profilable (jitted, non-inlined) call sites until the conflict disappears,
// then narrows the enabled set by halving to approach the minimal
// distinguishing set S.
#ifndef SRC_ROLP_CONFLICT_RESOLVER_H_
#define SRC_ROLP_CONFLICT_RESOLVER_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/util/random.h"

namespace rolp {

// Implemented by the runtime's JIT engine: exposes the population of call
// sites whose stack-state tracking can be toggled (the fast/slow profiling
// branch of paper section 3.2.4).
class CallSiteControl {
 public:
  virtual ~CallSiteControl() = default;
  virtual size_t NumProfilableCallSites() const = 0;
  virtual void SetCallSiteTracking(size_t index, bool enabled) = 0;
  virtual bool CallSiteTracking(size_t index) const = 0;
};

class ConflictResolver {
 public:
  ConflictResolver(CallSiteControl* control, double p_fraction, uint64_t seed = 0x5eed);

  // Called once per inference (every 16 GC cycles) with the allocation sites
  // currently exhibiting conflicts. Drives the enable/narrow state machine.
  void OnInference(const std::vector<uint32_t>& conflicted_sites);

  // --- Introspection -------------------------------------------------------
  enum class Phase { kIdle, kTrying, kNarrowing, kDone, kExhausted };
  Phase phase() const { return phase_; }
  uint64_t conflicts_detected() const { return conflicts_detected_; }
  uint64_t conflicts_resolved() const { return conflicts_resolved_; }
  uint64_t trial_rounds() const { return trial_rounds_; }
  size_t tracked_call_sites() const { return enabled_.size(); }
  double p_fraction() const { return p_; }

  // Worst-case rounds to resolution for the current population (paper: total
  // call sites / P picks, each pick validated after one inference period).
  uint64_t WorstCaseRounds() const;

 private:
  void EnableSet(const std::vector<size_t>& sites, bool enabled);
  std::vector<size_t> PickTrialSet();

  CallSiteControl* control_;
  double p_;
  Random rng_;

  Phase phase_ = Phase::kIdle;
  std::unordered_set<size_t> tried_;
  std::vector<size_t> trial_;             // candidate set C (currently narrowing)
  std::vector<size_t> narrow_disabled_;   // half of C currently disabled
  bool trying_second_half_ = false;       // delta-debugging state
  std::unordered_set<size_t> enabled_;   // currently tracking
  uint64_t conflicts_detected_ = 0;
  uint64_t conflicts_resolved_ = 0;
  uint64_t trial_rounds_ = 0;
  bool saw_conflict_ever_ = false;
};

}  // namespace rolp

#endif  // SRC_ROLP_CONFLICT_RESOLVER_H_
