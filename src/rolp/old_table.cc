#include "src/rolp/old_table.h"

#include <bit>

#include "src/util/check.h"
#include "src/util/fault_injection.h"
#include "src/util/random.h"

namespace rolp {

namespace {

size_t NextPow2(size_t n) { return std::bit_ceil(n); }

// Fibonacci hashing: one multiply, and the home slot comes from the top bits
// (the best-mixed ones). A single multiply keeps the critical path from
// context to the key load as short as possible — this runs on every profiled
// allocation that misses its thread's sample buffer.
size_t HomeSlot(uint32_t context, unsigned shift) {
  return static_cast<size_t>((context * 0x9e3779b97f4a7c15ULL) >> shift);
}

unsigned ShiftFor(size_t pow2_capacity) {
  return 64 - static_cast<unsigned>(std::countr_zero(pow2_capacity));
}

}  // namespace

OldTable::OldTable(size_t entries) {
  nominal_entries_ = entries;
  capacity_ = NextPow2(entries);
  hash_shift_ = ShiftFor(capacity_);
  keys_ = std::make_unique<std::atomic<uint32_t>[]>(capacity_);
  counters_ = std::make_unique<CounterBlock[]>(capacity_);
  decisions_ = std::make_unique<std::atomic<uint8_t>[]>(capacity_);
}

size_t OldTable::FindSlot(uint32_t context, bool insert) {
  if (context == kInvalidContext) {
    return kNoSlot;  // EncodeKey would wrap to the empty sentinel
  }
  uint32_t key = EncodeKey(context);
  size_t mask = capacity_ - 1;
  size_t idx = HomeSlot(context, hash_shift_);
  // Linear probing; cap the probe length so a pathologically full table
  // degrades to dropped samples instead of an unbounded scan. Key loads are
  // relaxed: a matching key alone identifies the row — the counter and
  // decision arrays are fully constructed before any key is published, so no
  // probe-side ordering is needed.
  size_t max_probes = capacity_ < 4096 ? capacity_ : 4096;
  for (size_t probe = 0; probe < max_probes; probe++) {
    size_t slot = (idx + probe) & mask;
    uint32_t k = keys_[slot].load(std::memory_order_relaxed);
    if (k == key) {
      return slot;
    }
    if (k == kEmptyKey) {
      if (!insert) {
        return kNoSlot;
      }
      // Load-factor gate, on the insert path only: drop new rows rather than
      // overfilling (insertions happen on mutator paths; growth happens at
      // safepoints).
      if (occupied_approx_.load(std::memory_order_relaxed) > capacity_ - capacity_ / 8) {
        return kNoSlot;
      }
      uint32_t expected = kEmptyKey;
      if (keys_[slot].compare_exchange_strong(expected, key, std::memory_order_acq_rel)) {
        occupied_approx_.fetch_add(1, std::memory_order_relaxed);
        return slot;
      }
      if (expected == key) {
        return slot;  // another thread inserted the same context
      }
      // Slot stolen by a different context; keep probing.
    }
  }
  return kNoSlot;
}

int OldTable::RecordAllocationAndGen(uint32_t context) {
  if (context == kInvalidContext) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return kSampleDropped;
  }
  if (ROLP_FAULT_POINT("rolp.old_table.drop")) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return kSampleDropped;
  }
  size_t slot = FindSlot(context, /*insert=*/true);
  if (slot == kNoSlot) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return kSampleDropped;
  }
  // Paper-faithful unsynchronized increment (section 7.5): a plain
  // load-then-store, so two racing threads can lose a count — HotSpot's ROLP
  // does the same. Exact counting is provided by the per-thread sample
  // buffers, whose batched flushes (AddAllocations) use a real RMW.
  std::atomic<uint32_t>& age0 = counters_[slot].counts[0];
  age0.store(age0.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  return decisions_[slot].load(std::memory_order_relaxed);
}

void OldTable::AddAllocations(uint32_t context, uint32_t delta) {
  if (delta == 0) {
    return;
  }
  if (context == kInvalidContext) {
    rejected_.fetch_add(delta, std::memory_order_relaxed);
    return;
  }
  size_t slot = FindSlot(context, /*insert=*/true);
  if (slot == kNoSlot) {
    dropped_.fetch_add(delta, std::memory_order_relaxed);
    return;
  }
  counters_[slot].counts[0].fetch_add(delta, std::memory_order_relaxed);
}

bool OldTable::Contains(uint32_t context) const {
  return FindSlotConst(context) != kNoSlot;
}

void OldTable::RecordSurvivor(uint32_t context, uint32_t age, uint32_t count) {
  size_t slot = FindSlot(context, /*insert=*/false);
  if (slot == kNoSlot) {
    return;
  }
  if (age >= static_cast<uint32_t>(kAges)) {
    age = kAges - 1;
  }
  // Decrement age bucket (saturating at zero: unsynchronized allocation-side
  // increments mean counts can drift), increment age+1.
  std::atomic<uint32_t>* counts = counters_[slot].counts;
  uint32_t cur = counts[age].load(std::memory_order_relaxed);
  while (cur > 0 &&
         !counts[age].compare_exchange_weak(cur, cur >= count ? cur - count : 0,
                                            std::memory_order_relaxed)) {
  }
  uint32_t next = age + 1 < static_cast<uint32_t>(kAges) ? age + 1 : kAges - 1;
  counts[next].fetch_add(count, std::memory_order_relaxed);
}

void OldTable::SetDecision(uint32_t context, uint8_t gen) {
  size_t slot = FindSlot(context, /*insert=*/true);
  if (slot == kNoSlot) {
    // Row unreachable (table full): the fast path will keep returning 0
    // (young) for this context — the safe un-profiled baseline.
    return;
  }
  decisions_[slot].store(gen, std::memory_order_relaxed);
}

void OldTable::ClearDecisions() {
  for (size_t i = 0; i < capacity_; i++) {
    decisions_[i].store(0, std::memory_order_relaxed);
  }
}

uint8_t OldTable::DecisionFor(uint32_t context) const {
  size_t slot = FindSlotConst(context);
  return slot == kNoSlot ? 0 : decisions_[slot].load(std::memory_order_relaxed);
}

std::array<uint64_t, OldTable::kAges> OldTable::Row(uint32_t context) const {
  std::array<uint64_t, kAges> out = {};
  size_t slot = FindSlotConst(context);
  if (slot != kNoSlot) {
    for (int a = 0; a < kAges; a++) {
      out[a] = counters_[slot].counts[a].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void OldTable::ClearCounts() {
  for (size_t i = 0; i < capacity_; i++) {
    if (keys_[i].load(std::memory_order_relaxed) == kEmptyKey) {
      continue;
    }
    for (int a = 0; a < kAges; a++) {
      counters_[i].counts[a].store(0, std::memory_order_relaxed);
    }
  }
}

void OldTable::GrowForConflict() {
  size_t new_nominal = nominal_entries_ + kInitialEntries;
  size_t new_capacity = NextPow2(new_nominal);
  grow_count_++;
  nominal_entries_ = new_nominal;
  if (new_capacity == capacity_) {
    return;  // still fits in the current power-of-two backing arrays
  }
  auto fresh_keys = std::make_unique<std::atomic<uint32_t>[]>(new_capacity);
  auto fresh_counters = std::make_unique<CounterBlock[]>(new_capacity);
  auto fresh_decisions = std::make_unique<std::atomic<uint8_t>[]>(new_capacity);
  // Rehash (safepoint only; no concurrent access).
  size_t mask = new_capacity - 1;
  unsigned new_shift = ShiftFor(new_capacity);
  for (size_t i = 0; i < capacity_; i++) {
    uint32_t key = keys_[i].load(std::memory_order_relaxed);
    if (key == kEmptyKey) {
      continue;
    }
    size_t idx = HomeSlot(DecodeKey(key), new_shift);
    while (fresh_keys[idx].load(std::memory_order_relaxed) != kEmptyKey) {
      idx = (idx + 1) & mask;
    }
    fresh_keys[idx].store(key, std::memory_order_relaxed);
    for (int a = 0; a < kAges; a++) {
      fresh_counters[idx].counts[a].store(
          counters_[i].counts[a].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    fresh_decisions[idx].store(decisions_[i].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  }
  keys_ = std::move(fresh_keys);
  counters_ = std::move(fresh_counters);
  decisions_ = std::move(fresh_decisions);
  capacity_ = new_capacity;
  hash_shift_ = new_shift;
}

size_t OldTable::occupied() const {
  size_t n = 0;
  for (size_t i = 0; i < capacity_; i++) {
    if (keys_[i].load(std::memory_order_relaxed) != kEmptyKey) {
      n++;
    }
  }
  return n;
}

}  // namespace rolp
