#include "src/rolp/old_table.h"

#include <bit>

#include "src/util/check.h"
#include "src/util/fault_injection.h"
#include "src/util/random.h"

namespace rolp {

namespace {

size_t NextPow2(size_t n) { return std::bit_ceil(n); }

size_t HashContext(uint32_t context) { return static_cast<size_t>(Mix64(context)); }

}  // namespace

OldTable::OldTable(size_t entries) {
  nominal_entries_ = entries;
  capacity_ = NextPow2(entries);
  entries_ = std::make_unique<Entry[]>(capacity_);
}

OldTable::Entry* OldTable::FindEntry(uint32_t context, bool insert) {
  if (context == kInvalidContext) {
    return nullptr;  // EncodeKey would wrap to the empty sentinel
  }
  uint32_t key = EncodeKey(context);
  size_t mask = capacity_ - 1;
  size_t idx = HashContext(context) & mask;
  // Linear probing; cap the probe length so a pathologically full table
  // degrades to dropped samples instead of an unbounded scan.
  size_t max_probes = capacity_ < 4096 ? capacity_ : 4096;
  for (size_t probe = 0; probe < max_probes; probe++) {
    Entry& e = entries_[(idx + probe) & mask];
    uint32_t k = e.key.load(std::memory_order_acquire);
    if (k == key) {
      return &e;
    }
    if (k == kEmptyKey) {
      if (!insert) {
        return nullptr;
      }
      uint32_t expected = kEmptyKey;
      if (e.key.compare_exchange_strong(expected, key, std::memory_order_acq_rel)) {
        occupied_approx_.fetch_add(1, std::memory_order_relaxed);
        return &e;
      }
      if (expected == key) {
        return &e;  // another thread inserted the same context
      }
      // Slot stolen by a different context; keep probing.
    }
  }
  return nullptr;
}

void OldTable::RecordAllocation(uint32_t context) {
  if (context == kInvalidContext) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (ROLP_FAULT_POINT("rolp.old_table.drop")) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Keep load factor sane: drop samples rather than overfilling (insertions
  // only happen here; growth happens at safepoints).
  if (occupied_approx_.load(std::memory_order_relaxed) > capacity_ - capacity_ / 8) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Entry* e = FindEntry(context, /*insert=*/true);
  if (e == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  e->counts[0].fetch_add(1, std::memory_order_relaxed);
}

bool OldTable::Contains(uint32_t context) const {
  return FindEntryConst(context) != nullptr;
}

void OldTable::RecordSurvivor(uint32_t context, uint32_t age, uint32_t count) {
  Entry* e = FindEntry(context, /*insert=*/false);
  if (e == nullptr) {
    return;
  }
  if (age >= static_cast<uint32_t>(kAges)) {
    age = kAges - 1;
  }
  // Decrement age bucket (saturating at zero: unsynchronized allocation-side
  // increments mean counts can drift), increment age+1.
  uint32_t cur = e->counts[age].load(std::memory_order_relaxed);
  while (cur > 0 &&
         !e->counts[age].compare_exchange_weak(cur, cur >= count ? cur - count : 0,
                                               std::memory_order_relaxed)) {
  }
  uint32_t next = age + 1 < static_cast<uint32_t>(kAges) ? age + 1 : kAges - 1;
  e->counts[next].fetch_add(count, std::memory_order_relaxed);
}

std::array<uint64_t, OldTable::kAges> OldTable::Row(uint32_t context) const {
  std::array<uint64_t, kAges> out = {};
  const Entry* e = FindEntryConst(context);
  if (e != nullptr) {
    for (int a = 0; a < kAges; a++) {
      out[a] = e->counts[a].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void OldTable::ClearCounts() {
  for (size_t i = 0; i < capacity_; i++) {
    if (entries_[i].key.load(std::memory_order_relaxed) == kEmptyKey) {
      continue;
    }
    for (int a = 0; a < kAges; a++) {
      entries_[i].counts[a].store(0, std::memory_order_relaxed);
    }
  }
}

void OldTable::GrowForConflict() {
  size_t new_nominal = nominal_entries_ + kInitialEntries;
  size_t new_capacity = NextPow2(new_nominal);
  grow_count_++;
  nominal_entries_ = new_nominal;
  if (new_capacity == capacity_) {
    return;  // still fits in the current power-of-two backing array
  }
  auto fresh = std::make_unique<Entry[]>(new_capacity);
  // Rehash (safepoint only; no concurrent access).
  size_t mask = new_capacity - 1;
  for (size_t i = 0; i < capacity_; i++) {
    uint32_t key = entries_[i].key.load(std::memory_order_relaxed);
    if (key == kEmptyKey) {
      continue;
    }
    size_t idx = HashContext(DecodeKey(key)) & mask;
    while (fresh[idx].key.load(std::memory_order_relaxed) != kEmptyKey) {
      idx = (idx + 1) & mask;
    }
    fresh[idx].key.store(key, std::memory_order_relaxed);
    for (int a = 0; a < kAges; a++) {
      fresh[idx].counts[a].store(entries_[i].counts[a].load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
    }
  }
  entries_ = std::move(fresh);
  capacity_ = new_capacity;
}

size_t OldTable::occupied() const {
  size_t n = 0;
  for (size_t i = 0; i < capacity_; i++) {
    if (entries_[i].key.load(std::memory_order_relaxed) != kEmptyKey) {
      n++;
    }
  }
  return n;
}

}  // namespace rolp
