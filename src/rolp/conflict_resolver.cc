#include "src/rolp/conflict_resolver.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/fault_injection.h"
#include "src/util/log.h"

namespace rolp {

ConflictResolver::ConflictResolver(CallSiteControl* control, double p_fraction, uint64_t seed)
    : control_(control), p_(p_fraction), rng_(seed) {
  ROLP_CHECK(p_fraction > 0.0 && p_fraction <= 1.0);
}

void ConflictResolver::EnableSet(const std::vector<size_t>& sites, bool enabled) {
  for (size_t s : sites) {
    control_->SetCallSiteTracking(s, enabled);
    if (enabled) {
      enabled_.insert(s);
    } else {
      enabled_.erase(s);
    }
  }
}

std::vector<size_t> ConflictResolver::PickTrialSet() {
  size_t total = control_->NumProfilableCallSites();
  std::vector<size_t> untried;
  untried.reserve(total);
  for (size_t i = 0; i < total; i++) {
    if (tried_.find(i) == tried_.end()) {
      untried.push_back(i);
    }
  }
  if (untried.empty()) {
    return {};
  }
  size_t want = static_cast<size_t>(p_ * static_cast<double>(total));
  if (want < 1) {
    want = 1;
  }
  if (want > untried.size()) {
    want = untried.size();
  }
  // Partial Fisher-Yates over the untried pool.
  for (size_t i = 0; i < want; i++) {
    size_t j = i + static_cast<size_t>(rng_.NextBounded(untried.size() - i));
    std::swap(untried[i], untried[j]);
  }
  untried.resize(want);
  for (size_t s : untried) {
    tried_.insert(s);
  }
  return untried;
}

uint64_t ConflictResolver::WorstCaseRounds() const {
  size_t total = control_->NumProfilableCallSites();
  if (total == 0) {
    return 0;
  }
  size_t per_round = static_cast<size_t>(p_ * static_cast<double>(total));
  if (per_round < 1) {
    per_round = 1;
  }
  return (total + per_round - 1) / per_round;
}

void ConflictResolver::OnInference(const std::vector<uint32_t>& conflicted_sites) {
  bool conflicted = !conflicted_sites.empty() ||
                    ROLP_FAULT_POINT("rolp.resolver.spurious_conflict");
  if (conflicted) {
    saw_conflict_ever_ = true;
  }

  switch (phase_) {
    case Phase::kIdle:
    case Phase::kDone:
    case Phase::kExhausted:
      if (conflicted && phase_ != Phase::kExhausted) {
        conflicts_detected_ += conflicted_sites.size();
        if (phase_ == Phase::kDone) {
          // A fresh conflict after a completed resolution (e.g. workload
          // change): all sites are candidates again, minus what is already
          // tracking.
          tried_.clear();
          for (size_t s : enabled_) {
            tried_.insert(s);
          }
        }
        trial_ = PickTrialSet();
        if (trial_.empty()) {
          phase_ = Phase::kExhausted;
          return;
        }
        EnableSet(trial_, true);
        trial_rounds_++;
        phase_ = Phase::kTrying;
      }
      return;

    case Phase::kTrying:
      if (conflicted) {
        // This subset did not contain S; disable it and try the next one.
        EnableSet(trial_, false);
        trial_ = PickTrialSet();
        if (trial_.empty()) {
          ROLP_LOG_INFO("conflict resolver exhausted all call sites");
          phase_ = Phase::kExhausted;
          return;
        }
        EnableSet(trial_, true);
        trial_rounds_++;
        return;
      }
      // Resolved: S is contained in the trial; start narrowing.
      phase_ = Phase::kNarrowing;
      trying_second_half_ = false;
      narrow_disabled_.clear();
      [[fallthrough]];

    case Phase::kNarrowing:
      // Delta-debugging over the candidate set C (= trial_):
      //   split C into A (front) and B (back); run with B disabled.
      //   resolved     -> C := A, recurse
      //   conflicted   -> run with A disabled instead.
      //     resolved   -> C := B, recurse
      //     conflicted -> S spans both halves; keep C and stop.
      if (conflicted) {
        if (!trying_second_half_ && !narrow_disabled_.empty()) {
          // A alone was insufficient; try B alone.
          std::vector<size_t> front(trial_.begin(),
                                    trial_.end() - static_cast<long>(narrow_disabled_.size()));
          EnableSet(narrow_disabled_, true);
          EnableSet(front, false);
          std::swap(front, narrow_disabled_);
          trying_second_half_ = true;
          return;
        }
        // Both halves needed (or conflict with full C somehow): restore C.
        EnableSet(narrow_disabled_, true);
        narrow_disabled_.clear();
        conflicts_resolved_++;
        phase_ = Phase::kDone;
        return;
      }
      // Resolved with the current enabled half: it becomes the candidate set.
      if (!narrow_disabled_.empty()) {
        std::vector<size_t> kept;
        if (trying_second_half_) {
          // kept = currently enabled half = trial_ minus narrow_disabled_.
          for (size_t s : trial_) {
            bool disabled = false;
            for (size_t d : narrow_disabled_) {
              if (d == s) {
                disabled = true;
                break;
              }
            }
            if (!disabled) {
              kept.push_back(s);
            }
          }
        } else {
          kept.assign(trial_.begin(),
                      trial_.end() - static_cast<long>(narrow_disabled_.size()));
        }
        trial_ = std::move(kept);
        narrow_disabled_.clear();
        trying_second_half_ = false;
      }
      if (trial_.size() <= 1) {
        conflicts_resolved_++;
        phase_ = Phase::kDone;
        return;
      }
      // Disable the back half of C and test.
      narrow_disabled_.assign(trial_.begin() + static_cast<long>(trial_.size() / 2),
                              trial_.end());
      EnableSet(narrow_disabled_, false);
      trying_second_half_ = false;
      return;
  }
}

}  // namespace rolp
