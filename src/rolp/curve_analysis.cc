#include "src/rolp/curve_analysis.h"

namespace rolp {

CurveResult CurveAnalysis::Analyze(const std::array<uint64_t, 16>& counts) {
  CurveResult result;
  for (uint64_t c : counts) {
    result.total += c;
  }
  if (result.total < kMinSamples) {
    return result;
  }

  // Light 1-2-1 smoothing dampens single-bucket noise without shifting peaks.
  double smooth[16];
  for (int i = 0; i < 16; i++) {
    double left = i > 0 ? static_cast<double>(counts[i - 1]) : static_cast<double>(counts[i]);
    double right = i < 15 ? static_cast<double>(counts[i + 1]) : static_cast<double>(counts[i]);
    smooth[i] = (left + 2.0 * static_cast<double>(counts[i]) + right) / 4.0;
  }

  double floor = kMinPeakFraction * static_cast<double>(result.total);
  if (floor < 2.0) {
    floor = 2.0;
  }

  // Local maxima above the floor (plateaus count once, at their left edge).
  std::vector<int> maxima;
  for (int i = 0; i < 16; i++) {
    if (smooth[i] < floor) {
      continue;
    }
    bool left_ok = i == 0 || smooth[i] > smooth[i - 1];
    bool right_ok = i == 15 || smooth[i] >= smooth[i + 1];
    if (left_ok && right_ok) {
      maxima.push_back(i);
    }
  }
  if (maxima.empty()) {
    return result;
  }

  // Merge maxima that are not separated by a deep enough valley: keep the
  // higher one (paper: distinct triangles must be clearly separated).
  std::vector<int> peaks;
  peaks.push_back(maxima[0]);
  for (size_t m = 1; m < maxima.size(); m++) {
    int prev = peaks.back();
    int cur = maxima[m];
    double valley = smooth[prev];
    for (int i = prev; i <= cur; i++) {
      if (smooth[i] < valley) {
        valley = smooth[i];
      }
    }
    double smaller = smooth[prev] < smooth[cur] ? smooth[prev] : smooth[cur];
    if (valley <= kValleyFraction * smaller) {
      peaks.push_back(cur);
    } else if (smooth[cur] > smooth[prev]) {
      peaks.back() = cur;  // same triangle; keep the taller summit
    }
  }

  result.peaks = peaks;
  int best = peaks[0];
  for (int p : peaks) {
    if (smooth[p] > smooth[best]) {
      best = p;
    }
  }
  result.dominant_peak = best;
  return result;
}

}  // namespace rolp
