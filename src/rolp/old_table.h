// Object Lifetime Distribution (OLD) table — paper sections 3.3, 7.5, 7.6.
//
// Maps a 32-bit allocation context to 16 per-age object counters plus one
// pretenuring-decision byte. Mutators increment the age-0 counter at
// allocation time with no locking (relaxed atomics — the C++-legal rendering
// of HotSpot's deliberately unsynchronized increments) and read the decision
// byte from the same row, so the entire mutator-side profiling cost is one
// hash probe (RecordAllocationAndGen). GC workers never touch this table
// directly: they accumulate survivor updates in private tables that the
// profiler merges while the world is stopped (paper section 7.6).
//
// Layout is struct-of-arrays, sized for the probe:
//   * keys_       dense array of 4-byte keys — 16 keys per cache line, so
//                 linear probing touches one line in the common case;
//   * counters_   one cache-line-aligned 64-byte block (16 x 4-byte counters)
//                 per row, touched only on the age-0 increment;
//   * decisions_  dense array of decision bytes — 64 per cache line — written
//                 only at inference safepoints (RCU-style: the world is
//                 stopped, mutators republish their cached copies afterwards).
//
// The table is open-addressing with linear probing. It starts with 2^16
// entries (one per possible allocation-site id, ~4.5 MB) and grows by 2^16
// entries per detected conflict (paper section 7.5). Growth only happens at
// safepoints (inference time), when no mutator is running.
#ifndef SRC_ROLP_OLD_TABLE_H_
#define SRC_ROLP_OLD_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace rolp {

class OldTable {
 public:
  static constexpr int kAges = 16;
  static constexpr size_t kInitialEntries = 1u << 16;
  // The one context value the key encoding cannot represent (see EncodeKey).
  static constexpr uint32_t kInvalidContext = UINT32_MAX;
  // RecordAllocationAndGen result when the sample could not be recorded.
  static constexpr int kSampleDropped = -1;

  explicit OldTable(size_t entries = kInitialEntries);

  // --- Mutator path (unsynchronized, safe for concurrent callers) ---------
  // The fused fast path: one probe increments the age-0 count for this
  // context (inserting the row if absent) and returns the row's pretenuring
  // decision (0 = young, 1..14 = dynamic gen, 15 = old). Returns
  // kSampleDropped when the sample was shed (invalid context, table
  // critically full, or fault injection); callers treat that as "no
  // decision".
  int RecordAllocationAndGen(uint32_t context);

  // Increment-only variant (fault paths, tests, NG2C sample recording).
  void RecordAllocation(uint32_t context) { (void)RecordAllocationAndGen(context); }

  // Adds a batched count of `delta` allocations for the context (per-thread
  // sample-buffer flush). Inserts the row if absent; counts the whole batch
  // as dropped if it cannot.
  void AddAllocations(uint32_t context, uint32_t delta);

  // True if the context has a row (paper: survivors whose header context is
  // not present are discarded).
  bool Contains(uint32_t context) const;

  // --- Safepoint-only paths ------------------------------------------------
  // Applies one survivor: one object of `age` moved to `age+1` (saturating).
  void RecordSurvivor(uint32_t context, uint32_t age, uint32_t count);

  // Publishes a pretenuring decision into the context's row (inserting the
  // row if it is somehow absent). Safepoint only: mutators republish their
  // cached decisions after the pause, never during it.
  void SetDecision(uint32_t context, uint8_t gen);

  // Zeroes every decision byte (degraded mode / before republishing a fresh
  // decision set). Safepoint only.
  void ClearDecisions();

  // Reads a row's decision byte (0 if absent). Tests / introspection.
  uint8_t DecisionFor(uint32_t context) const;

  // Reads a row's counters (zeros if absent).
  std::array<uint64_t, kAges> Row(uint32_t context) const;

  // Iterates occupied rows: fn(context, counts).
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    for (size_t i = 0; i < capacity_; i++) {
      uint32_t key = keys_[i].load(std::memory_order_acquire);
      if (key == kEmptyKey) {
        continue;
      }
      std::array<uint64_t, kAges> counts;
      for (int a = 0; a < kAges; a++) {
        counts[a] = counters_[i].counts[a].load(std::memory_order_relaxed);
      }
      fn(DecodeKey(key), counts);
    }
  }

  // Zeroes all counters, keeping rows and decisions (paper section 4: the
  // table is cleared after each inference to ensure freshness).
  void ClearCounts();

  // Grows capacity by 2^16 entries (rounded up to a power of two internally).
  // Safepoint only.
  void GrowForConflict();

  size_t capacity() const { return capacity_; }
  size_t occupied() const;
  // Memory footprint as the paper reports it: 4 bytes * 16 columns for each
  // of the 2^16 * (1 + #conflicts) nominal entries (section 7.5).
  size_t PaperMemoryBytes() const { return nominal_entries_ * 4 * kAges; }
  // Actual allocated footprint of the backing arrays (keys + counters +
  // decisions).
  size_t ActualMemoryBytes() const {
    return capacity_ * (sizeof(std::atomic<uint32_t>) + sizeof(CounterBlock) +
                        sizeof(std::atomic<uint8_t>));
  }
  uint64_t dropped_samples() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t rejected_contexts() const { return rejected_.load(std::memory_order_relaxed); }
  size_t grow_count() const { return grow_count_; }

 private:
  // 16 x 4-byte counters == exactly one cache line per row.
  struct alignas(64) CounterBlock {
    std::atomic<uint32_t> counts[kAges] = {};
  };
  static_assert(sizeof(CounterBlock) == 64, "counter block must be one cache line");

  static constexpr uint32_t kEmptyKey = 0;
  // Context 0 would collide with the empty sentinel; encode key = context + 1.
  // That leaves context UINT32_MAX with no representable key (it would wrap
  // to kEmptyKey and corrupt the table), so it is rejected outright: FindSlot
  // refuses it, RecordAllocationAndGen counts it as rejected, Contains
  // reports false. Site 0xFFFF + tss 0xFFFF genuinely produces it, so "never
  // in practice" was wrong — see rejected_contexts().
  static uint32_t EncodeKey(uint32_t context) { return context + 1; }
  static uint32_t DecodeKey(uint32_t key) { return key - 1; }

  static constexpr size_t kNoSlot = SIZE_MAX;

  // Returns the slot index for the context, inserting if requested. kNoSlot
  // when absent (or table too full to insert). The load-factor gate applies
  // only to inserts: existing rows keep counting even when the table is
  // critically full.
  size_t FindSlot(uint32_t context, bool insert);
  size_t FindSlotConst(uint32_t context) const {
    return const_cast<OldTable*>(this)->FindSlot(context, false);
  }

  size_t capacity_;       // power of two
  unsigned hash_shift_;   // 64 - log2(capacity_): Fibonacci-hash top bits
  size_t nominal_entries_;  // what the paper-accounting reports (2^16 * (1+N))
  std::unique_ptr<std::atomic<uint32_t>[]> keys_;
  std::unique_ptr<CounterBlock[]> counters_;
  std::unique_ptr<std::atomic<uint8_t>[]> decisions_;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<size_t> occupied_approx_{0};
  size_t grow_count_ = 0;
};

}  // namespace rolp

#endif  // SRC_ROLP_OLD_TABLE_H_
