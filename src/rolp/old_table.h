// Object Lifetime Distribution (OLD) table — paper sections 3.3, 7.5, 7.6.
//
// Maps a 32-bit allocation context to 16 per-age object counters. Mutators
// increment the age-0 counter at allocation time with no locking (relaxed
// atomics — the C++-legal rendering of HotSpot's deliberately unsynchronized
// increments). GC workers never touch this table directly: they accumulate
// survivor updates in private tables that the profiler merges while the world
// is stopped (paper section 7.6).
//
// The table is open-addressing with linear probing. It starts with 2^16
// entries (one per possible allocation-site id, ~4.5 MB) and grows by 2^16
// entries per detected conflict (paper section 7.5). Growth only happens at
// safepoints (inference time), when no mutator is running.
#ifndef SRC_ROLP_OLD_TABLE_H_
#define SRC_ROLP_OLD_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace rolp {

class OldTable {
 public:
  static constexpr int kAges = 16;
  static constexpr size_t kInitialEntries = 1u << 16;
  // The one context value the key encoding cannot represent (see EncodeKey).
  static constexpr uint32_t kInvalidContext = UINT32_MAX;

  explicit OldTable(size_t entries = kInitialEntries);

  // --- Mutator path (unsynchronized, safe for concurrent callers) ---------
  // Increments the age-0 count for this context, inserting the row if absent.
  // Drops the sample (and counts it) if the table is critically full.
  void RecordAllocation(uint32_t context);

  // True if the context has a row (paper: survivors whose header context is
  // not present are discarded).
  bool Contains(uint32_t context) const;

  // --- Safepoint-only paths ------------------------------------------------
  // Applies one survivor: one object of `age` moved to `age+1` (saturating).
  void RecordSurvivor(uint32_t context, uint32_t age, uint32_t count);

  // Reads a row's counters (zeros if absent).
  std::array<uint64_t, kAges> Row(uint32_t context) const;

  // Iterates occupied rows: fn(context, counts).
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    for (size_t i = 0; i < capacity_; i++) {
      uint32_t key = entries_[i].key.load(std::memory_order_acquire);
      if (key == kEmptyKey) {
        continue;
      }
      std::array<uint64_t, kAges> counts;
      for (int a = 0; a < kAges; a++) {
        counts[a] = entries_[i].counts[a].load(std::memory_order_relaxed);
      }
      fn(DecodeKey(key), counts);
    }
  }

  // Zeroes all counters, keeping rows (paper section 4: the table is cleared
  // after each inference to ensure freshness).
  void ClearCounts();

  // Grows capacity by 2^16 entries (rounded up to a power of two internally).
  // Safepoint only.
  void GrowForConflict();

  size_t capacity() const { return capacity_; }
  size_t occupied() const;
  // Memory footprint as the paper reports it: 4 bytes * 16 columns for each
  // of the 2^16 * (1 + #conflicts) nominal entries (section 7.5).
  size_t PaperMemoryBytes() const { return nominal_entries_ * 4 * kAges; }
  // Actual allocated footprint of the backing array.
  size_t ActualMemoryBytes() const { return capacity_ * sizeof(Entry); }
  uint64_t dropped_samples() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t rejected_contexts() const { return rejected_.load(std::memory_order_relaxed); }
  size_t grow_count() const { return grow_count_; }

 private:
  struct Entry {
    std::atomic<uint32_t> key{0};
    std::atomic<uint32_t> counts[kAges] = {};
  };

  static constexpr uint32_t kEmptyKey = 0;
  // Context 0 would collide with the empty sentinel; encode key = context + 1.
  // That leaves context UINT32_MAX with no representable key (it would wrap
  // to kEmptyKey and corrupt the table), so it is rejected outright: FindEntry
  // refuses it, RecordAllocation counts it as rejected, Contains reports
  // false. Site 0xFFFF + tss 0xFFFF genuinely produces it, so "never in
  // practice" was wrong — see rejected_contexts().
  static uint32_t EncodeKey(uint32_t context) { return context + 1; }
  static uint32_t DecodeKey(uint32_t key) { return key - 1; }

  // Returns the entry for the context, inserting if requested. nullptr when
  // absent (or table too full to insert).
  Entry* FindEntry(uint32_t context, bool insert);
  const Entry* FindEntryConst(uint32_t context) const {
    return const_cast<OldTable*>(this)->FindEntry(context, false);
  }

  size_t capacity_;       // power of two
  size_t nominal_entries_;  // what the paper-accounting reports (2^16 * (1+N))
  std::unique_ptr<Entry[]> entries_;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<size_t> occupied_approx_{0};
  size_t grow_count_ = 0;
};

}  // namespace rolp

#endif  // SRC_ROLP_OLD_TABLE_H_
