// The ROLP profiler facade.
//
// Mutator side (called by the runtime's allocation path):
//   * RecordAllocation(context): OLD-table age-0 increment
//   * TargetGen(context): decision lookup feeding NG2C pretenuring
//
// Collector side (ProfilerHooks, all called with the world stopped):
//   * OnSurvivor: per-GC-worker private table updates (paper section 7.6)
//   * OnGcEnd: private-table merge + every-16-cycles lifetime inference
//     (section 4), conflict resolution (section 5), survivor-tracking
//     shut-off (section 7.4)
//   * OnGenFragmentation: estimated-lifetime demotion (section 6)
#ifndef SRC_ROLP_PROFILER_H_
#define SRC_ROLP_PROFILER_H_

#include <array>
#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/gc/profiler_hooks.h"
#include "src/rolp/conflict_resolver.h"
#include "src/rolp/curve_analysis.h"
#include "src/rolp/old_table.h"
#include "src/rolp/package_filter.h"

namespace rolp {

struct RolpConfig {
  // Run inference every this many GC cycles (paper: 16, the max object age).
  uint32_t inference_period = 16;
  // P: fraction of profilable call sites enabled per conflict-resolution
  // round (paper recommends <= 0.20).
  double conflict_p = 0.20;
  // Dynamically shut off survivor tracking when decisions are stable
  // (paper section 7.4).
  bool auto_survivor_tracking = true;
  // Re-enable survivor tracking when the average pause regresses by more
  // than this fraction over the last value seen while tracking was active.
  double pause_regression_threshold = 0.10;
  size_t old_table_entries = OldTable::kInitialEntries;
  uint32_t max_gc_workers = 16;
  // Dynamic generations span 1..14; estimated ages clamp into this range
  // (age 15 maps to the old generation).
  uint8_t max_gen = 14;
  uint64_t seed = 0x5eed;
};

class Profiler : public ProfilerHooks {
 public:
  explicit Profiler(const RolpConfig& config);
  ~Profiler() override;

  // The runtime's JIT engine registers itself so the conflict resolver can
  // toggle call-site tracking. May be null (e.g. unit tests).
  void SetCallSiteControl(CallSiteControl* control);

  // --- Mutator-side API ----------------------------------------------------
  void RecordAllocation(uint32_t context) { old_table_.RecordAllocation(context); }

  // Estimated target generation for an allocation context: 0 = young,
  // 1..14 = dynamic generation, 15 = old.
  uint8_t TargetGen(uint32_t context) const {
    const DecisionMap* d = decisions_.load(std::memory_order_acquire);
    auto it = d->find(context);
    return it == d->end() ? 0 : it->second;
  }

  // --- ProfilerHooks (world stopped) ---------------------------------------
  bool SurvivorTrackingEnabled() const override {
    return survivor_tracking_.load(std::memory_order_relaxed);
  }
  void OnSurvivor(uint32_t worker_id, uint64_t old_mark) override;
  void OnGcEnd(const GcEndInfo& info) override;
  void OnGenFragmentation(uint8_t gen, double live_ratio) override;

  // --- Introspection (tables, benches, tests) ------------------------------
  OldTable& old_table() { return old_table_; }
  const RolpConfig& config() const { return config_; }
  ConflictResolver* resolver() { return resolver_.get(); }
  uint64_t inferences_run() const { return inferences_; }
  uint64_t conflicts_total() const { return conflicts_total_; }
  uint64_t decisions_count() const {
    return decisions_.load(std::memory_order_acquire)->size();
  }
  uint64_t survivors_seen() const { return survivors_seen_.load(std::memory_order_relaxed); }
  uint64_t survivors_skipped_biased() const {
    return survivors_skipped_biased_.load(std::memory_order_relaxed);
  }
  uint64_t survivor_tracking_toggles() const { return tracking_toggles_; }
  // First GC cycle at which a non-empty decision set existed (warmup metric,
  // Fig. 10); 0 if never.
  uint64_t first_decision_cycle() const { return first_decision_cycle_; }
  std::unordered_map<uint32_t, uint8_t> DecisionsSnapshot() const {
    return *decisions_.load(std::memory_order_acquire);
  }
  // Force one inference now (tests).
  void RunInferenceNow();

 private:
  using DecisionMap = std::unordered_map<uint32_t, uint8_t>;
  // worker -> context -> survivor counts by (pre-increment) age
  using WorkerTable = std::unordered_map<uint32_t, std::array<uint32_t, 16>>;

  void MergeWorkerTables();
  void RunInference();

  RolpConfig config_;
  OldTable old_table_;
  std::unique_ptr<ConflictResolver> resolver_;
  CallSiteControl* callsites_ = nullptr;

  std::vector<WorkerTable> worker_tables_;

  std::atomic<DecisionMap*> decisions_;
  std::vector<std::unique_ptr<DecisionMap>> decision_history_;  // owns maps

  std::atomic<bool> survivor_tracking_{true};
  double last_tracking_avg_pause_ns_ = 0.0;
  double recent_pause_ema_ns_ = 0.0;
  bool decisions_changed_since_last_inference_ = true;

  uint64_t inferences_ = 0;
  uint64_t conflicts_total_ = 0;
  uint64_t tracking_toggles_ = 0;
  uint64_t first_decision_cycle_ = 0;
  std::atomic<uint64_t> survivors_seen_{0};
  std::atomic<uint64_t> survivors_skipped_biased_{0};
};

}  // namespace rolp

#endif  // SRC_ROLP_PROFILER_H_
