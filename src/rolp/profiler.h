// The ROLP profiler facade.
//
// Mutator side (called by the runtime's allocation path):
//   * RecordAllocationWithGen(context, buffer): the allocation fast lane —
//     one OLD-table probe (usually absorbed by the per-thread sample buffer)
//     both records the sample and returns the pretenuring decision stored in
//     the row (DESIGN.md §9)
//   * RecordAllocation(context): increment-only variant (NG2C sample feed)
//
// Collector side (ProfilerHooks, all called with the world stopped):
//   * OnSurvivor: per-GC-worker private table updates (paper section 7.6)
//   * OnGcEnd: private-table merge + every-16-cycles lifetime inference
//     (section 4), conflict resolution (section 5), survivor-tracking
//     shut-off (section 7.4)
//   * OnGenFragmentation: estimated-lifetime demotion (section 6)
#ifndef SRC_ROLP_PROFILER_H_
#define SRC_ROLP_PROFILER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/gc/profiler_hooks.h"
#include "src/rolp/alloc_buffer.h"
#include "src/rolp/conflict_resolver.h"
#include "src/rolp/curve_analysis.h"
#include "src/rolp/old_table.h"
#include "src/rolp/package_filter.h"

namespace rolp {

struct RolpConfig {
  // Run inference every this many GC cycles (paper: 16, the max object age).
  uint32_t inference_period = 16;
  // P: fraction of profilable call sites enabled per conflict-resolution
  // round (paper recommends <= 0.20).
  double conflict_p = 0.20;
  // Dynamically shut off survivor tracking when decisions are stable
  // (paper section 7.4).
  bool auto_survivor_tracking = true;
  // Re-enable survivor tracking when the average pause regresses by more
  // than this fraction over the last value seen while tracking was active.
  double pause_regression_threshold = 0.10;
  size_t old_table_entries = OldTable::kInitialEntries;
  // Per-thread allocation sample buffer (fast lane, DESIGN.md §9): number of
  // direct-mapped slots, rounded up to a power of two. 0 disables buffering
  // (every profiled allocation probes the shared table directly).
  uint32_t alloc_buffer_slots = AllocBuffer::kDefaultSlots;
  uint32_t max_gc_workers = 16;
  // Dynamic generations span 1..14; estimated ages clamp into this range
  // (age 15 maps to the old generation).
  uint8_t max_gen = 14;
  uint64_t seed = 0x5eed;

  // --- Degraded-mode thresholds (robustness) -------------------------------
  // Enter degraded mode when the OLD table drops more than this many samples
  // within a single GC cycle (saturation). An absolute per-cycle delta rather
  // than a drop *ratio*: a ratio would need a total-samples counter on the
  // mutator hot path.
  uint64_t degrade_dropped_per_cycle = 4096;
  // Leave degraded mode after this many consecutive cycles with no (or
  // negligible) new drops.
  uint32_t rearm_clean_cycles = 8;
  // Enter degraded mode when fragmentation feedback demotes contexts this
  // many times within one inference window (decision churn: the profiler is
  // fighting itself).
  uint32_t degrade_demotion_churn = 8;
  // A per-age survivor count above this is implausible (corrupt header or
  // counter): OldTable counts are 32-bit, so 2^31 within one 16-cycle window
  // cannot come from real survivors.
  uint64_t implausible_count = 1ull << 31;
  // After re-arming, suppress the stable-decisions tracking shut-off for this
  // many inferences. Degraded mode cleared both decisions and histograms, so
  // the first post-re-arm inferences see a stable *empty* state; shutting
  // tracking off on that would starve the profiler permanently.
  uint32_t rearm_grace_inferences = 4;
  // Enter degraded mode after this many GC-watchdog overruns observed while
  // survivor tracking was active (ladder rung 4: if GC keeps blowing its
  // deadline while we are profiling survivors, stop adding profiler weight
  // to the pause).
  uint32_t degrade_overrun_threshold = 2;
  // Run lifetime inference on a background thread: OnGcEnd only snapshots the
  // OLD table at an inference boundary; the analysis happens off-pause and the
  // resulting decisions are staged for publication at the NEXT safepoint.
  // Default off so directly-constructed profilers (unit tests) keep the
  // synchronous run-inference-inside-OnGcEnd semantics; the VM wires this from
  // ROLP_ASYNC_INFERENCE (default on).
  bool async_inference = false;
};

// Why the profiler last entered degraded mode.
enum class DegradeReason : uint8_t {
  kNone,
  kOldTableSaturation,    // dropped-sample rate over threshold
  kImplausibleHistogram,  // per-age count beyond any physical rate
  kDemotionChurn,         // fragmentation feedback thrashing decisions
  kGcOverrun,             // watchdog overruns correlated with survivor tracking
  kHeapCorruption,        // in-pause heap verification found (and repaired) damage
  kHeapPressure,          // governor at/above the degrade watermark
};

const char* DegradeReasonName(DegradeReason reason);

class Profiler : public ProfilerHooks {
 public:
  explicit Profiler(const RolpConfig& config);
  ~Profiler() override;

  // The runtime's JIT engine registers itself so the conflict resolver can
  // toggle call-site tracking. May be null (e.g. unit tests).
  void SetCallSiteControl(CallSiteControl* control);

  // --- Mutator-side API ----------------------------------------------------
  // The fast lane: records one allocation and returns the estimated target
  // generation (0 = young, 1..14 = dynamic generation, 15 = old) in a single
  // OLD-table probe — or no probe at all when the caller's sample buffer
  // absorbs the increment.
  uint8_t RecordAllocationWithGen(uint32_t context, AllocBuffer* buffer) {
    if (buffer != nullptr && buffer->enabled()) {
      return buffer->Record(old_table_, context);
    }
    int r = old_table_.RecordAllocationAndGen(context);
    return r < 0 ? 0 : static_cast<uint8_t>(r);
  }

  // Increment-only variant: feeds the OLD table without consulting decisions
  // (NG2C mode, where the hand-placed annotation decides the generation).
  void RecordAllocation(uint32_t context) { old_table_.RecordAllocation(context); }

  // Decision lookup against the safepoint-side source of truth (the
  // DecisionMap). The allocation hot path no longer calls this — it reads the
  // decision byte fused into the OLD-table row; this survives for tests,
  // introspection, and safepoint-side consumers.
  uint8_t TargetGen(uint32_t context) const {
    const DecisionMap* d = decisions_.load(std::memory_order_acquire);
    auto it = d->find(context);
    return it == d->end() ? 0 : it->second;
  }

  // --- ProfilerHooks (world stopped) ---------------------------------------
  bool SurvivorTrackingEnabled() const override {
    return survivor_tracking_.load(std::memory_order_relaxed);
  }
  void OnSurvivor(uint32_t worker_id, uint64_t old_mark) override;
  void OnGcEnd(const GcEndInfo& info) override;
  void OnGenFragmentation(uint8_t gen, double live_ratio) override;
  void OnGcOverrun(bool survivor_tracking_active) override;
  void OnHeapCorruption(size_t finding_count) override;
  // Heap-pressure governor rung 3 (called world-stopped from VM::OnGcEnd):
  // under_pressure=true sheds the profiler's pause and memory weight by
  // entering degraded mode; re-arm is held off until the pressure clears AND
  // the usual quiet condition holds for rearm_clean_cycles cycles.
  void OnHeapPressure(bool under_pressure);

  // --- Introspection (tables, benches, tests) ------------------------------
  OldTable& old_table() { return old_table_; }
  const RolpConfig& config() const { return config_; }
  ConflictResolver* resolver() { return resolver_.get(); }
  uint64_t inferences_run() const { return inferences_; }
  uint64_t conflicts_total() const { return conflicts_total_; }
  uint64_t decisions_count() const {
    return decisions_.load(std::memory_order_acquire)->size();
  }
  uint64_t survivors_seen() const { return survivors_seen_.load(std::memory_order_relaxed); }
  uint64_t survivors_skipped_biased() const {
    return survivors_skipped_biased_.load(std::memory_order_relaxed);
  }
  uint64_t survivor_tracking_toggles() const { return tracking_toggles_; }
  // Degraded mode: profiling is suspended (decisions cleared, TargetGen -> 0,
  // survivor tracking off) until the trouble signal stays quiet for
  // rearm_clean_cycles GC cycles.
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }
  uint64_t degraded_entries() const { return degraded_entries_; }
  DegradeReason last_degrade_reason() const { return last_degrade_reason_; }
  uint64_t survivors_dropped() const {
    return survivors_dropped_.load(std::memory_order_relaxed);
  }
  // Heap-verifier corruption reports delivered via OnHeapCorruption.
  uint64_t heap_corruption_reports() const { return heap_corruption_reports_; }
  // First GC cycle at which a non-empty decision set existed (warmup metric,
  // Fig. 10); 0 if never.
  uint64_t first_decision_cycle() const { return first_decision_cycle_; }
  std::unordered_map<uint32_t, uint8_t> DecisionsSnapshot() const {
    return *decisions_.load(std::memory_order_acquire);
  }
  // Retired decision maps awaiting safepoint reclamation (tests: bounded).
  size_t retired_decision_maps() const { return retired_decisions_.size(); }
  // Force one inference now (tests). Always synchronous, even with
  // async_inference on; any in-flight async snapshot becomes stale.
  void RunInferenceNow();
  // Blocks until the background inference thread has no snapshot in flight
  // (benches/tests). No-op when async inference is off.
  void WaitForStagedInference();
  // Async-inference introspection. Started counts snapshots handed to the
  // background thread; discarded counts staged outputs dropped because the
  // table epoch moved (degraded-mode transition, demotion, sync inference)
  // between snapshot and the publish safepoint.
  uint64_t async_inferences_started() const;
  uint64_t stale_inferences_discarded() const;
  // True while an analyzed decision set is staged awaiting the next safepoint.
  bool staged_inference_pending() const;

  // Writes a human-readable introspection dump: OLD-table stats, degraded
  // state, the current DecisionMap, and every occupied row with its age
  // histogram (rows and decisions sorted by context, so output is
  // deterministic for a given profiler state). Call from a quiesced state
  // (no mutators allocating, no GC running) for an exact snapshot; the VM
  // wires ROLP_DUMP_OLD_TABLE=<path> to this at teardown.
  void DumpIntrospection(std::FILE* out) const;
  // DumpIntrospection to a file; returns false (and logs) on I/O failure.
  bool WriteIntrospection(const std::string& path) const;

 private:
  using DecisionMap = std::unordered_map<uint32_t, uint8_t>;
  // worker -> context -> survivor counts by (pre-increment) age
  using WorkerTable = std::unordered_map<uint32_t, std::array<uint32_t, 16>>;

  // --- Off-pause inference pipeline -----------------------------------------
  // The analysis is a pure function over an immutable snapshot, so it can run
  // either inline (sync mode) or on the background thread (async mode):
  //   snapshot (safepoint) -> AnalyzeRows (anywhere) -> apply (safepoint).
  // `epoch` stamps the snapshot; any safepoint-side mutation of the decision
  // set or histograms bumps table_epoch_, so a staged output whose epoch no
  // longer matches is discarded instead of resurrecting pre-mutation state.
  struct InferenceInput {
    uint64_t epoch = 0;
    uint64_t seq = 0;  // inference ordinal (logging only)
    std::vector<std::pair<uint32_t, std::array<uint64_t, 16>>> rows;
    // Decisions at snapshot time, by pointer: copying the map would put its
    // full cost back inside the pause. The pointee stays valid for the whole
    // analysis because decision maps are only freed by ReclaimRetiredDecisions,
    // which defers while an analysis is in flight.
    const DecisionMap* base = nullptr;
  };
  struct InferenceOutput {
    uint64_t epoch = 0;
    bool implausible = false;
    // next != base, computed during analysis so the publish safepoint does
    // not pay a full map comparison. Valid under the epoch guard: no publish
    // separated the snapshot from the apply, so base still equals the live
    // map.
    bool changed = false;
    std::unique_ptr<DecisionMap> next;
    std::vector<uint32_t> conflicted_sites;
  };

  void MergeWorkerTables(WorkerPool* workers);
  void RunInference();
  InferenceInput SnapshotInferenceInput();
  InferenceOutput AnalyzeRows(const InferenceInput& in) const;
  void ApplyInferenceOutput(InferenceOutput out);
  // Snapshots the OLD table at an inference boundary and wakes the background
  // thread; skipped (no-op) while a previous snapshot is still in the pipe.
  void StartAsyncInference();
  // Publishes a staged output if its epoch is still current; returns whether
  // decisions were applied. World stopped.
  bool TryPublishStagedInference();
  void InferenceThreadLoop();

  // Publishes `next` as the current decision set: swaps the safepoint-side
  // map, writes the decisions back into OLD-table rows (the fast lane's
  // source), and retires the previous map for reclamation at the next
  // safepoint. World stopped.
  void PublishDecisions(std::unique_ptr<DecisionMap> next);
  // Frees retired maps. Safe once a safepoint separates retirement from the
  // last possible mutator read (TargetGen holds the pointer only within one
  // call, never across a pause). Defers while a background analysis is in
  // flight: its snapshot references a decision map by pointer, and that map
  // may have been retired since.
  void ReclaimRetiredDecisions();

  // Both run with the world stopped (called from the GC hooks only).
  void EnterDegraded(DegradeReason reason);
  void ExitDegraded();
  void PublishEmptyDecisions();

  RolpConfig config_;
  OldTable old_table_;
  std::unique_ptr<ConflictResolver> resolver_;
  CallSiteControl* callsites_ = nullptr;

  std::vector<WorkerTable> worker_tables_;

  std::atomic<DecisionMap*> decisions_;    // points at live_decisions_
  std::unique_ptr<DecisionMap> live_decisions_;
  // Maps superseded since the last safepoint reclamation. A mutator stuck
  // inside TargetGen can still be reading the most recently retired map, so
  // retirees are only freed at the next world-stopped point (OnGcEnd /
  // RunInferenceNow) — bounded, unlike the retired-forever history this
  // replaces.
  std::vector<std::unique_ptr<DecisionMap>> retired_decisions_;

  std::atomic<bool> survivor_tracking_{true};
  double last_tracking_avg_pause_ns_ = 0.0;
  double recent_pause_ema_ns_ = 0.0;
  bool decisions_changed_since_last_inference_ = true;

  uint64_t inferences_ = 0;
  uint64_t conflicts_total_ = 0;
  uint64_t tracking_toggles_ = 0;
  uint64_t first_decision_cycle_ = 0;
  std::atomic<uint64_t> survivors_seen_{0};
  std::atomic<uint64_t> survivors_skipped_biased_{0};
  std::atomic<uint64_t> survivors_dropped_{0};

  // Degraded-mode state (mutated only with the world stopped).
  std::atomic<bool> degraded_{false};
  uint64_t degraded_entries_ = 0;
  DegradeReason last_degrade_reason_ = DegradeReason::kNone;
  uint64_t last_dropped_seen_ = 0;  // dropped_samples() at the previous GC end
  uint32_t clean_cycles_ = 0;       // consecutive quiet cycles while degraded
  uint32_t demotion_churn_ = 0;     // demotions since the last inference
  uint32_t rearm_grace_left_ = 0;   // inferences left with shut-off suppressed
  uint32_t overruns_while_tracking_ = 0;  // watchdog overruns with tracking on
  uint64_t heap_corruption_reports_ = 0;  // OnHeapCorruption calls (world stopped)
  uint64_t last_corruption_seen_ = 0;     // reports at the previous GC end
  bool heap_pressure_ = false;            // governor >= degrade rung right now

  // Off-pause inference state. table_epoch_ is only touched by safepoint-side
  // code; everything else crossing the background thread sits under inf_mu_.
  uint64_t table_epoch_ = 1;
  size_t last_snapshot_rows_ = 0;  // reserve hint for the next snapshot
  mutable std::mutex inf_mu_;
  std::condition_variable inf_cv_;       // wakes the thread: input or stop
  std::condition_variable inf_done_cv_;  // wakes waiters: analysis finished
  bool inf_stop_ = false;
  bool inf_busy_ = false;  // snapshot handed off, analysis not yet staged
  std::unique_ptr<InferenceInput> inf_input_;
  std::unique_ptr<InferenceOutput> inf_staged_;
  uint64_t async_inferences_started_ = 0;
  uint64_t stale_inferences_discarded_ = 0;
  std::thread inf_thread_;  // last member: joined in dtor before state dies
};

}  // namespace rolp

#endif  // SRC_ROLP_PROFILER_H_
