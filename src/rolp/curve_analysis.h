// Object-lifetime curve analysis — paper section 4.
//
// Each OLD-table row is a histogram of object counts by age. The paper
// observes these curves are near-triangular with a single peak at the age
// where most objects die; the peak's age is the estimated lifetime. Multiple
// separated peaks mean an allocation-context conflict: the same allocation
// site reached through call paths producing different lifetimes.
#ifndef SRC_ROLP_CURVE_ANALYSIS_H_
#define SRC_ROLP_CURVE_ANALYSIS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rolp {

struct CurveResult {
  // Ages of detected peaks, ascending. Empty if the row has too few samples.
  std::vector<int> peaks;
  uint64_t total = 0;

  bool HasSignal() const { return !peaks.empty(); }
  bool IsConflict() const { return peaks.size() >= 2; }
  // Estimated lifetime: the age of the dominant (highest) peak.
  int EstimatedLifetime() const { return peaks.empty() ? 0 : dominant_peak; }

  int dominant_peak = 0;
};

class CurveAnalysis {
 public:
  // Minimum samples in a row before we trust it at all.
  static constexpr uint64_t kMinSamples = 16;
  // A peak must hold at least this fraction of the row total.
  static constexpr double kMinPeakFraction = 0.05;
  // Two maxima are distinct peaks only if the valley between them drops below
  // this fraction of the smaller maximum.
  static constexpr double kValleyFraction = 0.5;

  static CurveResult Analyze(const std::array<uint64_t, 16>& counts);
};

}  // namespace rolp

#endif  // SRC_ROLP_CURVE_ANALYSIS_H_
