#include "src/rolp/profiler.h"

#include "src/heap/object.h"
#include "src/util/check.h"
#include "src/util/log.h"

namespace rolp {

Profiler::Profiler(const RolpConfig& config)
    : config_(config), old_table_(config.old_table_entries) {
  worker_tables_.resize(config.max_gc_workers);
  auto initial = std::make_unique<DecisionMap>();
  decisions_.store(initial.get(), std::memory_order_release);
  decision_history_.push_back(std::move(initial));
}

Profiler::~Profiler() = default;

void Profiler::SetCallSiteControl(CallSiteControl* control) {
  callsites_ = control;
  if (control != nullptr) {
    resolver_ = std::make_unique<ConflictResolver>(control, config_.conflict_p, config_.seed);
  }
}

void Profiler::OnSurvivor(uint32_t worker_id, uint64_t old_mark) {
  ROLP_DCHECK(worker_id < worker_tables_.size());
  // Paper section 3.2.2: a biased-locked object's upper header bits hold a
  // thread pointer, not an allocation context; discard it.
  if (markword::IsBiased(old_mark)) {
    survivors_skipped_biased_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint32_t context = markword::Context(old_mark);
  if (context == 0) {
    return;  // allocated by unprofiled (cold) code
  }
  // Paper section 3.3: contexts not present in the OLD table are discarded —
  // they may be residue of a revoked biased lock or of cleared profiling.
  if (!old_table_.Contains(context)) {
    return;
  }
  uint32_t age = markword::Age(old_mark);
  worker_tables_[worker_id][context][age]++;
  survivors_seen_.fetch_add(1, std::memory_order_relaxed);
}

void Profiler::MergeWorkerTables() {
  for (WorkerTable& table : worker_tables_) {
    for (auto& [context, by_age] : table) {
      for (uint32_t age = 0; age < 16; age++) {
        if (by_age[age] > 0) {
          old_table_.RecordSurvivor(context, age, by_age[age]);
        }
      }
    }
    table.clear();
  }
}

void Profiler::OnGcEnd(const GcEndInfo& info) {
  MergeWorkerTables();

  // Pause EMA drives the survivor-tracking re-enable heuristic.
  double pause = static_cast<double>(info.pause_ns);
  recent_pause_ema_ns_ =
      recent_pause_ema_ns_ == 0.0 ? pause : 0.8 * recent_pause_ema_ns_ + 0.2 * pause;

  if (config_.inference_period != 0 && info.gc_cycle % config_.inference_period == 0) {
    RunInference();
    if (first_decision_cycle_ == 0 &&
        !decisions_.load(std::memory_order_relaxed)->empty()) {
      first_decision_cycle_ = info.gc_cycle;
    }
  }

  if (config_.auto_survivor_tracking && !survivor_tracking_.load(std::memory_order_relaxed)) {
    // Paper section 7.4: re-enable survivor tracking if average pauses
    // regressed more than the threshold over the last tracked value.
    if (last_tracking_avg_pause_ns_ > 0.0 &&
        recent_pause_ema_ns_ >
            last_tracking_avg_pause_ns_ * (1.0 + config_.pause_regression_threshold)) {
      survivor_tracking_.store(true, std::memory_order_relaxed);
      tracking_toggles_++;
      ROLP_LOG_INFO("survivor tracking re-enabled (pause regression)");
    }
  }
}

void Profiler::RunInferenceNow() { RunInference(); }

void Profiler::RunInference() {
  inferences_++;

  const DecisionMap* current = decisions_.load(std::memory_order_relaxed);
  auto next = std::make_unique<DecisionMap>(*current);

  std::vector<uint32_t> conflicted_sites;
  old_table_.ForEachRow([&](uint32_t context, const std::array<uint64_t, 16>& counts) {
    // Contexts that already pretenure produce no young-survivor signal (their
    // objects never pass through the young generation again), so their rows
    // degenerate to an age-0 spike. Paper section 6: curves can only raise an
    // estimate; lowering happens through the fragmentation feedback
    // (OnGenFragmentation), never by re-reading a starved curve.
    auto existing = next->find(context);
    CurveResult curve = CurveAnalysis::Analyze(counts);
    if (!curve.HasSignal()) {
      return;
    }
    if (existing == next->end() && curve.IsConflict()) {
      conflicted_sites.push_back(markword::ContextSite(context));
      return;  // no decision from an ambiguous curve
    }
    int lifetime = curve.EstimatedLifetime();
    uint8_t gen;
    if (lifetime == 0) {
      gen = 0;  // dies young: keep in young generation
    } else if (lifetime >= 15) {
      gen = 15;  // effectively immortal: old generation
    } else {
      gen = static_cast<uint8_t>(lifetime);
      if (gen > config_.max_gen) {
        gen = config_.max_gen;
      }
    }
    if (existing != next->end()) {
      if (gen > existing->second) {
        existing->second = gen;  // lifetime increased (section 6, case 1)
      }
      return;
    }
    if (gen > 0) {
      (*next)[context] = gen;
    }
  });

  if (LogEnabled(LogLevel::kInfo)) {
    uint64_t rows = 0;
    uint64_t with_signal = 0;
    old_table_.ForEachRow([&](uint32_t ctx, const std::array<uint64_t, 16>& counts) {
      rows++;
      CurveResult c = CurveAnalysis::Analyze(counts);
      if (c.HasSignal()) {
        with_signal++;
        ROLP_LOG_INFO(
            "inference %llu: ctx site=%u tss=%u peak=%d conflict=%d total=%llu "
            "[%llu %llu %llu %llu %llu %llu %llu %llu]",
            (unsigned long long)inferences_, markword::ContextSite(ctx),
            markword::ContextTss(ctx), c.EstimatedLifetime(), c.IsConflict() ? 1 : 0,
            (unsigned long long)c.total, (unsigned long long)counts[0],
            (unsigned long long)counts[1], (unsigned long long)counts[2],
            (unsigned long long)counts[3], (unsigned long long)counts[4],
            (unsigned long long)counts[5], (unsigned long long)counts[6],
            (unsigned long long)counts[7]);
      }
    });
    ROLP_LOG_INFO("inference %llu: rows=%llu signal=%llu conflicts=%zu decisions=%zu",
                  (unsigned long long)inferences_, (unsigned long long)rows,
                  (unsigned long long)with_signal, conflicted_sites.size(), next->size());
  }
  conflicts_total_ += conflicted_sites.size();
  if (!conflicted_sites.empty()) {
    old_table_.GrowForConflict();
  }
  if (resolver_ != nullptr) {
    resolver_->OnInference(conflicted_sites);
  }

  bool changed = *next != *current;
  DecisionMap* next_raw = next.get();
  decision_history_.push_back(std::move(next));
  decisions_.store(next_raw, std::memory_order_release);
  // Retire old maps occasionally; safe because this runs at a safepoint with
  // no concurrent readers.
  if (decision_history_.size() > 4) {
    decision_history_.erase(decision_history_.begin(),
                            decision_history_.end() - 2);
  }

  // Survivor-tracking shut-off (paper section 7.4): disable when the workload
  // is stable, i.e. two consecutive inferences produced identical decisions.
  if (config_.auto_survivor_tracking) {
    if (!changed && !decisions_changed_since_last_inference_ &&
        survivor_tracking_.load(std::memory_order_relaxed)) {
      last_tracking_avg_pause_ns_ = recent_pause_ema_ns_;
      survivor_tracking_.store(false, std::memory_order_relaxed);
      tracking_toggles_++;
      ROLP_LOG_INFO("survivor tracking shut off (stable decisions)");
    }
    decisions_changed_since_last_inference_ = changed;
  }

  // Freshness: clear all counters for the next window (paper section 4).
  old_table_.ClearCounts();
}

void Profiler::OnGenFragmentation(uint8_t gen, double live_ratio) {
  // Paper section 6: when a dynamic generation shows fragmentation (few live
  // bytes pinning unreclaimable regions), the lifetime of contexts
  // allocating into it was overestimated; demote them by one. The ratio is
  // computed over pinned (live) regions only; fully-dead regions are the
  // success case.
  if (live_ratio >= 0.25 || gen == 0) {
    return;
  }
  const DecisionMap* current = decisions_.load(std::memory_order_relaxed);
  auto next = std::make_unique<DecisionMap>();
  bool changed = false;
  for (const auto& [context, g] : *current) {
    if (g == gen) {
      if (g > 1) {
        (*next)[context] = static_cast<uint8_t>(g - 1);
      }
      // g == 1 demotes to young: drop the entry entirely.
      changed = true;
    } else {
      (*next)[context] = g;
    }
  }
  if (!changed) {
    return;
  }
  DecisionMap* next_raw = next.get();
  decision_history_.push_back(std::move(next));
  decisions_.store(next_raw, std::memory_order_release);
  decisions_changed_since_last_inference_ = true;
}

}  // namespace rolp
