#include "src/rolp/profiler.h"

#include <algorithm>

#include "src/gc/worker_pool.h"
#include "src/heap/object.h"
#include "src/util/check.h"
#include "src/util/fault_injection.h"
#include "src/util/log.h"
#include "src/util/trace.h"

namespace rolp {

const char* DegradeReasonName(DegradeReason reason) {
  switch (reason) {
    case DegradeReason::kNone:
      return "none";
    case DegradeReason::kOldTableSaturation:
      return "old-table-saturation";
    case DegradeReason::kImplausibleHistogram:
      return "implausible-histogram";
    case DegradeReason::kDemotionChurn:
      return "demotion-churn";
    case DegradeReason::kGcOverrun:
      return "gc-overrun";
    case DegradeReason::kHeapCorruption:
      return "heap-corruption";
    case DegradeReason::kHeapPressure:
      return "heap-pressure";
  }
  return "unknown";
}

Profiler::Profiler(const RolpConfig& config)
    : config_(config), old_table_(config.old_table_entries) {
  worker_tables_.resize(config.max_gc_workers);
  live_decisions_ = std::make_unique<DecisionMap>();
  decisions_.store(live_decisions_.get(), std::memory_order_release);
  if (config_.async_inference) {
    inf_thread_ = std::thread([this] { InferenceThreadLoop(); });
  }
}

Profiler::~Profiler() {
  if (inf_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> guard(inf_mu_);
      inf_stop_ = true;
    }
    inf_cv_.notify_all();
    inf_thread_.join();
  }
}

void Profiler::SetCallSiteControl(CallSiteControl* control) {
  callsites_ = control;
  if (control != nullptr) {
    resolver_ = std::make_unique<ConflictResolver>(control, config_.conflict_p, config_.seed);
  }
}

void Profiler::OnSurvivor(uint32_t worker_id, uint64_t old_mark) {
  ROLP_DCHECK(worker_id < worker_tables_.size());
  // Paper section 3.2.2: a biased-locked object's upper header bits hold a
  // thread pointer, not an allocation context; discard it.
  if (markword::IsBiased(old_mark)) {
    survivors_skipped_biased_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint32_t context = markword::Context(old_mark);
  if (context == 0) {
    return;  // allocated by unprofiled (cold) code
  }
  if (ROLP_FAULT_POINT("rolp.survivor.drop")) {
    survivors_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;  // simulated lost survivor update (starves the histograms)
  }
  // Paper section 3.3: contexts not present in the OLD table are discarded —
  // they may be residue of a revoked biased lock or of cleared profiling.
  if (!old_table_.Contains(context)) {
    return;
  }
  uint32_t age = markword::Age(old_mark);
  worker_tables_[worker_id][context][age]++;
  survivors_seen_.fetch_add(1, std::memory_order_relaxed);
}

void Profiler::MergeWorkerTables(WorkerPool* workers) {
  ROLP_TRACE_SCOPE("rolp", "rolp.profiler.merge-workers");
  // Stall-only fail point: watchdog tests inject hangs into the merge step
  // (the profiler-merge GC phase) with a delay:<ms> arm. Fired on the pause
  // thread so the watchdog sees the stall regardless of pool dispatch.
  (void)ROLP_FAULT_POINT("rolp.merge.stall");
  auto flush = [this](WorkerTable& table) {
    for (auto& [context, by_age] : table) {
      for (uint32_t age = 0; age < 16; age++) {
        if (by_age[age] > 0) {
          old_table_.RecordSurvivor(context, age, by_age[age]);
        }
      }
    }
    table.clear();
  };
  if (workers == nullptr || workers->size() <= 1) {
    for (WorkerTable& table : worker_tables_) {
      flush(table);
    }
    return;
  }
  // Each pool item flushes a disjoint stride of worker tables; RecordSurvivor
  // is lock-free (read-only probe + CAS/fetch_add), so rows shared between
  // tables merge correctly under concurrency.
  uint32_t n = workers->size();
  size_t num_tables = worker_tables_.size();
  workers->RunTask([&](uint32_t item) {
    for (size_t i = item; i < num_tables; i += n) {
      workers->Heartbeat(item);
      flush(worker_tables_[i]);
    }
  });
}

void Profiler::PublishDecisions(std::unique_ptr<DecisionMap> next) {
  ROLP_TRACE_INSTANT("rolp", "rolp.inference.publish", next->size());
  // Write the decisions into OLD-table rows first (RCU-style: the world is
  // stopped, so mutators observe the full new set when they resume and their
  // flushed sample buffers re-read it).
  old_table_.ClearDecisions();
  for (const auto& [context, gen] : *next) {
    old_table_.SetDecision(context, gen);
  }
  decisions_.store(next.get(), std::memory_order_release);
  retired_decisions_.push_back(std::move(live_decisions_));
  live_decisions_ = std::move(next);
  // Any async snapshot taken before this publish is now based on a superseded
  // decision set; invalidate it so its staged output gets discarded.
  table_epoch_++;
}

void Profiler::OnGcEnd(const GcEndInfo& info) {
  // A safepoint separates us from any mutator that read a since-retired
  // decision map: free the retirees.
  ReclaimRetiredDecisions();
  // This pause is the "next safepoint" the async pipeline stages decisions
  // for: publish them before merging this cycle's survivors.
  TryPublishStagedInference();
  MergeWorkerTables(info.workers);

  // Pause EMA drives the survivor-tracking re-enable heuristic.
  double pause = static_cast<double>(info.pause_ns);
  recent_pause_ema_ns_ =
      recent_pause_ema_ns_ == 0.0 ? pause : 0.8 * recent_pause_ema_ns_ + 0.2 * pause;

  // Saturation watch: how many samples did the OLD table shed this cycle?
  uint64_t dropped_now = old_table_.dropped_samples();
  uint64_t dropped_delta = dropped_now - last_dropped_seen_;
  last_dropped_seen_ = dropped_now;
  // Corruption watch: did the heap verifier report damage this cycle?
  uint64_t corruption_delta = heap_corruption_reports_ - last_corruption_seen_;
  last_corruption_seen_ = heap_corruption_reports_;

  bool degraded = degraded_.load(std::memory_order_relaxed);
  if (!degraded && config_.degrade_dropped_per_cycle != 0 &&
      dropped_delta > config_.degrade_dropped_per_cycle) {
    EnterDegraded(DegradeReason::kOldTableSaturation);
    degraded = true;
  }

  if (degraded) {
    // Re-arm once the trouble signal has been quiet long enough. Inference is
    // suspended meanwhile: decisions built from a saturated or corrupt table
    // would be worse than none.
    if (dropped_delta <= config_.degrade_dropped_per_cycle / 8 && corruption_delta == 0 &&
        !heap_pressure_) {
      if (++clean_cycles_ >= config_.rearm_clean_cycles) {
        ExitDegraded();
      }
    } else {
      clean_cycles_ = 0;
    }
    return;
  }

  if (config_.inference_period != 0 && info.gc_cycle % config_.inference_period == 0) {
    if (config_.async_inference) {
      StartAsyncInference();
    } else {
      RunInference();
    }
  }
  // Checked every cycle (not just at boundaries): with async inference the
  // first non-empty decision set appears at the staged-publish safepoint, one
  // or more cycles after the boundary that snapshotted it.
  if (first_decision_cycle_ == 0 &&
      !decisions_.load(std::memory_order_relaxed)->empty()) {
    first_decision_cycle_ = info.gc_cycle;
  }

  if (config_.auto_survivor_tracking && !degraded_.load(std::memory_order_relaxed) &&
      !survivor_tracking_.load(std::memory_order_relaxed)) {
    // Paper section 7.4: re-enable survivor tracking if average pauses
    // regressed more than the threshold over the last tracked value. Not while
    // degraded: tracking stays off until re-arm.
    if (last_tracking_avg_pause_ns_ > 0.0 &&
        recent_pause_ema_ns_ >
            last_tracking_avg_pause_ns_ * (1.0 + config_.pause_regression_threshold)) {
      survivor_tracking_.store(true, std::memory_order_relaxed);
      tracking_toggles_++;
      ROLP_LOG_INFO("survivor tracking re-enabled (pause regression)");
    }
  }
}

void Profiler::WaitForStagedInference() {
  if (!config_.async_inference) {
    return;
  }
  std::unique_lock<std::mutex> lock(inf_mu_);
  inf_done_cv_.wait(lock, [&] { return !inf_busy_; });
}

void Profiler::RunInferenceNow() {
  // Tests drive inference without GC cycles; this stands in for the
  // world-stopped point, so retired maps are reclaimed here too.
  ReclaimRetiredDecisions();
  RunInference();
}

void Profiler::ReclaimRetiredDecisions() {
  if (config_.async_inference) {
    std::lock_guard<std::mutex> guard(inf_mu_);
    if (inf_busy_) {
      return;  // the in-flight analysis may still read a retired map
    }
  }
  retired_decisions_.clear();
}

Profiler::InferenceInput Profiler::SnapshotInferenceInput() {
  InferenceInput in;
  in.epoch = table_epoch_;
  in.seq = inferences_ + 1;
  in.rows.reserve(last_snapshot_rows_ + 64);
  old_table_.ForEachRow([&](uint32_t context, const std::array<uint64_t, 16>& counts) {
    // All-zero rows carry no signal and trivially pass the implausibility
    // check: skipping them keeps the snapshot proportional to the active
    // context set, not the table capacity.
    for (uint64_t c : counts) {
      if (c != 0) {
        in.rows.emplace_back(context, counts);
        break;
      }
    }
  });
  in.base = decisions_.load(std::memory_order_relaxed);
  last_snapshot_rows_ = in.rows.size();
  return in;
}

Profiler::InferenceOutput Profiler::AnalyzeRows(const InferenceInput& in) const {
  InferenceOutput out;
  out.epoch = in.epoch;

  // Sanity pass: a per-age count beyond any physical allocation rate means a
  // corrupt header or counter leaked into the table. Decisions derived from it
  // would be garbage — drop everything and ride out the storm degraded.
  out.implausible = ROLP_FAULT_POINT("rolp.inference.implausible");
  if (!out.implausible) {
    for (const auto& [context, counts] : in.rows) {
      (void)context;
      for (uint64_t c : counts) {
        if (c > config_.implausible_count) {
          out.implausible = true;
        }
      }
    }
  }
  if (out.implausible) {
    return out;
  }

  out.next = std::make_unique<DecisionMap>(*in.base);
  DecisionMap* next = out.next.get();
  for (const auto& [context, counts] : in.rows) {
    // Contexts that already pretenure produce no young-survivor signal (their
    // objects never pass through the young generation again), so their rows
    // degenerate to an age-0 spike. Paper section 6: curves can only raise an
    // estimate; lowering happens through the fragmentation feedback
    // (OnGenFragmentation), never by re-reading a starved curve.
    auto existing = next->find(context);
    CurveResult curve = CurveAnalysis::Analyze(counts);
    if (!curve.HasSignal()) {
      continue;
    }
    if (existing == next->end() && curve.IsConflict()) {
      out.conflicted_sites.push_back(markword::ContextSite(context));
      continue;  // no decision from an ambiguous curve
    }
    int lifetime = curve.EstimatedLifetime();
    uint8_t gen;
    if (lifetime == 0) {
      gen = 0;  // dies young: keep in young generation
    } else if (lifetime >= 15) {
      gen = 15;  // effectively immortal: old generation
    } else {
      gen = static_cast<uint8_t>(lifetime);
      if (gen > config_.max_gen) {
        gen = config_.max_gen;
      }
    }
    if (existing != next->end()) {
      if (gen > existing->second) {
        existing->second = gen;  // lifetime increased (section 6, case 1)
      }
      continue;
    }
    if (gen > 0) {
      (*next)[context] = gen;
    }
  }

  if (LogEnabled(LogLevel::kInfo)) {
    uint64_t with_signal = 0;
    for (const auto& [context, counts] : in.rows) {
      CurveResult c = CurveAnalysis::Analyze(counts);
      if (c.HasSignal()) {
        with_signal++;
        ROLP_LOG_INFO(
            "inference %llu: ctx site=%u tss=%u peak=%d conflict=%d total=%llu "
            "[%llu %llu %llu %llu %llu %llu %llu %llu]",
            (unsigned long long)in.seq, markword::ContextSite(context),
            markword::ContextTss(context), c.EstimatedLifetime(), c.IsConflict() ? 1 : 0,
            (unsigned long long)c.total, (unsigned long long)counts[0],
            (unsigned long long)counts[1], (unsigned long long)counts[2],
            (unsigned long long)counts[3], (unsigned long long)counts[4],
            (unsigned long long)counts[5], (unsigned long long)counts[6],
            (unsigned long long)counts[7]);
      }
    }
    ROLP_LOG_INFO("inference %llu: rows=%zu signal=%llu conflicts=%zu decisions=%zu",
                  (unsigned long long)in.seq, in.rows.size(),
                  (unsigned long long)with_signal, out.conflicted_sites.size(),
                  next->size());
  }
  if (ROLP_FAULT_POINT("rolp.inference.conflict")) {
    // Simulated ambiguous curve: exercises table growth + conflict resolution.
    out.conflicted_sites.push_back(0);
  }
  out.changed = *out.next != *in.base;
  return out;
}

void Profiler::ApplyInferenceOutput(InferenceOutput out) {
  inferences_++;
  demotion_churn_ = 0;  // fresh churn window (see OnGenFragmentation)

  if (out.implausible) {
    EnterDegraded(DegradeReason::kImplausibleHistogram);
    return;
  }

  conflicts_total_ += out.conflicted_sites.size();
  if (!out.conflicted_sites.empty()) {
    old_table_.GrowForConflict();
  }
  if (resolver_ != nullptr) {
    resolver_->OnInference(out.conflicted_sites);
  }

  bool changed = out.changed;
  PublishDecisions(std::move(out.next));

  // Survivor-tracking shut-off (paper section 7.4): disable when the workload
  // is stable, i.e. two consecutive inferences produced identical decisions.
  if (config_.auto_survivor_tracking) {
    // Post-re-arm grace: decisions and histograms were just cleared, so a
    // "stable" (empty == empty) reading here is starvation, not stability.
    bool in_grace = rearm_grace_left_ > 0;
    if (in_grace) {
      rearm_grace_left_--;
    }
    if (!in_grace && !changed && !decisions_changed_since_last_inference_ &&
        survivor_tracking_.load(std::memory_order_relaxed)) {
      last_tracking_avg_pause_ns_ = recent_pause_ema_ns_;
      survivor_tracking_.store(false, std::memory_order_relaxed);
      tracking_toggles_++;
      ROLP_LOG_INFO("survivor tracking shut off (stable decisions)");
    }
    decisions_changed_since_last_inference_ = changed;
  }
}

void Profiler::RunInference() {
  ROLP_TRACE_SCOPE("rolp", "rolp.inference.sync");
  InferenceInput in = SnapshotInferenceInput();
  InferenceOutput out = AnalyzeRows(in);
  // Freshness: clear all counters for the next window (paper section 4). The
  // snapshot carries the closing window, so the apply step never re-reads the
  // table.
  old_table_.ClearCounts();
  ApplyInferenceOutput(std::move(out));
}

void Profiler::StartAsyncInference() {
  {
    std::lock_guard<std::mutex> guard(inf_mu_);
    if (inf_busy_ || inf_staged_ != nullptr) {
      // The previous snapshot is still being analyzed (or awaits publication):
      // skip this boundary rather than queue a second window behind it.
      return;
    }
    {
      ROLP_TRACE_SCOPE("rolp", "rolp.inference.snapshot");
      inf_input_ = std::make_unique<InferenceInput>(SnapshotInferenceInput());
    }
    inf_busy_ = true;
    async_inferences_started_++;
  }
  inf_cv_.notify_one();
  // Fresh counting window starts immediately; the handed-off snapshot owns
  // the window that just closed. No epoch bump — clearing counts here is part
  // of the snapshot protocol, not an invalidation.
  old_table_.ClearCounts();
}

bool Profiler::TryPublishStagedInference() {
  std::unique_ptr<InferenceOutput> out;
  {
    std::lock_guard<std::mutex> guard(inf_mu_);
    if (inf_staged_ == nullptr) {
      return false;
    }
    out = std::move(inf_staged_);
    if (out->epoch != table_epoch_ || degraded_.load(std::memory_order_relaxed)) {
      // The table moved under the analysis (degraded-mode transition,
      // fragmentation demotion, forced sync inference): applying this output
      // would resurrect pre-mutation decisions. Drop it; the next boundary
      // snapshots fresh state.
      stale_inferences_discarded_++;
      ROLP_TRACE_INSTANT("rolp", "rolp.inference.stale-discard", out->epoch);
      return false;
    }
  }
  ApplyInferenceOutput(std::move(*out));
  return true;
}

void Profiler::InferenceThreadLoop() {
  std::unique_lock<std::mutex> lock(inf_mu_);
  for (;;) {
    inf_cv_.wait(lock, [&] { return inf_stop_ || inf_input_ != nullptr; });
    if (inf_stop_) {
      return;
    }
    std::unique_ptr<InferenceInput> in = std::move(inf_input_);
    lock.unlock();
    // The pure analysis runs with no profiler locks held: mutators keep
    // allocating into the (cleared) table and GC pauses proceed; only the
    // publish waits for a safepoint.
    std::unique_ptr<InferenceOutput> out;
    {
      ROLP_TRACE_SCOPE_ARG("rolp", "rolp.inference.analyze", in->seq);
      out = std::make_unique<InferenceOutput>(AnalyzeRows(*in));
    }
    lock.lock();
    inf_staged_ = std::move(out);
    inf_busy_ = false;
    inf_done_cv_.notify_all();
  }
}

uint64_t Profiler::async_inferences_started() const {
  std::lock_guard<std::mutex> guard(inf_mu_);
  return async_inferences_started_;
}

uint64_t Profiler::stale_inferences_discarded() const {
  std::lock_guard<std::mutex> guard(inf_mu_);
  return stale_inferences_discarded_;
}

bool Profiler::staged_inference_pending() const {
  std::lock_guard<std::mutex> guard(inf_mu_);
  return inf_staged_ != nullptr;
}

void Profiler::OnGenFragmentation(uint8_t gen, double live_ratio) {
  // Paper section 6: when a dynamic generation shows fragmentation (few live
  // bytes pinning unreclaimable regions), the lifetime of contexts
  // allocating into it was overestimated; demote them by one. The ratio is
  // computed over pinned (live) regions only; fully-dead regions are the
  // success case.
  if (live_ratio >= 0.25 || gen == 0) {
    return;
  }
  if (degraded_.load(std::memory_order_relaxed)) {
    return;  // decisions are already cleared; nothing to demote
  }
  if (config_.degrade_demotion_churn != 0 &&
      ++demotion_churn_ >= config_.degrade_demotion_churn) {
    // Demoting this often within one inference window means the estimates are
    // oscillating, not converging; stop fighting and rebuild from scratch.
    EnterDegraded(DegradeReason::kDemotionChurn);
    return;
  }
  const DecisionMap* current = decisions_.load(std::memory_order_relaxed);
  auto next = std::make_unique<DecisionMap>();
  bool changed = false;
  for (const auto& [context, g] : *current) {
    if (g == gen) {
      if (g > 1) {
        (*next)[context] = static_cast<uint8_t>(g - 1);
      }
      // g == 1 demotes to young: drop the entry entirely.
      changed = true;
    } else {
      (*next)[context] = g;
    }
  }
  if (!changed) {
    return;
  }
  PublishDecisions(std::move(next));
  decisions_changed_since_last_inference_ = true;
}

void Profiler::OnGcOverrun(bool survivor_tracking_active) {
  if (!survivor_tracking_active || degraded_.load(std::memory_order_relaxed)) {
    return;
  }
  if (config_.degrade_overrun_threshold != 0 &&
      ++overruns_while_tracking_ >= config_.degrade_overrun_threshold) {
    // GC keeps blowing its deadline while survivor tracking is feeding the
    // pause: stop adding profiler weight until things stay quiet (rung 4).
    overruns_while_tracking_ = 0;
    EnterDegraded(DegradeReason::kGcOverrun);
  }
}

void Profiler::OnHeapCorruption(size_t finding_count) {
  // World stopped (called from the in-pause verifier). The heap survived —
  // the damage was repaired or quarantined — but lifetime evidence gathered
  // from a corrupt heap is untrustworthy: stop steering allocation until
  // verification stays quiet for rearm_clean_cycles cycles.
  heap_corruption_reports_++;
  ROLP_TRACE_INSTANT("rolp", "rolp.heap_corruption", static_cast<uint64_t>(finding_count));
  EnterDegraded(DegradeReason::kHeapCorruption);
  clean_cycles_ = 0;
}

void Profiler::OnHeapPressure(bool under_pressure) {
  // World stopped (VM::OnGcEnd). While the governor sits at or above the
  // degrade rung, the profiler's survivor tracking and inference are weight
  // the overloaded heap cannot afford; shed them. Re-arm is automatic: once
  // the pressure flag clears, the normal quiet-cycle counting resumes.
  heap_pressure_ = under_pressure;
  if (under_pressure) {
    EnterDegraded(DegradeReason::kHeapPressure);
  }
}

void Profiler::PublishEmptyDecisions() {
  PublishDecisions(std::make_unique<DecisionMap>());
}

void Profiler::EnterDegraded(DegradeReason reason) {
  if (degraded_.load(std::memory_order_relaxed)) {
    return;
  }
  degraded_.store(true, std::memory_order_relaxed);
  degraded_entries_++;
  last_degrade_reason_ = reason;
  ROLP_TRACE_INSTANT("rolp", "rolp.degraded.enter", static_cast<uint64_t>(reason));
  clean_cycles_ = 0;
  demotion_churn_ = 0;

  // Stop steering allocation: TargetGen reverts to 0 (young) for every
  // context, which is always safe — it is the un-profiled baseline.
  PublishEmptyDecisions();
  // Stop collecting a signal we would distrust anyway.
  if (survivor_tracking_.exchange(false, std::memory_order_relaxed)) {
    tracking_toggles_++;
  }
  // Drop the poisoned histograms; rows stay so re-arm starts warm.
  old_table_.ClearCounts();
  if (reason == DegradeReason::kOldTableSaturation) {
    // More headroom for when profiling resumes (same mechanism as conflicts).
    old_table_.GrowForConflict();
  }
  decisions_changed_since_last_inference_ = true;
  ROLP_LOG_INFO("profiler degraded (%s); decisions cleared, tracking off",
                DegradeReasonName(reason));
}

void Profiler::ExitDegraded() {
  if (!degraded_.load(std::memory_order_relaxed)) {
    return;
  }
  degraded_.store(false, std::memory_order_relaxed);
  clean_cycles_ = 0;
  overruns_while_tracking_ = 0;
  ROLP_TRACE_INSTANT("rolp", "rolp.degraded.exit", 0);
  // Start rebuilding the signal; decisions repopulate at the next inference.
  if (!survivor_tracking_.exchange(true, std::memory_order_relaxed)) {
    tracking_toggles_++;
  }
  decisions_changed_since_last_inference_ = true;
  rearm_grace_left_ = config_.rearm_grace_inferences;
  ROLP_LOG_INFO("profiler re-armed after %u clean cycles", config_.rearm_clean_cycles);
}

void Profiler::DumpIntrospection(std::FILE* out) const {
  const OldTable& table = old_table_;
  std::fprintf(out, "== ROLP profiler introspection ==\n");
  std::fprintf(out,
               "old_table: capacity=%zu occupied=%zu dropped=%llu rejected=%llu "
               "grows=%zu paper_bytes=%zu\n",
               table.capacity(), table.occupied(),
               (unsigned long long)table.dropped_samples(),
               (unsigned long long)table.rejected_contexts(), table.grow_count(),
               table.PaperMemoryBytes());
  std::fprintf(out, "degraded: %s (entries=%llu, last_reason=%s)\n",
               degraded() ? "yes" : "no", (unsigned long long)degraded_entries_,
               DegradeReasonName(last_degrade_reason_));
  std::fprintf(out, "survivor_tracking: %s (toggles=%llu)\n",
               SurvivorTrackingEnabled() ? "on" : "off",
               (unsigned long long)tracking_toggles_);
  std::fprintf(out, "inferences: %llu (async_started=%llu, stale_discarded=%llu)\n",
               (unsigned long long)inferences_,
               (unsigned long long)async_inferences_started(),
               (unsigned long long)stale_inferences_discarded());
  std::fprintf(out, "conflicts_total: %llu\n", (unsigned long long)conflicts_total_);

  auto decision_map = DecisionsSnapshot();
  std::vector<std::pair<uint32_t, uint8_t>> decisions(decision_map.begin(),
                                                      decision_map.end());
  std::sort(decisions.begin(), decisions.end());
  std::fprintf(out, "decisions: %zu\n", decisions.size());
  for (const auto& [ctx, gen] : decisions) {
    std::fprintf(out, "  ctx=0x%08x site=%u tss=%u gen=%u\n", ctx,
                 markword::ContextSite(ctx), markword::ContextTss(ctx), gen);
  }

  std::vector<std::pair<uint32_t, std::array<uint64_t, OldTable::kAges>>> rows;
  table.ForEachRow([&rows](uint32_t ctx, const std::array<uint64_t, OldTable::kAges>& counts) {
    rows.emplace_back(ctx, counts);
  });
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::fprintf(out, "rows: %zu\n", rows.size());
  for (const auto& [ctx, counts] : rows) {
    uint64_t total = 0;
    for (uint64_t c : counts) {
      total += c;
    }
    std::fprintf(out, "  ctx=0x%08x site=%u tss=%u decision=%u total=%llu ages:", ctx,
                 markword::ContextSite(ctx), markword::ContextTss(ctx),
                 table.DecisionFor(ctx), (unsigned long long)total);
    for (int a = 0; a < OldTable::kAges; a++) {
      if (counts[a] != 0) {
        std::fprintf(out, " %d:%llu", a, (unsigned long long)counts[a]);
      }
    }
    std::fprintf(out, "\n");
  }
}

bool Profiler::WriteIntrospection(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    ROLP_LOG_ERROR("profiler: cannot open %s for introspection dump", path.c_str());
    return false;
  }
  DumpIntrospection(f);
  std::fclose(f);
  return true;
}

}  // namespace rolp
