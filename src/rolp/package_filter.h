// Package filters — paper section 7.3. Large applications bound profiling
// overhead by naming the packages that manage application data; only methods
// whose qualified name falls under an included package get profiling code.
#ifndef SRC_ROLP_PACKAGE_FILTER_H_
#define SRC_ROLP_PACKAGE_FILTER_H_

#include <string>
#include <string_view>
#include <vector>

namespace rolp {

class PackageFilter {
 public:
  // Empty include list = profile everything (minus excludes).
  void Include(std::string package_prefix) { includes_.push_back(std::move(package_prefix)); }
  void Exclude(std::string package_prefix) { excludes_.push_back(std::move(package_prefix)); }

  // Matches fully-qualified method names such as
  // "cassandra.db.Memtable::put". A prefix matches a whole package-path
  // component boundary: "cassandra.db" matches "cassandra.db.X::m" but not
  // "cassandra.dbx.X::m".
  bool ShouldProfile(std::string_view qualified_method_name) const;

  bool empty() const { return includes_.empty() && excludes_.empty(); }
  const std::vector<std::string>& includes() const { return includes_; }

 private:
  static bool PrefixMatches(std::string_view name, const std::string& prefix);

  std::vector<std::string> includes_;
  std::vector<std::string> excludes_;
};

}  // namespace rolp

#endif  // SRC_ROLP_PACKAGE_FILTER_H_
