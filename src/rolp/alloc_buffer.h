// Per-thread allocation sample buffer — the third leg of the allocation fast
// lane (DESIGN.md §9).
//
// A small direct-mapped context→delta cache owned by one mutator thread.
// Repeated allocations from the same hot context become a thread-local
// increment (no shared cache line touched at all); the shared OLD table is
// probed only on a buffer miss (which installs the row and caches its
// pretenuring decision) and on eviction/flush (which adds the batched delta).
//
// Coherence contract: decisions change only while the world is stopped, and
// every buffer is flushed-and-invalidated at each GC-end safepoint
// (VM::OnGcEnd) before mutators resume — so a cached decision byte can never
// outlive the decision set it was read from, and buffered counts are exact by
// the time the profiler merges survivors and runs inference (the paper only
// needs counts to be accurate at inference safepoints).
//
// Not thread-safe: each buffer belongs to exactly one mutator. Safepoint-side
// flushes of other threads' buffers are safe because those threads are
// stopped (the safepoint handshake orders their writes).
#ifndef SRC_ROLP_ALLOC_BUFFER_H_
#define SRC_ROLP_ALLOC_BUFFER_H_

#include <bit>
#include <cstdint>
#include <memory>

#include "src/rolp/old_table.h"

namespace rolp {

class AllocBuffer {
 public:
  static constexpr uint32_t kDefaultSlots = 256;

  AllocBuffer() = default;

  // Sizes the buffer (rounded up to a power of two). 0 disables it; Record
  // must not be called on a disabled buffer (callers go straight to the
  // table).
  void Init(uint32_t slots) {
    if (slots == 0) {
      slots_.reset();
      mask_ = 0;
      return;
    }
    uint32_t cap = std::bit_ceil(slots);
    slots_ = std::make_unique<Slot[]>(cap);
    mask_ = cap - 1;
    for (uint32_t i = 0; i <= mask_; i++) {
      slots_[i].context = OldTable::kInvalidContext;
    }
  }

  bool enabled() const { return slots_ != nullptr; }
  uint32_t capacity() const { return slots_ == nullptr ? 0 : mask_ + 1; }

  // The fast lane: returns the pretenuring decision for this context,
  // recording one allocation. A slot hit is purely thread-local; a miss
  // evicts the slot's batched delta to the table and probes once.
  uint8_t Record(OldTable& table, uint32_t context) {
    if (context == OldTable::kInvalidContext) {
      // Would alias the empty-slot sentinel below and silently swallow the
      // sample; route it to the table so it lands in rejected_contexts().
      (void)table.RecordAllocationAndGen(context);
      return 0;
    }
    Slot& s = slots_[Index(context)];
    if (s.context == context) {
      s.pending++;
      hits_++;
      return s.gen;
    }
    if (s.pending != 0) {
      table.AddAllocations(s.context, s.pending);
      s.pending = 0;
      evictions_++;
    }
    misses_++;
    int r = table.RecordAllocationAndGen(context);
    if (r < 0) {
      // Sample shed (invalid context / table full / fault injection): leave
      // the slot empty so the next occurrence retries the table.
      s.context = OldTable::kInvalidContext;
      return 0;
    }
    s.context = context;
    s.gen = static_cast<uint8_t>(r);
    return s.gen;
  }

  // Drains every batched delta into the table and invalidates all cached
  // decisions. Called at GC-end safepoints and on thread detach.
  void Flush(OldTable& table) {
    if (slots_ == nullptr) {
      return;
    }
    for (uint32_t i = 0; i <= mask_; i++) {
      Slot& s = slots_[i];
      if (s.context != OldTable::kInvalidContext && s.pending != 0) {
        table.AddAllocations(s.context, s.pending);
      }
      s.context = OldTable::kInvalidContext;
      s.pending = 0;
      s.gen = 0;
    }
    flushes_++;
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t flushes() const { return flushes_; }

 private:
  struct Slot {
    uint32_t context = OldTable::kInvalidContext;
    uint32_t pending = 0;  // increments not yet in the table
    uint8_t gen = 0;       // decision cached at install time
  };

  uint32_t Index(uint32_t context) const {
    // Fibonacci multiply; top bits have the best mixing, shift them down to
    // cover the small slot range.
    return (context * 2654435761u >> 16) & mask_;
  }

  std::unique_ptr<Slot[]> slots_;
  uint32_t mask_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t flushes_ = 0;
};

}  // namespace rolp

#endif  // SRC_ROLP_ALLOC_BUFFER_H_
