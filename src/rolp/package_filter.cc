#include "src/rolp/package_filter.h"

namespace rolp {

bool PackageFilter::PrefixMatches(std::string_view name, const std::string& prefix) {
  if (name.size() < prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  if (name.size() == prefix.size()) {
    return true;
  }
  char next = name[prefix.size()];
  return next == '.' || next == ':';
}

bool PackageFilter::ShouldProfile(std::string_view qualified_method_name) const {
  for (const std::string& ex : excludes_) {
    if (PrefixMatches(qualified_method_name, ex)) {
      return false;
    }
  }
  if (includes_.empty()) {
    return true;
  }
  for (const std::string& in : includes_) {
    if (PrefixMatches(qualified_method_name, in)) {
      return true;
    }
  }
  return false;
}

}  // namespace rolp
