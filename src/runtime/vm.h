// The virtual machine facade: owns the heap, the collector selected by a
// JVM-style flag, the JIT engine, and (when ROLP is on) the profiler. ROLP is
// enabled exactly the way the paper ships it: a launch-time flag
// ("-XX:+UseROLP"), no source access or programmer effort required.
#ifndef SRC_RUNTIME_VM_H_
#define SRC_RUNTIME_VM_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/gc/collector.h"
#include "src/rolp/profiler.h"
#include "src/runtime/jit.h"
#include "src/util/crash_context.h"
#include "src/util/metrics_registry.h"
#include "src/util/spinlock.h"

namespace rolp {

class RuntimeThread;

enum class GcKind { kG1, kCms, kZgc, kNg2c, kRolp };

const char* GcKindName(GcKind kind);

struct VmConfig {
  size_t heap_mb = 256;
  size_t region_kb = 1024;
  double young_fraction = 0.25;
  GcKind gc = GcKind::kG1;
  GcConfig gc_config;
  RolpConfig rolp;
  JitConfig jit;
  PackageFilter filter;
  // Probability that a method entry simulates an OSR transition corrupting
  // the thread stack state (fault injection; repaired at GC end).
  double osr_corruption_rate = 0.0;
  uint64_t seed = 0x5eed;
  // Prepended to every metric this VM registers ("shard0." etc.) so multiple
  // VMs in one process publish disjoint names. Empty for the common 1-VM case
  // keeps the historical names.
  std::string metrics_prefix;

  // Parses JVM-style flags:
  //   -Xmx<N>m            heap size
  //   -XX:GC=<g1|cms|zgc|ng2c|rolp>
  //   -XX:+UseROLP        shorthand for -XX:GC=rolp
  //   -XX:ROLPFilter=<package>[,<package>...]
  //   -XX:MaxTenuringThreshold=<n>
  //   -XX:ROLPConflictP=<percent>
  //   -XX:ParallelGCThreads=<n>
  // Returns false and fills *error on an unknown flag.
  static bool ParseFlags(const std::vector<std::string>& flags, VmConfig* out,
                         std::string* error);
};

class VM : public ProfilerHooks {
 public:
  explicit VM(const VmConfig& config);
  ~VM() override;

  VM(const VM&) = delete;
  VM& operator=(const VM&) = delete;

  const VmConfig& config() const { return config_; }
  Heap& heap() { return *heap_; }
  Collector& collector() { return *collector_; }
  JitEngine& jit() { return *jit_; }
  Profiler* profiler() { return profiler_.get(); }  // null unless GC=rolp
  SafepointManager& safepoints() { return safepoints_; }

  // Attaches the calling thread as a mutator. The returned object stays valid
  // until DetachThread.
  RuntimeThread* AttachThread();
  void DetachThread(RuntimeThread* thread);

  GlobalRef NewGlobalRoot(Object* initial);
  // Barriered read of a global root (stays valid under the Z collector).
  Object* LoadGlobal(const GlobalRef& ref);

  // --- ProfilerHooks: collector events are filtered through the VM so the
  // runtime can piggy-back OSR stack-state verification on pause ends. ------
  bool SurvivorTrackingEnabled() const override;
  void OnSurvivor(uint32_t worker_id, uint64_t old_mark) override;
  void OnGcEnd(const GcEndInfo& info) override;
  void OnGenFragmentation(uint8_t gen, double live_ratio) override;
  void OnGcOverrun(bool survivor_tracking_active) override;
  void OnHeapCorruption(size_t finding_count) override;

  // Aggregated runtime stats (live + detached threads).
  uint64_t total_exception_fixups() const;
  uint64_t total_osr_injected() const;
  uint64_t total_osr_repaired() const;
  uint64_t total_allocations() const;
  uint64_t total_recoverable_ooms() const;

 private:
  // Publishes the VM's scattered statistics (GcMetrics, profiler, thread
  // totals, watchdog, fault injection) as named gauges/histograms in the
  // process metrics registry (DESIGN.md §11).
  void RegisterMetrics();
  // Writes the ROLP_METRICS_DUMP / ROLP_DUMP_OLD_TABLE files if configured.
  void WriteObservabilityDumps();

  VmConfig config_;
  std::unique_ptr<Heap> heap_;
  SafepointManager safepoints_;
  std::unique_ptr<JitEngine> jit_;
  std::unique_ptr<Profiler> profiler_;
  std::unique_ptr<Collector> collector_;

  mutable SpinLock threads_lock_;
  std::vector<RuntimeThread*> threads_;
  std::vector<std::unique_ptr<RuntimeThread>> all_threads_;  // owns, incl. detached
  uint32_t next_thread_id_ = 1;

  // Last completed pause, captured for crash-context reports. Written only
  // with the world stopped; the crash path reads it best-effort.
  GcEndInfo last_gc_end_{};
  std::unique_ptr<ScopedCrashContextProvider> crash_provider_;

  // Observability (DESIGN.md §11). Declared last so the gauge registrations
  // are torn down before the subsystems their callbacks read.
  std::string metrics_dump_path_;     // ROLP_METRICS_DUMP
  std::string old_table_dump_path_;   // ROLP_DUMP_OLD_TABLE
  ScopedMetrics metrics_publisher_;
  std::mutex dump_mu_;
  std::condition_variable dump_cv_;
  bool dump_stop_ = false;
  std::thread dump_thread_;  // periodic ROLP_METRICS_INTERVAL_MS dumper
};

}  // namespace rolp

#endif  // SRC_RUNTIME_VM_H_
