// Mutator thread state: TLAB + local handle roots (via the embedded
// MutatorContext), the 16-bit thread stack state (paper section 3.2.1), the
// frame stack used for OSR verification (section 7.2.3), and the allocation
// entry points that install allocation contexts and consult the profiler /
// NG2C annotations for the target generation.
#ifndef SRC_RUNTIME_THREAD_H_
#define SRC_RUNTIME_THREAD_H_

#include <cstdint>
#include <vector>

#include "src/gc/collector.h"
#include "src/rolp/alloc_buffer.h"
#include "src/runtime/method.h"
#include "src/util/random.h"

namespace rolp {

class VM;
class RuntimeThread;
class Profiler;
class Heap;

// A handle to a heap object, rooted in the owning thread's local root set.
// Reads go through the heap's load barrier so they stay valid under the
// concurrent (Z) collector.
class Local {
 public:
  Local() = default;
  Local(RuntimeThread* thread, size_t index) : thread_(thread), index_(index) {}

  Object* get() const;
  void set(Object* obj);
  bool valid() const { return thread_ != nullptr; }

 private:
  RuntimeThread* thread_ = nullptr;
  size_t index_ = 0;
};

// RAII scope: local handles created inside are released on exit (LIFO).
class HandleScope {
 public:
  explicit HandleScope(RuntimeThread& thread);
  ~HandleScope();
  HandleScope(const HandleScope&) = delete;
  HandleScope& operator=(const HandleScope&) = delete;

 private:
  RuntimeThread& thread_;
  size_t base_;
};

class RuntimeThread {
 public:
  static constexpr uint32_t kNoSite = UINT32_MAX;

  RuntimeThread(VM* vm, uint32_t thread_id);

  VM& vm() { return *vm_; }
  uint32_t thread_id() const { return gc_ctx_.thread_id; }
  MutatorContext& gc_context() { return gc_ctx_; }

  // --- Allocation -----------------------------------------------------------
  // alloc_site: an index from JitEngine::RegisterAllocSite, or kNoSite for
  // unprofiled (cold/VM-internal) allocations.
  Object* AllocateInstance(uint32_t alloc_site, ClassId cls);
  Object* AllocateRefArray(uint32_t alloc_site, uint64_t length);
  Object* AllocateDataArray(uint32_t alloc_site, uint64_t length);

  // --- Handles --------------------------------------------------------------
  Local NewLocal(Object* obj);
  size_t local_depth() const { return gc_ctx_.local_roots.size(); }
  void TruncateLocals(size_t depth);

  // --- Field access (barriered) ----------------------------------------------
  Object* LoadField(Object* obj, uint32_t offset);
  void StoreField(Object* obj, uint32_t offset, Object* value);
  Object* LoadElem(Object* arr, uint64_t index);
  void StoreElem(Object* arr, uint64_t index, Object* value);

  // --- Thread stack state (manipulated by MethodFrame) -----------------------
  uint16_t tss() const { return tss_; }
  void AddTss(uint16_t h) { tss_ = static_cast<uint16_t>(tss_ + h); }
  void SubTss(uint16_t h) { tss_ = static_cast<uint16_t>(tss_ - h); }

  struct FrameRecord {
    uint32_t call_site = 0;
    uint16_t applied_hash = 0;
  };
  std::vector<FrameRecord>& frame_stack() { return frame_stack_; }

  // Computes the stack state implied by the frame stack (used by the GC-end
  // verification, paper section 7.2.3).
  uint16_t ExpectedTss() const;
  // Repairs tss_ from the frame stack; returns true if it was corrupted.
  bool VerifyAndRepairTss();

  // Fault injection modelling OSR transitions that skip profiling code.
  void MaybeInjectOsrCorruption();

  // --- Allocation sample buffer (fast lane, DESIGN.md §9) --------------------
  // Drains this thread's batched OLD-table increments and allocated-bytes
  // credit, and invalidates its cached pretenuring decisions. Called with the
  // thread stopped (GC-end safepoint) or by the thread itself (detach).
  void FlushAllocBuffer();
  const AllocBuffer& alloc_buffer() const { return alloc_buffer_; }

  // --- Biased locking (paper section 3.2.2) ----------------------------------
  void BiasLock(Object* obj);
  void BiasUnlock(Object* obj);

  void Poll();

  // Counters.
  uint64_t exception_fixups() const { return exception_fixups_; }
  void CountExceptionFixup() { exception_fixups_++; }
  uint64_t osr_injected() const { return osr_injected_; }
  uint64_t osr_repaired() const { return osr_repaired_; }
  uint64_t allocations() const { return allocations_; }
  // Slow-path allocations that exhausted GC-and-retry and returned nullptr
  // instead of aborting.
  uint64_t recoverable_ooms() const { return recoverable_ooms_; }
  Random& rng() { return rng_; }

 private:
  friend class VM;
  Object* Allocate(uint32_t alloc_site, ClassId cls, size_t total_bytes, uint64_t array_length);

  VM* vm_;
  // Hot-path state, resolved once at attach time so Allocate dereferences no
  // VM-config chains: the profiler (null unless GC=rolp), the heap, and
  // whether NG2C annotations override the target generation.
  Profiler* profiler_ = nullptr;
  Heap* heap_ = nullptr;
  bool ng2c_ = false;
  AllocBuffer alloc_buffer_;
  MutatorContext gc_ctx_;
  uint16_t tss_ = 0;
  std::vector<FrameRecord> frame_stack_;
  Random rng_;
  double osr_rate_ = 0.0;
  uint64_t exception_fixups_ = 0;
  uint64_t osr_injected_ = 0;
  uint64_t osr_repaired_ = 0;
  uint64_t allocations_ = 0;
  uint64_t recoverable_ooms_ = 0;
  // Heap-bytes credit not yet drained to Heap::AddAllocatedBytes.
  uint64_t pending_allocated_bytes_ = 0;
};

}  // namespace rolp

#endif  // SRC_RUNTIME_THREAD_H_
