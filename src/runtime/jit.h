// Invocation-counter JIT model — paper section 3.2.
//
// Methods start "interpreted" (cold, unprofiled). Once a method's invocation
// count crosses the hot threshold it is "compiled": its allocation sites get
// 16-bit site ids (if the package filter admits the method) and its outgoing
// call sites get the fast/slow profiling branch, except calls to small
// callees, which are inlined and never profiled (section 7.2.1).
//
// The JIT engine also implements CallSiteControl, so the ROLP conflict
// resolver can toggle thread-stack-state tracking per call site, and exposes
// the four profiling levels of Fig. 6.
#ifndef SRC_RUNTIME_JIT_H_
#define SRC_RUNTIME_JIT_H_

#include <deque>
#include <memory>

#include "src/rolp/conflict_resolver.h"
#include "src/rolp/package_filter.h"
#include "src/runtime/method.h"
#include "src/util/random.h"
#include "src/util/spinlock.h"

namespace rolp {

// Fig. 6 profiling levels.
enum class ProfilingLevel {
  kNoCallProfiling,  // allocation-site profiling only
  kFastCall,         // call sites instrumented, all falling through the fast branch
  kReal,             // tracking enabled on demand by conflict resolution
  kSlowCall,         // worst case: every instrumented call site tracks
};

struct JitConfig {
  uint64_t hot_threshold = 1000;  // invocations before a method is compiled
  uint32_t inline_max_bytecode = 32;
  ProfilingLevel level = ProfilingLevel::kReal;
  uint64_t seed = 0x5eed;
};

class JitEngine : public CallSiteControl {
 public:
  JitEngine(const JitConfig& config, PackageFilter filter);

  // --- Registration (workload setup) ---------------------------------------
  MethodId RegisterMethod(const std::string& name, uint32_t bytecode_size);
  uint32_t RegisterAllocSite(MethodId method, uint8_t ng2c_hint = 0);
  uint32_t RegisterCallSite(MethodId caller, MethodId callee);

  // --- Hot path -------------------------------------------------------------
  // Called on every method invocation; compiles at the hot threshold.
  void OnInvocation(MethodId method) {
    MethodInfo& m = methods_[method];
    uint64_t n = m.invocations.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n == config_.hot_threshold) {
      Compile(method);
    }
  }

  bool call_profiling_active() const {
    return config_.level != ProfilingLevel::kNoCallProfiling;
  }

  MethodInfo& method(MethodId id) { return methods_[id]; }
  AllocSiteInfo& alloc_site(uint32_t index) { return alloc_sites_[index]; }
  CallSite& call_site(uint32_t index) { return call_sites_[index]; }

  // Forces compilation (tests, workload warmup shortcuts).
  void Compile(MethodId method);
  void CompileAll();

  // --- CallSiteControl (conflict resolver interface) ------------------------
  // The profilable population is the instrumented, non-inlined call sites.
  size_t NumProfilableCallSites() const override;
  void SetCallSiteTracking(size_t index, bool enabled) override;
  bool CallSiteTracking(size_t index) const override;

  // --- Metrics (Tables 1 and 2) ---------------------------------------------
  size_t num_methods() const;
  size_t num_alloc_sites() const;
  size_t num_call_sites() const;
  size_t profiled_alloc_sites() const;   // sites with a header id (PAS count)
  size_t tracked_call_sites() const;     // sites currently on the slow branch
  size_t instrumented_call_sites() const;
  size_t inlined_call_sites() const;
  size_t jitted_methods() const;
  double pas_fraction() const;           // PAS as the paper reports it
  double pmc_fraction() const;           // PMC as the paper reports it

 private:
  uint16_t NextSiteId();
  uint16_t NextCallHash();

  JitConfig config_;
  PackageFilter filter_;
  mutable SpinLock lock_;  // registration + compile
  std::deque<MethodInfo> methods_;
  std::deque<AllocSiteInfo> alloc_sites_;
  std::deque<CallSite> call_sites_;
  std::vector<uint32_t> profilable_;  // call-site indices exposed to the resolver
  uint16_t next_site_id_ = 1;
  Random rng_;
};

}  // namespace rolp

#endif  // SRC_RUNTIME_JIT_H_
