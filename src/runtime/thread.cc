#include "src/runtime/thread.h"

#include <chrono>
#include <thread>

#include "src/runtime/vm.h"
#include "src/util/check.h"
#include "src/util/fault_injection.h"
#include "src/util/trace.h"

namespace rolp {

RuntimeThread::RuntimeThread(VM* vm, uint32_t thread_id)
    : vm_(vm), rng_(vm->config().seed ^ (0x9e3779b97f4a7c15ULL * thread_id)) {
  gc_ctx_.thread_id = thread_id;
  osr_rate_ = vm->config().osr_corruption_rate;
  profiler_ = vm->profiler();
  heap_ = &vm->heap();
  ng2c_ = vm->config().gc == GcKind::kNg2c;
  if (profiler_ != nullptr) {
    alloc_buffer_.Init(profiler_->config().alloc_buffer_slots);
  }
}

Object* RuntimeThread::Allocate(uint32_t alloc_site, ClassId cls, size_t total_bytes,
                                uint64_t array_length) {
  uint32_t context = 0;
  uint8_t gen = kYoungGen;
  if (alloc_site != kNoSite) {
    AllocSiteInfo& site = vm_->jit().alloc_site(alloc_site);
    uint16_t sid = site.site_id.load(std::memory_order_acquire);
    if (sid != 0) {
      // Hot, profiled allocation: install (site, thread stack state) in the
      // header and feed the OLD table (paper section 3.2.1). The fast lane
      // returns the pretenuring decision from the same probe — and usually
      // from this thread's sample buffer, with no shared line touched.
      context = markword::MakeContext(sid, tss_);
      if (profiler_ != nullptr) {
        if (ng2c_) {
          // NG2C overrides the generation below; record the sample only
          // instead of computing a decision that would be discarded.
          profiler_->RecordAllocation(context);
        } else {
          gen = profiler_->RecordAllocationWithGen(context, &alloc_buffer_);
        }
      }
    }
    if (ng2c_) {
      // NG2C mode: the hand-placed annotation decides the generation.
      gen = site.ng2c_hint;
    }
  }
  allocations_++;
  Heap& heap = *heap_;
  if (gen == kYoungGen && !heap.IsHumongousSize(total_bytes)) {
    char* mem = gc_ctx_.tlab.Allocate(total_bytes);
    if (mem != nullptr) {
      pending_allocated_bytes_ += total_bytes;
      return heap.InitializeObject(mem, cls, total_bytes, array_length, context);
    }
  }
  // Heap-pressure governor rung 2: above the throttle watermark every
  // slow-path allocation pays a bounded stall, slowing mutators down so the
  // collector can keep up instead of hitting the OOM wall. The sleep happens
  // inside a safe region so a concurrent pause never waits on it.
  uint64_t stall_ns = heap.governor().ThrottleStallNs();
  if (ROLP_FAULT_POINT("service.alloc.throttle") && stall_ns == 0) {
    stall_ns = 200 * 1000;  // injected stall: same magnitude as one base rung
  }
  if (stall_ns != 0) {
    SafepointManager::ScopedSafeRegion safe(&vm_->safepoints(), &gc_ctx_);
    std::this_thread::sleep_for(std::chrono::nanoseconds(stall_ns));
    heap.governor().CountThrottleStall();
  }
  AllocRequest req;
  req.cls = cls;
  req.total_bytes = total_bytes;
  req.array_length = array_length;
  req.context = context;
  req.target_gen = gen;
  AllocResult result = vm_->collector().AllocateSlow(&gc_ctx_, req);
  if (!result.ok()) {
    // Recoverable: the caller sees nullptr and sheds this one allocation;
    // the thread (and process) keep running.
    recoverable_ooms_++;
    return nullptr;
  }
  pending_allocated_bytes_ += total_bytes;
  return result.object;
}

Object* RuntimeThread::AllocateInstance(uint32_t alloc_site, ClassId cls) {
  return Allocate(alloc_site, cls, heap_->InstanceAllocSize(cls), 0);
}

Object* RuntimeThread::AllocateRefArray(uint32_t alloc_site, uint64_t length) {
  return Allocate(alloc_site, heap_->classes().ref_array_class(),
                  heap_->RefArrayAllocSize(length), length);
}

Object* RuntimeThread::AllocateDataArray(uint32_t alloc_site, uint64_t length) {
  return Allocate(alloc_site, heap_->classes().data_array_class(),
                  heap_->DataArrayAllocSize(length), length);
}

Local RuntimeThread::NewLocal(Object* obj) {
  gc_ctx_.local_roots.emplace_back(obj);
  return Local(this, gc_ctx_.local_roots.size() - 1);
}

void RuntimeThread::TruncateLocals(size_t depth) {
  while (gc_ctx_.local_roots.size() > depth) {
    gc_ctx_.local_roots.pop_back();
  }
}

Object* RuntimeThread::LoadField(Object* obj, uint32_t offset) {
  return vm_->heap().LoadRef(obj->RefSlotAt(offset));
}

void RuntimeThread::StoreField(Object* obj, uint32_t offset, Object* value) {
  vm_->heap().StoreRef(obj, obj->RefSlotAt(offset), value);
}

Object* RuntimeThread::LoadElem(Object* arr, uint64_t index) {
  return vm_->heap().LoadRef(arr->RefArraySlot(index));
}

void RuntimeThread::StoreElem(Object* arr, uint64_t index, Object* value) {
  vm_->heap().StoreRef(arr, arr->RefArraySlot(index), value);
}

uint16_t RuntimeThread::ExpectedTss() const {
  uint16_t expected = 0;
  for (const FrameRecord& f : frame_stack_) {
    expected = static_cast<uint16_t>(expected + f.applied_hash);
  }
  return expected;
}

bool RuntimeThread::VerifyAndRepairTss() {
  uint16_t expected = ExpectedTss();
  if (tss_ == expected) {
    return false;
  }
  tss_ = expected;
  osr_repaired_++;
  return true;
}

void RuntimeThread::MaybeInjectOsrCorruption() {
  if (osr_rate_ <= 0.0) {
    return;
  }
  if (rng_.NextBool(osr_rate_)) {
    // An OSR transition replaced interpreted frames with compiled ones (or
    // vice versa) without running the stack-state update.
    tss_ = static_cast<uint16_t>(tss_ + static_cast<uint16_t>(rng_.NextU64() | 1));
    osr_injected_++;
  }
}

void RuntimeThread::BiasLock(Object* obj) {
  // Paper section 3.2.2: biased locking writes the owner thread id over the
  // upper 32 header bits, destroying any allocation context stored there.
  uint64_t m = obj->LoadMark();
  obj->StoreMark(markword::SetBiased(m, gc_ctx_.thread_id));
}

void RuntimeThread::BiasUnlock(Object* obj) {
  uint64_t m = obj->LoadMark();
  ROLP_DCHECK(markword::IsBiased(m));
  obj->StoreMark(markword::ClearBiased(m));
}

void RuntimeThread::FlushAllocBuffer() {
  if (profiler_ != nullptr) {
    ROLP_TRACE_INSTANT("rolp", "rolp.alloc_buffer.flush", gc_ctx_.thread_id);
    alloc_buffer_.Flush(profiler_->old_table());
  }
  if (pending_allocated_bytes_ != 0) {
    heap_->AddAllocatedBytes(pending_allocated_bytes_);
    pending_allocated_bytes_ = 0;
  }
}

void RuntimeThread::Poll() { vm_->safepoints().Poll(&gc_ctx_); }

Object* Local::get() const {
  ROLP_DCHECK(thread_ != nullptr);
  return thread_->vm().heap().LoadRef(&thread_->gc_context().local_roots[index_]);
}

void Local::set(Object* obj) {
  ROLP_DCHECK(thread_ != nullptr);
  thread_->gc_context().local_roots[index_].store(obj, std::memory_order_relaxed);
}

HandleScope::HandleScope(RuntimeThread& thread)
    : thread_(thread), base_(thread.local_depth()) {}

HandleScope::~HandleScope() { thread_.TruncateLocals(base_); }

}  // namespace rolp
