// RAII method frame — the runtime rendering of the profiling code ROLP
// installs around call sites (paper section 3.2.4, Fig. 3).
//
// Entry: bump the callee's invocation counter (JIT heat), then execute the
// fast/slow profiling branch — load the call site's hash; if non-zero, add it
// to the thread stack state. Exit: subtract the same value. Destruction
// during exception unwinding is exactly the paper's section 7.2.2 fix-up
// hook: the stack state stays consistent even when a callee throws through
// this frame, and the event is counted.
#ifndef SRC_RUNTIME_FRAME_H_
#define SRC_RUNTIME_FRAME_H_

#include <exception>

#include "src/runtime/jit.h"
#include "src/runtime/thread.h"
#include "src/runtime/vm.h"

namespace rolp {

class MethodFrame {
 public:
  MethodFrame(RuntimeThread& thread, uint32_t call_site_index)
      : thread_(thread), uncaught_at_entry_(std::uncaught_exceptions()) {
    JitEngine& jit = thread.vm().jit();
    CallSite& cs = jit.call_site(call_site_index);
    jit.OnInvocation(cs.callee);
    if (jit.call_profiling_active() && cs.instrumented.load(std::memory_order_relaxed)) {
      // The fast/slow branch: a single load + test; the add only runs while
      // conflict resolution (or the slow-call level) has tracking enabled.
      uint16_t h = cs.tss_hash.load(std::memory_order_relaxed);
      if (h != 0) {
        thread_.AddTss(h);
        applied_ = h;
      }
    }
    thread_.frame_stack().push_back({call_site_index, applied_});
    thread_.MaybeInjectOsrCorruption();
    thread_.Poll();
  }

  ~MethodFrame() {
    thread_.frame_stack().pop_back();
    if (applied_ != 0) {
      thread_.SubTss(applied_);
      if (std::uncaught_exceptions() > uncaught_at_entry_) {
        // Unwinding through this frame: the JVM-rethrow-hook analogue.
        thread_.CountExceptionFixup();
      }
    }
  }

  MethodFrame(const MethodFrame&) = delete;
  MethodFrame& operator=(const MethodFrame&) = delete;

 private:
  RuntimeThread& thread_;
  uint16_t applied_ = 0;
  int uncaught_at_entry_;
};

// Exception type thrown by guest (workload) code; unwinds through
// MethodFrames, which keep the thread stack state consistent.
class GuestException : public std::exception {
 public:
  explicit GuestException(const char* what) : what_(what) {}
  const char* what() const noexcept override { return what_; }

 private:
  const char* what_;
};

}  // namespace rolp

#endif  // SRC_RUNTIME_FRAME_H_
