#include "src/runtime/vm.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "src/gc/cms_collector.h"
#include "src/gc/regional_collector.h"
#include "src/gc/zgc_collector.h"
#include "src/runtime/thread.h"
#include "src/util/check.h"
#include "src/util/env.h"
#include "src/util/fault_injection.h"
#include "src/util/log.h"
#include "src/util/proc_stats.h"
#include "src/util/trace.h"

namespace rolp {

const char* GcKindName(GcKind kind) {
  switch (kind) {
    case GcKind::kG1:
      return "g1";
    case GcKind::kCms:
      return "cms";
    case GcKind::kZgc:
      return "zgc";
    case GcKind::kNg2c:
      return "ng2c";
    case GcKind::kRolp:
      return "rolp";
  }
  return "?";
}

namespace {

bool ParseGcName(const std::string& name, GcKind* out) {
  if (name == "g1") {
    *out = GcKind::kG1;
  } else if (name == "cms") {
    *out = GcKind::kCms;
  } else if (name == "zgc") {
    *out = GcKind::kZgc;
  } else if (name == "ng2c") {
    *out = GcKind::kNg2c;
  } else if (name == "rolp") {
    *out = GcKind::kRolp;
  } else {
    return false;
  }
  return true;
}

}  // namespace

bool VmConfig::ParseFlags(const std::vector<std::string>& flags, VmConfig* out,
                          std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  for (const std::string& flag : flags) {
    if (flag.rfind("-Xmx", 0) == 0) {
      std::string v = flag.substr(4);
      size_t mult = 1;
      if (!v.empty() && (v.back() == 'm' || v.back() == 'M')) {
        v.pop_back();
      } else if (!v.empty() && (v.back() == 'g' || v.back() == 'G')) {
        v.pop_back();
        mult = 1024;
      }
      char* end = nullptr;
      long n = std::strtol(v.c_str(), &end, 10);
      if (end == v.c_str() || n <= 0) {
        return fail("bad heap size: " + flag);
      }
      out->heap_mb = static_cast<size_t>(n) * mult;
    } else if (flag == "-XX:+UseROLP") {
      out->gc = GcKind::kRolp;
    } else if (flag.rfind("-XX:GC=", 0) == 0) {
      if (!ParseGcName(flag.substr(7), &out->gc)) {
        return fail("unknown collector: " + flag);
      }
    } else if (flag.rfind("-XX:ROLPFilter=", 0) == 0) {
      std::string list = flag.substr(15);
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) {
          comma = list.size();
        }
        if (comma > pos) {
          out->filter.Include(list.substr(pos, comma - pos));
        }
        pos = comma + 1;
      }
    } else if (flag.rfind("-XX:MaxTenuringThreshold=", 0) == 0) {
      out->gc_config.tenuring_threshold =
          static_cast<uint32_t>(std::strtoul(flag.substr(25).c_str(), nullptr, 10));
    } else if (flag.rfind("-XX:ROLPConflictP=", 0) == 0) {
      double pct = std::strtod(flag.substr(18).c_str(), nullptr);
      if (pct <= 0.0 || pct > 100.0) {
        return fail("bad conflict P: " + flag);
      }
      out->rolp.conflict_p = pct / 100.0;
    } else if (flag.rfind("-XX:ParallelGCThreads=", 0) == 0) {
      uint32_t n = static_cast<uint32_t>(std::strtoul(flag.substr(22).c_str(), nullptr, 10));
      if (n == 0) {
        return fail("bad worker count: " + flag);
      }
      out->gc_config.num_workers = n;
    } else {
      return fail("unknown flag: " + flag);
    }
  }
  return true;
}

VM::VM(const VmConfig& config) : config_(config) {
  // Fail points requested via ROLP_FAULTS arm before any subsystem runs;
  // ROLP_CHAOS then arms its seeded probability campaign on top.
  FaultInjection::Instance().LoadFromEnv();
  FaultInjection::Instance().LoadChaosFromEnv();

  HeapConfig hc;
  hc.heap_bytes = config_.heap_mb * 1024 * 1024;
  hc.region_bytes = config_.region_kb * 1024;
  hc.young_fraction = config_.young_fraction;
  hc.tenuring_threshold = config_.gc_config.tenuring_threshold;
  // Evacuation reserve (DESIGN.md §13): regions only GC-internal allocation
  // may consume, so evacuation under pressure always has a destination.
  // Default: 2 regions once the heap is large enough that losing them to the
  // mutator budget is noise; ROLP_GOV_EVAC_RESERVE overrides (0 disables).
  size_t total_regions = hc.heap_bytes / hc.region_bytes;
  hc.evac_reserve_regions = static_cast<size_t>(
      EnvInt64("ROLP_GOV_EVAC_RESERVE", total_regions >= 64 ? 2 : 0));
  // Arena layer (DESIGN.md §15): ROLP_HEAP_ARENAS / ROLP_HEAP_THP /
  // ROLP_NUMA / ROLP_HEAP_UNCOMMIT_MS. The default is one arena, no THP, no
  // uncommit — identical to the pre-arena heap.
  hc.arenas = HeapArenaOptions::FromEnv();
  heap_ = std::make_unique<Heap>(hc);

  jit_ = std::make_unique<JitEngine>(config_.jit, config_.filter);

  GcConfig gcfg = config_.gc_config;
  // Concurrent evacuation for the regional collectors (DESIGN.md §14): copy
  // the cset outside the pause behind a healing load barrier; off keeps the
  // classic fully-STW evacuation pause. CMS/ZGC ignore the knob.
  gcfg.concurrent_evac = EnvBool("ROLP_CONCURRENT_EVAC", false);
  switch (config_.gc) {
    case GcKind::kG1:
      gcfg.use_dynamic_gens = false;
      collector_ = std::make_unique<RegionalCollector>(heap_.get(), gcfg, &safepoints_);
      break;
    case GcKind::kNg2c:
      gcfg.use_dynamic_gens = true;
      collector_ = std::make_unique<RegionalCollector>(heap_.get(), gcfg, &safepoints_);
      break;
    case GcKind::kRolp: {
      gcfg.use_dynamic_gens = true;
      collector_ = std::make_unique<RegionalCollector>(heap_.get(), gcfg, &safepoints_);
      RolpConfig rc = config_.rolp;
      rc.max_gc_workers = gcfg.num_workers > rc.max_gc_workers ? gcfg.num_workers
                                                               : rc.max_gc_workers;
      // Allocation fast-lane knobs (DESIGN.md §9): ROLP_ALLOC_BUFFER=0 turns
      // the per-thread sample buffers off; ROLP_ALLOC_BUFFER_SLOTS resizes
      // them (0 also disables).
      if (!EnvBool("ROLP_ALLOC_BUFFER", true)) {
        rc.alloc_buffer_slots = 0;
      } else {
        rc.alloc_buffer_slots = static_cast<uint32_t>(
            EnvInt64("ROLP_ALLOC_BUFFER_SLOTS", rc.alloc_buffer_slots));
      }
      // Off-pause lifetime inference (DESIGN.md §10): analysis runs on a
      // background thread; decisions publish at the next safepoint.
      rc.async_inference = EnvBool("ROLP_ASYNC_INFERENCE", true);
      profiler_ = std::make_unique<Profiler>(rc);
      profiler_->SetCallSiteControl(jit_.get());
      break;
    }
    case GcKind::kCms:
      collector_ = std::make_unique<CmsCollector>(heap_.get(), gcfg, &safepoints_);
      break;
    case GcKind::kZgc:
      collector_ = std::make_unique<ZgcCollector>(heap_.get(), gcfg, &safepoints_);
      break;
  }
  collector_->set_profiler(this);
  if (profiler_ != nullptr) {
    // OLD-table cross-check for the sampled verification walk. Suppressed
    // whenever a row may be legitimately absent: degraded mode cleared the
    // table, or the table shed samples / rejected contexts since the previous
    // pass. The shed counters are compared as per-pass deltas (baseline
    // refreshed by on_pass_begin on the pause thread) so a single drop early
    // in the run does not disable the check for the rest of the process.
    Profiler* p = profiler_.get();
    struct OldCheckState {
      uint64_t dropped = 0;
      uint64_t rejected = 0;
      std::atomic<bool> suppress{false};
    };
    auto st = std::make_shared<OldCheckState>();
    VerifyOptions& vo = collector_->mutable_verify_options();
    vo.on_pass_begin = [p, st] {
      uint64_t d = p->old_table().dropped_samples();
      uint64_t r = p->old_table().rejected_contexts();
      st->suppress.store(d != st->dropped || r != st->rejected,
                         std::memory_order_relaxed);
      st->dropped = d;
      st->rejected = r;
    };
    vo.context_known = [p, st](uint32_t context) {
      if (p->degraded() || st->suppress.load(std::memory_order_relaxed)) {
        return true;
      }
      return p->old_table().Contains(context);
    };
  }

  crash_provider_ = std::make_unique<ScopedCrashContextProvider>(
      "vm", [this](std::FILE* out) {
        std::fprintf(out, "collector: %s\n", collector_->name());
        std::fprintf(out,
                     "last gc end: cycle=%llu pause_ns=%llu kind=%d\n",
                     (unsigned long long)last_gc_end_.gc_cycle,
                     (unsigned long long)last_gc_end_.pause_ns,
                     (int)last_gc_end_.kind);
        RegionManager::Usage u = heap_->regions().ComputeUsage();
        std::fprintf(out,
                     "regions: eden=%zu survivor=%zu old=%zu gen=%zu humongous=%zu "
                     "used_bytes=%zu of %zu regions\n",
                     u.eden_regions, u.survivor_regions, u.old_regions, u.gen_regions,
                     u.humongous_regions, u.used_bytes, heap_->regions().num_regions());
        if (profiler_ != nullptr) {
          OldTable& t = profiler_->old_table();
          std::fprintf(out,
                       "old table: occupied=%zu capacity=%zu dropped=%llu rejected=%llu "
                       "grows=%zu\n",
                       t.occupied(), t.capacity(), (unsigned long long)t.dropped_samples(),
                       (unsigned long long)t.rejected_contexts(), t.grow_count());
          std::fprintf(out, "profiler: degraded=%d reason=%s entries=%llu decisions=%llu\n",
                       profiler_->degraded() ? 1 : 0,
                       DegradeReasonName(profiler_->last_degrade_reason()),
                       (unsigned long long)profiler_->degraded_entries(),
                       (unsigned long long)profiler_->decisions_count());
        }
      });

  // Observability (DESIGN.md §11): ROLP_TRACE arms the trace layer for the
  // whole process; the metrics/old-table dumps below write at VM teardown.
  Trace::InitFromEnv();
  RegisterMetrics();
  metrics_dump_path_ = EnvString("ROLP_METRICS_DUMP", "");
  old_table_dump_path_ = EnvString("ROLP_DUMP_OLD_TABLE", "");
  int64_t interval_ms = EnvInt64("ROLP_METRICS_INTERVAL_MS", 0);
  if (!metrics_dump_path_.empty() && interval_ms > 0) {
    dump_thread_ = std::thread([this, interval_ms] {
      std::unique_lock<std::mutex> lock(dump_mu_);
      while (!dump_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                                [this] { return dump_stop_; })) {
        MetricsRegistry::Instance().WriteSnapshotFiles(metrics_dump_path_);
      }
    });
  }
}

VM::~VM() {
  if (dump_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> guard(dump_mu_);
      dump_stop_ = true;
    }
    dump_cv_.notify_all();
    dump_thread_.join();
  }
  WriteObservabilityDumps();
  // Threads must be detached by their owners before the VM dies.
  std::lock_guard<SpinLock> guard(threads_lock_);
  ROLP_CHECK(threads_.empty());
}

void VM::RegisterMetrics() {
  ScopedMetrics& m = metrics_publisher_;
  m.set_prefix(config_.metrics_prefix);
  GcMetrics& gm = collector_->metrics();
  m.Gauge("gc.cycles", [&gm] { return static_cast<double>(gm.GcCycles()); });
  m.Gauge("gc.pauses", [&gm] { return static_cast<double>(gm.PauseCount()); });
  m.Gauge("gc.pause.total_ns", [&gm] { return static_cast<double>(gm.TotalPauseNs()); });
  m.Gauge("gc.pause.max_ns", [&gm] { return static_cast<double>(gm.MaxPauseNs()); });
  m.Gauge("gc.pause.p50_ns",
          [&gm] { return static_cast<double>(gm.PausePercentileNs(50.0)); });
  m.Gauge("gc.pause.p99_ns",
          [&gm] { return static_cast<double>(gm.PausePercentileNs(99.0)); });
  m.Gauge("gc.bytes_copied", [&gm] { return static_cast<double>(gm.BytesCopied()); });
  m.Gauge("gc.bytes_promoted", [&gm] { return static_cast<double>(gm.BytesPromoted()); });
  m.Gauge("gc.pause.scan_ns", [&gm] { return static_cast<double>(gm.PauseScanNs()); });
  m.Gauge("gc.pause.evac_ns", [&gm] { return static_cast<double>(gm.PauseEvacNs()); });
  m.Gauge("gc.pause.profiler_ns",
          [&gm] { return static_cast<double>(gm.PauseProfilerNs()); });
  m.Gauge("gc.pause.remap_ns", [&gm] { return static_cast<double>(gm.PauseRemapNs()); });
  m.Gauge("gc.evac_cpu_ns", [&gm] { return static_cast<double>(gm.EvacCpuNs()); });
  m.Gauge("gc.remap_cpu_ns", [&gm] { return static_cast<double>(gm.RemapCpuNs()); });
  m.Gauge("gc.concurrent_work_ns",
          [&gm] { return static_cast<double>(gm.ConcurrentWorkNs()); });
  if (config_.gc == GcKind::kG1 || config_.gc == GcKind::kNg2c ||
      config_.gc == GcKind::kRolp) {
    auto* rc = static_cast<RegionalCollector*>(collector_.get());
    m.Gauge("gc.concurrent.mutator_healed_objects",
            [rc] { return static_cast<double>(rc->mutator_healed_objects()); });
    m.Gauge("gc.concurrent.mutator_healed_bytes",
            [rc] { return static_cast<double>(rc->mutator_healed_bytes()); });
    m.Gauge("gc.concurrent.whole_regions_reclaimed",
            [rc] { return static_cast<double>(rc->whole_regions_reclaimed()); });
  }
  if (config_.gc == GcKind::kZgc) {
    auto* z = static_cast<ZgcCollector*>(collector_.get());
    m.Gauge("zgc.healed_slots",
            [z] { return static_cast<double>(z->barrier_healed_slots()); });
    m.Gauge("zgc.gc_relocated",
            [z] { return static_cast<double>(z->gc_relocated_objects()); });
  }
  m.Histogram("gc.pause_ns",
              [&gm] { return SnapshotLogHistogram(gm.PauseHistogramSnapshot()); });

  m.Gauge("vm.allocations", [this] { return static_cast<double>(total_allocations()); });
  m.Gauge("vm.osr_injected", [this] { return static_cast<double>(total_osr_injected()); });
  m.Gauge("vm.osr_repaired", [this] { return static_cast<double>(total_osr_repaired()); });
  m.Gauge("vm.exception_fixups",
          [this] { return static_cast<double>(total_exception_fixups()); });
  m.Gauge("vm.recoverable_ooms",
          [this] { return static_cast<double>(total_recoverable_ooms()); });

  m.Gauge("faults.total_fires",
          [] { return static_cast<double>(FaultInjection::Instance().TotalFires()); });
  // Per-fail-point hit/fire counters: one gauge pair per catalog entry, so a
  // ROLP_METRICS_DUMP snapshot records exactly which points a chaos campaign
  // exercised and how often they fired.
  for (const auto& entry : FaultInjection::Catalog()) {
    const char* point = entry.name;
    m.Gauge(std::string("faults.point.") + point + ".hits", [point] {
      return static_cast<double>(FaultInjection::Instance().Hits(point));
    });
    m.Gauge(std::string("faults.point.") + point + ".fires", [point] {
      return static_cast<double>(FaultInjection::Instance().Fires(point));
    });
  }

  Heap* h = heap_.get();
  m.Gauge("heap.quarantined_regions", [h] {
    return static_cast<double>(h->regions().quarantined_regions());
  });
  m.Gauge("governor.level", [h] {
    return static_cast<double>(static_cast<uint8_t>(h->governor().level()));
  });
  m.Gauge("governor.max_level", [h] {
    return static_cast<double>(static_cast<uint8_t>(h->governor().max_level()));
  });
  m.Gauge("governor.occupancy", [h] { return h->governor().last_occupancy(); });
  m.Gauge("governor.transitions",
          [h] { return static_cast<double>(h->governor().transitions()); });
  m.Gauge("governor.gc_requests",
          [h] { return static_cast<double>(h->governor().gc_requests()); });
  m.Gauge("governor.throttle_stalls",
          [h] { return static_cast<double>(h->governor().throttle_stalls()); });
  m.Gauge("heap.evac_reserve_regions",
          [h] { return static_cast<double>(h->regions().evac_reserve()); });
  m.Gauge("gc.pause.verify_ns", [&gm] { return static_cast<double>(gm.PauseVerifyNs()); });

  // Arena layer (DESIGN.md §15): shard count, free-pool and uncommit state,
  // and the region-lock contention counters — the CPU-time scaling signal the
  // 1-CPU bench container can still measure.
  m.Gauge("heap.arenas", [h] { return static_cast<double>(h->regions().num_arenas()); });
  m.Gauge("heap.free_regions",
          [h] { return static_cast<double>(h->regions().free_regions()); });
  m.Gauge("heap.uncommitted_regions",
          [h] { return static_cast<double>(h->regions().uncommitted_regions()); });
  m.Gauge("heap.region.commits",
          [h] { return static_cast<double>(h->regions().region_commits()); });
  m.Gauge("heap.region.uncommits",
          [h] { return static_cast<double>(h->regions().region_uncommits()); });
  m.Gauge("heap.region_lock.acquisitions",
          [h] { return static_cast<double>(h->regions().lock_acquisitions()); });
  m.Gauge("heap.region_lock.stall_ns",
          [h] { return static_cast<double>(h->regions().lock_stall_ns()); });
  // Whole-process RSS: the live view of what uncommit returns to the OS.
  m.Gauge("vm.rss_bytes", [] { return static_cast<double>(CurrentRssBytes()); });

  // Per-phase thread-CPU totals (WatchdogPhaseScope deltas), one gauge per
  // GcPhase that can actually run — kIdle excluded.
  for (GcPhase phase : {GcPhase::kMark, GcPhase::kScan, GcPhase::kEvacuate,
                        GcPhase::kCompact, GcPhase::kVerify, GcPhase::kProfilerMerge,
                        GcPhase::kConcurrentEvac}) {
    size_t slot = static_cast<size_t>(phase);
    m.Gauge(std::string("gc.phase_cpu_ns.") + GcPhaseName(phase),
            [&gm, slot] { return static_cast<double>(gm.PhaseCpuNs(slot)); });
  }

  // Sampled through the collector so ROLP_WATCHDOG=0 (null watchdog) reads 0.
  Collector* c = collector_.get();
  m.Gauge("verify.refs_healed",
          [c] { return static_cast<double>(c->verify_stats().refs_healed); });
  m.Gauge("verify.refs_nulled",
          [c] { return static_cast<double>(c->verify_stats().refs_nulled); });
  m.Gauge("watchdog.overruns", [c] {
    GcWatchdog* w = c->watchdog();
    return w == nullptr ? 0.0 : static_cast<double>(w->stats().overruns_detected);
  });
  m.Gauge("watchdog.phases_cancelled", [c] {
    GcWatchdog* w = c->watchdog();
    return w == nullptr ? 0.0 : static_cast<double>(w->stats().phases_cancelled);
  });
  m.Gauge("watchdog.worker_stalls", [c] {
    GcWatchdog* w = c->watchdog();
    return w == nullptr ? 0.0 : static_cast<double>(w->stats().worker_stalls_detected);
  });
  m.Gauge("watchdog.items_requeued", [c] {
    GcWatchdog* w = c->watchdog();
    return w == nullptr ? 0.0 : static_cast<double>(w->stats().items_requeued);
  });

  if (profiler_ != nullptr) {
    Profiler* p = profiler_.get();
    m.Gauge("rolp.inferences", [p] { return static_cast<double>(p->inferences_run()); });
    m.Gauge("rolp.decisions", [p] { return static_cast<double>(p->decisions_count()); });
    m.Gauge("rolp.conflicts", [p] { return static_cast<double>(p->conflicts_total()); });
    m.Gauge("rolp.survivors_seen",
            [p] { return static_cast<double>(p->survivors_seen()); });
    m.Gauge("rolp.degraded", [p] { return p->degraded() ? 1.0 : 0.0; });
    m.Gauge("rolp.degraded_entries",
            [p] { return static_cast<double>(p->degraded_entries()); });
    m.Gauge("rolp.tracking_toggles",
            [p] { return static_cast<double>(p->survivor_tracking_toggles()); });
    m.Gauge("rolp.async_inferences_started",
            [p] { return static_cast<double>(p->async_inferences_started()); });
    m.Gauge("rolp.stale_inferences_discarded",
            [p] { return static_cast<double>(p->stale_inferences_discarded()); });
    m.Gauge("rolp.old_table.occupied",
            [p] { return static_cast<double>(p->old_table().occupied()); });
    m.Gauge("rolp.old_table.capacity",
            [p] { return static_cast<double>(p->old_table().capacity()); });
    m.Gauge("rolp.old_table.dropped",
            [p] { return static_cast<double>(p->old_table().dropped_samples()); });
    m.Gauge("rolp.old_table.rejected",
            [p] { return static_cast<double>(p->old_table().rejected_contexts()); });
  }
}

void VM::WriteObservabilityDumps() {
  if (!metrics_dump_path_.empty()) {
    MetricsRegistry::Instance().WriteSnapshotFiles(metrics_dump_path_);
    // Companion fault-catalog dump: per-point mode and hit/fire counters in
    // human-readable form (the JSON snapshot carries the same numbers as
    // faults.point.* gauges).
    std::string faults_path = metrics_dump_path_ + ".faults";
    std::FILE* f = std::fopen(faults_path.c_str(), "w");
    if (f != nullptr) {
      FaultInjection::Instance().DumpTo(f);
      std::fclose(f);
    } else {
      ROLP_LOG_ERROR("metrics: cannot open %s for writing", faults_path.c_str());
    }
  }
  if (!old_table_dump_path_.empty() && profiler_ != nullptr) {
    profiler_->WriteIntrospection(old_table_dump_path_);
  }
}

RuntimeThread* VM::AttachThread() {
  std::lock_guard<SpinLock> guard(threads_lock_);
  auto owned = std::make_unique<RuntimeThread>(this, next_thread_id_++);
  RuntimeThread* t = owned.get();
  all_threads_.push_back(std::move(owned));
  threads_.push_back(t);
  safepoints_.RegisterThread(&t->gc_context());
  return t;
}

void VM::DetachThread(RuntimeThread* thread) {
  // The thread's batched OLD-table increments must not die with it.
  thread->FlushAllocBuffer();
  collector_->OnMutatorExit(&thread->gc_context());
  safepoints_.UnregisterThread(&thread->gc_context());
  std::lock_guard<SpinLock> guard(threads_lock_);
  for (size_t i = 0; i < threads_.size(); i++) {
    if (threads_[i] == thread) {
      threads_[i] = threads_.back();
      threads_.pop_back();
      break;
    }
  }
}

GlobalRef VM::NewGlobalRoot(Object* initial) { return GlobalRef(&heap_->roots(), initial); }

Object* VM::LoadGlobal(const GlobalRef& ref) {
  if (!ref.valid()) {
    return nullptr;
  }
  // Route through the barrier so the read heals under the concurrent
  // collector.
  return heap_->LoadRef(ref.slot());
}

bool VM::SurvivorTrackingEnabled() const {
  return profiler_ != nullptr && profiler_->SurvivorTrackingEnabled();
}

void VM::OnSurvivor(uint32_t worker_id, uint64_t old_mark) {
  if (profiler_ != nullptr) {
    profiler_->OnSurvivor(worker_id, old_mark);
  }
}

void VM::OnGcEnd(const GcEndInfo& info) {
  last_gc_end_ = info;
  // Paper section 7.2.3: at the end of each GC cycle, while the world is
  // still stopped, verify every thread's stack state against its frame stack
  // and repair OSR-induced corruption. The same walk drains every thread's
  // allocation sample buffer so OLD-table counts are exact before the
  // profiler merges survivors and runs inference, and so cached pretenuring
  // decisions cannot outlive the decision set published below (DESIGN.md §9).
  {
    std::lock_guard<SpinLock> guard(threads_lock_);
    for (RuntimeThread* t : threads_) {
      t->VerifyAndRepairTss();
      t->FlushAllocBuffer();
    }
  }
  // Refresh the pressure ladder on the exact post-collection occupancy and,
  // while the world is still stopped, let rung 3 shed the profiler's weight.
  HeapGovernor& governor = heap_->governor();
  PressureLevel level = governor.Update();
  if (profiler_ != nullptr) {
    profiler_->OnHeapPressure(level >= PressureLevel::kDegrade);
    profiler_->OnGcEnd(info);
  }
}

void VM::OnGenFragmentation(uint8_t gen, double live_ratio) {
  if (profiler_ != nullptr) {
    profiler_->OnGenFragmentation(gen, live_ratio);
  }
}

void VM::OnGcOverrun(bool survivor_tracking_active) {
  if (profiler_ != nullptr) {
    profiler_->OnGcOverrun(survivor_tracking_active);
  }
}

void VM::OnHeapCorruption(size_t finding_count) {
  if (profiler_ != nullptr) {
    profiler_->OnHeapCorruption(finding_count);
  }
}

uint64_t VM::total_exception_fixups() const {
  std::lock_guard<SpinLock> guard(threads_lock_);
  uint64_t n = 0;
  for (const auto& t : all_threads_) {
    n += t->exception_fixups();
  }
  return n;
}

uint64_t VM::total_osr_injected() const {
  std::lock_guard<SpinLock> guard(threads_lock_);
  uint64_t n = 0;
  for (const auto& t : all_threads_) {
    n += t->osr_injected();
  }
  return n;
}

uint64_t VM::total_osr_repaired() const {
  std::lock_guard<SpinLock> guard(threads_lock_);
  uint64_t n = 0;
  for (const auto& t : all_threads_) {
    n += t->osr_repaired();
  }
  return n;
}

uint64_t VM::total_allocations() const {
  std::lock_guard<SpinLock> guard(threads_lock_);
  uint64_t n = 0;
  for (const auto& t : all_threads_) {
    n += t->allocations();
  }
  return n;
}

uint64_t VM::total_recoverable_ooms() const {
  std::lock_guard<SpinLock> guard(threads_lock_);
  uint64_t n = 0;
  for (const auto& t : all_threads_) {
    n += t->recoverable_ooms();
  }
  return n;
}

}  // namespace rolp
