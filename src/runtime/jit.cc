#include "src/runtime/jit.h"

#include <mutex>

#include "src/util/check.h"
#include "src/util/log.h"

namespace rolp {

JitEngine::JitEngine(const JitConfig& config, PackageFilter filter)
    : config_(config), filter_(std::move(filter)), rng_(config.seed) {}

MethodId JitEngine::RegisterMethod(const std::string& name, uint32_t bytecode_size) {
  std::lock_guard<SpinLock> guard(lock_);
  MethodInfo& m = methods_.emplace_back();
  m.id = static_cast<MethodId>(methods_.size() - 1);
  m.name = name;
  m.bytecode_size = bytecode_size;
  return m.id;
}

uint32_t JitEngine::RegisterAllocSite(MethodId method, uint8_t ng2c_hint) {
  std::lock_guard<SpinLock> guard(lock_);
  ROLP_CHECK(method < methods_.size());
  AllocSiteInfo& s = alloc_sites_.emplace_back();
  s.index = static_cast<uint32_t>(alloc_sites_.size() - 1);
  s.method = method;
  s.ng2c_hint = ng2c_hint;
  methods_[method].alloc_sites.push_back(s.index);
  return s.index;
}

uint32_t JitEngine::RegisterCallSite(MethodId caller, MethodId callee) {
  std::lock_guard<SpinLock> guard(lock_);
  ROLP_CHECK(caller < methods_.size() && callee < methods_.size());
  CallSite& c = call_sites_.emplace_back();
  c.index = static_cast<uint32_t>(call_sites_.size() - 1);
  c.caller = caller;
  c.callee = callee;
  methods_[caller].call_sites.push_back(c.index);
  return c.index;
}

uint16_t JitEngine::NextSiteId() {
  // 16-bit identifiers; when exhausted, further sites stay unprofiled.
  if (next_site_id_ == 0) {
    return 0;
  }
  uint16_t id = next_site_id_;
  next_site_id_ = next_site_id_ == 0xFFFF ? 0 : next_site_id_ + 1;
  return id;
}

uint16_t JitEngine::NextCallHash() {
  // Unique non-zero 16-bit additive hash per call site (paper's "unique
  // method call identifier"). Random draws keep sums of subsets spread out,
  // which is what keeps thread-stack-state collisions rare (section 3.2.1).
  uint16_t h = 0;
  while (h == 0) {
    h = static_cast<uint16_t>(rng_.NextU64());
  }
  return h;
}

void JitEngine::Compile(MethodId method_id) {
  std::lock_guard<SpinLock> guard(lock_);
  MethodInfo& m = methods_[method_id];
  if (m.jitted.load(std::memory_order_relaxed)) {
    return;
  }
  m.filter_pass = filter_.ShouldProfile(m.name);
  m.jitted.store(true, std::memory_order_release);

  // Allocation sites become profiled (get header ids) when their method is
  // compiled and the filter admits it.
  if (m.filter_pass) {
    for (uint32_t si : m.alloc_sites) {
      AllocSiteInfo& s = alloc_sites_[si];
      if (s.site_id.load(std::memory_order_relaxed) == 0) {
        s.site_id.store(NextSiteId(), std::memory_order_release);
      }
    }
  }

  // Outgoing call sites: inline small callees (never profiled); instrument
  // the rest if call profiling is on and the filter admits the caller.
  for (uint32_t ci : m.call_sites) {
    CallSite& c = call_sites_[ci];
    MethodInfo& callee = methods_[c.callee];
    if (callee.bytecode_size <= config_.inline_max_bytecode) {
      c.inlined = true;
      continue;
    }
    if (!call_profiling_active() || !m.filter_pass) {
      continue;
    }
    if (!c.instrumented.load(std::memory_order_relaxed)) {
      c.assigned_hash = NextCallHash();
      c.instrumented.store(true, std::memory_order_relaxed);
      profilable_.push_back(ci);
      if (config_.level == ProfilingLevel::kSlowCall) {
        c.tss_hash.store(c.assigned_hash, std::memory_order_release);
      }
    }
  }
}

void JitEngine::CompileAll() {
  size_t n;
  {
    std::lock_guard<SpinLock> guard(lock_);
    n = methods_.size();
  }
  for (MethodId id = 0; id < n; id++) {
    Compile(id);
  }
}

size_t JitEngine::NumProfilableCallSites() const {
  std::lock_guard<SpinLock> guard(lock_);
  return profilable_.size();
}

void JitEngine::SetCallSiteTracking(size_t index, bool enabled) {
  std::lock_guard<SpinLock> guard(lock_);
  ROLP_CHECK(index < profilable_.size());
  CallSite& c = call_sites_[profilable_[index]];
  if (config_.level == ProfilingLevel::kFastCall && enabled) {
    return;  // Fig. 6 fast-call level: the slow branch is never taken
  }
  c.tss_hash.store(enabled ? c.assigned_hash : 0, std::memory_order_release);
}

bool JitEngine::CallSiteTracking(size_t index) const {
  std::lock_guard<SpinLock> guard(lock_);
  ROLP_CHECK(index < profilable_.size());
  return call_sites_[profilable_[index]].tss_hash.load(std::memory_order_relaxed) != 0;
}

size_t JitEngine::num_methods() const {
  std::lock_guard<SpinLock> guard(lock_);
  return methods_.size();
}

size_t JitEngine::num_alloc_sites() const {
  std::lock_guard<SpinLock> guard(lock_);
  return alloc_sites_.size();
}

size_t JitEngine::num_call_sites() const {
  std::lock_guard<SpinLock> guard(lock_);
  return call_sites_.size();
}

size_t JitEngine::profiled_alloc_sites() const {
  std::lock_guard<SpinLock> guard(lock_);
  size_t n = 0;
  for (const auto& s : alloc_sites_) {
    if (s.site_id.load(std::memory_order_relaxed) != 0) {
      n++;
    }
  }
  return n;
}

size_t JitEngine::tracked_call_sites() const {
  std::lock_guard<SpinLock> guard(lock_);
  size_t n = 0;
  for (const auto& c : call_sites_) {
    if (c.tss_hash.load(std::memory_order_relaxed) != 0) {
      n++;
    }
  }
  return n;
}

size_t JitEngine::instrumented_call_sites() const {
  std::lock_guard<SpinLock> guard(lock_);
  size_t n = 0;
  for (const auto& c : call_sites_) {
    n += c.instrumented.load(std::memory_order_relaxed) ? 1 : 0;
  }
  return n;
}

size_t JitEngine::inlined_call_sites() const {
  std::lock_guard<SpinLock> guard(lock_);
  size_t n = 0;
  for (const auto& c : call_sites_) {
    n += c.inlined ? 1 : 0;
  }
  return n;
}

size_t JitEngine::jitted_methods() const {
  std::lock_guard<SpinLock> guard(lock_);
  size_t n = 0;
  for (const auto& m : methods_) {
    n += m.jitted.load(std::memory_order_relaxed) ? 1 : 0;
  }
  return n;
}

double JitEngine::pas_fraction() const {
  size_t total = num_alloc_sites();
  return total == 0 ? 0.0
                    : static_cast<double>(profiled_alloc_sites()) / static_cast<double>(total);
}

double JitEngine::pmc_fraction() const {
  size_t total = num_call_sites();
  return total == 0 ? 0.0
                    : static_cast<double>(tracked_call_sites()) / static_cast<double>(total);
}

}  // namespace rolp
