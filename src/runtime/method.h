// Method, call-site, and allocation-site metadata — the runtime's analogue of
// HotSpot's method/bytecode structures at the granularity ROLP cares about.
//
// A "method" has a qualified name (package filters match it), a bytecode size
// (drives inlining), an invocation counter (drives JIT compilation), and owns
// allocation sites and outgoing call sites. Call sites carry the fast/slow
// profiling branch of paper section 3.2.4: a 16-bit hash that is zero while
// tracking is off (fast branch: test + jump) and non-zero while the thread
// stack state is being updated (slow branch: add on entry, sub on exit).
#ifndef SRC_RUNTIME_METHOD_H_
#define SRC_RUNTIME_METHOD_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace rolp {

using MethodId = uint32_t;

struct MethodInfo {
  MethodId id = 0;
  std::string name;          // "package.Class::method"
  uint32_t bytecode_size = 0;

  std::atomic<uint64_t> invocations{0};
  std::atomic<bool> jitted{false};
  bool filter_pass = false;  // package filter verdict, decided at JIT time

  std::vector<uint32_t> alloc_sites;  // AllocSiteInfo ids owned by this method
  std::vector<uint32_t> call_sites;   // outgoing CallSite ids
};

struct AllocSiteInfo {
  uint32_t index = 0;        // dense registry index
  MethodId method = 0;
  // 16-bit header site id; 0 until the owning method is jitted and passes the
  // package filter (paper: identifiers are created when profiling code is
  // installed during JIT).
  std::atomic<uint16_t> site_id{0};
  // Oracle lifetime annotation used in NG2C mode (0 = young, 1..15).
  uint8_t ng2c_hint = 0;
};

struct CallSite {
  uint32_t index = 0;
  MethodId caller = 0;
  MethodId callee = 0;
  bool inlined = false;      // decided when the caller is jitted; never profiled
  // Profiling branch emitted into the caller's code. Written once under the
  // JIT lock when the caller compiles, but read lock-free on every invocation
  // (MethodFrame fast path), so it is a relaxed atomic.
  std::atomic<bool> instrumented{false};
  uint16_t assigned_hash = 0;  // unique non-zero value used when tracking
  // The live knob: non-zero while this call site updates the thread stack
  // state (the slow branch). Mirrors assigned_hash or 0.
  std::atomic<uint16_t> tss_hash{0};
};

}  // namespace rolp

#endif  // SRC_RUNTIME_METHOD_H_
