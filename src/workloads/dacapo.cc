#include "src/workloads/dacapo.h"

#include <cstring>

#include "src/runtime/frame.h"
#include "src/util/check.h"

namespace rolp {

const std::vector<DacapoSpec>& DacapoSuite() {
  // name          heap  methods layers sites fanout small  bytes surv  window confl exc  allocs
  static const std::vector<DacapoSpec> kSuite = {
      {"avrora",     32,  120,  4,  70,  1.5, 0.50,   64, 0.02,  2000, 0, 0.000, 40},
      {"eclipse",    96,  480,  6, 330,  2.0, 0.40,  128, 0.06,  8000, 0, 0.002, 60},
      {"fop",        48,  900,  5, 830,  2.5, 0.35,  160, 0.04,  4000, 0, 0.001, 120},
      {"h2",         96,  420,  5, 120,  2.0, 0.45,  256, 0.10, 16000, 0, 0.000, 50},
      {"jython",     48, 2400,  7, 740,  3.0, 0.55,   96, 0.03,  3000, 0, 0.004, 150},
      {"luindex",    40,  160,  4,  90,  1.5, 0.40,  192, 0.08,  6000, 0, 0.000, 45},
      {"lusearch",   40,  190,  4, 130,  1.6, 0.40,  128, 0.02,  1500, 0, 0.000, 55},
      {"pmd",        40,  820,  6, 370,  2.4, 0.35,  112, 0.05,  5000, 6, 0.003, 90},
      {"sunflow",    36,  140,  4, 230,  1.4, 0.30,  320, 0.03,  2500, 0, 0.000, 160},
      {"tomcat",     64,  760,  6, 440,  2.2, 0.40,  144, 0.05,  6000, 4, 0.005, 80},
      {"tradebeans", 64,  560,  6, 230,  2.0, 0.45,  176, 0.07,  9000, 0, 0.002, 70},
      {"tradesoap",  64, 1500,  7, 260,  2.6, 0.45,  208, 0.06,  8000, 3, 0.006, 85},
      {"xalan",      32,  540,  5, 410,  2.2, 0.35,   96, 0.03,  2500, 0, 0.001, 100},
  };
  return kSuite;
}

const DacapoSpec* FindDacapoSpec(const std::string& name) {
  for (const DacapoSpec& spec : DacapoSuite()) {
    if (name == spec.name) {
      return &spec;
    }
  }
  return nullptr;
}

DacapoWorkload::DacapoWorkload(const DacapoSpec& spec, uint64_t seed)
    : spec_(spec), seed_(seed), rng_(seed ^ Mix64(reinterpret_cast<uintptr_t>(spec.name))) {}

DacapoWorkload::~DacapoWorkload() = default;

void DacapoWorkload::Setup(VM& vm, RuntimeThread& t) {
  vm_ = &vm;
  JitEngine& jit = vm.jit();
  Random build_rng(seed_ ^ 0xDACA90);

  // Layered call graph: methods in layer L call methods in layer L+1.
  int per_layer = spec_.methods / spec_.layers;
  ROLP_CHECK(per_layer >= 1);
  methods_.reserve(spec_.methods);
  std::vector<int> layer_of(spec_.methods);
  for (int i = 0; i < spec_.methods; i++) {
    int layer = i / per_layer;
    if (layer >= spec_.layers) {
      layer = spec_.layers - 1;
    }
    layer_of[i] = layer;
    bool small = build_rng.NextDouble() < spec_.small_method_fraction;
    uint32_t bytecode = small ? 8 + static_cast<uint32_t>(build_rng.NextBounded(24))
                              : 48 + static_cast<uint32_t>(build_rng.NextBounded(400));
    char name[96];
    std::snprintf(name, sizeof(name), "dacapo.%s.L%d.C%d::m", spec_.name, layer, i);
    methods_.push_back(jit.RegisterMethod(name, bytecode));
  }
  out_calls_.assign(spec_.methods, {});
  m_sites_.assign(spec_.methods, {});

  for (int i = 0; i < spec_.methods; i++) {
    if (layer_of[i] + 1 >= spec_.layers) {
      continue;
    }
    int callees = 1 + static_cast<int>(build_rng.NextDouble() * 2.0 * (spec_.fanout - 1.0) + 0.5);
    for (int c = 0; c < callees; c++) {
      int lo = (layer_of[i] + 1) * per_layer;
      int hi = lo + per_layer - 1;
      if (hi >= spec_.methods) {
        hi = spec_.methods - 1;
      }
      int callee = static_cast<int>(build_rng.NextRange(lo, hi));
      out_calls_[i].push_back(jit.RegisterCallSite(methods_[i], methods_[callee]));
    }
  }

  // Allocation sites spread over the methods.
  for (int s = 0; s < spec_.alloc_sites; s++) {
    int m = static_cast<int>(build_rng.NextBounded(spec_.methods));
    m_sites_[m].push_back(jit.RegisterAllocSite(methods_[m]));
  }

  // Conflict helpers: one allocation helper method reached from two distinct
  // call sites; one path's allocations are retained, the other's die young.
  for (int c = 0; c < spec_.conflict_sites; c++) {
    char name[96];
    std::snprintf(name, sizeof(name), "dacapo.%s.Factory%d::create", spec_.name, c);
    MethodId helper = jit.RegisterMethod(name, 120);
    int caller_a = static_cast<int>(build_rng.NextBounded(spec_.methods));
    int caller_b = static_cast<int>(build_rng.NextBounded(spec_.methods));
    ConflictPair pair;
    pair.site = jit.RegisterAllocSite(helper);
    pair.cs_short = jit.RegisterCallSite(methods_[caller_a], helper);
    pair.cs_long = jit.RegisterCallSite(methods_[caller_b], helper);
    conflicts_.push_back(pair);
  }

  HandleScope scope(t);
  Object* window = t.AllocateRefArray(RuntimeThread::kNoSite, spec_.window);
  ROLP_CHECK(window != nullptr);
  window_ = vm.NewGlobalRoot(window);
}

void DacapoWorkload::WalkPath(RuntimeThread& t, size_t method_index, uint64_t path_seed) {
  // Allocate at this method's sites.
  HandleScope scope(t);
  uint64_t mix = Mix64(path_seed);
  for (uint32_t site : m_sites_[method_index]) {
    size_t bytes = spec_.alloc_mean_bytes / 2 +
                   (mix % spec_.alloc_mean_bytes);
    Local obj = t.NewLocal(t.AllocateDataArray(site, bytes));
    if (obj.get() == nullptr) {
      return;
    }
    if (rng_.NextDouble() < spec_.survivor_fraction) {
      Object* window = vm_->LoadGlobal(window_);
      t.StoreElem(window, window_cursor_ % spec_.window, obj.get());
      window_cursor_++;
    }
  }
  // Descend through one call site (random walk down the layers).
  if (!out_calls_[method_index].empty()) {
    uint32_t cs = out_calls_[method_index][mix % out_calls_[method_index].size()];
    MethodFrame f(t, cs);
    CallSite& site = vm_->jit().call_site(cs);
    // Find the callee's index (methods_ ids are dense and in order).
    size_t callee_index = site.callee - methods_[0];
    WalkPath(t, callee_index, mix ^ path_seed);
  }
}

void DacapoWorkload::Op(RuntimeThread& t, uint64_t op_index) {
  uint64_t allocs_done = 0;
  while (allocs_done < spec_.allocs_per_op) {
    size_t entry = rng_.NextBounded(static_cast<uint64_t>(
        spec_.methods / spec_.layers));  // start somewhere in layer 0
    vm_->jit().OnInvocation(methods_[entry]);
    try {
      if (!conflicts_.empty() && rng_.NextBool(0.2)) {
        // Exercise a conflict pair: the same helper site via both paths.
        const ConflictPair& pair = conflicts_[rng_.NextBounded(conflicts_.size())];
        HandleScope scope(t);
        {
          MethodFrame f(t, pair.cs_short);
          Local scratch = t.NewLocal(t.AllocateDataArray(pair.site, spec_.alloc_mean_bytes));
          (void)scratch;  // dies young
        }
        {
          MethodFrame f(t, pair.cs_long);
          Local kept = t.NewLocal(t.AllocateDataArray(pair.site, spec_.alloc_mean_bytes));
          if (kept.get() != nullptr) {
            Object* window = vm_->LoadGlobal(window_);
            t.StoreElem(window, window_cursor_ % spec_.window, kept.get());
            window_cursor_++;
          }
        }
        allocs_done += 2;
      }
      if (spec_.exception_rate > 0 && !out_calls_[entry].empty() &&
          rng_.NextBool(spec_.exception_rate)) {
        // A path that unwinds through frames (section 7.2.2).
        MethodFrame f(t, out_calls_[entry][0]);
        throw GuestException("dacapo synthetic failure");
      }
      WalkPath(t, entry, op_index * 1315423911ull + allocs_done);
    } catch (const GuestException&) {
      exceptions_++;
    }
    allocs_done += 1 + m_sites_[entry].size();
  }
  t.Poll();
}

void DacapoWorkload::Teardown() { window_ = GlobalRef(); }

}  // namespace rolp
