// Bench driver: boots a VM with a chosen collector, runs a workload on N
// mutator threads for a fixed duration, and collects throughput, pause, and
// profiling statistics. Warmup-period pauses/ops can be excluded (the paper
// discards the first minutes of each run).
#ifndef SRC_WORKLOADS_DRIVER_H_
#define SRC_WORKLOADS_DRIVER_H_

#include <string>
#include <vector>

#include "src/util/histogram.h"
#include "src/workloads/workload.h"

namespace rolp {

struct DriverOptions {
  int threads = 1;
  double duration_s = 5.0;
  double warmup_s = 0.0;  // pauses/ops before this offset are excluded
  uint64_t max_ops = 0;   // stop early after this many ops (0 = time-based)
  // Apply the workload's package filter to the ROLP profiler (Table 1 setup).
  bool use_workload_filter = true;
};

struct RunResult {
  std::string workload;
  std::string collector;

  uint64_t ops = 0;              // post-warmup operations
  double measured_s = 0.0;       // post-warmup wall time
  double throughput = 0.0;       // ops per second

  std::vector<PauseRecord> pauses;      // post-warmup
  std::vector<PauseRecord> all_pauses;  // full run (warmup analysis, Fig. 10)
  uint64_t run_start_ns = 0;

  // Exact all-time pause aggregates from GcMetrics. The per-record vectors
  // above come from a ring bounded by ROLP_PAUSE_LOG_CAP: on a long service
  // run they silently hold only the most recent window, so every long-run
  // pause report must be built from these instead. pause_log_truncated flags
  // when the two views diverge.
  uint64_t pause_count_alltime = 0;
  uint64_t total_pause_ns_alltime = 0;
  uint64_t max_pause_ns_alltime = 0;
  LogHistogram pause_hist;           // all-time, log-bucketed (~3% rel. error)
  bool pause_log_truncated = false;  // ring overflowed; all_pauses is partial

  uint64_t max_used_bytes = 0;
  uint64_t total_allocated_bytes = 0;
  uint64_t gc_cycles = 0;
  uint64_t bytes_copied = 0;

  // Profiling summary (Tables 1 and 2).
  uint64_t total_alloc_sites = 0;
  uint64_t profiled_alloc_sites = 0;
  uint64_t total_call_sites = 0;
  uint64_t tracked_call_sites = 0;
  uint64_t instrumented_call_sites = 0;
  uint64_t profilable_call_sites = 0;
  double pas_fraction = 0.0;
  double pmc_fraction = 0.0;
  uint64_t conflicts = 0;
  uint64_t old_table_bytes = 0;
  uint64_t first_decision_cycle = 0;
  uint64_t exception_fixups = 0;
  uint64_t osr_repaired = 0;
  uint64_t survivor_tracking_toggles = 0;

  // Robustness summary: recoverable allocation failures and profiler
  // degraded-mode activity observed during the run.
  uint64_t recoverable_ooms = 0;
  uint64_t profiler_degraded_entries = 0;
  bool profiler_degraded_at_end = false;
  uint64_t old_table_dropped = 0;
  uint64_t decisions_at_end = 0;

  // In-pause verification and recovery summary (chaos campaigns classify
  // outcomes from these).
  uint64_t verify_passes = 0;
  uint64_t verify_findings = 0;
  uint64_t verify_refs_healed = 0;
  uint64_t verify_refs_nulled = 0;
  uint64_t verify_passes_cancelled = 0;
  uint64_t quarantined_regions = 0;
  uint64_t heap_corruption_reports = 0;
  uint64_t watchdog_overruns = 0;
  uint64_t watchdog_phases_cancelled = 0;
  uint64_t fault_fires = 0;

  // Pause percentile / max / total in ms. Exact over the post-warmup records
  // while the ring held every pause; once the ring has overflowed
  // (pause_log_truncated) they switch to the all-time aggregates — max and
  // total stay exact, the percentile comes from the log histogram and covers
  // the whole run including warmup.
  double PausePercentileMs(double p) const;
  double MaxPauseMs() const;
  double TotalPauseMs() const;
};

// Fills the VM-derived half of a RunResult (pauses, heap/GC counters,
// profiling summary, robustness + verification counters). Shared between the
// closed-loop bench driver and the open-loop service harness.
void CollectVmStats(VM& vm, uint64_t warmup_end_ns, RunResult* result);

// Runs `workload` under the given VM configuration. The workload object is
// single-use (Setup is called once).
RunResult RunWorkload(const VmConfig& vm_config, Workload& workload,
                      const DriverOptions& options);

// Exact percentile over arbitrary pause records (used by bench harnesses).
double PercentileMsOf(const std::vector<PauseRecord>& pauses, double p);

}  // namespace rolp

#endif  // SRC_WORKLOADS_DRIVER_H_
