// Workload interface. A workload registers its classes, methods, allocation
// sites, and call sites with the VM (the "application code"), optionally
// builds long-lived state, and then executes operations on mutator threads.
//
// Handle discipline (important): any Object* held across an allocation or a
// safepoint poll must live in a Local handle, a GlobalRef, or an object
// field — collectors move objects.
#ifndef SRC_WORKLOADS_WORKLOAD_H_
#define SRC_WORKLOADS_WORKLOAD_H_

#include <memory>
#include <string>
#include <thread>

#include "src/rolp/package_filter.h"
#include "src/runtime/thread.h"
#include "src/runtime/vm.h"
#include "src/util/spinlock.h"

namespace rolp {

// Acquires a workload-internal lock from mutator code when the holder may
// allocate. An allocation under the lock can initiate a stop-the-world
// collection, and the safepoint initiator then waits for every mutator to
// park — so a waiter that blocks blindly on the same lock deadlocks the VM
// (it never reaches a poll, the initiator never releases the lock). Spinning
// through Poll() lets the waiter park mid-acquisition.
inline void LockAtSafepoint(SpinLock& lock, RuntimeThread& t) {
  while (!lock.try_lock()) {
    t.Poll();
    std::this_thread::yield();
  }
}

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  // Registers classes/methods/sites and builds initial heap state. Runs on an
  // attached mutator thread before the measurement threads start.
  virtual void Setup(VM& vm, RuntimeThread& t) = 0;

  // Executes one application operation.
  virtual void Op(RuntimeThread& t, uint64_t op_index) = 0;

  // Package filters the paper applies for this workload (Table 1).
  virtual void ConfigureFilter(PackageFilter* filter) const {}

  // Drops references to workload heap state (global refs) so the VM can be
  // torn down cleanly.
  virtual void Teardown() {}
};

using WorkloadFactory = std::unique_ptr<Workload> (*)();

// Registers cold "framework" code (methods, allocation sites, call sites in
// the given package) that the workload never executes. Real platforms carry
// thousands of classes outside the hot data path; this gives the PAS/PMC
// density metrics (paper Tables 1-2) realistic denominators and exercises
// the hot-code-only profiling property: none of this code is ever jitted or
// profiled.
inline void RegisterBackgroundCode(JitEngine& jit, const std::string& package, int methods,
                                   int alloc_sites_per_method, int call_sites_per_method) {
  MethodId prev = 0;
  for (int i = 0; i < methods; i++) {
    char name[128];
    std::snprintf(name, sizeof(name), "%s.Framework%d::m%d", package.c_str(), i / 50, i);
    MethodId m = jit.RegisterMethod(name, 64 + (i % 200));
    for (int s = 0; s < alloc_sites_per_method; s++) {
      jit.RegisterAllocSite(m);
    }
    if (i > 0) {
      for (int c = 0; c < call_sites_per_method; c++) {
        jit.RegisterCallSite(prev, m);
      }
    }
    prev = m;
  }
}

}  // namespace rolp

#endif  // SRC_WORKLOADS_WORKLOAD_H_
