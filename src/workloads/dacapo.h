// DaCapo-like synthetic benchmark suite (paper Table 2 / Figs. 6-7).
//
// Each of the 13 apps is a parameterized synthetic program: a randomly
// generated layered call graph whose paths the operations walk with real
// MethodFrames (exercising JIT heat, inlining, and call-site profiling), with
// allocation sites spread along the paths. A per-app retention structure (a
// rolling window of survivors) sets the lifetime mix, and some apps carry
// deliberate context conflicts (one allocation helper reached through call
// paths with different retention) and exception paths.
//
// The apps do not reproduce DaCapo semantics — the paper uses DaCapo only to
// measure profiling overhead and conflict behaviour, which depend on code
// shape (method counts, call fan-out, allocation rate), and those are the
// parameters modelled here.
#ifndef SRC_WORKLOADS_DACAPO_H_
#define SRC_WORKLOADS_DACAPO_H_

#include <vector>

#include "src/workloads/workload.h"

namespace rolp {

struct DacapoSpec {
  const char* name;
  size_t heap_mb;          // Table 2 "HS" column (scaled)
  int methods;             // call-graph size
  int layers;              // call depth
  int alloc_sites;         // allocation sites spread over methods
  double fanout;           // call sites per method (average)
  double small_method_fraction;  // fraction of tiny (inlinable) methods
  size_t alloc_mean_bytes;
  double survivor_fraction;  // fraction of allocations retained in the window
  size_t window;             // rolling survivor window length
  int conflict_sites;        // allocation helpers reached via 2 lifetimes
  double exception_rate;     // per-op probability of a thrown exception
  uint64_t allocs_per_op;
};

// The 13 suite entries (avrora ... xalan), shaped to reproduce the relative
// PMC/PAS magnitudes and conflict counts of Table 2.
const std::vector<DacapoSpec>& DacapoSuite();
const DacapoSpec* FindDacapoSpec(const std::string& name);

class DacapoWorkload : public Workload {
 public:
  explicit DacapoWorkload(const DacapoSpec& spec, uint64_t seed = 0x5eed);
  ~DacapoWorkload() override;

  std::string name() const override { return spec_.name; }
  void Setup(VM& vm, RuntimeThread& t) override;
  void Op(RuntimeThread& t, uint64_t op_index) override;
  void Teardown() override;

  uint64_t exceptions_thrown() const { return exceptions_; }

 private:
  struct PathStep {
    uint32_t call_site;
    uint32_t alloc_site;  // UINT32_MAX = none
    bool conflict_long;   // this step's allocation is the long-lived side
  };
  void WalkPath(RuntimeThread& t, size_t depth, uint64_t path_seed);

  DacapoSpec spec_;
  uint64_t seed_;
  VM* vm_ = nullptr;

  std::vector<MethodId> methods_;
  std::vector<std::vector<uint32_t>> out_calls_;  // per method: call-site ids
  std::vector<std::vector<uint32_t>> m_sites_;    // per method: alloc-site ids
  // Conflict helpers: alloc site + the two call sites reaching it.
  struct ConflictPair {
    uint32_t site;
    uint32_t cs_short;
    uint32_t cs_long;
  };
  std::vector<ConflictPair> conflicts_;

  GlobalRef window_;  // rolling survivor ring
  uint64_t window_cursor_ = 0;
  Random rng_;
  uint64_t exceptions_ = 0;
};

}  // namespace rolp

#endif  // SRC_WORKLOADS_DACAPO_H_
