// Cassandra-like in-memory key-value store driven by a YCSB-style generator.
//
// Lifetime structure mirrors the real system (paper Table 1 workloads):
//   * request/response scratch objects        -> die young
//   * memtable rows and values                 -> middle-lived (die at flush)
//   * sealed sstables (flushed immutable runs) -> long-lived, die at compaction
//   * the store skeleton (bucket arrays)       -> immortal
//
// The put path reaches the row-allocation site through two call paths
// (fresh insert vs. overwrite), giving ROLP real context-conflict material.
#ifndef SRC_WORKLOADS_KVSTORE_H_
#define SRC_WORKLOADS_KVSTORE_H_

#include <atomic>

#include "src/util/spinlock.h"
#include "src/workloads/workload.h"

namespace rolp {

struct KvStoreOptions {
  double write_fraction = 0.75;  // WI=0.75, RW=0.50, RI=0.25
  uint64_t num_keys = 60000;
  uint64_t value_bytes = 512;
  // Rows per memtable before it is flushed into an sstable.
  uint64_t memtable_flush_rows = 4000;
  // Transient request-parsing scratch allocated per operation (request/
  // response churn; this is what keeps young collections frequent relative
  // to memtable epochs, as in the real system).
  uint64_t request_scratch_bytes = 2048;
  // Sstables kept before compaction merges the two oldest.
  uint64_t max_sstables = 6;
  uint64_t seed = 0x5eed;
};

class KvStoreWorkload : public Workload {
 public:
  explicit KvStoreWorkload(const KvStoreOptions& options);
  ~KvStoreWorkload() override;

  std::string name() const override;
  void Setup(VM& vm, RuntimeThread& t) override;
  void Op(RuntimeThread& t, uint64_t op_index) override;
  void ConfigureFilter(PackageFilter* filter) const override;
  void Teardown() override;

  // Introspection for tests.
  uint64_t flushes() const { return flushes_.load(std::memory_order_relaxed); }
  uint64_t compactions() const { return compactions_.load(std::memory_order_relaxed); }
  uint64_t reads_hit() const { return reads_hit_.load(std::memory_order_relaxed); }

 private:
  void Put(RuntimeThread& t, uint64_t key);
  void Get(RuntimeThread& t, uint64_t key);
  void Flush(RuntimeThread& t);
  void Compact(RuntimeThread& t);
  Object* FindRow(RuntimeThread& t, Object* bucket_head, uint64_t key);

  KvStoreOptions options_;
  VM* vm_ = nullptr;

  // Classes.
  ClassId row_cls_ = 0;      // {next, value} + key payload
  ClassId sstable_cls_ = 0;  // ref array wrapper is plain ref array

  // Methods / sites / call sites.
  MethodId m_put_ = 0, m_get_ = 0, m_flush_ = 0, m_compact_ = 0, m_row_alloc_ = 0,
           m_value_alloc_ = 0, m_net_ = 0;
  uint32_t site_row_ = 0, site_value_ = 0, site_sstable_ = 0, site_scratch_ = 0,
           site_bucket_ = 0;
  uint32_t cs_net_put_ = 0;          // dispatcher -> put
  uint32_t cs_net_get_ = 0;          // dispatcher -> get
  uint32_t cs_put_row_insert_ = 0;   // put -> row_alloc (fresh insert path)
  uint32_t cs_put_row_update_ = 0;   // put -> row_alloc (overwrite path)
  uint32_t cs_put_value_ = 0;        // put -> value_alloc
  uint32_t cs_flush_build_ = 0;      // flush -> sstable build
  uint32_t cs_get_net_ = 0;          // get -> value_alloc (scratch copy)

  // Heap state.
  GlobalRef memtable_;           // ref array of bucket heads
  GlobalRef sstables_;           // ref array ring of sealed tables
  std::atomic<uint64_t> memtable_rows_{0};
  std::atomic<uint64_t> sstable_count_{0};
  uint64_t buckets_ = 0;

  SpinLock gen_lock_;          // guards the key generator + write coin
  SpinLock maintenance_lock_;  // serializes flush/compact
  ZipfianGenerator keys_;
  Random rng_;

  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> reads_hit_{0};
};

}  // namespace rolp

#endif  // SRC_WORKLOADS_KVSTORE_H_
