// Lucene-like in-memory text indexing (paper Table 1: "25k ops/s, 80%
// writes", filter package lucene.store).
//
// Lifetime structure: per-document scratch (tokenizer output) dies young;
// the open segment's postings arrays live for the segment's epoch (they are
// repeatedly grown, so superseded arrays die mid-life); sealed segments are
// long-lived and die when a merge supersedes them — the epochal pattern.
#ifndef SRC_WORKLOADS_TEXTINDEX_H_
#define SRC_WORKLOADS_TEXTINDEX_H_

#include <atomic>

#include "src/util/spinlock.h"
#include "src/workloads/workload.h"

namespace rolp {

struct TextIndexOptions {
  uint64_t vocab = 20000;
  uint64_t terms_per_doc = 60;
  double write_fraction = 0.80;
  uint64_t docs_per_segment = 4000;
  uint64_t max_segments = 8;
  // Tokenizer/analyzer scratch per document (transient churn).
  uint64_t scratch_bytes = 4096;
  uint64_t seed = 0x5eed;
};

class TextIndexWorkload : public Workload {
 public:
  explicit TextIndexWorkload(const TextIndexOptions& options);
  ~TextIndexWorkload() override;

  std::string name() const override { return "lucene"; }
  void Setup(VM& vm, RuntimeThread& t) override;
  void Op(RuntimeThread& t, uint64_t op_index) override;
  void ConfigureFilter(PackageFilter* filter) const override;
  void Teardown() override;

  uint64_t segments_sealed() const { return seals_.load(std::memory_order_relaxed); }
  uint64_t merges() const { return merges_.load(std::memory_order_relaxed); }
  uint64_t queries() const { return queries_.load(std::memory_order_relaxed); }

 private:
  void IndexDoc(RuntimeThread& t);
  void Query(RuntimeThread& t);
  void SealSegment(RuntimeThread& t);
  void MergeSegments(RuntimeThread& t);
  // Appends doc_id to the postings list of `term` in the open segment,
  // growing (reallocating) the array when full.
  void AppendPosting(RuntimeThread& t, uint64_t term, uint64_t doc_id);

  TextIndexOptions options_;
  VM* vm_ = nullptr;

  MethodId m_index_ = 0, m_query_ = 0, m_grow_ = 0, m_seal_ = 0, m_merge_ = 0,
           m_tokenize_ = 0;
  uint32_t site_postings_ = 0;   // open-segment postings arrays (middle-lived)
  uint32_t site_segment_ = 0;    // sealed segment blobs (long-lived)
  uint32_t site_scratch_ = 0;    // tokenizer scratch (dies young)
  uint32_t cs_index_tok_ = 0, cs_index_new_ = 0, cs_index_grow_ = 0, cs_index_seal_ = 0,
           cs_seal_merge_ = 0, cs_query_tok_ = 0;

  // open_: ref array[vocab] of postings data arrays (counts in word 0).
  GlobalRef open_;
  // sealed_: ref array ring of sealed segment blobs.
  GlobalRef sealed_;
  std::atomic<uint64_t> docs_in_open_{0};
  std::atomic<uint64_t> sealed_count_{0};
  std::atomic<uint64_t> next_doc_id_{0};

  SpinLock gen_lock_;
  SpinLock maintenance_lock_;
  ZipfianGenerator terms_;
  Random rng_;

  std::atomic<uint64_t> seals_{0};
  std::atomic<uint64_t> merges_{0};
  std::atomic<uint64_t> queries_{0};
};

}  // namespace rolp

#endif  // SRC_WORKLOADS_TEXTINDEX_H_
