// Market-data feed: deterministic wire-message generator and parser for the
// streaming-ingest workload (DESIGN.md §16).
//
// The feed models an exchange multicast stream: fixed-size binary messages
// (add / modify / cancel / trade) over a small symbol universe. Generation
// is a pure function of the seed and the message sequence, so two runs — or
// two memory arms of the same run — see byte-identical streams, which is
// what makes the cross-arm book-state parity test possible.
//
// The generator keeps a bounded live-order window so every cancel/modify
// references an order that is actually resting: the resulting book has the
// bimodal lifetime mix ROLP targets — resting orders and price levels live
// for thousands of events (old-gen material), while the per-message parse
// and analytics scratch dies in microseconds.
#ifndef SRC_WORKLOADS_MARKETDATA_FEED_H_
#define SRC_WORKLOADS_MARKETDATA_FEED_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/util/random.h"

namespace rolp {
namespace marketdata {

enum class MsgType : uint8_t { kAdd = 0, kModify = 1, kCancel = 2, kTrade = 3 };

// Fixed 32-byte wire image. The parser validates magic and checksum so the
// ingest.parse.corrupt fault point has a real malformed-input path to model.
struct RawMsg {
  static constexpr uint16_t kMagic = 0x4d44;  // "MD"
  uint16_t magic = kMagic;
  uint8_t type = 0;
  uint8_t side = 0;        // 0 = bid, 1 = ask
  uint32_t symbol = 0;
  uint64_t order_id = 0;
  uint32_t price = 0;      // ticks
  uint32_t size = 0;
  uint64_t checksum = 0;   // Mix64 over the payload words
};
static_assert(sizeof(RawMsg) == 32, "wire image must stay 32 bytes");

// Parsed, validated event plus the open-loop timing the pipeline charges
// latency against. POD by design: it is copied through the SPSC rings.
struct ParsedEvent {
  uint64_t seq = 0;
  uint64_t scheduled_ns = 0;  // open-loop schedule slot (fixed in advance)
  uint64_t issue_ns = 0;      // when the feed stage actually issued it
  uint64_t book_done_ns = 0;  // when the book stage finished the update
  uint64_t order_id = 0;
  uint32_t symbol = 0;
  uint32_t price = 0;
  uint32_t size = 0;
  MsgType type = MsgType::kAdd;
  uint8_t side = 0;
  uint8_t halt = 0;  // sentinel: pipeline shutdown marker, not a feed message
};

inline uint64_t WireChecksum(const RawMsg& m) {
  uint64_t w0;
  std::memcpy(&w0, &m, 8);  // magic/type/side/symbol
  return Mix64(w0 ^ Mix64(m.order_id) ^ (static_cast<uint64_t>(m.price) << 32 | m.size));
}

// Returns false (corrupt message) on magic or checksum mismatch.
inline bool ParseMsg(const RawMsg& raw, ParsedEvent* out) {
  if (raw.magic != RawMsg::kMagic || raw.checksum != WireChecksum(raw)) {
    return false;
  }
  out->order_id = raw.order_id;
  out->symbol = raw.symbol;
  out->price = raw.price;
  out->size = raw.size;
  out->type = static_cast<MsgType>(raw.type);
  out->side = raw.side;
  out->halt = 0;
  return true;
}

struct FeedOptions {
  uint32_t symbols = 16;
  uint32_t price_levels = 256;      // tick range per symbol
  uint32_t max_live_orders = 16384; // resting-order window (long-lived state)
};

class FeedGenerator {
 public:
  using Options = FeedOptions;

  explicit FeedGenerator(uint64_t seed, Options options = Options())
      : options_(options), rng_(seed ^ 0x6d646665656421ULL) {
    live_.reserve(options_.max_live_orders);
  }

  // Produces the next wire message. Deterministic in (seed, call count).
  void Next(RawMsg* out) {
    uint64_t u = SplitMix64(&rng_);
    uint32_t roll = static_cast<uint32_t>(u % 100);
    // Mix: 50% add, 20% cancel, 20% modify, 10% trade — adds outnumber
    // cancels until the live window fills, then the window caps resting
    // state by converting overflow adds into cancels of the oldest orders.
    RawMsg m;
    if (!live_.empty() && (roll < 20 || live_.size() >= options_.max_live_orders)) {
      m = CancelOldest();
    } else if (!live_.empty() && roll < 40) {
      m = ModifyRandom(u);
    } else if (!live_.empty() && roll < 50) {
      m = TradeRandom(u);
    } else {
      m = Add(u);
    }
    m.checksum = WireChecksum(m);
    *out = m;
  }

  size_t live_orders() const { return live_.size(); }

 private:
  struct LiveOrder {
    uint64_t id;
    uint32_t symbol;
    uint32_t price;
    uint32_t size;
    uint8_t side;
  };

  RawMsg Add(uint64_t u) {
    RawMsg m;
    m.type = static_cast<uint8_t>(MsgType::kAdd);
    m.side = static_cast<uint8_t>((u >> 8) & 1);
    m.symbol = static_cast<uint32_t>((u >> 16) % options_.symbols);
    m.order_id = next_order_id_++;
    m.price = static_cast<uint32_t>(1 + (u >> 24) % options_.price_levels);
    m.size = static_cast<uint32_t>(1 + (u >> 40) % 1000);
    live_.push_back({m.order_id, m.symbol, m.price, m.size, m.side});
    return m;
  }

  RawMsg CancelOldest() {
    // FIFO cancellation keeps resting lifetimes long and uniform — the
    // old-gen material the pretenuring arms should learn.
    LiveOrder o = live_[cancel_cursor_ % live_.size()];
    live_[cancel_cursor_ % live_.size()] = live_.back();
    live_.pop_back();
    cancel_cursor_++;
    RawMsg m;
    m.type = static_cast<uint8_t>(MsgType::kCancel);
    m.side = o.side;
    m.symbol = o.symbol;
    m.order_id = o.id;
    m.price = o.price;
    m.size = o.size;
    return m;
  }

  RawMsg ModifyRandom(uint64_t u) {
    LiveOrder& o = live_[(u >> 13) % live_.size()];
    o.size = static_cast<uint32_t>(1 + (u >> 33) % 1000);
    RawMsg m;
    m.type = static_cast<uint8_t>(MsgType::kModify);
    m.side = o.side;
    m.symbol = o.symbol;
    m.order_id = o.id;
    m.price = o.price;
    m.size = o.size;
    return m;
  }

  RawMsg TradeRandom(uint64_t u) {
    const LiveOrder& o = live_[(u >> 17) % live_.size()];
    RawMsg m;
    m.type = static_cast<uint8_t>(MsgType::kTrade);
    m.side = o.side;
    m.symbol = o.symbol;
    m.order_id = o.id;
    m.price = o.price;
    m.size = static_cast<uint32_t>(1 + (u >> 37) % o.size);
    return m;
  }

  Options options_;
  uint64_t rng_;
  uint64_t next_order_id_ = 1;
  uint64_t cancel_cursor_ = 0;
  std::vector<LiveOrder> live_;
};

}  // namespace marketdata
}  // namespace rolp

#endif  // SRC_WORKLOADS_MARKETDATA_FEED_H_
