// Order-book state for the market-data ingest pipeline: one book semantics,
// two memory disciplines (DESIGN.md §16).
//
//   * PooledBook — the no-GC baseline: native structs from SlabPool slabs
//     (order_pool / level_pool), intrusive hash chains, O(1) acquire/release.
//     This is the hand-tuned-C++ floor the managed arms are measured against.
//   * VmBook — the same book built from VM heap objects behind the chosen
//     collector, with JIT-registered allocation/call sites so the ROLP
//     profiler sees real contexts. Resting orders are middle-lived, price
//     levels long-lived, analytics ticks ephemeral — the bimodal mix the
//     paper targets.
//
// Both books apply an identical deterministic update semantics and fold the
// post-event level aggregate into a running checksum, so a pooled arm and a
// VM arm fed the same stream must end with bit-identical (checksum,
// resting_orders, live_levels) — the cross-arm parity oracle in
// tests/workloads/marketdata_test.cc.
#ifndef SRC_WORKLOADS_MARKETDATA_BOOK_H_
#define SRC_WORKLOADS_MARKETDATA_BOOK_H_

#include <cstdint>
#include <memory>

#include "src/workloads/marketdata/feed.h"

namespace rolp {

class VM;
class RuntimeThread;

namespace marketdata {

struct BookStats {
  uint64_t applied = 0;
  uint64_t adds = 0;
  uint64_t modifies = 0;
  uint64_t cancels = 0;
  uint64_t trades = 0;
  uint64_t stale = 0;   // event referenced an order the book no longer holds
  uint64_t drops = 0;   // allocation failure (injected or real OOM)
  uint64_t resting_orders = 0;
  uint64_t live_levels = 0;
  uint64_t checksum = 0;  // arm-independent state fold
  // Time spent strictly inside allocation/release paths (pool acquire or VM
  // allocation, including any GC stall the allocation absorbed) — the
  // "allocation-path ns/event" the INGEST_VERDICT reports.
  uint64_t alloc_ns = 0;
  uint64_t alloc_ops = 0;
  uint64_t tick_allocs = 0;  // ephemeral analytics allocations
  // Pooled arm only: live objects the pools think are outstanding. The
  // conservation law the tests assert: pool_orders_outstanding ==
  // resting_orders and pool_levels_outstanding == live_levels.
  uint64_t pool_orders_outstanding = 0;
  uint64_t pool_levels_outstanding = 0;
};

struct BookOptions {
  uint32_t symbols = 16;
  uint32_t price_levels = 256;
  uint32_t order_buckets = 1 << 15;  // hash-chain buckets (power of two)
  uint32_t tick_bytes = 512;         // ephemeral analytics scratch per event
};

// One book instance serves one pipeline: Apply is called only from the book
// stage thread and Analyze only from the analytics stage thread, so the two
// methods may not share mutable state (they don't: Analyze touches only
// per-symbol analytics accumulators and ephemeral scratch).
class OrderBook {
 public:
  virtual ~OrderBook() = default;

  // Book-stage update. Returns false when the event was dropped on an
  // allocation failure (ingest.book.alloc / ingest.pool.exhausted faults, a
  // real recoverable OOM, or pool exhaustion). `t` is the book stage's
  // mutator thread for VM books, nullptr for the pooled book.
  virtual bool Apply(RuntimeThread* t, const ParsedEvent& ev) = 0;

  // Analytics-stage derived work: per-symbol VWAP/imbalance accumulation
  // plus the per-event ephemeral scratch allocation (VM arms) or scratch
  // reuse (pooled arm).
  virtual void Analyze(RuntimeThread* t, const ParsedEvent& ev) = 0;

  // Safe to call after the pipeline threads have joined.
  virtual BookStats stats() const = 0;
};

std::unique_ptr<OrderBook> MakePooledBook(const BookOptions& options);

// Registers the md.* classes, methods, and allocation/call sites on `vm`
// and allocates the book's global structures with `setup`. The VM must
// outlive the returned book.
std::unique_ptr<OrderBook> MakeVmBook(VM& vm, RuntimeThread& setup,
                                      const BookOptions& options);

}  // namespace marketdata
}  // namespace rolp

#endif  // SRC_WORKLOADS_MARKETDATA_BOOK_H_
