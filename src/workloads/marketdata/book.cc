#include "src/workloads/marketdata/book.h"

#include <cstring>
#include <vector>

#include "src/heap/heap.h"
#include "src/runtime/frame.h"
#include "src/runtime/thread.h"
#include "src/runtime/vm.h"
#include "src/util/check.h"
#include "src/util/clock.h"
#include "src/util/fault_injection.h"
#include "src/util/slab_pool.h"
#include "src/workloads/workload.h"

namespace rolp {
namespace marketdata {

namespace {

// Shared update semantics helpers, so the two memory arms cannot drift.

inline uint64_t FoldChecksum(uint64_t checksum, const ParsedEvent& ev,
                             uint64_t level_agg_after) {
  return checksum ^ Mix64(ev.order_id + (level_agg_after << 8) + ev.price +
                          (static_cast<uint64_t>(ev.symbol) << 48));
}

inline size_t LevelIndex(const BookOptions& opt, const ParsedEvent& ev) {
  return (static_cast<size_t>(ev.symbol) * 2 + ev.side) * opt.price_levels +
         (ev.price - 1);
}

// Per-symbol analytics accumulators: plain arithmetic state, touched only by
// the analytics stage.
struct SymbolAnalytics {
  double vwap_num = 0.0;
  double vwap_den = 0.0;
  int64_t imbalance = 0;  // bid minus ask flow
};

class AnalyticsCore {
 public:
  explicit AnalyticsCore(uint32_t symbols) : per_symbol_(symbols) {}

  void Accumulate(const ParsedEvent& ev) {
    SymbolAnalytics& a = per_symbol_[ev.symbol % per_symbol_.size()];
    if (ev.type == MsgType::kTrade) {
      a.vwap_num += static_cast<double>(ev.price) * ev.size;
      a.vwap_den += ev.size;
    }
    a.imbalance += ev.side == 0 ? static_cast<int64_t>(ev.size)
                                : -static_cast<int64_t>(ev.size);
    if (ROLP_FAULT_POINT("ingest.analytics.spike")) {
      // Injected work spike: a burst of extra arithmetic on one event, the
      // analytics-stage analogue of a slow downstream consumer.
      volatile double sink = 0.0;
      for (int i = 0; i < 50000; i++) {
        sink = sink + static_cast<double>(i) * 1e-9;
      }
    }
  }

 private:
  std::vector<SymbolAnalytics> per_symbol_;
};

// ---------------------------------------------------------------------------
// Pooled-manual arm
// ---------------------------------------------------------------------------

struct PoolOrder {
  uint64_t id = 0;
  uint32_t price = 0;
  uint32_t size = 0;
  PoolOrder* next = nullptr;
};

struct PoolLevel {
  uint64_t agg_size = 0;
  uint64_t count = 0;
};

class PooledBook : public OrderBook {
 public:
  explicit PooledBook(const BookOptions& options)
      : options_(options),
        buckets_(options.order_buckets, nullptr),
        levels_(static_cast<size_t>(options.symbols) * 2 * options.price_levels,
                nullptr),
        analytics_(options.symbols),
        scratch_(options.tick_bytes, 0) {}

  ~PooledBook() override {
    // Tear down resting state through the pools so the conservation law
    // (outstanding == 0 after teardown) is checkable by tests.
    for (PoolOrder*& head : buckets_) {
      while (head != nullptr) {
        PoolOrder* next = head->next;
        order_pool_.Release(head);
        head = next;
      }
    }
    for (PoolLevel*& lvl : levels_) {
      if (lvl != nullptr) {
        level_pool_.Release(lvl);
        lvl = nullptr;
      }
    }
  }

  bool Apply(RuntimeThread*, const ParsedEvent& ev) override {
    uint64_t agg_after = 0;
    switch (ev.type) {
      case MsgType::kAdd: {
        if (ROLP_FAULT_POINT("ingest.book.alloc") ||
            ROLP_FAULT_POINT("ingest.pool.exhausted")) {
          stats_.drops++;
          return false;
        }
        PoolOrder* order;
        {
          ScopedTimerNs timer(&stats_.alloc_ns);
          order = order_pool_.Acquire();
          stats_.alloc_ops++;
        }
        if (order == nullptr) {
          stats_.drops++;
          return false;
        }
        order->id = ev.order_id;
        order->price = ev.price;
        order->size = ev.size;
        size_t b = Bucket(ev.order_id);
        order->next = buckets_[b];
        buckets_[b] = order;
        PoolLevel*& lvl = levels_[LevelIndex(options_, ev)];
        if (lvl == nullptr) {
          {
            ScopedTimerNs timer(&stats_.alloc_ns);
            lvl = level_pool_.Acquire();
            stats_.alloc_ops++;
          }
          if (lvl == nullptr) {
            stats_.drops++;
            return false;
          }
          stats_.live_levels++;
        }
        lvl->agg_size += ev.size;
        lvl->count++;
        agg_after = lvl->agg_size;
        stats_.adds++;
        stats_.resting_orders++;
        break;
      }
      case MsgType::kModify: {
        PoolOrder* order = Find(ev.order_id);
        if (order == nullptr) {
          stats_.stale++;
          break;
        }
        PoolLevel* lvl = levels_[LevelIndex(options_, ev)];
        lvl->agg_size += ev.size;
        lvl->agg_size -= order->size;
        order->size = ev.size;
        agg_after = lvl->agg_size;
        stats_.modifies++;
        break;
      }
      case MsgType::kCancel: {
        PoolOrder* order = Remove(ev.order_id);
        if (order == nullptr) {
          stats_.stale++;
          break;
        }
        PoolLevel*& lvl = levels_[LevelIndex(options_, ev)];
        lvl->agg_size -= order->size;
        lvl->count--;
        if (lvl->count == 0) {
          ScopedTimerNs timer(&stats_.alloc_ns);
          level_pool_.Release(lvl);
          lvl = nullptr;
          stats_.live_levels--;
        } else {
          agg_after = lvl->agg_size;
        }
        {
          ScopedTimerNs timer(&stats_.alloc_ns);
          order_pool_.Release(order);
          stats_.alloc_ops++;
        }
        stats_.cancels++;
        stats_.resting_orders--;
        break;
      }
      case MsgType::kTrade: {
        PoolOrder* order = Find(ev.order_id);
        if (order == nullptr) {
          stats_.stale++;
          break;
        }
        uint32_t red = ev.size < order->size ? ev.size : order->size;
        order->size -= red;
        PoolLevel* lvl = levels_[LevelIndex(options_, ev)];
        lvl->agg_size -= red;
        agg_after = lvl->agg_size;
        stats_.trades++;
        break;
      }
    }
    stats_.applied++;
    stats_.checksum = FoldChecksum(stats_.checksum, ev, agg_after);
    return true;
  }

  void Analyze(RuntimeThread*, const ParsedEvent& ev) override {
    // The pooled arm's "tick" is a reused scratch buffer: zero allocation on
    // the analytics path, exactly what a no-GC shop ships.
    for (size_t i = 0; i < scratch_.size(); i += 64) {
      scratch_[i] = static_cast<char>(ev.seq + i);
    }
    analytics_.Accumulate(ev);
  }

  BookStats stats() const override {
    BookStats s = stats_;
    s.pool_orders_outstanding = order_pool_.outstanding();
    s.pool_levels_outstanding = level_pool_.outstanding();
    return s;
  }

 private:
  size_t Bucket(uint64_t id) const { return Mix64(id) & (options_.order_buckets - 1); }

  PoolOrder* Find(uint64_t id) {
    for (PoolOrder* o = buckets_[Bucket(id)]; o != nullptr; o = o->next) {
      if (o->id == id) {
        return o;
      }
    }
    return nullptr;
  }

  PoolOrder* Remove(uint64_t id) {
    PoolOrder** link = &buckets_[Bucket(id)];
    while (*link != nullptr) {
      if ((*link)->id == id) {
        PoolOrder* o = *link;
        *link = o->next;
        return o;
      }
      link = &(*link)->next;
    }
    return nullptr;
  }

  BookOptions options_;
  SlabPool<PoolOrder> order_pool_;
  SlabPool<PoolLevel> level_pool_;
  std::vector<PoolOrder*> buckets_;
  std::vector<PoolLevel*> levels_;
  AnalyticsCore analytics_;
  std::vector<char> scratch_;
  BookStats stats_;
};

// ---------------------------------------------------------------------------
// VM-heap arm (G1 / ROLP+NG2C / ZGC — collector chosen by the VM config)
// ---------------------------------------------------------------------------

// md.Order payload: [0] next ref, [8] order id, [16] price, [20] size.
constexpr uint32_t kOrderNext = 0;
constexpr uint32_t kOrderId = 8;
constexpr uint32_t kOrderPrice = 16;
constexpr uint32_t kOrderSize = 20;

// md.Level payload: [0] agg size, [8] resting count, [16] price|side (debug).
constexpr uint32_t kLevelAgg = 0;
constexpr uint32_t kLevelCount = 8;
constexpr uint32_t kLevelTag = 16;

// Book objects are touched only by their owning stage thread, so plain
// payload access is well-defined; objects may still *move* at safepoints,
// which is why every helper takes the Object* freshly loaded after the last
// possible allocation.
inline uint64_t RawU64(Object* o, uint32_t off) {
  uint64_t v;
  std::memcpy(&v, o->payload() + off, sizeof(v));
  return v;
}
inline void SetRawU64(Object* o, uint32_t off, uint64_t v) {
  std::memcpy(o->payload() + off, &v, sizeof(v));
}
inline uint32_t RawU32(Object* o, uint32_t off) {
  uint32_t v;
  std::memcpy(&v, o->payload() + off, sizeof(v));
  return v;
}
inline void SetRawU32(Object* o, uint32_t off, uint32_t v) {
  std::memcpy(o->payload() + off, &v, sizeof(v));
}

class VmBook : public OrderBook {
 public:
  VmBook(VM& vm, RuntimeThread& setup, const BookOptions& options)
      : vm_(&vm), options_(options), analytics_(options.symbols) {
    ClassRegistry& classes = vm.heap().classes();
    order_cls_ = classes.RegisterInstance("md.book.Order", 24, {kOrderNext});
    level_cls_ = classes.RegisterInstance("md.book.Level", 24, {});

    JitEngine& jit = vm.jit();
    m_poll_ = jit.RegisterMethod("md.feed.Decoder::poll", 140);
    m_apply_ = jit.RegisterMethod("md.book.OrderBook::apply", 260);
    m_order_new_ = jit.RegisterMethod("md.book.Order::create", 48);
    m_level_new_ = jit.RegisterMethod("md.book.Level::create", 52);
    m_tick_ = jit.RegisterMethod("md.analytics.Vwap::onTick", 120);

    // NG2C oracle hints (consulted only in NG2C mode; ROLP learns the same
    // facts from the profile): resting orders are middle-lived, price levels
    // effectively permanent, analytics ticks unhinted ephemera.
    site_order_ = jit.RegisterAllocSite(m_order_new_, /*ng2c_hint=*/2);
    site_level_ = jit.RegisterAllocSite(m_level_new_, /*ng2c_hint=*/kOldGenId);
    site_tick_ = jit.RegisterAllocSite(m_tick_, 0);

    cs_poll_apply_ = jit.RegisterCallSite(m_poll_, m_apply_);
    cs_apply_order_ = jit.RegisterCallSite(m_apply_, m_order_new_);
    cs_apply_level_ = jit.RegisterCallSite(m_apply_, m_level_new_);
    cs_poll_tick_ = jit.RegisterCallSite(m_poll_, m_tick_);

    // Cold framework surface so profiled-site density is realistic.
    RegisterBackgroundCode(jit, "md.net", 800, 2, 3);
    RegisterBackgroundCode(jit, "md.codec", 600, 2, 3);

    HandleScope scope(setup);
    Object* buckets = setup.AllocateRefArray(RuntimeThread::kNoSite, options.order_buckets);
    ROLP_CHECK(buckets != nullptr);
    buckets_ = vm.NewGlobalRoot(buckets);
    Object* levels = setup.AllocateRefArray(
        RuntimeThread::kNoSite,
        static_cast<uint64_t>(options.symbols) * 2 * options.price_levels);
    ROLP_CHECK(levels != nullptr);
    levels_ = vm.NewGlobalRoot(levels);
  }

  bool Apply(RuntimeThread* t, const ParsedEvent& ev) override {
    HandleScope scope(*t);
    MethodFrame frame(*t, cs_poll_apply_);
    uint64_t agg_after = 0;
    switch (ev.type) {
      case MsgType::kAdd: {
        if (ROLP_FAULT_POINT("ingest.book.alloc")) {
          stats_.drops++;
          return false;
        }
        Local order;
        {
          MethodFrame f(*t, cs_apply_order_);
          ScopedTimerNs timer(&stats_.alloc_ns);
          order = t->NewLocal(t->AllocateInstance(site_order_, order_cls_));
          stats_.alloc_ops++;
        }
        if (order.get() == nullptr) {
          stats_.drops++;
          return false;
        }
        SetRawU64(order.get(), kOrderId, ev.order_id);
        SetRawU32(order.get(), kOrderPrice, ev.price);
        SetRawU32(order.get(), kOrderSize, ev.size);

        size_t li = LevelIndex(options_, ev);
        Object* levels = vm_->LoadGlobal(levels_);
        Object* lvl = t->LoadElem(levels, li);
        if (lvl == nullptr) {
          Local nl;
          {
            MethodFrame f(*t, cs_apply_level_);
            ScopedTimerNs timer(&stats_.alloc_ns);
            nl = t->NewLocal(t->AllocateInstance(site_level_, level_cls_));
            stats_.alloc_ops++;
          }
          if (nl.get() == nullptr) {
            stats_.drops++;
            return false;
          }
          SetRawU32(nl.get(), kLevelTag, ev.price | (ev.side << 24));
          levels = vm_->LoadGlobal(levels_);  // allocation may have moved it
          t->StoreElem(levels, li, nl.get());
          lvl = nl.get();
          stats_.live_levels++;
        }
        SetRawU64(lvl, kLevelAgg, RawU64(lvl, kLevelAgg) + ev.size);
        SetRawU64(lvl, kLevelCount, RawU64(lvl, kLevelCount) + 1);
        agg_after = RawU64(lvl, kLevelAgg);

        // Wire the order into its hash chain; no allocations from here on,
        // so the raw pointers stay put.
        Object* buckets = vm_->LoadGlobal(buckets_);
        uint64_t b = Mix64(ev.order_id) & (options_.order_buckets - 1);
        t->StoreField(order.get(), kOrderNext, t->LoadElem(buckets, b));
        t->StoreElem(buckets, b, order.get());
        stats_.adds++;
        stats_.resting_orders++;
        break;
      }
      case MsgType::kModify: {
        Object* order = Find(*t, ev.order_id);
        if (order == nullptr) {
          stats_.stale++;
          break;
        }
        Object* lvl = t->LoadElem(vm_->LoadGlobal(levels_), LevelIndex(options_, ev));
        uint64_t agg = RawU64(lvl, kLevelAgg) + ev.size - RawU32(order, kOrderSize);
        SetRawU64(lvl, kLevelAgg, agg);
        SetRawU32(order, kOrderSize, ev.size);
        agg_after = agg;
        stats_.modifies++;
        break;
      }
      case MsgType::kCancel: {
        Object* order = Remove(*t, ev.order_id);
        if (order == nullptr) {
          stats_.stale++;
          break;
        }
        size_t li = LevelIndex(options_, ev);
        Object* levels = vm_->LoadGlobal(levels_);
        Object* lvl = t->LoadElem(levels, li);
        SetRawU64(lvl, kLevelAgg, RawU64(lvl, kLevelAgg) - RawU32(order, kOrderSize));
        uint64_t count = RawU64(lvl, kLevelCount) - 1;
        SetRawU64(lvl, kLevelCount, count);
        if (count == 0) {
          t->StoreElem(levels, li, nullptr);  // level dies; GC reclaims it
          stats_.live_levels--;
        } else {
          agg_after = RawU64(lvl, kLevelAgg);
        }
        stats_.cancels++;
        stats_.resting_orders--;  // order object itself dies unreferenced
        break;
      }
      case MsgType::kTrade: {
        Object* order = Find(*t, ev.order_id);
        if (order == nullptr) {
          stats_.stale++;
          break;
        }
        uint32_t size = RawU32(order, kOrderSize);
        uint32_t red = ev.size < size ? ev.size : size;
        SetRawU32(order, kOrderSize, size - red);
        Object* lvl = t->LoadElem(vm_->LoadGlobal(levels_), LevelIndex(options_, ev));
        SetRawU64(lvl, kLevelAgg, RawU64(lvl, kLevelAgg) - red);
        agg_after = RawU64(lvl, kLevelAgg);
        stats_.trades++;
        break;
      }
    }
    stats_.applied++;
    stats_.checksum = FoldChecksum(stats_.checksum, ev, agg_after);
    return true;
  }

  void Analyze(RuntimeThread* t, const ParsedEvent& ev) override {
    // Per-event ephemeral tick: allocated, written, read once, dropped —
    // the microsecond-lifetime garbage that pressures the young generation.
    HandleScope scope(*t);
    Local tick;
    {
      MethodFrame f(*t, cs_poll_tick_);
      ScopedTimerNs timer(&tick_alloc_ns_);
      tick = t->NewLocal(t->AllocateDataArray(site_tick_, options_.tick_bytes));
      stats_.tick_allocs++;
    }
    if (tick.get() != nullptr) {
      char* bytes = tick.get()->DataArrayBytes();
      for (uint32_t i = 0; i < options_.tick_bytes; i += 64) {
        bytes[i] = static_cast<char>(ev.seq + i);
      }
    }
    analytics_.Accumulate(ev);
  }

  BookStats stats() const override {
    BookStats s = stats_;
    s.alloc_ns += tick_alloc_ns_;
    s.alloc_ops += s.tick_allocs;
    return s;
  }

 private:
  Object* Find(RuntimeThread& t, uint64_t id) {
    Object* buckets = vm_->LoadGlobal(buckets_);
    Object* o = t.LoadElem(buckets, Mix64(id) & (options_.order_buckets - 1));
    while (o != nullptr) {
      if (RawU64(o, kOrderId) == id) {
        return o;
      }
      o = t.LoadField(o, kOrderNext);
    }
    return nullptr;
  }

  Object* Remove(RuntimeThread& t, uint64_t id) {
    Object* buckets = vm_->LoadGlobal(buckets_);
    uint64_t b = Mix64(id) & (options_.order_buckets - 1);
    Object* prev = nullptr;
    Object* o = t.LoadElem(buckets, b);
    while (o != nullptr) {
      Object* next = t.LoadField(o, kOrderNext);
      if (RawU64(o, kOrderId) == id) {
        if (prev == nullptr) {
          t.StoreElem(buckets, b, next);
        } else {
          t.StoreField(prev, kOrderNext, next);
        }
        return o;
      }
      prev = o;
      o = next;
    }
    return nullptr;
  }

  VM* vm_;
  BookOptions options_;
  ClassId order_cls_ = 0;
  ClassId level_cls_ = 0;
  MethodId m_poll_ = 0, m_apply_ = 0, m_order_new_ = 0, m_level_new_ = 0, m_tick_ = 0;
  uint32_t site_order_ = 0, site_level_ = 0, site_tick_ = 0;
  uint32_t cs_poll_apply_ = 0, cs_apply_order_ = 0, cs_apply_level_ = 0, cs_poll_tick_ = 0;
  GlobalRef buckets_;
  GlobalRef levels_;
  AnalyticsCore analytics_;
  BookStats stats_;
  uint64_t tick_alloc_ns_ = 0;  // analytics thread's side; folded in stats()
};

}  // namespace

std::unique_ptr<OrderBook> MakePooledBook(const BookOptions& options) {
  return std::make_unique<PooledBook>(options);
}

std::unique_ptr<OrderBook> MakeVmBook(VM& vm, RuntimeThread& setup,
                                      const BookOptions& options) {
  return std::make_unique<VmBook>(vm, setup, options);
}

}  // namespace marketdata
}  // namespace rolp
