// Three-stage streaming-ingest pipeline (DESIGN.md §16):
//
//   feed parse  --SPSC ring-->  order-book update  --SPSC ring-->  analytics
//
// driven open-loop at a fixed event schedule. The feed stage is paced by the
// absolute-deadline Pacer and stamps every event with its *scheduled* ingest
// time; the end-to-end jitter the verdict reports is analytics-completion
// minus that schedule slot, so backpressure anywhere in the pipeline — a GC
// pause stalling the book stage, a full ring, governor throttling — is
// charged in full, never silently absorbed (same no-coordinated-omission
// discipline as the service harness).
//
// The identical pipeline runs under four memory arms: pooled-manual (no VM),
// and VM heaps under G1-style regional, ROLP+NG2C, and ZGC. One
// INGEST_VERDICT JSON compares per-arm p50/p99/p99.9/max jitter and
// allocation-path ns/event.
#ifndef SRC_WORKLOADS_MARKETDATA_PIPELINE_H_
#define SRC_WORKLOADS_MARKETDATA_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/pacer.h"
#include "src/workloads/marketdata/book.h"
#include "src/workloads/marketdata/feed.h"

namespace rolp {
namespace marketdata {

enum class ArmKind : uint8_t { kPooled = 0, kG1 = 1, kRolp = 2, kZgc = 3 };

const char* ArmName(ArmKind arm);
bool ParseArm(const std::string& name, ArmKind* out);

// How the three stages are scheduled onto OS threads. kThreaded is the real
// deployment shape (three threads, blocking ring hand-offs); on a box with
// fewer cores than pipeline threads the measurement would be dominated by
// scheduler quanta, not by the memory system, so kAuto falls back to kFused:
// one thread drives an event through all three stages (still through the
// rings) between pacing deadlines, keeping the jitter measurement
// GC-dominated on 1–2 core CI machines.
enum class PipelineMode : uint8_t { kAuto = 0, kThreaded = 1, kFused = 2 };

struct IngestOptions {
  double rate_eps = 100000.0;     // fixed inter-arrival schedule
  uint64_t events = 300000;       // scheduled events per arm
  double warmup_fraction = 0.5;   // leading events excluded from jitter stats
  size_t ring_capacity = 4096;    // per-hop SPSC ring slots
  size_t heap_mb = 96;            // VM arms
  uint64_t seed = 0x5eed;
  PipelineMode mode = PipelineMode::kAuto;
  BookOptions book;
  PacerOptions pacing;            // absolute-deadline by default

  // Reads ROLP_INGEST_RATE, ROLP_INGEST_EVENTS, ROLP_INGEST_HEAP_MB,
  // ROLP_INGEST_WARMUP, ROLP_INGEST_TICK_BYTES, ROLP_INGEST_SEED, and the
  // pacer knobs (ROLP_PACING, ROLP_PACER_SPIN_US).
  static IngestOptions FromEnv();
};

struct IngestResult {
  ArmKind arm = ArmKind::kPooled;
  bool survived = false;       // all stages joined, event conservation held

  uint64_t scheduled = 0;      // events the feed schedule contained
  uint64_t parsed = 0;         // survived wire parse
  uint64_t parse_drops = 0;    // corrupt messages (injected)
  uint64_t applied = 0;        // book updates applied
  uint64_t book_drops = 0;     // allocation-failure drops in the book stage
  uint64_t analyzed = 0;       // analytics completions
  uint64_t measured = 0;       // post-warmup jitter samples

  // Feed-stage issuance: measured offered rate over the run (the pacing
  // regression gate: must sit within 1% of rate_eps).
  double offered_eps = 0.0;
  // Post-warmup end-to-end jitter (analytics done - scheduled slot), ns.
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  uint64_t max_ns = 0;
  // Allocation-path cost charged by the book + analytics stages.
  double alloc_ns_per_event = 0.0;

  // VM arms only (zero for pooled).
  uint64_t gc_pauses = 0;
  double max_pause_ms = 0.0;
  uint64_t governor_throttle_stalls = 0;
  uint64_t recoverable_ooms = 0;

  BookStats book;
};

// Runs the full pipeline for one arm. Deterministic feed for a given seed,
// so two arms with the same options see byte-identical event streams.
IngestResult RunIngest(ArmKind arm, const IngestOptions& options);

// One-line INGEST_VERDICT payload (without the prefix) comparing all arms.
std::string IngestVerdictJson(const std::vector<IngestResult>& arms,
                              const IngestOptions& options);

}  // namespace marketdata
}  // namespace rolp

#endif  // SRC_WORKLOADS_MARKETDATA_PIPELINE_H_
