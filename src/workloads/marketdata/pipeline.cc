#include "src/workloads/marketdata/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <thread>

#include "src/heap/heap.h"
#include "src/runtime/thread.h"
#include "src/runtime/vm.h"
#include "src/service/slo_reporter.h"
#include "src/util/clock.h"
#include "src/util/env.h"
#include "src/util/fault_injection.h"
#include "src/util/metrics_registry.h"
#include "src/util/spinlock.h"
#include "src/util/spsc_ring.h"
#include "src/workloads/driver.h"

namespace rolp {
namespace marketdata {

namespace {

// Blocking ring hand-offs. Events are never dropped at a ring — a full ring
// means the downstream stage is stalled (GC pause, throttle, injected
// stall), and the open-loop discipline demands the delay be *charged*, not
// shed. Attached threads must keep polling so a ring wait can never hold a
// safepoint hostage (the same shape as the PR 6 LockAtSafepoint fix).
// Spin briefly, then yield, then back off to short sleeps: on a box with
// fewer cores than pipeline threads an unbounded spin/yield loop starves the
// counterpart stage for whole scheduler quanta.
struct RingWait {
  int spins = 0;
  int yields = 0;
  void Pause(RuntimeThread* t) {
    if (t != nullptr) {
      t->Poll();
    }
    if (++spins < 256) {
      CpuRelax();
    } else if (++yields < 64) {
      spins = 0;
      std::this_thread::yield();
    } else {
      spins = 0;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
};

void BlockingPush(SpscRing<ParsedEvent>& ring, const ParsedEvent& ev,
                  RuntimeThread* t) {
  RingWait wait;
  while (!ring.TryPush(ev)) {
    wait.Pause(t);
  }
}

bool BlockingPop(SpscRing<ParsedEvent>& ring, ParsedEvent* ev, RuntimeThread* t) {
  RingWait wait;
  while (!ring.TryPop(ev)) {
    wait.Pause(t);
  }
  return ev->halt == 0;
}

PipelineMode ResolveMode(PipelineMode requested) {
  if (requested != PipelineMode::kAuto) {
    return requested;
  }
  // Three pipeline threads plus GC workers on fewer than four cores means
  // every ring hand-off pays a scheduler quantum, which buries the GC signal
  // the workload exists to measure. Fuse the stages onto one thread there.
  unsigned cores = std::thread::hardware_concurrency();
  return cores >= 4 ? PipelineMode::kThreaded : PipelineMode::kFused;
}

GcKind GcFor(ArmKind arm) {
  switch (arm) {
    case ArmKind::kG1:
      return GcKind::kG1;
    case ArmKind::kRolp:
      return GcKind::kRolp;
    case ArmKind::kZgc:
      return GcKind::kZgc;
    case ArmKind::kPooled:
      break;
  }
  return GcKind::kG1;
}

}  // namespace

const char* ArmName(ArmKind arm) {
  switch (arm) {
    case ArmKind::kPooled:
      return "pooled";
    case ArmKind::kG1:
      return "g1";
    case ArmKind::kRolp:
      return "rolp";
    case ArmKind::kZgc:
      return "zgc";
  }
  return "?";
}

bool ParseArm(const std::string& name, ArmKind* out) {
  if (name == "pooled") {
    *out = ArmKind::kPooled;
  } else if (name == "g1") {
    *out = ArmKind::kG1;
  } else if (name == "rolp") {
    *out = ArmKind::kRolp;
  } else if (name == "zgc") {
    *out = ArmKind::kZgc;
  } else {
    return false;
  }
  return true;
}

IngestOptions IngestOptions::FromEnv() {
  IngestOptions o;
  o.rate_eps = EnvDouble("ROLP_INGEST_RATE", o.rate_eps);
  o.events = static_cast<uint64_t>(EnvInt64("ROLP_INGEST_EVENTS", static_cast<int64_t>(o.events)));
  o.warmup_fraction = EnvDouble("ROLP_INGEST_WARMUP", o.warmup_fraction);
  o.ring_capacity = static_cast<size_t>(EnvInt64("ROLP_INGEST_RING", static_cast<int64_t>(o.ring_capacity)));
  o.heap_mb = static_cast<size_t>(EnvInt64("ROLP_INGEST_HEAP_MB", static_cast<int64_t>(o.heap_mb)));
  o.seed = static_cast<uint64_t>(EnvInt64("ROLP_INGEST_SEED", 0x5eed));
  o.book.tick_bytes = static_cast<uint32_t>(EnvInt64("ROLP_INGEST_TICK_BYTES", o.book.tick_bytes));
  o.book.symbols = static_cast<uint32_t>(EnvInt64("ROLP_INGEST_SYMBOLS", o.book.symbols));
  std::string mode = EnvString("ROLP_INGEST_MODE", "auto");
  if (mode == "threaded") {
    o.mode = PipelineMode::kThreaded;
  } else if (mode == "fused") {
    o.mode = PipelineMode::kFused;
  } else {
    o.mode = PipelineMode::kAuto;
  }
  o.pacing = PacerOptions::FromEnv();
  return o;
}

IngestResult RunIngest(ArmKind arm, const IngestOptions& options) {
  IngestResult result;
  result.arm = arm;
  result.scheduled = options.events;

  const double gap_ns = 1e9 / options.rate_eps;
  const uint64_t warmup_events =
      static_cast<uint64_t>(static_cast<double>(options.events) * options.warmup_fraction);

  // --- Arm setup -----------------------------------------------------------
  std::unique_ptr<VM> vm;
  std::unique_ptr<OrderBook> book;
  if (arm == ArmKind::kPooled) {
    book = MakePooledBook(options.book);
  } else {
    VmConfig cfg;
    cfg.heap_mb = options.heap_mb;
    cfg.gc = GcFor(arm);
    cfg.jit.hot_threshold = 1;  // profile from the first event
    cfg.seed = options.seed;
    if (arm == ArmKind::kRolp) {
      cfg.filter.Include("md.book");
      cfg.filter.Include("md.analytics");
      cfg.filter.Include("md.feed");
      // The paper's every-16-cycles inference cadence assumes long-running
      // services; a short CI ingest run only sees a handful of pauses, so the
      // profiler would never publish a pretenuring decision. Infer every
      // cycle so decisions land inside the warmup window.
      cfg.rolp.inference_period = static_cast<uint32_t>(
          EnvInt64("ROLP_INGEST_INFER_PERIOD", 1));
    }
    vm = std::make_unique<VM>(cfg);
    RuntimeThread* setup = vm->AttachThread();
    book = MakeVmBook(*vm, *setup, options.book);
    vm->jit().CompileAll();
    vm->DetachThread(setup);
  }

  SpscRing<ParsedEvent> parse_to_book(options.ring_capacity);
  SpscRing<ParsedEvent> book_to_analytics(options.ring_capacity);

  const uint64_t start_ns = NowNs() + 2 * 1000 * 1000;  // 2 ms lead-in
  const uint64_t warmup_end_ns =
      start_ns + static_cast<uint64_t>(static_cast<double>(warmup_events) * gap_ns);
  SloReporter reporter(start_ns);

  std::atomic<uint64_t> parsed{0}, parse_drops{0}, applied{0}, book_drops{0},
      analyzed{0}, measured{0};
  std::atomic<uint64_t> first_issue_ns{0}, last_issue_ns{0};

  // Stage bodies are shared between the threaded and fused schedules so the
  // two modes run byte-identical semantics per event.
  //
  // Feed + parse: produce the next wire message and validate it. Returns
  // false when the message was corrupt (dropped at parse).
  FeedGenerator gen(options.seed,
                    {options.book.symbols, options.book.price_levels,
                     /*max_live_orders=*/65536});
  auto feed_step = [&](uint64_t seq, uint64_t deadline, uint64_t now,
                       ParsedEvent* ev) -> bool {
    RawMsg raw;
    gen.Next(&raw);
    if (ROLP_FAULT_POINT("ingest.parse.corrupt")) {
      raw.magic ^= 0xffff;  // torn wire image: must fail validation
    }
    if (seq == 0) {
      first_issue_ns.store(now, std::memory_order_relaxed);
    }
    last_issue_ns.store(now, std::memory_order_relaxed);
    if (!ParseMsg(raw, ev)) {
      parse_drops.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ev->seq = seq;
    ev->scheduled_ns = deadline;
    ev->issue_ns = now;
    parsed.fetch_add(1, std::memory_order_relaxed);
    return true;
  };

  // Book update: the long-lived-state mutation.
  auto book_step = [&](RuntimeThread* t, ParsedEvent* ev) {
    if (ROLP_FAULT_POINT("ingest.queue.stall")) {
      // Injected stage stall: sleep off-ring so backpressure builds. An
      // attached thread parks safely — the Poll in the stage loop keeps
      // safepoints honest.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    if (book->Apply(t, *ev)) {
      applied.fetch_add(1, std::memory_order_relaxed);
    } else {
      book_drops.fetch_add(1, std::memory_order_relaxed);
    }
    ev->book_done_ns = NowNs();
  };

  // Analytics: ephemeral scratch plus the jitter measurement, charged from
  // the scheduled slot (never the issue time — no coordinated omission).
  auto analytics_step = [&](RuntimeThread* t, const ParsedEvent& ev) {
    book->Analyze(t, ev);
    uint64_t end = NowNs();
    analyzed.fetch_add(1, std::memory_order_relaxed);
    if (ev.seq >= warmup_events) {
      RequestTimeline tl;
      tl.id = ev.seq;
      tl.scheduled_ns = ev.scheduled_ns;
      tl.enqueue_ns = ev.issue_ns;
      tl.dequeue_ns = ev.book_done_ns;
      tl.execute_ns = ev.book_done_ns;
      tl.respond_ns = end;
      reporter.Record(tl, RequestOutcome::kOk);
      measured.fetch_add(1, std::memory_order_relaxed);
    }
  };

  const PipelineMode mode = ResolveMode(options.mode);
  if (mode == PipelineMode::kThreaded) {
    // --- Feed + parse stage: unattached (never parked by a safepoint — the
    // schedule must not coordinate with GC), paced on absolute deadlines. ---
    std::thread feed_thread([&] {
      Pacer pacer(options.pacing);
      for (uint64_t seq = 0; seq < options.events; seq++) {
        uint64_t deadline =
            start_ns + static_cast<uint64_t>(static_cast<double>(seq) * gap_ns);
        uint64_t now = pacer.WaitUntil(deadline);
        ParsedEvent ev;
        if (feed_step(seq, deadline, now, &ev)) {
          BlockingPush(parse_to_book, ev, nullptr);
        }
      }
      ParsedEvent halt;
      halt.halt = 1;
      BlockingPush(parse_to_book, halt, nullptr);
    });

    // --- Book stage: the long-lived-state mutator. -------------------------
    std::thread book_thread([&] {
      RuntimeThread* t = vm ? vm->AttachThread() : nullptr;
      ParsedEvent ev;
      while (BlockingPop(parse_to_book, &ev, t)) {
        book_step(t, &ev);
        BlockingPush(book_to_analytics, ev, t);
        if (t != nullptr) {
          t->Poll();
        }
      }
      ParsedEvent halt;
      halt.halt = 1;
      BlockingPush(book_to_analytics, halt, t);
      if (vm) {
        vm->DetachThread(t);
      }
    });

    // --- Analytics stage: ephemeral-scratch mutator + jitter recording. ----
    std::thread analytics_thread([&] {
      RuntimeThread* t = vm ? vm->AttachThread() : nullptr;
      ParsedEvent ev;
      while (BlockingPop(book_to_analytics, &ev, t)) {
        analytics_step(t, ev);
        if (t != nullptr) {
          t->Poll();
        }
      }
      if (vm) {
        vm->DetachThread(t);
      }
    });

    feed_thread.join();
    book_thread.join();
    analytics_thread.join();
  } else {
    // --- Fused schedule: one thread drives each event through all three
    // stages (still through the rings, so the hand-off code is exercised)
    // between pacing deadlines. Every stall on this thread — GC pause,
    // governor throttle, injected fault — lands directly in the lateness of
    // the events scheduled behind it, which is exactly the signal the arm
    // comparison wants, without three spinning threads fighting for one core.
    std::thread pipe_thread([&] {
      RuntimeThread* t = vm ? vm->AttachThread() : nullptr;
      Pacer pacer(options.pacing);
      for (uint64_t seq = 0; seq < options.events; seq++) {
        uint64_t deadline =
            start_ns + static_cast<uint64_t>(static_cast<double>(seq) * gap_ns);
        // Chunk long waits so an attached thread keeps polling: a safepoint
        // must never wait out a pacing sleep.
        uint64_t now = NowNs();
        while (now < deadline) {
          uint64_t wake = std::min<uint64_t>(deadline, now + 200 * 1000);
          now = pacer.WaitUntil(wake, /*precise=*/wake == deadline);
          if (t != nullptr) {
            t->Poll();
          }
        }
        ParsedEvent ev;
        if (!feed_step(seq, deadline, now, &ev)) {
          continue;
        }
        BlockingPush(parse_to_book, ev, t);
        if (!BlockingPop(parse_to_book, &ev, t)) {
          break;  // unreachable: only the halt sentinel pops false
        }
        book_step(t, &ev);
        BlockingPush(book_to_analytics, ev, t);
        if (!BlockingPop(book_to_analytics, &ev, t)) {
          break;
        }
        analytics_step(t, ev);
        if (t != nullptr) {
          t->Poll();
        }
      }
      if (vm) {
        vm->DetachThread(t);
      }
    });
    pipe_thread.join();
  }
  const uint64_t end_ns = NowNs();

  // --- Collect -------------------------------------------------------------
  result.parsed = parsed.load();
  result.parse_drops = parse_drops.load();
  result.applied = applied.load();
  result.book_drops = book_drops.load();
  result.analyzed = analyzed.load();
  result.measured = measured.load();
  uint64_t first = first_issue_ns.load();
  uint64_t last = last_issue_ns.load();
  if (last > first && options.events > 1) {
    result.offered_eps = static_cast<double>(options.events - 1) /
                         (static_cast<double>(last - first) / 1e9);
  }

  SloReporter::Snapshot snap = reporter.Collect(end_ns);
  result.p50_ns = static_cast<uint64_t>(snap.alltime.p50_ms * 1e6);
  result.p99_ns = static_cast<uint64_t>(snap.alltime.p99_ms * 1e6);
  result.p999_ns = static_cast<uint64_t>(snap.alltime.p999_ms * 1e6);
  result.max_ns = static_cast<uint64_t>(snap.alltime.max_ms * 1e6);

  result.book = book->stats();
  if (result.analyzed > 0) {
    result.alloc_ns_per_event = static_cast<double>(result.book.alloc_ns) /
                                static_cast<double>(result.analyzed);
  }

  if (vm) {
    RunResult rr;
    CollectVmStats(*vm, warmup_end_ns, &rr);
    result.gc_pauses = rr.pause_count_alltime;
    result.max_pause_ms = NsToMs(rr.max_pause_ns_alltime);
    result.governor_throttle_stalls = vm->heap().governor().throttle_stalls();
    result.recoverable_ooms = rr.recoverable_ooms;
  }
  // The book must tear down before the VM it allocates from.
  book.reset();
  vm.reset();

  // Conservation: every scheduled event either parsed or was dropped at
  // parse, and everything parsed flowed through both downstream stages.
  result.survived = (result.parsed + result.parse_drops == result.scheduled) &&
                    result.analyzed == result.parsed &&
                    result.applied + result.book_drops == result.parsed;

  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "ingest.%s.", ArmName(arm));
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.Counter(std::string(prefix) + "events")->Add(result.analyzed);
  reg.Counter(std::string(prefix) + "drops")->Add(result.parse_drops + result.book_drops);
  return result;
}

std::string IngestVerdictJson(const std::vector<IngestResult>& arms,
                              const IngestOptions& options) {
  char buf[512];
  std::string json = "{";
  std::snprintf(buf, sizeof(buf),
                "\"workload\":\"marketdata\",\"events\":%" PRIu64
                ",\"rate_eps\":%.0f,\"warmup_fraction\":%.2f,\"mode\":\"%s\",\"arms\":{",
                options.events, options.rate_eps, options.warmup_fraction,
                ResolveMode(options.mode) == PipelineMode::kThreaded ? "threaded"
                                                                     : "fused");
  json += buf;
  bool all_survived = !arms.empty();
  double g1_p999_us = -1.0, rolp_p999_us = -1.0;
  for (size_t i = 0; i < arms.size(); i++) {
    const IngestResult& r = arms[i];
    double p50_us = static_cast<double>(r.p50_ns) / 1e3;
    double p99_us = static_cast<double>(r.p99_ns) / 1e3;
    double p999_us = static_cast<double>(r.p999_ns) / 1e3;
    double max_us = static_cast<double>(r.max_ns) / 1e3;
    if (r.arm == ArmKind::kG1) {
      g1_p999_us = p999_us;
    }
    if (r.arm == ArmKind::kRolp) {
      rolp_p999_us = p999_us;
    }
    all_survived = all_survived && r.survived;
    std::snprintf(
        buf, sizeof(buf),
        "%s\"%s\":{\"survived\":%s,\"analyzed\":%" PRIu64 ",\"measured\":%" PRIu64
        ",\"drops\":%" PRIu64 ",\"offered_eps\":%.0f,\"p50_us\":%.1f,\"p99_us\":%.1f,"
        "\"p999_us\":%.1f,\"max_us\":%.1f,\"alloc_ns_per_event\":%.1f,"
        "\"gc_pauses\":%" PRIu64 ",\"max_pause_ms\":%.2f,\"throttle_stalls\":%" PRIu64 "}",
        i == 0 ? "" : ",", ArmName(r.arm), r.survived ? "true" : "false", r.analyzed,
        r.measured, r.parse_drops + r.book_drops, r.offered_eps, p50_us, p99_us,
        p999_us, max_us, r.alloc_ns_per_event, r.gc_pauses, r.max_pause_ms,
        r.governor_throttle_stalls);
    json += buf;
  }
  json += "},";
  bool tail_comparable = g1_p999_us >= 0.0 && rolp_p999_us >= 0.0;
  bool rolp_tail_ok = !tail_comparable || rolp_p999_us <= g1_p999_us;
  std::snprintf(buf, sizeof(buf), "\"rolp_tail_ok\":%s,\"pass\":%s}",
                rolp_tail_ok ? "true" : "false",
                all_survived ? "true" : "false");
  json += buf;
  return json;
}

}  // namespace marketdata
}  // namespace rolp
