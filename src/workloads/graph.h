// GraphChi-like shard-based graph computation (paper Table 1: Connected
// Components and PageRank on a power-law graph; filter packages
// graphchi.datablocks and graphchi.engine).
//
// The graph itself (adjacency arrays) is immortal; per-interval shard value
// blocks are epochal (allocated at interval start, dead at interval end,
// after having survived several young collections on large intervals);
// per-vertex scratch dies young.
#ifndef SRC_WORKLOADS_GRAPH_H_
#define SRC_WORKLOADS_GRAPH_H_

#include <atomic>

#include "src/util/spinlock.h"
#include "src/workloads/workload.h"

namespace rolp {

enum class GraphAlgo { kConnectedComponents, kPageRank };

struct GraphOptions {
  GraphAlgo algo = GraphAlgo::kConnectedComponents;
  uint64_t vertices = 50000;
  uint64_t edges_per_vertex = 8;  // power-law out-degrees with this mean
  uint64_t intervals = 6;         // shards per full iteration
  // Shard value blocks kept in the in-memory pipeline window (GraphChi keeps
  // several shard windows resident); blocks die when they rotate out.
  uint64_t pipeline_blocks = 48;
  // Transient scratch allocated per vertex-update batch.
  uint64_t scratch_bytes = 2048;
  uint64_t scratch_period = 16;   // vertices per scratch allocation
  uint64_t seed = 0x5eed;
};

class GraphWorkload : public Workload {
 public:
  explicit GraphWorkload(const GraphOptions& options);
  ~GraphWorkload() override;

  std::string name() const override {
    return options_.algo == GraphAlgo::kConnectedComponents ? "graphchi-cc" : "graphchi-pr";
  }
  void Setup(VM& vm, RuntimeThread& t) override;
  void Op(RuntimeThread& t, uint64_t op_index) override;
  void ConfigureFilter(PackageFilter* filter) const override;
  void Teardown() override;

  uint64_t iterations() const { return iterations_.load(std::memory_order_relaxed); }
  // Current CC label / PR rank of a vertex (for convergence checks in tests).
  uint64_t VertexLabel(RuntimeThread& t, uint64_t v);

 private:
  void ProcessInterval(RuntimeThread& t, uint64_t interval);

  GraphOptions options_;
  VM* vm_ = nullptr;

  MethodId m_engine_ = 0, m_block_ = 0, m_update_ = 0, m_io_ = 0;
  uint32_t site_block_ = 0;    // interval value blocks (epochal)
  uint32_t site_scratch_ = 0;  // per-vertex scratch
  uint32_t cs_engine_block_ = 0, cs_engine_update_ = 0, cs_update_io_ = 0;

  GlobalRef adjacency_;  // ref array[v]: data arrays of out-neighbour ids
  GlobalRef values_;     // data array: current vertex values (labels/ranks)
  GlobalRef pipeline_;   // ref array ring of recent shard blocks
  std::atomic<uint64_t> pipeline_cursor_{0};
  std::atomic<uint64_t> next_interval_{0};
  std::atomic<uint64_t> iterations_{0};
  SpinLock interval_lock_;
};

}  // namespace rolp

#endif  // SRC_WORKLOADS_GRAPH_H_
