#include "src/workloads/driver.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/util/check.h"
#include "src/util/clock.h"
#include "src/util/fault_injection.h"
#include "src/util/log.h"
#include "src/util/trace.h"

namespace rolp {

double PercentileMsOf(const std::vector<PauseRecord>& pauses, double p) {
  if (pauses.empty()) {
    return 0.0;
  }
  std::vector<uint64_t> durations;
  durations.reserve(pauses.size());
  for (const auto& rec : pauses) {
    durations.push_back(rec.duration_ns);
  }
  std::sort(durations.begin(), durations.end());
  double rank = p / 100.0 * static_cast<double>(durations.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = lo + 1 < durations.size() ? lo + 1 : lo;
  double frac = rank - static_cast<double>(lo);
  double ns = static_cast<double>(durations[lo]) * (1.0 - frac) +
              static_cast<double>(durations[hi]) * frac;
  return ns / 1e6;
}

double RunResult::PausePercentileMs(double p) const {
  if (pause_log_truncated) {
    return static_cast<double>(pause_hist.Percentile(p)) / 1e6;
  }
  return PercentileMsOf(pauses, p);
}

double RunResult::MaxPauseMs() const {
  if (pause_log_truncated) {
    return static_cast<double>(max_pause_ns_alltime) / 1e6;
  }
  uint64_t max_ns = 0;
  for (const auto& rec : pauses) {
    max_ns = std::max(max_ns, rec.duration_ns);
  }
  return static_cast<double>(max_ns) / 1e6;
}

double RunResult::TotalPauseMs() const {
  if (pause_log_truncated) {
    return static_cast<double>(total_pause_ns_alltime) / 1e6;
  }
  uint64_t total = 0;
  for (const auto& rec : pauses) {
    total += rec.duration_ns;
  }
  return static_cast<double>(total) / 1e6;
}

RunResult RunWorkload(const VmConfig& vm_config, Workload& workload,
                      const DriverOptions& options) {
  VmConfig cfg = vm_config;
  if (options.use_workload_filter && cfg.gc == GcKind::kRolp) {
    workload.ConfigureFilter(&cfg.filter);
  }
  VM vm(cfg);

  // Setup on an attached thread.
  {
    ROLP_TRACE_SCOPE("workload", "workload.setup");
    RuntimeThread* setup_thread = vm.AttachThread();
    workload.Setup(vm, *setup_thread);
    vm.DetachThread(setup_thread);
  }

  ScopedTrace run_scope("workload", "workload.run");
  uint64_t start_ns = NowNs();
  uint64_t warmup_end_ns = start_ns + static_cast<uint64_t>(options.warmup_s * 1e9);
  uint64_t deadline_ns = start_ns + static_cast<uint64_t>(options.duration_s * 1e9);

  std::atomic<uint64_t> total_ops{0};
  std::atomic<uint64_t> measured_ops{0};
  std::atomic<bool> stop{false};

  auto body = [&](int thread_index) {
    RuntimeThread* t = vm.AttachThread();
    uint64_t op = static_cast<uint64_t>(thread_index) << 40;
    uint64_t local_ops = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      workload.Op(*t, op++);
      local_ops++;
      uint64_t now = NowNs();
      if (now >= warmup_end_ns) {
        measured_ops.fetch_add(1, std::memory_order_relaxed);
      }
      if (now >= deadline_ns) {
        stop.store(true, std::memory_order_relaxed);
        break;
      }
      if (options.max_ops != 0 &&
          total_ops.load(std::memory_order_relaxed) + local_ops >= options.max_ops) {
        stop.store(true, std::memory_order_relaxed);
        break;
      }
      t->Poll();
    }
    total_ops.fetch_add(local_ops, std::memory_order_relaxed);
    vm.DetachThread(t);
  };

  std::vector<std::thread> threads;
  threads.reserve(options.threads);
  for (int i = 0; i < options.threads; i++) {
    threads.emplace_back(body, i);
  }
  for (auto& th : threads) {
    th.join();
  }
  uint64_t end_ns = NowNs();

  RunResult result;
  result.workload = workload.name();
  result.collector = GcKindName(cfg.gc);
  result.run_start_ns = start_ns;
  result.ops = options.warmup_s > 0 ? measured_ops.load() : total_ops.load();
  result.measured_s =
      static_cast<double>(end_ns - std::max(start_ns, warmup_end_ns)) / 1e9;
  if (options.warmup_s <= 0) {
    result.measured_s = static_cast<double>(end_ns - start_ns) / 1e9;
  }
  if (result.measured_s > 0) {
    result.throughput = static_cast<double>(result.ops) / result.measured_s;
  }

  CollectVmStats(vm, warmup_end_ns, &result);

  workload.Teardown();
  return result;
}

void CollectVmStats(VM& vm, uint64_t warmup_end_ns, RunResult* out) {
  RunResult& result = *out;
  GcMetrics& gm = vm.collector().metrics();
  result.all_pauses = gm.Pauses();
  for (const auto& rec : result.all_pauses) {
    if (rec.start_ns >= warmup_end_ns) {
      result.pauses.push_back(rec);
    }
  }
  // Exact all-time aggregates: the record vectors above are bounded by the
  // pause-log ring and lose history on long runs.
  result.pause_count_alltime = gm.PauseCount();
  result.total_pause_ns_alltime = gm.TotalPauseNs();
  result.max_pause_ns_alltime = gm.MaxPauseNs();
  result.pause_hist = gm.PauseHistogramSnapshot();
  result.pause_log_truncated = result.pause_count_alltime > result.all_pauses.size();
  result.max_used_bytes = vm.heap().max_used_bytes();
  result.total_allocated_bytes = vm.heap().total_allocated_bytes();
  result.gc_cycles = gm.GcCycles();
  result.bytes_copied = gm.BytesCopied();

  JitEngine& jit = vm.jit();
  result.total_alloc_sites = jit.num_alloc_sites();
  result.profiled_alloc_sites = jit.profiled_alloc_sites();
  result.total_call_sites = jit.num_call_sites();
  result.tracked_call_sites = jit.tracked_call_sites();
  result.instrumented_call_sites = jit.instrumented_call_sites();
  result.profilable_call_sites = jit.NumProfilableCallSites();
  result.pas_fraction = jit.pas_fraction();
  result.pmc_fraction = jit.pmc_fraction();
  if (vm.profiler() != nullptr) {
    result.conflicts = vm.profiler()->conflicts_total();
    result.old_table_bytes = vm.profiler()->old_table().PaperMemoryBytes();
    result.first_decision_cycle = vm.profiler()->first_decision_cycle();
    result.survivor_tracking_toggles = vm.profiler()->survivor_tracking_toggles();
    result.profiler_degraded_entries = vm.profiler()->degraded_entries();
    result.profiler_degraded_at_end = vm.profiler()->degraded();
    result.old_table_dropped = vm.profiler()->old_table().dropped_samples();
    result.decisions_at_end = vm.profiler()->decisions_count();
  }
  result.exception_fixups = vm.total_exception_fixups();
  result.osr_repaired = vm.total_osr_repaired();
  result.recoverable_ooms = vm.total_recoverable_ooms();

  const VerifyStats& vs = vm.collector().verify_stats();
  result.verify_passes = vs.passes;
  result.verify_findings = vs.findings;
  result.verify_refs_healed = vs.refs_healed;
  result.verify_refs_nulled = vs.refs_nulled;
  result.verify_passes_cancelled = vs.passes_cancelled;
  result.quarantined_regions = vm.heap().regions().quarantined_regions();
  if (vm.profiler() != nullptr) {
    result.heap_corruption_reports = vm.profiler()->heap_corruption_reports();
  }
  if (vm.collector().watchdog() != nullptr) {
    result.watchdog_overruns = vm.collector().watchdog()->stats().overruns_detected;
    result.watchdog_phases_cancelled =
        vm.collector().watchdog()->stats().phases_cancelled;
  }
  result.fault_fires = FaultInjection::Instance().TotalFires();
}

}  // namespace rolp
