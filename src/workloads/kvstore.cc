#include "src/workloads/kvstore.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>

#include "src/runtime/frame.h"
#include "src/util/check.h"

namespace rolp {

namespace {
// Row payload: [0] next ref, [8] value ref, [16] key. 24 bytes.
constexpr uint32_t kRowNext = 0;
constexpr uint32_t kRowValue = 8;
constexpr uint32_t kRowKey = 16;

uint64_t BucketFor(uint64_t key, uint64_t buckets) { return Mix64(key) & (buckets - 1); }

// The key field is written by the inserting thread and read by concurrent
// list walkers (Get/Put/Flush on other mutators); relaxed atomics keep the
// lock-free read path while making the accesses well-defined.
uint64_t RowKey(Object* row) {
  return std::atomic_ref<uint64_t>(*reinterpret_cast<uint64_t*>(row->payload() + kRowKey))
      .load(std::memory_order_relaxed);
}

void SetRowKey(Object* row, uint64_t key) {
  std::atomic_ref<uint64_t>(*reinterpret_cast<uint64_t*>(row->payload() + kRowKey))
      .store(key, std::memory_order_relaxed);
}
}  // namespace

KvStoreWorkload::KvStoreWorkload(const KvStoreOptions& options)
    : options_(options), keys_(options.num_keys, 0.99, options.seed), rng_(options.seed) {}

KvStoreWorkload::~KvStoreWorkload() = default;

std::string KvStoreWorkload::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "cassandra-%02d%%w",
                static_cast<int>(options_.write_fraction * 100));
  return buf;
}

void KvStoreWorkload::ConfigureFilter(PackageFilter* filter) const {
  // Paper Table 1: cassandra.db, cassandra.utils, cassandra.memory.
  filter->Include("cassandra.db");
  filter->Include("cassandra.utils");
  filter->Include("cassandra.memory");
}

void KvStoreWorkload::Setup(VM& vm, RuntimeThread& t) {
  vm_ = &vm;
  row_cls_ = vm.heap().classes().RegisterInstance("cassandra.db.Row", 24, {kRowNext, kRowValue});

  JitEngine& jit = vm.jit();
  m_net_ = jit.RegisterMethod("cassandra.net.Dispatcher::handle", 180);
  m_put_ = jit.RegisterMethod("cassandra.db.Memtable::put", 220);
  m_get_ = jit.RegisterMethod("cassandra.db.Memtable::get", 200);
  m_flush_ = jit.RegisterMethod("cassandra.db.Memtable::flush", 300);
  m_compact_ = jit.RegisterMethod("cassandra.db.Compaction::compact", 400);
  m_row_alloc_ = jit.RegisterMethod("cassandra.db.Row::create", 60);
  m_value_alloc_ = jit.RegisterMethod("cassandra.utils.Values::allocate", 48);

  // Allocation sites. NG2C oracle hints (used only in NG2C mode): memtable
  // rows/values are middle-lived (gen 2); sealed sstable arrays are
  // long-lived (old); scratch has no hint.
  site_row_ = jit.RegisterAllocSite(m_row_alloc_, /*ng2c_hint=*/2);
  site_value_ = jit.RegisterAllocSite(m_value_alloc_, /*ng2c_hint=*/2);
  site_sstable_ = jit.RegisterAllocSite(m_flush_, /*ng2c_hint=*/kOldGenId);
  site_scratch_ = jit.RegisterAllocSite(m_net_, 0);
  site_bucket_ = jit.RegisterAllocSite(m_put_, 0);

  // Call sites. The value-allocation factory is reached from put (values
  // live until the flush) and from get (scratch copies die immediately) —
  // the paper's factory-method conflict (sections 1 and 4).
  cs_net_put_ = jit.RegisterCallSite(m_net_, m_put_);
  cs_net_get_ = jit.RegisterCallSite(m_net_, m_get_);
  cs_put_row_insert_ = jit.RegisterCallSite(m_put_, m_row_alloc_);
  cs_put_row_update_ = jit.RegisterCallSite(m_put_, m_row_alloc_);
  cs_put_value_ = jit.RegisterCallSite(m_put_, m_value_alloc_);
  cs_get_net_ = jit.RegisterCallSite(m_get_, m_value_alloc_);
  cs_flush_build_ = jit.RegisterCallSite(m_flush_, m_compact_);

  // The rest of the platform: cold framework code outside the data path
  // (never executed, never profiled) so site-density metrics are realistic.
  RegisterBackgroundCode(jit, "cassandra.net", 3000, 2, 3);
  RegisterBackgroundCode(jit, "cassandra.io", 2000, 2, 3);
  RegisterBackgroundCode(jit, "cassandra.gms", 1000, 2, 3);
  RegisterBackgroundCode(jit, "jdk.util", 2000, 2, 4);

  buckets_ = 1;
  while (buckets_ < options_.num_keys / 8) {
    buckets_ *= 2;
  }

  HandleScope scope(t);
  Object* mt = t.AllocateRefArray(site_bucket_, buckets_);
  ROLP_CHECK(mt != nullptr);
  memtable_ = vm.NewGlobalRoot(mt);
  Object* tables = t.AllocateRefArray(RuntimeThread::kNoSite, options_.max_sstables + 1);
  ROLP_CHECK(tables != nullptr);
  sstables_ = vm.NewGlobalRoot(tables);
}

Object* KvStoreWorkload::FindRow(RuntimeThread& t, Object* head, uint64_t key) {
  Object* row = head;
  while (row != nullptr) {
    if (RowKey(row) == key) {
      return row;
    }
    row = t.LoadField(row, kRowNext);
  }
  return nullptr;
}

void KvStoreWorkload::Put(RuntimeThread& t, uint64_t key) {
  HandleScope scope(t);
  uint64_t bucket = BucketFor(key, buckets_);
  Object* mt = vm_->LoadGlobal(memtable_);
  bool exists = FindRow(t, t.LoadElem(mt, bucket), key) != nullptr;

  // Value allocation (middle-lived: dies at flush).
  Local value;
  {
    MethodFrame f(t, cs_put_value_);
    value = t.NewLocal(t.AllocateDataArray(site_value_, options_.value_bytes));
  }
  if (value.get() == nullptr) {
    return;  // OOM: drop the op
  }
  // Touch the value (the "serialization" work).
  char* bytes = value.get()->DataArrayBytes();
  for (uint64_t i = 0; i < options_.value_bytes; i += 64) {
    bytes[i] = static_cast<char>(key + i);
  }

  // Row allocation through one of two call paths (insert vs. overwrite).
  Local row;
  if (exists) {
    MethodFrame f(t, cs_put_row_update_);
    row = t.NewLocal(t.AllocateInstance(site_row_, row_cls_));
  } else {
    MethodFrame f(t, cs_put_row_insert_);
    row = t.NewLocal(t.AllocateInstance(site_row_, row_cls_));
  }
  if (row.get() == nullptr) {
    return;
  }
  // Re-load everything after allocation (objects may have moved).
  mt = vm_->LoadGlobal(memtable_);
  Object* head = t.LoadElem(mt, bucket);
  Object* r = row.get();
  SetRowKey(r, key);
  t.StoreField(r, kRowNext, head);
  t.StoreField(r, kRowValue, value.get());
  t.StoreElem(mt, bucket, r);

  if (memtable_rows_.fetch_add(1, std::memory_order_relaxed) + 1 >=
      options_.memtable_flush_rows) {
    Flush(t);
  }
}

void KvStoreWorkload::Get(RuntimeThread& t, uint64_t key) {
  HandleScope scope(t);
  Object* mt = vm_->LoadGlobal(memtable_);
  Object* row = FindRow(t, t.LoadElem(mt, BucketFor(key, buckets_)), key);
  if (row != nullptr) {
    reads_hit_.fetch_add(1, std::memory_order_relaxed);
    Local lv = t.NewLocal(t.LoadField(row, kRowValue));
    // Response scratch: same factory allocation site as put-values, but this
    // copy dies immediately (the conflict ROLP must untangle).
    Local copy;
    {
      MethodFrame f(t, cs_get_net_);
      copy = t.NewLocal(t.AllocateDataArray(site_value_, options_.value_bytes));
    }
    if (copy.get() != nullptr && lv.get() != nullptr) {
      std::memcpy(copy.get()->DataArrayBytes(), lv.get()->DataArrayBytes(),
                  options_.value_bytes);
    }
    return;
  }
  // Miss in the memtable: scan sealed sstables' key arrays (read-only).
  Object* tables = vm_->LoadGlobal(sstables_);
  uint64_t n = sstable_count_.load(std::memory_order_relaxed);
  for (uint64_t i = 0; i < n && i < tables->ArrayLength(); i++) {
    Object* sst = t.LoadElem(tables, i);
    if (sst == nullptr) {
      continue;
    }
    Object* key_arr = t.LoadElem(sst, 0);
    if (key_arr == nullptr) {
      continue;
    }
    const uint64_t* keys = reinterpret_cast<const uint64_t*>(key_arr->DataArrayBytes());
    uint64_t count = key_arr->ArrayLength() / sizeof(uint64_t);
    for (uint64_t k = 0; k < count; k++) {
      if (keys[k] == key) {
        reads_hit_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }
}

void KvStoreWorkload::Flush(RuntimeThread& t) {
  // Flush allocates while holding the lock; waiters must keep polling.
  LockAtSafepoint(maintenance_lock_, t);
  std::lock_guard<SpinLock> guard(maintenance_lock_, std::adopt_lock);
  uint64_t rows = memtable_rows_.load(std::memory_order_relaxed);
  if (rows < options_.memtable_flush_rows) {
    return;  // another thread flushed first
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  HandleScope scope(t);

  if (sstable_count_.load(std::memory_order_relaxed) >= options_.max_sstables) {
    Compact(t);
  }

  // "Serialize" the memtable: a key array and a (often humongous) data blob,
  // both long-lived; then drop all rows (they die together: epochal).
  Local keys;
  Local blob;
  {
    MethodFrame f(t, cs_flush_build_);
    keys = t.NewLocal(t.AllocateDataArray(site_sstable_, rows * sizeof(uint64_t)));
    blob = t.NewLocal(t.AllocateDataArray(site_sstable_, rows * 64));
  }
  if (keys.get() == nullptr || blob.get() == nullptr) {
    return;
  }
  Object* mt = vm_->LoadGlobal(memtable_);
  uint64_t* out_keys = reinterpret_cast<uint64_t*>(keys.get()->DataArrayBytes());
  uint64_t written = 0;
  uint64_t capacity = keys.get()->ArrayLength() / sizeof(uint64_t);
  for (uint64_t b = 0; b < buckets_; b++) {
    Object* row = t.LoadElem(mt, b);
    while (row != nullptr && written < capacity) {
      out_keys[written++] = RowKey(row);
      row = t.LoadField(row, kRowNext);
    }
    t.StoreElem(mt, b, nullptr);  // drop the chain: rows + values die
  }
  Local sst = t.NewLocal(t.AllocateRefArray(RuntimeThread::kNoSite, 2));
  if (sst.get() == nullptr) {
    return;
  }
  t.StoreElem(sst.get(), 0, keys.get());
  t.StoreElem(sst.get(), 1, blob.get());
  Object* tables = vm_->LoadGlobal(sstables_);
  uint64_t idx = sstable_count_.load(std::memory_order_relaxed);
  if (idx < tables->ArrayLength()) {
    t.StoreElem(tables, idx, sst.get());
    sstable_count_.store(idx + 1, std::memory_order_relaxed);
  }
  memtable_rows_.store(0, std::memory_order_relaxed);
}

void KvStoreWorkload::Compact(RuntimeThread& t) {
  compactions_.fetch_add(1, std::memory_order_relaxed);
  HandleScope scope(t);
  Object* tables = vm_->LoadGlobal(sstables_);
  Local a = t.NewLocal(t.LoadElem(tables, 0));
  Local b = t.NewLocal(t.LoadElem(tables, 1));
  if (a.get() == nullptr || b.get() == nullptr) {
    return;
  }
  uint64_t ka = t.LoadElem(a.get(), 0)->ArrayLength();
  uint64_t kb = t.LoadElem(b.get(), 0)->ArrayLength();
  uint64_t ba = t.LoadElem(a.get(), 1)->ArrayLength();
  uint64_t bb = t.LoadElem(b.get(), 1)->ArrayLength();
  // Merging discards overwritten versions (the keyspace is finite), so
  // merged runs are bounded — without this, compaction output would grow
  // without limit, which no real LSM store does.
  uint64_t key_cap = options_.num_keys * sizeof(uint64_t);
  uint64_t merged_key_bytes = std::min(ka + kb, key_cap);
  uint64_t merged_blob_bytes = std::min(ba + bb, key_cap * 8);
  Local merged_keys;
  Local merged_blob;
  {
    MethodFrame f(t, cs_flush_build_);
    merged_keys = t.NewLocal(t.AllocateDataArray(site_sstable_, merged_key_bytes));
    merged_blob = t.NewLocal(t.AllocateDataArray(site_sstable_, merged_blob_bytes));
  }
  if (merged_keys.get() == nullptr || merged_blob.get() == nullptr) {
    return;
  }
  // Copy key material (the merge work).
  tables = vm_->LoadGlobal(sstables_);
  Object* ak = t.LoadElem(t.LoadElem(tables, 0), 0);
  Object* bk = t.LoadElem(t.LoadElem(tables, 1), 0);
  uint64_t take_a = std::min(static_cast<uint64_t>(ak->ArrayLength()), merged_key_bytes);
  std::memcpy(merged_keys.get()->DataArrayBytes(), ak->DataArrayBytes(), take_a);
  uint64_t take_b = std::min(static_cast<uint64_t>(bk->ArrayLength()), merged_key_bytes - take_a);
  std::memcpy(merged_keys.get()->DataArrayBytes() + take_a, bk->DataArrayBytes(), take_b);
  Local merged = t.NewLocal(t.AllocateRefArray(RuntimeThread::kNoSite, 2));
  if (merged.get() == nullptr) {
    return;
  }
  t.StoreElem(merged.get(), 0, merged_keys.get());
  t.StoreElem(merged.get(), 1, merged_blob.get());
  // Slide the ring: [merged, t2, t3, ...]. The two originals die.
  tables = vm_->LoadGlobal(sstables_);
  t.StoreElem(tables, 0, merged.get());
  uint64_t n = sstable_count_.load(std::memory_order_relaxed);
  for (uint64_t i = 1; i + 1 < n; i++) {
    t.StoreElem(tables, i, t.LoadElem(tables, i + 1));
  }
  if (n >= 2) {
    t.StoreElem(tables, n - 1, nullptr);
    sstable_count_.store(n - 1, std::memory_order_relaxed);
  }
}

void KvStoreWorkload::Op(RuntimeThread& t, uint64_t op_index) {
  uint64_t key;
  bool write;
  {
    std::lock_guard<SpinLock> guard(gen_lock_);
    key = keys_.Next();
    write = rng_.NextDouble() < options_.write_fraction;
  }
  // Request parsing scratch: dies with the op (control-path objects; the
  // cassandra.net package is outside the profiling filter).
  {
    HandleScope scope(t);
    Local scratch =
        t.NewLocal(t.AllocateDataArray(site_scratch_, options_.request_scratch_bytes));
    (void)scratch;
  }
  if (write) {
    MethodFrame f(t, cs_net_put_);
    Put(t, key);
  } else {
    MethodFrame f(t, cs_net_get_);
    Get(t, key);
  }
}

void KvStoreWorkload::Teardown() {
  memtable_ = GlobalRef();
  sstables_ = GlobalRef();
}

}  // namespace rolp
