#include "src/workloads/textindex.h"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "src/runtime/frame.h"
#include "src/util/check.h"

namespace rolp {

namespace {
// Postings data array layout: [0] uint64 count, then count uint64 doc ids.
uint64_t PostingCount(Object* arr) {
  return *reinterpret_cast<uint64_t*>(arr->DataArrayBytes());
}
uint64_t PostingCapacity(Object* arr) {
  return arr->ArrayLength() / sizeof(uint64_t) - 1;
}
uint64_t* PostingSlots(Object* arr) {
  return reinterpret_cast<uint64_t*>(arr->DataArrayBytes()) + 1;
}
}  // namespace

TextIndexWorkload::TextIndexWorkload(const TextIndexOptions& options)
    : options_(options), terms_(options.vocab, 0.99, options.seed), rng_(options.seed ^ 7) {}

TextIndexWorkload::~TextIndexWorkload() = default;

void TextIndexWorkload::ConfigureFilter(PackageFilter* filter) const {
  // Paper Table 1: lucene.store.
  filter->Include("lucene.store");
}

void TextIndexWorkload::Setup(VM& vm, RuntimeThread& t) {
  vm_ = &vm;
  JitEngine& jit = vm.jit();
  m_index_ = jit.RegisterMethod("lucene.store.IndexWriter::addDocument", 260);
  m_query_ = jit.RegisterMethod("lucene.search.IndexSearcher::search", 240);
  m_grow_ = jit.RegisterMethod("lucene.store.PostingsArray::grow", 80);
  m_seal_ = jit.RegisterMethod("lucene.store.SegmentWriter::seal", 320);
  m_merge_ = jit.RegisterMethod("lucene.store.SegmentMerger::merge", 400);
  m_tokenize_ = jit.RegisterMethod("lucene.analysis.Tokenizer::tokenize", 150);

  site_postings_ = jit.RegisterAllocSite(m_grow_, /*ng2c_hint=*/1);
  site_segment_ = jit.RegisterAllocSite(m_seal_, /*ng2c_hint=*/kOldGenId);
  site_scratch_ = jit.RegisterAllocSite(m_tokenize_, 0);

  cs_index_tok_ = jit.RegisterCallSite(m_index_, m_tokenize_);
  // Two distinct call paths share the postings-array allocation site: the
  // first-posting path (tiny arrays, usually superseded quickly) and the
  // doubling-growth path (arrays that live to the segment seal). Same
  // factory, different lifetimes: conflict material that thread-stack-state
  // tracking can untangle (paper section 5).
  cs_index_new_ = jit.RegisterCallSite(m_index_, m_grow_);
  cs_index_grow_ = jit.RegisterCallSite(m_index_, m_grow_);
  cs_index_seal_ = jit.RegisterCallSite(m_index_, m_seal_);
  cs_seal_merge_ = jit.RegisterCallSite(m_seal_, m_merge_);
  cs_query_tok_ = jit.RegisterCallSite(m_query_, m_tokenize_);

  RegisterBackgroundCode(jit, "lucene.codecs", 2500, 2, 3);
  RegisterBackgroundCode(jit, "lucene.util", 1500, 2, 3);
  RegisterBackgroundCode(jit, "jdk.util", 2000, 2, 4);

  HandleScope scope(t);
  Object* open = t.AllocateRefArray(RuntimeThread::kNoSite, options_.vocab);
  ROLP_CHECK(open != nullptr);
  open_ = vm.NewGlobalRoot(open);
  Object* sealed = t.AllocateRefArray(RuntimeThread::kNoSite, options_.max_segments + 1);
  ROLP_CHECK(sealed != nullptr);
  sealed_ = vm.NewGlobalRoot(sealed);
}

void TextIndexWorkload::AppendPosting(RuntimeThread& t, uint64_t term, uint64_t doc_id) {
  HandleScope scope(t);
  Object* open = vm_->LoadGlobal(open_);
  Object* arr = t.LoadElem(open, term);
  if (arr == nullptr || PostingCount(arr) >= PostingCapacity(arr)) {
    // Grow: allocate a doubled array; the superseded one becomes garbage
    // after living through part of the segment epoch.
    uint64_t old_count = arr == nullptr ? 0 : PostingCount(arr);
    uint64_t new_cap = arr == nullptr ? 8 : PostingCapacity(arr) * 2;
    Local old_arr = t.NewLocal(arr);
    Local fresh;
    if (arr == nullptr) {
      MethodFrame f(t, cs_index_new_);
      fresh = t.NewLocal(
          t.AllocateDataArray(site_postings_, (new_cap + 1) * sizeof(uint64_t)));
    } else {
      MethodFrame f(t, cs_index_grow_);
      fresh = t.NewLocal(
          t.AllocateDataArray(site_postings_, (new_cap + 1) * sizeof(uint64_t)));
    }
    if (fresh.get() == nullptr) {
      return;
    }
    if (old_arr.get() != nullptr) {
      std::memcpy(fresh.get()->DataArrayBytes(), old_arr.get()->DataArrayBytes(),
                  (old_count + 1) * sizeof(uint64_t));
    }
    open = vm_->LoadGlobal(open_);
    t.StoreElem(open, term, fresh.get());
    arr = fresh.get();
  }
  uint64_t count = PostingCount(arr);
  PostingSlots(arr)[count] = doc_id;
  *reinterpret_cast<uint64_t*>(arr->DataArrayBytes()) = count + 1;
}

void TextIndexWorkload::IndexDoc(RuntimeThread& t) {
  HandleScope scope(t);
  uint64_t doc_id = next_doc_id_.fetch_add(1, std::memory_order_relaxed);
  // Tokenize: scratch term buffer that dies with the op.
  Local scratch;
  {
    MethodFrame f(t, cs_index_tok_);
    scratch = t.NewLocal(t.AllocateDataArray(
        site_scratch_,
        options_.terms_per_doc * sizeof(uint64_t) + options_.scratch_bytes));
  }
  if (scratch.get() == nullptr) {
    return;
  }
  uint64_t* toks = reinterpret_cast<uint64_t*>(scratch.get()->DataArrayBytes());
  {
    std::lock_guard<SpinLock> guard(gen_lock_);
    for (uint64_t i = 0; i < options_.terms_per_doc; i++) {
      toks[i] = terms_.Next();
    }
  }
  for (uint64_t i = 0; i < options_.terms_per_doc; i++) {
    AppendPosting(t, toks[i], doc_id);
  }
  if (docs_in_open_.fetch_add(1, std::memory_order_relaxed) + 1 >=
      options_.docs_per_segment) {
    SealSegment(t);
  }
}

void TextIndexWorkload::SealSegment(RuntimeThread& t) {
  // Sealing allocates while holding the lock; waiters must keep polling.
  LockAtSafepoint(maintenance_lock_, t);
  std::lock_guard<SpinLock> guard(maintenance_lock_, std::adopt_lock);
  if (docs_in_open_.load(std::memory_order_relaxed) < options_.docs_per_segment) {
    return;
  }
  seals_.fetch_add(1, std::memory_order_relaxed);
  HandleScope scope(t);

  if (sealed_count_.load(std::memory_order_relaxed) >= options_.max_segments) {
    MergeSegments(t);
  }

  // Serialize the open segment into one blob; postings arrays then die
  // together (epochal).
  uint64_t total = 0;
  Object* open = vm_->LoadGlobal(open_);
  for (uint64_t v = 0; v < options_.vocab; v++) {
    Object* arr = t.LoadElem(open, v);
    if (arr != nullptr) {
      total += PostingCount(arr);
    }
  }
  // Sealed segments are delta/varint compressed on disk-format boundaries:
  // ~2 bytes per posting. This also keeps segment blobs bounded, as in the
  // real system.
  Local blob;
  {
    MethodFrame f(t, cs_index_seal_);
    blob = t.NewLocal(t.AllocateDataArray(site_segment_, 8 + total * 2));
  }
  if (blob.get() == nullptr) {
    return;
  }
  // Encode postings into the blob and clear the open segment.
  uint16_t* out = reinterpret_cast<uint16_t*>(blob.get()->DataArrayBytes() + 8);
  uint64_t capacity = (blob.get()->ArrayLength() - 8) / 2;
  uint64_t cursor = 0;
  open = vm_->LoadGlobal(open_);
  for (uint64_t v = 0; v < options_.vocab; v++) {
    Object* arr = t.LoadElem(open, v);
    if (arr == nullptr) {
      continue;
    }
    uint64_t n = PostingCount(arr);
    const uint64_t* slots = PostingSlots(arr);
    for (uint64_t i = 0; i < n && cursor < capacity; i++) {
      out[cursor++] = static_cast<uint16_t>(slots[i]);
    }
    t.StoreElem(open, v, nullptr);
  }
  *reinterpret_cast<uint64_t*>(blob.get()->DataArrayBytes()) = cursor;
  Object* sealed = vm_->LoadGlobal(sealed_);
  uint64_t idx = sealed_count_.load(std::memory_order_relaxed);
  if (idx < sealed->ArrayLength()) {
    t.StoreElem(sealed, idx, blob.get());
    sealed_count_.store(idx + 1, std::memory_order_relaxed);
  }
  docs_in_open_.store(0, std::memory_order_relaxed);
}

void TextIndexWorkload::MergeSegments(RuntimeThread& t) {
  merges_.fetch_add(1, std::memory_order_relaxed);
  HandleScope scope(t);
  Object* sealed = vm_->LoadGlobal(sealed_);
  Local a = t.NewLocal(t.LoadElem(sealed, 0));
  Local b = t.NewLocal(t.LoadElem(sealed, 1));
  if (a.get() == nullptr || b.get() == nullptr) {
    return;
  }
  // Merged runs dedupe postings of shared terms; bound the output (tiered
  // merge policy), or merged segments would grow without limit.
  uint64_t cap = 8 + options_.docs_per_segment * options_.terms_per_doc * 2 * 3;
  uint64_t bytes = a.get()->ArrayLength() + b.get()->ArrayLength();
  if (bytes > cap) {
    bytes = cap;
  }
  Local merged;
  {
    MethodFrame f(t, cs_seal_merge_);
    merged = t.NewLocal(t.AllocateDataArray(site_segment_, bytes));
  }
  if (merged.get() == nullptr) {
    return;
  }
  uint64_t take_a = std::min<uint64_t>(a.get()->ArrayLength(), bytes);
  std::memcpy(merged.get()->DataArrayBytes(), a.get()->DataArrayBytes(), take_a);
  uint64_t take_b = std::min<uint64_t>(b.get()->ArrayLength(), bytes - take_a);
  std::memcpy(merged.get()->DataArrayBytes() + take_a, b.get()->DataArrayBytes(), take_b);
  sealed = vm_->LoadGlobal(sealed_);
  t.StoreElem(sealed, 0, merged.get());
  uint64_t n = sealed_count_.load(std::memory_order_relaxed);
  for (uint64_t i = 1; i + 1 < n; i++) {
    t.StoreElem(sealed, i, t.LoadElem(sealed, i + 1));
  }
  if (n >= 2) {
    t.StoreElem(sealed, n - 1, nullptr);
    sealed_count_.store(n - 1, std::memory_order_relaxed);
  }
}

void TextIndexWorkload::Query(RuntimeThread& t) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  HandleScope scope(t);
  uint64_t term_a;
  uint64_t term_b;
  {
    std::lock_guard<SpinLock> guard(gen_lock_);
    term_a = terms_.Next();
    term_b = terms_.Next();
  }
  // Intersection scratch dies with the query.
  Local scratch;
  {
    MethodFrame f(t, cs_query_tok_);
    scratch = t.NewLocal(t.AllocateDataArray(site_scratch_, options_.scratch_bytes));
  }
  Object* open = vm_->LoadGlobal(open_);
  Object* pa = t.LoadElem(open, term_a);
  Object* pb = t.LoadElem(open, term_b);
  uint64_t hits = 0;
  if (pa != nullptr && pb != nullptr && scratch.get() != nullptr) {
    uint64_t na = PostingCount(pa);
    uint64_t nb = PostingCount(pb);
    const uint64_t* da = PostingSlots(pa);
    const uint64_t* db = PostingSlots(pb);
    uint64_t i = 0;
    uint64_t j = 0;
    while (i < na && j < nb) {
      if (da[i] == db[j]) {
        hits++;
        i++;
        j++;
      } else if (da[i] < db[j]) {
        i++;
      } else {
        j++;
      }
    }
  }
  (void)hits;
}

void TextIndexWorkload::Op(RuntimeThread& t, uint64_t op_index) {
  bool write;
  {
    std::lock_guard<SpinLock> guard(gen_lock_);
    write = rng_.NextDouble() < options_.write_fraction;
  }
  if (write) {
    IndexDoc(t);
  } else {
    Query(t);
  }
}

void TextIndexWorkload::Teardown() {
  open_ = GlobalRef();
  sealed_ = GlobalRef();
}

}  // namespace rolp
