#include "src/workloads/graph.h"

#include <cstring>
#include <mutex>

#include "src/runtime/frame.h"
#include "src/util/check.h"

namespace rolp {

namespace {
uint64_t* Values(Object* arr) { return reinterpret_cast<uint64_t*>(arr->DataArrayBytes()); }
}  // namespace

GraphWorkload::GraphWorkload(const GraphOptions& options) : options_(options) {}

GraphWorkload::~GraphWorkload() = default;

void GraphWorkload::ConfigureFilter(PackageFilter* filter) const {
  // Paper Table 1: graphchi.datablocks, graphchi.engine.
  filter->Include("graphchi.datablocks");
  filter->Include("graphchi.engine");
}

void GraphWorkload::Setup(VM& vm, RuntimeThread& t) {
  vm_ = &vm;
  JitEngine& jit = vm.jit();
  m_engine_ = jit.RegisterMethod("graphchi.engine.GraphChiEngine::runInterval", 350);
  m_block_ = jit.RegisterMethod("graphchi.datablocks.DataBlockManager::allocateBlock", 90);
  m_update_ = jit.RegisterMethod("graphchi.engine.VertexUpdate::update", 160);
  m_io_ = jit.RegisterMethod("graphchi.io.CompressedIO::readScratch", 120);

  site_block_ = jit.RegisterAllocSite(m_block_, /*ng2c_hint=*/1);
  site_scratch_ = jit.RegisterAllocSite(m_io_, 0);

  cs_engine_block_ = jit.RegisterCallSite(m_engine_, m_block_);
  cs_engine_update_ = jit.RegisterCallSite(m_engine_, m_update_);
  cs_update_io_ = jit.RegisterCallSite(m_update_, m_io_);

  RegisterBackgroundCode(jit, "graphchi.io", 1500, 2, 3);
  RegisterBackgroundCode(jit, "graphchi.preprocessing", 1500, 2, 3);
  RegisterBackgroundCode(jit, "jdk.util", 2000, 2, 4);

  // Build a power-law graph: preferential-attachment-flavoured sampling.
  HandleScope scope(t);
  Object* adj = t.AllocateRefArray(RuntimeThread::kNoSite, options_.vertices);
  ROLP_CHECK(adj != nullptr);
  adjacency_ = vm.NewGlobalRoot(adj);
  Random rng(options_.seed);
  ZipfianGenerator targets(options_.vertices, 0.7, options_.seed ^ 0x9e37);
  for (uint64_t v = 0; v < options_.vertices; v++) {
    // Degree: geometric-ish around the mean, at least 1.
    uint64_t degree = 1 + rng.NextBounded(2 * options_.edges_per_vertex - 1);
    Local edges =
        t.NewLocal(t.AllocateDataArray(RuntimeThread::kNoSite, degree * sizeof(uint64_t)));
    ROLP_CHECK(edges.get() != nullptr);
    uint64_t* out = Values(edges.get());
    for (uint64_t e = 0; e < degree; e++) {
      uint64_t to = targets.Next();
      out[e] = to == v ? (to + 1) % options_.vertices : to;
    }
    Object* adj_now = vm_->LoadGlobal(adjacency_);
    t.StoreElem(adj_now, v, edges.get());
    t.TruncateLocals(t.local_depth() - 1);
  }
  Object* vals =
      t.AllocateDataArray(RuntimeThread::kNoSite, options_.vertices * sizeof(uint64_t));
  ROLP_CHECK(vals != nullptr);
  values_ = vm.NewGlobalRoot(vals);
  Object* pipe = t.AllocateRefArray(RuntimeThread::kNoSite, options_.pipeline_blocks);
  ROLP_CHECK(pipe != nullptr);
  pipeline_ = vm.NewGlobalRoot(pipe);
  uint64_t* labels = Values(vals);
  for (uint64_t v = 0; v < options_.vertices; v++) {
    labels[v] = options_.algo == GraphAlgo::kConnectedComponents
                    ? v
                    : 1000000;  // PR: fixed-point rank, start at 1.0 (x1e6)
  }
}

uint64_t GraphWorkload::VertexLabel(RuntimeThread& t, uint64_t v) {
  Object* vals = vm_->LoadGlobal(values_);
  return Values(vals)[v];
}

void GraphWorkload::ProcessInterval(RuntimeThread& t, uint64_t interval) {
  HandleScope scope(t);
  uint64_t span = options_.vertices / options_.intervals;
  uint64_t begin = interval * span;
  uint64_t end = interval + 1 == options_.intervals ? options_.vertices : begin + span;

  // Interval value block: epochal — lives for the whole interval.
  Local block;
  {
    MethodFrame f(t, cs_engine_block_);
    block = t.NewLocal(
        t.AllocateDataArray(site_block_, (end - begin) * sizeof(uint64_t) + 8));
  }
  if (block.get() == nullptr) {
    return;
  }
  // The block joins the pipeline window: it stays live for the next
  // pipeline_blocks intervals (epochal lifetime).
  {
    Object* pipe = vm_->LoadGlobal(pipeline_);
    uint64_t slot = pipeline_cursor_.fetch_add(1, std::memory_order_relaxed);
    t.StoreElem(pipe, slot % options_.pipeline_blocks, block.get());
  }
  // Load current values into the block (the "shard load").
  {
    Object* vals = vm_->LoadGlobal(values_);
    std::memcpy(block.get()->DataArrayBytes(), Values(vals) + begin,
                (end - begin) * sizeof(uint64_t));
  }

  for (uint64_t v = begin; v < end; v++) {
    MethodFrame f(t, cs_engine_update_);
    if ((v - begin) % options_.scratch_period == 0) {
      MethodFrame g(t, cs_update_io_);
      Local scratch =
          t.NewLocal(t.AllocateDataArray(site_scratch_, options_.scratch_bytes));
      t.TruncateLocals(t.local_depth() - 1);
    }
    Object* adj = vm_->LoadGlobal(adjacency_);
    Object* edges = t.LoadElem(adj, v);
    if (edges == nullptr) {
      continue;
    }
    const uint64_t* out = Values(edges);
    uint64_t degree = edges->ArrayLength() / sizeof(uint64_t);
    uint64_t* blk = reinterpret_cast<uint64_t*>(block.get()->DataArrayBytes());
    Object* vals = vm_->LoadGlobal(values_);
    uint64_t* global = Values(vals);
    if (options_.algo == GraphAlgo::kConnectedComponents) {
      // Label propagation: take the min label over self + out-neighbours.
      uint64_t label = blk[v - begin];
      for (uint64_t e = 0; e < degree; e++) {
        uint64_t nl = global[out[e]];
        if (nl < label) {
          label = nl;
        }
      }
      blk[v - begin] = label;
      // Push the min back to neighbours (undirected-ish propagation).
      for (uint64_t e = 0; e < degree; e++) {
        if (global[out[e]] > label) {
          global[out[e]] = label;
        }
      }
    } else {
      // PageRank (fixed point x1e6): rank = 0.15 + 0.85 * sum(in)/deg proxy.
      uint64_t sum = 0;
      for (uint64_t e = 0; e < degree; e++) {
        uint64_t nd = 1 + global[out[e]] / 1000;  // cheap degree proxy
        sum += global[out[e]] / nd;
      }
      blk[v - begin] = 150000 + (850 * sum) / 1000;
    }
  }
  // Write the block back (the "shard store"); the block then dies.
  Object* vals = vm_->LoadGlobal(values_);
  std::memcpy(Values(vals) + begin, block.get()->DataArrayBytes(),
              (end - begin) * sizeof(uint64_t));
}

void GraphWorkload::Op(RuntimeThread& t, uint64_t op_index) {
  uint64_t interval;
  {
    std::lock_guard<SpinLock> guard(interval_lock_);
    interval = next_interval_.fetch_add(1, std::memory_order_relaxed) % options_.intervals;
    if (interval + 1 == options_.intervals) {
      iterations_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  MethodFrame f(t, cs_engine_update_);
  ProcessInterval(t, interval);
}

void GraphWorkload::Teardown() {
  adjacency_ = GlobalRef();
  values_ = GlobalRef();
  pipeline_ = GlobalRef();
}

}  // namespace rolp
