// Market-data ingest pipeline (DESIGN.md §16): feed determinism, wire-parse
// validation, cross-arm book-state parity, VM-arm smoke, and the
// governor-throttle-under-GC regression for the pipeline threads.
#include "src/workloads/marketdata/pipeline.h"

#include <cstdlib>
#include <vector>

#include "gtest/gtest.h"
#include "src/workloads/marketdata/book.h"
#include "src/workloads/marketdata/feed.h"

namespace rolp {
namespace marketdata {
namespace {

// Small, fast pipeline settings: the point is semantics, not tail latency.
IngestOptions FastOptions() {
  IngestOptions o;
  o.events = 20000;
  o.rate_eps = 2e6;  // effectively unpaced: gap 0.5us, drains at CPU speed
  o.warmup_fraction = 0.2;
  o.heap_mb = 64;
  o.mode = PipelineMode::kFused;  // deterministic on any core count
  return o;
}

TEST(FeedGeneratorTest, DeterministicForSeed) {
  FeedGenerator a(1234), b(1234), c(9999);
  bool saw_divergence_from_c = false;
  for (int i = 0; i < 10000; i++) {
    RawMsg ma, mb, mc;
    a.Next(&ma);
    b.Next(&mb);
    c.Next(&mc);
    ASSERT_EQ(0, std::memcmp(&ma, &mb, sizeof(RawMsg))) << "message " << i;
    saw_divergence_from_c =
        saw_divergence_from_c || std::memcmp(&ma, &mc, sizeof(RawMsg)) != 0;
  }
  EXPECT_TRUE(saw_divergence_from_c) << "different seeds produced one stream";
  EXPECT_EQ(a.live_orders(), b.live_orders());
}

TEST(FeedGeneratorTest, LiveOrderWindowStaysBounded) {
  FeedOptions fopt;
  fopt.max_live_orders = 64;
  FeedGenerator gen(42, fopt);
  RawMsg m;
  for (int i = 0; i < 5000; i++) {
    gen.Next(&m);
    ASSERT_LE(gen.live_orders(), 64u);
  }
  EXPECT_GT(gen.live_orders(), 0u);
}

TEST(FeedParseTest, RoundTripAndCorruptionRejected) {
  FeedGenerator gen(7);
  RawMsg m;
  gen.Next(&m);
  ParsedEvent ev;
  ASSERT_TRUE(ParseMsg(m, &ev));
  EXPECT_EQ(ev.order_id, m.order_id);
  EXPECT_EQ(ev.price, m.price);
  EXPECT_EQ(ev.size, m.size);
  EXPECT_EQ(ev.symbol, m.symbol);
  EXPECT_EQ(static_cast<uint8_t>(ev.type), m.type);

  RawMsg bad_magic = m;
  bad_magic.magic ^= 0xffff;
  EXPECT_FALSE(ParseMsg(bad_magic, &ev));

  RawMsg bad_sum = m;
  bad_sum.size ^= 1;  // payload changed, checksum not recomputed
  EXPECT_FALSE(ParseMsg(bad_sum, &ev));
}

// The deterministic feed plus the shared book semantics give a cross-arm
// oracle: the pooled-manual book and the GC'd book must end the run with an
// identical fold checksum and identical resting state, or one of the arms
// corrupted an update.
TEST(MarketDataPipelineTest, PooledAndVmArmsAgreeOnBookState) {
  IngestOptions o = FastOptions();
  IngestResult pooled = RunIngest(ArmKind::kPooled, o);
  IngestResult g1 = RunIngest(ArmKind::kG1, o);

  ASSERT_TRUE(pooled.survived);
  ASSERT_TRUE(g1.survived);
  EXPECT_EQ(pooled.analyzed, o.events);
  EXPECT_EQ(g1.analyzed, o.events);
  EXPECT_EQ(pooled.book.checksum, g1.book.checksum);
  EXPECT_EQ(pooled.book.resting_orders, g1.book.resting_orders);
  EXPECT_EQ(pooled.book.live_levels, g1.book.live_levels);
  EXPECT_EQ(pooled.book.applied, g1.book.applied);
  // The pooled arm's conservation law at quiescence: the only objects still
  // held out of the pools are exactly the resting book state. (Teardown then
  // drains those too — ASan would flag anything the destructor missed.)
  EXPECT_EQ(pooled.book.pool_orders_outstanding, pooled.book.resting_orders);
  EXPECT_EQ(pooled.book.pool_levels_outstanding, pooled.book.live_levels);
}

TEST(MarketDataPipelineTest, RolpArmSmokes) {
  IngestOptions o = FastOptions();
  IngestResult r = RunIngest(ArmKind::kRolp, o);
  ASSERT_TRUE(r.survived);
  EXPECT_EQ(r.analyzed, o.events);
  EXPECT_EQ(r.parse_drops, 0u);
  EXPECT_EQ(r.book_drops, 0u);
  EXPECT_GT(r.book.applied, 0u);
  EXPECT_GT(r.alloc_ns_per_event, 0.0);
}

TEST(MarketDataPipelineTest, ThreadedModeMatchesFusedSemantics) {
  IngestOptions o = FastOptions();
  o.events = 10000;
  IngestResult fused = RunIngest(ArmKind::kPooled, o);
  o.mode = PipelineMode::kThreaded;
  IngestResult threaded = RunIngest(ArmKind::kPooled, o);
  ASSERT_TRUE(fused.survived);
  ASSERT_TRUE(threaded.survived);
  EXPECT_EQ(fused.book.checksum, threaded.book.checksum);
  EXPECT_EQ(fused.book.resting_orders, threaded.book.resting_orders);
  EXPECT_EQ(fused.analyzed, threaded.analyzed);
}

// Governor-throttle-under-GC regression: with the throttle watermark forced
// low on a small heap, pipeline threads hit the governor's stall rung inside
// the allocation slow path *while* collections run. The stall sits in a safe
// region (thread.cc), so a concurrent pause must never deadlock against a
// throttled pipeline thread — the regression here is "the run completes at
// all"; the stall counter proves the rung actually fired.
TEST(MarketDataPipelineTest, GovernorThrottleUnderGcCompletes) {
  setenv("ROLP_GOV_THROTTLE_WATERMARK", "0.05", 1);
  setenv("ROLP_GOV_GC_WATERMARK", "0.03", 1);
  setenv("ROLP_GOV_THROTTLE_US", "100", 1);
  IngestOptions o = FastOptions();
  o.events = 15000;
  o.heap_mb = 48;
  // Real pipeline threads (the regression target), not the fused fallback.
  o.mode = PipelineMode::kThreaded;
  IngestResult r = RunIngest(ArmKind::kG1, o);
  unsetenv("ROLP_GOV_THROTTLE_WATERMARK");
  unsetenv("ROLP_GOV_GC_WATERMARK");
  unsetenv("ROLP_GOV_THROTTLE_US");

  ASSERT_TRUE(r.survived) << "pipeline wedged under governor throttle";
  EXPECT_EQ(r.analyzed, o.events);
  EXPECT_GT(r.governor_throttle_stalls, 0u)
      << "throttle rung never fired: watermark override did not take";
  EXPECT_GT(r.gc_pauses, 0u) << "no GC ran: the test did not exercise "
                                "throttle-during-collection at all";
}

TEST(IngestVerdictTest, JsonCarriesArmsAndTailGate) {
  IngestOptions o = FastOptions();
  IngestResult a;
  a.arm = ArmKind::kG1;
  a.survived = true;
  a.p999_ns = 4000000;
  IngestResult b;
  b.arm = ArmKind::kRolp;
  b.survived = true;
  b.p999_ns = 3000000;
  std::string json = IngestVerdictJson({a, b}, o);
  EXPECT_NE(json.find("\"g1\":{"), std::string::npos);
  EXPECT_NE(json.find("\"rolp\":{"), std::string::npos);
  EXPECT_NE(json.find("\"rolp_tail_ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"pass\":true"), std::string::npos);

  b.p999_ns = 5000000;  // rolp tail regresses past g1
  json = IngestVerdictJson({a, b}, o);
  EXPECT_NE(json.find("\"rolp_tail_ok\":false"), std::string::npos);

  a.survived = false;
  json = IngestVerdictJson({a, b}, o);
  EXPECT_NE(json.find("\"pass\":false"), std::string::npos);
}

}  // namespace
}  // namespace marketdata
}  // namespace rolp
