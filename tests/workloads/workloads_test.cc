#include <gtest/gtest.h>

#include "src/workloads/dacapo.h"
#include "src/workloads/driver.h"
#include "src/workloads/graph.h"
#include "src/workloads/kvstore.h"
#include "src/workloads/textindex.h"

namespace rolp {
namespace {

VmConfig TestVm(GcKind gc, size_t heap_mb = 64) {
  VmConfig cfg;
  cfg.heap_mb = heap_mb;
  cfg.gc = gc;
  cfg.jit.hot_threshold = 200;
  cfg.rolp.inference_period = 8;
  cfg.rolp.old_table_entries = 1 << 14;
  return cfg;
}

DriverOptions ShortRun(double seconds = 0.4) {
  DriverOptions opt;
  opt.threads = 1;
  opt.duration_s = seconds;
  return opt;
}

TEST(KvStoreWorkloadTest, RunsUnderEveryCollector) {
  for (GcKind gc :
       {GcKind::kG1, GcKind::kCms, GcKind::kZgc, GcKind::kNg2c, GcKind::kRolp}) {
    KvStoreOptions kv;
    kv.num_keys = 8000;
    kv.memtable_flush_rows = 1000;
    KvStoreWorkload w(kv);
    RunResult r = RunWorkload(TestVm(gc), w, ShortRun());
    EXPECT_GT(r.ops, 100u) << GcKindName(gc);
    EXPECT_GT(r.throughput, 0.0) << GcKindName(gc);
  }
}

TEST(KvStoreWorkloadTest, FlushesAndCompacts) {
  KvStoreOptions kv;
  kv.num_keys = 8000;
  kv.memtable_flush_rows = 500;
  kv.max_sstables = 2;
  KvStoreWorkload w(kv);
  RunResult r = RunWorkload(TestVm(GcKind::kG1), w, ShortRun(0.8));
  EXPECT_GT(w.flushes(), 2u);
  EXPECT_GT(w.compactions(), 0u);
  EXPECT_GT(r.gc_cycles, 0u);
}

TEST(KvStoreWorkloadTest, ReadsFindWrites) {
  KvStoreOptions kv;
  kv.num_keys = 500;  // small keyspace: reads will hit
  kv.write_fraction = 0.5;
  KvStoreWorkload w(kv);
  RunWorkload(TestVm(GcKind::kG1), w, ShortRun());
  EXPECT_GT(w.reads_hit(), 10u);
}

TEST(KvStoreWorkloadTest, ConcurrentFlushDoesNotDeadlockWithGc) {
  // Regression: Flush() allocates while holding the maintenance lock. A
  // second thread blocked on that lock used to spin without polling, so when
  // the flushing thread's allocation initiated a stop-the-world collection,
  // the safepoint initiator waited forever for the spinning waiter to park.
  // Flushing constantly from several threads makes that collision near-certain
  // within a second.
  KvStoreOptions kv;
  kv.num_keys = 4000;
  kv.memtable_flush_rows = 64;
  KvStoreWorkload w(kv);
  DriverOptions opt;
  opt.threads = 3;
  opt.duration_s = 1.0;
  RunResult r = RunWorkload(TestVm(GcKind::kG1, 48), w, opt);
  EXPECT_GT(r.ops, 100u);
  EXPECT_GT(w.flushes(), 4u);
}

TEST(KvStoreWorkloadTest, RolpProfilesTheDataPath) {
  KvStoreOptions kv;
  kv.num_keys = 8000;
  kv.memtable_flush_rows = 800;
  KvStoreWorkload w(kv);
  VmConfig cfg = TestVm(GcKind::kRolp);
  cfg.jit.hot_threshold = 50;
  RunResult r = RunWorkload(cfg, w, ShortRun(1.0));
  // The package filter admits the data path: some sites must be profiled.
  EXPECT_GT(r.profiled_alloc_sites, 0u);
  EXPECT_LT(r.profiled_alloc_sites, r.total_alloc_sites);  // net package filtered out
  EXPECT_GT(r.old_table_bytes, 0u);
}

TEST(TextIndexWorkloadTest, IndexesSealsAndMerges) {
  TextIndexOptions ti;
  ti.vocab = 4000;
  ti.docs_per_segment = 150;
  ti.max_segments = 2;
  TextIndexWorkload w(ti);
  RunResult r = RunWorkload(TestVm(GcKind::kG1), w, ShortRun(0.8));
  EXPECT_GT(w.segments_sealed(), 1u);
  EXPECT_GT(w.queries(), 0u);
  EXPECT_GT(r.ops, 100u);
}

TEST(TextIndexWorkloadTest, RunsUnderCmsAndRolp) {
  for (GcKind gc : {GcKind::kCms, GcKind::kRolp}) {
    TextIndexOptions ti;
    ti.vocab = 4000;
    ti.docs_per_segment = 200;
    TextIndexWorkload w(ti);
    RunResult r = RunWorkload(TestVm(gc), w, ShortRun());
    EXPECT_GT(r.ops, 50u) << GcKindName(gc);
  }
}

TEST(GraphWorkloadTest, ConnectedComponentsConverges) {
  GraphOptions go;
  go.vertices = 4000;
  go.edges_per_vertex = 6;
  go.intervals = 4;
  GraphWorkload w(go);
  DriverOptions opt = ShortRun(1.0);
  opt.max_ops = 64;  // 16 full iterations
  RunResult r = RunWorkload(TestVm(GcKind::kG1), w, opt);
  EXPECT_GE(w.iterations(), 2u);
  EXPECT_GT(r.ops, 0u);
}

TEST(GraphWorkloadTest, PageRankRuns) {
  GraphOptions go;
  go.algo = GraphAlgo::kPageRank;
  go.vertices = 4000;
  go.intervals = 4;
  GraphWorkload w(go);
  DriverOptions opt = ShortRun(1.0);
  opt.max_ops = 16;
  RunResult r = RunWorkload(TestVm(GcKind::kG1), w, opt);
  EXPECT_GT(r.ops, 0u);
}

TEST(GraphWorkloadTest, RunsUnderNg2c) {
  GraphOptions go;
  go.vertices = 4000;
  go.intervals = 4;
  GraphWorkload w(go);
  DriverOptions opt = ShortRun(0.5);
  opt.max_ops = 24;
  RunResult r = RunWorkload(TestVm(GcKind::kNg2c), w, opt);
  EXPECT_GT(r.ops, 0u);
}

TEST(DacapoSuiteTest, HasThirteenBenchmarks) {
  EXPECT_EQ(DacapoSuite().size(), 13u);
  EXPECT_NE(FindDacapoSpec("avrora"), nullptr);
  EXPECT_NE(FindDacapoSpec("xalan"), nullptr);
  EXPECT_EQ(FindDacapoSpec("nope"), nullptr);
}

TEST(DacapoWorkloadTest, SmallBenchmarksRun) {
  for (const char* name : {"avrora", "lusearch", "pmd"}) {
    const DacapoSpec* spec = FindDacapoSpec(name);
    ASSERT_NE(spec, nullptr);
    DacapoWorkload w(*spec);
    VmConfig cfg = TestVm(GcKind::kG1, spec->heap_mb);
    cfg.jit.hot_threshold = 20;
    RunResult r = RunWorkload(cfg, w, ShortRun(0.3));
    EXPECT_GT(r.ops, 5u) << name;
  }
}

TEST(DacapoWorkloadTest, ExceptionsUnwindSafely) {
  const DacapoSpec* spec = FindDacapoSpec("tradesoap");  // highest exc rate
  ASSERT_NE(spec, nullptr);
  DacapoWorkload w(*spec);
  VmConfig cfg = TestVm(GcKind::kRolp, spec->heap_mb);
  cfg.jit.hot_threshold = 20;
  RunResult r = RunWorkload(cfg, w, ShortRun(0.5));
  EXPECT_GT(w.exceptions_thrown(), 0u);
  EXPECT_GT(r.ops, 0u);
}

TEST(DriverTest, WarmupExcludesEarlyPauses) {
  KvStoreOptions kv;
  kv.num_keys = 8000;
  KvStoreWorkload w(kv);
  DriverOptions opt;
  opt.duration_s = 0.8;
  opt.warmup_s = 0.4;
  RunResult r = RunWorkload(TestVm(GcKind::kG1), w, opt);
  EXPECT_LE(r.pauses.size(), r.all_pauses.size());
  for (const auto& p : r.pauses) {
    EXPECT_GE(p.start_ns, r.run_start_ns + 400000000ull);
  }
}

TEST(DriverTest, PercentileHelpersAreExact) {
  std::vector<PauseRecord> pauses;
  for (uint64_t i = 1; i <= 100; i++) {
    pauses.push_back({0, i * 1000000, PauseKind::kYoung, 0});
  }
  EXPECT_NEAR(PercentileMsOf(pauses, 50), 50.5, 0.6);
  EXPECT_NEAR(PercentileMsOf(pauses, 100), 100.0, 0.01);
  EXPECT_NEAR(PercentileMsOf(pauses, 0), 1.0, 0.01);
}

TEST(DriverTest, MultiThreadedRun) {
  KvStoreOptions kv;
  kv.num_keys = 8000;
  KvStoreWorkload w(kv);
  DriverOptions opt = ShortRun(0.5);
  opt.threads = 2;
  RunResult r = RunWorkload(TestVm(GcKind::kG1), w, opt);
  EXPECT_GT(r.ops, 100u);
}

TEST(RolpEndToEndTest, LearnsAndReducesCopyingVsG1) {
  // The paper's core claim at miniature scale: after ROLP learns, NG2C
  // pretenuring reduces GC copying relative to G1 for the same workload.
  KvStoreOptions kv;
  kv.num_keys = 12000;
  kv.value_bytes = 512;
  // Memtable epochs must span several young collections for lifetimes to be
  // observable (as they do at production scale).
  kv.memtable_flush_rows = 6000;
  DriverOptions opt;
  opt.duration_s = 4.0;

  VmConfig g1 = TestVm(GcKind::kG1, 48);
  g1.jit.hot_threshold = 50;
  g1.young_fraction = 0.12;
  KvStoreWorkload wg1(kv);
  RunResult rg1 = RunWorkload(g1, wg1, opt);

  VmConfig rolp = TestVm(GcKind::kRolp, 48);
  rolp.jit.hot_threshold = 50;
  rolp.young_fraction = 0.12;
  rolp.rolp.inference_period = 8;
  KvStoreWorkload wrolp(kv);
  RunResult rrolp = RunWorkload(rolp, wrolp, opt);

  ASSERT_GT(rg1.gc_cycles, 3u);
  ASSERT_GT(rrolp.gc_cycles, 3u);
  // ROLP must have produced decisions (learned lifetimes).
  EXPECT_GT(rrolp.first_decision_cycle, 0u);
  // Copying per operation should drop once pretenuring kicks in.
  double g1_copy_per_op = static_cast<double>(rg1.bytes_copied) / rg1.ops;
  double rolp_copy_per_op = static_cast<double>(rrolp.bytes_copied) / rrolp.ops;
  EXPECT_LT(rolp_copy_per_op, g1_copy_per_op)
      << "ROLP did not reduce copying (g1=" << g1_copy_per_op
      << " rolp=" << rolp_copy_per_op << ")";
}

}  // namespace
}  // namespace rolp
