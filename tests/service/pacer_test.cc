// Open-loop pacing drift regression (DESIGN.md §16).
//
// The fixed pacer (kAbsoluteHybrid) must hold the offered rate within 1% at
// 100k events/s and keep per-event issuance lateness far below the kernel
// timer slack. The legacy relative-sleep pacer is kept runnable on purpose:
// the *same harness* demonstrates the drift it had — median lateness on the
// order of the timer slack (~50 µs), i.e. 5x the inter-arrival gap — so the
// pre-fix failure mode stays encoded in the suite.
#include "src/util/pacer.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/clock.h"

namespace rolp {
namespace {

struct PacingRun {
  double achieved_eps = 0.0;
  uint64_t lateness_p50_ns = 0;
  uint64_t lateness_p99_ns = 0;
};

// Replays the open-loop generator loop shape: a fixed schedule of `events`
// deadlines `gap_ns` apart, waiting for each with the pacer under test, and
// charges lateness as (wake - deadline) per event.
PacingRun DriveSchedule(PacingMode mode, uint64_t events, uint64_t gap_ns) {
  PacerOptions opt;
  opt.mode = mode;
  Pacer pacer(opt);
  std::vector<uint64_t> lateness;
  lateness.reserve(events);
  const uint64_t start = NowNs() + 1000 * 1000;  // 1 ms lead-in
  uint64_t last_wake = 0;
  for (uint64_t i = 0; i < events; i++) {
    uint64_t deadline = start + i * gap_ns;
    uint64_t now = pacer.WaitUntil(deadline);
    lateness.push_back(now > deadline ? now - deadline : 0);
    last_wake = now;
  }
  PacingRun run;
  if (events > 1 && last_wake > start) {
    run.achieved_eps =
        static_cast<double>(events - 1) / (static_cast<double>(last_wake - start) / 1e9);
  }
  std::sort(lateness.begin(), lateness.end());
  run.lateness_p50_ns = lateness[lateness.size() / 2];
  run.lateness_p99_ns = lateness[lateness.size() * 99 / 100];
  return run;
}

constexpr uint64_t kEvents = 30000;
constexpr uint64_t kGapNs = 10000;  // 100k events/s: gap < Linux timer slack

TEST(PacerTest, AbsoluteModeHoldsRateWithinOnePercentAt100kEps) {
  PacingRun run = DriveSchedule(PacingMode::kAbsoluteHybrid, kEvents, kGapNs);
  const double target_eps = 1e9 / static_cast<double>(kGapNs);
  EXPECT_NEAR(run.achieved_eps, target_eps, target_eps * 0.01)
      << "offered rate drifted more than 1% from the schedule";
}

TEST(PacerTest, AbsoluteModeLatenessIsNotTimerSlackDominated) {
  PacingRun run = DriveSchedule(PacingMode::kAbsoluteHybrid, kEvents, kGapNs);
  // The hybrid finish spins through the slack window: typical lateness is a
  // clock read (~tens of ns). 20 µs leaves room for scheduler noise while
  // still sitting well under the 50 µs timer slack that defined the bug.
  EXPECT_LT(run.lateness_p50_ns, 20 * 1000u)
      << "median issuance lateness looks timer-slack-dominated";
}

TEST(PacerTest, RelativeModeDemonstratesTimerSlackDrift) {
  // The legacy pacer re-anchors each wait at sleep_for() call time, so every
  // sleep overshoots by the kernel timer slack and the generator falls into
  // oversleep-then-burst cycles. This is the failing pre-fix behaviour,
  // demonstrated on demand: its median lateness is at least the inter-arrival
  // gap (the schedule can never be hit), and in practice slack-sized.
  PacingRun run = DriveSchedule(PacingMode::kRelativeSleep, kEvents, kGapNs);
  EXPECT_GE(run.lateness_p50_ns, kGapNs)
      << "relative sleep unexpectedly held the schedule — did the legacy "
         "path get fixed? Then it no longer demonstrates the bug.";

  PacingRun fixed = DriveSchedule(PacingMode::kAbsoluteHybrid, kEvents, kGapNs);
  EXPECT_GT(run.lateness_p50_ns, fixed.lateness_p50_ns * 4)
      << "drift demonstration margin collapsed";
}

TEST(PacerTest, PastDeadlinesReturnImmediately) {
  Pacer pacer;
  uint64_t now = NowNs();
  uint64_t wake = pacer.WaitUntil(now > 1000000 ? now - 1000000 : 0);
  EXPECT_GE(wake, now);
  EXPECT_LT(wake - now, 1000 * 1000u);  // no sleep on an overdue deadline
}

}  // namespace
}  // namespace rolp
