// Deterministic tests for the open-loop service harness building blocks
// (admission decisions, retry budgets and backoff, SLO window rotation and
// verdicts) plus a short real overload run: 2x-style over-capacity arrivals
// into a small VM must shed/reject load and finish without aborting.
#include <gtest/gtest.h>

#include <memory>

#include "src/rolp/profiler.h"
#include "src/service/admission.h"
#include "src/service/open_loop.h"
#include "src/service/sharded.h"
#include "src/service/slo_reporter.h"
#include "src/workloads/kvstore.h"

namespace rolp {
namespace {

constexpr uint64_t kMs = 1000ull * 1000;
constexpr uint64_t kSec = 1000ull * kMs;

TEST(AdmissionControllerTest, AdmitsWhenDeadlineIsMeetable) {
  AdmissionConfig cfg;
  cfg.init_service_us = 200.0;  // ewma seeds at 200us
  AdmissionController ac(cfg);
  uint64_t now = 10 * kSec;
  // Empty queue, 200ms of headroom: trivially admissible.
  EXPECT_TRUE(ac.Admit(/*queue_depth=*/0, now, now + 200 * kMs));
  // 100 queued * 200us = 20ms expected wait, deadline 200ms away: still fine.
  EXPECT_TRUE(ac.Admit(/*queue_depth=*/100, now, now + 200 * kMs));
  EXPECT_EQ(ac.admitted(), 2u);
  EXPECT_EQ(ac.rejected(), 0u);
}

TEST(AdmissionControllerTest, RejectsWhenQueueMakesDeadlineUnmeetable) {
  AdmissionConfig cfg;
  cfg.init_service_us = 200.0;
  AdmissionController ac(cfg);
  uint64_t now = 10 * kSec;
  // 2000 queued * 200us = 400ms expected wait against a 200ms deadline.
  EXPECT_FALSE(ac.Admit(/*queue_depth=*/2000, now, now + 200 * kMs));
  // A deadline already in the past is rejected even with an empty queue...
  EXPECT_FALSE(ac.Admit(/*queue_depth=*/0, now, now - 1));
  // ...but exactly-at-deadline still squeaks in (start <= deadline).
  EXPECT_TRUE(ac.Admit(/*queue_depth=*/0, now, now));
  EXPECT_EQ(ac.rejected(), 2u);
}

TEST(AdmissionControllerTest, EwmaTracksObservedServiceTime) {
  AdmissionConfig cfg;
  cfg.init_service_us = 200.0;
  AdmissionController ac(cfg);
  uint64_t seed = ac.ewma_service_ns();
  EXPECT_EQ(seed, 200u * 1000);
  // Feed consistently slower executions; the EWMA must climb toward them.
  for (int i = 0; i < 64; i++) {
    ac.ObserveService(2 * kMs);
  }
  EXPECT_GT(ac.ewma_service_ns(), kMs);
  EXPECT_LE(ac.ewma_service_ns(), 2 * kMs + seed);
  // And admission now prices the queue with the new estimate: 200 queued at
  // ~2ms each cannot make a 200ms deadline.
  uint64_t now = 10 * kSec;
  EXPECT_FALSE(ac.Admit(/*queue_depth=*/200, now, now + 200 * kMs));
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithinJitterBounds) {
  RetryPolicy p;
  p.base_backoff_ms = 10;
  p.max_backoff_ms = 200;
  p.jitter = 0.5;
  uint64_t rng = 42;
  for (uint32_t attempt = 1; attempt <= 8; attempt++) {
    uint64_t nominal_ms = std::min(p.base_backoff_ms << (attempt - 1), p.max_backoff_ms);
    uint64_t nominal_ns = nominal_ms * kMs;
    for (int i = 0; i < 32; i++) {
      uint64_t b = p.BackoffNs(attempt, &rng);
      // Full jitter over half the backoff: [nominal/2, nominal).
      EXPECT_GE(b, nominal_ns / 2) << "attempt " << attempt;
      EXPECT_LT(b, nominal_ns + 1) << "attempt " << attempt;
    }
  }
}

TEST(RetryPolicyTest, BackoffIsDeterministicPerRngStream) {
  RetryPolicy p;
  uint64_t rng_a = 7;
  uint64_t rng_b = 7;
  for (uint32_t attempt = 1; attempt <= 4; attempt++) {
    EXPECT_EQ(p.BackoffNs(attempt, &rng_a), p.BackoffNs(attempt, &rng_b));
  }
}

TEST(RetryBudgetTest, TokensAccrueAtRatioAndCapAtBurst) {
  RetryBudget budget(/*ratio=*/0.5, /*burst=*/3.0);
  // No traffic yet: no retries.
  EXPECT_FALSE(budget.TryAcquire());
  // Two requests deposit exactly one token.
  budget.OnRequest();
  budget.OnRequest();
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());
  // Heavy traffic cannot bank more than `burst` retries.
  for (int i = 0; i < 1000; i++) {
    budget.OnRequest();
  }
  int granted = 0;
  while (budget.TryAcquire()) {
    granted++;
  }
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(budget.granted(), 4u);
  EXPECT_GE(budget.denied(), 2u);
}

RequestTimeline AtTime(uint64_t id, uint64_t scheduled_ns, uint64_t respond_ns) {
  RequestTimeline t;
  t.id = id;
  t.scheduled_ns = scheduled_ns;
  t.enqueue_ns = scheduled_ns;
  t.dequeue_ns = respond_ns;
  t.execute_ns = respond_ns;
  t.respond_ns = respond_ns;
  return t;
}

TEST(SloReporterTest, WindowsRotateOutOldSamplesButAlltimeKeepsThem) {
  SloReporter rep(/*epoch_ns=*/0);
  // 100 requests responding at t=1s, each 5ms late.
  for (uint64_t i = 0; i < 100; i++) {
    rep.Record(AtTime(i, 1 * kSec, 1 * kSec + 5 * kMs), RequestOutcome::kOk);
  }
  SloReporter::Snapshot s = rep.Collect(/*now_ns=*/2 * kSec);
  EXPECT_EQ(s.win_1min.count, 100u);
  EXPECT_EQ(s.alltime.count, 100u);
  EXPECT_NEAR(s.win_1min.p50_ms, 5.0, 1.0);
  // 90 seconds later the 1-minute ring has rotated those slots out; the
  // 15-minute ring and the all-time distribution still hold them.
  s = rep.Collect(/*now_ns=*/92 * kSec);
  EXPECT_EQ(s.win_1min.count, 0u);
  EXPECT_EQ(s.win_15min.count, 100u);
  EXPECT_EQ(s.alltime.count, 100u);
}

TEST(SloReporterTest, RotationEvictsSlotBySlotNotWholesale) {
  // Golden rotation sequence for the 1-minute ring (30 slots x 2 s): samples
  // in distinct slots must rotate out one slot at a time as the clock walks
  // forward, never in bulk and never early.
  SloReporter rep(/*epoch_ns=*/0);
  // One sample at t=1s (slot 0) and one at t=5s (slot 2).
  rep.Record(AtTime(1, 1 * kSec, 1 * kSec + kMs), RequestOutcome::kOk);
  rep.Record(AtTime(2, 5 * kSec, 5 * kSec + kMs), RequestOutcome::kOk);

  // At t=59s both are inside the trailing 60s window.
  EXPECT_EQ(rep.Collect(59 * kSec).win_1min.count, 2u);
  // Slot 0 covers [0,2s): it leaves the 30-slot ring when the clock enters
  // slot 30, i.e. at t=60s. Slot 2 survives until t=64s.
  EXPECT_EQ(rep.Collect(61 * kSec).win_1min.count, 1u);
  EXPECT_EQ(rep.Collect(63 * kSec).win_1min.count, 1u);
  EXPECT_EQ(rep.Collect(65 * kSec).win_1min.count, 0u);
  // All-time is immune to rotation.
  EXPECT_EQ(rep.Collect(65 * kSec).alltime.count, 2u);
}

TEST(SloReporterTest, RotationSurvivesClockJumpFarPastTheRing) {
  // A jump many multiples of the ring span must clear every slot exactly
  // once (the reset loop is bounded by ring size) and leave the ring usable.
  SloReporter rep(0);
  rep.Record(AtTime(1, kSec, kSec + kMs), RequestOutcome::kOk);
  SloReporter::Snapshot s = rep.Collect(3600 * kSec);  // 1 hour later
  EXPECT_EQ(s.win_1min.count, 0u);
  EXPECT_EQ(s.win_15min.count, 0u);
  EXPECT_EQ(s.alltime.count, 1u);
  // The ring still records correctly after the jump.
  rep.Record(AtTime(2, 3600 * kSec, 3600 * kSec + 2 * kMs), RequestOutcome::kOk);
  s = rep.Collect(3601 * kSec);
  EXPECT_EQ(s.win_1min.count, 1u);
  EXPECT_NEAR(s.win_1min.p50_ms, 2.0, 0.5);
}

TEST(SloReporterTest, SubMillisecondLatenessGoldenValues) {
  // The ingest pipeline reports in the 1-100us regime; the ms doubles coming
  // out of Collect must not truncate to zero and must respect nearest-rank.
  SloReporter rep(0);
  // 999 samples at 10us, one at 100us: p99.9 over 1000 = rank 999 -> 10us,
  // p100 -> 100us (ceil-rank golden values; bucket bound adds <= ~4%).
  for (uint64_t i = 0; i < 999; i++) {
    rep.Record(AtTime(i, kSec, kSec + 10 * 1000), RequestOutcome::kOk);
  }
  rep.Record(AtTime(999, kSec, kSec + 100 * 1000), RequestOutcome::kOk);
  SloReporter::Snapshot s = rep.Collect(2 * kSec);
  EXPECT_EQ(s.alltime.count, 1000u);
  EXPECT_GE(s.alltime.p50_ms, 0.010);
  EXPECT_LE(s.alltime.p50_ms, 0.0105);
  EXPECT_GE(s.alltime.p999_ms, 0.010);   // rank 999 lands on the 10us mass
  EXPECT_LE(s.alltime.p999_ms, 0.0105);  // ...not on the 100us outlier
  EXPECT_NEAR(s.alltime.max_ms, 0.100, 1e-9);  // max is exact, no truncation
}

TEST(SloReporterTest, CountsOutcomesAndErrorRate) {
  SloReporter rep(0);
  rep.Record(AtTime(1, kSec, kSec + kMs), RequestOutcome::kOk);
  rep.Record(AtTime(2, kSec, kSec + kMs), RequestOutcome::kDeadlineMiss);
  rep.Record(AtTime(3, kSec, kSec + kMs), RequestOutcome::kRejected);
  rep.Record(AtTime(4, kSec, kSec + kMs), RequestOutcome::kShed);
  rep.CountRetry();
  SloReporter::Snapshot s = rep.Collect(2 * kSec);
  EXPECT_EQ(s.total, 4u);
  EXPECT_EQ(s.ok, 1u);
  EXPECT_EQ(s.deadline_miss, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.retries, 1u);
  EXPECT_NEAR(s.error_rate, 0.5, 1e-9);
}

TEST(SloReporterTest, VerdictGatesOnLatenessThresholdsAndSurvival) {
  SloThresholds th;
  th.p50_ms = 400.0;
  th.p95_ms = 600.0;
  th.p99_ms = 800.0;
  th.p999_ms = 1500.0;
  th.max_error_rate = 0.95;
  {
    SloReporter rep(0);
    for (uint64_t i = 0; i < 100; i++) {
      rep.Record(AtTime(i, kSec, kSec + 5 * kMs), RequestOutcome::kOk);
    }
    SloReporter::Verdict v = rep.Evaluate("rolp", th, /*survived=*/true, 2 * kSec);
    EXPECT_TRUE(v.pass);
    EXPECT_NE(v.json.find("\"pass\":true"), std::string::npos);
    EXPECT_NE(v.json.find("\"collector\":\"rolp\""), std::string::npos);
    // A dead process can't pass no matter how good the numbers were.
    EXPECT_FALSE(rep.Evaluate("rolp", th, /*survived=*/false, 2 * kSec).pass);
  }
  {
    // 2.5s lateness blows the p50 threshold -> fail.
    SloReporter rep(0);
    for (uint64_t i = 0; i < 100; i++) {
      rep.Record(AtTime(i, kSec, kSec + 2500 * kMs), RequestOutcome::kOk);
    }
    SloReporter::Verdict v = rep.Evaluate("rolp", th, /*survived=*/true, 2 * kSec);
    EXPECT_FALSE(v.pass);
    EXPECT_NE(v.json.find("\"p50\":false"), std::string::npos);
  }
}

TEST(SloReporterTest, MergeFromFoldsShardSubWindowsIntoOneVerdict) {
  // The sharded harness builds all reporters from one epoch and merges them
  // at the end: counts add, and the merged distribution spans both inputs.
  SloReporter a(0);
  SloReporter b(0);
  for (uint64_t i = 0; i < 50; i++) {
    a.Record(AtTime(i, kSec, kSec + 2 * kMs), RequestOutcome::kOk);
    b.Record(AtTime(100 + i, kSec, kSec + 40 * kMs), RequestOutcome::kOk);
  }
  b.Record(AtTime(999, kSec, kSec + kMs), RequestOutcome::kShed);
  b.CountRetry();

  SloReporter merged(0);
  merged.MergeFrom(a, 2 * kSec);
  merged.MergeFrom(b, 2 * kSec);
  SloReporter::Snapshot s = merged.Collect(2 * kSec);
  EXPECT_EQ(s.total, 101u);
  EXPECT_EQ(s.ok, 100u);
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.retries, 1u);
  EXPECT_EQ(s.alltime.count, 101u);
  EXPECT_EQ(s.win_1min.count, 101u);
  // Half the samples at 2ms, half at 40ms: the merged p50 sits between the
  // two shard medians — impossible if either shard's histogram were dropped.
  EXPECT_GT(s.alltime.p95_ms, 20.0);
  EXPECT_LT(s.alltime.p50_ms, 20.0);
}

TEST(ConsistentHashRouterTest, EveryKeyRoutesToExactlyOneValidShard) {
  ConsistentHashRouter router(4);
  std::vector<uint64_t> counts(4, 0);
  for (uint64_t key = 0; key < 20000; key++) {
    int s = router.ShardFor(key);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    // Routing is a pure function of the key: same key, same shard.
    ASSERT_EQ(router.ShardFor(key), s);
    counts[s]++;
  }
  // Near-uniform spread: no shard starves or hogs (vnodes smooth the ring).
  for (uint64_t c : counts) {
    EXPECT_GT(c, 20000u / 4 / 3) << "shard starved";
    EXPECT_LT(c, 20000u * 2 / 4) << "shard hogged";
  }
}

TEST(ConsistentHashRouterTest, ScaleOutMovesOnlyAFractionOfKeys) {
  ConsistentHashRouter four(4);
  ConsistentHashRouter five(5);
  uint64_t moved = 0;
  for (uint64_t key = 0; key < 10000; key++) {
    if (four.ShardFor(key) != five.ShardFor(key)) {
      moved++;
    }
  }
  // Consistent hashing: adding a shard remaps ~1/5 of keys, not all of them.
  EXPECT_LT(moved, 10000u / 2);
  EXPECT_GT(moved, 0u);
}

TEST(ShardedServiceTest, RoutesConserveRequestsAcrossShards) {
  // Two VM shards under one open-loop schedule: every fresh arrival lands on
  // exactly one shard, the per-shard counters sum to the offered count, and
  // the merged reporter saw every terminal decision exactly once.
  VmConfig cfg;
  cfg.heap_mb = 48;
  cfg.gc = GcKind::kG1;
  KvStoreOptions kv;
  kv.num_keys = 4000;
  kv.memtable_flush_rows = 1000;
  ShardedServiceOptions opt;
  opt.shards = 2;
  opt.service.workers = 1;
  opt.service.duration_s = 1.0;
  opt.service.rate_rps = 2000.0;
  opt.service.calibrate_s = 0.0;
  opt.service.drain_grace_s = 0.5;
  ShardedServiceResult r = RunShardedService(
      cfg, [&kv](int) { return std::make_unique<KvStoreWorkload>(kv); }, opt);

  EXPECT_TRUE(r.survived);
  ASSERT_EQ(r.shards.size(), 2u);
  uint64_t routed_sum = 0;
  for (const auto& shard : r.shards) {
    EXPECT_GT(shard.routed, 0u) << "router starved a shard";
    routed_sum += shard.routed;
  }
  EXPECT_EQ(routed_sum, r.offered);
  EXPECT_GT(r.offered, 500u);
  // The merged reporter recorded one terminal decision per offered request.
  EXPECT_EQ(r.slo.total, r.offered);
  EXPECT_FALSE(r.verdict_json.empty());
  EXPECT_NE(r.verdict_json.find("\"shards\":2"), std::string::npos);
}

TEST(ProfilerHeapPressureTest, DegradesUnderPressureAndReArmsOnlyAfterItClears) {
  // The governor's kDegrade rung: OnHeapPressure(true) suspends the profiler
  // immediately; re-arm goes through the normal quiet-cycle machinery and is
  // blocked for as long as the pressure flag stays up.
  RolpConfig cfg;
  cfg.old_table_entries = 4096;
  cfg.inference_period = 4;
  cfg.rearm_clean_cycles = 2;
  Profiler p(cfg);
  EXPECT_FALSE(p.degraded());
  p.OnHeapPressure(true);
  EXPECT_TRUE(p.degraded());
  // Arbitrarily many otherwise-quiet cycles cannot re-arm under pressure.
  uint64_t cycle = 1;
  for (int i = 0; i < 10; i++) {
    p.OnGcEnd({cycle++, 1000, PauseKind::kYoung});
  }
  EXPECT_TRUE(p.degraded());
  // Pressure clears: still degraded until the quiet-cycle count is met...
  p.OnHeapPressure(false);
  EXPECT_TRUE(p.degraded());
  p.OnGcEnd({cycle++, 1000, PauseKind::kYoung});
  EXPECT_TRUE(p.degraded());
  // ...then the configured clean cycles re-arm it.
  p.OnGcEnd({cycle++, 1000, PauseKind::kYoung});
  EXPECT_FALSE(p.degraded());
  // And renewed pressure degrades again — the cycle is repeatable.
  p.OnHeapPressure(true);
  EXPECT_TRUE(p.degraded());
}

TEST(OpenLoopServiceTest, OverloadRunShedsWithoutAborting) {
  // Arrivals far beyond what one worker can execute on a small heap: the
  // harness must reject/shed the excess, keep every counter consistent, and
  // reach the end alive. This is the unit-sized version of the CI soak.
  VmConfig cfg;
  cfg.heap_mb = 48;
  cfg.gc = GcKind::kRolp;
  KvStoreOptions kv;
  kv.num_keys = 8000;
  kv.memtable_flush_rows = 1000;
  KvStoreWorkload workload(kv);
  ServiceOptions opt;
  opt.workers = 1;
  opt.duration_s = 1.5;
  opt.rate_rps = 60000.0;  // >> single-worker capacity: guaranteed overload
  opt.calibrate_s = 0.0;
  opt.drain_grace_s = 0.3;
  opt.admission.queue_capacity = 128;
  opt.admission.deadline_ms = 50;
  ServiceResult r = RunService(cfg, workload, opt);

  EXPECT_TRUE(r.survived);
  EXPECT_GT(r.offered, 10000u);
  EXPECT_GT(r.completed_ok, 0u);
  // Overload must be refused somewhere: admission, queue, or deadline sheds.
  EXPECT_GT(r.rejected + r.shed_queue_full + r.shed_deadline, 0u);
  // Every offered request terminates exactly once.
  EXPECT_EQ(r.offered, r.completed_ok + r.deadline_miss + r.rejected +
                           r.shed_queue_full + r.shed_deadline + r.shed_drain);
  // The reporter saw the same totals the counters did.
  EXPECT_EQ(r.slo.total, r.offered);
  EXPECT_GT(r.slo.alltime.count, 0u);
  EXPECT_FALSE(r.verdict_json.empty());
}

}  // namespace
}  // namespace rolp
