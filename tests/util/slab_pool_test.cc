// Slab pool: reuse, exhaustion, and the exact outstanding-object
// conservation law (outstanding == acquired - released, always).
#include "src/util/slab_pool.h"

#include <cstdint>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace rolp {
namespace {

struct Tracked {
  static int live;
  uint64_t payload = 0;
  Tracked() { live++; }
  ~Tracked() { live--; }
};
int Tracked::live = 0;

TEST(SlabPoolTest, AcquireConstructsReleaseDestructs) {
  Tracked::live = 0;
  SlabPool<Tracked> pool({/*objects_per_slab=*/4, /*max_slabs=*/0});
  Tracked* a = pool.Acquire();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(Tracked::live, 1);
  a->payload = 42;
  pool.Release(a);
  EXPECT_EQ(Tracked::live, 0);
  // Freed storage is recycled, and Acquire default-constructs: the stale
  // payload from the previous tenant must not leak through.
  Tracked* b = pool.Acquire();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b, a);  // LIFO free list reuses the hottest cell
  EXPECT_EQ(b->payload, 0u);
  pool.Release(b);
}

TEST(SlabPoolTest, ExhaustionReturnsNullAndCounts) {
  SlabPool<Tracked> pool({/*objects_per_slab=*/2, /*max_slabs=*/2});
  std::vector<Tracked*> held;
  for (int i = 0; i < 4; i++) {
    Tracked* t = pool.Acquire();
    ASSERT_NE(t, nullptr) << i;
    held.push_back(t);
  }
  EXPECT_EQ(pool.slabs(), 2u);
  EXPECT_EQ(pool.capacity(), 4u);
  // Fifth acquire: both slabs carved, free list empty -> exhaustion, no abort.
  EXPECT_EQ(pool.Acquire(), nullptr);
  EXPECT_EQ(pool.Acquire(), nullptr);
  EXPECT_EQ(pool.exhausted(), 2u);
  // Releasing one object un-exhausts the pool.
  pool.Release(held.back());
  held.pop_back();
  Tracked* again = pool.Acquire();
  EXPECT_NE(again, nullptr);
  held.push_back(again);
  for (Tracked* t : held) {
    pool.Release(t);
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(SlabPoolTest, OutstandingConservationAcrossReuse) {
  SlabPool<Tracked> pool({/*objects_per_slab=*/8, /*max_slabs=*/0});
  std::vector<Tracked*> held;
  uint64_t rng = 0x5eed;
  uint64_t my_acquires = 0, my_releases = 0;
  for (int step = 0; step < 5000; step++) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    bool acquire = held.empty() || (rng >> 33) % 3 != 0;
    if (acquire) {
      Tracked* t = pool.Acquire();
      ASSERT_NE(t, nullptr);
      held.push_back(t);
      my_acquires++;
    } else {
      size_t idx = (rng >> 17) % held.size();
      pool.Release(held[idx]);
      held[idx] = held.back();
      held.pop_back();
      my_releases++;
    }
    // The conservation law holds at every quiescent point, not just the end.
    ASSERT_EQ(pool.acquired(), my_acquires);
    ASSERT_EQ(pool.released(), my_releases);
    ASSERT_EQ(pool.outstanding(), held.size());
    ASSERT_EQ(static_cast<uint64_t>(Tracked::live), held.size());
  }
  for (Tracked* t : held) {
    pool.Release(t);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.exhausted(), 0u);
  EXPECT_EQ(Tracked::live, 0);
}

TEST(SlabPoolTest, NoDuplicateCellsHandedOut) {
  SlabPool<uint64_t> pool({/*objects_per_slab=*/16, /*max_slabs=*/0});
  std::set<uint64_t*> seen;
  for (int i = 0; i < 64; i++) {
    uint64_t* p = pool.Acquire();
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(seen.insert(p).second) << "cell handed out twice while live";
  }
  for (uint64_t* p : seen) {
    pool.Release(p);
  }
}

}  // namespace
}  // namespace rolp
