#include "src/util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace rolp {
namespace {

TEST(EnvTest, Int64DefaultWhenUnset) {
  unsetenv("ROLP_TEST_INT");
  EXPECT_EQ(EnvInt64("ROLP_TEST_INT", 99), 99);
}

TEST(EnvTest, Int64Parses) {
  setenv("ROLP_TEST_INT", "12345", 1);
  EXPECT_EQ(EnvInt64("ROLP_TEST_INT", 0), 12345);
  setenv("ROLP_TEST_INT", "-7", 1);
  EXPECT_EQ(EnvInt64("ROLP_TEST_INT", 0), -7);
  unsetenv("ROLP_TEST_INT");
}

TEST(EnvTest, Int64GarbageFallsBack) {
  setenv("ROLP_TEST_INT", "banana", 1);
  EXPECT_EQ(EnvInt64("ROLP_TEST_INT", 5), 5);
  unsetenv("ROLP_TEST_INT");
}

TEST(EnvTest, DoubleParses) {
  setenv("ROLP_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("ROLP_TEST_DBL", 0.0), 2.5);
  unsetenv("ROLP_TEST_DBL");
  EXPECT_DOUBLE_EQ(EnvDouble("ROLP_TEST_DBL", 1.5), 1.5);
}

TEST(EnvTest, BoolVariants) {
  for (const char* v : {"1", "true", "yes", "on"}) {
    setenv("ROLP_TEST_BOOL", v, 1);
    EXPECT_TRUE(EnvBool("ROLP_TEST_BOOL", false)) << v;
  }
  setenv("ROLP_TEST_BOOL", "0", 1);
  EXPECT_FALSE(EnvBool("ROLP_TEST_BOOL", true));
  unsetenv("ROLP_TEST_BOOL");
  EXPECT_TRUE(EnvBool("ROLP_TEST_BOOL", true));
}

TEST(EnvTest, StringPassesThrough) {
  setenv("ROLP_TEST_STR", "hello", 1);
  EXPECT_EQ(EnvString("ROLP_TEST_STR", "x"), "hello");
  unsetenv("ROLP_TEST_STR");
  EXPECT_EQ(EnvString("ROLP_TEST_STR", "x"), "x");
}

}  // namespace
}  // namespace rolp
