#include "src/util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace rolp {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  uint64_t s1 = 1;
  uint64_t s2 = 2;
  EXPECT_NE(SplitMix64(&s1), SplitMix64(&s2));
}

TEST(Mix64Test, IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(1), Mix64(2));
  // Consecutive inputs should differ in many bits.
  uint64_t x = Mix64(100) ^ Mix64(101);
  EXPECT_GT(__builtin_popcountll(x), 10);
}

TEST(RandomTest, SameSeedSameSequence) {
  Random a(7);
  Random b(7);
  for (int i = 0; i < 1000; i++) {
    ASSERT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RandomTest, BoundedStaysInBounds) {
  Random rng(3);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; i++) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RandomTest, BoundedOneAlwaysZero) {
  Random rng(3);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RandomTest, RangeInclusive) {
  Random rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; i++) {
    int64_t v = rng.NextRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random rng(11);
  for (int i = 0; i < 10000; i++) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BoolProbabilityRoughlyRight) {
  Random rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RandomTest, GaussianMomentsRoughlyRight) {
  Random rng(17);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; i++) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator zipf(1000, 0.99, 5);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(zipf.Next(), 1000u);
  }
}

TEST(ZipfianTest, IsSkewedTowardSmallKeys) {
  ZipfianGenerator zipf(10000, 0.99, 5);
  const int n = 100000;
  int in_top_100 = 0;
  for (int i = 0; i < n; i++) {
    if (zipf.Next() < 100) {
      in_top_100++;
    }
  }
  // Top 1% of the keyspace should get far more than 1% of accesses.
  EXPECT_GT(in_top_100, n / 4);
}

TEST(ZipfianTest, ThetaZeroIsRoughlyUniform) {
  ZipfianGenerator zipf(100, 0.01, 5);
  const int n = 200000;
  std::vector<int> counts(100, 0);
  for (int i = 0; i < n; i++) {
    counts[zipf.Next()]++;
  }
  int max_count = *std::max_element(counts.begin(), counts.end());
  int min_count = *std::min_element(counts.begin(), counts.end());
  EXPECT_LT(max_count, 3 * min_count + 100);
}

TEST(ScrambledZipfianTest, SpreadsHotKeys) {
  ScrambledZipfianGenerator zipf(10000, 0.99, 5);
  const int n = 50000;
  int in_low_range = 0;
  for (int i = 0; i < n; i++) {
    if (zipf.Next() < 100) {
      in_low_range++;
    }
  }
  // After scrambling, low ids should no longer dominate.
  EXPECT_LT(in_low_range, n / 5);
}

TEST(DiscreteDistributionTest, RespectsWeights) {
  DiscreteDistribution dist({1.0, 0.0, 3.0});
  Random rng(23);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    counts[dist.Sample(rng)]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(DiscreteDistributionTest, SingleBucket) {
  DiscreteDistribution dist({5.0});
  Random rng(29);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(dist.Sample(rng), 0u);
  }
}

class ZipfianSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfianSweepTest, MeanDecreasesWithTheta) {
  double theta = GetParam();
  ZipfianGenerator zipf(1000, theta, 31);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; i++) {
    sum += static_cast<double>(zipf.Next());
  }
  double mean = sum / n;
  // Uniform mean would be ~500; any positive skew pulls it below.
  EXPECT_LT(mean, 500.0);
  EXPECT_GE(mean, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfianSweepTest, ::testing::Values(0.5, 0.7, 0.9, 0.99));

}  // namespace
}  // namespace rolp
