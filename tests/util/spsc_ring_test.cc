// SPSC ring: wraparound, full/empty boundary, and a two-thread stress run
// (the tsan preset exercises the acquire/release pairing).
#include "src/util/spsc_ring.h"

#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace rolp {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4096).capacity(), 4096u);
  EXPECT_EQ(SpscRing<int>(4097).capacity(), 8192u);
}

TEST(SpscRingTest, FullAndEmptyBoundary) {
  SpscRing<int> ring(4);
  int v = 0;
  EXPECT_FALSE(ring.TryPop(&v));  // empty on construction
  for (int i = 0; i < 4; i++) {
    EXPECT_TRUE(ring.TryPush(i)) << i;
  }
  EXPECT_FALSE(ring.TryPush(99));  // full: exactly capacity elements
  EXPECT_EQ(ring.SizeApprox(), 4u);
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);  // FIFO
  }
  EXPECT_FALSE(ring.TryPop(&v));  // empty again
  EXPECT_EQ(ring.SizeApprox(), 0u);
  // The boundary is reusable: full/empty are exact, not sticky.
  EXPECT_TRUE(ring.TryPush(7));
  ASSERT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 7);
}

TEST(SpscRingTest, WraparoundPreservesFifoOrder) {
  // Capacity 4 forces the indices around the mask many times.
  SpscRing<uint64_t> ring(4);
  uint64_t next_push = 0, next_pop = 0;
  while (next_pop < 10000) {
    // Fill to capacity, then drain half, so head/tail cross every alignment.
    while (next_push - next_pop < 4 && ring.TryPush(next_push)) {
      next_push++;
    }
    for (int i = 0; i < 2; i++) {
      uint64_t v = 0;
      if (!ring.TryPop(&v)) {
        break;
      }
      ASSERT_EQ(v, next_pop);
      next_pop++;
    }
  }
}

TEST(SpscRingTest, TwoThreadStress) {
  // One producer, one consumer, a deliberately tiny ring so both the full
  // and empty edges are hit constantly. The consumer checks strict sequence
  // order — any lost or duplicated publish breaks the equality.
  constexpr uint64_t kItems = 200000;
  SpscRing<uint64_t> ring(8);
  std::thread producer([&] {
    for (uint64_t i = 0; i < kItems; i++) {
      while (!ring.TryPush(i)) {
        // Yield on full: on a single-core runner a bare spin would burn a
        // whole scheduler quantum per hand-off.
        std::this_thread::yield();
      }
    }
  });
  uint64_t expect = 0;
  uint64_t sum = 0;
  while (expect < kItems) {
    uint64_t v = 0;
    if (!ring.TryPop(&v)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(v, expect);
    sum += v;
    expect++;
  }
  producer.join();
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
  uint64_t v = 0;
  EXPECT_FALSE(ring.TryPop(&v));
}

}  // namespace
}  // namespace rolp
