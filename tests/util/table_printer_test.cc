#include "src/util/table_printer.h"

#include <gtest/gtest.h>

namespace rolp {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAligned) {
  TablePrinter t({"a", "b"});
  t.AddRow({"xxxxxx", "1"});
  t.AddRow({"y", "2"});
  std::string out = t.Render();
  // Find the two data lines; "1" and "2" should start at the same column.
  size_t line1 = out.find("xxxxxx");
  size_t nl1 = out.find('\n', line1);
  size_t line2 = nl1 + 1;
  std::string l1 = out.substr(line1, nl1 - line1);
  size_t nl2 = out.find('\n', line2);
  std::string l2 = out.substr(line2, nl2 - line2);
  EXPECT_EQ(l1.find('1'), l2.find('2'));
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(static_cast<uint64_t>(42)), "42");
  EXPECT_EQ(TablePrinter::Fmt(static_cast<int64_t>(-7)), "-7");
  EXPECT_EQ(TablePrinter::FmtPct(0.00023, 3), "0.023 %");
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter t({"only"});
  std::string out = t.Render();
  EXPECT_NE(out.find("only"), std::string::npos);
}

}  // namespace
}  // namespace rolp
